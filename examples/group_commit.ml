(* Group commit: many committers, few syncs.

   With [Config.group_commit] on, a node's redo log coalesces concurrent
   commits into one device write and one sync per batch instead of one
   sync per transaction.  Four application processes on node 0 commit in
   lockstep against separate locks; the log flushes them in batches of up
   to four (or after a 50 us window), so the sync count lands well below
   the transaction count while every committed byte still reaches node 1
   and survives recovery.

   Run with:  dune exec examples/group_commit.exe *)

open Lbc_core

let region = 0
let rounds = 6
let workers = 4

let () =
  let config =
    { Config.default with
      Config.disk_logging = true;
      flush_on_commit = true;
      group_commit = true;
      group_commit_max = workers;
      group_commit_delay = 50.0;
    }
  in
  let cluster = Cluster.create ~config ~nodes:2 () in
  Cluster.add_region cluster ~id:region ~size:4096;
  Cluster.map_region_all cluster ~region;
  for w = 0 to workers - 1 do
    Cluster.spawn cluster ~node:0 (fun node ->
        for round = 1 to rounds do
          let txn = Node.Txn.begin_ node in
          Node.Txn.acquire txn w;
          Node.Txn.set_u64 txn ~region ~offset:(8 * w)
            (Int64.of_int (100 * w + round));
          Node.Txn.commit txn
        done)
  done;
  Cluster.run cluster;

  let node0 = Cluster.node cluster 0 in
  let log = Lbc_rvm.Rvm.log (Node.rvm node0) in
  let commits = workers * rounds in
  let syncs = Lbc_storage.Dev.sync_count (Lbc_wal.Log.dev log) in
  Format.printf "group commit: %d commits in %d batches, %d log syncs@."
    (Lbc_wal.Log.records_batched log)
    (Lbc_wal.Log.batches_flushed log)
    syncs;
  assert (Lbc_wal.Log.group_commit_enabled log);
  assert (Lbc_wal.Log.records_batched log = commits);
  assert (syncs < commits);

  (* Every commit still propagated to node 1 ... *)
  let node1 = Cluster.node cluster 1 in
  for w = 0 to workers - 1 do
    assert (Node.get_u64 node1 ~region ~offset:(8 * w)
            = Int64.of_int (100 * w + rounds))
  done;
  Format.printf "node 1 converged on all %d workers' final values@." workers;

  (* ... and every batch is durable: the log replays clean. *)
  let records, status = Lbc_wal.Log.read_all log in
  (match status with
   | Lbc_wal.Log.Clean -> ()
   | Lbc_wal.Log.Torn_at (off, why) ->
       Format.kasprintf failwith "torn log at %d: %s" off why);
  Format.printf "log replays clean: %d durable records@." (List.length records);
  assert (List.length records = commits)
