(* Tests for the write-ahead log: record codec, log device management,
   crash/torn-tail behaviour. *)

open Lbc_storage
open Lbc_wal

let txn_testable = Alcotest.testable Record.pp_txn Record.equal_txn

let mk_txn ?(node = 1) ?(tid = 7) ?(locks = []) ranges =
  {
    Record.node;
    tid;
    locks;
    ranges =
      List.map
        (fun (region, offset, s) ->
          { Record.region; offset; data = Bytes.of_string s })
        ranges;
    cmd = None;
  }

let lock lock_id seqno prev_write_seq = { Record.lock_id; seqno; prev_write_seq }

(* ------------------------------------------------------------------ *)
(* Record codec *)

let test_record_roundtrip () =
  let t =
    mk_txn ~node:3 ~tid:42
      ~locks:[ lock 5 10 8; lock 77 1 0 ]
      [ (0, 100, "hello"); (1, 4096, "world!") ]
  in
  let b = Record.encode t in
  match Record.decode b ~pos:0 with
  | Record.Txn (t', next) ->
      Alcotest.check txn_testable "roundtrip" t t';
      Alcotest.(check int) "consumed all" (Bytes.length b) next
  | _ -> Alcotest.fail "decode failed"

let test_record_empty () =
  let t = mk_txn ~node:0 ~tid:0 [] in
  match Record.decode (Record.encode t) ~pos:0 with
  | Record.Txn (t', _) -> Alcotest.check txn_testable "empty txn" t t'
  | _ -> Alcotest.fail "decode failed"

let test_record_encoded_size () =
  let t =
    mk_txn ~locks:[ lock 1 2 0 ] [ (0, 0, "abcdefgh"); (0, 64, "Z") ]
  in
  Alcotest.(check int) "size matches (default header)"
    (Bytes.length (Record.encode t))
    (Record.encoded_size t);
  Alcotest.(check int) "size matches (compact header)"
    (Bytes.length (Record.encode ~range_header_size:20 t))
    (Record.encoded_size ~range_header_size:20 t)

let test_record_header_padding () =
  let t = mk_txn [ (0, 0, "x") ] in
  let fat = Record.encoded_size t in
  let slim = Record.encoded_size ~range_header_size:Record.min_header_size t in
  Alcotest.(check int) "104-byte RVM headers cost 84 bytes more per range"
    (Record.rvm_disk_header_size - Record.min_header_size)
    (fat - slim)

let test_record_decode_zeros_is_end () =
  match Record.decode (Bytes.make 64 '\000') ~pos:0 with
  | Record.End -> ()
  | _ -> Alcotest.fail "expected End"

let test_record_decode_corrupt_is_torn () =
  let t = mk_txn [ (0, 0, "payload") ] in
  let b = Record.encode t in
  (* Flip a payload byte: CRC must catch it. *)
  let i = Bytes.length b - 6 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  (match Record.decode b ~pos:0 with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn (bad crc)");
  (* Truncate: also torn. *)
  let b = Record.encode t in
  let cut = Bytes.sub b 0 (Bytes.length b - 3) in
  match Record.decode cut ~pos:0 with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn (truncated)"

let test_record_garbage_is_torn () =
  match Record.decode (Bytes.of_string "garbage-not-a-record") ~pos:0 with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn"

let gen_txn =
  let open QCheck.Gen in
  let gen_range =
    triple (int_bound 3) (int_bound 100_000) (string_size ~gen:printable (1 -- 32))
  in
  let gen_lock =
    map
      (fun (a, b, c) -> lock a (b + 1) c)
      (triple (int_bound 500) (int_bound 1000) (int_bound 1000))
  in
  map
    (fun (node, tid, locks, ranges) ->
      mk_txn ~node ~tid ~locks ranges)
    (quad (int_bound 100) (int_bound 10_000) (list_size (0 -- 5) gen_lock)
       (list_size (0 -- 8) gen_range))

let prop_record_roundtrip =
  QCheck.Test.make ~name:"record roundtrip (random)" ~count:300
    (QCheck.make gen_txn) (fun t ->
      match Record.decode (Record.encode t) ~pos:0 with
      | Record.Txn (t', next) ->
          Record.equal_txn t t' && next = Bytes.length (Record.encode t)
      | _ -> false)

let prop_records_concatenate =
  QCheck.Test.make ~name:"back-to-back records decode in sequence" ~count:100
    (QCheck.make (QCheck.Gen.list_size QCheck.Gen.(1 -- 5) gen_txn))
    (fun txns ->
      let blob =
        Bytes.concat Bytes.empty (List.map (fun t -> Record.encode t) txns)
      in
      let rec loop pos acc =
        match Record.decode blob ~pos with
        | Record.Txn (t, next) -> loop next (t :: acc)
        | Record.End -> List.rev acc
        | Record.Ctrl _ | Record.Torn _ -> []
      in
      let decoded = loop 0 [] in
      List.length decoded = List.length txns
      && List.for_all2 Record.equal_txn txns decoded)

(* ------------------------------------------------------------------ *)
(* Log *)

let test_log_fresh_attach () =
  let d = Dev.create () in
  let log = Log.attach d in
  Alcotest.(check int) "head" Log.header_size (Log.head log);
  Alcotest.(check int) "tail" Log.header_size (Log.tail log);
  Alcotest.(check int) "live" 0 (Log.live_bytes log)

let test_log_append_read () =
  let d = Dev.create () in
  let log = Log.attach d in
  let t1 = mk_txn ~tid:1 [ (0, 0, "one") ] in
  let t2 = mk_txn ~tid:2 ~locks:[ lock 3 1 0 ] [ (0, 8, "two") ] in
  ignore (Log.append log t1);
  ignore (Log.append log t2);
  let txns, status = Log.read_all log in
  Alcotest.(check (list txn_testable)) "both records" [ t1; t2 ] txns;
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check int) "count" 2 (Log.record_count log)

let test_log_force_survives_crash () =
  let d = Dev.create () in
  let log = Log.attach d in
  ignore (Log.append log (mk_txn ~tid:1 [ (0, 0, "durable") ]));
  Log.force log;
  ignore (Log.append log (mk_txn ~tid:2 [ (0, 0, "volatile") ]));
  Dev.crash d;
  let log' = Log.attach d in
  let txns, status = Log.read_all log' in
  Alcotest.(check int) "only forced record" 1 (List.length txns);
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check int) "tid" 1 (List.hd txns).Record.tid

let test_log_torn_tail_ignored () =
  let d = Dev.create () in
  let log = Log.attach d in
  ignore (Log.append log (mk_txn ~tid:1 [ (0, 0, "good") ]));
  Log.force log;
  ignore (Log.append log (mk_txn ~tid:2 [ (0, 0, "half-written") ]));
  (* Crash with the second record torn mid-way. *)
  Dev.crash ~tear_bytes:30 d;
  let log' = Log.attach d in
  let txns, _ = Log.read_all log' in
  Alcotest.(check int) "torn tail dropped" 1 (List.length txns);
  (* Appending after the torn tail overwrites it cleanly. *)
  ignore (Log.append log' (mk_txn ~tid:3 [ (0, 0, "after") ]));
  Log.force log';
  let log'' = Log.attach d in
  let txns, status = Log.read_all log'' in
  Alcotest.(check (list int)) "records after repair" [ 1; 3 ]
    (List.map (fun t -> t.Record.tid) txns);
  Alcotest.(check bool) "clean" true (status = Log.Clean)

let test_log_trim () =
  let d = Dev.create () in
  let log = Log.attach d in
  let off1 = Log.append log (mk_txn ~tid:1 [ (0, 0, "aa") ]) in
  let off2 = Log.append log (mk_txn ~tid:2 [ (0, 0, "bb") ]) in
  Log.force log;
  Alcotest.(check int) "first at header" Log.header_size off1;
  Alcotest.(check int) "trim lands on off2" off2 (Log.set_head log off2);
  let txns, _ = Log.read_all log in
  Alcotest.(check (list int)) "only second lives" [ 2 ]
    (List.map (fun t -> t.Record.tid) txns);
  (* Trim point survives reattach. *)
  let log' = Log.attach d in
  Alcotest.(check int) "head persisted" off2 (Log.head log');
  Alcotest.(check int) "count" 1 (Log.record_count log')

let test_log_bad_device () =
  let d = Dev.create () in
  Dev.write_string d ~off:0 "this is definitely not a log header";
  Alcotest.(check bool) "raises Bad_log" true
    (try
       ignore (Log.attach d);
       false
     with Log.Bad_log _ -> true)

let test_log_fold_offsets () =
  let d = Dev.create () in
  let log = Log.attach d in
  let offs =
    List.map
      (fun tid -> Log.append log (mk_txn ~tid [ (0, 0, "r") ]))
      [ 1; 2; 3 ]
  in
  let seen, _ = Log.fold log ~init:[] (fun acc off _ -> off :: acc) in
  Alcotest.(check (list int)) "offsets" offs (List.rev seen)

(* ------------------------------------------------------------------ *)
(* Golden vectors: byte-identity with the pre-slice encoders *)

let hex_of_bytes b =
  String.concat ""
    (List.init (Bytes.length b) (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let bytes_of_hex s =
  Bytes.init
    (String.length s / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

(* golden_vectors.txt: "KIND name hex" lines, generated by the encoders
   as they stood before the Slice refactor. *)
let golden_vectors =
  lazy
    (let path =
       (* dune stages the dep next to the test executable; resolve it
          there so both `dune runtest` and `dune exec` find it. *)
       let beside_exe =
         Filename.concat (Filename.dirname Sys.executable_name)
           "golden_vectors.txt"
       in
       if Sys.file_exists beside_exe then beside_exe
       else if Sys.file_exists "test/golden_vectors.txt" then
         "test/golden_vectors.txt"
       else "golden_vectors.txt"
     in
     let ic = open_in path in
     let rec loop acc =
       match input_line ic with
       | line -> (
           match String.split_on_char ' ' (String.trim line) with
           | [ kind; name; hex ] -> loop (((kind, name), hex) :: acc)
           | _ -> loop acc)
       | exception End_of_file ->
           close_in ic;
           acc
     in
     loop [])

let golden kind name =
  match List.assoc_opt (kind, name) (Lazy.force golden_vectors) with
  | Some hex -> hex
  | None -> Alcotest.fail (Printf.sprintf "no golden vector %s %s" kind name)

(* The same four transactions the golden generator used. *)
let golden_txns =
  let open Record in
  [
    (* single lock, single range *)
    ( "t1",
      { node = 0; tid = 1;
        locks = [ { lock_id = 0; seqno = 1; prev_write_seq = 0 } ];
        ranges =
          [ { region = 0; offset = 16; data = Bytes.of_string "hello world!" } ];
        cmd = None;
      } );
    (* multi-lock, multi-region, big varints *)
    ( "t2",
      { node = 3; tid = 200;
        locks =
          [
            { lock_id = 7; seqno = 300; prev_write_seq = 299 };
            { lock_id = 150; seqno = 2; prev_write_seq = 0 };
          ];
        ranges =
          [
            { region = 2; offset = 100_000; data = Bytes.make 40 '\x5a' };
            { region = 2; offset = 100_300; data = Bytes.of_string "abc" };
            { region = 5; offset = 0; data = Bytes.make 3 '\x00' };
          ];
        cmd = None;
      } );
    (* read-only (no ranges) *)
    ( "t3",
      { node = 1; tid = 9;
        locks = [ { lock_id = 2; seqno = 5; prev_write_seq = 4 } ];
        ranges = [];
        cmd = None;
      } );
    (* unsorted ranges on input, zero-length data *)
    ( "t4",
      { node = 65535; tid = 1_000_000;
        locks = [];
        ranges =
          [
            { region = 1; offset = 512; data = Bytes.make 130 '\x41' };
            { region = 1; offset = 0; data = Bytes.of_string "xy" };
            { region = 0; offset = 8; data = Bytes.empty };
          ];
        cmd = None;
      } )
  ]

let test_record_golden () =
  List.iter
    (fun (name, t) ->
      Alcotest.(check string)
        (name ^ " encodes to the pre-refactor bytes (104B headers)")
        (golden "REC" name)
        (hex_of_bytes (Record.encode t));
      Alcotest.(check string)
        (name ^ " encodes to the pre-refactor bytes (20B headers)")
        (golden "REC20" name)
        (hex_of_bytes (Record.encode ~range_header_size:20 t));
      (* and the golden bytes decode back to the transaction *)
      match Record.decode (bytes_of_hex (golden "REC" name)) ~pos:0 with
      | Record.Txn (t', _) ->
          Alcotest.check txn_testable (name ^ " golden decodes") t t'
      | _ -> Alcotest.fail (name ^ ": golden record did not decode"))
    golden_txns

let prop_encode_into_appends =
  (* Encoding several records into one shared arena — what a group-commit
     batch does — yields exactly the concatenation of their individual
     encodings. *)
  QCheck.Test.make ~name:"encode_into batches = concatenated encodes"
    ~count:100
    (QCheck.make (QCheck.Gen.list_size QCheck.Gen.(1 -- 5) gen_txn))
    (fun txns ->
      let w = Lbc_util.Codec.writer () in
      List.iter (fun t -> Record.encode_into w t) txns;
      let batched = Lbc_util.Codec.contents w in
      let individual =
        Bytes.concat Bytes.empty (List.map Record.encode txns)
      in
      Bytes.equal batched individual)

(* ------------------------------------------------------------------ *)
(* Windowed scans *)

let test_scan_windowed_large_log () =
  (* A log several windows long: attach must find every record without
     snapshotting the device. *)
  let d = Dev.create () in
  let log = Log.attach d in
  let payload = String.make 8192 'p' in
  let n = 24 in  (* ~197 KiB of records, ~3 windows *)
  for tid = 1 to n do
    ignore (Log.append log (mk_txn ~tid [ (0, 0, payload) ]))
  done;
  Log.force log;
  Alcotest.(check bool) "log spans several scan windows" true
    (Log.tail log > 2 * 64 * 1024);
  let log' = Log.attach d in
  Alcotest.(check int) "all records found" n (Log.record_count log');
  let txns, status = Log.read_all log' in
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check (list int)) "tids in order"
    (List.init n (fun i -> i + 1))
    (List.map (fun t -> t.Record.tid) txns)

let test_scan_record_larger_than_window () =
  (* One record bigger than the 64 KiB scan window: the window must grow
     until the record fits, then shrink back to normal progress. *)
  let d = Dev.create () in
  let log = Log.attach d in
  ignore (Log.append log (mk_txn ~tid:1 [ (0, 0, "before") ]));
  ignore (Log.append log (mk_txn ~tid:2 [ (0, 0, String.make 100_000 'B') ]));
  ignore (Log.append log (mk_txn ~tid:3 [ (0, 0, "after") ]));
  Log.force log;
  let log' = Log.attach d in
  let txns, status = Log.read_all log' in
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check (list int)) "all three records" [ 1; 2; 3 ]
    (List.map (fun t -> t.Record.tid) txns)

(* ------------------------------------------------------------------ *)
(* Group commit *)

let run_commits ~max_records ~delay ~commits f =
  let d = Dev.create () in
  let log = Log.attach d in
  let engine = Lbc_sim.Engine.create () in
  Log.enable_group_commit ~max_records ~delay log ~engine;
  let durable = ref [] in
  for i = 1 to commits do
    Lbc_sim.Proc.spawn engine ~name:(Printf.sprintf "committer-%d" i)
      (fun () ->
        let off =
          Log.append_durable log (mk_txn ~tid:i [ (0, 0, "payload") ])
        in
        (* append_durable returns only once the record is on stable
           storage *)
        durable := (i, off) :: !durable)
  done;
  Lbc_sim.Engine.run engine;
  f d log !durable

let test_group_commit_batches_by_size () =
  run_commits ~max_records:4 ~delay:1_000.0 ~commits:8 (fun d log durable ->
      Alcotest.(check int) "all committers returned" 8 (List.length durable);
      Alcotest.(check int) "two full batches" 2 (Log.batches_flushed log);
      Alcotest.(check int) "records batched" 8 (Log.records_batched log);
      (* 1 sync for the fresh header + 1 per batch *)
      Alcotest.(check int) "one sync per batch" 3 (Dev.sync_count d);
      let txns, status = Log.read_all log in
      Alcotest.(check bool) "clean" true (status = Log.Clean);
      Alcotest.(check int) "all records logged" 8 (List.length txns))

let test_group_commit_flushes_by_delay () =
  (* Fewer committers than max_records: only the timer can flush. *)
  run_commits ~max_records:64 ~delay:100.0 ~commits:3 (fun d log durable ->
      Alcotest.(check int) "all committers returned" 3 (List.length durable);
      Alcotest.(check int) "one timed batch" 1 (Log.batches_flushed log);
      Alcotest.(check int) "syncs: header + batch" 2 (Dev.sync_count d);
      let txns, _ = Log.read_all log in
      Alcotest.(check int) "all records logged" 3 (List.length txns))

let test_group_commit_fewer_syncs_than_commits () =
  run_commits ~max_records:8 ~delay:50.0 ~commits:24 (fun d log durable ->
      Alcotest.(check int) "all committers returned" 24 (List.length durable);
      Alcotest.(check bool)
        (Printf.sprintf "syncs (%d) < commits (24)" (Dev.sync_count d))
        true
        (Dev.sync_count d < 24);
      Alcotest.(check int) "records batched" 24 (Log.records_batched log))

let test_group_commit_torn_batch_recovery () =
  (* A crash can tear the batch's single gathered write mid-record:
     recovery must keep the batch's leading records and drop the torn
     tail. *)
  run_commits ~max_records:4 ~delay:1_000.0 ~commits:4 (fun d log durable ->
      ignore (log : Log.t);
      let offs = List.sort Int.compare (List.map snd durable) in
      (* Cut 10 bytes into the batch's third record. *)
      let cut = List.nth offs 2 + 10 in
      let d' = Dev.create () in
      Dev.load d' (Dev.read d ~off:0 ~len:cut);
      let log' = Log.attach d' in
      let txns, status = Log.read_all log' in
      Alcotest.(check bool) "tail reset past the tear" true
        (status = Log.Clean);
      Alcotest.(check int) "batch prefix survives" 2 (List.length txns);
      (* The log keeps working after recovery. *)
      ignore (Log.append log' (mk_txn ~tid:99 [ (0, 0, "post") ]));
      Log.force log';
      let txns', status' = Log.read_all log' in
      Alcotest.(check bool) "clean after repair" true (status' = Log.Clean);
      Alcotest.(check int) "new record appended" 3 (List.length txns'))

let test_group_commit_direct_append_flushes () =
  (* A direct append (no durability wait) must not overtake an open
     batch: device order is logical order. *)
  let d = Dev.create () in
  let log = Log.attach d in
  let engine = Lbc_sim.Engine.create () in
  Log.enable_group_commit ~max_records:8 ~delay:1_000.0 log ~engine;
  Lbc_sim.Proc.spawn engine ~name:"committer" (fun () ->
      ignore (Log.append_durable log (mk_txn ~tid:1 [ (0, 0, "batched") ])));
  Lbc_sim.Proc.spawn engine ~name:"direct" (fun () ->
      Lbc_sim.Proc.sleep 10.0;
      (* The batch is still open (delay 1000); this append must flush it
         first so the records land in order. *)
      ignore (Log.append log (mk_txn ~tid:2 [ (0, 0, "direct") ]));
      Log.force log);
  Lbc_sim.Engine.run engine;
  let txns, status = Log.read_all log in
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check (list int)) "device order = logical order" [ 1; 2 ]
    (List.map (fun t -> t.Record.tid) txns)

(* ------------------------------------------------------------------ *)
(* Control records and low-water marks *)

let ctrl_testable = Alcotest.testable Record.pp_ctrl Record.equal_ctrl
let mk_ctrl ?(node = 2) ?(ckpt_id = 7) ?(entries = []) kind =
  { Record.kind; node; ckpt_id; entries }

let test_ctrl_roundtrip () =
  List.iter
    (fun kind ->
      let c = mk_ctrl kind in
      let b = Record.encode_ctrl c in
      Alcotest.(check int) "fixed size" Record.ctrl_size (Bytes.length b);
      match Record.decode b ~pos:0 with
      | Record.Ctrl (c', next) ->
          Alcotest.check ctrl_testable "roundtrip" c c';
          Alcotest.(check int) "consumed all" Record.ctrl_size next
      | _ -> Alcotest.fail "ctrl did not decode")
    [ Record.Ckpt_begin; Record.Ckpt_end ]

let test_ctrl_corrupt_is_torn () =
  let b = Record.encode_ctrl (mk_ctrl Record.Ckpt_begin) in
  Bytes.set b (Bytes.length b - 1) '\xff';
  (* CRC byte *)
  match Record.decode b ~pos:0 with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "corrupt ctrl not Torn"

let test_ctrl_interleaves_with_txns () =
  let d = Dev.create () in
  let log = Log.attach d in
  ignore (Log.append log (mk_txn ~tid:1 [ (0, 0, "aa") ]));
  let begin_off = Log.append_ctrl log (mk_ctrl Record.Ckpt_begin) in
  ignore (Log.append log (mk_txn ~tid:2 [ (0, 0, "bb") ]));
  let end_off = Log.append_ctrl log (mk_ctrl Record.Ckpt_end) in
  Log.force log;
  (* Txn readers never see control records. *)
  let txns, status = Log.read_all log in
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check (list int)) "txns only" [ 1; 2 ]
    (List.map (fun t -> t.Record.tid) txns);
  Alcotest.(check int) "record_count ignores ctrl" 2 (Log.record_count log);
  (* fold_ctrl sees only the markers, in offset order. *)
  let ctrls, status' =
    Log.fold_ctrl log ~init:[] (fun acc off c -> (off, c.Record.kind) :: acc)
  in
  Alcotest.(check bool) "ctrl scan clean" true (status' = Log.Clean);
  Alcotest.(check (list (pair int bool)))
    "both markers at their offsets"
    [ (begin_off, true); (end_off, false) ]
    (List.rev_map (fun (o, k) -> (o, k = Record.Ckpt_begin)) ctrls);
  (* Markers survive a crash + reattach like any forced record. *)
  Dev.crash d;
  let log' = Log.attach d in
  Alcotest.(check int) "txns survive" 2 (Log.record_count log');
  let ctrls', _ = Log.fold_ctrl log' ~init:0 (fun n _ _ -> n + 1) in
  Alcotest.(check int) "ctrls survive" 2 ctrls'

let test_set_head_clamps_to_low_water () =
  let d = Dev.create () in
  let log = Log.attach d in
  let off1 = Log.append log (mk_txn ~tid:1 [ (0, 0, "aa") ]) in
  let off2 = Log.append log (mk_txn ~tid:2 [ (0, 0, "bb") ]) in
  Log.force log;
  Alcotest.(check int) "no water: low_water is max_int" max_int
    (Log.low_water log);
  (* A retention mark below the requested head wins. *)
  Log.set_retention_water log off2;
  Alcotest.(check int) "trim clamped to retention mark" off2
    (Log.set_head log (Log.tail log));
  Alcotest.(check int) "record 2 still live" 1 (Log.record_count log);
  ignore off1;
  (* Lifting the mark allows the full trim. *)
  Log.set_retention_water log max_int;
  Alcotest.(check int) "trim reaches tail" (Log.tail log)
    (Log.set_head log (Log.tail log));
  Alcotest.(check int) "log empty" 0 (Log.live_bytes log)

let test_ckpt_water_pins_trim () =
  let d = Dev.create () in
  let log = Log.attach d in
  ignore (Log.append log (mk_txn ~tid:1 [ (0, 0, "aa") ]));
  Log.force log;
  let pin = Log.head log in
  Log.set_ckpt_water log pin;
  Alcotest.(check int) "low_water = ckpt pin" pin (Log.low_water log);
  Alcotest.(check int) "trim pinned at head" pin
    (Log.set_head log (Log.tail log));
  (* Both marks active: the lower one wins. *)
  let off2 = Log.append log (mk_txn ~tid:2 [ (0, 0, "bb") ]) in
  Log.force log;
  Log.set_retention_water log off2;
  Alcotest.(check int) "min of the two waters" pin (Log.low_water log);
  Log.set_ckpt_water log max_int;
  Alcotest.(check int) "retention alone remains" off2 (Log.low_water log)

(* ------------------------------------------------------------------ *)
(* Region-index control records, point reads, corrupt-byte scans *)

let test_region_index_roundtrip () =
  let entries =
    [
      { Record.keys = [ 1; 4; 7 ]; offsets = [ 32; 96; 1024 ] };
      { Record.keys = [ 0 ]; offsets = [ 64 ] };
    ]
  in
  let c = mk_ctrl ~entries Record.Region_index in
  let b = Record.encode_ctrl c in
  Alcotest.(check bool) "bigger than a fixed marker" true
    (Bytes.length b > Record.ctrl_size);
  match Record.decode b ~pos:0 with
  | Record.Ctrl (c', next) ->
      Alcotest.check ctrl_testable "roundtrip" c c';
      Alcotest.(check int) "consumed all" (Bytes.length b) next
  | _ -> Alcotest.fail "region-index ctrl did not decode"

let test_region_index_corrupt_is_torn () =
  let entries = [ { Record.keys = [ 3 ]; offsets = [ 32; 64 ] } ] in
  let b = Record.encode_ctrl (mk_ctrl ~entries Record.Region_index) in
  Bytes.set b (Bytes.length b - 1) '\xee';
  match Record.decode b ~pos:0 with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "corrupt region-index not Torn"

let test_read_at () =
  let d = Dev.create () in
  let log = Log.attach d in
  let o1 = Log.append log (mk_txn ~tid:1 [ (0, 0, "aa") ]) in
  let oc = Log.append_ctrl log (mk_ctrl Record.Ckpt_begin) in
  let o2 = Log.append log (mk_txn ~tid:2 [ (0, 8, "bb") ]) in
  Log.force log;
  (match Log.read_at log ~off:o2 with
  | Ok t -> Alcotest.(check int) "tid at offset" 2 t.Record.tid
  | Error e -> Alcotest.fail e);
  (match Log.read_at log ~off:oc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ctrl offset must error");
  (match Log.read_at log ~off:(o1 + 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "misaligned offset must error");
  (match Log.read_at log ~off:(Log.tail log) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "offset past tail must error");
  match
    Log.fold_chain log ~offsets:[ o1; o2 ] ~init:[] (fun acc _ t ->
        t.Record.tid :: acc)
  with
  | Ok tids -> Alcotest.(check (list int)) "chain in order" [ 2; 1 ] tids
  | Error e -> Alcotest.fail e

(* Satellite regression: a corrupt byte mid-log must surface as a torn
   verdict carrying the record's offset — never an assert crash — and
   the records before it must still decode. *)
let test_scan_corrupt_byte_reports_offset () =
  let d = Dev.create () in
  let log = Log.attach d in
  ignore (Log.append log (mk_txn ~tid:1 [ (0, 0, "aa") ]) : int);
  let o2 = Log.append log (mk_txn ~tid:2 [ (0, 8, "bb") ]) in
  ignore (Log.append log (mk_txn ~tid:3 [ (0, 16, "cc") ]) : int);
  Log.force log;
  Dev.write d ~off:(o2 + 9) (Bytes.of_string "\xff") ~pos:0 ~len:1;
  let txns, status = Log.read_all log in
  (match status with
  | Log.Torn_at (off, _why) ->
      Alcotest.(check int) "offset of the corrupt record" o2 off
  | Log.Clean -> Alcotest.fail "corruption not reported");
  Alcotest.(check (list int))
    "records before the corruption survive" [ 1 ]
    (List.map (fun t -> t.Record.tid) txns)

let test_region_index_tracks_log () =
  let d = Dev.create () in
  let log = Log.attach d in
  let o1 = Log.append log (mk_txn ~tid:1 ~locks:[ lock 3 1 0 ] [ (0, 0, "aa") ]) in
  let o2 = Log.append log (mk_txn ~tid:2 ~locks:[ lock 9 1 0 ] [ (1, 0, "bb") ]) in
  let o3 = Log.append log (mk_txn ~tid:3 ~locks:[ lock 3 2 1 ] [ (0, 8, "cc") ]) in
  Log.force log;
  let idx, status = Region_index.of_log log in
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  let chains = Region_index.chains idx in
  Alcotest.(check (list (list int))) "two disjoint chains, log order"
    [ [ o1; o3 ]; [ o2 ] ] chains;
  (* Persist, trim the first record, reload: the index is seeded from
     the ctrl record and drops trimmed offsets. *)
  ignore
    (Log.append_ctrl log (Region_index.to_ctrl idx ~node:1 ~ckpt_id:1) : int);
  Log.force log;
  ignore (Log.set_head log o2 : int);
  let idx', status' = Region_index.of_log log in
  Alcotest.(check bool) "clean after trim" true (status' = Log.Clean);
  Alcotest.(check (list (list int))) "trimmed offset dropped"
    [ [ o2 ]; [ o3 ] ]
    (List.sort compare (Region_index.chains idx'))

(* Regression: a commit can land between the checkpoint's index scan and
   the ctrl append (the scan charges device time, so other procs run).
   Its offset is below the ctrl record's own offset yet absent from the
   persisted entries — the reload rescan must resume from the highest
   *indexed* offset, not from the ctrl record's offset, or the record is
   skipped forever and replay serves stale bytes. *)
let test_region_index_covers_scan_gap () =
  let d = Dev.create () in
  let log = Log.attach d in
  let o1 = Log.append log (mk_txn ~tid:1 ~locks:[ lock 3 1 0 ] [ (0, 0, "aa") ]) in
  Log.force log;
  let idx, _ = Region_index.of_log log in
  (* Concurrent commit after the scan, before the ctrl append. *)
  let o2 = Log.append log (mk_txn ~tid:2 ~locks:[ lock 9 1 0 ] [ (1, 0, "bb") ]) in
  ignore
    (Log.append_ctrl log (Region_index.to_ctrl idx ~node:1 ~ckpt_id:1) : int);
  Log.force log;
  let idx', status = Region_index.of_log log in
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check (list (list int)))
    "record between scan and ctrl append is re-indexed"
    [ [ o1 ]; [ o2 ] ]
    (List.sort compare (Region_index.chains idx'))

(* ------------------------------------------------------------------ *)
(* Command records (adaptive logging) *)

let mk_cmd_txn ?(node = 1) ?(tid = 7) ?(locks = []) ?(op = 901)
    ?(params = Bytes.of_string "\x01\x02\x03") ?(regions = [ 0 ]) () =
  {
    Record.node;
    tid;
    locks;
    ranges = [];
    cmd = Some { Record.op; params; cmd_regions = regions };
  }

let test_cmd_roundtrip () =
  let t =
    mk_cmd_txn ~node:3 ~tid:42 ~locks:[ lock 5 10 8 ] ~op:77
      ~params:(Bytes.of_string "some-params") ~regions:[ 2; 0 ] ()
  in
  let b = Record.encode t in
  Alcotest.(check int) "encoded_size matches" (Bytes.length b)
    (Record.encoded_size t);
  (* A command record carries no range headers, so the header size knob
     must not change its bytes. *)
  Alcotest.(check int) "range_header_size has no effect" (Bytes.length b)
    (Bytes.length (Record.encode ~range_header_size:20 t));
  match Record.decode b ~pos:0 with
  | Record.Txn (t', next) ->
      Alcotest.check txn_testable "roundtrip" t t';
      Alcotest.(check int) "consumed all" (Bytes.length b) next
  | _ -> Alcotest.fail "cmd record did not decode"

let test_cmd_rejects_ranges () =
  let t =
    {
      (mk_cmd_txn ()) with
      Record.ranges =
        [ { Record.region = 0; offset = 0; data = Bytes.of_string "x" } ];
    }
  in
  Alcotest.(check bool) "ranges + cmd rejected" true
    (try
       ignore (Record.encode t);
       false
     with Invalid_argument _ -> true)

let test_cmd_corrupt_is_torn () =
  let b = Record.encode (mk_cmd_txn ()) in
  let i = Bytes.length b - 6 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  (match Record.decode b ~pos:0 with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn (bad crc)");
  let b = Record.encode (mk_cmd_txn ()) in
  let cut = Bytes.sub b 0 (Bytes.length b - 3) in
  match Record.decode cut ~pos:0 with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn (truncated)"

let test_cmd_write_and_regions () =
  let c = mk_cmd_txn ~regions:[ 4; 1; 4; 0 ] () in
  Alcotest.(check bool) "cmd is a write" true (Record.is_write c);
  Alcotest.(check (list int)) "regions dedup + sort" [ 0; 1; 4 ]
    (Record.regions c);
  let v = mk_txn [ (2, 0, "v"); (0, 8, "w"); (2, 16, "x") ] in
  Alcotest.(check bool) "value record is a write" true (Record.is_write v);
  Alcotest.(check (list int)) "value regions" [ 0; 2 ] (Record.regions v);
  Alcotest.(check bool) "read-only acquire is not a write" false
    (Record.is_write (mk_txn ~locks:[ lock 1 1 0 ] []))

let test_cmd_in_log () =
  (* Value and command records interleave in one log and survive a
     crash like any forced record. *)
  let d = Dev.create () in
  let log = Log.attach d in
  ignore (Log.append log (mk_txn ~tid:1 [ (0, 0, "aa") ]) : int);
  ignore (Log.append log (mk_cmd_txn ~tid:2 ()) : int);
  ignore (Log.append log (mk_txn ~tid:3 [ (0, 8, "bb") ]) : int);
  Log.force log;
  Dev.crash d;
  let log' = Log.attach d in
  let txns, status = Log.read_all log' in
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check (list int)) "all three records" [ 1; 2; 3 ]
    (List.map (fun t -> t.Record.tid) txns);
  Alcotest.(check bool) "cmd survived" true
    ((List.nth txns 1).Record.cmd <> None)

let test_region_index_cmd_chains () =
  (* Command records feed the replay-partition index through the same
     region keys a value record derives from its ranges. *)
  let d = Dev.create () in
  let log = Log.attach d in
  let o1 = Log.append log (mk_txn ~tid:1 [ (0, 0, "aa") ]) in
  let o2 = Log.append log (mk_cmd_txn ~tid:2 ~regions:[ 1 ] ()) in
  let o3 = Log.append log (mk_cmd_txn ~tid:3 ~regions:[ 0 ] ()) in
  Log.force log;
  let idx, status = Region_index.of_log log in
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check (list (list int)))
    "cmds chain by region" [ [ o1; o3 ]; [ o2 ] ]
    (Region_index.chains idx)

(* The same transactions the CMD golden generator used: the command
   framing (magic, varint layout, trailing CRC) is pinned byte-for-byte. *)
let golden_cmd_txns =
  let open Record in
  [
    ( "c1",
      { node = 0; tid = 1;
        locks = [ { lock_id = 0; seqno = 1; prev_write_seq = 0 } ];
        ranges = [];
        cmd =
          Some
            { op = 1; params = Bytes.of_string "hello world!";
              cmd_regions = [ 0 ] };
      } );
    ( "c2",
      { node = 3; tid = 200;
        locks =
          [
            { lock_id = 7; seqno = 300; prev_write_seq = 299 };
            { lock_id = 150; seqno = 2; prev_write_seq = 0 };
          ];
        ranges = [];
        cmd =
          Some
            { op = 12345; params = Bytes.make 40 '\x5a';
              cmd_regions = [ 2; 5; 100 ] };
      } );
    (* degenerate: no locks, empty params, no regions *)
    ( "c3",
      { node = 65535; tid = 1_000_000; locks = []; ranges = [];
        cmd = Some { op = 0; params = Bytes.empty; cmd_regions = [] };
      } );
  ]

let test_cmd_golden () =
  List.iter
    (fun (name, t) ->
      Alcotest.(check string)
        (name ^ " command framing is byte-stable")
        (golden "CMD" name)
        (hex_of_bytes (Record.encode t));
      match Record.decode (bytes_of_hex (golden "CMD" name)) ~pos:0 with
      | Record.Txn (t', _) ->
          Alcotest.check txn_testable (name ^ " golden decodes") t t'
      | _ -> Alcotest.fail (name ^ ": golden cmd record did not decode"))
    golden_cmd_txns

let gen_cmd_txn =
  let open QCheck.Gen in
  let gen_lock =
    map
      (fun (a, b, c) -> lock a (b + 1) c)
      (triple (int_bound 500) (int_bound 1000) (int_bound 1000))
  in
  map
    (fun (node, tid, locks, (op, params, regions)) ->
      {
        Record.node;
        tid;
        locks;
        ranges = [];
        cmd =
          Some
            { Record.op; params = Bytes.of_string params;
              cmd_regions = regions };
      })
    (quad (int_bound 100) (int_bound 10_000) (list_size (0 -- 5) gen_lock)
       (triple (int_bound 100_000)
          (string_size ~gen:printable (0 -- 64))
          (list_size (0 -- 4) (int_bound 7))))

let prop_cmd_roundtrip =
  QCheck.Test.make ~name:"cmd record roundtrip (random)" ~count:300
    (QCheck.make gen_cmd_txn) (fun t ->
      let b = Record.encode t in
      Bytes.length b = Record.encoded_size t
      &&
      match Record.decode b ~pos:0 with
      | Record.Txn (t', next) ->
          Record.equal_txn t t' && next = Bytes.length b
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Command registry *)

let null_mem =
  {
    Command.read = (fun ~region:_ ~offset:_ ~len -> Bytes.make len '\000');
    write = (fun ~region:_ ~offset:_ _ -> ());
  }

let test_command_registry () =
  let nop _ ~params:_ = () in
  Command.register ~op:910 ~name:"test-nop" nop;
  Alcotest.(check bool) "registered" true (Command.registered 910);
  Alcotest.(check (option string)) "name" (Some "test-nop")
    (Command.name 910);
  (* Re-registering the same op/name pair is idempotent... *)
  Command.register ~op:910 ~name:"test-nop" nop;
  Alcotest.(check bool) "still registered" true (Command.registered 910);
  (* ...but a different name claiming the id is a wiring bug. *)
  Alcotest.(check bool) "conflicting name rejected" true
    (try
       Command.register ~op:910 ~name:"impostor" nop;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unregistered op" false (Command.registered 911);
  Alcotest.(check (option string)) "no name" None (Command.name 911)

let test_command_unknown_op () =
  Alcotest.(check bool) "execute raises Unknown_op" true
    (try
       Command.execute null_mem ~op:912 ~params:Bytes.empty;
       false
     with Command.Unknown_op 912 -> true);
  Alcotest.(check bool) "apply raises Unknown_op" true
    (try
       Command.apply null_mem (mk_cmd_txn ~op:912 ());
       false
     with Command.Unknown_op 912 -> true)

let test_command_apply_dispatch () =
  let img = Bytes.make 32 '\000' in
  let mem =
    {
      Command.read = (fun ~region:_ ~offset ~len -> Bytes.sub img offset len);
      write =
        (fun ~region:_ ~offset data ->
          Bytes.blit data 0 img offset (Bytes.length data));
    }
  in
  (* A value record's ranges are blitted... *)
  Command.apply mem (mk_txn [ (0, 4, "val!") ]);
  Alcotest.(check string) "value blit" "val!" (Bytes.sub_string img 4 4);
  (* ...a command record's registered body runs. *)
  Command.register ~op:913 ~name:"test-stamp" (fun m ~params ->
      m.Command.write ~region:0 ~offset:20 params);
  Command.apply mem (mk_cmd_txn ~op:913 ~params:(Bytes.of_string "CMD") ());
  Alcotest.(check string) "command executed" "CMD"
    (Bytes.sub_string img 20 3)

let test_log_mode_names () =
  List.iter
    (fun m ->
      Alcotest.(check (option string)) "mode name roundtrips"
        (Some (Command.log_mode_name m))
        (Option.map Command.log_mode_name
           (Command.log_mode_of_name (Command.log_mode_name m))))
    [ Command.Value; Command.Command; Command.Adaptive ];
  Alcotest.(check bool) "unknown mode" true
    (Command.log_mode_of_name "bogus" = None)

let suites =
  [
    ( "wal.record",
      [
        Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
        Alcotest.test_case "empty txn" `Quick test_record_empty;
        Alcotest.test_case "encoded_size" `Quick test_record_encoded_size;
        Alcotest.test_case "header padding" `Quick test_record_header_padding;
        Alcotest.test_case "zeros = End" `Quick test_record_decode_zeros_is_end;
        Alcotest.test_case "corrupt = Torn" `Quick
          test_record_decode_corrupt_is_torn;
        Alcotest.test_case "garbage = Torn" `Quick test_record_garbage_is_torn;
        Alcotest.test_case "golden vectors" `Quick test_record_golden;
        QCheck_alcotest.to_alcotest prop_record_roundtrip;
        QCheck_alcotest.to_alcotest prop_records_concatenate;
        QCheck_alcotest.to_alcotest prop_encode_into_appends;
      ] );
    ( "wal.log",
      [
        Alcotest.test_case "fresh attach" `Quick test_log_fresh_attach;
        Alcotest.test_case "append/read" `Quick test_log_append_read;
        Alcotest.test_case "force survives crash" `Quick
          test_log_force_survives_crash;
        Alcotest.test_case "torn tail ignored" `Quick test_log_torn_tail_ignored;
        Alcotest.test_case "trim" `Quick test_log_trim;
        Alcotest.test_case "bad device" `Quick test_log_bad_device;
        Alcotest.test_case "fold offsets" `Quick test_log_fold_offsets;
        Alcotest.test_case "windowed scan: multi-window log" `Quick
          test_scan_windowed_large_log;
        Alcotest.test_case "windowed scan: record > window" `Quick
          test_scan_record_larger_than_window;
      ] );
    ( "wal.ctrl",
      [
        Alcotest.test_case "ctrl roundtrip" `Quick test_ctrl_roundtrip;
        Alcotest.test_case "corrupt ctrl = Torn" `Quick
          test_ctrl_corrupt_is_torn;
        Alcotest.test_case "ctrl interleaves with txns" `Quick
          test_ctrl_interleaves_with_txns;
        Alcotest.test_case "set_head clamps to low water" `Quick
          test_set_head_clamps_to_low_water;
        Alcotest.test_case "ckpt water pins trim" `Quick
          test_ckpt_water_pins_trim;
        Alcotest.test_case "region-index roundtrip" `Quick
          test_region_index_roundtrip;
        Alcotest.test_case "corrupt region-index = Torn" `Quick
          test_region_index_corrupt_is_torn;
        Alcotest.test_case "read_at / fold_chain" `Quick test_read_at;
        Alcotest.test_case "corrupt byte mid-log reports offset" `Quick
          test_scan_corrupt_byte_reports_offset;
        Alcotest.test_case "region index tracks log" `Quick
          test_region_index_tracks_log;
        Alcotest.test_case "region index covers scan gap" `Quick
          test_region_index_covers_scan_gap;
      ] );
    ( "wal.cmd",
      [
        Alcotest.test_case "cmd roundtrip" `Quick test_cmd_roundtrip;
        Alcotest.test_case "ranges + cmd rejected" `Quick
          test_cmd_rejects_ranges;
        Alcotest.test_case "corrupt cmd = Torn" `Quick test_cmd_corrupt_is_torn;
        Alcotest.test_case "is_write / regions" `Quick
          test_cmd_write_and_regions;
        Alcotest.test_case "cmd interleaves in log" `Quick test_cmd_in_log;
        Alcotest.test_case "region index chains cmds" `Quick
          test_region_index_cmd_chains;
        Alcotest.test_case "cmd golden vectors" `Quick test_cmd_golden;
        Alcotest.test_case "registry" `Quick test_command_registry;
        Alcotest.test_case "unknown op" `Quick test_command_unknown_op;
        Alcotest.test_case "apply dispatch" `Quick test_command_apply_dispatch;
        Alcotest.test_case "log-mode names" `Quick test_log_mode_names;
        QCheck_alcotest.to_alcotest prop_cmd_roundtrip;
      ] );
    ( "wal.group_commit",
      [
        Alcotest.test_case "batches by size" `Quick
          test_group_commit_batches_by_size;
        Alcotest.test_case "flushes by delay" `Quick
          test_group_commit_flushes_by_delay;
        Alcotest.test_case "fewer syncs than commits" `Quick
          test_group_commit_fewer_syncs_than_commits;
        Alcotest.test_case "torn batch recovery" `Quick
          test_group_commit_torn_batch_recovery;
        Alcotest.test_case "direct append flushes open batch" `Quick
          test_group_commit_direct_append_flushes;
      ] );
  ]
