(* Whole-system randomized stress ("chaos") tests: many nodes, several
   regions and locks, mixed configurations, interleaved online
   checkpoints, pin/accept readers — always ending with the two global
   invariants: every cache converges to the same image, and server-side
   recovery reproduces it. *)

open Lbc_core

let regions = 2
let locks_per_region = 2
let region_size = 2048

(* lock l covers region (l / locks_per_region), byte range partitioned by
   (l mod locks_per_region). *)
let lock_region l = l / locks_per_region

let lock_offset rng l =
  let part = l mod locks_per_region in
  let span = region_size / locks_per_region in
  (part * span) + (8 * Lbc_util.Rng.int rng (span / 8))

(* Workload seeds are threaded (and overridable: LBC_CHAOS_SEED=n dune
   test) so a red chaos test is re-runnable, and on failure each seeded
   test prints a one-line repro command.  Tests with a scenario twin in
   lbc-explore name it, so the failure can be explored under alternative
   schedules, shrunk and replayed from a counterexample trace. *)
let chaos_seed default =
  match Sys.getenv_opt "LBC_CHAOS_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let with_repro ?scenario ~seed f =
  try f ()
  with e ->
    Printf.eprintf "repro: LBC_CHAOS_SEED=%d dune runtest\n" seed;
    (match scenario with
    | Some name ->
        Printf.eprintf
          "explore: lbc-explore --scenario %s --seeds 100   # shrink + \
           --replay counterexample.trace\n"
          name
    | None -> ());
    (* Strand/crash paths auto-dump the flight recorder before the
       exception reaches us; name the file so the last moments are one
       lbc-trace invocation away. *)
    (match Cluster.last_flight_dump () with
    | Some path ->
        Printf.eprintf "flight dump: %s (decode with lbc-trace)\n" path
    | None -> ());
    flush stderr;
    raise e

let mk_cluster config nodes =
  let c = Cluster.create ~config ~nodes () in
  for r = 0 to regions - 1 do
    Cluster.add_region c ~id:r ~size:region_size;
    Cluster.map_region_all c ~region:r
  done;
  c

let worker c rng n iterations =
  let rng = Lbc_util.Rng.split rng in
  Cluster.spawn c ~node:n (fun node ->
      for _ = 1 to iterations do
        let txn = Node.Txn.begin_ node in
        (* Acquire 1-2 locks in canonical order (avoiding deadlock, as
           the paper's applications must). *)
        let l1 = Lbc_util.Rng.int rng (regions * locks_per_region) in
        let l2 = Lbc_util.Rng.int rng (regions * locks_per_region) in
        let ls = List.sort_uniq compare [ l1; l2 ] in
        List.iter (fun l -> Node.Txn.acquire txn l) ls;
        List.iter
          (fun l ->
            (* Writes stay inside the acquired lock's partition. *)
            if Lbc_util.Rng.int rng 4 > 0 then
              Node.Txn.set_u64 txn ~region:(lock_region l)
                ~offset:(lock_offset rng l)
                (Lbc_util.Rng.int64 rng))
          ls;
        if Lbc_util.Rng.int rng 10 = 0 then Node.Txn.abort txn
        else Node.Txn.commit txn;
        Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 30.0)
      done)

let converged c nodes =
  let image n r = Node.read (Cluster.node c n) ~region:r ~offset:0 ~len:region_size in
  let ok = ref true in
  for r = 0 to regions - 1 do
    for n = 1 to nodes - 1 do
      if not (Bytes.equal (image 0 r) (image n r)) then ok := false
    done
  done;
  !ok

let recovery_matches c =
  ignore (Cluster.recover_database c);
  let ok = ref true in
  for r = 0 to regions - 1 do
    let dev = Cluster.region_dev c r in
    let len = min region_size (Lbc_storage.Dev.size dev) in
    let db = Lbc_storage.Dev.read dev ~off:0 ~len in
    let cache = Node.read (Cluster.node c 0) ~region:r ~offset:0 ~len in
    if not (Bytes.equal db cache) then begin
      if Sys.getenv_opt "LBC_DEBUG_RECOVERY" <> None then
        for i = 0 to len - 1 do
          if Bytes.get db i <> Bytes.get cache i then
            Printf.eprintf "region %d offset %d: db=%02x cache=%02x\n" r i
              (Char.code (Bytes.get db i))
              (Char.code (Bytes.get cache i))
        done;
      ok := false
    end
  done;
  !ok

let run_chaos ?scenario ~config ~nodes ~seed ~checkpoints () =
  let seed = chaos_seed seed in
  with_repro ?scenario ~seed (fun () ->
      let c = mk_cluster config nodes in
      let rng = Lbc_util.Rng.create seed in
      for n = 0 to nodes - 1 do
        worker c rng n 20
      done;
      if checkpoints then begin
        (* Interleave online checkpoints with the running workload. *)
        Cluster.run ~until:300.0 c;
        ignore (Cluster.online_checkpoint c);
        Cluster.run ~until:600.0 c;
        ignore (Cluster.online_checkpoint c)
      end;
      Cluster.run c;
      Alcotest.(check bool) "caches converged" true (converged c nodes);
      Alcotest.(check bool) "recovery matches caches" true (recovery_matches c))

let test_chaos_eager () =
  run_chaos ~config:Config.default ~nodes:4 ~seed:101 ~checkpoints:false ()

let test_chaos_eager_checkpoints () =
  run_chaos ~config:Config.default ~nodes:3 ~seed:202 ~checkpoints:true ()

let test_chaos_multicast () =
  run_chaos
    ~config:{ Config.default with Config.multicast = true }
    ~nodes:5 ~seed:303 ~checkpoints:false ()

let test_chaos_costs_charged () =
  run_chaos ~config:{ Config.measured with Config.disk_logging = true }
    ~nodes:3 ~seed:404 ~checkpoints:false ()

(* Lazy mode: convergence happens on demand, so instead of comparing raw
   caches we make every node acquire every lock at the end (pulling the
   chains), then compare. *)
let test_chaos_lazy () =
  let seed = chaos_seed 505 in
  with_repro ~seed @@ fun () ->
  let config = { Config.default with Config.propagation = Config.Lazy } in
  let nodes = 3 in
  let c = mk_cluster config nodes in
  let rng = Lbc_util.Rng.create seed in
  for n = 0 to nodes - 1 do
    worker c rng n 15
  done;
  Cluster.run c;
  for n = 0 to nodes - 1 do
    Cluster.spawn c ~node:n (fun node ->
        let txn = Node.Txn.begin_ node in
        for l = 0 to (regions * locks_per_region) - 1 do
          Node.Txn.acquire txn l
        done;
        Node.Txn.commit txn)
  done;
  Cluster.run c;
  Alcotest.(check bool) "caches converged after pulls" true (converged c nodes);
  Alcotest.(check bool) "recovery matches" true (recovery_matches c)

(* Random pin/accept readers interleaved with writers. *)
let test_chaos_pinned_readers () =
  let nodes = 3 in
  let c = mk_cluster Config.default nodes in
  let rng = Lbc_util.Rng.create 606 in
  worker c rng 0 25;
  worker c rng 1 25;
  Cluster.spawn c ~node:2 (fun node ->
      for _ = 1 to 6 do
        Node.pin node;
        Lbc_sim.Proc.sleep 50.0;
        (* While pinned, the cache must not change. *)
        let before = Node.read node ~region:0 ~offset:0 ~len:region_size in
        Lbc_sim.Proc.sleep 50.0;
        let after = Node.read node ~region:0 ~offset:0 ~len:region_size in
        if not (Bytes.equal before after) then
          Alcotest.fail "pinned cache changed";
        Node.accept node;
        Lbc_sim.Proc.sleep 20.0
      done);
  Cluster.run c;
  Node.accept (Cluster.node c 2);
  Alcotest.(check bool) "caches converged" true (converged c nodes);
  Alcotest.(check bool) "recovery matches" true (recovery_matches c)

(* QCheck-driven version: the same invariants over arbitrary seeds and
   cluster shapes. *)
let prop_random_clusters_converge =
  QCheck.Test.make ~name:"random clusters converge and recover" ~count:30
    QCheck.(pair (int_range 2 5) small_nat)
    (fun (nodes, seed) ->
      let c = mk_cluster Config.default nodes in
      let rng = Lbc_util.Rng.create (seed + 1) in
      for n = 0 to nodes - 1 do
        worker c rng n 8
      done;
      Cluster.run c;
      converged c nodes && recovery_matches c)

(* The simulator promises determinism: identical seeds must give
   bit-identical final states and identical virtual completion times. *)
let test_simulation_deterministic () =
  let run () =
    let c = mk_cluster Config.default 3 in
    let rng = Lbc_util.Rng.create 777 in
    for n = 0 to 2 do
      worker c rng n 12
    done;
    Cluster.run c;
    let images =
      List.concat_map
        (fun r ->
          List.init 3 (fun n ->
              Node.read (Cluster.node c n) ~region:r ~offset:0 ~len:region_size))
        [ 0; 1 ]
    in
    (Cluster.now c, Bytes.concat Bytes.empty images, Cluster.total_messages c)
  in
  let t1, img1, m1 = run () in
  let t2, img2, m2 = run () in
  Alcotest.(check (float 0.0)) "same virtual end time" t1 t2;
  Alcotest.(check bool) "same final images" true (Bytes.equal img1 img2);
  Alcotest.(check int) "same message count" m1 m2

(* ----------------------------------------------------------------- *)
(* Fault injection: message loss, node crash and rejoin *)

let all_locks = regions * locks_per_region

(* Every node acquires every lock once: the interlock (plus the repair
   watchdog) forces each cache to pull in whatever it missed. *)
let final_pull c nodes =
  for n = 0 to nodes - 1 do
    Cluster.spawn c ~node:n (fun node ->
        let txn = Node.Txn.begin_ node in
        for l = 0 to all_locks - 1 do
          Node.Txn.acquire txn l
        done;
        Node.Txn.commit txn)
  done;
  Cluster.run c

let logs_of c nodes =
  List.init nodes (fun n -> Lbc_rvm.Rvm.log (Node.rvm (Cluster.node c n)))

let check_logs_clean what c nodes =
  let vs = Lbc_analysis.Invariants.check_logs (logs_of c nodes) in
  Alcotest.(check (list string))
    what []
    (List.map Lbc_analysis.Violation.to_string vs)

let drop_updates c ~src ~dst on =
  let filter =
    if on then Some (function Msg.Update _ -> true | _ -> false) else None
  in
  Lbc_net.Fabric.set_drop_filter (Cluster.fabric c) ~src ~dst filter

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Data-plane loss with repair enabled: a channel silently eats every
   update, yet the seqno-gap watchdog re-fetches the missing records and
   the system converges — with the loss visible in the accounting. *)
let test_chaos_drop_repair_heals () =
  let seed = chaos_seed 808 in
  with_repro ~scenario:"drop-heal" ~seed @@ fun () ->
  let config =
    { Config.default with Config.repair = true; Config.repair_timeout = 100.0 }
  in
  let nodes = 3 in
  let c = mk_cluster config nodes in
  drop_updates c ~src:0 ~dst:1 true;
  let rng = Lbc_util.Rng.create seed in
  for n = 0 to nodes - 1 do
    worker c rng n 20
  done;
  Cluster.run c;
  final_pull c nodes;
  Alcotest.(check bool)
    "updates were dropped" true
    (Lbc_net.Fabric.messages_dropped (Cluster.fabric c) ~src:0 ~dst:1 > 0);
  Alcotest.(check bool)
    "drops surface in totals" true
    (Cluster.total_dropped c > 0);
  Alcotest.(check bool)
    "repair fetches were issued" true
    ((Node.stats (Cluster.node c 1)).Node.repair_fetches > 0);
  Alcotest.(check bool) "caches converged" true (converged c nodes);
  Alcotest.(check bool) "recovery matches" true (recovery_matches c);
  check_logs_clean "merged logs clean after repair" c nodes

(* The same loss without repair must not complete silently: the victim is
   stranded in the acquire interlock and [Cluster.run] says so. *)
let test_chaos_drop_without_repair_strands () =
  let nodes = 3 in
  let c = mk_cluster Config.default nodes in
  drop_updates c ~src:0 ~dst:1 true;
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn 0;
      Node.Txn.set_u64 txn ~region:0 ~offset:0 1234L;
      Node.Txn.commit txn);
  Cluster.spawn c ~node:1 (fun node ->
      Lbc_sim.Proc.sleep 50.0;
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn 0;
      (* unreachable: the update was dropped and nothing repairs it *)
      Node.Txn.commit txn);
  (match Cluster.run c with
  | () -> Alcotest.fail "run completed despite a lost update"
  | exception Lbc_sim.Engine.Stranded descs ->
      Alcotest.(check bool) "stranded report non-empty" true (descs <> []);
      Alcotest.(check bool)
        "report names the interlock" true
        (List.exists (fun d -> contains d "interlock") descs));
  Alcotest.(check bool)
    "the lost update was counted" true
    (Lbc_net.Fabric.messages_dropped (Cluster.fabric c) ~src:0 ~dst:1 > 0);
  (* Tracing is off (default config), yet the always-on flight recorder
     auto-dumped on the strand: the last moments of every node decode
     back clean. *)
  let module FD = Lbc_obs.Flight_dump in
  (match Cluster.last_flight c with
  | None -> Alcotest.fail "no flight dump auto-written on strand"
  | Some path ->
      Alcotest.(check bool) "dump file exists" true (Sys.file_exists path);
      Alcotest.(check bool) "LBCF magic" true (FD.is_flight_file path);
      (match FD.read path with
      | Error e -> Alcotest.failf "flight dump unreadable: %s" e
      | Ok d ->
          Alcotest.(check (list string))
            "flight self-check clean" [] (FD.self_check d);
          Alcotest.(check string) "sim clock" "virtual-us" d.FD.d_clock;
          Alcotest.(check int) "one ring per node" nodes
            (Array.length d.FD.d_rings);
          (* Node 0 committed and node 1 hit the interlock: both rings
             must hold their last events. *)
          Array.iter
            (fun ring ->
              if ring.FD.r_id < 2 && Array.length ring.FD.r_events = 0 then
                Alcotest.failf "ring %d has no events" ring.FD.r_id)
            d.FD.d_rings);
      Sys.remove path)

(* Node crash mid-flight, lease-based token reclaim, rejoin with log
   replay — on top of a lossy channel.  Five nodes and four locks, so the
   crashed node manages no lock (manager failure is out of the fault
   model, see DESIGN.md). *)
let test_chaos_crash_rejoin () =
  let seed = chaos_seed 909 in
  with_repro ~scenario:"crash-rejoin" ~seed @@ fun () ->
  let config =
    {
      Config.default with
      Config.repair = true;
      Config.repair_timeout = 100.0;
      Config.lease_timeout = 500.0;
    }
  in
  let nodes = 5 in
  let c = mk_cluster config nodes in
  drop_updates c ~src:0 ~dst:1 true;
  drop_updates c ~src:2 ~dst:3 true;
  let rng = Lbc_util.Rng.create seed in
  for n = 0 to nodes - 1 do
    worker c rng n 20
  done;
  Lbc_sim.Proc.spawn (Cluster.engine c) ~name:"chaos-controller" (fun () ->
      Lbc_sim.Proc.sleep 150.0;
      Cluster.crash c ~node:4;
      let rec rejoin_when_lease_expires () =
        match Cluster.rejoin c ~node:4 with
        | () -> ()
        | exception Invalid_argument _ ->
            Lbc_sim.Proc.sleep 50.0;
            rejoin_when_lease_expires ()
      in
      rejoin_when_lease_expires ();
      (* The node is back: give it fresh work. *)
      worker c rng 4 5);
  Cluster.run c;
  Alcotest.(check bool) "node is back up" false (Cluster.is_crashed c 4);
  final_pull c nodes;
  Alcotest.(check bool)
    "faults actually dropped traffic" true
    (Cluster.total_dropped c > 0);
  Alcotest.(check bool) "caches converged" true (converged c nodes);
  Alcotest.(check bool) "recovery matches" true (recovery_matches c);
  check_logs_clean "merged logs clean after crash+rejoin" c nodes

(* A fully traced chaos run: the emitted trace document must survive
   the explorer's self-check (valid JSON, monotone per-node timestamps,
   every flow arrow resolving into an apply span) even under randomized
   interleavings, and every committed write's flow must resolve. *)
let test_chaos_traced () =
  let config = { Config.default with Config.trace = true } in
  let nodes = 4 in
  let c = mk_cluster config nodes in
  let rng = Lbc_util.Rng.create 1111 in
  for n = 0 to nodes - 1 do
    worker c rng n 15
  done;
  Cluster.run c;
  Alcotest.(check bool) "caches converged" true (converged c nodes);
  let o = Cluster.obs c in
  Alcotest.(check bool) "tracing on" true (Lbc_obs.Obs.enabled o);
  let events =
    match
      Result.bind
        (Lbc_obs.Json.parse (Lbc_obs.Obs.render o))
        Lbc_obs.Explorer.events_of_json
    with
    | Error e -> Alcotest.failf "trace not parseable: %s" e
    | Ok events -> events
  in
  Alcotest.(check (list string))
    "trace self-check clean" []
    (Lbc_obs.Explorer.self_check events);
  let f = Lbc_obs.Explorer.flow_summary events in
  Alcotest.(check bool)
    "flows were emitted" true
    (f.Lbc_obs.Explorer.fl_starts > 0);
  Alcotest.(check int)
    "every flow resolves into an apply span" 0
    f.Lbc_obs.Explorer.fl_unresolved

(* Online checkpoints must keep working while a channel is lossy and a
   node is down: each call merges whatever prefix is orderable (possibly
   empty) without corrupting anything. *)
let test_chaos_checkpoint_under_faults () =
  let seed = chaos_seed 1010 in
  with_repro ~scenario:"checkpoint-under-faults" ~seed @@ fun () ->
  let config =
    {
      Config.default with
      Config.repair = true;
      Config.repair_timeout = 100.0;
      Config.lease_timeout = 400.0;
    }
  in
  let nodes = 5 in
  let c = mk_cluster config nodes in
  drop_updates c ~src:0 ~dst:1 true;
  let rng = Lbc_util.Rng.create seed in
  for n = 0 to nodes - 1 do
    worker c rng n 15
  done;
  Cluster.run ~until:100.0 c;
  Cluster.crash c ~node:4;
  let ckpt1 = Cluster.online_checkpoint c in
  Alcotest.(check bool) "checkpoint under faults returns" true (ckpt1 >= 0);
  Cluster.run ~until:900.0 c;
  ignore (Cluster.online_checkpoint c);
  Cluster.rejoin c ~node:4;
  Cluster.run c;
  final_pull c nodes;
  Alcotest.(check bool) "caches converged" true (converged c nodes);
  Alcotest.(check bool) "recovery matches" true (recovery_matches c)

(* ----------------------------------------------------------------- *)
(* Fuzzy checkpoints, retention clamping, partitioned recovery *)

let log_of c n = Lbc_rvm.Rvm.log (Node.rvm (Cluster.node c n))

let ctrl_counts log =
  let counts, _ =
    Lbc_wal.Log.fold_ctrl log ~init:(0, 0) (fun (b, e) _ c ->
        match c.Lbc_wal.Record.kind with
        | Lbc_wal.Record.Ckpt_begin -> (b + 1, e)
        | Lbc_wal.Record.Ckpt_end -> (b, e + 1)
        | Lbc_wal.Record.Region_index -> (b, e))
  in
  counts

let crash_then_rejoin ?mode ?(after_rejoin = fun () -> ()) c ~node:n =
  Lbc_sim.Proc.spawn (Cluster.engine c) ~name:"chaos-controller" (fun () ->
      Cluster.crash c ~node:n;
      let rec rejoin_when_lease_expires () =
        match Cluster.rejoin ?mode c ~node:n with
        | () -> ()
        | exception Invalid_argument _ ->
            Lbc_sim.Proc.sleep 50.0;
            rejoin_when_lease_expires ()
      in
      rejoin_when_lease_expires ();
      after_rejoin ())

(* Satellite regression (the PR's headline bugfix): a node-local
   [Rvm.truncate] used to trim the log to its tail even when the repair
   service still needed the records.  The sequence that exposed it: the
   only update carrying a write is dropped, the writer truncates, then
   crashes — its in-memory retained table dies — and rejoins, rebuilding
   retention from whatever the log still holds.  If the truncate threw
   the record away, the victim's repair fetch finds nothing and the
   cluster strands; with the retention low-water clamp it converges. *)
let test_chaos_truncate_respects_retention () =
  let config =
    {
      Config.fault_tolerant with
      Config.repair_timeout = 100.0;
      Config.lease_timeout = 300.0;
    }
  in
  let nodes = 2 in
  let c = mk_cluster config nodes in
  (* Node 1 writes; its updates to node 0 vanish.  Lock 0 is managed by
     node 0, which stays up throughout. *)
  drop_updates c ~src:1 ~dst:0 true;
  Cluster.spawn c ~node:1 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn 0;
      Node.Txn.set_u64 txn ~region:0 ~offset:0 77L;
      Node.Txn.commit txn;
      (* Node-local stop-the-world truncation right after the commit. *)
      Lbc_rvm.Rvm.truncate (Node.rvm node));
  Cluster.run c;
  Alcotest.(check bool)
    "retention clamp kept the unacked record" true
    (Lbc_wal.Log.record_count (log_of c 1) > 0);
  crash_then_rejoin c ~node:1;
  Cluster.run c;
  Alcotest.(check bool) "writer is back" false (Cluster.is_crashed c 1);
  (* The victim pulls the write: the interlock parks it until the repair
     watchdog fetches the record the writer retained across the
     truncate+crash. *)
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn 0;
      Alcotest.(check int64) "victim sees the write" 77L
        (Node.Txn.get_u64 txn ~region:0 ~offset:0);
      Node.Txn.commit txn);
  Cluster.run c;
  Alcotest.(check bool) "caches converged" true (converged c nodes);
  check_logs_clean "logs clean after truncate+crash+repair" c nodes

(* Satellite: crash in the middle of a fuzzy checkpoint — after the
   Ckpt_begin marker is durable, before the Ckpt_end — then recover.
   The pinned ckpt water kept the log untrimmed, so replay from the
   previous checkpoint covers the fuzzy half-flushed images; rejoin
   lifts the abandoned pin. *)
let test_chaos_crash_mid_fuzzy_checkpoint () =
  let config =
    {
      Config.fault_tolerant with
      Config.repair_timeout = 100.0;
      Config.lease_timeout = 400.0;
      Config.ckpt_slice_bytes = 64;
      Config.ckpt_slice_interval = 50.0;
      Config.ckpt_gossip_delay = 100.0;
    }
  in
  let nodes = 3 in
  let c = mk_cluster config nodes in
  let rng = Lbc_util.Rng.create 1212 in
  for n = 0 to nodes - 1 do
    worker c rng n 15
  done;
  Cluster.run ~until:200.0 c;
  Cluster.fuzzy_checkpoint c ~node:0;
  (* Step the clock until the checkpoint is mid-flight: a live begin
     marker with no matching end. *)
  let deadline = ref 250.0 in
  while
    (let b, e = ctrl_counts (log_of c 0) in
     b <= e)
    && !deadline < 20_000.0
  do
    deadline := !deadline +. 25.0;
    Cluster.run ~until:!deadline c
  done;
  let b, e = ctrl_counts (log_of c 0) in
  Alcotest.(check bool) "checkpoint is mid-flight" true (b > e);
  crash_then_rejoin c ~node:0;
  Cluster.run c;
  Alcotest.(check bool) "node is back up" false (Cluster.is_crashed c 0);
  final_pull c nodes;
  Alcotest.(check bool) "caches converged" true (converged c nodes);
  Alcotest.(check bool) "recovery matches" true (recovery_matches c);
  check_logs_clean "logs clean after mid-ckpt crash" c nodes;
  (* The orphaned begin marker is still live (never trimmed past), and
     the end marker never made it. *)
  let b', e' = ctrl_counts (log_of c 0) in
  Alcotest.(check bool) "begin survives, end absent" true (b' > e')

(* A fuzzy checkpoint on a live cluster trims the log incrementally and
   leaves both markers at the head; everything still converges and
   server-side recovery over the trimmed log reproduces the caches. *)
let test_chaos_fuzzy_checkpoint_trims () =
  let config =
    {
      Config.default with
      Config.ckpt_slice_bytes = 128;
      Config.ckpt_slice_interval = 20.0;
      Config.ckpt_gossip_delay = 50.0;
    }
  in
  let nodes = 3 in
  let c = mk_cluster config nodes in
  let rng = Lbc_util.Rng.create 1313 in
  for n = 0 to nodes - 1 do
    worker c rng n 15
  done;
  Cluster.run ~until:300.0 c;
  Cluster.fuzzy_checkpoint c ~node:0;
  Cluster.run c;
  let log0 = log_of c 0 in
  Alcotest.(check bool) "log head advanced" true
    (Lbc_wal.Log.head log0 > Lbc_wal.Log.header_size);
  let b, e = ctrl_counts log0 in
  Alcotest.(check (pair int int)) "begin and end markers live" (1, 1) (b, e);
  Alcotest.(check int) "water lifted" max_int (Lbc_wal.Log.low_water log0);
  Alcotest.(check bool) "several slices ran" true
    ((Lbc_rvm.Rvm.stats (Node.rvm (Cluster.node c 0))).Lbc_rvm.Rvm.ckpt_slices
    > 1);
  Alcotest.(check bool) "caches converged" true (converged c nodes);
  Alcotest.(check bool) "recovery over trimmed log matches" true
    (recovery_matches c);
  check_logs_clean "logs clean after fuzzy checkpoint" c nodes

(* Partitioned replay: same recovered bytes as serial replay, in less
   virtual time.  Home-segment workload so the lock/region closure splits
   into one partition per node. *)
let test_chaos_partitioned_recovery () =
  let config = { Config.default with Config.charge_costs = true } in
  let nodes = 4 in
  let c = Cluster.create ~config ~nodes () in
  for r = 0 to nodes - 1 do
    Cluster.add_region c ~id:r ~size:region_size;
    Cluster.map_region_all c ~region:r
  done;
  let rng = Lbc_util.Rng.create 1414 in
  for n = 0 to nodes - 1 do
    let rng = Lbc_util.Rng.split rng in
    Cluster.spawn c ~node:n (fun node ->
        (* Each node works only its home lock/region: the partitions are
           disjoint by construction. *)
        for _ = 1 to 10 do
          let txn = Node.Txn.begin_ node in
          Node.Txn.acquire txn n;
          Node.Txn.set_u64 txn ~region:n
            ~offset:(8 * Lbc_util.Rng.int rng (region_size / 8))
            (Lbc_util.Rng.int64 rng);
          Node.Txn.commit txn;
          Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 20.0)
        done)
  done;
  Cluster.run c;
  let images () =
    List.init nodes (fun r ->
        Lbc_storage.Dev.stable_snapshot (Cluster.region_dev c r))
  in
  let outcome_s, t_serial = Cluster.timed_recovery c ~mode:Cluster.Serial in
  let serial_images = images () in
  let outcome_p, t_partitioned =
    Cluster.timed_recovery c ~mode:Cluster.Partitioned
  in
  let partitioned_images = images () in
  Alcotest.(check int) "same records replayed"
    outcome_s.Lbc_rvm.Recovery.records_replayed
    outcome_p.Lbc_rvm.Recovery.records_replayed;
  Alcotest.(check int) "all 40 transactions" 40
    outcome_s.Lbc_rvm.Recovery.records_replayed;
  Alcotest.(check bool) "byte-identical recovered images" true
    (List.for_all2 Bytes.equal serial_images partitioned_images);
  Alcotest.(check bool)
    (Printf.sprintf "partitioned (%.0f) faster than serial (%.0f)"
       t_partitioned t_serial)
    true
    (t_partitioned < t_serial)

(* Tentpole: an on-demand rejoin serves immediately — chains replay on
   first touch while a background drain walks the rest — and ends in
   exactly the same state as a full replay: converged caches, a clean
   merged log, and a recovered database matching the caches byte for
   byte.  The restarted node's first commit feeds
   [time_to_first_commit_us].

   Home-segment workload (each node writes only its own lock's slots):
   a single-node fuzzy checkpoint is only recovery-consistent when the
   trimmed records have no older cross-node writes beneath them, which
   single-writer slots guarantee (the distributed [online_checkpoint]
   guarantees it for arbitrary workloads by trimming every log at one
   consistent cut). *)
let worker_home c rng n iterations =
  let rng = Lbc_util.Rng.split rng in
  Cluster.spawn c ~node:n (fun node ->
      for _ = 1 to iterations do
        let txn = Node.Txn.begin_ node in
        Node.Txn.acquire txn n;
        Node.Txn.set_u64 txn ~region:(lock_region n)
          ~offset:(lock_offset rng n) (Lbc_util.Rng.int64 rng);
        Node.Txn.commit txn;
        Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 20.0)
      done)

let test_chaos_ondemand_rejoin () =
  let seed = chaos_seed 1515 in
  with_repro ~scenario:"rejoin-under-load" ~seed @@ fun () ->
  let config =
    {
      Config.fault_tolerant with
      Config.repair_timeout = 100.0;
      Config.lease_timeout = 400.0;
      Config.ckpt_slice_bytes = 128;
      Config.ckpt_slice_interval = 20.0;
      Config.ckpt_gossip_delay = 50.0;
      Config.trace = true;
    }
  in
  let nodes = 3 in
  let c = mk_cluster config nodes in
  let rng = Lbc_util.Rng.create seed in
  for n = 0 to nodes - 1 do
    worker_home c rng n 10
  done;
  Cluster.run c;
  (* Persist a region-index control record with a fuzzy checkpoint so
     the rejoin seeds its chains from it instead of rescanning... *)
  Cluster.fuzzy_checkpoint c ~node:0;
  Cluster.run c;
  (* ...then grow a post-checkpoint tail for the index to extend over. *)
  for n = 0 to nodes - 1 do
    worker_home c rng n 10
  done;
  Cluster.run c;
  crash_then_rejoin ~mode:Node.On_demand c ~node:0;
  Cluster.run c;
  Alcotest.(check bool) "node is back up" false (Cluster.is_crashed c 0);
  (* Load on the freshly-rejoined node: first touches replay chains on
     demand, the background drain warms the rest. *)
  worker_home c rng 0 5;
  Cluster.run c;
  Alcotest.(check bool) "drain finished" false
    (Node.recovering (Cluster.node c 0));
  final_pull c nodes;
  Alcotest.(check bool) "caches converged" true (converged c nodes);
  Alcotest.(check bool) "recovery matches" true (recovery_matches c);
  check_logs_clean "merged logs clean after on-demand rejoin" c nodes;
  match Lbc_obs.Obs.hist (Cluster.obs c) "time_to_first_commit_us" with
  | Some h ->
      Alcotest.(check bool) "time to first commit observed" true
        (Lbc_obs.Obs.Histogram.count h > 0)
  | None -> Alcotest.fail "no time_to_first_commit_us histogram"

(* Satellite regression: with lazy propagation a peer's fetch must not
   be answered from a not-yet-replayed chain.  Node 1 commits writes
   only it knows about (lazy: nothing is broadcast), crashes, and
   rejoins on demand; a fetch injected before the background drain has
   run a single step must block on the chain replay and serve the
   post-crash bytes — without the warmth gate it would answer from the
   empty (stale) retained table and strand the peer in the interlock
   (repair is off, so nothing would heal it).  The serializability
   oracle judges the final images. *)
let test_chaos_ondemand_fetch_gate () =
  let config =
    {
      Config.default with
      Config.propagation = Config.Lazy;
      Config.lease_timeout = 300.0;
    }
  in
  let nodes = 2 in
  let c = mk_cluster config nodes in
  Cluster.spawn c ~node:1 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn 0;
      Node.Txn.set_u64 txn ~region:0 ~offset:0 66L;
      Node.Txn.commit txn;
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn 0;
      Node.Txn.set_u64 txn ~region:0 ~offset:0 88L;
      Node.Txn.commit txn);
  Cluster.run c;
  crash_then_rejoin ~mode:Node.On_demand c ~node:1
    ~after_rejoin:(fun () ->
      (* The controller has not yielded since the rejoin: the drain has
         not run, every chain is still cold. *)
      Alcotest.(check bool) "chains cold right after rejoin" true
        (Node.recovering (Cluster.node c 1));
      Node.handle (Cluster.node c 1) ~src:0 (Msg.Fetch { lock = 0; have = 0 }));
  Cluster.run c;
  Alcotest.(check bool) "writer is back" false (Cluster.is_crashed c 1);
  (* The injected fetch's reply already healed node 0: its acquire
     passes the interlock locally and sees the newest committed bytes. *)
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn 0;
      Alcotest.(check int64) "fetch served post-replay bytes" 88L
        (Node.Txn.get_u64 txn ~region:0 ~offset:0);
      Node.Txn.commit txn);
  Cluster.run c;
  Alcotest.(check bool) "caches converged" true (converged c nodes);
  let streams =
    List.map Lbc_analysis.Invariants.stream_of_log (logs_of c nodes)
  in
  let finals =
    List.init nodes (fun n ->
        ( Printf.sprintf "node %d" n,
          fun r ->
            Node.read (Cluster.node c n) ~region:r ~offset:0 ~len:region_size ))
  in
  let vs =
    Lbc_analysis.Serialize.check
      ~regions:(List.init regions (fun r -> (r, region_size)))
      ~finals streams
  in
  Alcotest.(check (list string))
    "serializable with on-demand replay" []
    (List.map Lbc_analysis.Violation.to_string vs)

let suites =
  [
    ( "chaos",
      [
        Alcotest.test_case "eager 4 nodes" `Quick test_chaos_eager;
        Alcotest.test_case "eager + online checkpoints" `Quick
          test_chaos_eager_checkpoints;
        Alcotest.test_case "multicast 5 nodes" `Quick test_chaos_multicast;
        Alcotest.test_case "costs charged" `Quick test_chaos_costs_charged;
        Alcotest.test_case "lazy propagation" `Quick test_chaos_lazy;
        Alcotest.test_case "pinned readers" `Quick test_chaos_pinned_readers;
        QCheck_alcotest.to_alcotest prop_random_clusters_converge;
        Alcotest.test_case "simulation deterministic" `Quick
          test_simulation_deterministic;
        Alcotest.test_case "traced run passes trace self-check" `Quick
          test_chaos_traced;
      ] );
    ( "chaos-faults",
      [
        Alcotest.test_case "dropped updates heal via repair" `Quick
          test_chaos_drop_repair_heals;
        Alcotest.test_case "dropped updates strand without repair" `Quick
          test_chaos_drop_without_repair_strands;
        Alcotest.test_case "crash, lease reclaim, rejoin" `Quick
          test_chaos_crash_rejoin;
        Alcotest.test_case "online checkpoint under faults" `Quick
          test_chaos_checkpoint_under_faults;
      ] );
    ( "chaos-ckpt",
      [
        Alcotest.test_case "truncate respects repair retention" `Quick
          test_chaos_truncate_respects_retention;
        Alcotest.test_case "crash mid fuzzy checkpoint" `Quick
          test_chaos_crash_mid_fuzzy_checkpoint;
        Alcotest.test_case "fuzzy checkpoint trims live cluster" `Quick
          test_chaos_fuzzy_checkpoint_trims;
        Alcotest.test_case "partitioned recovery" `Quick
          test_chaos_partitioned_recovery;
      ] );
    ( "chaos-ondemand",
      [
        Alcotest.test_case "on-demand rejoin under load" `Quick
          test_chaos_ondemand_rejoin;
        Alcotest.test_case "cold fetch gated by chain replay" `Quick
          test_chaos_ondemand_fetch_gate;
      ] );
  ]
