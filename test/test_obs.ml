(* Tests for the tracing/metrics layer (lib/obs): histogram math, the
   hand-rolled JSON codec, span/flow emission and the explorer's
   self-check, a fully traced cluster run cross-checked against the
   Report counters, and golden-style renderings of Report.pp_cluster. *)

open Lbc_core
module Obs = Lbc_obs.Obs
module Json = Lbc_obs.Json
module Explorer = Lbc_obs.Explorer
module H = Obs.Histogram

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Parse a trace document into explorer events, failing the test on any
   JSON or structural error. *)
let events_of_doc doc =
  match Json.parse doc with
  | Error e -> Alcotest.failf "trace not parseable: %s" e
  | Ok j -> (
      match Explorer.events_of_json j with
      | Error e -> Alcotest.failf "not a trace document: %s" e
      | Ok events -> events)

(* ----------------------------------------------------------------- *)
(* Histograms *)

let test_histogram_basics () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (H.percentile h 50.0);
  for v = 1 to 1000 do
    H.observe h (float_of_int v)
  done;
  Alcotest.(check int) "count" 1000 (H.count h);
  Alcotest.(check (float 0.001)) "sum" 500_500.0 (H.sum h);
  Alcotest.(check (float 0.001)) "mean" 500.5 (H.mean h);
  Alcotest.(check (float 0.0)) "min" 1.0 (H.min_value h);
  Alcotest.(check (float 0.0)) "max" 1000.0 (H.max_value h);
  let p50 = H.percentile h 50.0 in
  let p95 = H.percentile h 95.0 in
  let p99 = H.percentile h 99.0 in
  (* Bucket interpolation is coarse (power-of-two buckets); check order
     and bucket-level accuracy, not exact values. *)
  Alcotest.(check bool) "p50 <= p95" true (p50 <= p95);
  Alcotest.(check bool) "p95 <= p99" true (p95 <= p99);
  Alcotest.(check bool) "p99 <= max" true (p99 <= H.max_value h);
  Alcotest.(check bool) "p50 in its bucket" true (p50 >= 250.0 && p50 <= 750.0);
  Alcotest.(check bool) "p99 near the top" true (p99 >= 900.0)

let test_histogram_merge () =
  let a = H.create () and b = H.create () in
  List.iter (H.observe a) [ 2.0; 4.0; 8.0 ];
  List.iter (H.observe b) [ 100.0; 200.0 ];
  H.merge ~into:a b;
  Alcotest.(check int) "merged count" 5 (H.count a);
  Alcotest.(check (float 0.001)) "merged sum" 314.0 (H.sum a);
  Alcotest.(check (float 0.0)) "merged min" 2.0 (H.min_value a);
  Alcotest.(check (float 0.0)) "merged max" 200.0 (H.max_value a);
  Alcotest.(check int) "source untouched" 2 (H.count b)

(* ----------------------------------------------------------------- *)
(* JSON codec *)

let test_json_parse () =
  match Json.parse {|{"a": [1, 2.5, "x\nA"], "b": {"c": true, "d": null}}|}
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
      let a = Option.get (Json.to_arr (Option.get (Json.member "a" j))) in
      Alcotest.(check int) "array length" 3 (List.length a);
      Alcotest.(check (float 0.0))
        "first num" 1.0
        (Option.get (Json.to_num (List.nth a 0)));
      Alcotest.(check (float 0.0))
        "second num" 2.5
        (Option.get (Json.to_num (List.nth a 1)));
      Alcotest.(check string)
        "escapes decoded" "x\nA"
        (Option.get (Json.to_str (List.nth a 2)));
      let b = Option.get (Json.member "b" j) in
      Alcotest.(check bool)
        "nested bool" true
        (match Json.member "c" b with Some (Json.Bool v) -> v | _ -> false);
      Alcotest.(check bool)
        "nested null" true
        (Json.member "d" b = Some Json.Null)

let test_json_rejects () =
  let bad s =
    match Json.parse s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "trailing bytes" true (bad {|{"a": 1} x|});
  Alcotest.(check bool) "unterminated string" true (bad {|{"a": "oops|});
  Alcotest.(check bool) "bare token" true (bad "nope");
  Alcotest.(check bool) "empty input" true (bad "")

let test_json_escape () =
  Alcotest.(check string)
    "escape specials" {|a\"b\n\t\\|}
    (Json.escape "a\"b\n\t\\")

(* ----------------------------------------------------------------- *)
(* Disabled sink: every entry point is a no-op *)

let test_disabled_noop () =
  let o = Obs.disabled in
  Alcotest.(check bool) "not enabled" false (Obs.enabled o);
  let sp = Obs.span_begin o ~name:"x" ~pid:0 ~tid:0 () in
  Alcotest.(check bool) "null span" true (sp == Obs.null_span);
  Alcotest.(check (float 0.0)) "span_end" 0.0 (Obs.span_end o sp);
  Obs.instant o ~name:"x" ~pid:0 ~tid:0 ();
  Obs.flow_start o ~id:1 ~pid:0 ~tid:0;
  Alcotest.(check bool)
    "flow_end" true
    (Obs.flow_end o ~id:1 ~pid:0 ~tid:0 = None);
  Obs.count o "c" 1;
  Alcotest.(check int) "counter stays 0" 0 (Obs.counter o "c");
  Obs.observe o "h" 5.0;
  Alcotest.(check bool) "no histogram" true (Obs.hist o "h" = None);
  Obs.mark o "m";
  Alcotest.(check bool) "no mark" true (Obs.take_mark o "m" = None)

(* ----------------------------------------------------------------- *)
(* Span / flow emission against a fake clock *)

let test_spans_flows_render () =
  let clock = ref 0.0 in
  let o = Obs.create ~now:(fun () -> !clock) ~nodes:2 () in
  let id = Obs.flow_id ~lock:3 ~seqno:1 in
  clock := 10.0;
  let commit = Obs.span_begin o ~name:"commit" ~pid:0 ~tid:Obs.lane_txn () in
  clock := 15.0;
  Obs.flow_start o ~id ~pid:0 ~tid:Obs.lane_txn;
  clock := 20.0;
  Alcotest.(check (float 0.001)) "commit dur" 10.0 (Obs.span_end o commit);
  clock := 30.0;
  let apply = Obs.span_begin o ~name:"apply" ~pid:1 ~tid:Obs.lane_apply () in
  let lag = Obs.flow_end o ~id ~pid:1 ~tid:Obs.lane_apply in
  Alcotest.(check bool) "lag measured" true (lag = Some 15.0);
  clock := 35.0;
  ignore (Obs.span_end o apply : float);
  Alcotest.(check bool)
    "unknown flow id" true
    (Obs.flow_end o ~id:9999 ~pid:1 ~tid:Obs.lane_apply = None);
  let events = events_of_doc (Obs.render o) in
  Alcotest.(check (list string))
    "self-check clean" [] (Explorer.self_check events);
  let f = Explorer.flow_summary events in
  Alcotest.(check int) "flow starts" 1 f.Explorer.fl_starts;
  Alcotest.(check int) "flow ends" 1 f.Explorer.fl_ends;
  Alcotest.(check int) "none unresolved" 0 f.Explorer.fl_unresolved

let test_marks () =
  let clock = ref 100.0 in
  let o = Obs.create ~now:(fun () -> !clock) ~nodes:1 () in
  Obs.mark o "fetch:0:7";
  clock := 140.0;
  Alcotest.(check bool)
    "elapsed" true
    (Obs.take_mark o "fetch:0:7" = Some 40.0);
  Alcotest.(check bool) "consumed" true (Obs.take_mark o "fetch:0:7" = None)

(* The self-check must reject traces that violate the contract. *)
let test_self_check_catches () =
  let check_bad what doc =
    Alcotest.(check bool)
      what true
      (Explorer.self_check (events_of_doc doc) <> [])
  in
  check_bad "flow end without start"
    {|{"traceEvents": [
        {"name":"apply","cat":"pipeline","ph":"X","pid":1,"tid":1,"ts":5.0,"dur":10.0},
        {"name":"write","cat":"flow","ph":"f","bp":"e","id":7,"pid":1,"tid":1,"ts":6.0}]}|};
  check_bad "negative duration"
    {|{"traceEvents": [
        {"name":"txn","cat":"pipeline","ph":"X","pid":0,"tid":0,"ts":5.0,"dur":-1.0}]}|};
  check_bad "time runs backwards"
    {|{"traceEvents": [
        {"name":"a","cat":"pipeline","ph":"i","s":"t","pid":0,"tid":0,"ts":50.0},
        {"name":"b","cat":"pipeline","ph":"i","s":"t","pid":0,"tid":0,"ts":10.0}]}|};
  check_bad "flow end outside any apply span"
    {|{"traceEvents": [
        {"name":"write","cat":"flow","ph":"s","id":7,"pid":0,"tid":0,"ts":1.0},
        {"name":"write","cat":"flow","ph":"f","bp":"e","id":7,"pid":1,"tid":1,"ts":6.0}]}|}

(* ----------------------------------------------------------------- *)
(* A traced cluster run: the trace passes its own self-check and its
   metrics agree with the Report counters. *)

let region_size = 1024

let mk_cluster config nodes =
  let c = Cluster.create ~config ~nodes () in
  Cluster.add_region c ~id:0 ~size:region_size;
  Cluster.map_region_all c ~region:0;
  c

let script_writer c ~node ~lock ~commits =
  Cluster.spawn c ~node (fun nd ->
      for i = 1 to commits do
        let txn = Node.Txn.begin_ nd in
        Node.Txn.acquire txn lock;
        Node.Txn.set_u64 txn ~region:0 ~offset:(8 * lock)
          (Int64.of_int ((node * 1000) + i));
        Node.Txn.commit txn;
        Lbc_sim.Proc.sleep 10.0
      done)

let total_commits c nodes =
  let sum = ref 0 in
  for n = 0 to nodes - 1 do
    let s = Lbc_rvm.Rvm.stats (Node.rvm (Cluster.node c n)) in
    sum := !sum + s.Lbc_rvm.Rvm.commits
  done;
  !sum

let test_traced_cluster_run () =
  let config = { Config.default with Config.trace = true } in
  let nodes = 3 in
  let c = mk_cluster config nodes in
  script_writer c ~node:0 ~lock:0 ~commits:4;
  script_writer c ~node:1 ~lock:1 ~commits:3;
  script_writer c ~node:2 ~lock:2 ~commits:2;
  Cluster.run c;
  let o = Cluster.obs c in
  Alcotest.(check bool) "tracing on" true (Obs.enabled o);
  let events = events_of_doc (Obs.render o) in
  Alcotest.(check (list string))
    "trace self-check clean" [] (Explorer.self_check events);
  (* Every committed write's flow arrow resolves into an apply span
     on every sharing peer: 9 commits broadcast to 2 peers each. *)
  let f = Explorer.flow_summary events in
  Alcotest.(check int) "flow starts" 9 f.Explorer.fl_starts;
  Alcotest.(check int) "flow ends" 18 f.Explorer.fl_ends;
  Alcotest.(check int) "none unresolved" 0 f.Explorer.fl_unresolved;
  (* The explorer sees the pipeline stages. *)
  let stages = Explorer.stage_breakdown events in
  let stage n = List.exists (fun s -> s.Explorer.st_name = n) stages in
  Alcotest.(check bool) "commit stage" true (stage "commit");
  Alcotest.(check bool) "apply stage" true (stage "apply");
  Alcotest.(check bool) "net.send stage" true (stage "net.send");
  Alcotest.(check bool)
    "critical path found" true
    (Explorer.critical_path events <> None);
  (* Metrics agree with the Report counters. *)
  let commits = total_commits c nodes in
  Alcotest.(check int) "nine commits" 9 commits;
  (match Obs.hist o "commit_us" with
  | None -> Alcotest.fail "no commit_us histogram"
  | Some h ->
      Alcotest.(check int) "one commit_us sample per commit" commits
        (H.count h));
  (match Obs.hist o "apply_lag_us" with
  | None -> Alcotest.fail "no apply_lag_us histogram"
  | Some h ->
      Alcotest.(check int) "one apply_lag sample per flow end" 18 (H.count h));
  Alcotest.(check int)
    "net_msgs counter matches fabric accounting"
    (Cluster.total_messages c)
    (Obs.counter o "net_msgs")

(* With tracing off (the default), the cluster still carries the
   always-on flight sink: no JSON buffering, but rings and the metric
   registry stay live. *)
let test_untraced_cluster_keeps_flight () =
  let c = mk_cluster Config.default 2 in
  script_writer c ~node:0 ~lock:0 ~commits:2;
  Cluster.run c;
  let o = Cluster.obs c in
  Alcotest.(check bool) "sink live" true (Obs.enabled o);
  Alcotest.(check bool) "json tracing off" false (Obs.tracing o);
  Alcotest.(check bool) "flight rings on" true (Obs.flight_on o);
  (* The registry feeds Report and the wall-clock bench percentiles. *)
  Alcotest.(check int)
    "net_msgs counter matches fabric accounting"
    (Cluster.total_messages c)
    (Obs.counter o "net_msgs");
  Alcotest.(check bool)
    "commit_us histogram live" true
    (Obs.hist o "commit_us" <> None);
  (* Both nodes' rings saw events (node 0 commits, node 1 applies). *)
  let stats = Obs.ring_stats o in
  Alcotest.(check int) "one ring per node" 2 (Array.length stats);
  Array.iteri
    (fun i (recorded, dropped, bytes) ->
      if recorded <= 0 then Alcotest.failf "ring %d recorded nothing" i;
      if dropped <> 0 then Alcotest.failf "ring %d dropped %d" i dropped;
      if bytes <= 0 then Alcotest.failf "ring %d used no bytes" i)
    stats

(* Opting out of the flight recorder too restores the shared disabled
   sink, and dump_flight refuses. *)
let test_flightless_cluster_is_silent () =
  let c = mk_cluster { Config.default with Config.flight = false } 2 in
  script_writer c ~node:0 ~lock:0 ~commits:2;
  Cluster.run c;
  let o = Cluster.obs c in
  Alcotest.(check bool) "not enabled" false (Obs.enabled o);
  Alcotest.(check bool) "disabled singleton" true (o == Obs.disabled);
  Alcotest.(check int) "no counters" 0 (Obs.counter o "net_msgs");
  Alcotest.(check bool) "no histograms" true (Obs.hists o = []);
  Alcotest.(check bool)
    "dump_flight refuses" true
    (match Cluster.dump_flight c with
    | (_ : string) -> false
    | exception Invalid_argument _ -> true)

(* ----------------------------------------------------------------- *)
(* Flight recorder: ring wrap/drop properties, LBCF codec round-trip,
   and a cluster dump decoded back clean. *)

module Flight = Lbc_obs.Flight
module FD = Lbc_obs.Flight_dump

(* A replayable random event stream: kind, interned-name index, lane,
   timestamp increment, payload. *)
type op = {
  op_kind : int; (* 0 span, 1 instant, 2 count, 3 flow *)
  op_name : int;
  op_lane : int;
  op_dts : int;
  op_arg : int;
}

let names_pool = [| "commit"; "apply"; "wal.force"; "lock.wait"; "net.send" |]

let op_gen =
  let open QCheck.Gen in
  int_bound 3 >>= fun op_kind ->
  int_bound (Array.length names_pool - 1) >>= fun op_name ->
  int_bound 5 >>= fun op_lane ->
  int_bound 5_000 >>= fun op_dts ->
  int_bound 100_000 >>= fun op_arg ->
  return { op_kind; op_name; op_lane; op_dts; op_arg }

let op_print o =
  Printf.sprintf "{k=%d n=%d l=%d dt=%d a=%d}" o.op_kind o.op_name o.op_lane
    o.op_dts o.op_arg

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 0 300) op_gen)

(* Replay ops into a ring; returns the absolute timestamps used. *)
let record_ops r ops =
  let ts = ref 0 in
  List.map
    (fun op ->
      ts := !ts + op.op_dts;
      let name = names_pool.(op.op_name) in
      (match op.op_kind with
      | 0 ->
          Flight.record_span r ~ts_ns:!ts ~name ~lane:op.op_lane
            ~dur_ns:op.op_arg
      | 1 -> Flight.record_instant r ~ts_ns:!ts ~name ~lane:op.op_lane
      | 2 ->
          Flight.record_count r ~ts_ns:!ts ~name ~delta:(op.op_arg - 50_000)
      | _ ->
          Flight.record_flow r ~ts_ns:!ts ~head:(op.op_arg land 1 = 1)
            ~id:op.op_arg ~lane:op.op_lane);
      !ts)
    ops

let dump_of_ring r =
  let s =
    FD.encode ~clock:"virtual-us" ~dumped_at_ns:(Flight.last_ts_ns r)
      [| (0, r) |]
  in
  match FD.of_string s with
  | Error e -> Alcotest.failf "LBCF decode failed: %s" e
  | Ok d -> d

(* Any stream into a minimum-size ring: whole-record eviction keeps the
   books balanced and the surviving suffix decodable and monotone. *)
let qcheck_ring_wrap =
  QCheck.Test.make ~name:"flight ring wrap: drop accounting + self-check"
    ~count:200 ops_arb (fun ops ->
      let r = Flight.create ~cap_bytes:256 () in
      ignore (record_ops r ops : int list);
      let d = dump_of_ring r in
      let ring = d.FD.d_rings.(0) in
      Flight.recorded r = List.length ops
      && FD.self_check d = []
      && Array.length ring.FD.r_events
         = Flight.recorded r - Flight.dropped r
      && (ops = [] || Flight.dropped r > 0 || Flight.bytes_used r <= 256))

(* A ring big enough never to wrap round-trips every event exactly:
   kind, name, lane, absolute timestamp, duration and payload all
   survive the varint codec. *)
let qcheck_ring_roundtrip =
  QCheck.Test.make ~name:"flight codec round-trip (no wrap)" ~count:200
    ops_arb (fun ops ->
      let r = Flight.create ~cap_bytes:(1 lsl 20) () in
      let times = record_ops r ops in
      let d = dump_of_ring r in
      let ring = d.FD.d_rings.(0) in
      let expect =
        List.map2
          (fun op ts ->
            match op.op_kind with
            | 0 ->
                (FD.Span, names_pool.(op.op_name), op.op_lane, ts, op.op_arg, 0)
            | 1 -> (FD.Instant, names_pool.(op.op_name), op.op_lane, ts, 0, 0)
            | 2 ->
                (FD.Count, names_pool.(op.op_name), 0, ts, 0, op.op_arg - 50_000)
            | _ ->
                ( (if op.op_arg land 1 = 1 then FD.Flow_end else FD.Flow_start),
                  "", op.op_lane, ts, 0, op.op_arg ))
          ops times
      in
      let got =
        Array.to_list
          (Array.map
             (fun (e : FD.event) ->
               ( e.FD.ev_kind, e.FD.ev_name, e.FD.ev_lane, e.FD.ev_ts_ns,
                 e.FD.ev_dur_ns, e.FD.ev_arg ))
             ring.FD.r_events)
      in
      Flight.dropped r = 0 && FD.self_check d = [] && got = expect)

(* Deterministic overwrite check: flood a minimum ring and require the
   survivors to be exactly the newest suffix. *)
let test_flight_newest_survive () =
  let r = Flight.create ~cap_bytes:256 () in
  for i = 1 to 1000 do
    Flight.record_instant r ~ts_ns:(i * 10) ~name:"tick" ~lane:0
  done;
  Alcotest.(check int) "all recorded" 1000 (Flight.recorded r);
  Alcotest.(check bool) "wrapped" true (Flight.dropped r > 0);
  let d = dump_of_ring r in
  Alcotest.(check (list string)) "self-check clean" [] (FD.self_check d);
  let evs = d.FD.d_rings.(0).FD.r_events in
  let n = Array.length evs in
  Alcotest.(check int) "survivors" (1000 - Flight.dropped r) n;
  (* Newest event anchors at last_ts_ns; the suffix is contiguous. *)
  Alcotest.(check int) "anchor" 10_000 evs.(n - 1).FD.ev_ts_ns;
  Array.iteri
    (fun i ev ->
      let want = (1000 - n + 1 + i) * 10 in
      if ev.FD.ev_ts_ns <> want then
        Alcotest.failf "survivor %d at ts %d, want %d" i ev.FD.ev_ts_ns want)
    evs

(* Out-of-order timestamps are clamped monotone, never rejected. *)
let test_flight_monotone_clamp () =
  let r = Flight.create () in
  Flight.record_instant r ~ts_ns:100 ~name:"a" ~lane:0;
  Flight.record_instant r ~ts_ns:50 ~name:"b" ~lane:0;
  Flight.record_instant r ~ts_ns:120 ~name:"c" ~lane:0;
  let d = dump_of_ring r in
  Alcotest.(check (list string)) "self-check clean" [] (FD.self_check d);
  let ts =
    Array.to_list
      (Array.map (fun e -> e.FD.ev_ts_ns) d.FD.d_rings.(0).FD.r_events)
  in
  Alcotest.(check (list int)) "clamped" [ 100; 100; 120 ] ts

(* A garbage file and a truncated dump both fail loudly. *)
let test_flight_decode_rejects () =
  (match FD.of_string "not a flight dump" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  let r = Flight.create () in
  Flight.record_instant r ~ts_ns:10 ~name:"x" ~lane:0;
  let s = FD.encode ~clock:"virtual-us" ~dumped_at_ns:10 [| (0, r) |] in
  match FD.of_string (String.sub s 0 (String.length s - 3)) with
  | Error _ -> ()
  | Ok d ->
      (* A truncated body may still parse the header; then the ring
         must carry decode errors that fail the self-check. *)
      if FD.self_check d = [] then
        Alcotest.fail "truncated dump passed self-check"

(* An untraced cluster run dumps a decodable, self-check-clean flight
   file with events for every node — the instrumented path end to end. *)
let test_cluster_flight_dump () =
  let nodes = 3 in
  let c = mk_cluster Config.default nodes in
  script_writer c ~node:0 ~lock:0 ~commits:4;
  script_writer c ~node:1 ~lock:1 ~commits:3;
  script_writer c ~node:2 ~lock:2 ~commits:2;
  Cluster.run c;
  let path = Filename.temp_file "lbc-flight" ".bin" in
  let written = Cluster.dump_flight ~path c in
  Alcotest.(check string) "dump path" path written;
  Alcotest.(check bool) "last_flight set" true (Cluster.last_flight c = Some path);
  Alcotest.(check bool) "magic detected" true (FD.is_flight_file path);
  (match FD.read path with
  | Error e -> Alcotest.failf "read failed: %s" e
  | Ok d ->
      Alcotest.(check (list string)) "self-check clean" [] (FD.self_check d);
      Alcotest.(check string) "sim clock" "virtual-us" d.FD.d_clock;
      Alcotest.(check int) "one ring per node" nodes
        (Array.length d.FD.d_rings);
      Array.iter
        (fun ring ->
          if Array.length ring.FD.r_events = 0 then
            Alcotest.failf "ring %d has no events" ring.FD.r_id)
        d.FD.d_rings;
      (* The merged stream is globally monotone. *)
      let merged = FD.merged d in
      Array.iteri
        (fun i ev ->
          if i > 0 && ev.FD.ev_ts_ns < merged.(i - 1).FD.ev_ts_ns then
            Alcotest.failf "merged stream steps backwards at %d" i)
        merged;
      (* And it renders to parseable Chrome-trace JSON. *)
      match Json.parse (FD.render_chrome d) with
      | Error e -> Alcotest.failf "render_chrome not JSON: %s" e
      | Ok _ -> ());
  Sys.remove path

(* Periodic metrics snapshots: rows accumulate on the event hot path at
   the configured virtual interval, and each row is a JSON object. *)
let test_metrics_snapshots () =
  let clock = ref 0.0 in
  let o =
    Obs.create ~json:false ~now:(fun () -> !clock) ~nodes:1
      ~snapshot_interval_us:100.0 ()
  in
  for i = 1 to 50 do
    clock := float_of_int i *. 25.0;
    Obs.count o ~pid:0 "ticks" 1;
    Obs.observe o "tick_us" 25.0;
    (* Snapshots piggyback on the event hot path — no timers. *)
    Obs.instant o ~name:"tick" ~pid:0 ~tid:0 ()
  done;
  let rows = Obs.snapshot_rows o in
  Alcotest.(check bool)
    (Printf.sprintf "rows at 100us intervals (got %d)" rows)
    true
    (rows >= 8 && rows <= 13);
  String.split_on_char '\n' (Obs.snapshots o)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match Json.parse line with
         | Error e -> Alcotest.failf "snapshot row not JSON (%s): %s" e line
         | Ok j ->
             if Json.member "ts_us" j = None then
               Alcotest.failf "snapshot row without ts_us: %s" line)

(* ----------------------------------------------------------------- *)
(* Golden-style rendering of Report.pp_cluster *)

let test_report_golden () =
  let config =
    { Config.default with Config.group_commit = true; Config.trace = true }
  in
  let nodes = 3 in
  let c = mk_cluster config nodes in
  script_writer c ~node:0 ~lock:0 ~commits:2;
  script_writer c ~node:1 ~lock:1 ~commits:1;
  Cluster.spawn c ~node:0 (fun nd ->
      let txn = Node.Txn.begin_ nd in
      Node.Txn.acquire txn 2;
      Node.Txn.abort txn);
  Cluster.run c;
  let rendered = Format.asprintf "%a" Report.pp_cluster c in
  let expect what sub =
    if not (contains rendered sub) then
      Alcotest.failf "%s: %S not found in:\n%s" what sub rendered
  in
  expect "header" "cluster: 3 nodes";
  expect "copy counters" "data path:";
  expect "copy counters" "encode arenas";
  expect "node 0 stats" "node 0: 2 commits (1 aborts)";
  expect "node 1 stats" "node 1: 1 commits (0 aborts)";
  expect "group commit" "group commit:";
  expect "batches" "batches";
  expect "flight line" "obs: flight";
  expect "flight accounting" "(rec/drop/bytes)";
  if contains rendered "blocked:" then
    Alcotest.fail "quiescent cluster must not report blocked processes"

(* A stranded process must surface in the blocked list. *)
let test_report_blocked_list () =
  let c = mk_cluster Config.default 2 in
  Lbc_net.Fabric.set_drop (Cluster.fabric c) ~src:0 ~dst:1 true;
  Cluster.spawn c ~node:0 (fun nd ->
      let txn = Node.Txn.begin_ nd in
      Node.Txn.acquire txn 0;
      Node.Txn.set_u64 txn ~region:0 ~offset:0 7L;
      Node.Txn.commit txn);
  Cluster.spawn c ~node:1 (fun nd ->
      Lbc_sim.Proc.sleep 50.0;
      let txn = Node.Txn.begin_ nd in
      Node.Txn.acquire txn 0;
      (* unreachable: the update was dropped and nothing repairs it *)
      Node.Txn.commit txn);
  Cluster.run ~check_stranded:false c;
  let rendered = Format.asprintf "%a" Report.pp_cluster c in
  Alcotest.(check bool)
    "blocked list rendered" true
    (contains rendered "blocked:")

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
        Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        Alcotest.test_case "json parse" `Quick test_json_parse;
        Alcotest.test_case "json rejects garbage" `Quick test_json_rejects;
        Alcotest.test_case "json escape" `Quick test_json_escape;
        Alcotest.test_case "disabled sink is a no-op" `Quick
          test_disabled_noop;
        Alcotest.test_case "spans and flows render" `Quick
          test_spans_flows_render;
        Alcotest.test_case "marks" `Quick test_marks;
        Alcotest.test_case "self-check catches bad traces" `Quick
          test_self_check_catches;
      ] );
    ( "obs-flight",
      [
        QCheck_alcotest.to_alcotest qcheck_ring_wrap;
        QCheck_alcotest.to_alcotest qcheck_ring_roundtrip;
        Alcotest.test_case "newest events survive wrap" `Quick
          test_flight_newest_survive;
        Alcotest.test_case "monotone timestamp clamp" `Quick
          test_flight_monotone_clamp;
        Alcotest.test_case "decoder rejects garbage" `Quick
          test_flight_decode_rejects;
        Alcotest.test_case "cluster dump decodes clean" `Quick
          test_cluster_flight_dump;
        Alcotest.test_case "metrics snapshots" `Quick test_metrics_snapshots;
      ] );
    ( "obs-cluster",
      [
        Alcotest.test_case "traced run: self-check + report agreement"
          `Quick test_traced_cluster_run;
        Alcotest.test_case "untraced run keeps the flight sink" `Quick
          test_untraced_cluster_keeps_flight;
        Alcotest.test_case "flightless run collects nothing" `Quick
          test_flightless_cluster_is_silent;
        Alcotest.test_case "report golden rendering" `Quick
          test_report_golden;
        Alcotest.test_case "report blocked list" `Quick
          test_report_blocked_list;
      ] );
  ]
