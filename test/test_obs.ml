(* Tests for the tracing/metrics layer (lib/obs): histogram math, the
   hand-rolled JSON codec, span/flow emission and the explorer's
   self-check, a fully traced cluster run cross-checked against the
   Report counters, and golden-style renderings of Report.pp_cluster. *)

open Lbc_core
module Obs = Lbc_obs.Obs
module Json = Lbc_obs.Json
module Explorer = Lbc_obs.Explorer
module H = Obs.Histogram

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Parse a trace document into explorer events, failing the test on any
   JSON or structural error. *)
let events_of_doc doc =
  match Json.parse doc with
  | Error e -> Alcotest.failf "trace not parseable: %s" e
  | Ok j -> (
      match Explorer.events_of_json j with
      | Error e -> Alcotest.failf "not a trace document: %s" e
      | Ok events -> events)

(* ----------------------------------------------------------------- *)
(* Histograms *)

let test_histogram_basics () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (H.percentile h 50.0);
  for v = 1 to 1000 do
    H.observe h (float_of_int v)
  done;
  Alcotest.(check int) "count" 1000 (H.count h);
  Alcotest.(check (float 0.001)) "sum" 500_500.0 (H.sum h);
  Alcotest.(check (float 0.001)) "mean" 500.5 (H.mean h);
  Alcotest.(check (float 0.0)) "min" 1.0 (H.min_value h);
  Alcotest.(check (float 0.0)) "max" 1000.0 (H.max_value h);
  let p50 = H.percentile h 50.0 in
  let p95 = H.percentile h 95.0 in
  let p99 = H.percentile h 99.0 in
  (* Bucket interpolation is coarse (power-of-two buckets); check order
     and bucket-level accuracy, not exact values. *)
  Alcotest.(check bool) "p50 <= p95" true (p50 <= p95);
  Alcotest.(check bool) "p95 <= p99" true (p95 <= p99);
  Alcotest.(check bool) "p99 <= max" true (p99 <= H.max_value h);
  Alcotest.(check bool) "p50 in its bucket" true (p50 >= 250.0 && p50 <= 750.0);
  Alcotest.(check bool) "p99 near the top" true (p99 >= 900.0)

let test_histogram_merge () =
  let a = H.create () and b = H.create () in
  List.iter (H.observe a) [ 2.0; 4.0; 8.0 ];
  List.iter (H.observe b) [ 100.0; 200.0 ];
  H.merge ~into:a b;
  Alcotest.(check int) "merged count" 5 (H.count a);
  Alcotest.(check (float 0.001)) "merged sum" 314.0 (H.sum a);
  Alcotest.(check (float 0.0)) "merged min" 2.0 (H.min_value a);
  Alcotest.(check (float 0.0)) "merged max" 200.0 (H.max_value a);
  Alcotest.(check int) "source untouched" 2 (H.count b)

(* ----------------------------------------------------------------- *)
(* JSON codec *)

let test_json_parse () =
  match Json.parse {|{"a": [1, 2.5, "x\nA"], "b": {"c": true, "d": null}}|}
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
      let a = Option.get (Json.to_arr (Option.get (Json.member "a" j))) in
      Alcotest.(check int) "array length" 3 (List.length a);
      Alcotest.(check (float 0.0))
        "first num" 1.0
        (Option.get (Json.to_num (List.nth a 0)));
      Alcotest.(check (float 0.0))
        "second num" 2.5
        (Option.get (Json.to_num (List.nth a 1)));
      Alcotest.(check string)
        "escapes decoded" "x\nA"
        (Option.get (Json.to_str (List.nth a 2)));
      let b = Option.get (Json.member "b" j) in
      Alcotest.(check bool)
        "nested bool" true
        (match Json.member "c" b with Some (Json.Bool v) -> v | _ -> false);
      Alcotest.(check bool)
        "nested null" true
        (Json.member "d" b = Some Json.Null)

let test_json_rejects () =
  let bad s =
    match Json.parse s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "trailing bytes" true (bad {|{"a": 1} x|});
  Alcotest.(check bool) "unterminated string" true (bad {|{"a": "oops|});
  Alcotest.(check bool) "bare token" true (bad "nope");
  Alcotest.(check bool) "empty input" true (bad "")

let test_json_escape () =
  Alcotest.(check string)
    "escape specials" {|a\"b\n\t\\|}
    (Json.escape "a\"b\n\t\\")

(* ----------------------------------------------------------------- *)
(* Disabled sink: every entry point is a no-op *)

let test_disabled_noop () =
  let o = Obs.disabled in
  Alcotest.(check bool) "not enabled" false (Obs.enabled o);
  let sp = Obs.span_begin o ~name:"x" ~pid:0 ~tid:0 () in
  Alcotest.(check bool) "null span" true (sp == Obs.null_span);
  Alcotest.(check (float 0.0)) "span_end" 0.0 (Obs.span_end o sp);
  Obs.instant o ~name:"x" ~pid:0 ~tid:0 ();
  Obs.flow_start o ~id:1 ~pid:0 ~tid:0;
  Alcotest.(check bool)
    "flow_end" true
    (Obs.flow_end o ~id:1 ~pid:0 ~tid:0 = None);
  Obs.count o "c" 1;
  Alcotest.(check int) "counter stays 0" 0 (Obs.counter o "c");
  Obs.observe o "h" 5.0;
  Alcotest.(check bool) "no histogram" true (Obs.hist o "h" = None);
  Obs.mark o "m";
  Alcotest.(check bool) "no mark" true (Obs.take_mark o "m" = None)

(* ----------------------------------------------------------------- *)
(* Span / flow emission against a fake clock *)

let test_spans_flows_render () =
  let clock = ref 0.0 in
  let o = Obs.create ~now:(fun () -> !clock) ~nodes:2 () in
  let id = Obs.flow_id ~lock:3 ~seqno:1 in
  clock := 10.0;
  let commit = Obs.span_begin o ~name:"commit" ~pid:0 ~tid:Obs.lane_txn () in
  clock := 15.0;
  Obs.flow_start o ~id ~pid:0 ~tid:Obs.lane_txn;
  clock := 20.0;
  Alcotest.(check (float 0.001)) "commit dur" 10.0 (Obs.span_end o commit);
  clock := 30.0;
  let apply = Obs.span_begin o ~name:"apply" ~pid:1 ~tid:Obs.lane_apply () in
  let lag = Obs.flow_end o ~id ~pid:1 ~tid:Obs.lane_apply in
  Alcotest.(check bool) "lag measured" true (lag = Some 15.0);
  clock := 35.0;
  ignore (Obs.span_end o apply : float);
  Alcotest.(check bool)
    "unknown flow id" true
    (Obs.flow_end o ~id:9999 ~pid:1 ~tid:Obs.lane_apply = None);
  let events = events_of_doc (Obs.render o) in
  Alcotest.(check (list string))
    "self-check clean" [] (Explorer.self_check events);
  let f = Explorer.flow_summary events in
  Alcotest.(check int) "flow starts" 1 f.Explorer.fl_starts;
  Alcotest.(check int) "flow ends" 1 f.Explorer.fl_ends;
  Alcotest.(check int) "none unresolved" 0 f.Explorer.fl_unresolved

let test_marks () =
  let clock = ref 100.0 in
  let o = Obs.create ~now:(fun () -> !clock) ~nodes:1 () in
  Obs.mark o "fetch:0:7";
  clock := 140.0;
  Alcotest.(check bool)
    "elapsed" true
    (Obs.take_mark o "fetch:0:7" = Some 40.0);
  Alcotest.(check bool) "consumed" true (Obs.take_mark o "fetch:0:7" = None)

(* The self-check must reject traces that violate the contract. *)
let test_self_check_catches () =
  let check_bad what doc =
    Alcotest.(check bool)
      what true
      (Explorer.self_check (events_of_doc doc) <> [])
  in
  check_bad "flow end without start"
    {|{"traceEvents": [
        {"name":"apply","cat":"pipeline","ph":"X","pid":1,"tid":1,"ts":5.0,"dur":10.0},
        {"name":"write","cat":"flow","ph":"f","bp":"e","id":7,"pid":1,"tid":1,"ts":6.0}]}|};
  check_bad "negative duration"
    {|{"traceEvents": [
        {"name":"txn","cat":"pipeline","ph":"X","pid":0,"tid":0,"ts":5.0,"dur":-1.0}]}|};
  check_bad "time runs backwards"
    {|{"traceEvents": [
        {"name":"a","cat":"pipeline","ph":"i","s":"t","pid":0,"tid":0,"ts":50.0},
        {"name":"b","cat":"pipeline","ph":"i","s":"t","pid":0,"tid":0,"ts":10.0}]}|};
  check_bad "flow end outside any apply span"
    {|{"traceEvents": [
        {"name":"write","cat":"flow","ph":"s","id":7,"pid":0,"tid":0,"ts":1.0},
        {"name":"write","cat":"flow","ph":"f","bp":"e","id":7,"pid":1,"tid":1,"ts":6.0}]}|}

(* ----------------------------------------------------------------- *)
(* A traced cluster run: the trace passes its own self-check and its
   metrics agree with the Report counters. *)

let region_size = 1024

let mk_cluster config nodes =
  let c = Cluster.create ~config ~nodes () in
  Cluster.add_region c ~id:0 ~size:region_size;
  Cluster.map_region_all c ~region:0;
  c

let script_writer c ~node ~lock ~commits =
  Cluster.spawn c ~node (fun nd ->
      for i = 1 to commits do
        let txn = Node.Txn.begin_ nd in
        Node.Txn.acquire txn lock;
        Node.Txn.set_u64 txn ~region:0 ~offset:(8 * lock)
          (Int64.of_int ((node * 1000) + i));
        Node.Txn.commit txn;
        Lbc_sim.Proc.sleep 10.0
      done)

let total_commits c nodes =
  let sum = ref 0 in
  for n = 0 to nodes - 1 do
    let s = Lbc_rvm.Rvm.stats (Node.rvm (Cluster.node c n)) in
    sum := !sum + s.Lbc_rvm.Rvm.commits
  done;
  !sum

let test_traced_cluster_run () =
  let config = { Config.default with Config.trace = true } in
  let nodes = 3 in
  let c = mk_cluster config nodes in
  script_writer c ~node:0 ~lock:0 ~commits:4;
  script_writer c ~node:1 ~lock:1 ~commits:3;
  script_writer c ~node:2 ~lock:2 ~commits:2;
  Cluster.run c;
  let o = Cluster.obs c in
  Alcotest.(check bool) "tracing on" true (Obs.enabled o);
  let events = events_of_doc (Obs.render o) in
  Alcotest.(check (list string))
    "trace self-check clean" [] (Explorer.self_check events);
  (* Every committed write's flow arrow resolves into an apply span
     on every sharing peer: 9 commits broadcast to 2 peers each. *)
  let f = Explorer.flow_summary events in
  Alcotest.(check int) "flow starts" 9 f.Explorer.fl_starts;
  Alcotest.(check int) "flow ends" 18 f.Explorer.fl_ends;
  Alcotest.(check int) "none unresolved" 0 f.Explorer.fl_unresolved;
  (* The explorer sees the pipeline stages. *)
  let stages = Explorer.stage_breakdown events in
  let stage n = List.exists (fun s -> s.Explorer.st_name = n) stages in
  Alcotest.(check bool) "commit stage" true (stage "commit");
  Alcotest.(check bool) "apply stage" true (stage "apply");
  Alcotest.(check bool) "net.send stage" true (stage "net.send");
  Alcotest.(check bool)
    "critical path found" true
    (Explorer.critical_path events <> None);
  (* Metrics agree with the Report counters. *)
  let commits = total_commits c nodes in
  Alcotest.(check int) "nine commits" 9 commits;
  (match Obs.hist o "commit_us" with
  | None -> Alcotest.fail "no commit_us histogram"
  | Some h ->
      Alcotest.(check int) "one commit_us sample per commit" commits
        (H.count h));
  (match Obs.hist o "apply_lag_us" with
  | None -> Alcotest.fail "no apply_lag_us histogram"
  | Some h ->
      Alcotest.(check int) "one apply_lag sample per flow end" 18 (H.count h));
  Alcotest.(check int)
    "net_msgs counter matches fabric accounting"
    (Cluster.total_messages c)
    (Obs.counter o "net_msgs")

(* With tracing off (the default), the cluster uses the shared disabled
   sink and collects nothing. *)
let test_untraced_cluster_is_silent () =
  let c = mk_cluster Config.default 2 in
  script_writer c ~node:0 ~lock:0 ~commits:2;
  Cluster.run c;
  let o = Cluster.obs c in
  Alcotest.(check bool) "tracing off" false (Obs.enabled o);
  Alcotest.(check bool) "disabled singleton" true (o == Obs.disabled);
  Alcotest.(check int) "no counters" 0 (Obs.counter o "net_msgs");
  Alcotest.(check bool) "no histograms" true (Obs.hists o = [])

(* ----------------------------------------------------------------- *)
(* Golden-style rendering of Report.pp_cluster *)

let test_report_golden () =
  let config =
    { Config.default with Config.group_commit = true; Config.trace = true }
  in
  let nodes = 3 in
  let c = mk_cluster config nodes in
  script_writer c ~node:0 ~lock:0 ~commits:2;
  script_writer c ~node:1 ~lock:1 ~commits:1;
  Cluster.spawn c ~node:0 (fun nd ->
      let txn = Node.Txn.begin_ nd in
      Node.Txn.acquire txn 2;
      Node.Txn.abort txn);
  Cluster.run c;
  let rendered = Format.asprintf "%a" Report.pp_cluster c in
  let expect what sub =
    if not (contains rendered sub) then
      Alcotest.failf "%s: %S not found in:\n%s" what sub rendered
  in
  expect "header" "cluster: 3 nodes";
  expect "copy counters" "data path:";
  expect "copy counters" "encode arenas";
  expect "node 0 stats" "node 0: 2 commits (1 aborts)";
  expect "node 1 stats" "node 1: 1 commits (0 aborts)";
  expect "group commit" "group commit:";
  expect "batches" "batches";
  if contains rendered "blocked:" then
    Alcotest.fail "quiescent cluster must not report blocked processes"

(* A stranded process must surface in the blocked list. *)
let test_report_blocked_list () =
  let c = mk_cluster Config.default 2 in
  Lbc_net.Fabric.set_drop (Cluster.fabric c) ~src:0 ~dst:1 true;
  Cluster.spawn c ~node:0 (fun nd ->
      let txn = Node.Txn.begin_ nd in
      Node.Txn.acquire txn 0;
      Node.Txn.set_u64 txn ~region:0 ~offset:0 7L;
      Node.Txn.commit txn);
  Cluster.spawn c ~node:1 (fun nd ->
      Lbc_sim.Proc.sleep 50.0;
      let txn = Node.Txn.begin_ nd in
      Node.Txn.acquire txn 0;
      (* unreachable: the update was dropped and nothing repairs it *)
      Node.Txn.commit txn);
  Cluster.run ~check_stranded:false c;
  let rendered = Format.asprintf "%a" Report.pp_cluster c in
  Alcotest.(check bool)
    "blocked list rendered" true
    (contains rendered "blocked:")

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
        Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        Alcotest.test_case "json parse" `Quick test_json_parse;
        Alcotest.test_case "json rejects garbage" `Quick test_json_rejects;
        Alcotest.test_case "json escape" `Quick test_json_escape;
        Alcotest.test_case "disabled sink is a no-op" `Quick
          test_disabled_noop;
        Alcotest.test_case "spans and flows render" `Quick
          test_spans_flows_render;
        Alcotest.test_case "marks" `Quick test_marks;
        Alcotest.test_case "self-check catches bad traces" `Quick
          test_self_check_catches;
      ] );
    ( "obs-cluster",
      [
        Alcotest.test_case "traced run: self-check + report agreement"
          `Quick test_traced_cluster_run;
        Alcotest.test_case "untraced run collects nothing" `Quick
          test_untraced_cluster_is_silent;
        Alcotest.test_case "report golden rendering" `Quick
          test_report_golden;
        Alcotest.test_case "report blocked list" `Quick
          test_report_blocked_list;
      ] );
  ]
