(* Tests for the simulated network fabric. *)

open Lbc_sim
open Lbc_net

let mk ?(params = Params.instant) ?(nodes = 3) () =
  let e = Engine.create () in
  let f = Fabric.create ~params ~engine:e ~nodes ~size:String.length () in
  (e, f)

let test_send_recv () =
  let e, f = mk () in
  let got = ref "" in
  Proc.spawn e (fun () -> got := Fabric.recv f ~dst:1 ~src:0);
  Proc.spawn e (fun () -> Fabric.send f ~src:0 ~dst:1 "ping");
  Engine.run e;
  Alcotest.(check string) "delivered" "ping" !got

let test_fifo_per_channel () =
  let e, f = mk () in
  let got = ref [] in
  Proc.spawn e (fun () ->
      for _ = 1 to 3 do
        let m = Fabric.recv f ~dst:1 ~src:0 in
        got := m :: !got
      done);
  Proc.spawn e (fun () ->
      List.iter (fun m -> Fabric.send f ~src:0 ~dst:1 m) [ "a"; "b"; "c" ]);
  Engine.run e;
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ] (List.rev !got)

let test_send_cost_blocks_sender () =
  let params =
    { Params.send_base = 100.0; send_per_byte = 1.0; propagation = 10.0 }
  in
  let e, f = mk ~params () in
  let sent_at = ref 0.0 and got_at = ref 0.0 in
  Proc.spawn e (fun () ->
      Fabric.send f ~src:0 ~dst:1 "12345";
      sent_at := Proc.now ());
  Proc.spawn e (fun () ->
      ignore (Fabric.recv f ~dst:1 ~src:0);
      got_at := Proc.now ());
  Engine.run e;
  (* writev cost = 100 + 5 = 105; delivery 10 later. *)
  Alcotest.(check (float 1e-9)) "sender blocked" 105.0 !sent_at;
  Alcotest.(check (float 1e-9)) "delivery time" 115.0 !got_at

let test_channels_independent () =
  let e, f = mk () in
  (* A message from 2 must not appear on the 0->1 channel. *)
  let got = ref [] in
  Proc.spawn e (fun () ->
      let m = Fabric.recv f ~dst:1 ~src:0 in
      got := ("from0", m) :: !got);
  Proc.spawn e (fun () ->
      let m = Fabric.recv f ~dst:1 ~src:2 in
      got := ("from2", m) :: !got);
  Proc.spawn e (fun () -> Fabric.send f ~src:2 ~dst:1 "two");
  Proc.spawn e (fun () ->
      Proc.sleep 5.0;
      Fabric.send f ~src:0 ~dst:1 "zero");
  Engine.run e;
  Alcotest.(check (list (pair string string)))
    "right channels"
    [ ("from2", "two"); ("from0", "zero") ]
    (List.rev !got)

let test_self_send_rejected () =
  let e, f = mk () in
  let raised = ref false in
  Proc.spawn e (fun () ->
      try Fabric.send f ~src:1 ~dst:1 "loop"
      with Invalid_argument _ -> raised := true);
  Engine.run e;
  Alcotest.(check bool) "rejected" true !raised

let test_drop_injection () =
  let e, f = mk () in
  Fabric.set_drop f ~src:0 ~dst:1 true;
  let got = ref None in
  Proc.spawn e (fun () ->
      Fabric.send f ~src:0 ~dst:1 "lost";
      Fabric.set_drop f ~src:0 ~dst:1 false;
      Fabric.send f ~src:0 ~dst:1 "kept");
  Proc.spawn e (fun () -> got := Some (Fabric.recv f ~dst:1 ~src:0));
  Engine.run e;
  Alcotest.(check (option string)) "only undropped arrives" (Some "kept") !got

let test_accounting () =
  let e, f = mk () in
  Proc.spawn e (fun () ->
      Fabric.send f ~src:0 ~dst:1 "xxxx";
      Fabric.send f ~src:0 ~dst:2 "yy";
      Fabric.send f ~src:1 ~dst:2 "z");
  (* Drain receivers so the run terminates cleanly. *)
  Proc.spawn e (fun () -> ignore (Fabric.recv f ~dst:1 ~src:0));
  Proc.spawn e (fun () -> ignore (Fabric.recv f ~dst:2 ~src:0));
  Proc.spawn e (fun () -> ignore (Fabric.recv f ~dst:2 ~src:1));
  Engine.run e;
  Alcotest.(check int) "msgs from 0" 2 (Fabric.messages_sent f ~src:0);
  Alcotest.(check int) "bytes from 0" 6 (Fabric.bytes_sent f ~src:0);
  Alcotest.(check int) "total msgs" 3 (Fabric.total_messages f);
  Alcotest.(check int) "total bytes" 7 (Fabric.total_bytes f)

(* ------------------------------------------------------------------ *)
(* Fault injection accounting *)

let test_drop_counted_per_channel () =
  let e, f = mk () in
  Fabric.set_drop f ~src:0 ~dst:1 true;
  Proc.spawn e (fun () ->
      Fabric.send f ~src:0 ~dst:1 "lost1";
      Fabric.send f ~src:0 ~dst:1 "lost2";
      Fabric.send f ~src:0 ~dst:2 "fine");
  Proc.spawn e (fun () -> ignore (Fabric.recv f ~dst:2 ~src:0));
  Engine.run e;
  Alcotest.(check int) "two dropped on 0->1" 2
    (Fabric.messages_dropped f ~src:0 ~dst:1);
  Alcotest.(check int) "none dropped on 0->2" 0
    (Fabric.messages_dropped f ~src:0 ~dst:2);
  Alcotest.(check int) "total dropped" 2 (Fabric.total_dropped f)

let test_drop_filter_selective () =
  let e, f = mk () in
  (* Lose only "data" traffic; "ctl" traffic stays reliable — the shape
     chaos tests use to cut the data plane but not the lock plane. *)
  Fabric.set_drop_filter f ~src:0 ~dst:1
    (Some (fun m -> String.length m > 3));
  let got = ref [] in
  Proc.spawn e (fun () ->
      Fabric.send f ~src:0 ~dst:1 "data-payload";
      Fabric.send f ~src:0 ~dst:1 "ctl";
      Fabric.set_drop_filter f ~src:0 ~dst:1 None;
      Fabric.send f ~src:0 ~dst:1 "data-payload-2");
  Proc.spawn e (fun () ->
      for _ = 1 to 2 do
        got := Fabric.recv f ~dst:1 ~src:0 :: !got
      done);
  Engine.run e;
  Alcotest.(check (list string))
    "filtered traffic lost, rest in order"
    [ "ctl"; "data-payload-2" ]
    (List.rev !got);
  Alcotest.(check int) "the loss was counted" 1
    (Fabric.messages_dropped f ~src:0 ~dst:1)

let test_down_node_loses_traffic () =
  let e, f = mk () in
  let got = ref [] in
  Proc.spawn e (fun () ->
      (* Queued but never received: purged when the node goes down. *)
      Fabric.send f ~src:0 ~dst:1 "queued";
      Fabric.set_down f 1 true;
      Alcotest.(check bool) "marked down" true (Fabric.is_down f 1);
      Fabric.send f ~src:0 ~dst:1 "to-down";
      Fabric.send f ~src:1 ~dst:2 "from-down";
      (* Let the in-flight delivery reach the down node and be lost
         before connectivity returns. *)
      Proc.sleep 10.0;
      Fabric.set_down f 1 false;
      Fabric.send f ~src:0 ~dst:1 "after-restart");
  Proc.spawn e (fun () -> got := [ Fabric.recv f ~dst:1 ~src:0 ]);
  Engine.run e;
  Alcotest.(check (list string)) "only post-restart traffic" [ "after-restart" ]
    !got;
  (* queued + to-down on 0->1, from-down on 1->2. *)
  Alcotest.(check int) "channel 0->1 drops" 2
    (Fabric.messages_dropped f ~src:0 ~dst:1);
  Alcotest.(check int) "channel 1->2 drops" 1
    (Fabric.messages_dropped f ~src:1 ~dst:2);
  Alcotest.(check int) "total" 3 (Fabric.total_dropped f)

let suites =
  [
    ( "net.fabric",
      [
        Alcotest.test_case "send/recv" `Quick test_send_recv;
        Alcotest.test_case "fifo per channel" `Quick test_fifo_per_channel;
        Alcotest.test_case "send cost blocks sender" `Quick
          test_send_cost_blocks_sender;
        Alcotest.test_case "channels independent" `Quick
          test_channels_independent;
        Alcotest.test_case "self send rejected" `Quick test_self_send_rejected;
        Alcotest.test_case "drop injection" `Quick test_drop_injection;
        Alcotest.test_case "accounting" `Quick test_accounting;
      ] );
    ( "net.faults",
      [
        Alcotest.test_case "drops counted per channel" `Quick
          test_drop_counted_per_channel;
        Alcotest.test_case "drop filter selective" `Quick
          test_drop_filter_selective;
        Alcotest.test_case "down node loses traffic" `Quick
          test_down_node_loses_traffic;
      ] );
  ]
