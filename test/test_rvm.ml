(* Tests for the RVM work-alike: range tree policies, regions,
   transactions, abort, recovery. *)

open Lbc_storage
open Lbc_rvm

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Range_tree *)

let test_tree_ordered_appends () =
  let t = Range_tree.create Range_tree.Optimized in
  Alcotest.(check bool) "first is ordered" true
    (Range_tree.add t ~offset:0 ~len:8 = Range_tree.Ordered_append);
  Alcotest.(check bool) "forward is ordered" true
    (Range_tree.add t ~offset:16 ~len:8 = Range_tree.Ordered_append);
  Alcotest.(check bool) "adjacent forward is ordered" true
    (Range_tree.add t ~offset:24 ~len:8 = Range_tree.Ordered_append);
  check_int "three ranges" 3 (Range_tree.count t)

let test_tree_exact_match_last_cache () =
  let t = Range_tree.create Range_tree.Optimized in
  ignore (Range_tree.add t ~offset:100 ~len:8);
  Alcotest.(check bool) "same range again" true
    (Range_tree.add t ~offset:100 ~len:8 = Range_tree.Exact_match);
  Alcotest.(check bool) "shorter subsumed" true
    (Range_tree.add t ~offset:100 ~len:4 = Range_tree.Exact_match);
  check_int "still one range" 1 (Range_tree.count t);
  check_int "bytes" 8 (Range_tree.total_bytes t)

let test_tree_exact_match_via_search () =
  let t = Range_tree.create Range_tree.Optimized in
  ignore (Range_tree.add t ~offset:0 ~len:8);
  ignore (Range_tree.add t ~offset:50 ~len:8);
  (* Not the last range, so it must be found by search. *)
  Alcotest.(check bool) "tree hit" true
    (Range_tree.add t ~offset:0 ~len:8 = Range_tree.Exact_match)

let test_tree_optimized_extend () =
  let t = Range_tree.create Range_tree.Optimized in
  ignore (Range_tree.add t ~offset:0 ~len:4);
  ignore (Range_tree.add t ~offset:100 ~len:4);
  Alcotest.(check bool) "longer at same offset extends" true
    (Range_tree.add t ~offset:0 ~len:10 = Range_tree.Extended);
  Alcotest.(check (list (pair int int))) "ranges" [ (0, 10); (100, 4) ]
    (Range_tree.ranges t)

let test_tree_optimized_keeps_overlap () =
  (* The Optimized policy does not merge mere overlaps: both ranges are
     stored and their bytes are logged redundantly. *)
  let t = Range_tree.create Range_tree.Optimized in
  ignore (Range_tree.add t ~offset:0 ~len:10);
  ignore (Range_tree.add t ~offset:4 ~len:10);
  (* starts inside the previous range, so it is not an ordered append *)
  check_int "two ranges" 2 (Range_tree.count t);
  check_int "redundant bytes counted" 20 (Range_tree.total_bytes t)

let test_tree_standard_merges_overlap () =
  let t = Range_tree.create Range_tree.Standard in
  ignore (Range_tree.add t ~offset:0 ~len:10);
  Alcotest.(check bool) "overlap merges" true
    (Range_tree.add t ~offset:4 ~len:10 = Range_tree.Merged);
  Alcotest.(check (list (pair int int))) "merged" [ (0, 14) ] (Range_tree.ranges t);
  check_int "no redundancy" 14 (Range_tree.total_bytes t)

let test_tree_standard_merges_adjacent () =
  let t = Range_tree.create Range_tree.Standard in
  ignore (Range_tree.add t ~offset:10 ~len:5);
  ignore (Range_tree.add t ~offset:30 ~len:5);
  (* Fills the gap and touches both: all three coalesce. *)
  Alcotest.(check bool) "bridging range merges" true
    (Range_tree.add t ~offset:15 ~len:15 = Range_tree.Merged);
  Alcotest.(check (list (pair int int))) "single span" [ (10, 25) ]
    (Range_tree.ranges t)

let test_tree_standard_merge_backward () =
  let t = Range_tree.create Range_tree.Standard in
  ignore (Range_tree.add t ~offset:100 ~len:10);
  Alcotest.(check bool) "backward insert merges into successor" true
    (Range_tree.add t ~offset:95 ~len:10 = Range_tree.Merged);
  Alcotest.(check (list (pair int int))) "span" [ (95, 15) ] (Range_tree.ranges t)

let test_tree_bad_args () =
  let t = Range_tree.create Range_tree.Optimized in
  Alcotest.(check bool) "zero len rejected" true
    (try ignore (Range_tree.add t ~offset:0 ~len:0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative offset rejected" true
    (try ignore (Range_tree.add t ~offset:(-1) ~len:4); false
     with Invalid_argument _ -> true)

(* Model-based property: coverage equals a naive interval model; under
   Standard the stored ranges are disjoint, sorted and non-adjacent. *)
let gen_ops = QCheck.Gen.(list_size (1 -- 60) (pair (int_bound 200) (1 -- 20)))

let coverage_matches policy =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "coverage matches model (%s)"
         (match policy with Range_tree.Standard -> "standard" | _ -> "optimized"))
    ~count:200 (QCheck.make gen_ops)
    (fun ops ->
      let t = Range_tree.create policy in
      let model = Array.make 256 false in
      List.iter
        (fun (offset, len) ->
          ignore (Range_tree.add t ~offset ~len);
          for i = offset to offset + len - 1 do
            if i < 256 then model.(i) <- true
          done)
        ops;
      let ok = ref true in
      for i = 0 to 255 do
        if Range_tree.mem_byte t i <> model.(i) then ok := false
      done;
      !ok)

let prop_standard_disjoint =
  QCheck.Test.make ~name:"standard ranges disjoint and sorted" ~count:200
    (QCheck.make gen_ops)
    (fun ops ->
      let t = Range_tree.create Range_tree.Standard in
      List.iter (fun (offset, len) -> ignore (Range_tree.add t ~offset ~len)) ops;
      let rs = Range_tree.ranges t in
      let rec check = function
        | (o1, l1) :: ((o2, _) :: _ as rest) ->
            (* strictly increasing and not even adjacent *)
            o1 + l1 < o2 && check rest
        | _ -> true
      in
      check rs
      && Range_tree.total_bytes t
         = List.fold_left (fun a (_, l) -> a + l) 0 rs)

(* ------------------------------------------------------------------ *)
(* Region *)

let test_region_map_loads_db () =
  let db = Dev.create () in
  Dev.write_string db ~off:0 "persist";
  Dev.sync db;
  let r = Region.map ~id:0 ~db ~size:16 in
  Alcotest.(check string) "loaded" "persist"
    (Bytes.to_string (Region.read r ~offset:0 ~len:7));
  Alcotest.(check string) "zero filled" "\000\000"
    (Bytes.to_string (Region.read r ~offset:7 ~len:2))

let test_region_u64 () =
  let r = Region.map ~id:0 ~db:(Dev.create ()) ~size:64 in
  Region.set_u64 r ~offset:8 0x1122334455667788L;
  Alcotest.(check int64) "u64 roundtrip" 0x1122334455667788L
    (Region.get_u64 r ~offset:8)

let test_region_flush () =
  let db = Dev.create () in
  let r = Region.map ~id:0 ~db ~size:8 in
  Region.write r ~offset:0 (Bytes.of_string "ABCDEFGH");
  Region.flush_to_db r;
  Dev.crash db;
  Alcotest.(check string) "flushed image stable" "ABCDEFGH"
    (Bytes.to_string (Dev.read db ~off:0 ~len:8))

(* ------------------------------------------------------------------ *)
(* Rvm transactions *)

let mk_node ?(options = Rvm.default_options) ?(size = 256) () =
  let log_dev = Dev.create ~name:"log" () in
  let db = Dev.create ~name:"db" () in
  let rvm = Rvm.init ~options ~node:0 ~log_dev () in
  let region = Rvm.map_region rvm ~id:0 ~db ~size in
  (rvm, region, db, log_dev)

let test_txn_commit_record () =
  let rvm, _region, _, _ = mk_node () in
  let txn = Rvm.begin_txn rvm in
  Rvm.write txn ~region:0 ~offset:10 (Bytes.of_string "hello");
  Rvm.set_u64 txn ~region:0 ~offset:32 42L;
  Rvm.set_lock txn ~lock_id:7 ~seqno:3 ~prev_write_seq:1;
  let record = Rvm.commit txn in
  check_int "two ranges" 2 (List.length record.Lbc_wal.Record.ranges);
  check_int "one lock" 1 (List.length record.Lbc_wal.Record.locks);
  let r1 = List.hd record.Lbc_wal.Record.ranges in
  Alcotest.(check string) "new value captured" "hello"
    (Bytes.to_string r1.Lbc_wal.Record.data);
  Alcotest.(check bool) "txn dead" false (Rvm.is_live txn)

let test_txn_coalesces_repeated_updates () =
  let rvm, _, _, _ = mk_node () in
  let txn = Rvm.begin_txn rvm in
  for _ = 1 to 10 do
    Rvm.set_u64 txn ~region:0 ~offset:16 9L
  done;
  let record = Rvm.commit txn in
  check_int "one coalesced range" 1 (List.length record.Lbc_wal.Record.ranges);
  let st = Rvm.stats rvm in
  check_int "9 redundant calls" 9 st.Rvm.redundant_calls

let test_txn_commit_goes_to_log () =
  let rvm, _, _, log_dev = mk_node () in
  let txn = Rvm.begin_txn rvm in
  Rvm.write txn ~region:0 ~offset:0 (Bytes.of_string "logme");
  ignore (Rvm.commit txn);
  Dev.crash log_dev;
  (* Flush mode: record survives the crash. *)
  let log = Lbc_wal.Log.attach log_dev in
  let records, _ = Lbc_wal.Log.read_all log in
  check_int "one record" 1 (List.length records)

let test_txn_no_flush_lost_on_crash () =
  let rvm, _, _, log_dev = mk_node () in
  let txn = Rvm.begin_txn rvm in
  Rvm.write txn ~region:0 ~offset:0 (Bytes.of_string "gone");
  ignore (Rvm.commit ~mode:Rvm.No_flush txn);
  Dev.crash log_dev;
  let log = Lbc_wal.Log.attach log_dev in
  let records, _ = Lbc_wal.Log.read_all log in
  check_int "lazy commit lost" 0 (List.length records)

let test_txn_disk_logging_disabled () =
  let options = { Rvm.default_options with Rvm.disk_logging = false } in
  let rvm, _, _, log_dev = mk_node ~options () in
  let txn = Rvm.begin_txn rvm in
  Rvm.write txn ~region:0 ~offset:0 (Bytes.of_string "ether");
  let record = Rvm.commit txn in
  check_int "record still built" 1 (List.length record.Lbc_wal.Record.ranges);
  check_int "log empty" Lbc_wal.Log.header_size (Dev.size log_dev |> min 16)

let test_txn_abort_restores () =
  let rvm, region, _, _ = mk_node () in
  let seed = Rvm.begin_txn rvm in
  Rvm.write seed ~region:0 ~offset:0 (Bytes.of_string "original");
  ignore (Rvm.commit seed);
  let txn = Rvm.begin_txn ~restore:Rvm.Restore rvm in
  Rvm.write txn ~region:0 ~offset:0 (Bytes.of_string "scribble");
  Rvm.write txn ~region:0 ~offset:4 (Bytes.of_string "more");
  Rvm.abort txn;
  Alcotest.(check string) "restored" "original"
    (Bytes.to_string (Region.read region ~offset:0 ~len:8))

let test_txn_abort_no_restore_rejected () =
  let rvm, _, _, _ = mk_node () in
  let txn = Rvm.begin_txn rvm in
  Alcotest.(check bool) "abort rejected" true
    (try Rvm.abort txn; false with Rvm.Txn_error _ -> true)

let test_txn_dead_rejects_ops () =
  let rvm, _, _, _ = mk_node () in
  let txn = Rvm.begin_txn rvm in
  ignore (Rvm.commit txn);
  Alcotest.(check bool) "set_range on dead txn" true
    (try Rvm.set_range txn ~region:0 ~offset:0 ~len:1; false
     with Rvm.Txn_error _ -> true);
  Alcotest.(check bool) "double commit" true
    (try ignore (Rvm.commit txn); false with Rvm.Txn_error _ -> true)

let test_txn_unmapped_region () =
  let rvm, _, _, _ = mk_node () in
  let txn = Rvm.begin_txn rvm in
  Alcotest.(check bool) "unmapped region" true
    (try Rvm.set_range txn ~region:9 ~offset:0 ~len:1; false
     with Rvm.Txn_error _ -> true)

let test_apply_record_peer_update () =
  (* Node B applies a record produced by node A: the DSM apply path. *)
  let a, _, _, _ = mk_node () in
  let b, region_b, _, _ = mk_node () in
  let txn = Rvm.begin_txn a in
  Rvm.write txn ~region:0 ~offset:5 (Bytes.of_string "shared");
  let record = Rvm.commit txn in
  Rvm.apply_record b record;
  Alcotest.(check string) "propagated" "shared"
    (Bytes.to_string (Region.read region_b ~offset:5 ~len:6));
  check_int "stats" 1 (Rvm.stats b).Rvm.records_applied

let test_apply_record_skips_unmapped () =
  let b, _, _, _ = mk_node () in
  let record =
    {
      Lbc_wal.Record.node = 9;
      tid = 1;
      locks = [];
      ranges = [ { Lbc_wal.Record.region = 5; offset = 0; data = Bytes.of_string "x" } ];
      cmd = None;
    }
  in
  Rvm.apply_record b record;
  check_int "applied count still bumps" 1 (Rvm.stats b).Rvm.records_applied;
  check_int "no bytes" 0 (Rvm.stats b).Rvm.bytes_applied

let test_recovery_replays_log () =
  let rvm, _, db, log_dev = mk_node () in
  let txn = Rvm.begin_txn rvm in
  Rvm.write txn ~region:0 ~offset:0 (Bytes.of_string "committed");
  ignore (Rvm.commit txn);
  let txn2 = Rvm.begin_txn rvm in
  Rvm.write txn2 ~region:0 ~offset:9 (Bytes.of_string "!too");
  ignore (Rvm.commit txn2);
  (* The node dies: memory is lost, only devices survive. *)
  Dev.crash log_dev;
  Dev.crash db;
  let log = Lbc_wal.Log.attach log_dev in
  let outcome =
    Recovery.replay ~log ~db_for_region:(fun id ->
        if id = 0 then Some db else None)
  in
  check_int "two records" 2 outcome.Recovery.records_replayed;
  Alcotest.(check bool) "clean" false outcome.Recovery.torn_tail;
  (* The database device now holds the committed state, durably. *)
  Dev.crash db;
  Alcotest.(check string) "db recovered" "committed!too"
    (Bytes.to_string (Dev.read db ~off:0 ~len:13))

let test_truncate_then_recover () =
  let rvm, _, db, log_dev = mk_node () in
  let txn = Rvm.begin_txn rvm in
  Rvm.write txn ~region:0 ~offset:0 (Bytes.of_string "check");
  ignore (Rvm.commit txn);
  Rvm.truncate rvm;
  check_int "log trimmed" 0 (Lbc_wal.Log.live_bytes (Rvm.log rvm));
  (* After truncation, replaying the (empty) log over the checkpointed db
     must still give the committed state. *)
  Dev.crash db;
  Dev.crash log_dev;
  let log = Lbc_wal.Log.attach log_dev in
  let outcome =
    Recovery.replay ~log ~db_for_region:(fun _ -> Some db)
  in
  check_int "nothing to replay" 0 outcome.Recovery.records_replayed;
  Alcotest.(check string) "db has checkpoint" "check"
    (Bytes.to_string (Dev.read db ~off:0 ~len:5))

let test_maybe_truncate_high_water () =
  let rvm, _, _, _ = mk_node () in
  let txn = Rvm.begin_txn rvm in
  Rvm.write txn ~region:0 ~offset:0 (Bytes.make 64 'x');
  ignore (Rvm.commit txn);
  Alcotest.(check bool) "below water: no trim" false
    (Rvm.maybe_truncate rvm ~high_water:1_000_000);
  Alcotest.(check bool) "above water: trims" true
    (Rvm.maybe_truncate rvm ~high_water:10);
  check_int "truncations" 1 (Rvm.stats rvm).Rvm.truncations

let test_multi_region_txn () =
  let log_dev = Dev.create () in
  let rvm = Rvm.init ~node:0 ~log_dev () in
  let _r0 = Rvm.map_region rvm ~id:0 ~db:(Dev.create ()) ~size:64 in
  let _r1 = Rvm.map_region rvm ~id:1 ~db:(Dev.create ()) ~size:64 in
  let txn = Rvm.begin_txn rvm in
  Rvm.write txn ~region:1 ~offset:0 (Bytes.of_string "one");
  Rvm.write txn ~region:0 ~offset:0 (Bytes.of_string "zero");
  let record = Rvm.commit txn in
  let regions =
    List.map (fun r -> r.Lbc_wal.Record.region) record.Lbc_wal.Record.ranges
  in
  Alcotest.(check (list int)) "regions ordered" [ 0; 1 ] regions

(* End-to-end property: random transactional writes, then crash and
   recover; the recovered database must equal an independent model. *)
let prop_recovery_matches_model =
  QCheck.Test.make ~name:"recovery matches shadow model" ~count:60
    (QCheck.make
       QCheck.Gen.(
         list_size (1 -- 10)
           (list_size (1 -- 5)
              (triple (int_bound 200) (1 -- 20) (char_range 'a' 'z')))))
    (fun txns ->
      let size = 256 in
      let rvm, _, db, log_dev =
        let log_dev = Dev.create () in
        let db = Dev.create () in
        let rvm = Rvm.init ~node:0 ~log_dev () in
        let r = Rvm.map_region rvm ~id:0 ~db ~size in
        (rvm, r, db, log_dev)
      in
      let shadow = Bytes.make size '\000' in
      List.iter
        (fun writes ->
          let txn = Rvm.begin_txn rvm in
          List.iter
            (fun (offset, len, c) ->
              let len = min len (size - offset) in
              if len > 0 then begin
                let data = Bytes.make len c in
                Rvm.write txn ~region:0 ~offset data;
                Bytes.blit data 0 shadow offset len
              end)
            writes;
          ignore (Rvm.commit txn))
        txns;
      Dev.crash log_dev;
      Dev.crash db;
      let log = Lbc_wal.Log.attach log_dev in
      ignore (Recovery.replay ~log ~db_for_region:(fun _ -> Some db));
      let recovered = Bytes.make size '\000' in
      let have = min size (Dev.size db) in
      if have > 0 then
        Bytes.blit (Dev.read db ~off:0 ~len:have) 0 recovered 0 have;
      Bytes.equal shadow recovered)

(* ------------------------------------------------------------------ *)
(* Dirty-extent tracking and incremental flush *)

let test_region_dirty_tracking () =
  let db = Dev.create () in
  let r = Region.map ~id:0 ~db ~size:64 in
  Alcotest.(check bool) "clean after map" false (Region.is_dirty r);
  Region.write r ~offset:8 (Bytes.of_string "dirty");
  Alcotest.(check bool) "dirty after write" true (Region.is_dirty r);
  Alcotest.(check (option (pair int int))) "extent covers the write"
    (Some (8, 13)) (Region.dirty_extent r);
  Region.write r ~offset:40 (Bytes.of_string "more");
  Alcotest.(check (option (pair int int))) "extent widens" (Some (8, 44))
    (Region.dirty_extent r);
  check_int "dirty bytes" 36 (Region.dirty_bytes r);
  Region.flush_dirty r;
  Alcotest.(check bool) "clean after flush" false (Region.is_dirty r);
  Dev.crash db;
  Alcotest.(check string) "flushed bytes stable" "dirty"
    (Bytes.to_string (Dev.read db ~off:8 ~len:5))

let test_region_flush_slice () =
  let db = Dev.create () in
  let r = Region.map ~id:0 ~db ~size:64 in
  Region.write r ~offset:0 (Bytes.of_string "0123456789");
  check_int "first slice" 4 (Region.flush_slice r ~max_bytes:4);
  Alcotest.(check (option (pair int int))) "extent shrank from the low end"
    (Some (4, 10)) (Region.dirty_extent r);
  (* A store into the already-flushed prefix re-dirties it. *)
  Region.write r ~offset:0 (Bytes.of_string "AB");
  Alcotest.(check (option (pair int int))) "extent re-extends" (Some (0, 10))
    (Region.dirty_extent r);
  let total = ref 0 in
  while Region.is_dirty r do
    total := !total + Region.flush_slice r ~max_bytes:4
  done;
  Dev.sync db;
  check_int "drained" 10 !total;
  check_int "slice on clean region is a no-op" 0
    (Region.flush_slice r ~max_bytes:4);
  Dev.crash db;
  Alcotest.(check string) "final image includes the re-dirtied bytes"
    "AB23456789"
    (Bytes.to_string (Dev.read db ~off:0 ~len:10))

(* ------------------------------------------------------------------ *)
(* Fuzzy checkpoint *)

let test_fuzzy_checkpoint () =
  let rvm, _region, db, _log_dev = mk_node () in
  let commit_write offset s =
    let txn = Rvm.begin_txn rvm in
    Rvm.write txn ~region:0 ~offset (Bytes.of_string s);
    ignore (Rvm.commit txn)
  in
  commit_write 0 "fuzzy";
  commit_write 16 "ckpt!";
  let log = Rvm.log rvm in
  let o = Rvm.fuzzy_checkpoint ~slice_bytes:8 rvm in
  check_int "first checkpoint id" 1 o.Rvm.ckpt_id;
  (* dirty extent [0,21) in 8-byte slices *)
  check_int "three slices" 3 o.Rvm.slices;
  check_int "bytes flushed" 21 o.Rvm.bytes_flushed;
  (* The trim landed on the Ckpt_begin marker: no txn records remain, and
     both markers are live (begin first, end after). *)
  check_int "txn records trimmed" 0 (Lbc_wal.Log.record_count log);
  check_int "head at ckpt start" o.Rvm.trimmed_to (Lbc_wal.Log.head log);
  let ctrls, status =
    Lbc_wal.Log.fold_ctrl log ~init:[] (fun acc _ c -> c :: acc)
  in
  Alcotest.(check bool) "ctrl scan clean" true (status = Lbc_wal.Log.Clean);
  Alcotest.(check (list bool))
    "begin, end, then region index live"
    [ true; false; false ]
    (List.rev_map
       (fun c -> c.Lbc_wal.Record.kind = Lbc_wal.Record.Ckpt_begin)
       ctrls);
  (* The persisted index covers the (empty) post-trim tail. *)
  (match ctrls with
  | { Lbc_wal.Record.kind = Lbc_wal.Record.Region_index; entries; _ } :: _ ->
      Alcotest.(check int) "empty tail indexes no chains" 0
        (List.length entries)
  | _ -> Alcotest.fail "newest ctrl is not the region index");
  (* The ckpt water is lifted: a later truncate can trim the markers. *)
  Alcotest.(check int) "water lifted" max_int (Lbc_wal.Log.low_water log);
  let st = Rvm.stats rvm in
  check_int "checkpoint counted" 1 st.Rvm.checkpoints;
  check_int "slices counted" 3 st.Rvm.ckpt_slices;
  (* Crash: the database image alone carries the committed state. *)
  Dev.crash db;
  Alcotest.(check string) "db has first write" "fuzzy"
    (Bytes.to_string (Dev.read db ~off:0 ~len:5));
  Alcotest.(check string) "db has second write" "ckpt!"
    (Bytes.to_string (Dev.read db ~off:16 ~len:5))

let test_fuzzy_checkpoint_interleaved_commits () =
  (* Commits that land between slices must survive: their records stay
     past the trim point, and their bytes reach the next checkpoint. *)
  let rvm, _region, db, _log_dev = mk_node () in
  let commit_write offset s =
    let txn = Rvm.begin_txn rvm in
    Rvm.write txn ~region:0 ~offset (Bytes.of_string s);
    ignore (Rvm.commit txn)
  in
  commit_write 0 (String.make 32 'a');
  let mid_commits = ref 0 in
  let o =
    Rvm.fuzzy_checkpoint ~slice_bytes:8 rvm ~yield:(fun () ->
        if !mid_commits = 0 then begin
          incr mid_commits;
          commit_write 40 "late"
        end)
  in
  check_int "mid-flight commit happened" 1 !mid_commits;
  Alcotest.(check bool) "several slices" true (o.Rvm.slices >= 4);
  (* The late commit's record must still be live (it committed after
     Ckpt_begin, so it sits past the trim point). *)
  check_int "late record live" 1 (Lbc_wal.Log.record_count (Rvm.log rvm));
  (* Its bytes were picked up either by the extent re-extension or by a
     second checkpoint; after one more the db must hold them. *)
  ignore (Rvm.fuzzy_checkpoint rvm);
  Dev.crash db;
  Alcotest.(check string) "late write durable" "late"
    (Bytes.to_string (Dev.read db ~off:40 ~len:4))

let test_truncate_respects_retention () =
  (* Satellite regression: a retention mark (repair service) must clamp
     Rvm.truncate, not be bulldozed by it. *)
  let rvm, _region, _db, _log_dev = mk_node () in
  let txn = Rvm.begin_txn rvm in
  Rvm.write txn ~region:0 ~offset:0 (Bytes.of_string "keep");
  let record = Rvm.commit txn in
  ignore record;
  let log = Rvm.log rvm in
  let off = Lbc_wal.Log.head log in
  Lbc_wal.Log.set_retention_water log off;
  Rvm.truncate rvm;
  check_int "record survives the truncate" 1 (Lbc_wal.Log.record_count log);
  Lbc_wal.Log.set_retention_water log max_int;
  Rvm.truncate rvm;
  check_int "trim completes once the mark lifts" 0
    (Lbc_wal.Log.record_count log)

(* Satellite regression: truncate while a group-commit batch is open must
   flush the batch to the log *before* flushing region images, or the
   stable database briefly holds bytes whose commit record is not yet
   durable — a crash in that window surfaces uncommitted state. *)
let test_truncate_flushes_open_batch_first () =
  let engine = Lbc_sim.Engine.create () in
  let latency = Latency.osdi94_disk in
  let log_dev = Dev.create ~latency ~name:"log" () in
  let db = Dev.create ~latency ~name:"db" () in
  let rvm = Rvm.init ~node:0 ~log_dev () in
  let _r = Rvm.map_region rvm ~id:0 ~db ~size:64 in
  Lbc_wal.Log.enable_group_commit ~max_records:8 ~delay:2_000.0 (Rvm.log rvm)
    ~engine;
  let payload = "XXXXXXXX" in
  Lbc_sim.Proc.spawn engine ~name:"committer" (fun () ->
      let txn = Rvm.begin_txn rvm in
      Rvm.write txn ~region:0 ~offset:0 (Bytes.of_string payload);
      (* Parks in the open batch until someone flushes it. *)
      ignore (Rvm.commit txn));
  Lbc_sim.Proc.spawn engine ~name:"truncator" (fun () ->
      Lbc_sim.Proc.sleep 10.0;
      Rvm.truncate rvm);
  let violations = ref [] in
  Lbc_sim.Proc.spawn engine ~name:"monitor" (fun () ->
      (* Poll through the truncate's device-time charges: whenever the
         stable database image shows the payload, the commit must be
         durable — its record decodes from the stable log image, or the
         log head has moved (the trim ran, which implies the batch was
         flushed first). *)
      (* The truncate's device charges stretch over ~10^5 virtual µs under
         the osdi94 profile; poll well past it. *)
      for _ = 1 to 4_000 do
        Lbc_sim.Proc.sleep 50.0;
        let stable = Dev.stable_snapshot db in
        if
          Bytes.length stable >= String.length payload
          && Bytes.sub_string stable 0 (String.length payload) = payload
        then begin
          let d' = Dev.create () in
          Dev.load d' (Dev.stable_snapshot log_dev);
          match Lbc_wal.Log.attach d' with
          | exception Lbc_wal.Log.Bad_log _ ->
              violations := "stable log unreadable" :: !violations
          | log' ->
              let recs, _ = Lbc_wal.Log.read_all log' in
              let trimmed =
                Lbc_wal.Log.head log' > Lbc_wal.Log.header_size
              in
              if recs = [] && not trimmed then
                violations :=
                  Printf.sprintf
                    "t=%.0f: stable db has committed bytes, stable log has \
                     no record"
                    (Lbc_sim.Proc.now ())
                  :: !violations
        end
      done);
  Lbc_sim.Engine.run engine;
  Alcotest.(check (list string)) "write-ahead order held" [] !violations;
  check_int "truncation ran" 1 (Rvm.stats rvm).Rvm.truncations

let test_apply_record_counts_unmapped () =
  let b, _, _, _ = mk_node () in
  check_int "starts at zero" 0 (Rvm.stats b).Rvm.unmapped_ranges;
  let record =
    {
      Lbc_wal.Record.node = 9;
      tid = 2;
      locks = [];
      ranges =
        [
          { Lbc_wal.Record.region = 5; offset = 0; data = Bytes.of_string "x" };
          { Lbc_wal.Record.region = 0; offset = 0; data = Bytes.of_string "y" };
          { Lbc_wal.Record.region = 6; offset = 0; data = Bytes.of_string "z" };
        ];
      cmd = None;
    }
  in
  Rvm.apply_record b record;
  check_int "two unmapped ranges counted" 2 (Rvm.stats b).Rvm.unmapped_ranges;
  check_int "mapped range still applied" 1 (Rvm.stats b).Rvm.bytes_applied

(* ------------------------------------------------------------------ *)
(* Adaptive logging: command records *)

(* Synthetic deterministic op for tests: params = region, offset, len,
   delta varints (plus ignored trailing padding); adds delta (mod 256)
   to every byte of the span.  The result depends on the pre-state, so
   replay identity across encodings is a real check, not a blit in
   disguise. *)
let add_op = 901

let add_bytes b delta =
  Bytes.iteri
    (fun i c -> Bytes.set b i (Char.chr ((Char.code c + delta) land 0xff)))
    b

let register_add_op () =
  Lbc_wal.Command.register ~op:add_op ~name:"test-add" (fun mem ~params ->
      let r = Lbc_util.Codec.reader params in
      let region = Lbc_util.Codec.get_varint r in
      let offset = Lbc_util.Codec.get_varint r in
      let len = Lbc_util.Codec.get_varint r in
      let delta = Lbc_util.Codec.get_varint r in
      let b = mem.Lbc_wal.Command.read ~region ~offset ~len in
      add_bytes b delta;
      mem.Lbc_wal.Command.write ~region ~offset b)

let add_params ?(pad = 0) ~region ~offset ~len ~delta () =
  let w = Lbc_util.Codec.writer () in
  List.iter (Lbc_util.Codec.varint w) [ region; offset; len; delta ];
  if pad > 0 then Lbc_util.Codec.raw_string w (String.make pad 'p');
  Lbc_util.Codec.contents w

(* Run the op against live region memory through Rvm.write — so the
   transaction carries both candidate encodings: captured new-value
   ranges and the declared command — and commit. *)
let txn_add ?pad ?lock ?(declare = true) rvm ~region:rid ~offset ~len ~delta =
  let txn = Rvm.begin_txn rvm in
  let b = Region.read (Rvm.region rvm rid) ~offset ~len in
  add_bytes b delta;
  Rvm.write txn ~region:rid ~offset b;
  if declare then
    Rvm.set_command txn ~op:add_op
      ~params:(add_params ?pad ~region:rid ~offset ~len ~delta ())
      ~regions:[ rid ];
  (match lock with
  | Some (lock_id, seqno, prev_write_seq) ->
      Rvm.set_lock txn ~lock_id ~seqno ~prev_write_seq
  | None -> ());
  Rvm.commit_full txn

let with_log_mode log_mode =
  { Rvm.default_options with Rvm.log_mode }

let test_value_mode_ignores_command () =
  register_add_op ();
  let rvm, _, _, _ = mk_node () in
  (* default options: Value *)
  let o = txn_add rvm ~region:0 ~offset:0 ~len:64 ~delta:1 in
  Alcotest.(check bool) "value encoding" true
    (o.Rvm.record.Lbc_wal.Record.cmd = None);
  check_int "one range" 1 (List.length o.Rvm.record.Lbc_wal.Record.ranges);
  Alcotest.(check bool) "record equals its value equivalent" true
    (Lbc_wal.Record.equal_txn o.Rvm.record o.Rvm.value)

let test_command_mode_forces_cmd () =
  register_add_op ();
  let rvm, region, _, _ =
    mk_node ~options:(with_log_mode Lbc_wal.Command.Command) ()
  in
  let o = txn_add rvm ~region:0 ~offset:8 ~len:16 ~delta:3 in
  let record = o.Rvm.record in
  Alcotest.(check bool) "command encoding" true
    (record.Lbc_wal.Record.cmd <> None);
  Alcotest.(check (list int)) "no ranges on the record" []
    (List.map (fun _ -> 0) record.Lbc_wal.Record.ranges);
  (* The value equivalent still carries the post-bytes for profiling. *)
  check_int "value equivalent has the range" 1
    (List.length o.Rvm.value.Lbc_wal.Record.ranges);
  let r = List.hd o.Rvm.value.Lbc_wal.Record.ranges in
  Alcotest.(check bytes) "value equivalent matches region memory"
    (Region.read region ~offset:8 ~len:16)
    r.Lbc_wal.Record.data;
  (* Both encodings share the dependency-carrying regions. *)
  Alcotest.(check (list int)) "same region keys"
    (Lbc_wal.Record.regions o.Rvm.value)
    (Lbc_wal.Record.regions record)

let test_adaptive_picks_smaller () =
  register_add_op ();
  let rvm, _, _, _ =
    mk_node ~options:(with_log_mode Lbc_wal.Command.Adaptive) ()
  in
  (* A wide span: ~6 param bytes against a 104-byte range header plus
     128 payload bytes — the command must win. *)
  let o = txn_add rvm ~region:0 ~offset:0 ~len:128 ~delta:1 in
  Alcotest.(check bool) "wide span: command chosen" true
    (o.Rvm.record.Lbc_wal.Record.cmd <> None);
  Alcotest.(check bool) "chosen encoding is smaller" true
    (Lbc_wal.Record.encoded_size o.Rvm.record
    < Lbc_wal.Record.encoded_size o.Rvm.value);
  (* Pad the params past the value encoding's size: values must win. *)
  let o' = txn_add ~pad:500 rvm ~region:0 ~offset:0 ~len:8 ~delta:1 in
  Alcotest.(check bool) "bloated params: values chosen" true
    (o'.Rvm.record.Lbc_wal.Record.cmd = None);
  Alcotest.(check bool) "record equals value equivalent" true
    (Lbc_wal.Record.equal_txn o'.Rvm.record o'.Rvm.value)

let test_readonly_stays_value () =
  let rvm, _, _, _ =
    mk_node ~options:(with_log_mode Lbc_wal.Command.Command) ()
  in
  let txn = Rvm.begin_txn rvm in
  Rvm.set_lock txn ~lock_id:3 ~seqno:1 ~prev_write_seq:0;
  let record = Rvm.commit txn in
  Alcotest.(check bool) "no command" true (record.Lbc_wal.Record.cmd = None);
  Alcotest.(check bool) "not a write" false (Lbc_wal.Record.is_write record)

let test_set_command_unregistered_rejected () =
  let rvm, _, _, _ = mk_node () in
  let txn = Rvm.begin_txn rvm in
  Alcotest.(check bool) "unregistered op rejected" true
    (try
       Rvm.set_command txn ~op:999_983 ~params:Bytes.empty ~regions:[ 0 ];
       false
     with Rvm.Txn_error _ -> true)

let test_apply_cmd_record_peer () =
  (* Node B applies A's command record: re-execution against B's cached
     pre-state reproduces A's bytes exactly. *)
  register_add_op ();
  let options = with_log_mode Lbc_wal.Command.Command in
  let a, region_a, _, _ = mk_node ~options () in
  let b, region_b, _, _ = mk_node ~options () in
  (* Identical pre-state on both nodes (a value-encoded seed: no
     set_command, so Command mode still logs ranges). *)
  let seed = Rvm.begin_txn a in
  Rvm.write seed ~region:0 ~offset:0 (Bytes.of_string "0123456789abcdef");
  let seed_record = (Rvm.commit_full seed).Rvm.record in
  Alcotest.(check bool) "seed is value-encoded" true
    (seed_record.Lbc_wal.Record.cmd = None);
  Rvm.apply_record b seed_record;
  let o = txn_add a ~region:0 ~offset:4 ~len:8 ~delta:7 in
  Alcotest.(check bool) "update is command-encoded" true
    (o.Rvm.record.Lbc_wal.Record.cmd <> None);
  Rvm.apply_record b o.Rvm.record;
  Alcotest.(check bytes) "peer cache converged"
    (Region.read region_a ~offset:0 ~len:16)
    (Region.read region_b ~offset:0 ~len:16);
  check_int "records applied" 2 (Rvm.stats b).Rvm.records_applied

let test_recovery_replays_cmd () =
  (* Crash recovery re-executes command records against the database
     image; stacked commands see the preceding command's output as their
     pre-state. *)
  register_add_op ();
  let rvm, region, db, log_dev =
    mk_node ~options:(with_log_mode Lbc_wal.Command.Command) ()
  in
  let seed = Rvm.begin_txn rvm in
  Rvm.write seed ~region:0 ~offset:0 (Bytes.make 64 'A');
  ignore (Rvm.commit seed);
  ignore (txn_add rvm ~region:0 ~offset:0 ~len:32 ~delta:1);
  ignore (txn_add rvm ~region:0 ~offset:16 ~len:32 ~delta:2);
  let expect = Region.read region ~offset:0 ~len:64 in
  Dev.crash log_dev;
  Dev.crash db;
  let log = Lbc_wal.Log.attach log_dev in
  let outcome = Recovery.replay ~log ~db_for_region:(fun _ -> Some db) in
  check_int "three records" 3 outcome.Recovery.records_replayed;
  Alcotest.(check bytes) "db recovered through command re-execution" expect
    (Dev.read db ~off:0 ~len:64)

(* The ISSUE's replay-identity property: random interleavings of value
   and command commits must recover byte-identically to an all-value log
   under every replay shape — serial, partitioned, and on-demand per
   region-index chain. *)
let prop_mixed_replay_identity =
  let size = 256 in
  let regions = 2 in
  let gen_ops =
    QCheck.Gen.(
      list_size (1 -- 12)
        (pair
           (pair (int_bound (regions - 1)) bool)
           (triple (int_bound 190) (1 -- 32) (1 -- 255))))
  in
  QCheck.Test.make ~name:"mixed value/cmd logs replay byte-identical"
    ~count:60 (QCheck.make gen_ops) (fun ops ->
      register_add_op ();
      let log_dev = Dev.create () in
      let rvm =
        Rvm.init
          ~options:(with_log_mode Lbc_wal.Command.Adaptive)
          ~node:0 ~log_dev ()
      in
      for rid = 0 to regions - 1 do
        ignore (Rvm.map_region rvm ~id:rid ~db:(Dev.create ()) ~size)
      done;
      (* Per-region locks so the merged stream partitions into real
         chains; chain each lock's writes like the lock package would. *)
      let seqno = Array.make regions 0 in
      let outcomes =
        List.map
          (fun ((rid, as_cmd), (offset, len, delta)) ->
            let prev = seqno.(rid) in
            seqno.(rid) <- prev + 1;
            txn_add ~declare:as_cmd rvm ~region:rid ~offset ~len ~delta
              ~lock:(100 + rid, prev + 1, prev))
          ops
      in
      let mixed = List.map (fun o -> o.Rvm.record) outcomes in
      let values = List.map (fun o -> o.Rvm.value) outcomes in
      let finals =
        List.init regions (fun rid ->
            Region.read (Rvm.region rvm rid) ~offset:0 ~len:size)
      in
      (* Each replay target starts from the same checkpoint image the
         writer started from: all zeroes. *)
      let fresh_devs () =
        let devs =
          Array.init regions (fun _ ->
              let d = Dev.create () in
              Dev.load d (Bytes.make size '\000');
              d)
        in
        (devs, fun rid -> if rid < regions then Some devs.(rid) else None)
      in
      let image devs rid = Dev.read devs.(rid) ~off:0 ~len:size in
      let matches devs =
        List.for_all2
          (fun rid final -> Bytes.equal final (image devs rid))
          (List.init regions Fun.id)
          finals
      in
      (* Baseline: the all-value log. *)
      let vdevs, vfor = fresh_devs () in
      ignore (Recovery.replay_records values ~db_for_region:vfor);
      (* Serial replay of the mixed log. *)
      let sdevs, sfor = fresh_devs () in
      ignore (Recovery.replay_records mixed ~db_for_region:sfor);
      (* Partitioned replay: lock/region-disjoint streams. *)
      let pdevs, pfor = fresh_devs () in
      List.iter
        (fun stream ->
          ignore (Recovery.replay_records stream ~db_for_region:pfor))
        (Lbc_core.Merge.partition mixed);
      (* On-demand replay: region-index chains read by log offset. *)
      let odevs, ofor = fresh_devs () in
      Dev.crash log_dev;
      let log = Lbc_wal.Log.attach log_dev in
      let idx, status = Lbc_wal.Region_index.of_log log in
      let chains_ok = ref (status = Lbc_wal.Log.Clean) in
      List.iter
        (fun offsets ->
          match Recovery.replay_chain ~log ~offsets ~db_for_region:ofor with
          | Ok _ -> ()
          | Error _ -> chains_ok := false)
        (Lbc_wal.Region_index.chains idx);
      !chains_ok && matches vdevs && matches sdevs && matches pdevs
      && matches odevs)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "rvm.range_tree",
      [
        Alcotest.test_case "ordered appends" `Quick test_tree_ordered_appends;
        Alcotest.test_case "exact match (cache)" `Quick
          test_tree_exact_match_last_cache;
        Alcotest.test_case "exact match (search)" `Quick
          test_tree_exact_match_via_search;
        Alcotest.test_case "optimized extend" `Quick test_tree_optimized_extend;
        Alcotest.test_case "optimized keeps overlap" `Quick
          test_tree_optimized_keeps_overlap;
        Alcotest.test_case "standard merges overlap" `Quick
          test_tree_standard_merges_overlap;
        Alcotest.test_case "standard merges adjacent" `Quick
          test_tree_standard_merges_adjacent;
        Alcotest.test_case "standard merges backward" `Quick
          test_tree_standard_merge_backward;
        Alcotest.test_case "bad args" `Quick test_tree_bad_args;
        qtest (coverage_matches Range_tree.Standard);
        qtest (coverage_matches Range_tree.Optimized);
        qtest prop_standard_disjoint;
      ] );
    ( "rvm.region",
      [
        Alcotest.test_case "map loads db" `Quick test_region_map_loads_db;
        Alcotest.test_case "u64 accessors" `Quick test_region_u64;
        Alcotest.test_case "flush to db" `Quick test_region_flush;
      ] );
    ( "rvm.txn",
      [
        Alcotest.test_case "commit builds record" `Quick test_txn_commit_record;
        Alcotest.test_case "coalesces repeats" `Quick
          test_txn_coalesces_repeated_updates;
        Alcotest.test_case "commit reaches log" `Quick test_txn_commit_goes_to_log;
        Alcotest.test_case "no_flush lost on crash" `Quick
          test_txn_no_flush_lost_on_crash;
        Alcotest.test_case "disk logging disabled" `Quick
          test_txn_disk_logging_disabled;
        Alcotest.test_case "abort restores" `Quick test_txn_abort_restores;
        Alcotest.test_case "abort needs Restore" `Quick
          test_txn_abort_no_restore_rejected;
        Alcotest.test_case "dead txn rejected" `Quick test_txn_dead_rejects_ops;
        Alcotest.test_case "unmapped region" `Quick test_txn_unmapped_region;
        Alcotest.test_case "multi-region" `Quick test_multi_region_txn;
      ] );
    ( "rvm.apply",
      [
        Alcotest.test_case "peer update" `Quick test_apply_record_peer_update;
        Alcotest.test_case "skips unmapped" `Quick test_apply_record_skips_unmapped;
      ] );
    ( "rvm.recovery",
      [
        Alcotest.test_case "replay log" `Quick test_recovery_replays_log;
        Alcotest.test_case "truncate then recover" `Quick
          test_truncate_then_recover;
        Alcotest.test_case "high-water trim" `Quick test_maybe_truncate_high_water;
        qtest prop_recovery_matches_model;
      ] );
    ( "rvm.ckpt",
      [
        Alcotest.test_case "region dirty tracking" `Quick
          test_region_dirty_tracking;
        Alcotest.test_case "flush_slice drains incrementally" `Quick
          test_region_flush_slice;
        Alcotest.test_case "fuzzy checkpoint" `Quick test_fuzzy_checkpoint;
        Alcotest.test_case "fuzzy checkpoint with interleaved commits" `Quick
          test_fuzzy_checkpoint_interleaved_commits;
        Alcotest.test_case "truncate respects retention mark" `Quick
          test_truncate_respects_retention;
        Alcotest.test_case "truncate flushes open batch first" `Quick
          test_truncate_flushes_open_batch_first;
        Alcotest.test_case "apply_record counts unmapped ranges" `Quick
          test_apply_record_counts_unmapped;
      ] );
    ( "rvm.adaptive",
      [
        Alcotest.test_case "Value mode ignores the declaration" `Quick
          test_value_mode_ignores_command;
        Alcotest.test_case "Command mode forces the cmd encoding" `Quick
          test_command_mode_forces_cmd;
        Alcotest.test_case "Adaptive picks the smaller encoding" `Quick
          test_adaptive_picks_smaller;
        Alcotest.test_case "read-only commits stay value" `Quick
          test_readonly_stays_value;
        Alcotest.test_case "set_command needs a registered op" `Quick
          test_set_command_unregistered_rejected;
        Alcotest.test_case "peer applies a cmd record" `Quick
          test_apply_cmd_record_peer;
        Alcotest.test_case "recovery re-executes cmds" `Quick
          test_recovery_replays_cmd;
        qtest prop_mixed_replay_identity;
      ] );
  ]
