(* Integration tests for log-based coherency: wire format, propagation,
   ordering interlock, lazy mode, log merge, distributed recovery. *)

open Lbc_core

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let region = 0
let lock = 0

let mk ?(config = Config.default) ?(nodes = 2) ?(region_size = 4096) () =
  let c = Cluster.create ~config ~nodes () in
  Cluster.add_region c ~id:region ~size:region_size;
  Cluster.map_region_all c ~region;
  c

(* A counter stored as a u64 at a fixed offset, updated under the lock. *)
let increment node ~offset =
  let txn = Node.Txn.begin_ node in
  Node.Txn.acquire txn lock;
  let v = Node.Txn.get_u64 txn ~region ~offset in
  Node.Txn.set_u64 txn ~region ~offset (Int64.add v 1L);
  Node.Txn.commit txn

(* ------------------------------------------------------------------ *)
(* Wire format *)

let wire_txn =
  {
    Lbc_wal.Record.node = 2;
    tid = 99;
    locks = [ { Lbc_wal.Record.lock_id = 4; seqno = 17; prev_write_seq = 12 } ];
    ranges =
      [
        { Lbc_wal.Record.region = 0; offset = 1000; data = Bytes.of_string "abcd" };
        { Lbc_wal.Record.region = 0; offset = 5000; data = Bytes.of_string "efgh" };
        { Lbc_wal.Record.region = 1; offset = 64; data = Bytes.of_string "Z" };
      ];
    cmd = None;
  }

let test_wire_roundtrip () =
  let b = Wire.encode wire_txn in
  let t' = Wire.decode b in
  Alcotest.(check bool) "roundtrip" true (Lbc_wal.Record.equal_txn wire_txn t')

let test_wire_compression () =
  let compressed = Wire.size wire_txn in
  let full = Wire.size_uncompressed wire_txn in
  Alcotest.(check bool)
    (Printf.sprintf "compressed (%d) much smaller than full headers (%d)"
       compressed full)
    true
    (compressed * 3 < full);
  (* Per-range header overhead must be in the paper's 4-24 byte window
     (ours: tag + varint delta + varint size, plus the message header). *)
  let per_range =
    float_of_int (Wire.header_overhead wire_txn) /. 3.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "per-range overhead %.1f in [2,24]" per_range)
    true
    (per_range >= 2.0 && per_range <= 24.0)

let prop_wire_roundtrip =
  let gen =
    QCheck.Gen.(
      let range =
        map
          (fun (region, offset, s) ->
            { Lbc_wal.Record.region; offset; data = Bytes.of_string s })
          (triple (int_bound 2) (int_bound 100_000)
             (string_size ~gen:printable (1 -- 16)))
      in
      let lockinfo =
        map
          (fun (l, s, p) ->
            { Lbc_wal.Record.lock_id = l; seqno = s + 1; prev_write_seq = p })
          (triple (int_bound 50) (int_bound 500) (int_bound 500))
      in
      map
        (fun (node, tid, locks, ranges) ->
          (* The wire format sorts ranges; sort here so equality holds, and
             drop duplicate (region,offset) keys as RVM would have
             coalesced them. *)
          let cmp a b =
            compare
              (a.Lbc_wal.Record.region, a.Lbc_wal.Record.offset)
              (b.Lbc_wal.Record.region, b.Lbc_wal.Record.offset)
          in
          let ranges =
            List.sort_uniq
              (fun a b ->
                let c = cmp a b in
                if c <> 0 then c else 0)
              ranges
          in
          { Lbc_wal.Record.node; tid; locks; ranges; cmd = None })
        (quad (int_bound 30) (int_bound 10_000) (list_size (0 -- 4) lockinfo)
           (list_size (0 -- 10) range)))
  in
  QCheck.Test.make ~name:"wire roundtrip (random)" ~count:300 (QCheck.make gen)
    (fun t ->
      Lbc_wal.Record.equal_txn t (Wire.decode (Wire.encode t)))

let test_wire_golden () =
  (* Byte-identity with the pre-slice encoder (vectors generated before
     the refactor; transactions defined in Test_wal). *)
  List.iter
    (fun (name, t) ->
      Alcotest.(check string)
        (name ^ " encodes to the pre-refactor wire bytes")
        (Test_wal.golden "WIRE" name)
        (Test_wal.hex_of_bytes (Wire.encode t));
      let from_golden =
        Wire.decode (Test_wal.bytes_of_hex (Test_wal.golden "WIRE" name))
      in
      (* The wire sorts ranges; compare against the decoded shape. *)
      Alcotest.(check bool)
        (name ^ " golden decodes to the transaction")
        true
        (Lbc_wal.Record.equal_txn from_golden (Wire.decode (Wire.encode t))))
    Test_wal.golden_txns

let prop_wire_iov_identity =
  QCheck.Test.make ~name:"concat(encode_iov) = encode, decode_iov roundtrips"
    ~count:300
    (QCheck.make Test_wal.gen_txn)
    (fun t ->
      let iov = Wire.encode_iov t in
      let flat = Wire.encode t in
      Bytes.equal (Lbc_util.Slice.concat iov) flat
      && Lbc_wal.Record.equal_txn (Wire.decode flat) (Wire.decode_iov iov)
      && Lbc_util.Slice.iov_length iov = Wire.size t)

(* ------------------------------------------------------------------ *)
(* Eager propagation *)

let test_update_propagates () =
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.write txn ~region ~offset:128 (Bytes.of_string "hello peer");
      Node.Txn.commit txn);
  Cluster.run c;
  Alcotest.(check string) "peer cache updated" "hello peer"
    (Bytes.to_string (Node.read (Cluster.node c 1) ~region ~offset:128 ~len:10));
  check_int "peer applied seq" 1 (Node.applied_seq (Cluster.node c 1) lock)

let test_counter_three_nodes () =
  let c = mk ~nodes:3 () in
  for n = 0 to 2 do
    Cluster.spawn c ~node:n (fun node ->
        for _ = 1 to 10 do
          increment node ~offset:0
        done)
  done;
  Cluster.run c;
  for n = 0 to 2 do
    check_i64
      (Printf.sprintf "node %d sees 30" n)
      30L
      (Node.get_u64 (Cluster.node c n) ~region ~offset:0)
  done;
  (* All caches identical, nothing left pending. *)
  for n = 0 to 2 do
    check_int "no pending" 0 (Node.pending_count (Cluster.node c n))
  done

let test_interlock_token_overtakes_updates () =
  (* Commit releases the lock (token may fly) before broadcasting the
     update, so a waiting peer's acquire must block on the interlock. *)
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.set_u64 txn ~region ~offset:0 7L;
      (* Give node 1 time to enqueue its request so the token is passed
         directly from the release path. *)
      Lbc_sim.Proc.sleep 100.0;
      Node.Txn.commit txn);
  let seen = ref 0L in
  Cluster.spawn c ~node:1 (fun node ->
      Lbc_sim.Proc.sleep 10.0;
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      seen := Node.Txn.get_u64 txn ~region ~offset:0;
      Node.Txn.commit txn);
  Cluster.run c;
  check_i64 "reader saw the write" 7L !seen;
  check_int "interlock engaged" 1 (Node.stats (Cluster.node c 1)).Node.interlock_waits

let test_out_of_order_updates_held () =
  (* Three nodes, writes chained 0 -> 1 -> 2 ... node 2 receives node 1's
     update on a different channel than node 0's and may have to hold it. *)
  let c = mk ~nodes:3 () in
  let chain = Lbc_sim.Mailbox.create () in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.write txn ~region ~offset:0 (Bytes.of_string "A");
      Node.Txn.commit txn;
      Lbc_sim.Mailbox.send chain ());
  Cluster.spawn c ~node:1 (fun node ->
      Lbc_sim.Mailbox.recv chain;
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.write txn ~region ~offset:1 (Bytes.of_string "B");
      Node.Txn.commit txn);
  Cluster.run c;
  let n2 = Cluster.node c 2 in
  Alcotest.(check string) "both updates applied in order" "AB"
    (Bytes.to_string (Node.read n2 ~region ~offset:0 ~len:2));
  check_int "nothing pending" 0 (Node.pending_count n2)

let test_fine_grained_updates_coarse_lock () =
  (* The paper's headline: coarse-grain locks, fine-grain coherency.  The
     whole 4 KB region is under one lock but only the modified bytes
     travel. *)
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.set_u64 txn ~region ~offset:0 1L;
      Node.Txn.commit txn);
  Cluster.run c;
  let st = Node.stats (Cluster.node c 0) in
  check_int "one update message" 1 st.Node.updates_sent;
  Alcotest.(check bool)
    (Printf.sprintf "message is tiny (%d bytes), not the 4 KB segment"
       st.Node.update_bytes_sent)
    true
    (st.Node.update_bytes_sent < 64)

let test_no_broadcast_for_readonly () =
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      ignore (Node.Txn.get_u64 txn ~region ~offset:0);
      Node.Txn.commit txn);
  Cluster.run c;
  check_int "no update traffic" 0 (Node.stats (Cluster.node c 0)).Node.updates_sent

let test_update_only_to_mapping_peers () =
  let c = Cluster.create ~nodes:3 () in
  Cluster.add_region c ~id:region ~size:1024;
  ignore (Cluster.map_region c ~node:0 ~region);
  ignore (Cluster.map_region c ~node:2 ~region);
  (* node 1 does not map the region and must not receive updates *)
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.set_u64 txn ~region ~offset:0 5L;
      Node.Txn.commit txn);
  Cluster.run c;
  check_int "one peer only" 1 (Node.stats (Cluster.node c 0)).Node.updates_sent;
  check_int "node2 received" 1 (Node.stats (Cluster.node c 2)).Node.records_received;
  check_int "node1 received nothing" 0
    (Node.stats (Cluster.node c 1)).Node.records_received

let test_abort_propagates_nothing () =
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.write txn ~region ~offset:0 (Bytes.of_string "oops");
      Node.Txn.abort txn);
  Cluster.spawn c ~node:1 (fun node ->
      Lbc_sim.Proc.sleep 50.0;
      (* The lock must be acquirable again after the abort. *)
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.commit txn);
  Cluster.run c;
  check_int "no updates sent" 0 (Node.stats (Cluster.node c 0)).Node.updates_sent;
  Alcotest.(check string) "writer's own cache rolled back" "\000\000\000\000"
    (Bytes.to_string (Node.read (Cluster.node c 0) ~region ~offset:0 ~len:4))

(* ------------------------------------------------------------------ *)
(* Lazy propagation (Section 2.2 extension) *)

let lazy_config = { Config.default with Config.propagation = Config.Lazy }

let test_lazy_no_eager_traffic () =
  let c = mk ~config:lazy_config () in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.set_u64 txn ~region ~offset:0 11L;
      Node.Txn.commit txn);
  Cluster.run c;
  check_int "no update messages" 0 (Node.stats (Cluster.node c 0)).Node.updates_sent;
  Alcotest.(check bool) "writer retained the record" true
    (Node.retained_count (Cluster.node c 0) > 0);
  (* Peer cache is stale — by design, until it acquires. *)
  check_i64 "peer stale" 0L (Node.get_u64 (Cluster.node c 1) ~region ~offset:0)

let test_lazy_fetch_on_acquire () =
  let c = mk ~config:lazy_config () in
  Cluster.spawn c ~node:0 (fun node ->
      for _ = 1 to 3 do
        increment node ~offset:0
      done);
  Cluster.spawn c ~node:1 (fun node ->
      Lbc_sim.Proc.sleep 500.0;
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Alcotest.(check int64) "reader caught up on acquire" 3L
        (Node.Txn.get_u64 txn ~region ~offset:0);
      Node.Txn.commit txn);
  Cluster.run c;
  let st = Node.stats (Cluster.node c 1) in
  check_int "one fetch" 1 st.Node.fetches_sent;
  check_int "three records fetched" 3 st.Node.records_fetched

let test_lazy_chain_through_writers () =
  (* 0 writes, 1 writes (fetching 0's update first), then 2 fetches from 1
     and must receive the whole chain. *)
  let c = mk ~config:lazy_config ~nodes:3 () in
  let step = Lbc_sim.Mailbox.create () in
  Cluster.spawn c ~node:0 (fun node ->
      increment node ~offset:0;
      Lbc_sim.Mailbox.send step ());
  Cluster.spawn c ~node:1 (fun node ->
      Lbc_sim.Mailbox.recv step;
      increment node ~offset:0;
      Lbc_sim.Mailbox.send step ());
  Cluster.spawn c ~node:2 (fun node ->
      Lbc_sim.Mailbox.recv step;
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Alcotest.(check int64) "chain complete" 2L
        (Node.Txn.get_u64 txn ~region ~offset:0);
      Node.Txn.commit txn);
  Cluster.run c;
  check_int "no eager updates anywhere" 0
    ((Node.stats (Cluster.node c 0)).Node.updates_sent
    + (Node.stats (Cluster.node c 1)).Node.updates_sent)

let test_lazy_multilock_falls_back_to_eager () =
  let c = mk ~config:lazy_config () in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn 0;
      Node.Txn.acquire txn 1;
      Node.Txn.set_u64 txn ~region ~offset:0 4L;
      Node.Txn.set_u64 txn ~region ~offset:64 5L;
      Node.Txn.commit txn);
  Cluster.run c;
  check_int "multi-lock record broadcast" 1
    (Node.stats (Cluster.node c 0)).Node.updates_sent;
  check_i64 "peer updated" 4L (Node.get_u64 (Cluster.node c 1) ~region ~offset:0)

(* ------------------------------------------------------------------ *)
(* Merge + distributed recovery *)

let test_merge_orders_by_lock_seq () =
  let mk_txn node tid seqno prev ranges =
    {
      Lbc_wal.Record.node;
      tid;
      locks = [ { Lbc_wal.Record.lock_id = 0; seqno; prev_write_seq = prev } ];
      ranges;
      cmd = None;
    }
  in
  (* Node 0 committed seq 1 and 3; node 1 committed seq 2. *)
  let log0 = [ mk_txn 0 1 1 0 []; mk_txn 0 2 3 2 [] ] in
  let log1 = [ mk_txn 1 1 2 1 [] ] in
  match Merge.merge_records [ log0; log1 ] with
  | Error _ -> Alcotest.fail "merge failed"
  | Ok merged ->
      Alcotest.(check (list (pair int int)))
        "interleaved by sequence number"
        [ (0, 1); (1, 2); (0, 3) ]
        (List.map
           (fun (t : Lbc_wal.Record.txn) ->
             (t.Lbc_wal.Record.node, t.Lbc_wal.Record.tid))
           merged
        |> List.map2
             (fun seq (node, _) -> (node, seq))
             [ 1; 2; 3 ])

let test_merge_unorderable () =
  let t node seqno =
    {
      Lbc_wal.Record.node;
      tid = 1;
      locks = [ { Lbc_wal.Record.lock_id = 0; seqno; prev_write_seq = 0 } ];
      ranges = [];
      cmd = None;
    }
  in
  (* Node 0's log has seq 2 then 1 — impossible under 2PL. *)
  (match Merge.merge_records [ [ t 0 2; t 0 1 ] ] with
  | Error (Merge.Unorderable _) -> ()
  | Ok _ -> Alcotest.fail "expected Unorderable")

(* ------------------------------------------------------------------ *)
(* Partitioning for parallel replay *)

let ptxn ?(node = 0) ~tid ~locks ~regions () =
  {
    Lbc_wal.Record.node;
    tid;
    locks =
      List.map
        (fun (l, s) ->
          { Lbc_wal.Record.lock_id = l; seqno = s; prev_write_seq = 0 })
        locks;
    ranges =
      List.map
        (fun r ->
          { Lbc_wal.Record.region = r; offset = 0; data = Bytes.of_string "d" })
        regions;
    cmd = None;
  }

let tids stream = List.map (fun (t : Lbc_wal.Record.txn) -> t.Lbc_wal.Record.tid) stream

let test_partition_disjoint_streams () =
  (* Two independent lock/region families: two streams, order kept. *)
  let records =
    [
      ptxn ~tid:1 ~locks:[ (0, 1) ] ~regions:[ 0 ] ();
      ptxn ~tid:2 ~locks:[ (1, 1) ] ~regions:[ 1 ] ();
      ptxn ~tid:3 ~locks:[ (0, 2) ] ~regions:[ 0 ] ();
      ptxn ~tid:4 ~locks:[ (1, 2) ] ~regions:[ 1 ] ();
    ]
  in
  Alcotest.(check (list (list int)))
    "two streams in first-appearance order, input order within"
    [ [ 1; 3 ]; [ 2; 4 ] ]
    (List.map tids (Merge.partition records))

let test_partition_region_joins_locks () =
  (* Distinct locks writing one region must share a stream: replaying
     them concurrently could reorder overlapping writes. *)
  let records =
    [
      ptxn ~tid:1 ~locks:[ (0, 1) ] ~regions:[ 7 ] ();
      ptxn ~tid:2 ~locks:[ (1, 1) ] ~regions:[ 7 ] ();
    ]
  in
  Alcotest.(check (list (list int)))
    "one stream" [ [ 1; 2 ] ]
    (List.map tids (Merge.partition records))

let test_partition_transitive_closure () =
  (* t2 bridges lock 0 and lock 1; all three collapse into one stream
     even though t1 and t3 share nothing directly. *)
  let records =
    [
      ptxn ~tid:1 ~locks:[ (0, 1) ] ~regions:[ 0 ] ();
      ptxn ~tid:2 ~locks:[ (0, 2); (1, 1) ] ~regions:[ 0; 1 ] ();
      ptxn ~tid:3 ~locks:[ (1, 2) ] ~regions:[ 1 ] ();
    ]
  in
  Alcotest.(check (list (list int)))
    "transitive closure is one stream" [ [ 1; 2; 3 ] ]
    (List.map tids (Merge.partition records))

let test_partition_preserves_all_records () =
  (* Whatever the shape, partitioning is a permutation: every record in
     exactly one stream, each stream a subsequence of the input. *)
  let records =
    List.init 20 (fun i ->
        ptxn ~tid:i
          ~locks:[ (i mod 3, (i / 3) + 1) ]
          ~regions:[ i mod 3 ] ())
  in
  let streams = Merge.partition records in
  check_int "record count preserved" 20
    (List.fold_left (fun a s -> a + List.length s) 0 streams);
  check_int "three lock families" 3 (List.length streams);
  List.iter
    (fun stream ->
      let rec subsequence xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xt, y :: yt ->
            if x = y then subsequence xt yt else subsequence xs yt
      in
      Alcotest.(check bool) "stream is a subsequence of the input" true
        (subsequence (tids stream) (tids records)))
    streams

let test_partition_empty_and_keyless () =
  Alcotest.(check (list (list int))) "empty input" []
    (List.map tids (Merge.partition []));
  (* Records with no locks and no ranges share one catch-all stream. *)
  let records =
    [ ptxn ~tid:1 ~locks:[] ~regions:[] (); ptxn ~tid:2 ~locks:[] ~regions:[] () ]
  in
  Alcotest.(check (list (list int)))
    "keyless records stay together (and ordered)" [ [ 1; 2 ] ]
    (List.map tids (Merge.partition records))

(* Satellite property: the region index persisted at a checkpoint trim,
   extended by scanning only the records appended afterwards, partitions
   the live tail exactly like a fresh [Merge.partition] over it.  Exact
   equality holds because the index is written fresh over the post-trim
   tail (as [Rvm.fuzzy_checkpoint] does); an index persisted before a
   trim may legally be coarser. *)
let gen_index_case =
  let open QCheck.Gen in
  let gen_keys =
    pair (list_size (0 -- 2) (int_bound 5)) (list_size (0 -- 2) (int_bound 5))
  in
  map
    (fun (keysets, ck, tr) ->
      (List.mapi
         (fun i (locks, regions) ->
           ptxn ~tid:(i + 1)
             ~locks:(List.mapi (fun j l -> (l, ((i + 1) * 10) + j)) locks)
             ~regions ())
         keysets,
       ck, tr))
    (triple (list_size (0 -- 25) gen_keys) (int_bound 1000) (int_bound 1000))

let prop_region_index_matches_partition =
  QCheck.Test.make
    ~name:"persisted region index = Merge.partition across random trims"
    ~count:200
    (QCheck.make gen_index_case)
    (fun (txns, ck, tr) ->
      let d = Lbc_storage.Dev.create () in
      let log = Lbc_wal.Log.attach d in
      let n = List.length txns in
      let k = if n = 0 then 0 else ck mod (n + 1) in
      let before = List.filteri (fun i _ -> i < k) txns in
      let after = List.filteri (fun i _ -> i >= k) txns in
      let offs_before = List.map (fun t -> Lbc_wal.Log.append log t) before in
      Lbc_wal.Log.force log;
      (* Checkpoint: trim to a random record boundary in the prefix,
         then persist a fresh index of what survives. *)
      let cut =
        match offs_before with
        | [] -> Lbc_wal.Log.head log
        | offs ->
            let j = tr mod (List.length offs + 1) in
            if j = List.length offs then Lbc_wal.Log.tail log
            else List.nth offs j
      in
      ignore (Lbc_wal.Log.set_head log cut : int);
      let idx, _ = Lbc_wal.Region_index.of_log log in
      ignore
        (Lbc_wal.Log.append_ctrl log
           (Lbc_wal.Region_index.to_ctrl idx ~node:0 ~ckpt_id:1)
          : int);
      List.iter (fun t -> ignore (Lbc_wal.Log.append log t : int)) after;
      Lbc_wal.Log.force log;
      (* Reload: seeded from the persisted ctrl, extended over the
         suffix appended after it. *)
      let idx', _ = Lbc_wal.Region_index.of_log log in
      let live =
        let items, _ =
          Lbc_wal.Log.fold log ~init:[] (fun acc off t -> (off, t) :: acc)
        in
        List.rev items
      in
      let tid2off = Hashtbl.create 16 in
      List.iter
        (fun (off, (t : Lbc_wal.Record.txn)) ->
          Hashtbl.replace tid2off t.Lbc_wal.Record.tid off)
        live;
      let canon chains =
        List.sort compare (List.map (List.sort compare) chains)
      in
      let expected =
        Merge.partition (List.map snd live)
        |> List.map
             (List.map (fun (t : Lbc_wal.Record.txn) ->
                  Hashtbl.find tid2off t.Lbc_wal.Record.tid))
        |> canon
      in
      let got = canon (Lbc_wal.Region_index.chains idx') in
      expected = got)

let test_distributed_recovery_matches_caches () =
  let c = mk ~nodes:3 () in
  let rng = Lbc_util.Rng.create 7 in
  for n = 0 to 2 do
    let rng = Lbc_util.Rng.split rng in
    Cluster.spawn c ~node:n (fun node ->
        for _ = 1 to 15 do
          let txn = Node.Txn.begin_ node in
          Node.Txn.acquire txn lock;
          let offset = 8 * Lbc_util.Rng.int rng 64 in
          Node.Txn.set_u64 txn ~region ~offset
            (Int64.of_int (Lbc_util.Rng.int rng 1_000_000));
          Node.Txn.commit txn;
          Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 10.0)
        done)
  done;
  Cluster.run c;
  (* All caches agree. *)
  let image n = Node.read (Cluster.node c n) ~region ~offset:0 ~len:4096 in
  Alcotest.(check bool) "caches 0=1" true (Bytes.equal (image 0) (image 1));
  Alcotest.(check bool) "caches 0=2" true (Bytes.equal (image 0) (image 2));
  (* Server-side recovery from the merged logs reproduces that state. *)
  let outcome = Cluster.recover_database c in
  check_int "all 45 transactions" 45 outcome.Lbc_rvm.Recovery.records_replayed;
  let dev = Cluster.region_dev c region in
  let db = Lbc_storage.Dev.read dev ~off:0 ~len:(min 4096 (Lbc_storage.Dev.size dev)) in
  Alcotest.(check bool) "recovered db = caches" true
    (Bytes.equal db (Bytes.sub (image 0) 0 (Bytes.length db)))

let test_checkpoint_trims_and_preserves () =
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node ->
      for _ = 1 to 5 do
        increment node ~offset:0
      done);
  Cluster.run c;
  Cluster.checkpoint c;
  check_int "log 0 trimmed" 0
    (Lbc_wal.Log.live_bytes (Lbc_rvm.Rvm.log (Node.rvm (Cluster.node c 0))));
  (* A brand-new cluster sharing the same database devices would see the
     counter; simulate by reading the region device directly. *)
  let dev = Cluster.region_dev c region in
  check_i64 "db has checkpointed counter" 5L
    (Bytes.get_int64_le (Lbc_storage.Dev.read dev ~off:0 ~len:8) 0)

let test_client_crash_loses_uncommitted_only () =
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node ->
      increment node ~offset:0;
      (* Uncommitted work at crash: written into the cache but never
         committed, so it never reaches the log. *)
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.set_u64 txn ~region ~offset:0 999L);
  Cluster.run c;
  let outcome = Cluster.recover_database c in
  check_int "only the committed txn" 1 outcome.Lbc_rvm.Recovery.records_replayed;
  let dev = Cluster.region_dev c region in
  check_i64 "recovered value is the committed one" 1L
    (Bytes.get_int64_le (Lbc_storage.Dev.read dev ~off:0 ~len:8) 0)

(* Wire decoder robustness: arbitrary bytes must fail cleanly. *)
let prop_wire_decode_never_crashes =
  QCheck.Test.make ~name:"wire decode of junk raises Truncated" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun junk ->
      match Wire.decode (Bytes.of_string junk) with
      | _ -> true (* decoding junk successfully is acceptable only if it
                     parses as a record; no crash either way *)
      | exception Lbc_util.Codec.Truncated _ -> true
      | exception _ -> false)

let prop_wire_truncation_detected =
  QCheck.Test.make ~name:"truncated wire messages raise Truncated" ~count:200
    QCheck.(int_bound 200)
    (fun cut ->
      let b = Wire.encode wire_txn in
      QCheck.assume (cut > 0 && cut < Bytes.length b);
      match Wire.decode (Bytes.sub b 0 cut) with
      | _ -> false
      | exception Lbc_util.Codec.Truncated _ -> true)

(* Merge correctness on randomly generated serializable histories: a
   virtual total order of transactions touching random locks is split
   into per-node logs; the merge must respect, for every lock, the
   sequence-number order. *)
let prop_merge_respects_lock_order =
  let gen =
    QCheck.Gen.(
      list_size (1 -- 40) (pair (int_bound 2) (list_size (1 -- 3) (int_bound 4))))
  in
  QCheck.Test.make ~name:"merge respects per-lock sequence order" ~count:200
    (QCheck.make gen)
    (fun history ->
      (* Simulate strict 2PL: walk the history in serial order handing
         out per-lock sequence numbers. *)
      let seqs = Hashtbl.create 8 in
      let next_seq l =
        let s = 1 + Option.value ~default:0 (Hashtbl.find_opt seqs l) in
        Hashtbl.replace seqs l s;
        s
      in
      let logs = Array.make 3 [] in
      List.iteri
        (fun i (node, locks) ->
          let locks = List.sort_uniq compare locks in
          let lock_infos =
            List.map
              (fun l ->
                let s = next_seq l in
                { Lbc_wal.Record.lock_id = l; seqno = s; prev_write_seq = s - 1 })
              locks
          in
          let txn =
            { Lbc_wal.Record.node; tid = i; locks = lock_infos; ranges = [];
              cmd = None }
          in
          logs.(node) <- txn :: logs.(node))
        history;
      let logs = Array.to_list (Array.map List.rev logs) in
      match Merge.merge_records logs with
      | Error _ -> false
      | Ok merged ->
          List.length merged = List.length history
          &&
          (* For every lock, seqnos must appear in increasing order. *)
          let last = Hashtbl.create 8 in
          List.for_all
            (fun (t : Lbc_wal.Record.txn) ->
              List.for_all
                (fun l ->
                  let ok =
                    l.Lbc_wal.Record.seqno
                    > Option.value ~default:0
                        (Hashtbl.find_opt last l.Lbc_wal.Record.lock_id)
                  in
                  Hashtbl.replace last l.Lbc_wal.Record.lock_id
                    l.Lbc_wal.Record.seqno;
                  ok)
                t.Lbc_wal.Record.locks)
            merged)

(* ------------------------------------------------------------------ *)
(* Version-pinned readers (Section 2.1's accept primitive) *)

let test_pin_defers_updates () =
  let c = mk () in
  let observed_while_pinned = ref (-1L) in
  let observed_after_accept = ref (-1L) in
  Node.pin (Cluster.node c 1);
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.set_u64 txn ~region ~offset:0 42L;
      Node.Txn.commit txn);
  Cluster.spawn c ~node:1 (fun node ->
      Lbc_sim.Proc.sleep 100.0;
      (* The update has arrived but must not have been applied. *)
      observed_while_pinned := Node.get_u64 node ~region ~offset:0;
      Node.accept node;
      observed_after_accept := Node.get_u64 node ~region ~offset:0);
  Cluster.run c;
  check_i64 "pinned reader sees old version" 0L !observed_while_pinned;
  check_i64 "accept moves forward" 42L !observed_after_accept;
  check_int "record was buffered" 1 (Node.stats (Cluster.node c 1)).Node.records_received

let test_pin_blocks_acquire () =
  let c = mk () in
  let raised = ref false in
  Node.pin (Cluster.node c 0);
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      (try Node.Txn.acquire txn lock
       with Node.Coherency_error _ -> raised := true));
  Cluster.run c;
  Alcotest.(check bool) "acquire rejected while pinned" true !raised

let test_pin_accept_ordering_preserved () =
  (* Buffered records must still apply in lock-sequence order. *)
  let c = mk ~nodes:3 () in
  Node.pin (Cluster.node c 2);
  let chain = Lbc_sim.Mailbox.create () in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.write txn ~region ~offset:0 (Bytes.of_string "first");
      Node.Txn.commit txn;
      Lbc_sim.Mailbox.send chain ());
  Cluster.spawn c ~node:1 (fun node ->
      Lbc_sim.Mailbox.recv chain;
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.write txn ~region ~offset:0 (Bytes.of_string "SECON");
      Node.Txn.commit txn);
  Cluster.run c;
  let n2 = Cluster.node c 2 in
  check_int "both buffered" 2 (Node.pending_count n2);
  Node.accept n2;
  Alcotest.(check string) "newest version after accept" "SECON"
    (Bytes.to_string (Node.read n2 ~region ~offset:0 ~len:5));
  check_int "drained" 0 (Node.pending_count n2)

let test_duplicate_delivery_ignored () =
  (* Deliver the same committed record twice by hand: the second copy is
     recognized by its sequence numbers and dropped. *)
  let c = mk () in
  let record = ref None in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.set_u64 txn ~region ~offset:0 5L;
      record := Some (Node.Txn.commit_record txn));
  Cluster.run c;
  let n1 = Cluster.node c 1 in
  let payload = Wire.encode_iov (Option.get !record) in
  Node.handle n1 ~src:0 (Msg.Update payload);
  Node.handle n1 ~src:0 (Msg.Update payload);
  check_i64 "value intact" 5L (Node.get_u64 n1 ~region ~offset:0);
  check_int "applied seq not advanced twice" 1 (Node.applied_seq n1 lock);
  check_int "no pending garbage" 0 (Node.pending_count n1)

let test_group_commit_cluster () =
  (* End to end through Config -> Node -> Rvm -> Log: concurrent
     committers on one node share batches, so the log syncs fewer times
     than it commits, and peers still converge. *)
  let config =
    { Config.default with Config.group_commit = true; group_commit_max = 4;
      group_commit_delay = 50.0 }
  in
  let c = mk ~config ~nodes:2 () in
  let locks = [ 0; 1; 2; 3 ] in
  List.iter
    (fun l ->
      Cluster.spawn c ~node:0 (fun node ->
          for _ = 1 to 5 do
            let txn = Node.Txn.begin_ node in
            Node.Txn.acquire txn l;
            Node.Txn.set_u64 txn ~region ~offset:(8 * l) 7L;
            Node.Txn.commit txn
          done))
    locks;
  Cluster.run c;
  let n0 = Cluster.node c 0 in
  let log = Lbc_rvm.Rvm.log (Node.rvm n0) in
  Alcotest.(check bool) "group commit enabled" true
    (Lbc_wal.Log.group_commit_enabled log);
  check_int "all commits logged" 20 (Lbc_wal.Log.record_count log);
  let syncs = Lbc_storage.Dev.sync_count (Lbc_wal.Log.dev log) in
  Alcotest.(check bool)
    (Printf.sprintf "fewer syncs (%d) than commits (20)" syncs)
    true (syncs < 20);
  Alcotest.(check bool) "records were batched" true
    (Lbc_wal.Log.batches_flushed log < Lbc_wal.Log.records_batched log);
  (* Peers converged despite the batched durability. *)
  List.iter
    (fun l ->
      check_i64
        (Printf.sprintf "peer sees lock %d's write" l)
        7L
        (Node.get_u64 (Cluster.node c 1) ~region ~offset:(8 * l)))
    locks;
  (* The batched log replays identically. *)
  let txns, status = Lbc_wal.Log.read_all log in
  Alcotest.(check bool) "log clean" true (status = Lbc_wal.Log.Clean);
  check_int "replay count" 20 (List.length txns)

let test_double_acquire_same_lock_rejected () =
  let c = mk () in
  let raised = ref false in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      (try Node.Txn.acquire txn lock
       with Node.Coherency_error _ -> raised := true);
      Node.Txn.commit txn);
  Cluster.run c;
  Alcotest.(check bool) "second acquire rejected" true !raised

let test_wire_large_offsets () =
  let t =
    {
      Lbc_wal.Record.node = 1;
      tid = 1;
      locks = [];
      ranges =
        [
          {
            Lbc_wal.Record.region = 7;
            offset = 1 lsl 40;  (* beyond 32 bits: varints must cope *)
            data = Bytes.of_string "far";
          };
        ];
      cmd = None;
    }
  in
  Alcotest.(check bool) "roundtrip" true
    (Lbc_wal.Record.equal_txn t (Wire.decode (Wire.encode t)))

(* ------------------------------------------------------------------ *)
(* Multicast (Section 4.3.1) *)

let test_multicast_single_transmission () =
  let config = { Config.default with Config.multicast = true } in
  let c = mk ~config ~nodes:4 () in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.set_u64 txn ~region ~offset:0 9L;
      Node.Txn.commit txn);
  Cluster.run c;
  (* One transmission on the wire; all three peers updated. *)
  check_int "one message" 1 (Cluster.total_messages c);
  for n = 1 to 3 do
    check_i64 (Printf.sprintf "peer %d" n) 9L
      (Node.get_u64 (Cluster.node c n) ~region ~offset:0)
  done

let test_multicast_sender_time_constant_in_peers () =
  let elapsed_with nodes multicast =
    let config =
      { Config.measured with Config.multicast; Config.disk_logging = false }
    in
    let c = mk ~config ~nodes () in
    let finish = ref 0.0 in
    Cluster.spawn c ~node:0 (fun node ->
        let txn = Node.Txn.begin_ node in
        Node.Txn.acquire txn lock;
        Node.Txn.write txn ~region ~offset:0 (Bytes.make 256 'x');
        Node.Txn.commit txn;
        finish := Lbc_sim.Proc.now ());
    Cluster.run c;
    !finish
  in
  let uni2 = elapsed_with 2 false and uni5 = elapsed_with 5 false in
  let multi2 = elapsed_with 2 true and multi5 = elapsed_with 5 true in
  Alcotest.(check bool)
    (Printf.sprintf "unicast writer cost grows with peers (%.1f -> %.1f)" uni2 uni5)
    true (uni5 > uni2 +. 100.0);
  Alcotest.(check (float 1e-6))
    "multicast writer cost independent of peers" multi2 multi5

(* ------------------------------------------------------------------ *)
(* Failure injection *)

let test_recovery_ignores_torn_tails () =
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node ->
      increment node ~offset:0;
      increment node ~offset:0);
  Cluster.run c;
  (* Tear the tail of node 0's log: crash keeps only a 30-byte prefix of
     the last unsynced write.  Committed (forced) records survive. *)
  let log_dev =
    match Lbc_storage.Store.find (Cluster.store c) "log.0" with
    | Some d -> d
    | None -> Alcotest.fail "no log device"
  in
  Lbc_storage.Dev.write_string log_dev ~off:(Lbc_storage.Dev.size log_dev) "partial garbage after the real records";
  Lbc_storage.Dev.crash ~tear_bytes:10 log_dev;
  let outcome = Cluster.recover_database c in
  check_int "both committed txns recovered" 2
    outcome.Lbc_rvm.Recovery.records_replayed;
  let dev = Cluster.region_dev c region in
  check_i64 "value intact" 2L
    (Bytes.get_int64_le (Lbc_storage.Dev.read dev ~off:0 ~len:8) 0)

let test_server_crash_then_recovery () =
  (* Flush-on-commit means every committed transaction survives a full
     storage-server crash. *)
  let c = mk ~nodes:3 () in
  for n = 0 to 2 do
    Cluster.spawn c ~node:n (fun node ->
        for _ = 1 to 5 do
          increment node ~offset:(8 * n);
          Lbc_sim.Proc.sleep 7.0
        done)
  done;
  Cluster.run c;
  Lbc_storage.Store.crash_all (Cluster.store c);
  let outcome = Cluster.recover_database c in
  check_int "15 transactions" 15 outcome.Lbc_rvm.Recovery.records_replayed;
  let dev = Cluster.region_dev c region in
  for n = 0 to 2 do
    check_i64
      (Printf.sprintf "counter %d" n)
      5L
      (Bytes.get_int64_le (Lbc_storage.Dev.read dev ~off:(8 * n) ~len:8) 0)
  done

let test_no_flush_commits_lost_on_server_crash () =
  let config = { Config.default with Config.flush_on_commit = false } in
  let c = mk ~config () in
  Cluster.spawn c ~node:0 (fun node ->
      increment node ~offset:0;
      increment node ~offset:0);
  Cluster.run c;
  (* Nothing was forced: the server crash wipes the buffered log. *)
  Lbc_storage.Store.crash_all (Cluster.store c);
  let outcome = Cluster.recover_database c in
  check_int "lazy commits lost" 0 outcome.Lbc_rvm.Recovery.records_replayed

(* ------------------------------------------------------------------ *)
(* Online incremental checkpointing (Section 3.5) *)

let test_online_checkpoint_midstream () =
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node ->
      for _ = 1 to 10 do
        increment node ~offset:0
      done);
  Cluster.run c;
  let n = Cluster.online_checkpoint c in
  check_int "first batch checkpointed" 10 n;
  check_int "log 0 trimmed" 0
    (Lbc_wal.Log.live_bytes (Lbc_rvm.Rvm.log (Node.rvm (Cluster.node c 0))));
  (* The cluster keeps running afterwards... *)
  Cluster.spawn c ~node:1 (fun node ->
      for _ = 1 to 10 do
        increment node ~offset:0
      done);
  Cluster.run c;
  (* ...and full recovery = checkpointed database + remaining logs. *)
  let outcome = Cluster.recover_database c in
  check_int "only the new records replayed" 10
    outcome.Lbc_rvm.Recovery.records_replayed;
  let dev = Cluster.region_dev c region in
  check_i64 "final value durable" 20L
    (Bytes.get_int64_le (Lbc_storage.Dev.read dev ~off:0 ~len:8) 0)

let test_online_checkpoint_idempotent () =
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node -> increment node ~offset:0);
  Cluster.run c;
  check_int "first" 1 (Cluster.online_checkpoint c);
  check_int "second finds nothing" 0 (Cluster.online_checkpoint c)

let test_checkpoint_resyncs_lazy_stragglers () =
  (* In lazy mode a checkpoint drops the writers' retained chains; the
     checkpoint must therefore bring stale caches to the checkpointed
     state, or later acquires could never catch up. *)
  let c = mk ~config:{ Config.default with Config.propagation = Config.Lazy } () in
  Cluster.spawn c ~node:0 (fun node ->
      for _ = 1 to 5 do
        increment node ~offset:0
      done);
  Cluster.run c;
  (* Node 1 never acquired: its cache is stale and no chain was pushed. *)
  check_i64 "stale before checkpoint" 0L
    (Node.get_u64 (Cluster.node c 1) ~region ~offset:0);
  Cluster.checkpoint c;
  check_i64 "resynced by checkpoint" 5L
    (Node.get_u64 (Cluster.node c 1) ~region ~offset:0);
  check_int "retained chains dropped" 0 (Node.retained_count (Cluster.node c 0));
  (* And the reader can acquire without any fetch. *)
  let fetches0 = (Node.stats (Cluster.node c 1)).Node.fetches_sent in
  Cluster.spawn c ~node:1 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Alcotest.(check int64) "reads checkpointed value" 5L
        (Node.Txn.get_u64 txn ~region ~offset:0);
      Node.Txn.commit txn);
  Cluster.run c;
  check_int "no fetch needed" fetches0 (Node.stats (Cluster.node c 1)).Node.fetches_sent

let test_online_after_offline_checkpoint () =
  (* The offline checkpoint must feed the incremental baseline: a write
     whose predecessor was trimmed offline is still trimmable online. *)
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node -> increment node ~offset:0);
  Cluster.run c;
  Cluster.checkpoint c;
  Cluster.spawn c ~node:0 (fun node -> increment node ~offset:0);
  Cluster.run c;
  check_int "second write checkpointed online" 1 (Cluster.online_checkpoint c)

let test_merge_prefix_holds_back_gaps () =
  (* Log 0 holds (lock 0, seq 2) but seq 1 is nowhere (a lazy commit that
     never became durable): nothing can be emitted. *)
  let t seqno =
    {
      Lbc_wal.Record.node = 0;
      tid = 1;
      locks = [ { Lbc_wal.Record.lock_id = 0; seqno; prev_write_seq = seqno - 1 } ];
      ranges = [];
      cmd = None;
    }
  in
  let dev = Lbc_storage.Dev.create () in
  let log = Lbc_wal.Log.attach dev in
  ignore (Lbc_wal.Log.append log (t 2));
  let p = Merge.merge_logs_prefix [ log ] in
  check_int "nothing ordered" 0 (List.length p.Merge.ordered);
  check_int "one leftover" 1 p.Merge.leftover;
  Alcotest.(check (list int)) "head unchanged" [ Lbc_wal.Log.head log ]
    p.Merge.new_heads;
  (* Once seq 1 appears (in another log), everything merges. *)
  let dev1 = Lbc_storage.Dev.create () in
  let log1 = Lbc_wal.Log.attach dev1 in
  ignore
    (Lbc_wal.Log.append log1
       {
         Lbc_wal.Record.node = 1;
         tid = 1;
         locks = [ { Lbc_wal.Record.lock_id = 0; seqno = 1; prev_write_seq = 0 } ];
         (* seq 1 is referenced as a *write*, so it carries data *)
         ranges = [ { Lbc_wal.Record.region = 0; offset = 0; data = Bytes.of_string "w" } ];
         cmd = None;
       });
  let p = Merge.merge_logs_prefix [ log; log1 ] in
  check_int "both ordered" 2 (List.length p.Merge.ordered);
  check_int "no leftover" 0 p.Merge.leftover;
  Alcotest.(check (list int)) "heads at tails"
    [ Lbc_wal.Log.tail log; Lbc_wal.Log.tail log1 ]
    p.Merge.new_heads

(* Two transactions acquire two locks in opposite order — the textbook
   deadlock.  Both sit in [acquire_timeout] until it gives up, abort
   (undoing their stores), retry in canonical order, and both commit. *)
let test_deadlock_timeout_abort_retry () =
  let c = mk ~nodes:2 () in
  let deadlocked = ref 0 in
  let worker n ~first ~second ~offset =
    Cluster.spawn c ~node:n (fun node ->
        let txn = Node.Txn.begin_ node in
        Node.Txn.acquire txn first;
        Node.Txn.set_u64 txn ~region ~offset (Int64.of_int (n + 1));
        (* Both workers now hold their first lock. *)
        Lbc_sim.Proc.sleep 20.0;
        if Node.Txn.acquire_timeout txn second ~timeout:100.0 then
          Node.Txn.commit txn
        else begin
          incr deadlocked;
          Node.Txn.abort txn;
          let txn = Node.Txn.begin_ node in
          Node.Txn.acquire txn (min first second);
          Node.Txn.acquire txn (max first second);
          Node.Txn.set_u64 txn ~region ~offset (Int64.of_int (n + 1));
          Node.Txn.commit txn
        end)
  in
  worker 0 ~first:0 ~second:1 ~offset:0;
  worker 1 ~first:1 ~second:0 ~offset:8;
  Cluster.run c;
  Alcotest.(check bool) "the deadlock was hit" true (!deadlocked >= 1);
  check_i64 "node 0's write committed" 1L
    (Node.get_u64 (Cluster.node c 0) ~region ~offset:0);
  check_i64 "node 1's write committed" 2L
    (Node.get_u64 (Cluster.node c 1) ~region ~offset:8);
  Alcotest.(check bool) "caches agree" true
    (Bytes.equal
       (Node.read (Cluster.node c 0) ~region ~offset:0 ~len:16)
       (Node.read (Cluster.node c 1) ~region ~offset:0 ~len:16))

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_report_renders () =
  let c = mk () in
  Cluster.spawn c ~node:0 (fun node -> increment node ~offset:0);
  Cluster.run c;
  let s = Format.asprintf "%a" Report.pp_cluster c in
  Alcotest.(check bool) "mentions both nodes" true
    (contains_substring s "node 0:" && contains_substring s "node 1:");
  Alcotest.(check bool) "mentions one commit" true
    (contains_substring s "1 commits")

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "core.wire",
      [
        Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
        Alcotest.test_case "compression" `Quick test_wire_compression;
        Alcotest.test_case "golden vectors" `Quick test_wire_golden;
        qtest prop_wire_roundtrip;
        qtest prop_wire_iov_identity;
        qtest prop_wire_decode_never_crashes;
        qtest prop_wire_truncation_detected;
      ] );
    ( "core.eager",
      [
        Alcotest.test_case "update propagates" `Quick test_update_propagates;
        Alcotest.test_case "counter x3 nodes" `Quick test_counter_three_nodes;
        Alcotest.test_case "interlock" `Quick
          test_interlock_token_overtakes_updates;
        Alcotest.test_case "out-of-order held" `Quick
          test_out_of_order_updates_held;
        Alcotest.test_case "fine-grained under coarse lock" `Quick
          test_fine_grained_updates_coarse_lock;
        Alcotest.test_case "read-only silent" `Quick test_no_broadcast_for_readonly;
        Alcotest.test_case "only mapping peers" `Quick
          test_update_only_to_mapping_peers;
        Alcotest.test_case "abort propagates nothing" `Quick
          test_abort_propagates_nothing;
        Alcotest.test_case "duplicate delivery" `Quick
          test_duplicate_delivery_ignored;
        Alcotest.test_case "double acquire rejected" `Quick
          test_double_acquire_same_lock_rejected;
        Alcotest.test_case "wire large offsets" `Quick test_wire_large_offsets;
        Alcotest.test_case "group commit end to end" `Quick
          test_group_commit_cluster;
      ] );
    ( "core.lazy",
      [
        Alcotest.test_case "no eager traffic" `Quick test_lazy_no_eager_traffic;
        Alcotest.test_case "fetch on acquire" `Quick test_lazy_fetch_on_acquire;
        Alcotest.test_case "chain through writers" `Quick
          test_lazy_chain_through_writers;
        Alcotest.test_case "multi-lock falls back" `Quick
          test_lazy_multilock_falls_back_to_eager;
      ] );
    ( "core.recovery",
      [
        Alcotest.test_case "merge orders by lock seq" `Quick
          test_merge_orders_by_lock_seq;
        Alcotest.test_case "merge unorderable" `Quick test_merge_unorderable;
        Alcotest.test_case "partition: disjoint streams" `Quick
          test_partition_disjoint_streams;
        Alcotest.test_case "partition: shared region joins locks" `Quick
          test_partition_region_joins_locks;
        Alcotest.test_case "partition: transitive closure" `Quick
          test_partition_transitive_closure;
        Alcotest.test_case "partition: preserves all records" `Quick
          test_partition_preserves_all_records;
        Alcotest.test_case "partition: empty and keyless" `Quick
          test_partition_empty_and_keyless;
        qtest prop_region_index_matches_partition;
        qtest prop_merge_respects_lock_order;
        Alcotest.test_case "distributed recovery" `Quick
          test_distributed_recovery_matches_caches;
        Alcotest.test_case "checkpoint" `Quick test_checkpoint_trims_and_preserves;
        Alcotest.test_case "online checkpoint" `Quick
          test_online_checkpoint_midstream;
        Alcotest.test_case "online checkpoint idempotent" `Quick
          test_online_checkpoint_idempotent;
        Alcotest.test_case "merge prefix holds gaps" `Quick
          test_merge_prefix_holds_back_gaps;
        Alcotest.test_case "checkpoint resyncs lazy stragglers" `Quick
          test_checkpoint_resyncs_lazy_stragglers;
        Alcotest.test_case "online after offline checkpoint" `Quick
          test_online_after_offline_checkpoint;
        Alcotest.test_case "report renders" `Quick test_report_renders;
        Alcotest.test_case "client crash" `Quick
          test_client_crash_loses_uncommitted_only;
      ] );
    ( "core.versioned",
      [
        Alcotest.test_case "pin defers updates" `Quick test_pin_defers_updates;
        Alcotest.test_case "pin blocks acquire" `Quick test_pin_blocks_acquire;
        Alcotest.test_case "accept preserves order" `Quick
          test_pin_accept_ordering_preserved;
      ] );
    ( "core.multicast",
      [
        Alcotest.test_case "single transmission" `Quick
          test_multicast_single_transmission;
        Alcotest.test_case "sender time constant" `Quick
          test_multicast_sender_time_constant_in_peers;
      ] );
    ( "core.failures",
      [
        Alcotest.test_case "torn log tail" `Quick test_recovery_ignores_torn_tails;
        Alcotest.test_case "server crash" `Quick test_server_crash_then_recovery;
        Alcotest.test_case "no-flush lost" `Quick
          test_no_flush_commits_lost_on_server_crash;
        Alcotest.test_case "deadlock timeout, abort, retry" `Quick
          test_deadlock_timeout_abort_retry;
      ] );
  ]
