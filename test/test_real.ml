(* The real backend: OCaml 5 domains + socket fabric + real files.

   Three layers of evidence:
   - the atomic accounting really is atomic (two domains hammering the
     Slice counters and an Obs sink lose no increments);
   - the socket framing is faithful (random [Wire.encode_iov] payloads
     round-trip through [Msg_codec] + [Frame] byte-identically to the
     sim fabric's by-reference delivery, including arbitrary short-read
     boundaries);
   - the whole stack works end to end (an OO7 traversal propagates
     between two domains over real sockets and real files, committing
     the same bytes the sim backend commits). *)

module Slice = Lbc_util.Slice
module Obs = Lbc_obs.Obs
module Frame = Lbc_real.Frame
module Msg_codec = Lbc_real.Msg_codec

(* ---------------------------------------------------------------- *)
(* Satellite: atomic counters under two domains *)

let test_slice_counters_parallel () =
  Slice.reset_counters ();
  let per_domain = 50_000 in
  let work () =
    for _ = 1 to per_domain do
      Slice.count_copy 3;
      Slice.count_saved 2;
      Slice.count_alloc ()
    done
  in
  let d1 = Domain.spawn work and d2 = Domain.spawn work in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "copied" (2 * per_domain * 3) (Slice.bytes_copied ());
  Alcotest.(check int)
    "baseline" (2 * per_domain * 5)
    (Slice.bytes_copied_baseline ());
  Alcotest.(check int) "allocs" (2 * per_domain) (Slice.encode_allocs ());
  Slice.reset_counters ()

let test_obs_parallel () =
  let obs = Obs.create ~now:(fun () -> 0.0) ~nodes:2 () in
  let per_domain = 20_000 in
  let work node () =
    for i = 1 to per_domain do
      Obs.count obs "hits" 1;
      Obs.observe obs "lat" (float_of_int i);
      Obs.instant obs ~name:"tick" ~pid:node ~tid:Obs.lane_txn ()
    done
  in
  let d1 = Domain.spawn (work 0) and d2 = Domain.spawn (work 1) in
  Domain.join d1;
  Domain.join d2;
  (match List.assoc_opt "hits" (Obs.counters obs) with
  | Some n -> Alcotest.(check int) "counter" (2 * per_domain) n
  | None -> Alcotest.fail "hits counter missing");
  match List.assoc_opt "lat" (Obs.hists obs) with
  | Some h ->
      Alcotest.(check int) "hist count" (2 * per_domain) (Obs.Histogram.count h)
  | None -> Alcotest.fail "lat histogram missing"

(* ---------------------------------------------------------------- *)
(* Satellite: framing equivalence with the sim fabric *)

let arb_txn =
  let open QCheck in
  let range =
    triple (int_bound 3) (int_bound 4000)
      (string_gen_of_size (Gen.int_range 1 64) Gen.printable)
  in
  let locks = small_list (pair (int_bound 20) (int_bound 1000)) in
  map
    (fun (node, tid, (locks, ranges)) ->
      {
        Lbc_wal.Record.node;
        tid;
        locks =
          List.map
            (fun (lock_id, seqno) ->
              { Lbc_wal.Record.lock_id; seqno; prev_write_seq = 0 })
            locks;
        ranges =
          List.map
            (fun (region, offset, data) ->
              { Lbc_wal.Record.region; offset; data = Bytes.of_string data })
            ranges;
        cmd = None;
      })
    (triple (int_bound 7) (int_bound 10_000) (pair locks (small_list range)))

(* Chop [frames] into randomly-sized stream segments and feed them
   through a pipe in that pattern, so Frame.read sees torn boundaries:
   prefixes split across reads, bodies delivered byte-by-byte, frames
   glued together. *)
let feed_through_pipe ~chop frames =
  let all = Bytes.concat Bytes.empty frames in
  let r, w = Unix.pipe () in
  let writer =
    Thread.create
      (fun () ->
        let pos = ref 0 in
        let chop = ref chop in
        while !pos < Bytes.length all do
          let n =
            match !chop with
            | [] -> Bytes.length all - !pos
            | c :: rest ->
                chop := rest;
                max 1 (min c (Bytes.length all - !pos))
          in
          let rec put off len =
            if len > 0 then begin
              let k = Unix.write w all off len in
              put (off + k) (len - k)
            end
          in
          put !pos n;
          pos := !pos + n
        done;
        Unix.close w)
      ()
  in
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match Frame.read r with
    | Some b -> out := b :: !out
    | None -> continue := false
  done;
  Thread.join writer;
  Unix.close r;
  List.rev !out

(* One frame as contiguous bytes (the reader side never sees the iovec
   structure — only the stream). *)
let frame_bytes iov =
  let len = Slice.iov_length iov in
  let b = Bytes.create (Frame.header_bytes + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit (Slice.concat iov) 0 b Frame.header_bytes len;
  b

let prop_framing_matches_sim =
  QCheck.Test.make ~count:200 ~name:"socket framing = sim delivery"
    QCheck.(pair (small_list arb_txn) (small_list (int_bound 40)))
    (fun (txns, chop) ->
      (* Sim side: encode_iov handed across by reference, decoded from
         the gather list. *)
      let iovs = List.map Lbc_core.Wire.encode_iov txns in
      let via_sim = List.map Lbc_core.Wire.decode_iov iovs in
      (* Socket side: the same iovecs framed as Update messages, the
         byte stream torn at [chop] boundaries, reassembled, decoded. *)
      let frames =
        List.map
          (fun iov -> frame_bytes (Msg_codec.encode (Lbc_core.Msg.Update iov)))
          iovs
      in
      let bodies = feed_through_pipe ~chop frames in
      if List.length bodies <> List.length frames then false
      else begin
        let via_socket =
          List.map
            (fun body ->
              match Msg_codec.decode body with
              | Lbc_core.Msg.Update iov -> Lbc_core.Wire.decode_iov iov
              | _ -> QCheck.Test.fail_report "decoded to non-Update")
            bodies
        in
        List.for_all2
          (fun a b -> Lbc_wal.Record.equal_txn a b)
          via_sim via_socket
      end)

let all_msgs =
  [
    Lbc_core.Msg.Lock
      (Lbc_locks.Table.Request { epoch = 3; lock = 17; requester = 2 });
    Lbc_core.Msg.Lock
      (Lbc_locks.Table.Forward { epoch = 0; lock = 0; requester = 0 });
    Lbc_core.Msg.Lock
      (Lbc_locks.Table.Token
         { epoch = 7; lock = 9; seqno = 123; last_write_seq = 120;
           last_writer = -1 });
    Lbc_core.Msg.Fetch { lock = 4; have = 17 };
    Lbc_core.Msg.Fetched
      {
        lock = 4;
        payloads =
          [ [ Slice.of_string "abc"; Slice.of_string "def" ];
            []; [ Slice.of_string "x" ] ];
      };
    Lbc_core.Msg.LowWater { applied = [ (1, 10); (2, 0); (9, 300) ] };
    Lbc_core.Msg.Update [ Slice.of_string "payload"; Slice.of_string "!" ];
  ]

let test_codec_roundtrip_all_constructors () =
  List.iter
    (fun m ->
      let body = Slice.concat (Msg_codec.encode m) in
      let m' = Msg_codec.decode body in
      let show m = Format.asprintf "%a" Lbc_core.Msg.pp m in
      Alcotest.(check string) "roundtrip" (show m) (show m');
      (* Fetched/Update payload bytes must survive exactly *)
      match (m, m') with
      | Lbc_core.Msg.Update a, Lbc_core.Msg.Update b ->
          Alcotest.(check bytes) "update bytes" (Slice.concat a)
            (Slice.concat b)
      | Lbc_core.Msg.Fetched { payloads = a; _ },
        Lbc_core.Msg.Fetched { payloads = b; _ } ->
          List.iter2
            (fun x y ->
              Alcotest.(check bytes) "payload bytes" (Slice.concat x)
                (Slice.concat y))
            a b
      | _ -> ())
    all_msgs

(* ---------------------------------------------------------------- *)
(* End to end: OO7 on two domains over sockets and files *)

let real_backend () = Lbc_core.Platform.Custom Lbc_real.Backend.factory

let small_schema = Lbc_oo7.Schema.small

let run_oo7 ~backend =
  let cluster = Lbc_oo7.Runner.setup ?backend ~nodes:2 small_schema in
  let outcome =
    Lbc_oo7.Runner.run ~cluster ~writer:0 small_schema
      (Lbc_oo7.Traversal.T2 Lbc_oo7.Traversal.A)
  in
  let region =
    Lbc_rvm.Rvm.region
      (Lbc_core.Node.rvm (Lbc_core.Cluster.node cluster 1))
      Lbc_oo7.Runner.region
  in
  let reader_image =
    Lbc_rvm.Region.read region ~offset:0 ~len:(Lbc_rvm.Region.size region)
  in
  Lbc_core.Cluster.shutdown cluster;
  (outcome, reader_image)

let test_oo7_real_matches_sim () =
  let sim_outcome, sim_image = run_oo7 ~backend:None in
  let real_outcome, real_image = run_oo7 ~backend:(Some (real_backend ())) in
  (* Same traversal, same committed record, same propagated bytes —
     only the clock differs. *)
  Alcotest.(check int)
    "field updates"
    sim_outcome.Lbc_oo7.Runner.result.Lbc_oo7.Traversal.field_updates
    real_outcome.Lbc_oo7.Runner.result.Lbc_oo7.Traversal.field_updates;
  Alcotest.(check bytes)
    "record bytes"
    (Lbc_core.Wire.encode sim_outcome.Lbc_oo7.Runner.record)
    (Lbc_core.Wire.encode real_outcome.Lbc_oo7.Runner.record);
  Alcotest.(check bytes) "reader image" sim_image real_image

(* Two domains write their own flight rings concurrently (one ring per
   node, single-writer each); the dump merges them into one wall-clock
   stream that passes the structural self-check. *)
let test_flight_dump_two_domains () =
  let module FD = Lbc_obs.Flight_dump in
  let nodes = 2 in
  let region_size = 4096 in
  let c = Lbc_core.Cluster.create ~backend:(real_backend ()) ~nodes () in
  Lbc_core.Cluster.add_region c ~id:0 ~size:region_size;
  Lbc_core.Cluster.map_region_all c ~region:0;
  for n = 0 to nodes - 1 do
    Lbc_core.Cluster.spawn c ~node:n (fun node ->
        for i = 1 to 10 do
          let txn = Lbc_core.Node.Txn.begin_ node in
          Lbc_core.Node.Txn.acquire txn n;
          Lbc_core.Node.Txn.set_u64 txn ~region:0 ~offset:(8 * n)
            (Int64.of_int i);
          Lbc_core.Node.Txn.commit txn
        done)
  done;
  Lbc_core.Cluster.run c;
  let path = Filename.temp_file "lbc-flight-real" ".bin" in
  let (_ : string) = Lbc_core.Cluster.dump_flight ~path c in
  Lbc_core.Cluster.shutdown c;
  (match FD.read path with
  | Error e -> Alcotest.failf "read failed: %s" e
  | Ok d ->
      Alcotest.(check string) "wall clock" "wall-us" d.FD.d_clock;
      Alcotest.(check (list string)) "self-check clean" [] (FD.self_check d);
      Alcotest.(check int) "one ring per domain" nodes
        (Array.length d.FD.d_rings);
      Array.iter
        (fun ring ->
          if Array.length ring.FD.r_events = 0 then
            Alcotest.failf "domain %d recorded no events" ring.FD.r_id)
        d.FD.d_rings;
      let merged = FD.merged d in
      Alcotest.(check bool) "events from both domains merged" true
        (Array.length merged
        = Array.fold_left
            (fun acc r -> acc + Array.length r.FD.r_events)
            0 d.FD.d_rings);
      Array.iteri
        (fun i ev ->
          if i > 0 && ev.FD.ev_ts_ns < merged.(i - 1).FD.ev_ts_ns then
            Alcotest.failf "merged wall-clock stream steps backwards at %d" i)
        merged);
  Sys.remove path

let test_real_rejects_sim_only () =
  let backend = real_backend () in
  Alcotest.check_raises "sched is sim-only"
    (Invalid_argument
       "Cluster.create: schedule policies are sim-only (deterministic \
        same-time ties do not exist on a preemptive backend)")
    (fun () ->
      ignore
        (Lbc_core.Cluster.create ~backend
           ~sched:(Lbc_sim.Schedule.Random_tie 1) ~nodes:2 ()));
  let cluster = Lbc_core.Cluster.create ~backend ~nodes:2 () in
  Alcotest.check_raises "crash is sim-only"
    (Lbc_core.Platform.Unsupported
       "Cluster.crash requires the sim backend (running on real)")
    (fun () -> Lbc_core.Cluster.crash cluster ~node:0);
  Lbc_core.Cluster.shutdown cluster

let suites =
  [
    ( "real-atomics",
      [
        Alcotest.test_case "slice counters, two domains" `Quick
          test_slice_counters_parallel;
        Alcotest.test_case "obs sink, two domains" `Quick test_obs_parallel;
      ] );
    ( "real-framing",
      [
        Alcotest.test_case "codec roundtrip, all constructors" `Quick
          test_codec_roundtrip_all_constructors;
        QCheck_alcotest.to_alcotest prop_framing_matches_sim;
      ] );
    ( "real-backend",
      [
        Alcotest.test_case "oo7 over domains = oo7 over sim" `Quick
          test_oo7_real_matches_sim;
        Alcotest.test_case "flight dump merges two domains" `Quick
          test_flight_dump_two_domains;
        Alcotest.test_case "sim-only operations refuse" `Quick
          test_real_rejects_sim_only;
      ] );
  ]
