(* Tests for the discrete-event simulator: engine, processes, sync. *)

open Lbc_sim

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_time_order () =
  let e = Engine.create () in
  let order = ref [] in
  let mark tag () = order := tag :: !order in
  Engine.schedule e ~delay:30.0 (mark "c");
  Engine.schedule e ~delay:10.0 (mark "a");
  Engine.schedule e ~delay:20.0 (mark "b");
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !order);
  check_float "clock at last event" 30.0 (Engine.now e)

let test_engine_same_instant_fifo () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> order := i :: !order)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let hits = ref [] in
  Engine.schedule e ~delay:5.0 (fun () ->
      hits := ("outer", Engine.now e) :: !hits;
      Engine.schedule e ~delay:2.5 (fun () ->
          hits := ("inner", Engine.now e) :: !hits));
  Engine.run e;
  match List.rev !hits with
  | [ ("outer", t1); ("inner", t2) ] ->
      check_float "outer" 5.0 t1;
      check_float "inner" 7.5 t2
  | _ -> Alcotest.fail "wrong event sequence"

let test_engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) ignore)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:10.0 (fun () -> incr fired);
  Engine.schedule e ~delay:100.0 (fun () -> incr fired);
  Engine.run ~until:50.0 e;
  check_int "only first fired" 1 !fired;
  check_float "clock parked at until" 50.0 (Engine.now e);
  check_int "one pending" 1 (Engine.pending e);
  Engine.run e;
  check_int "second fired" 2 !fired

(* ------------------------------------------------------------------ *)
(* Schedule policies *)

(* Run ten same-instant events under a policy; return the firing order
   and the recorded decision trace. *)
let tie_order policy =
  let e = Engine.create ~policy () in
  let order = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~delay:1.0 (fun () -> order := i :: !order)
  done;
  Engine.run e;
  (List.rev !order, Engine.decisions e, Engine.choice_points e)

let test_sched_fifo_records_zero_decisions () =
  let order, decisions, points = tie_order Schedule.Fifo in
  Alcotest.(check (list int)) "fifo order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    order;
  check_int "choice points seen" 9 points;
  Alcotest.(check (list int)) "all decisions are index 0"
    (List.init 9 (fun _ -> 0))
    decisions

let test_sched_random_permutes_deterministically () =
  let o1, d1, _ = tie_order (Schedule.Random_tie 42) in
  let o2, _, _ = tie_order (Schedule.Random_tie 42) in
  let o3, _, _ = tie_order (Schedule.Random_tie 43) in
  Alcotest.(check (list int)) "same seed, same order" o1 o2;
  Alcotest.(check bool) "different seed, different order" true (o1 <> o3);
  Alcotest.(check bool) "some decision deviates from fifo" true
    (List.exists (fun d -> d <> 0) d1);
  (* Still a permutation of the ripe set. *)
  Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.sort compare o1)

let test_sched_pct_priorities_deterministic () =
  let o1, _, _ = tie_order (Schedule.Pct 7) in
  let o2, _, _ = tie_order (Schedule.Pct 7) in
  Alcotest.(check (list int)) "same seed, same order" o1 o2;
  Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.sort compare o1)

let test_sched_replay_reproduces_random_run () =
  let o1, d1, _ = tie_order (Schedule.Random_tie 99) in
  let o2, d2, _ = tie_order (Schedule.Replay (Array.of_list d1)) in
  Alcotest.(check (list int)) "replay = original order" o1 o2;
  Alcotest.(check (list int)) "replay records the same trace" d1 d2

let test_sched_replay_short_trace_falls_back_to_fifo () =
  (* Only the first decision survives; the rest fall back to index 0. *)
  let _, d, _ = tie_order (Schedule.Random_tie 5) in
  let truncated = [| List.hd d |] in
  let order, _, _ = tie_order (Schedule.Replay truncated) in
  check_int "still runs everything" 10 (List.length order);
  Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.sort compare order)

let test_sched_policy_string_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Schedule.policy_to_string p) true
        (Schedule.policy_of_string (Schedule.policy_to_string p) = Some p))
    [ Schedule.Fifo; Schedule.Random_tie 17; Schedule.Pct 23 ]

(* Events at distinct instants are untouched by any policy: only
   same-time ties are a degree of freedom. *)
let test_sched_time_order_is_inviolate () =
  let run policy =
    let e = Engine.create ~policy () in
    let order = ref [] in
    List.iteri
      (fun i d -> Engine.schedule e ~delay:d (fun () -> order := i :: !order))
      [ 30.0; 10.0; 20.0 ];
    Engine.run e;
    List.rev !order
  in
  List.iter
    (fun p -> Alcotest.(check (list int)) "time order" [ 1; 2; 0 ] (run p))
    [ Schedule.Random_tie 3; Schedule.Pct 4; Schedule.Replay [| 1; 1; 1 |] ]

(* ------------------------------------------------------------------ *)
(* Processes *)

let test_proc_sleep_advances_time () =
  let e = Engine.create () in
  let finish = ref 0.0 in
  Proc.spawn e (fun () ->
      Proc.sleep 12.0;
      Proc.sleep 30.0;
      finish := Proc.now ());
  Engine.run e;
  check_float "slept 42" 42.0 !finish

let test_proc_interleaving () =
  let e = Engine.create () in
  let trace = ref [] in
  let mark tag = trace := (tag, Engine.now e) :: !trace in
  Proc.spawn e ~name:"a" (fun () ->
      mark "a0";
      Proc.sleep 10.0;
      mark "a1";
      Proc.sleep 10.0;
      mark "a2");
  Proc.spawn e ~name:"b" (fun () ->
      mark "b0";
      Proc.sleep 15.0;
      mark "b1");
  Engine.run e;
  Alcotest.(check (list string)) "interleaving"
    [ "a0"; "b0"; "a1"; "b1"; "a2" ]
    (List.rev_map fst !trace)

let test_proc_exception_propagates () =
  let e = Engine.create () in
  Proc.spawn e ~name:"boom" (fun () -> failwith "kaput");
  Alcotest.check_raises "exception surfaces" (Failure "kaput") (fun () ->
      Engine.run e)

let test_proc_outside_process () =
  Alcotest.check_raises "sleep outside process" Proc.Not_in_process (fun () ->
      Proc.sleep 1.0)

(* ------------------------------------------------------------------ *)
(* Ivar *)

let test_ivar_read_after_fill () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  Ivar.fill iv 99;
  Proc.spawn e (fun () -> got := Ivar.read iv);
  Engine.run e;
  check_int "value" 99 !got

let test_ivar_read_blocks_until_fill () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let got_at = ref (-1.0) in
  Proc.spawn e (fun () ->
      ignore (Ivar.read iv);
      got_at := Proc.now ());
  Proc.spawn e (fun () ->
      Proc.sleep 25.0;
      Ivar.fill iv "done");
  Engine.run e;
  check_float "woken at fill time" 25.0 !got_at

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already filled") (fun () -> Ivar.fill iv 2)

let test_ivar_multiple_readers_fifo () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let order = ref [] in
  for i = 1 to 3 do
    Proc.spawn e (fun () ->
        ignore (Ivar.read iv);
        order := i :: !order)
  done;
  Proc.spawn e (fun () ->
      Proc.sleep 1.0;
      Ivar.fill iv ());
  Engine.run e;
  Alcotest.(check (list int)) "fifo wakeup" [ 1; 2; 3 ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  Proc.spawn e (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Proc.spawn e (fun () ->
      Mailbox.send mb 1;
      Proc.sleep 5.0;
      Mailbox.send mb 2;
      Mailbox.send mb 3);
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_try_recv () =
  let mb = Mailbox.create () in
  Alcotest.(check (option int)) "empty" None (Mailbox.try_recv mb);
  Mailbox.send mb 7;
  Alcotest.(check (option int)) "one" (Some 7) (Mailbox.try_recv mb);
  Alcotest.(check bool) "drained" true (Mailbox.is_empty mb)

let test_mailbox_two_receivers () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let who = ref [] in
  Proc.spawn e ~name:"r1" (fun () ->
      let v = Mailbox.recv mb in
      who := ("r1", v) :: !who);
  Proc.spawn e ~name:"r2" (fun () ->
      let v = Mailbox.recv mb in
      who := ("r2", v) :: !who);
  Proc.spawn e (fun () ->
      Proc.sleep 1.0;
      Mailbox.send mb "x";
      Mailbox.send mb "y");
  Engine.run e;
  Alcotest.(check (list (pair string string)))
    "receivers served in order"
    [ ("r1", "x"); ("r2", "y") ]
    (List.rev !who)

(* ------------------------------------------------------------------ *)
(* Condvar *)

let test_condvar_broadcast_wakes_all () =
  let e = Engine.create () in
  let c = Condvar.create () in
  let woken = ref 0 in
  for _ = 1 to 4 do
    Proc.spawn e (fun () ->
        Condvar.wait c;
        incr woken)
  done;
  Proc.spawn e (fun () ->
      Proc.sleep 1.0;
      Condvar.broadcast c);
  Engine.run e;
  check_int "all woken" 4 !woken

let test_condvar_signal_wakes_one () =
  let e = Engine.create () in
  let c = Condvar.create () in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Proc.spawn e (fun () ->
        Condvar.wait c;
        incr woken)
  done;
  Proc.spawn e (fun () ->
      Proc.sleep 1.0;
      Condvar.signal c);
  Engine.run e;
  check_int "one woken" 1 !woken

let test_condvar_await_predicate () =
  let e = Engine.create () in
  let c = Condvar.create () in
  let counter = ref 0 in
  let done_at = ref (-1.0) in
  Proc.spawn e (fun () ->
      Condvar.await c (fun () -> !counter >= 3);
      done_at := Proc.now ());
  Proc.spawn e (fun () ->
      for _ = 1 to 3 do
        Proc.sleep 10.0;
        incr counter;
        Condvar.broadcast c
      done);
  Engine.run e;
  check_float "resumed after third bump" 30.0 !done_at

(* ------------------------------------------------------------------ *)
(* Blocked-process registry and process lifecycle *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_blocked_registry_reports_stuck () =
  let e = Engine.create () in
  let iv : int Ivar.t = Ivar.create () in
  Proc.spawn e ~name:"stuck" (fun () ->
      ignore (Ivar.read ~info:"nobody will fill this" iv));
  Engine.run e;
  (* The queue drained but the process is still suspended: the registry
     names it and says what it waits on. *)
  check_int "one blocked process" 1 (Engine.blocked_count e);
  match Engine.blocked e with
  | [ desc ] ->
      Alcotest.(check bool) "names the process" true (contains desc "stuck");
      Alcotest.(check bool) "says what it waits on" true
        (contains desc "nobody will fill this")
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected one description, got %d" (List.length other))

let test_blocked_excludes_daemons () =
  let e = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create () in
  (* Forever idle on an empty channel: a daemon's normal state, not a
     hang worth reporting. *)
  Proc.spawn e ~name:"dispatcher" ~daemon:true (fun () ->
      ignore (Mailbox.recv mb));
  Proc.spawn e ~name:"worker" (fun () -> Proc.sleep 5.0);
  Engine.run e;
  Alcotest.(check (list string)) "no blocked reported" [] (Engine.blocked e)

let test_alive_kills_at_resume () =
  let e = Engine.create () in
  let dead = ref false in
  let reached = ref false in
  Proc.spawn e ~name:"victim"
    ~alive:(fun () -> not !dead)
    (fun () ->
      Proc.sleep 10.0;
      reached := true);
  Engine.schedule e ~delay:5.0 (fun () -> dead := true);
  Engine.run e;
  Alcotest.(check bool) "killed before resuming" false !reached;
  (* A killed process is not a stranded one. *)
  Alcotest.(check (list string)) "not reported blocked" [] (Engine.blocked e)

let test_blocked_clears_on_resume () =
  let e = Engine.create () in
  let iv : int Ivar.t = Ivar.create () in
  let got = ref 0 in
  Proc.spawn e ~name:"reader" (fun () -> got := Ivar.read iv);
  Proc.spawn e ~name:"writer" (fun () ->
      Proc.sleep 3.0;
      Ivar.fill iv 42);
  Engine.run e;
  check_int "value delivered" 42 !got;
  check_int "registry empty" 0 (Engine.blocked_count e)

let suites =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "time order" `Quick test_engine_time_order;
        Alcotest.test_case "same-instant fifo" `Quick
          test_engine_same_instant_fifo;
        Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
        Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
        Alcotest.test_case "run until" `Quick test_engine_run_until;
      ] );
    ( "sim.schedule",
      [
        Alcotest.test_case "fifo records zero decisions" `Quick
          test_sched_fifo_records_zero_decisions;
        Alcotest.test_case "random ties deterministic per seed" `Quick
          test_sched_random_permutes_deterministically;
        Alcotest.test_case "pct deterministic per seed" `Quick
          test_sched_pct_priorities_deterministic;
        Alcotest.test_case "replay reproduces a random run" `Quick
          test_sched_replay_reproduces_random_run;
        Alcotest.test_case "short replay falls back to fifo" `Quick
          test_sched_replay_short_trace_falls_back_to_fifo;
        Alcotest.test_case "policy string roundtrip" `Quick
          test_sched_policy_string_roundtrip;
        Alcotest.test_case "time order inviolate" `Quick
          test_sched_time_order_is_inviolate;
      ] );
    ( "sim.proc",
      [
        Alcotest.test_case "sleep advances time" `Quick
          test_proc_sleep_advances_time;
        Alcotest.test_case "interleaving" `Quick test_proc_interleaving;
        Alcotest.test_case "exception propagates" `Quick
          test_proc_exception_propagates;
        Alcotest.test_case "outside process" `Quick test_proc_outside_process;
      ] );
    ( "sim.ivar",
      [
        Alcotest.test_case "read after fill" `Quick test_ivar_read_after_fill;
        Alcotest.test_case "read blocks" `Quick test_ivar_read_blocks_until_fill;
        Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
        Alcotest.test_case "multiple readers fifo" `Quick
          test_ivar_multiple_readers_fifo;
      ] );
    ( "sim.mailbox",
      [
        Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
        Alcotest.test_case "try_recv" `Quick test_mailbox_try_recv;
        Alcotest.test_case "two receivers" `Quick test_mailbox_two_receivers;
      ] );
    ( "sim.condvar",
      [
        Alcotest.test_case "broadcast wakes all" `Quick
          test_condvar_broadcast_wakes_all;
        Alcotest.test_case "signal wakes one" `Quick
          test_condvar_signal_wakes_one;
        Alcotest.test_case "await predicate" `Quick test_condvar_await_predicate;
      ] );
    ( "sim.blocked",
      [
        Alcotest.test_case "registry reports stuck" `Quick
          test_blocked_registry_reports_stuck;
        Alcotest.test_case "daemons excluded" `Quick test_blocked_excludes_daemons;
        Alcotest.test_case "alive kills at resume" `Quick
          test_alive_kills_at_resume;
        Alcotest.test_case "clears on resume" `Quick test_blocked_clears_on_resume;
      ] );
  ]
