(* Tests for lbc.analysis: the race detector, log invariant verifier and
   source lint, over both model-generated histories (qcheck) and logs
   produced by real simulated workloads. *)

open Lbc_analysis
module R = Lbc_wal.Record

let names vs = List.sort_uniq String.compare (List.map Violation.name vs)

let check_no_violations what vs =
  Alcotest.(check (list string)) what [] (List.map Violation.to_string vs)

(* ------------------------------------------------------------------ *)
(* Model-level generator: a random valid multi-node history, built by
   simulating a serial execution with per-lock seqno counters.  Locks
   partition the address space (lock l covers region l/2, half l mod 2),
   exactly like the chaos tests, so properly-locked writes never race. *)

let build_random_streams ~nodes ~locks ~txns ~seed =
  let rng = Lbc_util.Rng.create (seed + 1) in
  let next_seq = Array.make locks 0 in
  let last_write = Array.make locks 0 in
  let next_tid = Array.make nodes 1 in
  let streams = Array.make nodes [] in
  let span = 128 in
  for _ = 1 to txns do
    let node = Lbc_util.Rng.int rng nodes in
    let l1 = Lbc_util.Rng.int rng locks in
    let l2 = Lbc_util.Rng.int rng locks in
    let ls = List.sort_uniq Int.compare [ l1; l2 ] in
    let aborted = Lbc_util.Rng.int rng 10 = 0 in
    let lock_infos =
      List.map
        (fun l ->
          next_seq.(l) <- next_seq.(l) + 1;
          {
            R.lock_id = l;
            seqno = next_seq.(l);
            prev_write_seq = last_write.(l);
          })
        ls
    in
    if not aborted then begin
      let ranges =
        List.concat_map
          (fun l ->
            if Lbc_util.Rng.int rng 4 > 0 then begin
              let len = 1 + Lbc_util.Rng.int rng 16 in
              let offset = (l mod 2 * span) + Lbc_util.Rng.int rng (span - len) in
              let data =
                Bytes.init len (fun _ -> Char.chr (Lbc_util.Rng.int rng 256))
              in
              [ { R.region = l / 2; offset; data } ]
            end
            else [])
          ls
      in
      let txn =
        { R.node; tid = next_tid.(node); locks = lock_infos; ranges;
          cmd = None }
      in
      next_tid.(node) <- next_tid.(node) + 1;
      streams.(node) <- txn :: streams.(node);
      if ranges <> [] then
        List.iter
          (fun (l : R.lock_info) -> last_write.(l.R.lock_id) <- l.R.seqno)
          lock_infos
    end
  done;
  Array.to_list (Array.map List.rev streams)

let shape_gen =
  QCheck.make
    ~print:(fun (n, l, t, s) -> Printf.sprintf "nodes=%d locks=%d txns=%d seed=%d" n l t s)
    QCheck.Gen.(
      map
        (fun ((n, l), (t, s)) -> (n, l, t, s))
        (pair (pair (int_range 2 4) (int_range 1 6))
           (pair (int_range 0 60) (int_range 0 10_000))))

(* (a) the verifier accepts every valid history, the merged log it
   induces, and Merge.merge_records's own output re-checked as a single
   serial stream. *)
let prop_valid_histories_accepted =
  QCheck.Test.make ~name:"verifier accepts valid histories and their merge"
    ~count:60 shape_gen (fun (nodes, locks, txns, seed) ->
      let streams = build_random_streams ~nodes ~locks ~txns ~seed in
      Invariants.check_streams streams = []
      &&
      match Lbc_core.Merge.merge_records streams with
      | Error _ -> false
      | Ok merged -> Invariants.check_streams [ merged ] = [])

(* ------------------------------------------------------------------ *)
(* (b) mutation properties: each corruption is caught with the right
   violation kind.  Histories too small to host a given corruption pass
   trivially (the generator makes them rare). *)

let prop_swap_caught =
  QCheck.Test.make ~name:"seqno swap -> seqno-monotonicity" ~count:60
    shape_gen (fun (nodes, locks, txns, seed) ->
      let streams = build_random_streams ~nodes ~locks ~txns ~seed in
      match Selftest.corrupt_seqno_swap streams with
      | None -> true
      | Some mutated ->
          List.mem "seqno-monotonicity"
            (names (Invariants.check_streams mutated)))

let prop_gap_caught =
  QCheck.Test.make ~name:"dropped write record -> seqno-gap" ~count:60
    shape_gen (fun (nodes, locks, txns, seed) ->
      let streams = build_random_streams ~nodes ~locks ~txns ~seed in
      match Selftest.corrupt_seqno_gap streams with
      | None -> true
      | Some mutated ->
          List.mem "seqno-gap" (names (Invariants.check_streams mutated)))

(* Drop one lock record (the lock_info, not the whole transaction) from a
   writing transaction whose seqno a later record references: the write
   chain now names a write no log carries. *)
let drop_lock_record streams =
  let all = List.concat streams in
  let referenced lock seqno =
    List.exists
      (fun (t : R.txn) ->
        List.exists
          (fun l -> l.R.lock_id = lock && l.R.prev_write_seq = seqno)
          t.R.locks)
      all
  in
  let has_earlier lock seqno =
    List.exists
      (fun (t : R.txn) ->
        List.exists (fun l -> l.R.lock_id = lock && l.R.seqno < seqno) t.R.locks)
      all
  in
  let target = ref None in
  List.iteri
    (fun si stream ->
      List.iteri
        (fun i (txn : R.txn) ->
          if Option.is_none !target && txn.R.ranges <> [] then
            List.iter
              (fun l ->
                if
                  Option.is_none !target
                  && referenced l.R.lock_id l.R.seqno
                  && has_earlier l.R.lock_id l.R.seqno
                then target := Some (si, i, l.R.lock_id))
              txn.R.locks)
        stream)
    streams;
  match !target with
  | None -> None
  | Some (si, i, lock) ->
      Some
        (List.mapi
           (fun s stream ->
             if s <> si then stream
             else
               List.mapi
                 (fun j (txn : R.txn) ->
                   if j <> i then txn
                   else
                     {
                       txn with
                       R.locks =
                         List.filter
                           (fun l -> l.R.lock_id <> lock)
                           txn.R.locks;
                     })
                 stream)
           streams)

let prop_dropped_lock_record_caught =
  QCheck.Test.make ~name:"dropped lock record -> seqno-gap" ~count:60
    shape_gen (fun (nodes, locks, txns, seed) ->
      let streams = build_random_streams ~nodes ~locks ~txns ~seed in
      match drop_lock_record streams with
      | None -> true
      | Some mutated ->
          List.mem "seqno-gap" (names (Invariants.check_streams mutated)))

(* Corrupt a range: a negative offset can never have been produced by
   set_range and the wire codec cannot represent it. *)
let corrupt_range streams =
  let target = ref None in
  List.iteri
    (fun si stream ->
      List.iteri
        (fun i (txn : R.txn) ->
          if Option.is_none !target && txn.R.ranges <> [] then
            target := Some (si, i))
        stream)
    streams;
  match !target with
  | None -> None
  | Some (si, i) ->
      Some
        (List.mapi
           (fun s stream ->
             if s <> si then stream
             else
               List.mapi
                 (fun j (txn : R.txn) ->
                   if j <> i then txn
                   else
                     {
                       txn with
                       R.ranges =
                         (match txn.R.ranges with
                         | r :: rest -> { r with R.offset = -1 } :: rest
                         | [] -> []);
                     })
                 stream)
           streams)

let prop_corrupt_range_caught =
  QCheck.Test.make ~name:"corrupted range -> codec-roundtrip" ~count:60
    shape_gen (fun (nodes, locks, txns, seed) ->
      let streams = build_random_streams ~nodes ~locks ~txns ~seed in
      match corrupt_range streams with
      | None -> true
      | Some mutated ->
          List.mem "codec-roundtrip"
            (names (Invariants.check_streams mutated)))

let prop_unlocked_write_caught =
  QCheck.Test.make ~name:"unlocked overlapping write -> unlocked-race"
    ~count:60 shape_gen (fun (nodes, locks, txns, seed) ->
      let streams = build_random_streams ~nodes ~locks ~txns ~seed in
      match Selftest.corrupt_unlocked_write streams with
      | None -> true
      | Some mutated ->
          List.mem "unlocked-race" (names (Invariants.check_streams mutated)))

(* ------------------------------------------------------------------ *)
(* Deterministic unit tests *)

let test_chain_break_detected () =
  let streams = build_random_streams ~nodes:3 ~locks:4 ~txns:40 ~seed:7 in
  (* Find a record whose prev_write_seq is non-zero and damage it. *)
  let mutated =
    List.map
      (List.map (fun (txn : R.txn) ->
           {
             txn with
             R.locks =
               List.map
                 (fun l ->
                   if l.R.prev_write_seq > 1 then
                     { l with R.prev_write_seq = l.R.prev_write_seq - 1 }
                   else l)
                 txn.R.locks;
           }))
      streams
  in
  if mutated = streams then ()
  else
    Alcotest.(check bool)
      "write-chain violation reported" true
      (List.exists
         (fun n -> n = "write-chain" || n = "seqno-gap")
         (names (Invariants.check_streams mutated)))

let test_codec_truncation_detected () =
  let streams = build_random_streams ~nodes:2 ~locks:2 ~txns:20 ~seed:3 in
  match Selftest.corrupt_codec_truncation streams with
  | None -> Alcotest.fail "no writing record to truncate"
  | Some payload ->
      Alcotest.(check (list string))
        "codec-decode violation" [ "codec-decode" ]
        (names (Invariants.check_wire_image payload))

let test_merge_output_is_serial () =
  let streams = build_random_streams ~nodes:4 ~locks:6 ~txns:80 ~seed:11 in
  check_no_violations "merge legality" (Invariants.check_merge streams)

let test_race_detector_orders_by_common_lock () =
  (* Two writers to the same bytes under the same lock: ordered, silent. *)
  let t1 =
    {
      R.node = 0;
      tid = 1;
      locks = [ { R.lock_id = 0; seqno = 1; prev_write_seq = 0 } ];
      ranges = [ { R.region = 0; offset = 0; data = Bytes.make 8 'a' } ];
      cmd = None;
    }
  in
  let t2 =
    {
      R.node = 1;
      tid = 1;
      locks = [ { R.lock_id = 0; seqno = 2; prev_write_seq = 1 } ];
      ranges = [ { R.region = 0; offset = 4; data = Bytes.make 8 'b' } ];
      cmd = None;
    }
  in
  check_no_violations "locked overlap is ordered" (Race.check [ [ t1 ]; [ t2 ] ]);
  (* The same two writes without the common lock race. *)
  let t2' = { t2 with R.locks = [] } in
  Alcotest.(check (list string))
    "unlocked overlap races" [ "unlocked-race" ]
    (names (Race.check [ [ t1 ]; [ t2' ] ]))

let test_race_detector_transitive_order () =
  (* t1 -> t2 via lock 0, t2 -> t3 via lock 1; t1 and t3 share no lock but
     overlap — happens-before through the chain, so no race. *)
  let mk node tid locks ranges = { R.node; tid; locks; ranges; cmd = None } in
  let li lock_id seqno prev_write_seq = { R.lock_id; seqno; prev_write_seq } in
  let t1 =
    mk 0 1 [ li 0 1 0 ] [ { R.region = 0; offset = 0; data = Bytes.make 8 'x' } ]
  in
  let t2 = mk 1 1 [ li 0 2 1; li 1 1 0 ] [] in
  let t3 =
    mk 2 1 [ li 1 2 1 ] [ { R.region = 0; offset = 4; data = Bytes.make 8 'y' } ]
  in
  check_no_violations "transitive happens-before"
    (Race.check [ [ t1 ]; [ t2 ]; [ t3 ] ])

let test_lint_rules () =
  let vs =
    Lint.scan_source ~file:"lib/rvm/fixture.ml"
      (String.concat "\n"
         [
           "let a = List.sort compare xs";
           "let b = Stdlib.compare x y";
           "let c = try f () with _ -> 0";
           "let d : int = Obj.magic e";
           "(* compare in a comment is fine *)";
           "let e = \"with _ -> compare Obj.magic\"";
           "let sort = List.sort ~cmp:Int.compare";
           "let g ~compare = compare";
           "let t0 = Unix.gettimeofday ()";
           "let nap () = Unix.sleepf 0.5 (* clock-ok: test fixture *)";
         ])
  in
  let lines =
    List.filter_map
      (function Violation.Lint { line; rule; _ } -> Some (line, rule) | _ -> None)
      vs
  in
  Alcotest.(check (list (pair int string)))
    "exact findings"
    [
      (1, "poly-compare");
      (2, "poly-compare");
      (3, "catch-all-handler");
      (4, "obj-magic");
      (8, "poly-compare");
      (9, "wall-clock");
    ]
    (List.sort
       (fun (l1, _) (l2, _) -> Int.compare l1 l2)
       lines)

let test_lint_tree_clean () =
  check_no_violations "lib/ lints clean" (Lint.scan_paths [ "../lib" ])

(* ------------------------------------------------------------------ *)
(* Against real workloads: the sim's chaos-style traffic and OO7 *)

let test_selftest_passes () =
  let results = Selftest.run () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Selftest.check ^ ": " ^ r.Selftest.detail)
        true r.Selftest.ok)
    results

let test_oo7_logs_verify () =
  let open Lbc_oo7 in
  let tiny = Schema.tiny in
  let cluster = Runner.setup ~nodes:2 tiny in
  ignore (Runner.run ~cluster ~writer:0 tiny (Traversal.T2 Traversal.A));
  ignore (Runner.run ~cluster ~writer:1 tiny (Traversal.T2 Traversal.B));
  let logs =
    List.init 2 (fun n ->
        Lbc_rvm.Rvm.log (Lbc_core.Node.rvm (Lbc_core.Cluster.node cluster n)))
  in
  check_no_violations "OO7 logs verify" (Invariants.check_logs logs)

(* ------------------------------------------------------------------ *)
(* Command records in the analysis layer *)

(* Deterministic test op: write the params blob at offset 8 of region 0. *)
let stamp_op = 921

let register_stamp_op () =
  Lbc_wal.Command.register ~op:stamp_op ~name:"test-stamp-analysis"
    (fun mem ~params -> mem.Lbc_wal.Command.write ~region:0 ~offset:8 params)

let cmd_txn ?(node = 0) ?(tid = 1) ?(locks = []) ?(op = stamp_op)
    ?(params = Bytes.of_string "CMD") ?(regions = [ 0 ]) () =
  { R.node; tid; locks; ranges = [];
    cmd = Some { R.op; params; cmd_regions = regions } }

let li lock_id seqno prev_write_seq = { R.lock_id; seqno; prev_write_seq }

let test_serialize_executes_commands () =
  register_stamp_op ();
  let t1 =
    { R.node = 0; tid = 1; locks = [ li 0 1 0 ];
      ranges = [ { R.region = 0; offset = 0; data = Bytes.make 16 'a' } ];
      cmd = None }
  in
  let t2 = cmd_txn ~node:1 ~tid:1 ~locks:[ li 0 2 1 ] () in
  let expected = Bytes.make 32 '\000' in
  Bytes.fill expected 0 16 'a';
  Bytes.blit_string "CMD" 0 expected 8 3;
  check_no_violations "command re-executes against the spec"
    (Serialize.check ~regions:[ (0, 32) ]
       ~finals:[ ("model", fun _ -> expected) ]
       [ [ t1 ]; [ t2 ] ]);
  (* A diverging witness is still caught on a mixed-kind stream. *)
  let wrong = Bytes.copy expected in
  Bytes.set wrong 9 '!';
  Alcotest.(check (list string))
    "divergence reported" [ "serializability" ]
    (names
       (Serialize.check ~regions:[ (0, 32) ]
          ~finals:[ ("model", fun _ -> wrong) ]
          [ [ t1 ]; [ t2 ] ]))

let test_unknown_command_flagged () =
  let t = cmd_txn ~op:922_001 () in
  Alcotest.(check (list string))
    "unregistered op -> command-unknown" [ "command-unknown" ]
    (names
       (Serialize.check ~regions:[ (0, 32) ]
          ~finals:[ ("model", fun _ -> Bytes.make 32 '\000') ]
          [ [ t ] ]))

let test_race_cmd_conservative () =
  (* The race detector cannot see a command's byte spans, so a cmd
     record conservatively claims its whole regions: an unlocked value
     write anywhere in region 0 races with it... *)
  let v =
    { R.node = 0; tid = 1; locks = [];
      ranges = [ { R.region = 0; offset = 4096; data = Bytes.make 8 'v' } ];
      cmd = None }
  in
  let c = cmd_txn ~node:1 ~tid:1 () in
  Alcotest.(check (list string))
    "unlocked cmd overlap races" [ "unlocked-race" ]
    (names (Race.check [ [ v ]; [ c ] ]));
  (* ...while the same pair ordered by a common lock is silent. *)
  let v' = { v with R.locks = [ li 0 1 0 ] } in
  let c' = cmd_txn ~node:1 ~tid:1 ~locks:[ li 0 2 1 ] () in
  check_no_violations "locked cmd is ordered" (Race.check [ [ v' ]; [ c' ] ])

let test_oo7_adaptive_logs_verify () =
  (* An adaptive OO7 run produces a mixed-kind log; every invariant —
     codec roundtrip, chains, merge legality, races — must hold over it. *)
  let open Lbc_oo7 in
  let tiny = Schema.tiny in
  let config =
    { Lbc_core.Config.default with
      Lbc_core.Config.log_mode = Lbc_wal.Command.Adaptive }
  in
  let cluster = Runner.setup ~config ~nodes:2 tiny in
  ignore (Runner.run ~cluster ~writer:0 tiny (Traversal.T3 Traversal.C));
  ignore (Runner.run ~cluster ~writer:1 tiny (Traversal.T2 Traversal.A));
  let logs =
    List.init 2 (fun n ->
        Lbc_rvm.Rvm.log (Lbc_core.Node.rvm (Lbc_core.Cluster.node cluster n)))
  in
  let records =
    List.concat_map (fun l -> fst (Lbc_wal.Log.read_all l)) logs
  in
  Alcotest.(check bool) "the log actually contains a command record" true
    (List.exists (fun (t : R.txn) -> t.R.cmd <> None) records);
  check_no_violations "adaptive OO7 logs verify" (Invariants.check_logs logs)

let suites =
  [
    ( "analysis",
      [
        QCheck_alcotest.to_alcotest prop_valid_histories_accepted;
        QCheck_alcotest.to_alcotest prop_swap_caught;
        QCheck_alcotest.to_alcotest prop_gap_caught;
        QCheck_alcotest.to_alcotest prop_dropped_lock_record_caught;
        QCheck_alcotest.to_alcotest prop_corrupt_range_caught;
        QCheck_alcotest.to_alcotest prop_unlocked_write_caught;
        Alcotest.test_case "chain break detected" `Quick
          test_chain_break_detected;
        Alcotest.test_case "codec truncation detected" `Quick
          test_codec_truncation_detected;
        Alcotest.test_case "merge output is serial" `Quick
          test_merge_output_is_serial;
        Alcotest.test_case "race: common lock orders" `Quick
          test_race_detector_orders_by_common_lock;
        Alcotest.test_case "race: transitive order" `Quick
          test_race_detector_transitive_order;
        Alcotest.test_case "lint rules" `Quick test_lint_rules;
        Alcotest.test_case "lint: lib tree clean" `Quick test_lint_tree_clean;
        Alcotest.test_case "self-test (sim logs + corruptions)" `Quick
          test_selftest_passes;
        Alcotest.test_case "OO7 cluster logs verify" `Quick
          test_oo7_logs_verify;
        Alcotest.test_case "serialize oracle executes commands" `Quick
          test_serialize_executes_commands;
        Alcotest.test_case "unknown command flagged" `Quick
          test_unknown_command_flagged;
        Alcotest.test_case "race: cmd claims whole region" `Quick
          test_race_cmd_conservative;
        Alcotest.test_case "adaptive OO7 logs verify" `Quick
          test_oo7_adaptive_logs_verify;
      ] );
  ]
