(* Tests for the simulated durable storage: sync/crash semantics,
   latency charging, the named-device store. *)

open Lbc_storage

let check_int = Alcotest.(check int)
let check_bytes msg a b = Alcotest.(check string) msg (Bytes.to_string a) (Bytes.to_string b)

let test_write_read () =
  let d = Dev.create () in
  Dev.write_string d ~off:0 "hello world";
  check_bytes "read back" (Bytes.of_string "world") (Dev.read d ~off:6 ~len:5);
  check_int "size" 11 (Dev.size d)

let test_read_beyond_end () =
  let d = Dev.create () in
  Dev.write_string d ~off:0 "abc";
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dev.read d ~off:0 ~len:4);
       false
     with Invalid_argument _ -> true)

let test_sparse_write_zero_fill () =
  let d = Dev.create () in
  Dev.write_string d ~off:4 "x";
  check_bytes "zero filled" (Bytes.of_string "\000\000\000\000x")
    (Dev.read d ~off:0 ~len:5)

let test_crash_loses_unsynced () =
  let d = Dev.create () in
  Dev.write_string d ~off:0 "stable!";
  Dev.sync d;
  Dev.write_string d ~off:0 "gone...";
  check_bytes "cache sees new" (Bytes.of_string "gone...")
    (Dev.read d ~off:0 ~len:7);
  Dev.crash d;
  check_bytes "stable survives" (Bytes.of_string "stable!")
    (Dev.read d ~off:0 ~len:7)

let test_crash_applies_prefix () =
  let d = Dev.create () in
  Dev.write_string d ~off:0 "00000000";
  Dev.sync d;
  Dev.write_string d ~off:0 "AA";
  Dev.write_string d ~off:2 "BB";
  Dev.write_string d ~off:4 "CC";
  Dev.crash ~apply:2 d;
  check_bytes "first two writes survive" (Bytes.of_string "AABB0000")
    (Dev.read d ~off:0 ~len:8)

let test_crash_torn_write () =
  let d = Dev.create () in
  Dev.write_string d ~off:0 "........";
  Dev.sync d;
  Dev.write_string d ~off:0 "WXYZ";
  Dev.crash ~tear_bytes:2 d;
  check_bytes "torn prefix applied" (Bytes.of_string "WX......")
    (Dev.read d ~off:0 ~len:8)

let test_crash_then_write_again () =
  let d = Dev.create () in
  Dev.write_string d ~off:0 "one";
  Dev.sync d;
  Dev.write_string d ~off:0 "two";
  Dev.crash d;
  Dev.write_string d ~off:0 "tri";
  Dev.sync d;
  Dev.crash d;
  check_bytes "resynced" (Bytes.of_string "tri") (Dev.read d ~off:0 ~len:3)

let test_stable_size_lags () =
  let d = Dev.create () in
  Dev.write_string d ~off:0 "0123456789";
  check_int "current" 10 (Dev.size d);
  check_int "stable lags" 0 (Dev.stable_size d);
  Dev.sync d;
  check_int "stable catches up" 10 (Dev.stable_size d)

let test_latency_charged () =
  let open Lbc_sim in
  let e = Engine.create () in
  let lat =
    {
      Latency.none with
      Latency.write_base = 10.0;
      write_per_byte = 1.0;
      sync_base = 1000.0;
    }
  in
  let d = Dev.create ~latency:lat () in
  let elapsed = ref 0.0 in
  Proc.spawn e (fun () ->
      Dev.write_string d ~off:0 "12345";
      (* 10 + 5*1 = 15 *)
      Dev.sync d;
      (* + 1000 *)
      elapsed := Proc.now ());
  Engine.run e;
  Alcotest.(check (float 1e-9)) "time charged" 1015.0 !elapsed

let test_load_replaces () =
  let d = Dev.create () in
  Dev.write_string d ~off:0 "junk";
  Dev.load d (Bytes.of_string "fresh");
  check_bytes "loaded" (Bytes.of_string "fresh") (Dev.read d ~off:0 ~len:5);
  Dev.crash d;
  check_bytes "load is stable" (Bytes.of_string "fresh")
    (Dev.read d ~off:0 ~len:5)

let prop_sync_then_crash_is_identity =
  QCheck.Test.make ~name:"sync+crash preserves current image" ~count:100
    QCheck.(small_list (pair (int_bound 64) (string_of_size Gen.(1 -- 16))))
    (fun writes ->
      QCheck.assume (writes <> []);
      let d = Dev.create () in
      List.iter (fun (off, s) -> Dev.write_string d ~off s) writes;
      let before = Dev.snapshot d in
      Dev.sync d;
      Dev.crash d;
      Bytes.equal before (Dev.snapshot d))

(* Satellite regression: a file device whose underlying file is shorter
   than the tracked length (a crash truncated it mid-append) must read
   the missing tail as zeroes — the log scanner then reports a
   structured torn-tail verdict — instead of dying on a short read. *)
let test_file_short_read_zero_fills () =
  let path = Filename.temp_file "lbc-test-dev" ".img" in
  let d = Dev.create_file ~path () in
  Dev.write_string d ~off:0 "0123456789abcdef";
  Dev.sync d;
  (* Simulate the crash: the kernel kept only the first 6 bytes. *)
  Unix.truncate path 6;
  let b = Dev.read d ~off:0 ~len:16 in
  check_bytes "prefix intact, tail zero-filled"
    (Bytes.of_string "012345\000\000\000\000\000\000\000\000\000\000")
    b;
  (* Reading entirely past the truncation point is all zeroes too. *)
  check_bytes "pure-tail read is zeroes" (Bytes.make 4 '\000')
    (Dev.read d ~off:10 ~len:4);
  (* Reading past the *tracked* length is still a programming error. *)
  Alcotest.(check bool) "beyond tracked length still raises" true
    (try
       ignore (Dev.read d ~off:0 ~len:17);
       false
     with Invalid_argument _ -> true);
  Dev.close d;
  Sys.remove path

let test_file_roundtrip () =
  let path = Filename.temp_file "lbc-test-dev" ".img" in
  let d = Dev.create_file ~path () in
  Dev.write_string d ~off:3 "abc";
  Dev.sync d;
  Dev.close d;
  let d' = Dev.create_file ~path () in
  check_bytes "reopened file keeps bytes" (Bytes.of_string "\000\000\000abc")
    (Dev.read d' ~off:0 ~len:6);
  Dev.close d';
  Sys.remove path

let test_store_named_devices () =
  let s = Store.create () in
  let a = Store.open_dev s "db" in
  let a' = Store.open_dev s "db" in
  Alcotest.(check bool) "same device" true (a == a');
  ignore (Store.open_dev s "log.0");
  Alcotest.(check (list string)) "names" [ "db"; "log.0" ] (Store.names s);
  Alcotest.(check (option reject)) "find missing" None (Store.find s "nope")

let test_store_crash_all () =
  let s = Store.create () in
  let db = Store.open_dev s "db" and log = Store.open_dev s "log" in
  Dev.write_string db ~off:0 "D1";
  Dev.write_string log ~off:0 "L1";
  Store.sync_all s;
  Dev.write_string db ~off:0 "D2";
  Dev.write_string log ~off:0 "L2";
  Store.crash_all s;
  check_bytes "db reverted" (Bytes.of_string "D1") (Dev.read db ~off:0 ~len:2);
  check_bytes "log reverted" (Bytes.of_string "L1") (Dev.read log ~off:0 ~len:2)

let suites =
  [
    ( "storage.dev",
      [
        Alcotest.test_case "write/read" `Quick test_write_read;
        Alcotest.test_case "read beyond end" `Quick test_read_beyond_end;
        Alcotest.test_case "sparse write zero-fills" `Quick
          test_sparse_write_zero_fill;
        Alcotest.test_case "crash loses unsynced" `Quick
          test_crash_loses_unsynced;
        Alcotest.test_case "crash applies prefix" `Quick
          test_crash_applies_prefix;
        Alcotest.test_case "crash torn write" `Quick test_crash_torn_write;
        Alcotest.test_case "crash then write again" `Quick
          test_crash_then_write_again;
        Alcotest.test_case "stable size lags" `Quick test_stable_size_lags;
        Alcotest.test_case "latency charged" `Quick test_latency_charged;
        Alcotest.test_case "load replaces" `Quick test_load_replaces;
        QCheck_alcotest.to_alcotest prop_sync_then_crash_is_identity;
        Alcotest.test_case "file device: short read zero-fills" `Quick
          test_file_short_read_zero_fills;
        Alcotest.test_case "file device: reopen roundtrip" `Quick
          test_file_roundtrip;
      ] );
    ( "storage.store",
      [
        Alcotest.test_case "named devices" `Quick test_store_named_devices;
        Alcotest.test_case "crash all" `Quick test_store_crash_all;
      ] );
  ]
