(* Tests for the schedule explorer: the planted bug is found, shrunk to
   a minimal trace and reproduced from the written counterexample; the
   real scenarios hold up under bounded exploration. *)

module Scenario = Lbc_explore.Scenario
module Explore = Lbc_explore.Explore
module S = Lbc_sim.Schedule

let test_planted_clean_under_fifo () =
  let r = Scenario.planted.Scenario.run S.Fifo in
  Alcotest.(check (list string))
    "no violations" []
    (List.map Lbc_analysis.Violation.to_string r.Scenario.violations);
  Alcotest.(check bool) "choice points seen" true (r.Scenario.choice_points > 0)

let find_planted () =
  match Explore.explore ~mode:`Random ~seeds:64 Scenario.planted with
  | Explore.Pass n -> Alcotest.failf "no violation in %d schedules" n
  | Explore.Fail f -> f

let test_exploration_finds_planted_bug () =
  let f = find_planted () in
  Alcotest.(check (list string))
    "schedule-oracle fired" [ "schedule-oracle" ]
    (Explore.names_of f.Explore.violations);
  Alcotest.(check bool) "decisions recorded" true (f.Explore.decisions <> [])

let test_shrink_isolates_one_reordering () =
  let f = find_planted () in
  let shrunk = Explore.shrink Scenario.planted f in
  Alcotest.(check int) "one non-FIFO decision" 1
    (Explore.nonzero_count shrunk.Explore.decisions);
  Alcotest.(check bool) "no longer than the original" true
    (List.length shrunk.Explore.decisions <= List.length f.Explore.decisions);
  (* The shrunk trace still fails, with the same violation names. *)
  let r = Explore.replay Scenario.planted shrunk.Explore.decisions in
  Alcotest.(check (list string))
    "same failure" [ "schedule-oracle" ]
    (Explore.names_of r.Scenario.violations)

let test_counterexample_roundtrip_and_replay () =
  let f = Explore.shrink Scenario.planted (find_planted ()) in
  let path = Filename.temp_file "lbc-test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Explore.write_trace path f;
      match Explore.read_trace path with
      | Error e -> Alcotest.failf "read_trace: %s" e
      | Ok t ->
          Alcotest.(check string) "scenario" "planted" t.Explore.t_scenario;
          Alcotest.(check (list int))
            "decisions" f.Explore.decisions t.Explore.t_decisions;
          (match Explore.replay_trace t with
          | Error e -> Alcotest.failf "replay_trace: %s" e
          | Ok (r, reproduced) ->
              Alcotest.(check bool) "reproduced" true reproduced;
              Alcotest.(check bool) "violations present" true
                (r.Scenario.violations <> [])))

let test_read_trace_rejects_garbage () =
  let path = Filename.temp_file "lbc-test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      match Explore.read_trace path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted garbage")

(* A recorded cluster-scenario trace replays to the identical run:
   same committed transactions, same choice points, and the re-recorded
   decision trace is a prefix-compatible reproduction. *)
let test_cluster_replay_deterministic () =
  let probe = Scenario.drop_heal.Scenario.run (S.Random_tie 11) in
  Alcotest.(check (list string))
    "probe run is clean" []
    (List.map Lbc_analysis.Violation.to_string probe.Scenario.violations);
  let r1 = Explore.replay Scenario.drop_heal probe.Scenario.decisions in
  Alcotest.(check int) "same committed txns" probe.Scenario.committed
    r1.Scenario.committed;
  Alcotest.(check int) "same choice points" probe.Scenario.choice_points
    r1.Scenario.choice_points;
  Alcotest.(check (list int))
    "replay re-records the same decisions" probe.Scenario.decisions
    r1.Scenario.decisions

(* Bounded exploration of the real scenarios: every schedule must pass
   the full oracle stack (log invariants, races, serializability). *)
let explored_clean name scenario seeds () =
  match Explore.explore ~mode:`Random ~seeds scenario with
  | Explore.Pass _ -> ()
  | Explore.Fail f ->
      Alcotest.failf "%s: seed %d violates %s" name
        (1 + f.Explore.schedules_run)
        (String.concat ", " (Explore.names_of f.Explore.violations))

let test_scenarios_registered () =
  Alcotest.(check bool) "planted registered" true
    (Scenario.find "planted" <> None);
  Alcotest.(check bool) "unknown rejected" true
    (Scenario.find "no-such-scenario" = None);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Scenario.name ^ " has a description")
        true
        (String.length s.Scenario.descr > 0))
    Scenario.all

let suites =
  [
    ( "explore",
      [
        Alcotest.test_case "planted clean under fifo" `Quick
          test_planted_clean_under_fifo;
        Alcotest.test_case "exploration finds the planted bug" `Quick
          test_exploration_finds_planted_bug;
        Alcotest.test_case "shrink isolates one reordering" `Quick
          test_shrink_isolates_one_reordering;
        Alcotest.test_case "counterexample roundtrip + replay" `Quick
          test_counterexample_roundtrip_and_replay;
        Alcotest.test_case "trace parser rejects garbage" `Quick
          test_read_trace_rejects_garbage;
        Alcotest.test_case "cluster replay deterministic" `Quick
          test_cluster_replay_deterministic;
        Alcotest.test_case "scenario registry" `Quick test_scenarios_registered;
      ] );
    ( "explore-scenarios",
      [
        Alcotest.test_case "drop-heal 5 schedules" `Quick
          (explored_clean "drop-heal" Scenario.drop_heal 5);
        Alcotest.test_case "crash-rejoin 5 schedules" `Quick
          (explored_clean "crash-rejoin" Scenario.crash_rejoin 5);
        Alcotest.test_case "checkpoint-under-faults 5 schedules" `Quick
          (explored_clean "checkpoint-under-faults"
             Scenario.checkpoint_under_faults 5);
        Alcotest.test_case "rejoin-under-load 5 schedules" `Quick
          (explored_clean "rejoin-under-load" Scenario.rejoin_under_load 5);
        Alcotest.test_case "oo7 eager 5 schedules" `Quick
          (explored_clean "oo7-eager" Scenario.oo7_eager 5);
        Alcotest.test_case "oo7 multicast 5 schedules" `Quick
          (explored_clean "oo7-multicast" Scenario.oo7_multicast 5);
        Alcotest.test_case "oo7 lazy 5 schedules" `Quick
          (explored_clean "oo7-lazy" Scenario.oo7_lazy 5);
      ] );
  ]
