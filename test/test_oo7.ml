(* Tests for the OO7 benchmark database and traversals, including the
   structural counts that feed Table 3. *)

open Lbc_oo7
open Lbc_core

let check_int = Alcotest.(check int)

let tiny = Schema.tiny
let tiny_db () = Database.attach_bytes tiny (Builder.build tiny)

(* ------------------------------------------------------------------ *)
(* Construction *)

let test_build_deterministic () =
  let a = Builder.build tiny and b = Builder.build tiny in
  Alcotest.(check bool) "identical images" true (Bytes.equal a b)

let test_build_structure () =
  let db = tiny_db () in
  check_int "composites" tiny.Schema.num_composites (Database.num_composites db);
  (* Index holds one entry per atomic part. *)
  check_int "index cardinality"
    (tiny.Schema.num_composites * tiny.Schema.atomics_per_composite)
    (Lbc_pheap.Iavl.cardinal (Database.index db));
  Lbc_pheap.Iavl.check_invariants (Database.index db)

let test_atomic_clustering () =
  (* The atomic parts of one composite are contiguous — the layout property
     behind the paper's pages-updated numbers. *)
  let db = tiny_db () in
  let comp = Database.composite db 0 in
  let parts =
    List.init tiny.Schema.atomics_per_composite (fun i ->
        Database.composite_get db ~addr:comp (Schema.part_slot i))
  in
  let sorted = List.sort compare parts in
  Alcotest.(check (list int)) "contiguous 200-byte objects"
    (List.init (List.length parts) (fun i -> List.hd sorted + (200 * i)))
    sorted

let test_graph_connected () =
  (* DFS from the root part must reach every atomic part (ring edge). *)
  let db = tiny_db () in
  let r = Traversal.run db Traversal.T1 in
  check_int "every atomic visited per composite visit"
    (r.Traversal.composite_visits * tiny.Schema.atomics_per_composite)
    r.Traversal.atomic_visits

(* ------------------------------------------------------------------ *)
(* Traversal counts (structure of Table 3) *)

let visits = Schema.composite_visits tiny

let test_traversal_counts () =
  let db = tiny_db () in
  let expect kind field_updates index_ops =
    let r = Traversal.run db kind in
    check_int (Traversal.name kind ^ " updates") field_updates
      r.Traversal.field_updates;
    check_int (Traversal.name kind ^ " index ops") index_ops r.Traversal.index_ops
  in
  let atomics = tiny.Schema.atomics_per_composite in
  expect Traversal.T6 0 0;
  expect (Traversal.T12 Traversal.A) visits 0;
  expect (Traversal.T12 Traversal.C) (4 * visits) 0;
  expect (Traversal.T2 Traversal.A) visits 0;
  expect (Traversal.T2 Traversal.B) (visits * atomics) 0;
  expect (Traversal.T2 Traversal.C) (4 * visits * atomics) 0;
  expect (Traversal.T3 Traversal.A) visits visits;
  expect (Traversal.T3 Traversal.B) (visits * atomics) (visits * atomics)

let test_t3_preserves_index () =
  let db = tiny_db () in
  let before = Lbc_pheap.Iavl.cardinal (Database.index db) in
  ignore (Traversal.run db (Traversal.T3 Traversal.B));
  check_int "cardinality preserved" before
    (Lbc_pheap.Iavl.cardinal (Database.index db));
  Lbc_pheap.Iavl.check_invariants (Database.index db)

let test_t2_actually_updates () =
  let db = tiny_db () in
  let before = Database.checksum db in
  ignore (Traversal.run db (Traversal.T2 Traversal.B));
  Alcotest.(check bool) "checksum changed" false
    (Int64.equal before (Database.checksum db))

let test_readonly_traversals_no_mutation () =
  let image = Builder.build tiny in
  let db = Database.attach_bytes tiny image in
  let before = Bytes.copy image in
  ignore (Traversal.run db Traversal.T1);
  ignore (Traversal.run db Traversal.T6);
  Alcotest.(check bool) "image untouched" true (Bytes.equal before image)

let test_traversal_names () =
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "name roundtrip"
        (Some (Traversal.name k))
        (Option.map Traversal.name (Traversal.of_name (Traversal.name k))))
    (Traversal.T1 :: Traversal.T6 :: Traversal.table3_kinds)

(* ------------------------------------------------------------------ *)
(* Coherency integration: a traversal on one node updates its peer *)

let test_traversal_propagates_to_peer () =
  let cluster = Runner.setup ~nodes:2 tiny in
  let outcome = Runner.run ~cluster ~writer:0 tiny (Traversal.T2 Traversal.B) in
  Alcotest.(check bool) "updates happened" true
    (outcome.Runner.result.Traversal.field_updates > 0);
  let db0 = Database.attach_node tiny (Cluster.node cluster 0) ~region:Runner.region in
  let db1 = Database.attach_node tiny (Cluster.node cluster 1) ~region:Runner.region in
  Alcotest.(check int64) "peer cache converged" (Database.checksum db0)
    (Database.checksum db1)

let test_t3_propagates_index_updates () =
  let cluster = Runner.setup ~nodes:2 tiny in
  ignore (Runner.run ~cluster ~writer:0 tiny (Traversal.T3 Traversal.A));
  (* The receiver's copy of the index must be structurally valid and equal. *)
  let db1 = Database.attach_node tiny (Cluster.node cluster 1) ~region:Runner.region in
  Lbc_pheap.Iavl.check_invariants (Database.index db1);
  let db0 = Database.attach_node tiny (Cluster.node cluster 0) ~region:Runner.region in
  Alcotest.(check int64) "caches equal" (Database.checksum db0)
    (Database.checksum db1)

let test_profile_plausible () =
  let cluster = Runner.setup ~nodes:2 tiny in
  let o = Runner.run ~cluster ~writer:0 tiny (Traversal.T2 Traversal.A) in
  let p = o.Runner.profile in
  (* One 8-byte update per composite visit; every composite covered at
     most once in unique bytes. *)
  check_int "updates = visits" visits p.Lbc_costmodel.Model.updates;
  Alcotest.(check bool) "unique bytes = 8 * unique composites" true
    (p.Lbc_costmodel.Model.unique_bytes <= 8 * tiny.Schema.num_composites
    && p.Lbc_costmodel.Model.unique_bytes >= 8);
  Alcotest.(check bool) "message bigger than payload" true
    (p.Lbc_costmodel.Model.message_bytes > p.Lbc_costmodel.Model.unique_bytes);
  Alcotest.(check bool) "pages > 0" true (p.Lbc_costmodel.Model.pages_updated > 0)

let test_consecutive_traversals_two_writers () =
  let cluster = Runner.setup ~nodes:2 tiny in
  ignore (Runner.run ~cluster ~writer:0 tiny (Traversal.T2 Traversal.A));
  ignore (Runner.run ~cluster ~writer:1 tiny (Traversal.T2 Traversal.B));
  let db0 = Database.attach_node tiny (Cluster.node cluster 0) ~region:Runner.region in
  let db1 = Database.attach_node tiny (Cluster.node cluster 1) ~region:Runner.region in
  Alcotest.(check int64) "converged after alternating writers"
    (Database.checksum db0) (Database.checksum db1)

(* The paper-scale configuration: structural counts of Table 3 rows that
   are exact (updates and unique bytes for T12/T2). *)
let test_small_config_table3_anchors () =
  let small = Schema.small in
  check_int "2187 composite visits" 2187 (Schema.composite_visits small);
  let cluster = Runner.setup ~nodes:2 small in
  let o = Runner.run ~cluster ~writer:0 small (Traversal.T2 Traversal.A) in
  let p = o.Runner.profile in
  check_int "T2-A updates = 2187" 2187 p.Lbc_costmodel.Model.updates;
  check_int "T2-A unique bytes = 4000" 4000 p.Lbc_costmodel.Model.unique_bytes;
  check_int "T2-A pages = 500" 500 p.Lbc_costmodel.Model.pages_updated

(* ------------------------------------------------------------------ *)
(* Full-suite traversals (T4, T5, T7), queries, structural operations *)

let test_t4_scans_documents () =
  let db = tiny_db () in
  let r = Traversal.run db Traversal.T4 in
  check_int "visits all composites" visits r.Traversal.composite_visits;
  (* Documents are filled with a repeated letter; composite 0 gets 'A's,
     so scans find plenty. *)
  Alcotest.(check bool) "found characters" true (Int64.compare r.Traversal.read_sum 0L > 0);
  check_int "no updates" 0 r.Traversal.field_updates

let test_t5_updates_documents () =
  let image = Builder.build tiny in
  let db = Database.attach_bytes tiny image in
  let r = Traversal.run db Traversal.T5 in
  check_int "one doc update per visit" visits r.Traversal.field_updates;
  let comp = Database.composite db 0 in
  let doc = Database.composite_get db ~addr:comp "document" in
  Alcotest.(check string) "document rewritten" "REVISED!"
    (Bytes.to_string (Lbc_pheap.Heap.get_bytes (Database.heap db) doc ~len:8))

let test_t7_visits_one_assembly () =
  let db = tiny_db () in
  let r = Traversal.run db Traversal.T7 in
  check_int "one base assembly's composites"
    tiny.Schema.composites_per_base r.Traversal.composite_visits;
  check_int "full graphs walked"
    (tiny.Schema.composites_per_base * tiny.Schema.atomics_per_composite)
    r.Traversal.atomic_visits

let test_queries () =
  let db = tiny_db () in
  let atoms = tiny.Schema.num_composites * tiny.Schema.atomics_per_composite in
  check_int "q1 finds everything" 20 (Queries.q1_exact_lookups db ~lookups:20);
  check_int "q7 full scan" atoms (Queries.q7_full_scan db);
  let q2 = Queries.q2_range_1pct db and q3 = Queries.q3_range_10pct db in
  Alcotest.(check bool)
    (Printf.sprintf "ranges nested (q2=%d <= q3=%d <= all=%d)" q2 q3 atoms)
    true
    (q2 <= q3 && q3 <= atoms);
  (* Exhaustive cross-check of the range scan against a full fold. *)
  let manual frac =
    let hi = Int64.of_int (int_of_float (frac *. float_of_int tiny.Schema.date_range)) in
    Lbc_pheap.Iavl.fold (Database.index db) ~init:0 ~f:(fun acc part ->
        if Int64.compare (Database.atomic_get db ~addr:part "date") hi <= 0 then
          acc + 1
        else acc)
  in
  check_int "q2 matches manual count" (manual 0.01) q2;
  check_int "q3 matches manual count" (manual 0.10) q3;
  Alcotest.(check bool) "q4 counts pattern" true
    (Queries.q4_document_scan db ~pattern:'A' >= Schema.doc_size)

let test_insert_and_delete_composites () =
  let db = tiny_db () in
  let before = Database.num_composites db in
  let idx_before = Queries.q7_full_scan db in
  let rng = Lbc_util.Rng.create 99 in
  let added = Operations.insert_composites db ~rng ~count:3 in
  check_int "directory grew" (before + 3) (Database.num_composites db);
  check_int "index grew"
    (idx_before + (3 * tiny.Schema.atomics_per_composite))
    (Queries.q7_full_scan db);
  Lbc_pheap.Iavl.check_invariants (Database.index db);
  List.iter (fun addr -> Operations.delete_composite db ~addr) added;
  check_int "directory restored" before (Database.num_composites db);
  check_int "index restored" idx_before (Queries.q7_full_scan db);
  Lbc_pheap.Iavl.check_invariants (Database.index db)

let test_delete_unknown_composite_rejected () =
  let db = tiny_db () in
  Alcotest.(check bool) "raises" true
    (try Operations.delete_composite db ~addr:12345; false
     with Database.Bad_database _ -> true)

let test_structural_insert_propagates () =
  (* A whole insertion — allocator bump, cluster init, directory and
     index updates — commits atomically and replicates to the peer. *)
  let cluster = Runner.setup ~nodes:2 tiny in
  Cluster.spawn cluster ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn Runner.lock;
      let db = Database.attach_txn tiny txn ~region:Runner.region in
      let rng = Lbc_util.Rng.create 5 in
      ignore (Operations.insert_composites db ~rng ~count:2);
      Node.Txn.commit txn);
  Cluster.run cluster;
  let db1 =
    Database.attach_node tiny (Cluster.node cluster 1) ~region:Runner.region
  in
  check_int "peer sees new composites"
    (tiny.Schema.num_composites + 2)
    (Database.num_composites db1);
  check_int "peer index grew"
    ((tiny.Schema.num_composites + 2) * tiny.Schema.atomics_per_composite)
    (Queries.q7_full_scan db1);
  Lbc_pheap.Iavl.check_invariants (Database.index db1);
  (* The insertion is durable too. *)
  let outcome = Cluster.recover_database cluster in
  Alcotest.(check bool) "recovered" true
    (outcome.Lbc_rvm.Recovery.records_replayed = 1)

(* ------------------------------------------------------------------ *)
(* Adaptive logging: write-heavy traversals ship the command instead *)

let test_adaptive_t3c_command_encoding () =
  let config =
    { Config.default with Config.log_mode = Lbc_wal.Command.Adaptive }
  in
  let cluster = Runner.setup ~config ~nodes:2 tiny in
  let o = Runner.run ~cluster ~writer:0 tiny (Traversal.T3 Traversal.C) in
  (* T3-C updates four indexed fields per atomic part: the value
     encoding is large, the command (op + schema + traversal tag) tiny. *)
  Alcotest.(check bool) "command record chosen" true
    (o.Runner.record.Lbc_wal.Record.cmd <> None);
  Alcotest.(check (list int)) "no ranges on the logged record" []
    (List.map (fun _ -> 0) o.Runner.record.Lbc_wal.Record.ranges);
  Alcotest.(check bool)
    (Printf.sprintf "wire bytes shrink (%d cmd vs %d value)"
       (Wire.size o.Runner.record) (Wire.size o.Runner.value))
    true
    (Wire.size o.Runner.record < Wire.size o.Runner.value);
  (* The receiver re-executed the traversal against its cached pages. *)
  let db0 =
    Database.attach_node tiny (Cluster.node cluster 0) ~region:Runner.region
  in
  let db1 =
    Database.attach_node tiny (Cluster.node cluster 1) ~region:Runner.region
  in
  Alcotest.(check int64) "receiver re-execution converged"
    (Database.checksum db0) (Database.checksum db1);
  (* Recovery re-executes the command against the checkpoint image and
     lands on the same bytes. *)
  let outcome = Cluster.recover_database cluster in
  check_int "one record replayed" 1 outcome.Lbc_rvm.Recovery.records_replayed;
  match Lbc_storage.Store.find (Cluster.store cluster) "region.0" with
  | None -> Alcotest.fail "region device missing from the store"
  | Some dev ->
      let img = Lbc_storage.Dev.stable_snapshot dev in
      Alcotest.(check int64) "recovered image matches the writer cache"
        (Database.checksum db0)
        (Database.checksum (Database.attach_bytes tiny img))

let test_value_mode_unchanged_by_default () =
  (* The default config still logs values: the record is its own value
     equivalent. *)
  let cluster = Runner.setup ~nodes:2 tiny in
  let o = Runner.run ~cluster ~writer:0 tiny (Traversal.T3 Traversal.C) in
  Alcotest.(check bool) "no command" true
    (o.Runner.record.Lbc_wal.Record.cmd = None);
  Alcotest.(check bool) "record = value equivalent" true
    (Lbc_wal.Record.equal_txn o.Runner.record o.Runner.value)

let suites =
  [
    ( "oo7.build",
      [
        Alcotest.test_case "deterministic" `Quick test_build_deterministic;
        Alcotest.test_case "structure" `Quick test_build_structure;
        Alcotest.test_case "atomic clustering" `Quick test_atomic_clustering;
        Alcotest.test_case "graph connected" `Quick test_graph_connected;
      ] );
    ( "oo7.traversal",
      [
        Alcotest.test_case "update counts" `Quick test_traversal_counts;
        Alcotest.test_case "t3 preserves index" `Quick test_t3_preserves_index;
        Alcotest.test_case "t2 updates data" `Quick test_t2_actually_updates;
        Alcotest.test_case "read-only no mutation" `Quick
          test_readonly_traversals_no_mutation;
        Alcotest.test_case "names roundtrip" `Quick test_traversal_names;
      ] );
    ( "oo7.coherency",
      [
        Alcotest.test_case "T2-B propagates" `Quick
          test_traversal_propagates_to_peer;
        Alcotest.test_case "T3-A propagates index" `Quick
          test_t3_propagates_index_updates;
        Alcotest.test_case "profile plausible" `Quick test_profile_plausible;
        Alcotest.test_case "two writers converge" `Quick
          test_consecutive_traversals_two_writers;
        Alcotest.test_case "small-config anchors" `Slow
          test_small_config_table3_anchors;
      ] );
    ( "oo7.fullsuite",
      [
        Alcotest.test_case "T4 document scan" `Quick test_t4_scans_documents;
        Alcotest.test_case "T5 document update" `Quick test_t5_updates_documents;
        Alcotest.test_case "T7 single assembly" `Quick test_t7_visits_one_assembly;
        Alcotest.test_case "queries" `Quick test_queries;
        Alcotest.test_case "insert/delete composites" `Quick
          test_insert_and_delete_composites;
        Alcotest.test_case "delete unknown rejected" `Quick
          test_delete_unknown_composite_rejected;
        Alcotest.test_case "structural insert propagates" `Quick
          test_structural_insert_propagates;
      ] );
    ( "oo7.adaptive",
      [
        Alcotest.test_case "T3-C ships the command" `Quick
          test_adaptive_t3c_command_encoding;
        Alcotest.test_case "default stays value-encoded" `Quick
          test_value_mode_unchanged_by_default;
      ] );
  ]
