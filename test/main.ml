let () =
  Alcotest.run "lbc"
    (List.concat [ Test_util.suites; Test_sim.suites; Test_storage.suites; Test_net.suites; Test_wal.suites; Test_rvm.suites; Test_locks.suites; Test_core.suites; Test_pheap.suites; Test_oo7.suites; Test_dsm.suites; Test_chaos.suites; Test_analysis.suites; Test_obs.suites; Test_explore.suites; Test_real.suites ])
