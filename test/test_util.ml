(* Tests for the lbc.util substrate: CRC-32, codecs, RNG, stats, pqueue. *)

open Lbc_util

let check_int32 = Alcotest.(check int32)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Crc32 *)

let test_crc_known_vector () =
  (* The standard CRC-32 check value. *)
  check_int32 "crc(123456789)" 0xCBF43926l (Crc32.string "123456789")

let test_crc_empty () = check_int32 "crc(empty)" 0l (Crc32.string "")

let test_crc_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let direct = Crc32.string s in
  let a = String.sub s 0 10 and b = String.sub s 10 (String.length s - 10) in
  let crc = Crc32.update_string (Crc32.update_string Crc32.empty a) b in
  check_int32 "incremental = one-shot" direct (Crc32.finish crc)

let test_crc_bounds () =
  let b = Bytes.create 4 in
  Alcotest.check_raises "out of bounds" (Invalid_argument "Crc32.update")
    (fun () -> ignore (Crc32.update Crc32.empty b ~pos:2 ~len:3))

let prop_crc_detects_flip =
  QCheck.Test.make ~name:"crc detects single-byte flip" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 64)) small_nat)
    (fun (s, i) ->
      QCheck.assume (String.length s > 0);
      let i = i mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
      Crc32.string s <> Crc32.bytes b ~pos:0 ~len:(Bytes.length b))

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_roundtrip_fixed () =
  let w = Codec.writer () in
  Codec.u8 w 0xAB;
  Codec.u16 w 0xBEEF;
  Codec.u32 w 0xDEADBEEF;
  Codec.u64 w 0x0123456789ABCDEFL;
  Codec.int_as_u64 w max_int;
  Codec.raw_string w "hello";
  let r = Codec.reader (Codec.contents w) in
  check_int "u8" 0xAB (Codec.get_u8 r);
  check_int "u16" 0xBEEF (Codec.get_u16 r);
  check_int "u32" 0xDEADBEEF (Codec.get_u32 r);
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Codec.get_u64 r);
  check_int "int_as_u64" max_int (Codec.get_int_as_u64 r);
  Alcotest.(check string) "raw" "hello"
    (Bytes.to_string (Codec.get_raw r ~len:5));
  check_int "exhausted" 0 (Codec.remaining r)

let test_codec_truncated () =
  let r = Codec.reader (Bytes.of_string "\x01") in
  ignore (Codec.get_u8 r);
  Alcotest.check_raises "truncated u8" (Codec.Truncated "u8") (fun () ->
      ignore (Codec.get_u8 r))

let test_codec_patch () =
  let w = Codec.writer () in
  Codec.u8 w 0x11;
  let at = Codec.length w in
  Codec.u32 w 0;
  Codec.u8 w 0x22;
  Codec.patch_u32 w ~at 0xCAFEBABE;
  let r = Codec.reader (Codec.contents w) in
  check_int "before" 0x11 (Codec.get_u8 r);
  check_int "patched" 0xCAFEBABE (Codec.get_u32 r);
  check_int "after" 0x22 (Codec.get_u8 r)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(oneof [ small_nat; int_range 0 max_int ])
    (fun n ->
      let w = Codec.writer () in
      Codec.varint w n;
      let r = Codec.reader (Codec.contents w) in
      Codec.get_varint r = n && Codec.remaining r = 0)

let prop_u32_roundtrip =
  QCheck.Test.make ~name:"u32 roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun n ->
      let w = Codec.writer () in
      Codec.u32 w n;
      Codec.get_u32 (Codec.reader (Codec.contents w)) = n)

(* ------------------------------------------------------------------ *)
(* Slice *)

let test_slice_windows_share_base () =
  let b = Bytes.of_string "0123456789" in
  let s = Slice.of_bytes ~pos:2 ~len:6 b in
  check_int "length" 6 (Slice.length s);
  Alcotest.(check char) "get" '2' (Slice.get s 0);
  let sub = Slice.sub s ~pos:1 ~len:3 in
  Alcotest.(check string) "sub window" "345" (Slice.to_string sub);
  Alcotest.(check bool) "same base, no copy" true (Slice.base sub == b);
  check_int "sub pos is absolute" 3 (Slice.pos sub);
  (* The window observes later mutation of the shared buffer. *)
  Bytes.set b 3 'X';
  Alcotest.(check string) "shared" "X45" (Slice.to_string sub)

let test_slice_iov () =
  let iov =
    [ Slice.of_string "ab"; Slice.of_string ""; Slice.of_string "cde" ]
  in
  check_int "iov_length" 5 (Slice.iov_length iov);
  Alcotest.(check string) "concat" "abcde"
    (Bytes.to_string (Slice.concat iov))

let test_slice_copy_accounting () =
  Slice.reset_counters ();
  let s = Slice.of_bytes (Bytes.of_string "0123456789") in
  let sub = Slice.sub s ~pos:0 ~len:4 in
  ignore (Slice.base sub);
  check_int "windowing copies nothing" 0 (Slice.bytes_copied ());
  ignore (Slice.to_bytes sub);
  check_int "to_bytes counted" 4 (Slice.bytes_copied ());
  Slice.count_saved 10;
  check_int "baseline = copied + saved" 14 (Slice.bytes_copied_baseline ());
  Slice.reset_counters ();
  check_int "reset" 0 (Slice.bytes_copied ())

let test_arena_patch_in_place () =
  let a = Slice.Arena.create ~capacity:4 () in
  Slice.Arena.add_string a "heXlo";
  Slice.Arena.set_byte a ~at:2 (Char.code 'l');
  Alcotest.(check string) "set_byte" "hello"
    (Slice.to_string (Slice.Arena.contents a));
  Slice.Arena.patch a ~at:0 (Bytes.of_string "HE");
  Alcotest.(check string) "patch" "HEllo"
    (Slice.to_string (Slice.Arena.contents a));
  Slice.Arena.clear a;
  check_int "clear" 0 (Slice.Arena.length a)

let test_patch_u32_large_buffer () =
  (* Regression: patching a length field inside a buffer much larger
     than 64 KiB must be O(1) in-place, not a copy of the whole buffer.
     The old Buffer-based writer did to_bytes + blit + re-add — O(n). *)
  let w = Codec.writer () in
  Codec.u32 w 0;  (* placeholder at offset 0 *)
  for i = 1 to 80_000 do
    Codec.u8 w (i land 0xff)
  done;
  let at = Codec.length w in
  Codec.u32 w 0;  (* second placeholder, past 64 KiB *)
  Codec.raw_string w "tail";
  Slice.reset_counters ();
  Codec.patch_u32 w ~at:0 0xAAAAAAAA;
  Codec.patch_u32 w ~at 0xBBBBBBBB;
  check_int "patches copy nothing" 0 (Slice.bytes_copied ());
  let b = Codec.contents w in
  check_int "first patched" 0xAAAAAAAA
    (Codec.get_u32 (Codec.reader b));
  let r = Codec.reader b in
  Codec.skip r at;
  check_int "second patched (inside >64 KiB buffer)" 0xBBBBBBBB
    (Codec.get_u32 r);
  check_int "bytes before intact" (80_000 land 0xff)
    (Char.code (Bytes.get b (at - 1)));
  Alcotest.(check string) "bytes after intact" "tail"
    (Bytes.sub_string b (at + 4) 4)

let test_reader_of_slices_spans_segments () =
  (* A segmented reader must decode fields that straddle segment
     boundaries — the decode side of gather lists. *)
  let w = Codec.writer () in
  Codec.u16 w 0xBEEF;
  Codec.u32 w 0xDEADBEEF;
  Codec.varint w 300;
  Codec.raw_string w "payload";
  let b = Codec.contents w in
  (* Split into 3-byte segments. *)
  let rec split pos =
    if pos >= Bytes.length b then []
    else
      let len = min 3 (Bytes.length b - pos) in
      Slice.of_bytes ~pos ~len b :: split (pos + len)
  in
  let r = Codec.reader_of_slices (split 0) in
  check_int "u16 across segments" 0xBEEF (Codec.get_u16 r);
  check_int "u32 across segments" 0xDEADBEEF (Codec.get_u32 r);
  check_int "varint across segments" 300 (Codec.get_varint r);
  Alcotest.(check string) "raw across segments" "payload"
    (Bytes.to_string (Codec.get_raw r ~len:7));
  check_int "exhausted" 0 (Codec.remaining r)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* After splitting, the two generators should not produce the same
     stream. *)
  let same = ref true in
  for _ = 1 to 16 do
    if Rng.int64 a <> Rng.int64 b then same := false
  done;
  Alcotest.(check bool) "streams diverge" false !same

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds" ~count:300
    QCheck.(pair small_nat (int_range 1 10_000))
    (fun (seed, bound) ->
      let t = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int t bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_rng_shuffle_permutes () =
  let t = Rng.create 3 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s);
  (* Sample variance of this classic data set is 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance s)

let test_stats_merge () =
  let all = Stats.create () and a = Stats.create () and b = Stats.create () in
  let data = List.init 37 (fun i -> float_of_int (i * i) /. 3.0) in
  List.iteri
    (fun i x ->
      Stats.add all x;
      Stats.add (if i mod 2 = 0 then a else b) x)
    data;
  let m = Stats.merge a b in
  check_int "count" (Stats.count all) (Stats.count m);
  Alcotest.(check (float 1e-6)) "mean" (Stats.mean all) (Stats.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Stats.variance all)
    (Stats.variance m)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stats.variance s)

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_ordering () =
  let q = Pqueue.create ~compare:Int.compare in
  List.iter (Pqueue.push q) [ 5; 1; 4; 1; 3; 9; 2 ];
  let drained = List.init 7 (fun _ -> Pqueue.pop_exn q) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  (* Equal keys must come out in insertion order (determinism). *)
  let q = Pqueue.create ~compare:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter (Pqueue.push q) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let tags = List.init 4 (fun _ -> snd (Pqueue.pop_exn q)) in
  Alcotest.(check (list string)) "fifo ties" [ "z"; "a"; "b"; "c" ] tags

let test_pqueue_to_list_nondestructive () =
  let q = Pqueue.create ~compare:Int.compare in
  List.iter (Pqueue.push q) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Pqueue.to_list q);
  check_int "length unchanged" 3 (Pqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Pqueue.peek q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let q = Pqueue.create ~compare:Int.compare in
      List.iter (Pqueue.push q) xs;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some v -> drain (v :: acc)
      in
      drain [] = List.sort compare xs)

(* Same-key entries must drain in push order for arbitrary key streams —
   the engine's schedule determinism rides on this, so it gets its own
   property beyond the fixed-vector test above. *)
let prop_pqueue_stable_ties =
  QCheck.Test.make ~name:"pqueue same-key entries drain in push order"
    ~count:300
    QCheck.(list (int_bound 7))
    (fun keys ->
      let q = Pqueue.create ~compare:(fun (a, _) (b, _) -> Int.compare a b) in
      List.iteri (fun i k -> Pqueue.push q (k, i)) keys;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some v -> drain (v :: acc)
      in
      (* A stable sort of (key, push index) by key alone is exactly the
         required drain order. *)
      drain []
      = List.stable_sort
          (fun (a, _) (b, _) -> Int.compare a b)
          (List.mapi (fun i k -> (k, i)) keys))

(* Interleaved pushes and pops against a sorted-list model: after any
   operation sequence the queue and the model agree on every
   observation (pop results, peek, length). *)
let prop_pqueue_model =
  QCheck.Test.make ~name:"pqueue matches sorted-list model" ~count:300
    QCheck.(list (option (int_bound 100)))
    (fun ops ->
      (* [Some k] pushes k; [None] pops. *)
      let q = Pqueue.create ~compare:Int.compare in
      let model = ref [] in
      List.for_all
        (fun op ->
          let op_ok =
            match op with
            | Some k ->
                Pqueue.push q k;
                model := List.merge compare [ k ] !model;
                true
            | None -> (
                match (Pqueue.pop q, !model) with
                | Some v, m :: rest when v = m ->
                    model := rest;
                    true
                | None, [] -> true
                | _ -> false)
          in
          op_ok
          && Pqueue.length q = List.length !model
          && Pqueue.peek q = (match !model with [] -> None | m :: _ -> Some m))
        ops)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "util.crc32",
      [
        Alcotest.test_case "known vector" `Quick test_crc_known_vector;
        Alcotest.test_case "empty" `Quick test_crc_empty;
        Alcotest.test_case "incremental" `Quick test_crc_incremental;
        Alcotest.test_case "bounds" `Quick test_crc_bounds;
        qtest prop_crc_detects_flip;
      ] );
    ( "util.codec",
      [
        Alcotest.test_case "roundtrip fixed" `Quick test_codec_roundtrip_fixed;
        Alcotest.test_case "truncated" `Quick test_codec_truncated;
        Alcotest.test_case "patch_u32" `Quick test_codec_patch;
        Alcotest.test_case "patch_u32 in >64 KiB buffer" `Quick
          test_patch_u32_large_buffer;
        Alcotest.test_case "segmented reader" `Quick
          test_reader_of_slices_spans_segments;
        qtest prop_varint_roundtrip;
        qtest prop_u32_roundtrip;
      ] );
    ( "util.slice",
      [
        Alcotest.test_case "windows share the base" `Quick
          test_slice_windows_share_base;
        Alcotest.test_case "gather lists" `Quick test_slice_iov;
        Alcotest.test_case "copy accounting" `Quick test_slice_copy_accounting;
        Alcotest.test_case "arena patches in place" `Quick
          test_arena_patch_in_place;
      ] );
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        qtest prop_rng_int_in_bounds;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "merge" `Quick test_stats_merge;
        Alcotest.test_case "empty" `Quick test_stats_empty;
      ] );
    ( "util.pqueue",
      [
        Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
        Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
        Alcotest.test_case "to_list nondestructive" `Quick
          test_pqueue_to_list_nondestructive;
        qtest prop_pqueue_sorts;
        qtest prop_pqueue_stable_ties;
        qtest prop_pqueue_model;
      ] );
  ]
