(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4).

   Usage:
     bench/main.exe              regenerate everything
     bench/main.exe table2      (also: table3 fig1 fig2 fig3 fig4 fig5
                                 fig6 fig7 fig8 ablations macro validate
                                 bechamel)

   Absolute numbers come from the paper's cost model (Alpha 3000-400,
   OSF/1, AN1 — Table 2); host-measured numbers are labelled as such.
   EXPERIMENTS.md records paper-vs-measured for each experiment. *)

open Lbc_oo7
open Lbc_costmodel

let pr fmt = Format.printf fmt

let hr title =
  pr "@.=====================================================================@.";
  pr "%s@." title;
  pr "=====================================================================@."

(* ------------------------------------------------------------------ *)
(* Traversal profiles on the paper-scale database (cached; each run uses
   a fresh cluster, as each paper test ran on a fresh database). *)

let small = Schema.small

let profile_cache : (string, Runner.outcome) Hashtbl.t = Hashtbl.create 16

let outcome_for kind =
  let key = Traversal.name kind in
  match Hashtbl.find_opt profile_cache key with
  | Some o -> o
  | None ->
      let cluster = Runner.setup ~nodes:2 small in
      let o = Runner.run ~cluster ~writer:0 small kind in
      Hashtbl.add profile_cache key o;
      o

(* Paper's Table 3 (updates, bytes updated, message bytes, pages). *)
let table3_paper =
  [
    ("T12-A", (2_187, 4_000, 6_000, 500));
    ("T12-C", (8_748, 4_000, 6_000, 500));
    ("T2-A", (2_187, 4_000, 6_000, 500));
    ("T2-B", (43_740, 80_000, 120_000, 618));
    ("T2-C", (174_960, 80_000, 120_000, 618));
    ("T3-A", (16_924, 31_300, 39_000, 552));
    ("T3-B", (248_632, 114_650, 163_300, 667));
    ("T3-C", (1_502_708, 115_100, 163_800, 670));
  ]

(* ------------------------------------------------------------------ *)
(* Host micro-measurements (wall clock on this machine) *)

let time_ns f n =
  let t0 = Unix.gettimeofday () in
  f ();
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int n

let measure_page_copy () =
  let src = Bytes.make 8192 'a' and dst = Bytes.make 8192 'b' in
  let n = 20_000 in
  time_ns (fun () -> for _ = 1 to n do Bytes.blit src 0 dst 0 8192 done) n

let measure_page_compare () =
  let a = Bytes.make 8192 'a' and b = Bytes.make 8192 'a' in
  let n = 20_000 in
  let sink = ref true in
  let ns = time_ns (fun () -> for _ = 1 to n do sink := Bytes.equal a b done) n in
  ignore !sink;
  ns

(* One transaction of [n] set_range calls in the given pattern; returns
   host ns per call. *)
type pattern = Ordered | Unordered | Redundant

let measure_set_range pattern n =
  let region_size = 16 * 1024 * 1024 in
  let rvm =
    Lbc_rvm.Rvm.init ~node:0 ~log_dev:(Lbc_storage.Dev.create ())
      ~options:{ Lbc_rvm.Rvm.default_options with Lbc_rvm.Rvm.disk_logging = false }
      ()
  in
  ignore
    (Lbc_rvm.Rvm.map_region rvm ~id:0 ~db:(Lbc_storage.Dev.create ())
       ~size:region_size);
  let offsets =
    match pattern with
    | Ordered -> Array.init n (fun i -> i * 16 mod (region_size - 16))
    | Unordered ->
        let a = Array.init n (fun i -> i * 16 mod (region_size - 16)) in
        Lbc_util.Rng.shuffle (Lbc_util.Rng.create 11) a;
        a
    | Redundant -> Array.make n 4096
  in
  let txn = Lbc_rvm.Rvm.begin_txn rvm in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun offset -> Lbc_rvm.Rvm.set_range txn ~region:0 ~offset ~len:8) offsets;
  let t1 = Unix.gettimeofday () in
  ignore (Lbc_rvm.Rvm.commit txn);
  (t1 -. t0) *. 1e9 /. float_of_int n

(* ------------------------------------------------------------------ *)
(* Table 2 *)

let table2 () =
  hr "Table 2: operation costs per 8 KB page (paper: Alpha/OSF-1/AN1)";
  pr "%-36s %10s %14s@." "operation" "paper (µs)" "host (ns, meas.)";
  let copy = measure_page_copy () and cmp = measure_page_compare () in
  pr "%-36s %10.1f %14.0f@." "page copy (cold cache)" Table2.page_copy_cold copy;
  pr "%-36s %10.1f %14s@." "page copy (warm cache)" Table2.page_copy_warm "-";
  pr "%-36s %10.1f %14.0f@." "page compare (cold cache)" Table2.page_compare_cold cmp;
  pr "%-36s %10.1f %14s@." "page compare (warm cache)" Table2.page_compare_warm "-";
  pr "%-36s %10.1f %14s@." "page send (TCP/IP)" Table2.page_send_tcp "simulated";
  pr "%-36s %10.1f %14s@." "handle signal + change protection"
    Table2.trap_and_protect "simulated";
  pr "@.Derived: raw TCP %.4f µs/B; calibrated small-transfer %.4f µs/B@."
    Table2.tcp_per_byte Table2.calibrated_per_byte

(* ------------------------------------------------------------------ *)
(* Table 3 *)

let table3 () =
  hr "Table 3: OO7 update-traversal characteristics (paper vs measured)";
  pr "%-7s | %21s | %21s | %21s | %17s@." "trav"
    "updates (paper/ours)" "bytes upd (p/o)" "message bytes (p/o)" "pages (p/o)";
  pr "--------+-----------------------+-----------------------+-----------------------+------------------@.";
  List.iter
    (fun kind ->
      let name = Traversal.name kind in
      let u, b, m, pg = List.assoc name table3_paper in
      let o = outcome_for kind in
      let p = o.Runner.profile in
      pr "%-7s | %9d / %9d | %9d / %9d | %9d / %9d | %7d / %7d@." name u
        p.Model.updates b p.Model.unique_bytes m p.Model.message_bytes pg
        p.Model.pages_updated)
    Traversal.table3_kinds

(* ------------------------------------------------------------------ *)
(* Figures 1-3: per-traversal overhead breakdown, Log vs Cpy/Cmp vs Page *)

let print_traversal_bars kinds =
  pr "%-7s %-8s %10s %10s %10s %10s %12s@." "trav" "proto" "detect" "collect"
    "network" "apply" "total (ms)";
  List.iter
    (fun kind ->
      let o = outcome_for kind in
      let p = o.Runner.profile in
      let rows =
        [
          ("Log", Model.log_phases p);
          ("Cpy/Cmp", Model.cpycmp_phases p);
          ("Page", Model.page_phases p);
        ]
      in
      List.iter
        (fun (proto, ph) ->
          let ms v = v /. 1000.0 in
          pr "%-7s %-8s %10.2f %10.2f %10.2f %10.2f %12.2f@."
            (Traversal.name kind) proto (ms ph.Phases.detect)
            (ms ph.Phases.collect) (ms ph.Phases.network) (ms ph.Phases.apply)
            (ms (Phases.total ph)))
        rows;
      pr "@.")
    kinds

let fig1 () =
  hr "Figure 1: sparse-update traversals T12-A, T12-C (overhead, ms)";
  print_traversal_bars [ Traversal.T12 Traversal.A; Traversal.T12 Traversal.C ]

let fig2 () =
  hr "Figure 2: full-update traversals T2-A/B/C and index traversal T3-A";
  print_traversal_bars
    [
      Traversal.T2 Traversal.A;
      Traversal.T2 Traversal.B;
      Traversal.T2 Traversal.C;
      Traversal.T3 Traversal.A;
    ]

let fig3 () =
  hr "Figure 3: index-update traversals T3-B, T3-C";
  print_traversal_bars [ Traversal.T3 Traversal.B; Traversal.T3 Traversal.C ]

(* ------------------------------------------------------------------ *)
(* Figure 4 *)

let fig4 () =
  hr "Figure 4: overhead vs modified bytes per page";
  List.iter
    (fun rate ->
      let rname = match rate with Curves.Raw -> "raw Table-2 rate" | Curves.Calibrated -> "calibrated rate" in
      pr "@.[%s: %.4f µs/B]@." rname (Curves.per_byte rate);
      pr "%-18s %10s %10s %10s@." "bytes/page" "Log (µs)" "Cpy/Cmp" "Page";
      List.iter
        (fun bytes ->
          pr "%-18d %10.1f %10.1f %10.1f@." bytes
            (Curves.fig4_log rate ~bytes)
            (Curves.fig4_cpycmp rate ~bytes)
            Curves.fig4_page)
        [ 0; 512; 1024; 2048; 3072; 4096; 5120; 6144; 7168; 8192 ];
      pr "Page beats Cpy/Cmp above %.0f modified bytes/page (paper: 1037)@."
        (Curves.page_vs_cpycmp_breakeven rate))
    [ Curves.Calibrated; Curves.Raw ]

(* ------------------------------------------------------------------ *)
(* Figures 5 and 6 *)

let fig56 ~big () =
  hr
    (if big then
       "Figure 6: per-update overhead up to 300,000 updates/transaction"
     else "Figure 5: per-update overhead vs updates per transaction");
  let counts =
    if big then [ 1_000; 10_000; 50_000; 100_000; 200_000; 300_000 ]
    else [ 100; 500; 1_000; 2_000; 3_000; 4_000; 5_000 ]
  in
  pr "%-12s | %9s %9s %9s | %11s %11s %11s@." "updates/txn" "unord(µs)"
    "ord(µs)" "redun(µs)" "unord(ns)" "ord(ns)" "redun(ns)";
  pr "%-12s | %29s | %35s@." "" "paper-calibrated model" "host-measured (ours)";
  List.iter
    (fun n ->
      let model cls = Model.per_update_cost cls ~nth:n in
      let mu = measure_set_range Unordered n in
      let mo = measure_set_range Ordered n in
      let mr = measure_set_range Redundant n in
      pr "%-12d | %9.1f %9.1f %9.1f | %11.0f %11.0f %11.0f@." n
        (model Model.Unordered) (model Model.Ordered) (model Model.Redundant)
        mu mo mr)
    counts

(* ------------------------------------------------------------------ *)
(* Figure 7 *)

let fig7 () =
  hr "Figure 7: breakeven updates/page vs per-update cost";
  pr "%-22s %18s %22s@." "per-update cost (µs)" "OSF/1 trap (360µs)"
    "fast trap (10µs)";
  List.iter
    (fun c ->
      pr "%-22.1f %18.1f %22.1f@." c
        (Curves.fig7_standard ~per_update_cost:c)
        (Curves.fig7_fast_trap ~per_update_cost:c))
    [ 5.0; 7.5; 10.0; 12.5; 15.0; 18.1; 20.0; 25.0; 30.0 ];
  pr "@.Check (Section 4.3): at 1000 updates/txn the unordered cost is %.1f µs@."
    (Model.per_update_cost Model.Unordered ~nth:1000);
  pr "-> breakeven %.0f updates/page (paper: 45); ordered %.1f µs -> %.0f (paper: 55)@."
    (Curves.fig7_standard
       ~per_update_cost:(Model.per_update_cost Model.Unordered ~nth:1000))
    (Model.per_update_cost Model.Ordered ~nth:1000)
    (Curves.fig7_standard
       ~per_update_cost:(Model.per_update_cost Model.Ordered ~nth:1000))

(* ------------------------------------------------------------------ *)
(* Figure 8: coherency vs recoverability overheads for T12-A *)

let fig8 () =
  hr "Figure 8: T12-A — log-based coherency vs disk logging vs plain RVM";
  let o = outcome_for (Traversal.T12 Traversal.A) in
  let p = o.Runner.profile in
  let log_ph = Model.log_phases p in
  (* Disk variant: add the synchronous force of the on-disk log tail
     (104-byte RVM range headers). *)
  let disk_bytes =
    Lbc_wal.Record.encoded_size o.Runner.record
  in
  let with_disk =
    Phases.add log_ph (Phases.disk (Model.disk_force ~bytes:disk_bytes))
  in
  (* Plain RVM (no coherency): detection + collection only. *)
  let detect_only =
    Phases.add
      (Phases.detect log_ph.Phases.detect)
      (Phases.collect log_ph.Phases.collect)
  in
  (* Standard RVM: set_range without the exact-match optimization is ~5x
     more expensive per call (paper Section 3.1). *)
  let std_detect = 5.0 *. log_ph.Phases.detect in
  let standard_rvm =
    Phases.add (Phases.detect std_detect) (Phases.collect log_ph.Phases.collect)
  in
  let row name ph = pr "%-28s %a@." name Phases.pp_ms ph in
  row "log-based coherency" log_ph;
  row "log-based coherency (disk)" with_disk;
  row "optimized RVM (no coherency)" detect_only;
  row "standard RVM" standard_rvm;
  pr "@.(on-disk log tail for the disk variant: %d bytes incl. 104-byte headers)@."
    disk_bytes

(* ------------------------------------------------------------------ *)
(* End-to-end validation: the simulated Log run (costs charged as virtual
   time) should agree with the analytic Log phases. *)

let validate () =
  hr "Validation: simulated end-to-end T12-A vs analytic model";
  let cluster =
    Runner.setup ~config:Lbc_core.Config.measured ~nodes:2 small
  in
  let o = Runner.run ~cluster ~writer:0 small (Traversal.T12 Traversal.A) in
  let ph = Model.log_phases o.Runner.profile in
  pr "simulated elapsed (writer, virtual µs): %12.1f@." o.Runner.elapsed;
  pr "model total Log overhead:               %12.1f@." (Phases.total ph);
  pr "model w/o receiver apply:               %12.1f@."
    (Phases.total ph -. ph.Phases.apply);
  pr "(simulated elapsed excludes the receiver's apply, which overlaps)@."

(* ------------------------------------------------------------------ *)
(* Ablations (design choices called out in DESIGN.md) *)

let ablation_headers () =
  hr "Ablation: compressed wire headers vs RVM's 104-byte headers";
  pr "%-7s %16s %16s %8s@." "trav" "compressed (B)" "full headers (B)" "ratio";
  List.iter
    (fun kind ->
      let o = outcome_for kind in
      let c = Lbc_core.Wire.size o.Runner.record in
      let f = Lbc_core.Wire.size_uncompressed o.Runner.record in
      pr "%-7s %16d %16d %8.2f@." (Traversal.name kind) c f
        (float_of_int f /. float_of_int c))
    Traversal.table3_kinds

let ablation_lazy () =
  hr "Ablation: eager vs lazy propagation (paper Section 2.2)";
  (* Writer commits 20 transactions; the reader acquires once at the end.
     Eager sends every commit; lazy sends only what the reader needs. *)
  let run config =
    let c = Lbc_core.Cluster.create ~config ~nodes:2 () in
    Lbc_core.Cluster.add_region c ~id:0 ~size:65536;
    Lbc_core.Cluster.map_region_all c ~region:0;
    Lbc_core.Cluster.spawn c ~node:0 (fun node ->
        for i = 1 to 20 do
          let txn = Lbc_core.Node.Txn.begin_ node in
          Lbc_core.Node.Txn.acquire txn 0;
          Lbc_core.Node.Txn.set_u64 txn ~region:0 ~offset:(8 * i)
            (Int64.of_int i);
          Lbc_core.Node.Txn.commit txn
        done);
    Lbc_core.Cluster.spawn c ~node:1 (fun node ->
        Lbc_sim.Proc.sleep 1_000_000.0;
        let txn = Lbc_core.Node.Txn.begin_ node in
        Lbc_core.Node.Txn.acquire txn 0;
        Lbc_core.Node.Txn.commit txn);
    Lbc_core.Cluster.run c;
    ( Lbc_core.Cluster.total_messages c,
      Lbc_core.Cluster.total_bytes c,
      Lbc_core.Node.get_u64 (Lbc_core.Cluster.node c 1) ~region:0 ~offset:160 )
  in
  let em, eb, ev = run Lbc_core.Config.default in
  let lm, lb, lv =
    run { Lbc_core.Config.default with Lbc_core.Config.propagation = Lbc_core.Config.Lazy }
  in
  pr "eager: %3d messages, %6d bytes (reader sees %Ld)@." em eb ev;
  pr "lazy : %3d messages, %6d bytes (reader sees %Ld)@." lm lb lv;
  pr "(lazy batches 20 commits into one fetch round-trip)@."

let ablation_adaptive () =
  hr "Ablation: adaptive hybrid protocol choice (paper Section 6)";
  let a = Lbc_dsm.Adaptive.create () in
  pr "breakeven density: %.1f updates/page@." (Lbc_dsm.Adaptive.breakeven a);
  List.iter
    (fun kind ->
      let o = outcome_for kind in
      let p = o.Runner.profile in
      Lbc_dsm.Adaptive.observe a ~lock:0 ~updates:p.Model.updates
        ~pages:p.Model.pages_updated;
      let choice = Lbc_dsm.Adaptive.choose a ~lock:0 in
      let log_t = Phases.total (Model.log_phases p) in
      let cc_t = Phases.total (Model.cpycmp_phases p) in
      pr "%-7s density %8.1f -> %-8s (Log %9.1f ms, Cpy/Cmp %9.1f ms; best: %s)@."
        (Traversal.name kind)
        (float_of_int p.Model.updates /. float_of_int (max 1 p.Model.pages_updated))
        (Lbc_dsm.Backend.kind_name choice)
        (log_t /. 1000.) (cc_t /. 1000.)
        (if log_t <= cc_t then "Log" else "Cpy/Cmp"))
    Traversal.table3_kinds

let ablation_scaling () =
  hr "Ablation: writer network I/O vs number of peer nodes (Section 4.3.1)";
  let p = (outcome_for (Traversal.T12 Traversal.A)).Runner.profile in
  pr "%-7s %18s %18s@." "peers" "unicast (ms)" "multicast (ms)";
  List.iter
    (fun peers ->
      pr "%-7d %18.2f %18.2f@." peers
        (Model.network_log ~message_bytes:p.Model.message_bytes ~peers /. 1000.)
        (Model.network_log ~message_bytes:p.Model.message_bytes ~peers:1 /. 1000.))
    [ 1; 2; 4; 8; 16; 32; 64 ];
  pr "(the paper: \"network I/O overhead of the writer increases linearly@.";
  pr " with the number of peer nodes ... systems with a very large number@.";
  pr " of clients will perform better with multicast hardware or lazy@.";
  pr " coherency\" — both are implemented; see core.multicast / core.lazy)@."

let ablation_nvram () =
  hr "Ablation: commit-path log force — disk vs NVRAM (Hagmann 1986)";
  let o = outcome_for (Traversal.T12 Traversal.A) in
  let bytes = Lbc_wal.Record.encoded_size o.Runner.record in
  let force (l : Lbc_storage.Latency.t) =
    l.Lbc_storage.Latency.sync_base
    +. (l.Lbc_storage.Latency.sync_per_byte *. float_of_int bytes)
  in
  pr "T12-A log tail: %d bytes@." bytes;
  pr "%-28s %12.2f ms@." "synchronous disk force"
    (force Lbc_storage.Latency.osdi94_disk /. 1000.);
  pr "%-28s %12.4f ms@." "battery-backed RAM force"
    (force Lbc_storage.Latency.nvram /. 1000.);
  pr "%-28s %12.2f ms@." "whole coherency overhead"
    (Phases.total (Model.log_phases o.Runner.profile) /. 1000.);
  pr "(NVRAM removes the synchronous write from the commit critical path,@.";
  pr " which is why the paper measures with disk logging disabled)@."

let ablations () =
  ablation_headers ();
  ablation_lazy ();
  ablation_adaptive ();
  ablation_scaling ();
  ablation_nvram ()

(* ------------------------------------------------------------------ *)
(* Macro benchmark: a multi-node collaborative-editing workload compared
   across propagation policies (not in the paper; exercises the whole
   stack under contention with the paper's cost model). *)

let macro () =
  hr "Macro: 4-node collaborative workload across propagation policies";
  let nodes = 4 and region = 0 and locks = 8 and txns_per_node = 50 in
  let region_size = 256 * 1024 in
  let run name config =
    let c = Lbc_core.Cluster.create ~config ~nodes () in
    Lbc_core.Cluster.add_region c ~id:region ~size:region_size;
    Lbc_core.Cluster.map_region_all c ~region;
    let rng = Lbc_util.Rng.create 42 in
    for n = 0 to nodes - 1 do
      let rng = Lbc_util.Rng.split rng in
      Lbc_core.Cluster.spawn c ~node:n (fun node ->
          for _ = 1 to txns_per_node do
            (* 75% home segment, 25% anywhere: mostly-private sharing. *)
            let lock =
              if Lbc_util.Rng.int rng 4 > 0 then n * (locks / nodes)
              else Lbc_util.Rng.int rng locks
            in
            let txn = Lbc_core.Node.Txn.begin_ node in
            Lbc_core.Node.Txn.acquire txn lock;
            let span = region_size / locks in
            for _ = 1 to 4 do
              let offset =
                (lock * span) + (8 * Lbc_util.Rng.int rng (span / 8))
              in
              Lbc_core.Node.Txn.set_u64 txn ~region ~offset
                (Lbc_util.Rng.int64 rng)
            done;
            Lbc_core.Node.Txn.commit txn;
            Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 500.0)
          done)
    done;
    Lbc_core.Cluster.run c;
    (* Convergence: lazy needs a final pull. *)
    (if config.Lbc_core.Config.propagation = Lbc_core.Config.Lazy then begin
       for n = 0 to nodes - 1 do
         Lbc_core.Cluster.spawn c ~node:n (fun node ->
             let txn = Lbc_core.Node.Txn.begin_ node in
             for l = 0 to locks - 1 do
               Lbc_core.Node.Txn.acquire txn l
             done;
             Lbc_core.Node.Txn.commit txn)
       done;
       Lbc_core.Cluster.run c
     end);
    let image n =
      Lbc_core.Node.read (Lbc_core.Cluster.node c n) ~region ~offset:0
        ~len:region_size
    in
    for n = 1 to nodes - 1 do
      assert (Bytes.equal (image 0) (image n))
    done;
    pr "%-22s %10.1f ms %8d msgs %10d bytes@." name
      (Lbc_core.Cluster.now c /. 1000.0)
      (Lbc_core.Cluster.total_messages c)
      (Lbc_core.Cluster.total_bytes c)
  in
  pr "%-22s %13s %13s %15s@." "policy" "virtual time" "messages" "wire bytes";
  let measured = { Lbc_core.Config.measured with Lbc_core.Config.disk_logging = false } in
  run "eager" measured;
  run "eager + multicast" { measured with Lbc_core.Config.multicast = true };
  run "lazy (+final pulls)"
    { measured with Lbc_core.Config.propagation = Lbc_core.Config.Lazy };
  run "eager + disk logging"
    { measured with Lbc_core.Config.disk_logging = true };
  run "eager + disk + group commit"
    { measured with Lbc_core.Config.disk_logging = true; group_commit = true };
  pr "(200 transactions of 4 sparse 8-byte updates; 25%% cross-segment)@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmark suite: one Test.make per table/figure family *)

let bechamel () =
  hr "Bechamel micro-benchmarks (host wall-clock, ns/run)";
  let open Bechamel in
  let page_src = Bytes.make 8192 'a' and page_dst = Bytes.make 8192 'b' in
  let record =
    let o = outcome_for (Traversal.T2 Traversal.A) in
    o.Runner.record
  in
  let encoded = Lbc_core.Wire.encode record in
  let rvm_for_fig5 () =
    let rvm =
      Lbc_rvm.Rvm.init ~node:0 ~log_dev:(Lbc_storage.Dev.create ())
        ~options:
          { Lbc_rvm.Rvm.default_options with Lbc_rvm.Rvm.disk_logging = false }
        ()
    in
    ignore
      (Lbc_rvm.Rvm.map_region rvm ~id:0 ~db:(Lbc_storage.Dev.create ())
         ~size:(1 lsl 20));
    rvm
  in
  let tests =
    [
      (* Table 2 *)
      Test.make ~name:"table2/page_copy_8k"
        (Staged.stage (fun () -> Bytes.blit page_src 0 page_dst 0 8192));
      Test.make ~name:"table2/page_compare_8k"
        (Staged.stage (fun () -> ignore (Bytes.equal page_src page_dst)));
      (* Table 3 / Figures 1-3: the wire path *)
      Test.make ~name:"table3/wire_encode_T2A"
        (Staged.stage (fun () -> ignore (Lbc_core.Wire.encode record)));
      Test.make ~name:"table3/wire_decode_T2A"
        (Staged.stage (fun () -> ignore (Lbc_core.Wire.decode encoded)));
      (* Figures 5-6: set_range paths *)
      Test.make ~name:"fig5/set_range_txn_1000_ordered"
        (Staged.stage (fun () ->
             let rvm = rvm_for_fig5 () in
             let txn = Lbc_rvm.Rvm.begin_txn rvm in
             for i = 0 to 999 do
               Lbc_rvm.Rvm.set_range txn ~region:0 ~offset:(i * 16) ~len:8
             done;
             ignore (Lbc_rvm.Rvm.commit txn)));
      (* Figure 8: recoverability path *)
      Test.make ~name:"fig8/record_encode_disk"
        (Staged.stage (fun () -> ignore (Lbc_wal.Record.encode record)));
      Test.make ~name:"fig8/crc32_4k"
        (Staged.stage (fun () ->
             ignore (Lbc_util.Crc32.bytes page_src ~pos:0 ~len:4096)));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark (Test.make_grouped ~name:"lbc" ~fmt:"%s %s" tests) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> pr "%-40s %12.1f ns/run@." name est
      | _ -> pr "%-40s %12s@." name "n/a")
    results

(* ------------------------------------------------------------------ *)
(* Recovery benchmark: serial vs partitioned replay of a merged log over
   a home-segment workload (one lock/region per node, so the closure
   splits into one partition per node), plus the incremental fuzzy
   checkpoint's slice overhead.  Feeds the "recovery" block of the JSON
   output below. *)

type recovery_bench = {
  rb_nodes : int;
  rb_records : int;
  rb_partitions : int;
  rb_serial_us : float;
  rb_partitioned_us : float;
  rb_identical : bool;
  rb_ckpt_slices : int;
  rb_ckpt_bytes : int;
  rb_ckpt_us : float;
}

let recovery_bench () =
  let nodes = 8 and txns_per_node = 25 in
  let region_size = 64 * 1024 in
  let config =
    { Lbc_core.Config.default with Lbc_core.Config.charge_costs = true }
  in
  let c = Lbc_core.Cluster.create ~config ~nodes () in
  for r = 0 to nodes - 1 do
    Lbc_core.Cluster.add_region c ~id:r ~size:region_size;
    Lbc_core.Cluster.map_region_all c ~region:r
  done;
  let rng = Lbc_util.Rng.create 77 in
  for n = 0 to nodes - 1 do
    let rng = Lbc_util.Rng.split rng in
    Lbc_core.Cluster.spawn c ~node:n (fun node ->
        for _ = 1 to txns_per_node do
          let txn = Lbc_core.Node.Txn.begin_ node in
          Lbc_core.Node.Txn.acquire txn n;
          Lbc_core.Node.Txn.set_u64 txn ~region:n
            ~offset:(8 * Lbc_util.Rng.int rng (region_size / 8))
            (Lbc_util.Rng.int64 rng);
          Lbc_core.Node.Txn.commit txn;
          Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 20.0)
        done)
  done;
  Lbc_core.Cluster.run c;
  let images () =
    List.init nodes (fun r ->
        Lbc_storage.Dev.stable_snapshot (Lbc_core.Cluster.region_dev c r))
  in
  let outcome_s, serial_us =
    Lbc_core.Cluster.timed_recovery c ~mode:Lbc_core.Cluster.Serial
  in
  let serial_images = images () in
  let _, partitioned_us =
    Lbc_core.Cluster.timed_recovery c ~mode:Lbc_core.Cluster.Partitioned
  in
  let identical = List.for_all2 Bytes.equal serial_images (images ()) in
  let partitions =
    match Lbc_core.Cluster.merged_records c with
    | Ok records -> List.length (Lbc_core.Merge.partition records)
    | Error _ -> 0
  in
  (* Checkpoint slice overhead: small slices force several increments. *)
  let t0 = Lbc_core.Cluster.now c in
  Lbc_core.Cluster.fuzzy_checkpoint c ~node:0;
  Lbc_core.Cluster.run c;
  let stats = Lbc_rvm.Rvm.stats (Lbc_core.Node.rvm (Lbc_core.Cluster.node c 0)) in
  {
    rb_nodes = nodes;
    rb_records = outcome_s.Lbc_rvm.Recovery.records_replayed;
    rb_partitions = partitions;
    rb_serial_us = serial_us;
    rb_partitioned_us = partitioned_us;
    rb_identical = identical;
    rb_ckpt_slices = stats.Lbc_rvm.Rvm.ckpt_slices;
    rb_ckpt_bytes = stats.Lbc_rvm.Rvm.ckpt_bytes_flushed;
    rb_ckpt_us = Lbc_core.Cluster.now c -. t0;
  }

(* ------------------------------------------------------------------ *)
(* On-demand restart benchmark: a node whose log holds one small
   "measured" chain (lock/region 0, fixed size) plus bulk chains whose
   length scales with [scale] crashes and rejoins in on-demand mode.
   The first commit after rejoin touches only the measured chain, so
   time_to_first_commit_us should stay nearly flat as the bulk grows —
   the full drain is what pays for the extra log. *)

type ondemand_row = {
  od_scale : int;
  od_log_records : int;
  od_ttfc_us : float;
  od_drain_us : float;
}

let ondemand_bench ~scale () =
  let nodes = 2 and regions = 8 in
  let region_size = 8 * 1024 in
  let config =
    {
      Lbc_core.Config.default with
      Lbc_core.Config.charge_costs = true;
      trace = true;
    }
  in
  let c = Lbc_core.Cluster.create ~config ~nodes () in
  for r = 0 to regions - 1 do
    Lbc_core.Cluster.add_region c ~id:r ~size:region_size;
    Lbc_core.Cluster.map_region_all c ~region:r
  done;
  let rng = Lbc_util.Rng.create 99 in
  Lbc_core.Cluster.spawn c ~node:0 (fun node ->
      let commit_on r =
        let txn = Lbc_core.Node.Txn.begin_ node in
        Lbc_core.Node.Txn.acquire txn r;
        Lbc_core.Node.Txn.set_u64 txn ~region:r
          ~offset:(8 * Lbc_util.Rng.int rng (region_size / 8))
          (Lbc_util.Rng.int64 rng);
        Lbc_core.Node.Txn.commit txn
      in
      (* The measured chain: fixed length at every scale. *)
      for _ = 1 to 20 do
        commit_on 0
      done;
      (* The bulk: grows with [scale]. *)
      for r = 1 to regions - 1 do
        for _ = 1 to 25 * scale do
          commit_on r
        done
      done);
  Lbc_core.Cluster.run c;
  let log_records =
    Lbc_wal.Log.record_count
      (Lbc_rvm.Rvm.log (Lbc_core.Node.rvm (Lbc_core.Cluster.node c 0)))
  in
  Lbc_core.Cluster.crash c ~node:0;
  let t_rejoin = ref 0.0 in
  Lbc_sim.Proc.spawn
    (Lbc_core.Cluster.engine c)
    ~name:"bench-controller"
    (fun () ->
      let rec rejoin_when_lease_expires () =
        match Lbc_core.Cluster.rejoin ~mode:Lbc_core.Node.On_demand c ~node:0 with
        | () -> ()
        | exception Invalid_argument _ ->
            Lbc_sim.Proc.sleep 50.0;
            rejoin_when_lease_expires ()
      in
      rejoin_when_lease_expires ();
      t_rejoin := Lbc_core.Cluster.now c;
      (* First touch: a commit on the measured lock, which only needs
         that one chain warm. *)
      Lbc_core.Cluster.spawn c ~node:0 (fun node ->
          let txn = Lbc_core.Node.Txn.begin_ node in
          Lbc_core.Node.Txn.acquire txn 0;
          Lbc_core.Node.Txn.set_u64 txn ~region:0 ~offset:0
            (Lbc_util.Rng.int64 rng);
          Lbc_core.Node.Txn.commit txn));
  Lbc_core.Cluster.run c;
  let ttfc =
    match
      Lbc_obs.Obs.hist (Lbc_core.Cluster.obs c) "time_to_first_commit_us"
    with
    | Some h -> Lbc_obs.Obs.Histogram.max_value h
    | None -> Float.nan
  in
  {
    od_scale = scale;
    od_log_records = log_records;
    od_ttfc_us = ttfc;
    od_drain_us = Lbc_core.Cluster.now c -. !t_rejoin;
  }

(* ------------------------------------------------------------------ *)
(* Adaptive-logging benchmark: each write-heavy Table-3 traversal runs
   once under Value and once under Adaptive encoding.  Rows feed the
   "adaptive" block of the JSON output: wire-byte and logged-record
   deltas, recovery-time deltas, and recovered-image identity across
   all three replay modes (the command re-execution must land on the
   bytes the value log would have installed). *)

type adaptive_row = {
  ad_name : string;
  ad_cmd_chosen : bool;
  ad_value_wire : int;
  ad_adaptive_wire : int;
  ad_value_record : int;
  ad_adaptive_record : int;
  ad_value_serial_us : float;
  ad_serial_us : float;
  ad_partitioned_us : float;
  ad_ondemand_us : float;
  ad_identical : bool;
}

let adaptive_kinds =
  [
    Traversal.T2 Traversal.A;
    Traversal.T2 Traversal.C;
    Traversal.T3 Traversal.B;
    Traversal.T3 Traversal.C;
  ]

let adaptive_bench_one kind =
  (* Each (encoding, replay-mode) pair gets a fresh cluster: the build
     and the traversal are deterministic, so the recovered images are
     comparable across runs. *)
  let run log_mode mode =
    let config =
      {
        Lbc_core.Config.default with
        Lbc_core.Config.log_mode;
        charge_costs = true;
      }
    in
    let cluster = Runner.setup ~config ~nodes:2 small in
    let o = Runner.run ~cluster ~writer:0 small kind in
    let wire = Lbc_core.Cluster.total_bytes cluster in
    let _, us = Lbc_core.Cluster.timed_recovery cluster ~mode in
    let img =
      match
        Lbc_storage.Store.find (Lbc_core.Cluster.store cluster) "region.0"
      with
      | Some dev -> Lbc_storage.Dev.stable_snapshot dev
      | None -> Bytes.create 0
    in
    (o, wire, us, img)
  in
  let o_v, wire_v, us_v, img_v =
    run Lbc_wal.Command.Value Lbc_core.Cluster.Serial
  in
  let o_a, wire_a, us_s, img_s =
    run Lbc_wal.Command.Adaptive Lbc_core.Cluster.Serial
  in
  let _, _, us_p, img_p =
    run Lbc_wal.Command.Adaptive Lbc_core.Cluster.Partitioned
  in
  let _, _, us_o, img_o =
    run Lbc_wal.Command.Adaptive Lbc_core.Cluster.OnDemand
  in
  {
    ad_name = Traversal.name kind;
    ad_cmd_chosen = o_a.Runner.record.Lbc_wal.Record.cmd <> None;
    ad_value_wire = wire_v;
    ad_adaptive_wire = wire_a;
    ad_value_record = Lbc_core.Wire.size o_v.Runner.record;
    ad_adaptive_record = Lbc_core.Wire.size o_a.Runner.record;
    ad_value_serial_us = us_v;
    ad_serial_us = us_s;
    ad_partitioned_us = us_p;
    ad_ondemand_us = us_o;
    ad_identical =
      Bytes.equal img_v img_s
      && Bytes.equal img_s img_p
      && Bytes.equal img_s img_o;
  }

(* ------------------------------------------------------------------ *)
(* ------------------------------------------------------------------ *)
(* Machine-readable output: every Table-3 traversal under each
   propagation policy, written to BENCH_oo7.json for CI trending. *)

let json () =
  let module H = Lbc_obs.Obs.Histogram in
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let measured =
    {
      Lbc_core.Config.measured with
      Lbc_core.Config.disk_logging = false;
      (* Tracing costs no virtual time; the histograms feed the
         latency block below. *)
      trace = true;
    }
  in
  let configs =
    [
      ("eager", measured);
      ("multicast", { measured with Lbc_core.Config.multicast = true });
      ( "lazy",
        { measured with Lbc_core.Config.propagation = Lbc_core.Config.Lazy } );
    ]
  in
  addf "{\n  \"schema\": \"BENCH_oo7/v6\",\n  \"configs\": [";
  List.iteri
    (fun ci (cname, config) ->
      if ci > 0 then addf ",";
      addf "\n    {\n      \"name\": %S,\n      \"log_mode\": %S,\n      \"traversals\": ["
        cname
        (Lbc_wal.Command.log_mode_name config.Lbc_core.Config.log_mode);
      (* Latency percentiles are aggregated across the config's
         traversals by merging the per-run histogram buckets. *)
      let agg : (string, H.t) Hashtbl.t = Hashtbl.create 8 in
      List.iteri
        (fun ti kind ->
          let cluster = Runner.setup ~config ~nodes:2 small in
          (* Count only the measured run, not setup. *)
          Lbc_util.Slice.reset_counters ();
          let o = Runner.run ~cluster ~writer:0 small kind in
          let p = o.Runner.profile in
          List.iter
            (fun (name, h) ->
              let into =
                match Hashtbl.find_opt agg name with
                | Some x -> x
                | None ->
                    let x = H.create () in
                    Hashtbl.add agg name x;
                    x
              in
              H.merge ~into h)
            (Lbc_obs.Obs.hists (Lbc_core.Cluster.obs cluster));
          if ti > 0 then addf ",";
          addf
            "\n        { \"name\": %S, \"elapsed_us\": %.1f, \
             \"messages\": %d, \"wire_bytes\": %d, \"updates\": %d, \
             \"unique_bytes\": %d, \"message_bytes\": %d, \
             \"pages_updated\": %d, \"bytes_copied\": %d, \
             \"bytes_copied_baseline\": %d, \"encode_allocs\": %d }"
            (Traversal.name kind) o.Runner.elapsed
            (Lbc_core.Cluster.total_messages cluster)
            (Lbc_core.Cluster.total_bytes cluster)
            p.Model.updates p.Model.unique_bytes p.Model.message_bytes
            p.Model.pages_updated
            (Lbc_util.Slice.bytes_copied ())
            (Lbc_util.Slice.bytes_copied_baseline ())
            (Lbc_util.Slice.encode_allocs ()))
        Traversal.table3_kinds;
      addf "\n      ],\n      \"latency\": {";
      List.iteri
        (fun mi metric ->
          let h =
            match Hashtbl.find_opt agg metric with
            | Some h -> h
            | None -> H.create ()
          in
          if mi > 0 then addf ",";
          addf
            "\n        %S: { \"count\": %d, \"mean_us\": %.2f, \
             \"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f, \
             \"max_us\": %.2f }"
            metric (H.count h) (H.mean h) (H.percentile h 50.0)
            (H.percentile h 95.0) (H.percentile h 99.0) (H.max_value h))
        [ "commit_us"; "lock_wait_us"; "apply_lag_us" ];
      addf "\n      }\n    }")
    configs;
  addf "\n  ],";
  let rb = recovery_bench () in
  let od1 = ondemand_bench ~scale:1 () in
  let od10 = ondemand_bench ~scale:10 () in
  addf
    "\n  \"recovery\": {\n    \"nodes\": %d,\n    \"records\": %d,\n    \
     \"partitions\": %d,\n    \"serial_replay_us\": %.1f,\n    \
     \"partitioned_replay_us\": %.1f,\n    \"speedup\": %.2f,\n    \
     \"images_identical\": %b,\n    \"ckpt_slices\": %d,\n    \
     \"ckpt_bytes_flushed\": %d,\n    \"ckpt_us\": %.1f,"
    rb.rb_nodes rb.rb_records rb.rb_partitions rb.rb_serial_us
    rb.rb_partitioned_us
    (rb.rb_serial_us /. Float.max 1.0 rb.rb_partitioned_us)
    rb.rb_identical rb.rb_ckpt_slices rb.rb_ckpt_bytes rb.rb_ckpt_us;
  addf "\n    \"ondemand\": [";
  List.iteri
    (fun i od ->
      if i > 0 then addf ",";
      addf
        "\n      { \"scale\": %d, \"log_records\": %d, \
         \"time_to_first_commit_us\": %.1f, \"drain_us\": %.1f }"
        od.od_scale od.od_log_records od.od_ttfc_us od.od_drain_us)
    [ od1; od10 ];
  addf "\n    ],\n    \"ttfc_growth\": %.2f\n  }"
    (od10.od_ttfc_us /. Float.max 1.0 od1.od_ttfc_us);
  let adaptive = List.map adaptive_bench_one adaptive_kinds in
  addf ",\n  \"adaptive\": [";
  List.iteri
    (fun i ad ->
      if i > 0 then addf ",";
      addf
        "\n    { \"name\": %S, \"cmd_chosen\": %b, \
         \"value_wire_bytes\": %d, \"adaptive_wire_bytes\": %d, \
         \"wire_ratio\": %.3f, \"value_record_bytes\": %d, \
         \"adaptive_record_bytes\": %d, \"value_serial_replay_us\": %.1f, \
         \"serial_replay_us\": %.1f, \"partitioned_replay_us\": %.1f, \
         \"ondemand_replay_us\": %.1f, \"images_identical\": %b }"
        ad.ad_name ad.ad_cmd_chosen ad.ad_value_wire ad.ad_adaptive_wire
        (float_of_int ad.ad_adaptive_wire
        /. Float.max 1.0 (float_of_int ad.ad_value_wire))
        ad.ad_value_record ad.ad_adaptive_record ad.ad_value_serial_us
        ad.ad_serial_us ad.ad_partitioned_us ad.ad_ondemand_us
        ad.ad_identical)
    adaptive;
  addf "\n  ]";
  addf "\n}\n";
  let oc = open_out "BENCH_oo7.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pr "wrote BENCH_oo7.json (%d configs x %d traversals; recovery %.0f -> %.0f virtual µs over %d partitions)@."
    (List.length configs)
    (List.length Traversal.table3_kinds)
    rb.rb_serial_us rb.rb_partitioned_us rb.rb_partitions;
  List.iter
    (fun ad ->
      pr
        "adaptive %s: wire %d -> %d bytes (%.1fx), record %d -> %d, \
         images identical: %b@."
        ad.ad_name ad.ad_value_wire ad.ad_adaptive_wire
        (float_of_int ad.ad_value_wire
        /. Float.max 1.0 (float_of_int ad.ad_adaptive_wire))
        ad.ad_value_record ad.ad_adaptive_record ad.ad_identical)
    adaptive;
  pr
    "on-demand restart: ttfc %.0f µs over %d records (1x) vs %.0f µs over \
     %d records (10x) — %.2fx@."
    od1.od_ttfc_us od1.od_log_records od10.od_ttfc_us od10.od_log_records
    (od10.od_ttfc_us /. Float.max 1.0 od1.od_ttfc_us)

(* ------------------------------------------------------------------ *)
(* Wall-clock benchmark on the real backend: OO7 traversals and a
   parallel multi-writer workload on OCaml 5 domains with the socket
   fabric and real files, written to BENCH_real.json.  Unlike every
   number above, these are host wall-clock microseconds — they vary
   run to run and machine to machine; the JSON is for trending shape
   (scaling, message counts), not absolute comparison to the paper. *)

let real_backend () = Lbc_core.Platform.Custom Lbc_real.Backend.factory

let real_oo7 ~nodes kind =
  let cluster = Runner.setup ~backend:(real_backend ()) ~nodes small in
  (* The writer's own clock delta under-reports here (it runs without
     blocking inside one engine drain), so time the whole run — setup
     to quiescence with all peers applied — on the host clock. *)
  let t0 = Unix.gettimeofday () in
  let o = Runner.run ~cluster ~writer:0 small kind in
  let wall_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  let msgs = Lbc_core.Cluster.total_messages cluster in
  let bytes = Lbc_core.Cluster.total_bytes cluster in
  (* The always-on flight sink keeps the metric registry live even
     without --trace, so commit/lock-wait/apply-lag percentiles come for
     free on the wall clock too. *)
  let hists = Lbc_obs.Obs.hists (Lbc_core.Cluster.obs cluster) in
  Lbc_core.Cluster.shutdown cluster;
  (o, wall_us, msgs, bytes, hists)

(* [nodes] writers commit [txns] transactions each on their own lock and
   their own slice of the region — embarrassingly parallel application
   work, with every commit eagerly broadcast over the sockets.  Returns
   wall µs to quiescence with all caches converged. *)
let real_parallel ~nodes ~txns =
  let region_size = 64 * 1024 in
  let span = region_size / nodes in
  let c = Lbc_core.Cluster.create ~backend:(real_backend ()) ~nodes () in
  Lbc_core.Cluster.add_region c ~id:0 ~size:region_size;
  Lbc_core.Cluster.map_region_all c ~region:0;
  let t0 = Unix.gettimeofday () in
  for n = 0 to nodes - 1 do
    Lbc_core.Cluster.spawn c ~node:n (fun node ->
        for i = 1 to txns do
          let txn = Lbc_core.Node.Txn.begin_ node in
          Lbc_core.Node.Txn.acquire txn n;
          Lbc_core.Node.Txn.set_u64 txn ~region:0
            ~offset:((n * span) + (8 * (i mod (span / 8))))
            (Int64.of_int i);
          Lbc_core.Node.Txn.commit txn
        done)
  done;
  Lbc_core.Cluster.run c;
  let wall_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  let image n =
    Lbc_core.Node.read (Lbc_core.Cluster.node c n) ~region:0 ~offset:0
      ~len:region_size
  in
  let converged = ref true in
  let img0 = image 0 in
  for n = 1 to nodes - 1 do
    if not (Bytes.equal img0 (image n)) then converged := false
  done;
  let msgs = Lbc_core.Cluster.total_messages c in
  let bytes = Lbc_core.Cluster.total_bytes c in
  Lbc_core.Cluster.shutdown c;
  (wall_us, msgs, bytes, !converged)

(* Flight-recorder overhead: the ring is always on, so its cost rides
   every real run.  The claim that matters for an always-on recorder is
   wall-clock cost under deployment conditions, so measure it on the
   macro workload this suite already tracks per-PR — an OO7 traversal
   on wall-paced domains — with the ring enabled vs disabled.  (Two
   wrong denominators, learned the hard way: the sim's wall time is
   nothing but event processing, so a fixed per-event cost reads as
   tens of percent; and a synthetic hot loop of near-empty
   transactions has almost no real work per event, so even a
   sub-microsecond per-event cost reads as ~10%.  The OO7 traversal
   does real object-graph work between events, which is precisely the
   deployment claim the 2% budget makes.) *)

type flight_overhead = {
  fo_runs : int;
  fo_on_us : float;
  fo_off_us : float;
  fo_ratio : float;
  fo_budget : float;
  fo_within : bool;
}

let flight_overhead_bench () =
  let nodes = 4 in
  (* A write-bearing traversal: commits, broadcasts and applies all
     exercise their ring writes, against real traversal work. *)
  let kind = Traversal.T2 Traversal.B in
  let workload config =
    let cluster =
      Runner.setup ~config ~backend:(real_backend ()) ~nodes small
    in
    (* Time setup-to-quiescence only: domain spawn and socket teardown
       are identical on both sides and would just dilute the ratio. *)
    let t0 = Unix.gettimeofday () in
    ignore (Runner.run ~cluster ~writer:0 small kind);
    let wall_us = (Unix.gettimeofday () -. t0) *. 1e6 in
    Lbc_core.Cluster.shutdown cluster;
    wall_us
  in
  (* Skip the real fsync per group commit: file-system timing noise on
     shared CI hosts swamps a 2% signal (±10% run-to-run), and the log
     path's own instrumentation cost is still fully exercised — only
     the device write behind it is elided. *)
  let flight_on =
    {
      Lbc_core.Config.default with
      Lbc_core.Config.flight = true;
      disk_logging = false;
    }
  in
  let flight_off = { flight_on with Lbc_core.Config.flight = false } in
  (* Warm up both paths, then interleave timed runs so slow drift in
     host load hits both sides equally; the order alternates per pair
     because the first run of a pair inherits the previous run's
     GC/teardown debris (a measured ~5% first-slot penalty that would
     otherwise be billed entirely to one side).  The asserted figure is
     a ratio of truncated means: each side keeps its fastest
     [runs - trim] times and averages them.  Timing noise on a busy
     host is one-sided (interference only ever adds time), so the
     slowest tail carries scheduler luck, not signal — trimming it and
     averaging the quiet majority is far more stable run-to-run than
     either the minimum (one sample) or a median of per-pair ratios
     (each pair still noisy on its own). *)
  ignore (workload flight_on);
  ignore (workload flight_off);
  let runs = 41 in
  let trim = 21 in
  let on_times = Array.make runs 0.0 and off_times = Array.make runs 0.0 in
  for i = 0 to runs - 1 do
    if i land 1 = 0 then begin
      on_times.(i) <- workload flight_on;
      off_times.(i) <- workload flight_off
    end
    else begin
      off_times.(i) <- workload flight_off;
      on_times.(i) <- workload flight_on
    end
  done;
  Array.sort Float.compare on_times;
  Array.sort Float.compare off_times;
  let truncated_mean a =
    let k = runs - trim in
    let s = ref 0.0 in
    for i = 0 to k - 1 do
      s := !s +. a.(i)
    done;
    !s /. float_of_int k
  in
  let on_us = truncated_mean on_times and off_us = truncated_mean off_times in
  let budget = 1.02 in
  let ratio = on_us /. Float.max 1.0 off_us in
  {
    fo_runs = runs;
    fo_on_us = on_us;
    fo_off_us = off_us;
    fo_ratio = ratio;
    fo_budget = budget;
    fo_within = ratio <= budget;
  }

let real_json () =
  hr "Real backend: wall-clock OO7 + parallel scaling (BENCH_real.json)";
  let module H = Lbc_obs.Obs.Histogram in
  let host_domains = Domain.recommended_domain_count () in
  pr "host offers %d domains@." host_domains;
  let oo7_nodes = 4 in
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "{\n  \"schema\": \"BENCH_real/v2\",\n  \"backend\": \"real\",\n";
  addf "  \"host_domains\": %d,\n  \"clock\": \"wall\",\n" host_domains;
  addf "  \"oo7\": [";
  (* Wall-clock latency percentiles, aggregated across the OO7 runs the
     same way BENCH_oo7 aggregates virtual-time percentiles. *)
  let agg : (string, H.t) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i kind ->
      let o, wall_us, msgs, bytes, hists = real_oo7 ~nodes:oo7_nodes kind in
      let p = o.Runner.profile in
      List.iter
        (fun (name, h) ->
          let into =
            match Hashtbl.find_opt agg name with
            | Some x -> x
            | None ->
                let x = H.create () in
                Hashtbl.add agg name x;
                x
          in
          H.merge ~into h)
        hists;
      if i > 0 then addf ",";
      addf
        "\n    { \"name\": %S, \"nodes\": %d, \"elapsed_us\": %.1f, \
         \"messages\": %d, \"wire_bytes\": %d, \"updates\": %d, \
         \"message_bytes\": %d }"
        (Traversal.name kind) oo7_nodes wall_us msgs bytes p.Model.updates
        p.Model.message_bytes;
      pr "oo7 %-7s %4d domains %12.1f wall µs %6d msgs %9d bytes@."
        (Traversal.name kind) oo7_nodes wall_us msgs bytes)
    Traversal.table3_kinds;
  addf "\n  ],\n  \"latency\": {";
  List.iteri
    (fun mi metric ->
      let h =
        match Hashtbl.find_opt agg metric with
        | Some h -> h
        | None -> H.create ()
      in
      if mi > 0 then addf ",";
      addf
        "\n    %S: { \"count\": %d, \"mean_us\": %.2f, \"p50_us\": %.2f, \
         \"p95_us\": %.2f, \"p99_us\": %.2f, \"max_us\": %.2f }"
        metric (H.count h) (H.mean h) (H.percentile h 50.0)
        (H.percentile h 95.0) (H.percentile h 99.0) (H.max_value h);
      pr "latency %-14s n=%-6d p50 %8.1fµs  p95 %8.1fµs  p99 %8.1fµs@."
        metric (H.count h) (H.percentile h 50.0) (H.percentile h 95.0)
        (H.percentile h 99.0))
    [ "commit_us"; "lock_wait_us"; "apply_lag_us" ];
  addf "\n  },\n  \"parallel\": [";
  List.iteri
    (fun i nodes ->
      let txns = 100 in
      let wall_us, msgs, bytes, converged = real_parallel ~nodes ~txns in
      if i > 0 then addf ",";
      addf
        "\n    { \"nodes\": %d, \"txns_per_node\": %d, \"wall_us\": %.1f, \
         \"messages\": %d, \"wire_bytes\": %d, \"converged\": %b }"
        nodes txns wall_us msgs bytes converged;
      pr "parallel %d domains x %d txns %12.1f wall µs %6d msgs%s@." nodes
        txns wall_us msgs
        (if converged then "" else "  !! DIVERGED"))
    [ 2; 4 ];
  addf "\n  ],";
  let fo = flight_overhead_bench () in
  addf
    "\n  \"flight_overhead\": {\n    \"runs\": %d,\n    \
     \"flight_on_us\": %.1f,\n    \"flight_off_us\": %.1f,\n    \
     \"ratio\": %.4f,\n    \"budget\": %.2f,\n    \
     \"within_budget\": %b\n  }"
    fo.fo_runs fo.fo_on_us fo.fo_off_us fo.fo_ratio fo.fo_budget fo.fo_within;
  pr
    "flight recorder overhead: %.1f ms on vs %.1f ms off (trimmed mean of %d \
     oo7 walls) — %+.2f%% (budget 2%%)%s@."
    (fo.fo_on_us /. 1000.0) (fo.fo_off_us /. 1000.0) fo.fo_runs
    ((fo.fo_ratio -. 1.0) *. 100.0)
    (if fo.fo_within then "" else "  !! OVER BUDGET");
  addf "\n}\n";
  let oc = open_out "BENCH_real.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pr "wrote BENCH_real.json (%d oo7 traversals on %d domains + scaling rows)@."
    (List.length Traversal.table3_kinds)
    oo7_nodes

(* ------------------------------------------------------------------ *)

let all () =
  table2 ();
  table3 ();
  fig1 ();
  fig2 ();
  fig3 ();
  fig4 ();
  fig56 ~big:false ();
  fig56 ~big:true ();
  fig7 ();
  fig8 ();
  validate ();
  ablations ();
  macro ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] -> all ()
  | _ ->
      List.iter
        (function
          | "table2" -> table2 ()
          | "table3" -> table3 ()
          | "fig1" -> fig1 ()
          | "fig2" -> fig2 ()
          | "fig3" -> fig3 ()
          | "fig4" -> fig4 ()
          | "fig5" -> fig56 ~big:false ()
          | "fig6" -> fig56 ~big:true ()
          | "fig7" -> fig7 ()
          | "fig8" -> fig8 ()
          | "validate" -> validate ()
          | "ablations" -> ablations ()
          | "macro" -> macro ()
          | "bechamel" -> bechamel ()
          | "json" -> json ()
          | "real" -> real_json ()
          | "flight-overhead" ->
              (* Just the always-on ring cost measurement, for quick
                 iteration on the hot path. *)
              let fo = flight_overhead_bench () in
              pr
                "flight recorder overhead: %.1f ms on vs %.1f ms off \
                 (trimmed mean of %d oo7 walls) — %+.2f%% (budget 2%%)%s@."
                (fo.fo_on_us /. 1000.0) (fo.fo_off_us /. 1000.0) fo.fo_runs
                ((fo.fo_ratio -. 1.0) *. 100.0)
                (if fo.fo_within then "" else "  !! OVER BUDGET")
          | other ->
              Format.eprintf "unknown benchmark %S@." other;
              exit 2)
        args
