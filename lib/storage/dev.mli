(** A simulated durable device (one "file").

    The device keeps two images: the {e current} image, which reads observe
    (like an OS buffer cache), and the {e stable} image, which is what
    survives a crash.  [write] updates only the current image and records
    the write as pending; [sync] makes all pending writes stable.  [crash]
    reverts the current image to the stable one, optionally after applying
    a deterministic prefix of the pending writes — including a torn final
    write — so recovery code can be tested against every partial-write
    outcome.

    If the device carries a {!Latency.t} profile other than {!Latency.none},
    operations called from inside a simulated process
    ({!Lbc_sim.Proc.spawn}) charge their cost to that process as virtual
    time; calls from outside any process (setup, offline tools) are
    free.

    {!create_file} opens the same interface over a real file: [write]
    issues positional writes and [sync] is a real [fsync], which is what
    the real-parallelism backend's log and database devices use.  The
    kernel owns the volatile cache there, so deterministic write loss
    ({!crash}) is unsupported and [stable_snapshot] equals {!snapshot}.
    File operations serialize on a per-device mutex (a region database is
    shared by every node domain). *)

type t

val create : ?latency:Latency.t -> ?name:string -> unit -> t
(** A new empty in-memory device.  [latency] defaults to {!Latency.none}. *)

val create_file : ?latency:Latency.t -> path:string -> ?name:string -> unit -> t
(** Open (or create) file [path] as a device backed by real I/O.
    [latency] defaults to {!Latency.none}: real operations take real
    time, so no virtual cost is charged on top. *)

val close : t -> unit
(** Release the file descriptor of a {!create_file} device (no-op for
    in-memory devices). *)

val is_file : t -> bool

val name : t -> string
val size : t -> int
(** Size of the current image in bytes. *)

val stable_size : t -> int

val read : t -> off:int -> len:int -> Bytes.t
(** Read from the current image.  Reading beyond the end raises
    [Invalid_argument].  On a file device whose underlying file turns
    out shorter than the tracked length (a crash truncated it), the
    missing tail reads as zeroes — log scans then degrade to their
    structured torn-tail verdict instead of an untyped failure. *)

val write : t -> off:int -> Bytes.t -> pos:int -> len:int -> unit
(** Buffered write at [off]; extends the device if needed. *)

val write_slice : t -> off:int -> Lbc_util.Slice.t -> unit
(** {!write} from a window; the device captures its own copy of the
    payload, so the caller may reuse or clear the backing arena. *)

val write_string : t -> off:int -> string -> unit

val sync : t -> unit
(** Force all pending writes to the stable image. *)

val pending_writes : t -> int
(** Number of writes buffered since the last [sync]. *)

val crash : ?apply:int -> ?tear_bytes:int -> t -> unit
(** Simulate a crash: the current image becomes the stable image plus the
    first [apply] pending writes (default 0) plus the first [tear_bytes]
    bytes of the next pending write (default 0).  Remaining pending writes
    are lost.  Charged no latency. *)

val snapshot : t -> Bytes.t
(** Copy of the current image (no latency charged; for tests and tools). *)

val stable_snapshot : t -> Bytes.t

val load : t -> Bytes.t -> unit
(** Replace both images with the given contents, marking them stable (used
    by tools to import a real file). *)

(** Accounting *)

val bytes_written : t -> int
val sync_count : t -> int
