type image = { mutable data : Bytes.t; mutable len : int }

type pending = { off : int; payload : Bytes.t }

(* Two backings behind one device interface:

   [Mem] is the simulation's device — an in-memory current/stable image
   pair whose gap (the pending write queue) models a volatile disk cache,
   so crash tests can lose or tear unsynced writes deterministically.

   [File] is the real backend's device — an ordinary file descriptor
   where [write] issues real positional writes and [sync] is a real
   [fsync].  The kernel owns the volatile cache, so the stable image is
   not observable from here: [crash] (deterministic write loss) is
   unsupported, and [stable_snapshot] reads the file as-is.  All file
   operations serialize on a per-device mutex because a region database
   is shared by every node domain. *)
type mem = {
  current : image;
  stable : image;
  pending : pending Queue.t;
  mutable pending_bytes : int;
}

type file = { fd : Unix.file_descr; m : Mutex.t; mutable flen : int }

type backing = Mem of mem | File of file

type t = {
  name : string;
  latency : Latency.t;
  backing : backing;
  mutable bytes_written : int;
  mutable sync_count : int;
}

let image () = { data = Bytes.create 0; len = 0 }

let create ?(latency = Latency.none) ?(name = "dev") () =
  {
    name;
    latency;
    backing =
      Mem
        {
          current = image ();
          stable = image ();
          pending = Queue.create ();
          pending_bytes = 0;
        };
    bytes_written = 0;
    sync_count = 0;
  }

let create_file ?(latency = Latency.none) ~path ?name () =
  let name = match name with Some n -> n | None -> Filename.basename path in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let flen = (Unix.fstat fd).Unix.st_size in
  {
    name;
    latency;
    backing = File { fd; m = Mutex.create (); flen };
    bytes_written = 0;
    sync_count = 0;
  }

let close t =
  match t.backing with Mem _ -> () | File f -> Unix.close f.fd

let is_file t = match t.backing with Mem _ -> false | File _ -> true

let name t = t.name

let size t =
  match t.backing with Mem m -> m.current.len | File f -> f.flen

let stable_size t =
  match t.backing with Mem m -> m.stable.len | File f -> f.flen

let pending_writes t =
  match t.backing with Mem m -> Queue.length m.pending | File _ -> 0

let bytes_written t = t.bytes_written
let sync_count t = t.sync_count

(* Outside any simulated process (device setup, log formatting at cluster
   construction, offline tools) operations are free: there is no virtual
   clock to charge.  Inside a process the cost is charged as sleep. *)
let charge _t cost =
  if cost > 0.0 then
    try Lbc_sim.Proc.sleep cost with Lbc_sim.Proc.Not_in_process -> ()

let ensure_capacity img n =
  if n > Bytes.length img.data then begin
    let cap = max n (max 256 (2 * Bytes.length img.data)) in
    let d = Bytes.make cap '\000' in
    Bytes.blit img.data 0 d 0 img.len;
    img.data <- d
  end;
  if n > img.len then img.len <- n

let apply_to img ~off b ~pos ~len =
  ensure_capacity img (off + len);
  Bytes.blit b pos img.data off len

let with_fd f k =
  Mutex.lock f.m;
  match k () with
  | v ->
      Mutex.unlock f.m;
      v
  | exception e ->
      Mutex.unlock f.m;
      raise e

(* A signal delivery (the flight recorder's timer, a profiler) can
   interrupt a blocking read or write with EINTR; the syscall must be
   reissued, not surfaced as an error. *)
let rec eintr_retry k =
  try k () with Unix.Unix_error (Unix.EINTR, _, _) -> eintr_retry k

let file_read f ~off b ~pos ~len =
  with_fd f (fun () ->
      ignore (Unix.lseek f.fd off Unix.SEEK_SET : int);
      let got = ref 0 in
      let eof = ref false in
      while (not !eof) && !got < len do
        let n =
          eintr_retry (fun () -> Unix.read f.fd b (pos + !got) (len - !got))
        in
        if n = 0 then begin
          (* Past EOF (the file is shorter than the tracked length — a
             crash truncated it under us): zero-fill the remainder
             instead of failing, so a log scan over a real device sees
             the same all-zero tail a simulated device presents and
             degrades to its structured torn-tail verdict at the
             offending offset. *)
          Bytes.fill b (pos + !got) (len - !got) '\000';
          eof := true
        end
        else got := !got + n
      done)

let file_write f ~off b ~pos ~len =
  with_fd f (fun () ->
      ignore (Unix.lseek f.fd off Unix.SEEK_SET : int);
      let put = ref 0 in
      while !put < len do
        let n =
          eintr_retry (fun () -> Unix.write f.fd b (pos + !put) (len - !put))
        in
        put := !put + n
      done;
      if off + len > f.flen then f.flen <- off + len)

let read t ~off ~len =
  if off < 0 || len < 0 || off + len > size t then
    invalid_arg
      (Printf.sprintf "Dev.read %s: [%d,%d) beyond size %d" t.name off
         (off + len) (size t));
  charge t (t.latency.read_base +. (t.latency.read_per_byte *. float_of_int len));
  Lbc_util.Slice.count_copy len;
  match t.backing with
  | Mem m -> Bytes.sub m.current.data off len
  | File f ->
      let b = Bytes.create len in
      file_read f ~off b ~pos:0 ~len;
      b

let write t ~off b ~pos ~len =
  if off < 0 || pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg (Printf.sprintf "Dev.write %s: bad range" t.name);
  charge t (t.latency.write_base +. (t.latency.write_per_byte *. float_of_int len));
  Lbc_util.Slice.count_copy len;
  (match t.backing with
  | Mem m ->
      apply_to m.current ~off b ~pos ~len;
      (* The pending queue owns its payload: the caller may reuse [b] (the
         log's encode arena does) before the next sync.  This capture is
         the one copy the write path keeps — the same copy the kernel
         makes into the page cache on the file path. *)
      Queue.add { off; payload = Bytes.sub b pos len } m.pending;
      m.pending_bytes <- m.pending_bytes + len
  | File f -> file_write f ~off b ~pos ~len);
  t.bytes_written <- t.bytes_written + len

let write_slice t ~off s =
  write t ~off (Lbc_util.Slice.base s) ~pos:(Lbc_util.Slice.pos s)
    ~len:(Lbc_util.Slice.length s)

let write_string t ~off s =
  write t ~off (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let sync t =
  (match t.backing with
  | Mem m ->
      charge t
        (t.latency.sync_base
        +. (t.latency.sync_per_byte *. float_of_int m.pending_bytes));
      Queue.iter
        (fun { off; payload } ->
          apply_to m.stable ~off payload ~pos:0 ~len:(Bytes.length payload))
        m.pending;
      Queue.clear m.pending;
      m.pending_bytes <- 0
  | File f -> with_fd f (fun () -> Unix.fsync f.fd));
  t.sync_count <- t.sync_count + 1

let copy_image ~src ~dst =
  ensure_capacity dst src.len;
  Bytes.blit src.data 0 dst.data 0 src.len;
  dst.len <- src.len

let crash ?(apply = 0) ?(tear_bytes = 0) t =
  match t.backing with
  | File _ ->
      invalid_arg
        (Printf.sprintf
           "Dev.crash %s: deterministic write loss needs the simulated \
            device"
           t.name)
  | Mem m ->
      (* Apply the surviving prefix of pending writes to the stable image,
         then make it the current image. *)
      let applied = ref 0 in
      Queue.iter
        (fun { off; payload } ->
          if !applied < apply then begin
            apply_to m.stable ~off payload ~pos:0 ~len:(Bytes.length payload);
            incr applied
          end
          else if !applied = apply && tear_bytes > 0 then begin
            let len = min tear_bytes (Bytes.length payload) in
            apply_to m.stable ~off payload ~pos:0 ~len;
            incr applied
          end)
        m.pending;
      Queue.clear m.pending;
      m.pending_bytes <- 0;
      copy_image ~src:m.stable ~dst:m.current

let snapshot t =
  Lbc_util.Slice.count_copy (size t);
  match t.backing with
  | Mem m -> Bytes.sub m.current.data 0 m.current.len
  | File f ->
      let b = Bytes.create f.flen in
      file_read f ~off:0 b ~pos:0 ~len:f.flen;
      b

let stable_snapshot t =
  match t.backing with
  | Mem m ->
      Lbc_util.Slice.count_copy m.stable.len;
      Bytes.sub m.stable.data 0 m.stable.len
  | File _ -> snapshot t

let load t b =
  match t.backing with
  | Mem m ->
      let set img =
        img.data <- Bytes.copy b;
        img.len <- Bytes.length b
      in
      set m.current;
      set m.stable;
      Queue.clear m.pending;
      m.pending_bytes <- 0
  | File f ->
      with_fd f (fun () ->
          Unix.ftruncate f.fd 0;
          f.flen <- 0);
      file_write f ~off:0 b ~pos:0 ~len:(Bytes.length b);
      with_fd f (fun () -> Unix.fsync f.fd)
