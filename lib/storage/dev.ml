type image = { mutable data : Bytes.t; mutable len : int }

type pending = { off : int; payload : Bytes.t }

type t = {
  name : string;
  latency : Latency.t;
  current : image;
  stable : image;
  pending : pending Queue.t;
  mutable pending_bytes : int;
  mutable bytes_written : int;
  mutable sync_count : int;
}

let image () = { data = Bytes.create 0; len = 0 }

let create ?(latency = Latency.none) ?(name = "dev") () =
  {
    name;
    latency;
    current = image ();
    stable = image ();
    pending = Queue.create ();
    pending_bytes = 0;
    bytes_written = 0;
    sync_count = 0;
  }

let name t = t.name
let size t = t.current.len
let stable_size t = t.stable.len
let pending_writes t = Queue.length t.pending
let bytes_written t = t.bytes_written
let sync_count t = t.sync_count

(* Outside any simulated process (device setup, log formatting at cluster
   construction, offline tools) operations are free: there is no virtual
   clock to charge.  Inside a process the cost is charged as sleep. *)
let charge _t cost =
  if cost > 0.0 then
    try Lbc_sim.Proc.sleep cost with Lbc_sim.Proc.Not_in_process -> ()

let ensure_capacity img n =
  if n > Bytes.length img.data then begin
    let cap = max n (max 256 (2 * Bytes.length img.data)) in
    let d = Bytes.make cap '\000' in
    Bytes.blit img.data 0 d 0 img.len;
    img.data <- d
  end;
  if n > img.len then img.len <- n

let apply_to img ~off b ~pos ~len =
  ensure_capacity img (off + len);
  Bytes.blit b pos img.data off len

let read t ~off ~len =
  if off < 0 || len < 0 || off + len > t.current.len then
    invalid_arg
      (Printf.sprintf "Dev.read %s: [%d,%d) beyond size %d" t.name off
         (off + len) t.current.len);
  charge t (t.latency.read_base +. (t.latency.read_per_byte *. float_of_int len));
  Lbc_util.Slice.count_copy len;
  Bytes.sub t.current.data off len

let write t ~off b ~pos ~len =
  if off < 0 || pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg (Printf.sprintf "Dev.write %s: bad range" t.name);
  charge t (t.latency.write_base +. (t.latency.write_per_byte *. float_of_int len));
  apply_to t.current ~off b ~pos ~len;
  (* The pending queue owns its payload: the caller may reuse [b] (the
     log's encode arena does) before the next sync.  This capture is the
     one copy the write path keeps. *)
  Lbc_util.Slice.count_copy len;
  Queue.add { off; payload = Bytes.sub b pos len } t.pending;
  t.pending_bytes <- t.pending_bytes + len;
  t.bytes_written <- t.bytes_written + len

let write_slice t ~off s =
  write t ~off (Lbc_util.Slice.base s) ~pos:(Lbc_util.Slice.pos s)
    ~len:(Lbc_util.Slice.length s)

let write_string t ~off s =
  write t ~off (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let sync t =
  charge t
    (t.latency.sync_base
    +. (t.latency.sync_per_byte *. float_of_int t.pending_bytes));
  Queue.iter
    (fun { off; payload } ->
      apply_to t.stable ~off payload ~pos:0 ~len:(Bytes.length payload))
    t.pending;
  Queue.clear t.pending;
  t.pending_bytes <- 0;
  t.sync_count <- t.sync_count + 1

let copy_image ~src ~dst =
  ensure_capacity dst src.len;
  Bytes.blit src.data 0 dst.data 0 src.len;
  dst.len <- src.len

let crash ?(apply = 0) ?(tear_bytes = 0) t =
  (* Apply the surviving prefix of pending writes to the stable image, then
     make it the current image. *)
  let applied = ref 0 in
  Queue.iter
    (fun { off; payload } ->
      if !applied < apply then begin
        apply_to t.stable ~off payload ~pos:0 ~len:(Bytes.length payload);
        incr applied
      end
      else if !applied = apply && tear_bytes > 0 then begin
        let len = min tear_bytes (Bytes.length payload) in
        apply_to t.stable ~off payload ~pos:0 ~len;
        incr applied
      end)
    t.pending;
  Queue.clear t.pending;
  t.pending_bytes <- 0;
  copy_image ~src:t.stable ~dst:t.current

let snapshot t =
  Lbc_util.Slice.count_copy t.current.len;
  Bytes.sub t.current.data 0 t.current.len

let stable_snapshot t =
  Lbc_util.Slice.count_copy t.stable.len;
  Bytes.sub t.stable.data 0 t.stable.len

let load t b =
  let set img =
    img.data <- Bytes.copy b;
    img.len <- Bytes.length b
  in
  set t.current;
  set t.stable;
  Queue.clear t.pending;
  t.pending_bytes <- 0
