type t = { latency : Latency.t; devs : (string, Dev.t) Hashtbl.t }

let create ?(latency = Latency.none) () = { latency; devs = Hashtbl.create 16 }

let open_dev t name =
  match Hashtbl.find_opt t.devs name with
  | Some d -> d
  | None ->
      let d = Dev.create ~latency:t.latency ~name () in
      Hashtbl.add t.devs name d;
      d

let find t name = Hashtbl.find_opt t.devs name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.devs []
  |> List.sort String.compare

let sync_all t = Hashtbl.iter (fun _ d -> Dev.sync d) t.devs
let crash_all t = Hashtbl.iter (fun _ d -> Dev.crash d) t.devs
