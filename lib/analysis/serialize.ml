(* One-copy serializability oracle.

   The coherency protocol's correctness claim (paper Section 2) is that
   under two-phase segment locking every execution is equivalent to some
   serial execution against a single copy of the data.  The merge utility
   computes exactly that witness order: transactions sorted so per-lock
   sequence numbers ascend and per-node log order is preserved.  This
   oracle closes the loop: it replays the merged committed stream against
   a trivial sequential in-memory RVM spec — one byte array per region,
   ranges blitted in merge order — and requires every "final image" the
   caller hands in (node caches at quiescence, the recovered database) to
   be byte-identical to the spec's.

   Any divergence means the distributed execution visible in the logs is
   not equivalent to its own serial witness: an update was applied out of
   order, twice, or not at all — precisely the class of bug a schedule
   explorer is hunting. *)

module R = Lbc_wal.Record

type spec = { sizes : (int, int) Hashtbl.t; images : (int, Bytes.t) Hashtbl.t }

let spec_image spec region =
  match Hashtbl.find_opt spec.images region with
  | Some b -> Some b
  | None -> (
      match Hashtbl.find_opt spec.sizes region with
      | None -> None  (* region outside the declared set: skipped, as
                         receivers skip it — check_regions flags those *)
      | Some size ->
          let b = Bytes.make size '\000' in
          Hashtbl.replace spec.images region b;
          Some b)

(* Apply one merged transaction to the spec.  Value records blit their
   ranges; command records re-execute the operation against the spec's
   byte arrays — the very same deterministic function receivers and
   recovery run, so a spec divergence still means the *distributed*
   execution is wrong, not the encoding.  Returns the violations the
   record itself raises (unknown operation). *)
let apply_txn spec (txn : R.txn) =
  match txn.R.cmd with
  | Some c when not (Lbc_wal.Command.registered c.R.op) ->
      [ Violation.Command_unknown
          { txn = Violation.txn_id_of txn; op = c.R.op } ]
  | Some c when List.exists (fun r -> spec_image spec r = None) c.R.cmd_regions
    ->
      (* Outside the declared region set: skipped, as receivers skip it —
         check_regions flags those. *)
      []
  | _ ->
      let mem =
        {
          Lbc_wal.Command.read =
            (fun ~region ~offset ~len ->
              match spec_image spec region with
              | Some img when offset >= 0 && offset + len <= Bytes.length img
                ->
                  Bytes.sub img offset len
              | _ -> Bytes.make len '\000');
          write =
            (fun ~region ~offset data ->
              match spec_image spec region with
              | None -> ()
              | Some img ->
                  let len = Bytes.length data in
                  if offset >= 0 && offset + len <= Bytes.length img then
                    Bytes.blit data 0 img offset len);
        }
      in
      Lbc_wal.Command.apply mem txn;
      []

let first_diff a b =
  let n = min (Bytes.length a) (Bytes.length b) in
  let rec loop i =
    if i >= n then if Bytes.length a = Bytes.length b then None else Some n
    else if Bytes.get a i <> Bytes.get b i then Some i
    else loop (i + 1)
  in
  loop 0

(* [regions]: the declared region set as (id, size) pairs.  [initial]:
   the pre-workload image of a region (defaults to all zeroes — pass the
   loaded database image for pre-built regions like OO7's).  [finals]:
   labelled final images to compare, e.g. every node's cached copy and
   the recovered database.  [streams]: the per-node committed
   transaction lists, in log order. *)
let check ?initial ~regions ~finals streams =
  let spec =
    { sizes = Hashtbl.create 8; images = Hashtbl.create 8 }
  in
  List.iter (fun (id, size) -> Hashtbl.replace spec.sizes id size) regions;
  (match initial with
  | None -> ()
  | Some f ->
      List.iter
        (fun (id, size) ->
          match f id with
          | None -> ()
          | Some img ->
              let b = Bytes.make size '\000' in
              Bytes.blit img 0 b 0 (min size (Bytes.length img));
              Hashtbl.replace spec.images id b)
        regions);
  match Lbc_core.Merge.merge_records streams with
  | Error (Lbc_core.Merge.Unorderable why) ->
      [ Violation.Merge_unorderable { detail = why } ]
  | Ok merged ->
      let violations = ref [] in
      List.iter
        (fun txn ->
          List.iter (fun v -> violations := v :: !violations)
            (apply_txn spec txn))
        merged;
      List.iter
        (fun (witness, read) ->
          List.iter
            (fun (id, size) ->
              let expected =
                match spec_image spec id with
                | Some b -> b
                | None -> Bytes.make size '\000'
              in
              let actual = read id in
              match first_diff expected actual with
              | None -> ()
              | Some offset ->
                  let byte_at b i =
                    if i < Bytes.length b then Char.code (Bytes.get b i)
                    else -1
                  in
                  violations :=
                    Violation.Serial_divergence
                      {
                        witness;
                        region = id;
                        offset;
                        expected = byte_at expected offset;
                        actual = byte_at actual offset;
                      }
                    :: !violations)
            regions)
        finals;
      List.rev !violations

let merged_count streams =
  match Lbc_core.Merge.merge_records streams with
  | Ok merged -> List.length merged
  | Error _ -> 0
