(** One-copy serializability oracle.

    Replays the merged committed transaction stream against a sequential
    in-memory spec (one byte array per region, ranges applied in merge
    order) and requires every supplied final image — node caches at
    quiescence, the recovered database — to be byte-identical to the
    spec's.  A divergence means the execution recorded in the logs is
    not equivalent to its own serial witness order; an unmergeable input
    means no serial witness exists at all. *)

val check :
  ?initial:(int -> Bytes.t option) ->
  regions:(int * int) list ->
  finals:(string * (int -> Bytes.t)) list ->
  Lbc_wal.Record.txn list list ->
  Violation.t list
(** [check ~regions ~finals streams] — [regions] is the declared
    [(id, size)] set, [initial] gives a region's pre-workload image
    (default all zeroes), [finals] labels each final image to compare
    (the label names the witness in the violation), and [streams] are
    the per-node committed transaction lists in log order.  Returns
    [Merge_unorderable] if no serial order exists, and one
    [Serial_divergence] per diverging (witness, region). *)

val merged_count : Lbc_wal.Record.txn list list -> int
(** Number of transactions in the merged stream (0 if unmergeable) —
    informational, for explorer reports. *)
