(* Vector-clock happens-before race detector over committed transaction
   streams.

   Events are committed transactions; stream i is node i's redo log in
   commit order.  Happens-before is the transitive closure of two edge
   families:

   - program order: consecutive records of one stream;
   - lock order: for each lock, records carrying that lock, in seqno
     order (the token hands the lock from seqno s to the next observed
     seqno on that lock).

   Two transactions that write overlapping (region, offset, len) ranges
   and are concurrent under this relation form exactly the race class the
   paper's interlock is supposed to exclude: nothing forces one node to
   have applied the other's update before writing over it. *)

module R = Lbc_wal.Record

type event = { stream : int; pos : int; txn : R.txn }

(* Happens-before via vector clocks: clock.(s) = number of events of
   stream s known to precede (or be) this event.  [a] happens before [b]
   iff b's clock has seen a's position in a's own stream. *)
let precedes clocks a b = clocks.(b).(a.stream) >= a.pos + 1

let build_events streams =
  let events = ref [] and n = ref 0 in
  List.iteri
    (fun si stream ->
      List.iteri
        (fun pos txn ->
          events := { stream = si; pos; txn } :: !events;
          incr n)
        stream)
    streams;
  Array.of_list (List.rev !events)

(* Successor edges for every lock: sort that lock's events by seqno and
   link neighbours.  Returns an adjacency list (edges i -> j). *)
let lock_edges events =
  let by_lock : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun idx ev ->
      List.iter
        (fun l ->
          let lock = l.R.lock_id in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_lock lock) in
          Hashtbl.replace by_lock lock ((l.R.seqno, idx) :: prev))
        ev.txn.R.locks)
    events;
  let edges = ref [] in
  Hashtbl.iter
    (fun _lock entries ->
      let sorted =
        List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2) entries
      in
      let rec link = function
        | (_, a) :: ((_, b) :: _ as rest) ->
            if a <> b then edges := (a, b) :: !edges;
            link rest
        | _ -> ()
      in
      link sorted)
    by_lock;
  !edges

(* Kahn topological order over program-order + lock edges, computing the
   vector clocks as we go.  Returns Error on a cycle (the streams admit no
   serial order at all). *)
let vector_clocks streams events =
  let n = Array.length events in
  let n_streams = List.length streams in
  let adj = Array.make n [] and indeg = Array.make n 0 in
  let add_edge a b =
    adj.(a) <- b :: adj.(a);
    indeg.(b) <- indeg.(b) + 1
  in
  (* Program order: events were built stream-major, so consecutive
     positions of a stream are adjacent indices. *)
  Array.iteri
    (fun idx ev ->
      if idx + 1 < n && events.(idx + 1).stream = ev.stream then
        add_edge idx (idx + 1))
    events;
  List.iter (fun (a, b) -> add_edge a b) (lock_edges events);
  let clocks = Array.init n (fun _ -> Array.make n_streams 0) in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.take queue in
    incr seen;
    let ev = events.(i) in
    clocks.(i).(ev.stream) <- max clocks.(i).(ev.stream) (ev.pos + 1);
    List.iter
      (fun j ->
        Array.iteri
          (fun s v -> if v > clocks.(j).(s) then clocks.(j).(s) <- v)
          clocks.(i);
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      adj.(i)
  done;
  if !seen < n then
    Error
      (Violation.Order_cycle
         {
           detail =
             Printf.sprintf
               "lock seqno edges and commit order form a cycle (%d of %d \
                events unreachable)"
               (n - !seen) n;
         })
  else Ok clocks

type write = { region : int; offset : int; len : int; owner : int }

let overlapping_writes events =
  let writes = ref [] in
  Array.iteri
    (fun idx ev ->
      match ev.txn.R.cmd with
      | Some c ->
          (* A command record's writes are only known by re-execution;
             for race purposes treat it as writing its whole declared
             regions (conservative: lock-ordered commands are excluded
             by [precedes], so this cannot flag a properly locked
             workload). *)
          List.iter
            (fun region ->
              writes := { region; offset = 0; len = max_int; owner = idx }
                :: !writes)
            c.R.cmd_regions
      | None ->
          List.iter
            (fun r ->
              let len = Bytes.length r.R.data in
              if len > 0 then
                writes :=
                  { region = r.R.region; offset = r.R.offset; len;
                    owner = idx }
                  :: !writes)
            ev.txn.R.ranges)
    events;
  let sorted =
    List.sort
      (fun a b ->
        let c = Int.compare a.region b.region in
        if c <> 0 then c else Int.compare a.offset b.offset)
      !writes
  in
  (* Sweep in address order, keeping the active set of ranges whose end
     extends past the current offset. *)
  let pairs = ref [] in
  let active = ref [] in
  List.iter
    (fun w ->
      active :=
        List.filter
          (fun a -> a.region = w.region && a.offset + a.len > w.offset)
          !active;
      List.iter
        (fun a -> if a.owner <> w.owner then pairs := (a, w) :: !pairs)
        !active;
      active := w :: !active)
    sorted;
  !pairs

let check streams =
  let events = build_events streams in
  match vector_clocks streams events with
  | Error v -> [ v ]
  | Ok clocks ->
      let reported = Hashtbl.create 16 in
      List.filter_map
        (fun (a, b) ->
          let ea = events.(a.owner) and eb = events.(b.owner) in
          let key = (min a.owner b.owner, max a.owner b.owner) in
          if
            ea.stream = eb.stream
            || precedes clocks ea b.owner
            || precedes clocks eb a.owner
            || Hashtbl.mem reported key
          then None
          else begin
            Hashtbl.add reported key ();
            Some
              (Violation.Unlocked_race
                 {
                   region = a.region;
                   a = Violation.txn_id_of ea.txn;
                   a_range = (a.offset, a.len);
                   b = Violation.txn_id_of eb.txn;
                   b_range = (b.offset, b.len);
                 })
          end)
        (overlapping_writes events)
