(* Repo-specific source lint.  Three rules, all lexical over comment- and
   string-stripped source text:

   - poly-compare: a bare (or Stdlib-qualified) [compare] applied as a
     function.  Polymorphic compare on wire/record types silently orders
     by field declaration order and breaks when a field becomes abstract
     or mutable; the repo's record types must use explicit comparators.
   - catch-all-handler: [try ... with _ ->] in recovery-path code
     (rvm/wal/core/storage/locks).  Recovery must distinguish a torn
     record from a programming error; a wildcard handler converts
     corruption into silent data loss.
   - obj-magic: any use of [Obj.magic].
   - hot-path-copy: [Bytes.sub], [Bytes.copy] or [Buffer.to_bytes] in the
     zero-copy data path (wal/net/core).  Those layers move committed
     data by reference (Slice windows and gather lists); a materializing
     copy belongs in lib/util where it is counted, or needs an explicit
     [copy-ok] comment on the same line explaining why it is fine.
   - float-equality: [=] or [<>] applied to a sim-clock value in lib/
     (an operand reading or ending in [at], [now], [clock] or
     [deadline]).  Timestamps are floats; exact equality on them is
     almost always a tie-break bug waiting for a perturbed schedule —
     order comparisons or an explicit tolerance are wanted instead.  A
     deliberate exact-tie test takes an [eq-ok] comment on the line.
   - print-debug: [Printf.printf] / [Printf.eprintf] / [Format.printf] /
     [Format.eprintf] in library code.  Libraries must report through a
     formatter handed to them (as report.ml does) or through the tracing
     layer (lib/obs), never by writing to the process's std channels —
     stray debugging output corrupts harness stdout (bench JSON, golden
     tests).  report.ml and lib/obs are exempt; elsewhere a deliberate
     print takes a [print-ok] comment on the same line.
   - wall-clock: [Unix.gettimeofday], [Unix.sleep]/[Unix.sleepf] or
     [Random.self_init] in library code outside lib/real.  The sim's
     determinism rests on every library reading time from the engine
     (Proc.now / Engine.now) and randomness from a seeded Rng; one stray
     host-clock read makes replayed schedules diverge.  lib/real is the
     one place wall time is the point; elsewhere a deliberate use takes
     a [clock-ok] comment on the same line.
   - flight-alloc: an allocating [Bytes.*] constructor or any [Buffer.*]
     use in the flight-recorder ring (lib/obs flight.ml).  The ring is
     always on and its record path must stay allocation-free (~ns/event,
     no GC pressure on every span of every run); deliberate one-time or
     dump-path allocations take an [alloc-ok] comment on the same line.

   The scanner blanks comments, string literals and character literals
   (preserving newlines and byte positions), so mentions of [compare] in
   docs or in this very file's rule table do not trip the lint. *)

let rules =
  [
    "poly-compare";
    "catch-all-handler";
    "obj-magic";
    "hot-path-copy";
    "print-debug";
    "float-equality";
    "wall-clock";
    "flight-alloc";
  ]

(* Directories whose files are considered recovery paths for the
   catch-all-handler rule. *)
let recovery_dirs = [ "rvm"; "wal"; "core"; "storage"; "locks"; "analysis" ]

let in_recovery_path file =
  let parts = String.split_on_char '/' file in
  List.exists (fun p -> List.mem p recovery_dirs) parts

(* Directories forming the zero-copy data path, for hot-path-copy. *)
let hot_path_dirs = [ "wal"; "net"; "core" ]

let in_hot_path file =
  let parts = String.split_on_char '/' file in
  List.exists (fun p -> List.mem p hot_path_dirs) parts

(* Library code for the print-debug rule: anything under lib/, except
   report.ml (whose job is rendering) and lib/obs (whose job is
   emitting trace files). *)
let in_library file =
  let parts = String.split_on_char '/' file in
  List.mem "lib" parts
  && (not (List.mem "obs" parts))
  && Filename.basename file <> "report.ml"

(* --------------------------------------------------------------- *)
(* Comment / string stripping *)

let effective src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !depth > 0 then begin
      (* Inside a (possibly nested) comment. *)
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr depth;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr depth;
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      incr depth;
      i := !i + 2
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        (match src.[!i] with
        | '\\' when !i + 1 < n ->
            blank !i;
            blank (!i + 1);
            incr i
        | '"' -> fin := true
        | _ -> blank !i);
        incr i
      done
    end
    else if
      (* Character literal: 'x' or '\x..'; leave type variables ('a)
         alone by requiring the closing quote. *)
      c = '\''
      && ((!i + 2 < n && src.[!i + 2] = '\'' && src.[!i + 1] <> '\\')
         || (!i + 3 < n && src.[!i + 1] = '\\' && src.[!i + 3] = '\''))
    then begin
      let len = if src.[!i + 1] = '\\' then 4 else 3 in
      for j = !i to !i + len - 1 do
        blank j
      done;
      i := !i + len
    end
    else incr i
  done;
  Bytes.to_string out

let line_of src pos =
  let line = ref 1 in
  for i = 0 to min pos (String.length src - 1) - 1 do
    if src.[i] = '\n' then incr line
  done;
  !line

let is_ident c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* All positions where [word] occurs as a whole token. *)
let token_positions text word =
  let wl = String.length word and n = String.length text in
  let rec loop from acc =
    if from + wl > n then List.rev acc
    else
      match String.index_from_opt text from word.[0] with
      | None -> List.rev acc
      | Some p when p + wl > n -> List.rev acc
      | Some p ->
          let matches =
            String.sub text p wl = word
            && (p = 0 || not (is_ident text.[p - 1]))
            && (p + wl = n || not (is_ident text.[p + wl]))
          in
          loop (p + 1) (if matches then p :: acc else acc)
  in
  loop 0 []

let prev_nonspace text pos =
  let rec loop i =
    if i < 0 then None
    else
      match text.[i] with ' ' | '\t' | '\n' -> loop (i - 1) | c -> Some (i, c)
  in
  loop (pos - 1)

let next_nonspace text pos =
  let n = String.length text in
  let rec loop i =
    if i >= n then None
    else
      match text.[i] with ' ' | '\t' | '\n' -> loop (i + 1) | c -> Some (i, c)
  in
  loop pos

let word_ending_at text pos =
  (* The identifier whose last char is at [pos]. *)
  let rec start i = if i >= 0 && is_ident text.[i] then start (i - 1) else i in
  let s = start pos in
  String.sub text (s + 1) (pos - s)

(* --------------------------------------------------------------- *)
(* Rules *)

let check_poly_compare ~file text =
  List.filter_map
    (fun p ->
      let flagged_qualifier =
        match prev_nonspace text p with
        | Some (i, '.') -> (
            (* Qualified: only Stdlib/Pervasives count as polymorphic. *)
            match word_ending_at text (i - 1) with
            | "Stdlib" | "Pervasives" -> Some true
            | _ -> Some false)
        | Some (_, '~') -> Some false (* labelled argument *)
        | Some (i, c) when is_ident c -> (
            match word_ending_at text i with
            | "let" | "and" | "val" | "external" | "method" ->
                Some false (* a definition of compare, not a use *)
            | _ -> None)
        | _ -> None
      in
      let declaration_like =
        match next_nonspace text (p + String.length "compare") with
        | Some (_, (':' | ';' | '=' | '}')) ->
            true (* type/field declaration or record pun *)
        | _ -> false
      in
      match flagged_qualifier with
      | Some false -> None
      | Some true ->
          Some
            (Violation.Lint
               {
                 file;
                 line = line_of text p;
                 rule = "poly-compare";
                 detail =
                   "Stdlib.compare is polymorphic; use an explicit comparator";
               })
      | None ->
          if declaration_like then None
          else
            Some
              (Violation.Lint
                 {
                   file;
                   line = line_of text p;
                   rule = "poly-compare";
                   detail =
                     "bare polymorphic compare; use Int.compare / \
                      String.compare or a per-type comparator";
                 }))
    (token_positions text "compare")

let check_catch_all ~file text =
  if not (in_recovery_path file) then []
  else
    List.filter_map
      (fun p ->
        (* with [|] _ -> *)
        let after = p + String.length "with" in
        let after =
          match next_nonspace text after with
          | Some (i, '|') -> i + 1
          | _ -> after
        in
        let arrow_follows i =
          match next_nonspace text (i + 1) with
          | Some (j, '-') -> j + 1 < String.length text && text.[j + 1] = '>'
          | _ -> false
        in
        match next_nonspace text after with
        | Some (i, '_')
          when (i + 1 >= String.length text || not (is_ident text.[i + 1]))
               && arrow_follows i ->
            Some
              (Violation.Lint
                 {
                   file;
                   line = line_of text p;
                   rule = "catch-all-handler";
                   detail =
                     "catch-all exception handler in a recovery path; match \
                      the expected exceptions explicitly";
                 })
        | _ -> None)
      (token_positions text "with")

let check_obj_magic ~file text =
  List.filter_map
    (fun p ->
      match next_nonspace text (p + String.length "Obj") with
      | Some (i, '.') -> (
          match next_nonspace text (i + 1) with
          | Some (j, 'm')
            when j + 5 <= String.length text
                 && String.sub text j 5 = "magic"
                 && (j + 5 = String.length text
                    || not (is_ident text.[j + 5])) ->
              Some
                (Violation.Lint
                   {
                     file;
                     line = line_of text p;
                     rule = "obj-magic";
                     detail = "Obj.magic defeats the type system";
                   })
          | _ -> None)
      | _ -> None)
    (token_positions text "Obj")

(* The raw source line containing byte position [pos] ([effective]
   preserves byte positions, so positions in the stripped text index the
   original source directly). *)
let raw_line src pos =
  let n = String.length src in
  let pos = min pos (n - 1) in
  let rec back i = if i > 0 && src.[i - 1] <> '\n' then back (i - 1) else i in
  let rec fwd i = if i < n && src.[i] <> '\n' then fwd (i + 1) else i in
  let s = back pos in
  String.sub src s (fwd pos - s)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
  loop 0

let check_hot_path_copy ~file ~src text =
  if not (in_hot_path file) then []
  else
    let qualified_call ~modname ~fns p =
      match next_nonspace text (p + String.length modname) with
      | Some (i, '.') -> (
          match next_nonspace text (i + 1) with
          | Some (j, c) when is_ident c ->
              let rec fin k =
                if k < String.length text && is_ident text.[k] then fin (k + 1)
                else k
              in
              let word = String.sub text j (fin j - j) in
              if List.mem word fns then Some (modname ^ "." ^ word) else None
          | _ -> None)
      | _ -> None
    in
    let flag modname fns =
      List.filter_map
        (fun p ->
          match qualified_call ~modname ~fns p with
          | None -> None
          | Some callee ->
              (* copy-ok on the same source line opts the call out. *)
              if contains_sub (raw_line src p) "copy-ok" then None
              else
                Some
                  (Violation.Lint
                     {
                       file;
                       line = line_of text p;
                       rule = "hot-path-copy";
                       detail =
                         callee
                         ^ " materializes a copy on the zero-copy data path; \
                            use Slice windows / gather lists, or annotate the \
                            line with copy-ok";
                     }))
        (token_positions text modname)
    in
    flag "Bytes" [ "sub"; "copy" ] @ flag "Buffer" [ "to_bytes" ]

let check_print_debug ~file ~src text =
  if not (in_library file) then []
  else
    let qualified_call ~modname ~fns p =
      match next_nonspace text (p + String.length modname) with
      | Some (i, '.') -> (
          match next_nonspace text (i + 1) with
          | Some (j, c) when is_ident c ->
              let rec fin k =
                if k < String.length text && is_ident text.[k] then fin (k + 1)
                else k
              in
              let word = String.sub text j (fin j - j) in
              if List.mem word fns then Some (modname ^ "." ^ word) else None
          | _ -> None)
      | _ -> None
    in
    let flag modname =
      List.filter_map
        (fun p ->
          match qualified_call ~modname ~fns:[ "printf"; "eprintf" ] p with
          | None -> None
          | Some callee ->
              (* print-ok on the same source line opts the call out. *)
              if contains_sub (raw_line src p) "print-ok" then None
              else
                Some
                  (Violation.Lint
                     {
                       file;
                       line = line_of text p;
                       rule = "print-debug";
                       detail =
                         callee
                         ^ " writes to a std channel from library code; \
                            render through a caller-supplied formatter or \
                            lib/obs, or annotate the line with print-ok";
                     }))
        (token_positions text modname)
    in
    flag "Printf" @ flag "Format"

(* Library code for the wall-clock rule: anything under lib/ except
   lib/real, whose entire purpose is running on the host clock. *)
let in_deterministic_lib file =
  let parts = String.split_on_char '/' file in
  List.mem "lib" parts && not (List.mem "real" parts)

let check_wall_clock ~file ~src text =
  if not (in_deterministic_lib file) then []
  else
    let qualified_call ~modname ~fns p =
      match next_nonspace text (p + String.length modname) with
      | Some (i, '.') -> (
          match next_nonspace text (i + 1) with
          | Some (j, c) when is_ident c ->
              let rec fin k =
                if k < String.length text && is_ident text.[k] then fin (k + 1)
                else k
              in
              let word = String.sub text j (fin j - j) in
              if List.mem word fns then Some (modname ^ "." ^ word) else None
          | _ -> None)
      | _ -> None
    in
    let flag modname fns =
      List.filter_map
        (fun p ->
          match qualified_call ~modname ~fns p with
          | None -> None
          | Some callee ->
              (* clock-ok on the same source line opts the call out. *)
              if contains_sub (raw_line src p) "clock-ok" then None
              else
                Some
                  (Violation.Lint
                     {
                       file;
                       line = line_of text p;
                       rule = "wall-clock";
                       detail =
                         callee
                         ^ " reads the host clock/entropy in deterministic \
                            library code; use Proc.now / Engine.now and a \
                            seeded Rng, move it to lib/real, or annotate the \
                            line with clock-ok";
                     }))
        (token_positions text modname)
    in
    flag "Unix" [ "gettimeofday"; "sleep"; "sleepf" ]
    @ flag "Random" [ "self_init" ]

(* The flight-recorder ring hot path: flight.ml inside an obs library
   directory.  Everything in that file except explicitly annotated
   one-time/dump-path allocations runs per recorded event. *)
let in_flight_ring file =
  let parts = String.split_on_char '/' file in
  List.mem "obs" parts && Filename.basename file = "flight.ml"

let check_flight_alloc ~file ~src text =
  if not (in_flight_ring file) then []
  else
    let qualified_call ~modname ~fns p =
      match next_nonspace text (p + String.length modname) with
      | Some (i, '.') -> (
          match next_nonspace text (i + 1) with
          | Some (j, c) when is_ident c ->
              let rec fin k =
                if k < String.length text && is_ident text.[k] then fin (k + 1)
                else k
              in
              let word = String.sub text j (fin j - j) in
              if fns = [] || List.mem word fns then
                Some (modname ^ "." ^ word)
              else None
          | _ -> None)
      | _ -> None
    in
    let flag modname fns =
      List.filter_map
        (fun p ->
          match qualified_call ~modname ~fns p with
          | None -> None
          | Some callee ->
              (* alloc-ok on the same source line opts the call out. *)
              if contains_sub (raw_line src p) "alloc-ok" then None
              else
                Some
                  (Violation.Lint
                     {
                       file;
                       line = line_of text p;
                       rule = "flight-alloc";
                       detail =
                         callee
                         ^ " allocates in the always-on flight ring; the \
                            per-event record path must be allocation-free \
                            — write into the preallocated ring, or \
                            annotate a one-time/dump-path allocation with \
                            alloc-ok";
                     }))
        (token_positions text modname)
    in
    flag "Bytes"
      [
        "create"; "make"; "init"; "sub"; "sub_string"; "copy"; "cat";
        "extend"; "of_string"; "to_string";
      ]
    @ flag "Buffer" []

(* Clock-valued operand heuristic for float-equality: an identifier (or
   the last component of a dotted path) that names a simulation
   timestamp. *)
let clockish word =
  let suffix s =
    let n = String.length s and m = String.length word in
    m > n && String.sub word (m - n) n = s
  in
  match word with
  | "at" | "now" | "clock" | "deadline" -> true
  | _ -> suffix "_at" || suffix "_deadline" || suffix "_clock"

let in_lib file = List.mem "lib" (String.split_on_char '/' file)

let check_float_equality ~file ~src text =
  if not (in_lib file) then []
  else begin
    let n = String.length text in
    (* Positions of a standalone [=] or of [<>]. *)
    let ops = ref [] in
    for i = 0 to n - 1 do
      if
        text.[i] = '='
        && (i = 0 || not (List.mem text.[i - 1] [ '<'; '>'; '!'; '='; ':' ]))
        && (i + 1 >= n || text.[i + 1] <> '=')
      then ops := i :: !ops
      else if text.[i] = '<' && i + 1 < n && text.[i + 1] = '>' then
        ops := i :: !ops
    done;
    let path_tail_back i =
      (* Last component of the dotted path whose final char is at [i]. *)
      word_ending_at text i
    in
    let rec path_tail_fwd i =
      (* Last component of the dotted path starting at [i]. *)
      let rec fin k =
        if k < n && is_ident text.[k] then fin (k + 1) else k
      in
      let e = fin i in
      if e = i then ""
      else
        match next_nonspace text e with
        | Some (j, '.') -> (
            match next_nonspace text (j + 1) with
            | Some (k, c) when is_ident c && not (c >= 'A' && c <= 'Z') ->
                path_tail_fwd k
            | _ -> String.sub text i (e - i))
        | _ -> String.sub text i (e - i)
    in
    (* Start of the dotted path whose final char is at [i] (for context
       inspection: what precedes the left operand). *)
    let rec path_start i =
      let rec back k = if k >= 0 && is_ident text.[k] then back (k - 1) else k in
      let s = back i in
      match prev_nonspace text (s + 1) with
      | Some (j, '.') -> (
          match prev_nonspace text j with
          | Some (k, c) when is_ident c -> path_start k
          | _ -> s + 1)
      | _ -> s + 1
    in
    List.filter_map
      (fun p ->
        let left =
          match prev_nonspace text p with
          | Some (i, c) when is_ident c -> Some i
          | _ -> None
        in
        let right_pos = p + (if text.[p] = '<' then 2 else 1) in
        let right =
          match next_nonspace text right_pos with
          | Some (i, c) when is_ident c -> Some i
          | _ -> None
        in
        let left_clockish =
          match left with
          | Some i -> clockish (path_tail_back i)
          | None -> false
        in
        let right_clockish =
          match right with
          | Some i -> clockish (path_tail_fwd i)
          | None -> false
        in
        if not (left_clockish || right_clockish) then None
        else
          (* Exclude bindings and record fields: [let x = ...],
             [let f a b = ...], [{ at = ... }], [; clock = ...],
             [?(at = ...)].  Walk back over the (identifier) tokens
             preceding the left operand until something decides the
             context: a binder keyword or record punctuation means a
             definition, an expression keyword or operator means a
             comparison. *)
          let binding_like =
            match left with
            | None -> true  (* no left operand: not a comparison *)
            | Some i ->
                let rec walk pos steps =
                  if steps > 12 then false
                  else
                    match prev_nonspace text pos with
                    | None -> true  (* start of file: a definition *)
                    | Some (j, c) when is_ident c -> (
                        let w = word_ending_at text j in
                        match w with
                        | "let" | "and" | "rec" | "mutable" | "val"
                        | "method" | "external" | "with" ->
                            true
                        | "if" | "when" | "then" | "else" | "while"
                        | "do" | "begin" | "not" | "match" | "assert" ->
                            false
                        | _ -> walk (j - String.length w) (steps + 1))
                    | Some (j, c) -> (
                        match c with
                        | '{' | ';' -> true
                        | '(' -> j > 0 && text.[j - 1] = '?'
                        | _ -> false)
                in
                walk (path_start i) 0
          in
          if binding_like then None
          else if contains_sub (raw_line src p) "eq-ok" then None
          else
            Some
              (Violation.Lint
                 {
                   file;
                   line = line_of text p;
                   rule = "float-equality";
                   detail =
                     "exact equality on a sim-clock float hides tie-break \
                      bugs; compare with an order relation or a tolerance, \
                      or annotate the line with eq-ok";
                 }))
      (List.rev !ops)
  end

(* --------------------------------------------------------------- *)
(* Entry points *)

let scan_source ~file src =
  let text = effective src in
  List.concat
    [
      check_poly_compare ~file text;
      check_catch_all ~file text;
      check_obj_magic ~file text;
      check_hot_path_copy ~file ~src text;
      check_print_debug ~file ~src text;
      check_float_equality ~file ~src text;
      check_wall_clock ~file ~src text;
      check_flight_alloc ~file ~src text;
    ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = really_input_string ic len in
  close_in ic;
  b

let scan_file path = scan_source ~file:path (read_file path)

let lintable path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec scan_path path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if entry = "_build" || String.length entry = 0 || entry.[0] = '.'
           then []
           else scan_path (Filename.concat path entry))
  else if lintable path then scan_file path
  else []

let scan_paths paths = List.concat_map scan_path paths
