(* Static verifier for the log invariants the coherency protocol rests on
   (paper sections 2.2 and 3.5):

   1. per-stream monotonicity — one node's log lists each lock's seqnos in
      strictly increasing order (commit order respects acquire order);
   2. global uniqueness — a (lock, seqno) pair is granted once;
   3. write-chain consistency — a record's prev_write_seq equals the seqno
      of the closest earlier *writing* record on that lock.  Aborted and
      read-only acquires consume seqnos without extending the chain, so
      gaps in raw seqnos are legal but holes in the write chain are not;
   4. wire-codec round-trip — Wire.encode / Wire.decode is the identity on
      every record (modulo the canonical range sort the codec performs);
   5. merge legality — Merge.merge_records succeeds and emits a legal
      serial order of its inputs (an interleaving that preserves every
      stream and keeps per-lock seqnos ascending). *)

module R = Lbc_wal.Record

(* --------------------------------------------------------------- *)
(* 1 + 2: seqno monotonicity and uniqueness *)

let check_monotonic streams =
  let violations = ref [] in
  List.iteri
    (fun si stream ->
      let last : (int, int * Violation.txn_id) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (txn : R.txn) ->
          List.iter
            (fun l ->
              (match Hashtbl.find_opt last l.R.lock_id with
              | Some (prev, _) when l.R.seqno <= prev ->
                  violations :=
                    Violation.Seqno_regression
                      {
                        log = si;
                        lock = l.R.lock_id;
                        seqno = l.R.seqno;
                        after = prev;
                        txn = Violation.txn_id_of txn;
                      }
                    :: !violations
              | _ -> ());
              Hashtbl.replace last l.R.lock_id
                (l.R.seqno, Violation.txn_id_of txn))
            txn.R.locks)
        stream)
    streams;
  List.rev !violations

let check_unique streams =
  let seen : (int * int, Violation.txn_id) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref [] in
  List.iter
    (List.iter (fun (txn : R.txn) ->
         List.iter
           (fun l ->
             let key = (l.R.lock_id, l.R.seqno) in
             match Hashtbl.find_opt seen key with
             | Some first ->
                 violations :=
                   Violation.Seqno_duplicate
                     {
                       lock = l.R.lock_id;
                       seqno = l.R.seqno;
                       a = first;
                       b = Violation.txn_id_of txn;
                     }
                   :: !violations
             | None -> Hashtbl.add seen key (Violation.txn_id_of txn))
           txn.R.locks))
    streams;
  List.rev !violations

(* --------------------------------------------------------------- *)
(* 3: prev_write_seq chain *)

(* [base] gives the per-lock chain baseline.  Full logs start at 0; logs
   trimmed by a checkpoint have lost their oldest records, so with
   [~infer_base:true] (the default for offline images) the first observed
   record's prev_write_seq is trusted as the baseline instead. *)
let check_chain ?(infer_base = true) ?(base = fun _ -> 0) streams =
  let by_lock :
      (int, (int * int * bool * Violation.txn_id) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (List.iter (fun (txn : R.txn) ->
         let is_write = R.is_write txn in
         List.iter
           (fun l ->
             let prev =
               Option.value ~default:[] (Hashtbl.find_opt by_lock l.R.lock_id)
             in
             Hashtbl.replace by_lock l.R.lock_id
               ((l.R.seqno, l.R.prev_write_seq, is_write,
                 Violation.txn_id_of txn)
               :: prev))
           txn.R.locks))
    streams;
  let violations = ref [] in
  Hashtbl.iter
    (fun lock entries ->
      let entries =
        List.sort
          (fun (s1, _, _, _) (s2, _, _, _) -> Int.compare s1 s2)
          entries
      in
      let write_seqs =
        List.filter_map
          (fun (s, _, w, _) -> if w then Some s else None)
          entries
      in
      let chain = ref (base lock) in
      List.iteri
        (fun i (seqno, prev_write_seq, is_write, txn) ->
          if i = 0 && infer_base && prev_write_seq > !chain then
            (* Trimmed log: accept the first record's claim as baseline. *)
            chain := prev_write_seq;
          if prev_write_seq <> !chain then
            violations :=
              (if
                 prev_write_seq > !chain
                 && not (List.mem prev_write_seq write_seqs)
               then
                 Violation.Seqno_gap
                   { lock; missing = prev_write_seq; referenced_by = txn }
               else
                 Violation.Chain_broken
                   {
                     lock;
                     seqno;
                     prev_write_seq;
                     expected = !chain;
                     txn;
                   })
              :: !violations;
          if is_write then chain := seqno)
        entries)
    by_lock;
  List.rev !violations

(* --------------------------------------------------------------- *)
(* 4: wire-codec round-trip *)

let canonical_ranges ranges =
  List.sort
    (fun (a : R.range) (b : R.range) ->
      let c = Int.compare a.region b.region in
      if c <> 0 then c else Int.compare a.offset b.offset)
    ranges

let equal_modulo_range_order (a : R.txn) (b : R.txn) =
  R.equal_txn
    { a with R.ranges = canonical_ranges a.R.ranges }
    { b with R.ranges = canonical_ranges b.R.ranges }

let check_roundtrip streams =
  let violations = ref [] in
  List.iter
    (List.iter (fun (txn : R.txn) ->
         match Lbc_core.Wire.decode (Lbc_core.Wire.encode txn) with
         | decoded ->
             if not (equal_modulo_range_order txn decoded) then
               violations :=
                 Violation.Codec_mismatch
                   {
                     txn = Violation.txn_id_of txn;
                     detail =
                       Format.asprintf
                         "decode(encode) differs: %a <> %a" R.pp_txn txn
                         R.pp_txn decoded;
                   }
                 :: !violations
         | exception exn ->
             violations :=
               Violation.Codec_mismatch
                 {
                   txn = Violation.txn_id_of txn;
                   detail = "round-trip raised " ^ Printexc.to_string exn;
                 }
               :: !violations))
    streams;
  List.rev !violations

(* Decode an untrusted wire image (as an Update message payload would be):
   a failure here is a codec-decode violation, used by the selftest's
   truncation corruption. *)
let check_wire_image payload =
  match Lbc_core.Wire.decode payload with
  | (_ : R.txn) -> []
  | exception Lbc_util.Codec.Truncated why ->
      [ Violation.Codec_error { detail = "truncated wire image: " ^ why } ]
  | exception exn ->
      [ Violation.Codec_error { detail = Printexc.to_string exn } ]

(* --------------------------------------------------------------- *)
(* 5: merge legality *)

let check_merge streams =
  match Lbc_core.Merge.merge_records streams with
  | Error (Lbc_core.Merge.Unorderable why) ->
      [ Violation.Merge_unorderable { detail = why } ]
  | Ok merged ->
      let violations = ref [] in
      let total = List.fold_left (fun a s -> a + List.length s) 0 streams in
      if List.length merged <> total then
        violations :=
          Violation.Merge_not_serial
            {
              detail =
                Printf.sprintf "merged %d records from %d inputs"
                  (List.length merged) total;
            }
          :: !violations;
      (* Each input stream must be a subsequence of the merged order.
         Merge emits the very records it consumed, so physical equality
         identifies the source cell. *)
      let heads = Array.of_list (List.map ref streams) in
      List.iter
        (fun txn ->
          let claimed = ref false in
          Array.iter
            (fun head ->
              match !head with
              | h :: rest when (not !claimed) && h == txn ->
                  claimed := true;
                  head := rest
              | _ -> ())
            heads;
          if not !claimed then
            violations :=
              Violation.Merge_not_serial
                {
                  detail =
                    Format.asprintf
                      "record %a is not the next record of any input stream"
                      R.pp_txn txn;
                }
              :: !violations)
        merged;
      (* Per-lock seqnos must ascend along the merged order. *)
      let last : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (txn : R.txn) ->
          List.iter
            (fun l ->
              (match Hashtbl.find_opt last l.R.lock_id with
              | Some prev when l.R.seqno <= prev ->
                  violations :=
                    Violation.Merge_not_serial
                      {
                        detail =
                          Printf.sprintf
                            "lock %d seqno %d emitted after seqno %d"
                            l.R.lock_id l.R.seqno prev;
                      }
                    :: !violations
              | _ -> ());
              Hashtbl.replace last l.R.lock_id l.R.seqno)
            txn.R.locks)
        merged;
      List.rev !violations

(* --------------------------------------------------------------- *)
(* 6: checkpoint bracket integrity *)

(* A fuzzy checkpoint brackets its region flushes with Ckpt_begin/Ckpt_end
   control records, and the final trim lands exactly on the begin marker —
   so in any well-formed log image every live end marker is preceded by
   its live begin.  An end without its begin means the head was trimmed
   past a checkpoint's start, the trim the ckpt low-water mark forbids. *)
let check_ckpt_brackets logs =
  List.concat
    (List.mapi
       (fun li log ->
         let ctrls, _status =
           Lbc_wal.Log.fold_ctrl log ~init:[] (fun acc _off c -> c :: acc)
         in
         let open_ckpts : (int * int, unit) Hashtbl.t = Hashtbl.create 4 in
         let violations = ref [] in
         List.iter
           (fun (c : R.ctrl) ->
             let key = (c.R.node, c.R.ckpt_id) in
             match c.R.kind with
             | R.Ckpt_begin -> Hashtbl.replace open_ckpts key ()
             | R.Ckpt_end ->
                 if Hashtbl.mem open_ckpts key then Hashtbl.remove open_ckpts key
                 else
                   violations :=
                     Violation.Ckpt_trim
                       { log = li; node = c.R.node; ckpt_id = c.R.ckpt_id }
                     :: !violations
             | R.Region_index -> ())
           (List.rev ctrls);
         List.rev !violations)
       logs)

(* --------------------------------------------------------------- *)
(* 7: region coverage *)

(* With the mapped region set declared, every range must land inside it:
   receivers skip ranges for regions they have not mapped (counting them
   in [Rvm.stats.unmapped_ranges]), so a write outside the set silently
   reaches nobody. *)
let check_regions ~regions streams =
  let violations = ref [] in
  List.iter
    (List.iter (fun (txn : R.txn) ->
         List.iter
           (fun region ->
             if not (List.mem region regions) then
               violations :=
                 Violation.Unmapped_region
                   { region; txn = Violation.txn_id_of txn }
                 :: !violations)
           (R.regions txn)))
    streams;
  List.rev !violations

(* --------------------------------------------------------------- *)
(* Umbrella *)

let check_streams ?infer_base ?base ?(races = true) ?regions streams =
  List.concat
    [
      check_monotonic streams;
      check_unique streams;
      check_chain ?infer_base ?base streams;
      check_roundtrip streams;
      check_merge streams;
      (if races then Race.check streams else []);
      (match regions with
      | None -> []
      | Some regions -> check_regions ~regions streams);
    ]

(* Read a log and keep only complete records; a torn tail is RVM's normal
   crash residue, reported separately by the CLI, not a violation. *)
let stream_of_log log = fst (Lbc_wal.Log.read_all log)

(* A fuzzy checkpoint trims ONE node's log, so records in other logs may
   reference write seqnos that now live nowhere — a legal hole, not data
   loss.  Within one node's log per-lock seqnos strictly ascend, so a
   trimmed log can only have hidden writes {e below} its first live seqno
   on each lock (or any seqno on locks with no live record).  With
   [infer_base] (the offline default) a seqno-gap is excused when some
   trimmed log could have held the missing write; gaps nothing could
   explain still fire. *)
let gap_excused ~logs ~streams (v : Violation.t) =
  match v with
  | Violation.Seqno_gap { lock; missing; _ } ->
      List.exists2
        (fun log stream ->
          Lbc_wal.Log.head log > Lbc_wal.Log.header_size
          &&
          let first_live =
            List.fold_left
              (fun acc (txn : R.txn) ->
                List.fold_left
                  (fun acc l ->
                    if l.R.lock_id = lock then min acc l.R.seqno else acc)
                  acc txn.R.locks)
              max_int stream
          in
          missing < first_live)
        logs streams
  | _ -> false

let check_logs ?(infer_base = true) ?base ?races ?regions logs =
  let streams = List.map stream_of_log logs in
  let violations = check_streams ~infer_base ?base ?races ?regions streams in
  let violations =
    if infer_base then
      List.filter (fun v -> not (gap_excused ~logs ~streams v)) violations
    else violations
  in
  violations @ check_ckpt_brackets logs
