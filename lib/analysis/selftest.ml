(* End-to-end self-test for the checker itself.

   Positive half: run chaos-style simulated workloads (the same shape as
   test/test_chaos.ml) under several configurations and require that the
   verifier accepts every per-node redo log it produces.

   Negative half ("mutation check"): seed one corruption per invariant
   into otherwise-valid streams and require that the verifier reports a
   violation with the right name:

   - seqno swap        -> seqno-monotonicity
   - seqno gap         -> seqno-gap (a write drops out of the chain)
   - unlocked write    -> unlocked-race
   - codec truncation  -> codec-decode

   Plus a lint self-check on a synthetic source fragment. *)

module R = Lbc_wal.Record
open Lbc_core

type result = { check : string; ok : bool; detail : string }

let all_ok results = List.for_all (fun r -> r.ok) results

(* --------------------------------------------------------------- *)
(* Workload (mirrors test/test_chaos.ml, scaled down) *)

let regions = 2
let locks_per_region = 2
let region_size = 2048
let lock_region l = l / locks_per_region

let lock_offset rng l =
  let part = l mod locks_per_region in
  let span = region_size / locks_per_region in
  (part * span) + (8 * Lbc_util.Rng.int rng (span / 8))

let build_sim_logs ?(checkpoints = false) ~config ~nodes ~seed ~iterations ()
    =
  let c = Cluster.create ~config ~nodes () in
  for r = 0 to regions - 1 do
    Cluster.add_region c ~id:r ~size:region_size;
    Cluster.map_region_all c ~region:r
  done;
  let rng = Lbc_util.Rng.create seed in
  for n = 0 to nodes - 1 do
    let rng = Lbc_util.Rng.split rng in
    Cluster.spawn c ~node:n (fun node ->
        for _ = 1 to iterations do
          let txn = Node.Txn.begin_ node in
          let l1 = Lbc_util.Rng.int rng (regions * locks_per_region) in
          let l2 = Lbc_util.Rng.int rng (regions * locks_per_region) in
          let ls = List.sort_uniq Int.compare [ l1; l2 ] in
          List.iter (fun l -> Node.Txn.acquire txn l) ls;
          List.iter
            (fun l ->
              if Lbc_util.Rng.int rng 4 > 0 then
                Node.Txn.set_u64 txn ~region:(lock_region l)
                  ~offset:(lock_offset rng l)
                  (Lbc_util.Rng.int64 rng))
            ls;
          if Lbc_util.Rng.int rng 10 = 0 then Node.Txn.abort txn
          else Node.Txn.commit txn;
          Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 30.0)
        done)
  done;
  if checkpoints then begin
    Cluster.run ~until:300.0 c;
    ignore (Cluster.online_checkpoint c)
  end;
  Cluster.run c;
  List.init nodes (fun n -> Lbc_rvm.Rvm.log (Node.rvm (Cluster.node c n)))

let build_sim_streams ?checkpoints ~config ~nodes ~seed ~iterations () =
  List.map Invariants.stream_of_log
    (build_sim_logs ?checkpoints ~config ~nodes ~seed ~iterations ())

(* --------------------------------------------------------------- *)
(* Corruption seeding *)

(* Replace the [i]-th record of stream [si]. *)
let patch streams si i f =
  List.mapi
    (fun s stream ->
      if s <> si then stream
      else List.mapi (fun j txn -> if j = i then f txn else txn) stream)
    streams

let set_seqno lock seqno (txn : R.txn) =
  {
    txn with
    R.locks =
      List.map
        (fun l -> if l.R.lock_id = lock then { l with R.seqno } else l)
        txn.R.locks;
  }

(* Two records of the same stream holding the same lock, to swap. *)
let find_swap_target streams =
  let found = ref None in
  List.iteri
    (fun si stream ->
      List.iteri
        (fun i (txn : R.txn) ->
          List.iter
            (fun l ->
              List.iteri
                (fun j (txn2 : R.txn) ->
                  if j > i && !found = None then
                    List.iter
                      (fun l2 ->
                        if l2.R.lock_id = l.R.lock_id && !found = None then
                          found :=
                            Some (si, i, j, l.R.lock_id, l.R.seqno, l2.R.seqno))
                      txn2.R.locks)
                stream)
            txn.R.locks)
        stream)
    streams;
  !found

let corrupt_seqno_swap streams =
  match find_swap_target streams with
  | None -> None
  | Some (si, i, j, lock, s1, s2) ->
      Some
        (patch
           (patch streams si i (set_seqno lock s2))
           si j (set_seqno lock s1))

(* A writing record, not the first of its lock's chain, whose seqno a
   later record names as prev_write_seq: dropping it leaves a hole the
   chain check must flag as seqno-gap. *)
let find_drop_target streams =
  let all = List.concat streams in
  let referenced lock seqno =
    List.exists
      (fun (t : R.txn) ->
        List.exists
          (fun l -> l.R.lock_id = lock && l.R.prev_write_seq = seqno)
          t.R.locks)
      all
  in
  let has_earlier lock seqno =
    List.exists
      (fun (t : R.txn) ->
        List.exists
          (fun l -> l.R.lock_id = lock && l.R.seqno < seqno)
          t.R.locks)
      all
  in
  let found = ref None in
  List.iteri
    (fun si stream ->
      List.iteri
        (fun i (txn : R.txn) ->
          if !found = None && txn.R.ranges <> [] then
            List.iter
              (fun l ->
                if
                  !found = None
                  && referenced l.R.lock_id l.R.seqno
                  && has_earlier l.R.lock_id l.R.seqno
                then found := Some (si, i))
              txn.R.locks)
        stream)
    streams;
  !found

let corrupt_seqno_gap streams =
  match find_drop_target streams with
  | None -> None
  | Some (si, i) ->
      Some
        (List.mapi
           (fun s stream ->
             if s <> si then stream
             else List.filteri (fun j _ -> j <> i) stream)
           streams)

(* Append a fresh stream holding one lock-less transaction that rewrites
   bytes some properly-locked transaction also wrote.  Zero-range
   commits (read-only transactions under Flush, lock-only records) are
   legal stream entries; the match skips them instead of trusting a
   separate guard to have filtered them before a [List.hd]. *)
let corrupt_unlocked_write streams =
  let target =
    List.find_opt
      (fun (t : R.txn) -> t.R.ranges <> [])
      (List.concat streams)
  in
  match target with
  | None | Some { R.ranges = []; _ } -> None
  | Some { R.ranges = r :: _; _ } ->
      let rogue =
        {
          R.node = List.length streams;
          tid = 999_999;
          locks = [];
          ranges = [ r ];
          cmd = None;
        }
      in
      Some (streams @ [ [ rogue ] ])

let corrupt_codec_truncation streams =
  let target =
    List.find_opt
      (fun (t : R.txn) -> t.R.ranges <> [])
      (List.concat streams)
  in
  match target with
  | None -> None
  | Some t ->
      let payload = Wire.encode t in
      Some (Bytes.sub payload 0 (Bytes.length payload - 5))

(* --------------------------------------------------------------- *)
(* The self-test proper *)

let names violations =
  List.sort_uniq String.compare (List.map Violation.name violations)

let expect_clean check streams =
  match Invariants.check_streams streams with
  | [] -> { check; ok = true; detail = "no violations" }
  | vs ->
      {
        check;
        ok = false;
        detail =
          Printf.sprintf "%d unexpected violations: %s" (List.length vs)
            (String.concat "; " (List.map Violation.to_string vs));
      }

let expect_violation check name violations =
  if List.mem name (names violations) then
    {
      check;
      ok = true;
      detail = Printf.sprintf "flagged as expected (%s)" name;
    }
  else
    {
      check;
      ok = false;
      detail =
        Printf.sprintf "expected a %s violation, got [%s]" name
          (String.concat "; " (names violations));
    }

let missing check what = { check; ok = false; detail = "no target: " ^ what }

let lint_fixture =
  String.concat "\n"
    [
      "let sorted xs = List.sort compare xs";
      "let f () = try g () with _ -> 0";
      "let cast (x : int) : float = Obj.magic x";
      "let dup b = Bytes.sub b 0 4";
      "let dup_ok b = Bytes.copy b (* copy-ok: fixture *)";
      "let dbg x = Printf.printf \"x=%d\\n\" x";
      "let dbg_ok x = Format.eprintf \"x=%d@.\" x (* print-ok: fixture *)";
      "let tie e t = e.at = now t";
      "let tie_ok e t = e.at = now t (* eq-ok: fixture *)";
      "let wall () = Unix.gettimeofday ()";
      "let seed () = Random.self_init ()";
      "let wall_ok () = Unix.sleepf 0.1 (* clock-ok: fixture *)";
    ]

(* A second fixture scanned under the flight recorder's path: the
   flight-alloc rule is scoped to lib/obs flight.ml, so it must fire
   there (and nowhere in the main fixture above). *)
let flight_fixture =
  String.concat "\n"
    [
      "let ring () = Bytes.create 4096";
      "let ring_ok () = Bytes.create 4096 (* alloc-ok: fixture *)";
      "let scratch () = Buffer.create 16";
      "let poke r = Bytes.unsafe_set r 0 'x'";
    ]

let run () =
  let streams =
    build_sim_streams ~config:Config.default ~nodes:4 ~seed:101 ~iterations:20
      ()
  in
  let clean_cases =
    [
      ("clean: eager", streams);
      ( "clean: multicast",
        build_sim_streams
          ~config:{ Config.default with Config.multicast = true }
          ~nodes:5 ~seed:303 ~iterations:15 () );
      ( "clean: lazy propagation",
        build_sim_streams
          ~config:{ Config.default with Config.propagation = Config.Lazy }
          ~nodes:3 ~seed:505 ~iterations:15 () );
      ( "clean: online checkpoint (trimmed logs)",
        build_sim_streams ~checkpoints:true ~config:Config.default ~nodes:3
          ~seed:202 ~iterations:15 () );
    ]
  in
  let clean = List.map (fun (n, s) -> expect_clean n s) clean_cases in
  let swap =
    match corrupt_seqno_swap streams with
    | None -> missing "corrupt: seqno swap" "no lock used twice in one log"
    | Some mutated ->
        expect_violation "corrupt: seqno swap" "seqno-monotonicity"
          (Invariants.check_streams mutated)
  in
  let gap =
    match corrupt_seqno_gap streams with
    | None -> missing "corrupt: seqno gap" "no referenced mid-chain write"
    | Some mutated ->
        expect_violation "corrupt: seqno gap" "seqno-gap"
          (Invariants.check_streams mutated)
  in
  let race =
    match corrupt_unlocked_write streams with
    | None -> missing "corrupt: unlocked write" "no writing record"
    | Some mutated ->
        expect_violation "corrupt: unlocked overlapping write" "unlocked-race"
          (Invariants.check_streams mutated)
  in
  let trunc =
    match corrupt_codec_truncation streams with
    | None -> missing "corrupt: codec truncation" "no writing record"
    | Some payload ->
        expect_violation "corrupt: codec truncation" "codec-decode"
          (Invariants.check_wire_image payload)
  in
  let zero_range =
    (* A stream of zero-range (read-only) commits: the verifier must
       accept it and the mutation helpers must skip it cleanly rather
       than crash on an empty range list. *)
    let ro node tid seqno prev =
      {
        R.node;
        tid;
        locks = [ { R.lock_id = 0; seqno; prev_write_seq = prev } ];
        ranges = [];
        cmd = None;
      }
    in
    let streams = [ [ ro 0 1 1 0; ro 0 2 3 0 ]; [ ro 1 3 2 0 ] ] in
    match corrupt_unlocked_write streams with
    | Some _ ->
        {
          check = "fixture: zero-range commit";
          ok = false;
          detail = "mutation helper fabricated a write from a read-only txn";
        }
    | None -> expect_clean "fixture: zero-range commit" streams
    | exception e ->
        {
          check = "fixture: zero-range commit";
          ok = false;
          detail = "mutation helper raised: " ^ Printexc.to_string e;
        }
  in
  let lint =
    let vs = Lint.scan_source ~file:"lib/core/fixture.ml" lint_fixture in
    let got = names vs in
    if
      List.mem "poly-compare" got
      && List.mem "catch-all-handler" got
      && List.mem "obj-magic" got
      && List.mem "hot-path-copy" got
      && List.mem "print-debug" got
      && List.mem "float-equality" got
      && List.mem "wall-clock" got
      (* the copy-ok / print-ok / eq-ok / clock-ok lines must be the hits
         that are NOT reported *)
      && List.length (List.filter (String.equal "hot-path-copy") got) = 1
      && List.length (List.filter (String.equal "print-debug") got) = 1
      && List.length
           (List.filter (String.equal "float-equality")
              (List.map Violation.name vs))
         = 1
      && List.length
           (List.filter (String.equal "wall-clock") (List.map Violation.name vs))
         = 2
    then
      {
        check = "lint: fixture";
        ok = true;
        detail =
          "all seven rules fire on the fixture; copy-ok, print-ok, eq-ok \
           and clock-ok suppress";
      }
    else
      {
        check = "lint: fixture";
        ok = false;
        detail = Printf.sprintf "rules fired: [%s]" (String.concat "; " got);
      }
  in
  let flight_lint =
    (* Path-scoped: the same fragment is clean outside lib/obs flight.ml
       and yields exactly two flight-alloc hits inside it (the alloc-ok
       line and the non-allocating Bytes.unsafe_set suppress). *)
    let inside =
      List.map Violation.name
        (Lint.scan_source ~file:"lib/obs/flight.ml" flight_fixture)
    in
    let outside =
      List.filter (String.equal "flight-alloc")
        (List.map Violation.name
           (Lint.scan_source ~file:"lib/core/fixture.ml" flight_fixture))
    in
    if
      List.length (List.filter (String.equal "flight-alloc") inside) = 2
      && List.length inside = 2 && outside = []
    then
      {
        check = "lint: flight-alloc fixture";
        ok = true;
        detail =
          "fires twice in lib/obs/flight.ml; alloc-ok and unsafe_set \
           suppress; silent elsewhere";
      }
    else
      {
        check = "lint: flight-alloc fixture";
        ok = false;
        detail =
          Printf.sprintf "inside: [%s]; outside flight-alloc: %d"
            (String.concat "; " inside)
            (List.length outside);
      }
  in
  let serialize =
    (* A two-node committed stream replayed against the sequential spec:
       the matching final image passes, a one-byte corruption is flagged
       as a serializability divergence. *)
    let txn node tid seqno prev byte =
      {
        R.node;
        tid;
        locks = [ { R.lock_id = 0; seqno; prev_write_seq = prev } ];
        ranges =
          [ { R.region = 0; offset = 4; data = Bytes.make 1 (Char.chr byte) } ];
        cmd = None;
      }
    in
    let streams = [ [ txn 0 1 1 0 0x11 ]; [ txn 1 2 2 1 0x22 ] ] in
    let expected = Bytes.make 16 '\000' in
    Bytes.set expected 4 (Char.chr 0x22);
    let corrupted = Bytes.copy expected in
    Bytes.set corrupted 4 (Char.chr 0x11);
    let regions = [ (0, 16) ] in
    let clean_res =
      match
        Serialize.check ~regions ~finals:[ ("node 0", fun _ -> expected) ]
          streams
      with
      | [] ->
          { check = "serialize: spec matches"; ok = true; detail = "clean" }
      | vs ->
          {
            check = "serialize: spec matches";
            ok = false;
            detail = String.concat "; " (List.map Violation.to_string vs);
          }
    in
    let corrupt_res =
      expect_violation "serialize: diverging image flagged" "serializability"
        (Serialize.check ~regions
           ~finals:[ ("node 0", fun _ -> corrupted) ]
           streams)
    in
    [ clean_res; corrupt_res ]
  in
  clean @ [ swap; gap; race; trunc; zero_range; lint; flight_lint ] @ serialize
