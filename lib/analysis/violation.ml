(* A violation is one broken invariant, tagged with the invariant's name so
   callers (CLI, tests, selftest) can assert *which* check fired, not just
   that something did. *)

(* (node, tid) — enough to find a transaction in any log dump. *)
type txn_id = { node : int; tid : int }

let txn_id_of (t : Lbc_wal.Record.txn) =
  { node = t.Lbc_wal.Record.node; tid = t.Lbc_wal.Record.tid }

type kind =
  | Seqno_regression of {
      log : int;  (* index of the offending stream *)
      lock : int;
      seqno : int;
      after : int;  (* the earlier, larger-or-equal seqno in the same log *)
      txn : txn_id;
    }
      (* Within one node's log, seqnos for a lock must strictly increase:
         the log is written in commit order and the token serializes
         acquires. *)
  | Seqno_duplicate of { lock : int; seqno : int; a : txn_id; b : txn_id }
      (* A lock's sequence numbers are globally unique (one per acquire). *)
  | Seqno_gap of { lock : int; missing : int; referenced_by : txn_id }
      (* A record's prev_write_seq names a write that appears in no log:
         the write chain has a hole. *)
  | Chain_broken of {
      lock : int;
      seqno : int;
      prev_write_seq : int;
      expected : int;
      txn : txn_id;
    }
      (* prev_write_seq must equal the seqno of the closest earlier
         *writing* record on the lock (aborted and read-only acquires do
         not advance the chain). *)
  | Unlocked_race of {
      region : int;
      a : txn_id;
      a_range : int * int;  (* offset, len *)
      b : txn_id;
      b_range : int * int;
    }
      (* Two transactions wrote overlapping bytes but are not ordered by
         the happens-before relation induced by lock sequence numbers and
         per-node commit order — the race class the interlock excludes. *)
  | Codec_mismatch of { txn : txn_id; detail : string }
      (* Wire.encode/Wire.decode is not the identity on this record. *)
  | Codec_error of { detail : string }
      (* A wire image failed to decode at all. *)
  | Merge_unorderable of { detail : string }
      (* Merge.merge_records could not serialize the streams. *)
  | Merge_not_serial of { detail : string }
      (* The merged log is not a legal serial order of its inputs. *)
  | Order_cycle of { detail : string }
      (* The happens-before graph has a cycle; no serial order exists. *)
  | Ckpt_trim of { log : int; node : int; ckpt_id : int }
      (* A live Ckpt_end marker has no live matching Ckpt_begin: the head
         was trimmed past a checkpoint's start while its end marker is
         still live — exactly the trim the checkpoint low-water mark
         forbids (recovery would replay from inside the fuzzy flush). *)
  | Unmapped_region of { region : int; txn : txn_id }
      (* A record addresses a region outside the declared region set:
         receivers silently skip such ranges, so the write is lost. *)
  | Command_unknown of { txn : txn_id; op : int }
      (* A command record names an operation no process registered:
         neither receivers nor recovery can re-execute it, so the
         transaction's effect is unreproducible from the log. *)
  | Serial_divergence of {
      witness : string;  (* which final image diverged: "node 3", "db" *)
      region : int;
      offset : int;  (* first differing byte *)
      expected : int;  (* spec byte *)
      actual : int;
    }
      (* The committed transaction stream, replayed sequentially against
         an in-memory one-copy spec, produced a region image that differs
         from the cluster's — the execution is not one-copy
         serializable. *)
  | Schedule_oracle of { scenario : string; detail : string }
      (* A scenario-specific invariant broke under an explored schedule
         (reported by lbc-explore's oracles, e.g. the planted-bug
         self-test scenario). *)
  | Lint of { file : string; line : int; rule : string; detail : string }

type t = kind

(* Stable short names, used by the CLI ("violated invariant: <name>") and
   asserted by the mutation tests. *)
let name = function
  | Seqno_regression _ -> "seqno-monotonicity"
  | Seqno_duplicate _ -> "seqno-uniqueness"
  | Seqno_gap _ -> "seqno-gap"
  | Chain_broken _ -> "write-chain"
  | Unlocked_race _ -> "unlocked-race"
  | Codec_mismatch _ -> "codec-roundtrip"
  | Codec_error _ -> "codec-decode"
  | Merge_unorderable _ -> "merge-unorderable"
  | Merge_not_serial _ -> "merge-serial-order"
  | Order_cycle _ -> "order-cycle"
  | Ckpt_trim _ -> "ckpt-low-water"
  | Unmapped_region _ -> "unmapped-region"
  | Command_unknown _ -> "command-unknown"
  | Serial_divergence _ -> "serializability"
  | Schedule_oracle _ -> "schedule-oracle"
  | Lint { rule; _ } -> rule

let pp_txn_id ppf { node; tid } = Format.fprintf ppf "n%d/t%d" node tid

let pp ppf v =
  match v with
  | Seqno_regression { log; lock; seqno; after; txn } ->
      Format.fprintf ppf
        "[%s] log %d: lock %d seqno %d appears after seqno %d (txn %a)"
        (name v) log lock seqno after pp_txn_id txn
  | Seqno_duplicate { lock; seqno; a; b } ->
      Format.fprintf ppf "[%s] lock %d seqno %d used by both %a and %a"
        (name v) lock seqno pp_txn_id a pp_txn_id b
  | Seqno_gap { lock; missing; referenced_by } ->
      Format.fprintf ppf
        "[%s] lock %d: write seqno %d referenced by %a appears in no log"
        (name v) lock missing pp_txn_id referenced_by
  | Chain_broken { lock; seqno; prev_write_seq; expected; txn } ->
      Format.fprintf ppf
        "[%s] lock %d seqno %d (txn %a): prev_write_seq=%d but last write \
         was %d"
        (name v) lock seqno pp_txn_id txn prev_write_seq expected
  | Unlocked_race { region; a; a_range = ao, al; b; b_range = bo, bl } ->
      Format.fprintf ppf
        "[%s] region %d: %a writes [%d,%d) and %a writes [%d,%d) with no \
         ordering lock"
        (name v) region pp_txn_id a ao (ao + al) pp_txn_id b bo (bo + bl)
  | Codec_mismatch { txn; detail } ->
      Format.fprintf ppf "[%s] txn %a: %s" (name v) pp_txn_id txn detail
  | Codec_error { detail } -> Format.fprintf ppf "[%s] %s" (name v) detail
  | Merge_unorderable { detail } | Merge_not_serial { detail }
  | Order_cycle { detail } ->
      Format.fprintf ppf "[%s] %s" (name v) detail
  | Ckpt_trim { log; node; ckpt_id } ->
      Format.fprintf ppf
        "[%s] log %d: ckpt-end for node %d ckpt %d without its ckpt-begin \
         (head trimmed past an incomplete checkpoint)"
        (name v) log node ckpt_id
  | Unmapped_region { region; txn } ->
      Format.fprintf ppf
        "[%s] txn %a writes region %d, which no declared region set covers"
        (name v) pp_txn_id txn region
  | Command_unknown { txn; op } ->
      Format.fprintf ppf
        "[%s] txn %a is a command record for unregistered operation %d"
        (name v) pp_txn_id txn op
  | Serial_divergence { witness; region; offset; expected; actual } ->
      Format.fprintf ppf
        "[%s] %s region %d: byte %d is 0x%02x, sequential spec says 0x%02x"
        (name v) witness region offset actual expected
  | Schedule_oracle { scenario; detail } ->
      Format.fprintf ppf "[%s] scenario %s: %s" (name v) scenario detail
  | Lint { file; line; rule; detail } ->
      Format.fprintf ppf "%s:%d: [%s] %s" file line rule detail

let to_string v = Format.asprintf "%a" pp v
