open Lbc_util

type lock_info = { lock_id : int; seqno : int; prev_write_seq : int }
type range = { region : int; offset : int; data : Bytes.t }
type cmd = { op : int; params : Bytes.t; cmd_regions : int list }

type txn = {
  node : int;
  tid : int;
  locks : lock_info list;
  ranges : range list;
  cmd : cmd option;
}

let magic = 0x4C424354 (* "LBCT" *)
let cmd_magic = 0x4C424343 (* "LBCC" *)
let ctrl_magic = 0x4C42434B (* "LBCK" *)
let rvm_disk_header_size = 104
let min_header_size = 4 + 8 + 8 (* region, offset, length *)

let check_header_size n =
  if n < min_header_size then
    invalid_arg
      (Printf.sprintf "Record: range_header_size %d < minimum %d" n
         min_header_size)

(* Single-pass encode into a caller-supplied writer: the record may land
   after bytes already in the arena (group commit batches several), so
   every patch offset is relative to the arena length at entry.  The
   total-length field is patched in place once the body size is known,
   and the CRC is computed over the arena bytes directly — no
   intermediate buffer is materialized. *)
let seal w ~start =
  let total = Codec.length w - start + 4 in
  Codec.patch_u32 w ~at:(start + 4) total;
  let covered = Codec.slice_sub w ~pos:start ~len:(total - 4) in
  let crc =
    Crc32.bytes (Slice.base covered) ~pos:(Slice.pos covered)
      ~len:(Slice.length covered)
  in
  Codec.u32 w (Int32.to_int crc land 0xFFFFFFFF)

(* Command records reuse the value framing (magic, total at +4, trailing
   CRC) so the log scanner and point reads need no second layout; only
   the body differs: the operation id, its parameter blob, and the
   regions the replayed operation will touch. *)
let encode_cmd_into w t c =
  if t.ranges <> [] then
    invalid_arg "Record.encode: a command record carries no value ranges";
  let start = Codec.length w in
  Codec.u32 w cmd_magic;
  Codec.u32 w 0 (* total, patched below *);
  Codec.u16 w t.node;
  Codec.int_as_u64 w t.tid;
  Codec.varint w (List.length t.locks);
  List.iter
    (fun l ->
      Codec.varint w l.lock_id;
      Codec.varint w l.seqno;
      Codec.varint w l.prev_write_seq)
    t.locks;
  Codec.varint w c.op;
  Codec.varint w (Bytes.length c.params);
  Codec.raw w c.params ~pos:0 ~len:(Bytes.length c.params);
  Codec.varint w (List.length c.cmd_regions);
  List.iter (Codec.varint w) c.cmd_regions;
  seal w ~start

let encode_into ?(range_header_size = rvm_disk_header_size) w t =
  match t.cmd with
  | Some c -> encode_cmd_into w t c
  | None ->
      check_header_size range_header_size;
      let start = Codec.length w in
      Codec.u32 w magic;
      Codec.u32 w 0 (* total, patched below *);
      Codec.u16 w t.node;
      Codec.int_as_u64 w t.tid;
      Codec.u16 w range_header_size;
      Codec.varint w (List.length t.locks);
      List.iter
        (fun l ->
          Codec.varint w l.lock_id;
          Codec.varint w l.seqno;
          Codec.varint w l.prev_write_seq)
        t.locks;
      Codec.varint w (List.length t.ranges);
      let pad = range_header_size - min_header_size in
      List.iter
        (fun r ->
          Codec.u32 w r.region;
          Codec.int_as_u64 w r.offset;
          Codec.int_as_u64 w (Bytes.length r.data);
          for _ = 1 to pad do
            Codec.u8 w 0
          done;
          Codec.raw w r.data ~pos:0 ~len:(Bytes.length r.data))
        t.ranges;
      seal w ~start

let encode ?range_header_size t =
  let w = Codec.writer ~capacity:1024 () in
  encode_into ?range_header_size w t;
  Codec.contents w

let locks_size t =
  List.fold_left
    (fun acc l ->
      acc + Codec.varint_size l.lock_id + Codec.varint_size l.seqno
      + Codec.varint_size l.prev_write_seq)
    (Codec.varint_size (List.length t.locks))
    t.locks

let encoded_size ?(range_header_size = rvm_disk_header_size) t =
  match t.cmd with
  | Some c ->
      let regions =
        List.fold_left
          (fun acc r -> acc + Codec.varint_size r)
          (Codec.varint_size (List.length c.cmd_regions))
          c.cmd_regions
      in
      4 + 4 + 2 + 8 + locks_size t + Codec.varint_size c.op
      + Codec.varint_size (Bytes.length c.params)
      + Bytes.length c.params + regions + 4
  | None ->
      check_header_size range_header_size;
      let ranges =
        List.fold_left
          (fun acc r -> acc + range_header_size + Bytes.length r.data)
          0 t.ranges
      in
      4 + 4 + 2 + 8 + 2 + locks_size t
      + Codec.varint_size (List.length t.ranges)
      + ranges + 4

(* Control records share the log's framing (magic, total length, CRC)
   but carry no transaction: they bracket a fuzzy checkpoint so recovery
   and the offline verifier can see where an in-place flush of the region
   images started and whether it completed.  They use their own magic so
   the transaction encoding — pinned by golden vectors — is untouched. *)
type ctrl_kind = Ckpt_begin | Ckpt_end | Region_index
type index_entry = { keys : int list; offsets : int list }

type ctrl = {
  kind : ctrl_kind;
  node : int;
  ckpt_id : int;
  entries : index_entry list;
}

let ctrl_size = 4 + 4 + 1 + 2 + 8 + 4

let encode_ctrl_into w c =
  let start = Codec.length w in
  Codec.u32 w ctrl_magic;
  Codec.u32 w 0 (* total, patched below *);
  Codec.u8 w (match c.kind with Ckpt_begin -> 1 | Ckpt_end -> 2 | Region_index -> 3);
  Codec.u16 w c.node;
  Codec.int_as_u64 w c.ckpt_id;
  (match c.kind with
  | Ckpt_begin | Ckpt_end ->
      (* Checkpoint markers keep the original fixed-size encoding, so
         pre-index logs decode unchanged. *)
      if c.entries <> [] then
        invalid_arg "Record.encode_ctrl: checkpoint markers carry no index"
  | Region_index ->
      Codec.varint w (List.length c.entries);
      List.iter
        (fun e ->
          Codec.varint w (List.length e.keys);
          List.iter (Codec.varint w) e.keys;
          Codec.varint w (List.length e.offsets);
          List.iter (Codec.varint w) e.offsets)
        c.entries);
  let total = Codec.length w - start + 4 in
  Codec.patch_u32 w ~at:(start + 4) total;
  let covered = Codec.slice_sub w ~pos:start ~len:(total - 4) in
  let crc =
    Crc32.bytes (Slice.base covered) ~pos:(Slice.pos covered)
      ~len:(Slice.length covered)
  in
  Codec.u32 w (Int32.to_int crc land 0xFFFFFFFF)

let encode_ctrl c =
  let w = Codec.writer ~capacity:ctrl_size () in
  encode_ctrl_into w c;
  Codec.contents w

let equal_index_entry (a : index_entry) (b : index_entry) =
  List.equal Int.equal a.keys b.keys && List.equal Int.equal a.offsets b.offsets

let equal_ctrl (a : ctrl) (b : ctrl) =
  a.kind = b.kind && a.node = b.node && a.ckpt_id = b.ckpt_id
  && List.equal equal_index_entry a.entries b.entries

let pp_ctrl ppf c =
  Format.fprintf ppf "%s node=%d ckpt=%d"
    (match c.kind with
    | Ckpt_begin -> "ckpt-begin"
    | Ckpt_end -> "ckpt-end"
    | Region_index -> "region-index")
    c.node c.ckpt_id;
  if c.kind = Region_index then
    Format.fprintf ppf " chains=%d (%s)"
      (List.length c.entries)
      (String.concat "; "
         (List.map
            (fun e ->
              Printf.sprintf "%d keys/%d recs" (List.length e.keys)
                (List.length e.offsets))
            c.entries))

type decode_result =
  | Txn of txn * int
  | Ctrl of ctrl * int
  | End
  | Torn of string

(* Decoding operates on a window so log scans can hand in bounded views
   of the device instead of full snapshots; positions (including the
   [Txn] continuation offset) are relative to the window. *)

let all_zero s ~pos =
  let n = Slice.length s in
  let rec loop i = i >= n || (Slice.get s i = '\000' && loop (i + 1)) in
  loop pos

let decode_slice s ~pos =
  let len = Slice.length s in
  if pos >= len then End
  else if len - pos < 8 then if all_zero s ~pos then End else Torn "short tail"
  else begin
    let r = Codec.reader_of_slice (Slice.sub s ~pos ~len:(len - pos)) in
    let m = Codec.get_u32 r in
    if m = ctrl_magic then begin
      let total = Codec.get_u32 r in
      if total < ctrl_size then Torn "bad ctrl length"
      else if pos + total > len then Torn "truncated record"
      else begin
        let stored_crc =
          let cr =
            Codec.reader_of_slice (Slice.sub s ~pos:(pos + total - 4) ~len:4)
          in
          Codec.get_u32 cr
        in
        let crc =
          Int32.to_int
            (Crc32.bytes (Slice.base s) ~pos:(Slice.pos s + pos)
               ~len:(total - 4))
          land 0xFFFFFFFF
        in
        if crc <> stored_crc then Torn "bad crc"
        else begin
          try
            let body =
              Codec.reader_of_slice
                (Slice.sub s ~pos:(pos + 8) ~len:(total - 12))
            in
            let kind_byte = Codec.get_u8 body in
            let node = Codec.get_u16 body in
            let ckpt_id = Codec.get_int_as_u64 body in
            match kind_byte with
            | (1 | 2) when total <> ctrl_size -> Torn "bad ctrl length"
            | 1 -> Ctrl ({ kind = Ckpt_begin; node; ckpt_id; entries = [] },
                         pos + total)
            | 2 -> Ctrl ({ kind = Ckpt_end; node; ckpt_id; entries = [] },
                         pos + total)
            | 3 ->
                let n = Codec.get_varint body in
                let entries =
                  List.init n (fun _ ->
                      let nk = Codec.get_varint body in
                      let keys = List.init nk (fun _ -> Codec.get_varint body) in
                      let no = Codec.get_varint body in
                      let offsets =
                        List.init no (fun _ -> Codec.get_varint body)
                      in
                      { keys; offsets })
                in
                Ctrl ({ kind = Region_index; node; ckpt_id; entries },
                      pos + total)
            | _ -> Torn "bad ctrl kind"
          with Codec.Truncated why -> Torn ("malformed ctrl body: " ^ why)
        end
      end
    end
    else if m <> magic && m <> cmd_magic then
      if all_zero s ~pos then End else Torn "bad magic"
    else begin
      let total = Codec.get_u32 r in
      if total < 12 then Torn "bad length"
      else if pos + total > len then Torn "truncated record"
      else begin
        let stored_crc =
          let cr = Codec.reader_of_slice (Slice.sub s ~pos:(pos + total - 4) ~len:4) in
          Codec.get_u32 cr
        in
        let crc =
          Int32.to_int
            (Crc32.bytes (Slice.base s) ~pos:(Slice.pos s + pos) ~len:(total - 4))
          land 0xFFFFFFFF
        in
        if crc <> stored_crc then Torn "bad crc"
        else begin
          try
            let body =
              Codec.reader_of_slice (Slice.sub s ~pos:(pos + 8) ~len:(total - 12))
            in
            let node = Codec.get_u16 body in
            let tid = Codec.get_int_as_u64 body in
            if m = cmd_magic then begin
              let n_locks = Codec.get_varint body in
              let locks =
                List.init n_locks (fun _ ->
                    let lock_id = Codec.get_varint body in
                    let seqno = Codec.get_varint body in
                    let prev_write_seq = Codec.get_varint body in
                    { lock_id; seqno; prev_write_seq })
              in
              let op = Codec.get_varint body in
              let plen = Codec.get_varint body in
              let params = Codec.get_raw body ~len:plen in
              let n_regions = Codec.get_varint body in
              let cmd_regions =
                List.init n_regions (fun _ -> Codec.get_varint body)
              in
              Txn
                ( { node; tid; locks; ranges = [];
                    cmd = Some { op; params; cmd_regions } },
                  pos + total )
            end
            else begin
              let header_size = Codec.get_u16 body in
              if header_size < min_header_size then
                raise (Codec.Truncated "header size")
              else begin
                let n_locks = Codec.get_varint body in
                let locks =
                  List.init n_locks (fun _ ->
                      let lock_id = Codec.get_varint body in
                      let seqno = Codec.get_varint body in
                      let prev_write_seq = Codec.get_varint body in
                      { lock_id; seqno; prev_write_seq })
                in
                let n_ranges = Codec.get_varint body in
                let ranges =
                  List.init n_ranges (fun _ ->
                      let region = Codec.get_u32 body in
                      let offset = Codec.get_int_as_u64 body in
                      let dlen = Codec.get_int_as_u64 body in
                      Codec.skip body (header_size - min_header_size);
                      let data = Codec.get_raw body ~len:dlen in
                      { region; offset; data })
                in
                Txn ({ node; tid; locks; ranges; cmd = None }, pos + total)
              end
            end
          with Codec.Truncated why -> Torn ("malformed body: " ^ why)
        end
      end
    end
  end

let decode b ~pos = decode_slice (Slice.of_bytes b) ~pos

let ranges_bytes t =
  List.fold_left (fun acc r -> acc + Bytes.length r.data) 0 t.ranges

(* A record advances its locks' write chains iff it carries redo state:
   either new-value ranges or a replayable command.  Read-only acquires
   carry neither and leave prev_write_seq untouched. *)
let is_write t = t.ranges <> [] || t.cmd <> None

let regions t =
  match t.cmd with
  | Some c -> List.sort_uniq Int.compare c.cmd_regions
  | None -> List.sort_uniq Int.compare (List.map (fun r -> r.region) t.ranges)

let equal_lock a b =
  a.lock_id = b.lock_id && a.seqno = b.seqno
  && a.prev_write_seq = b.prev_write_seq

let equal_range a b =
  a.region = b.region && a.offset = b.offset && Bytes.equal a.data b.data

let equal_cmd a b =
  a.op = b.op && Bytes.equal a.params b.params
  && List.equal Int.equal a.cmd_regions b.cmd_regions

let equal_txn (a : txn) (b : txn) =
  a.node = b.node && a.tid = b.tid
  && List.length a.locks = List.length b.locks
  && List.for_all2 equal_lock a.locks b.locks
  && List.length a.ranges = List.length b.ranges
  && List.for_all2 equal_range a.ranges b.ranges
  && Option.equal equal_cmd a.cmd b.cmd

let pp_txn ppf (t : txn) =
  Format.fprintf ppf "@[<h>txn node=%d tid=%d locks=[%a] ranges=[%a]%a@]" t.node
    t.tid
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf l -> Format.fprintf ppf "%d@%d<-%d" l.lock_id l.seqno l.prev_write_seq))
    t.locks
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf r ->
         Format.fprintf ppf "r%d+%d:%dB" r.region r.offset (Bytes.length r.data)))
    t.ranges
    (fun ppf -> function
      | None -> ()
      | Some c ->
          Format.fprintf ppf " cmd=op%d:%dB@[%a@]" c.op (Bytes.length c.params)
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
               (fun ppf r -> Format.fprintf ppf "r%d" r))
            c.cmd_regions)
    t.cmd
