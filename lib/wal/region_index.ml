(* Replay-partition index over one log's live tail.

   Two committed transactions conflict when they share a lock or touch
   the same region; the index is the transitive closure of that relation
   (union-find over lock and region ids — the same closure
   [Lbc_core.Merge.partition] computes over a merged record stream), with
   each connected component holding the ascending log offsets of its
   records.  Chains from different components touch disjoint regions
   under disjoint locks, so they replay independently; within a chain,
   offset order is log order is replay order.

   The index is persisted as a [Region_index] control record alongside a
   checkpoint's end marker ({!to_ctrl}/{!of_entries}) and extended
   incrementally at attach time with the records appended since
   ({!of_log}), so a rejoining node never re-partitions the tail it
   already checkpointed. *)

type key = Lock of int | Region of int

(* Tagged non-negative ints so keys ride the varint encoding: locks are
   even (the keyless catch-all [Lock (-1)] is 0), regions odd. *)
let tag = function Lock i -> 2 * (i + 1) | Region i -> (2 * i) + 1
let untag k = if k land 1 = 1 then Region (k lsr 1) else Lock ((k lsr 1) - 1)

let pp_key ppf = function
  | Lock -1 -> Format.pp_print_string ppf "keyless"
  | Lock i -> Format.fprintf ppf "lock:%d" i
  | Region i -> Format.fprintf ppf "region:%d" i

type t = {
  parent : (int, int) Hashtbl.t;  (* union-find over tagged keys *)
  offs : (int, int list) Hashtbl.t;  (* root -> offsets, newest first *)
  mutable last_off : int;  (* highest offset indexed; -1 when empty *)
}

let create () =
  { parent = Hashtbl.create 64; offs = Hashtbl.create 16; last_off = -1 }

let rec find t k =
  match Hashtbl.find_opt t.parent k with
  | None ->
      Hashtbl.replace t.parent k k;
      k
  | Some p when p = k -> k
  | Some p ->
      let root = find t p in
      Hashtbl.replace t.parent k root;
      root

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    Hashtbl.replace t.parent ra rb;
    match Hashtbl.find_opt t.offs ra with
    | None -> ()
    | Some l ->
        Hashtbl.remove t.offs ra;
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt t.offs rb)
        in
        Hashtbl.replace t.offs rb (List.rev_append l existing)
  end

let txn_keys (txn : Record.txn) =
  let ks =
    List.map (fun l -> tag (Lock l.Record.lock_id)) txn.Record.locks
    @ List.map (fun r -> tag (Region r)) (Record.regions txn)
  in
  (* Lockless, effect-free transactions have no replay effect; group them
     in the catch-all chain rather than inventing one each. *)
  match ks with [] -> [ tag (Lock (-1)) ] | ks -> ks

let add t ~off txn =
  match txn_keys txn with
  | [] -> ()
  | k0 :: rest ->
      List.iter (fun k -> union t k0 k) rest;
      let r = find t k0 in
      Hashtbl.replace t.offs r
        (off :: Option.value ~default:[] (Hashtbl.find_opt t.offs r));
      if off > t.last_off then t.last_off <- off

let of_entries entries =
  let t = create () in
  List.iter
    (fun (e : Record.index_entry) ->
      match e.keys with
      | [] -> ()
      | k0 :: rest ->
          List.iter (fun k -> union t k0 k) rest;
          let r = find t k0 in
          Hashtbl.replace t.offs r
            (List.rev_append e.offsets
               (Option.value ~default:[] (Hashtbl.find_opt t.offs r)));
          List.iter (fun o -> if o > t.last_off then t.last_off <- o) e.offsets)
    entries;
  t

let drop_below t ~head =
  let roots = Hashtbl.fold (fun r _ acc -> r :: acc) t.offs [] in
  List.iter
    (fun r ->
      match Hashtbl.find_opt t.offs r with
      | None -> ()
      | Some l -> Hashtbl.replace t.offs r (List.filter (fun o -> o >= head) l))
    roots

let last_offset t = t.last_off

(* Canonical form: each live chain (≥ 1 record) with its keys sorted
   ascending and offsets ascending, chains ordered by first offset —
   deterministic regardless of union-find internals. *)
let entries t =
  let ks = Hashtbl.fold (fun k _ acc -> k :: acc) t.parent [] in
  let keys_by_root = Hashtbl.create 16 in
  List.iter
    (fun k ->
      let r = find t k in
      Hashtbl.replace keys_by_root r
        (k :: Option.value ~default:[] (Hashtbl.find_opt keys_by_root r)))
    ks;
  let chains =
    Hashtbl.fold
      (fun r keys acc ->
        let offsets =
          List.sort Int.compare
            (Option.value ~default:[] (Hashtbl.find_opt t.offs r))
        in
        if offsets = [] then acc
        else { Record.keys = List.sort Int.compare keys; offsets } :: acc)
      keys_by_root []
  in
  List.sort
    (fun (a : Record.index_entry) (b : Record.index_entry) ->
      match (a.offsets, b.offsets) with
      | o1 :: _, o2 :: _ -> Int.compare o1 o2
      | _ -> 0 (* unreachable: empty chains were dropped *))
    chains

let chains t = List.map (fun (e : Record.index_entry) -> e.offsets) (entries t)

let to_ctrl t ~node ~ckpt_id =
  { Record.kind = Record.Region_index; node; ckpt_id; entries = entries t }

let of_log log =
  (* Seed from the newest persisted index, then extend with the records
     appended after it; offsets trimmed since the index was written are
     dropped (the chain structure they contributed is kept — a coarser
     partition is conservative and still replays correctly).

     The rescan resumes from the highest offset the persisted entries
     actually cover, NOT from the ctrl record's own log offset: commits
     can land between the checkpoint's index scan and the ctrl append,
     giving them offsets below the ctrl record while absent from its
     entries.  Records are appended in offset order, so anything missing
     from the entries is strictly above every indexed offset. *)
  let ctrls, _ = Log.fold_ctrl log ~init:[] (fun acc off c -> (off, c) :: acc) in
  let newest =
    List.find_opt
      (fun (_, (c : Record.ctrl)) -> c.kind = Record.Region_index)
      ctrls
  in
  let t, from_off =
    match newest with
    | Some (_, c) ->
        let t = of_entries c.Record.entries in
        (t, t.last_off)
    | None -> (create (), -1)
  in
  drop_below t ~head:(Log.head log);
  let (), status =
    Log.fold log ~init:() (fun () off txn ->
        if off > from_off then add t ~off txn)
  in
  (t, status)
