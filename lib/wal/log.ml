open Lbc_util
module Obs = Lbc_obs.Obs

exception Bad_log of string

(* A batch of commits riding one device write + one sync (group commit).
   The batch arena is owned by the group and reused: the device captures
   its own copy of the payload at flush. *)
type batch = {
  id : int;
  base : int;  (* device offset where the batch lands *)
  opened_at : float;  (* virtual time the batch opened (flush-delay metric) *)
  mutable count : int;
}

type group = {
  engine : Lbc_sim.Engine.t;
  max_records : int;
  delay : float;
  bw : Codec.writer;  (* accumulates the open batch's records *)
  cv : Lbc_sim.Condvar.t;  (* committers park here until their batch syncs *)
  mutable next_id : int;
  mutable open_batch : batch option;
  mutable flushed_id : int;  (* highest batch id made durable *)
  mutable batches_flushed : int;
  mutable records_batched : int;
}

type t = {
  dev : Lbc_storage.Dev.t;
  mutable head : int;
  mutable tail : int;
  mutable record_count : int;
  mutable retention_water : int;
      (* trim barrier: offset of the oldest record a peer may still
         re-fetch (repair retention); [max_int] means unconstrained *)
  mutable ckpt_water : int;
      (* trim barrier held by an in-progress fuzzy checkpoint: until its
         end marker is durable, recovery still needs the records behind
         the partially-flushed region images; [max_int] when none *)
  enc : Codec.writer;  (* reused arena for direct appends *)
  mutable group : group option;
  mutable obs : Obs.t;
  mutable obs_node : int;
}

let log_magic = 0x4C42434C (* "LBCL" *)
let version = 1
let header_size = 16

(* Bound on each device read during scans; a record larger than the
   current window doubles it until the record fits. *)
let scan_window = 64 * 1024

type scan_status = Clean | Torn_at of int * string

let write_header t =
  let w = Codec.writer ~capacity:header_size () in
  Codec.u32 w log_magic;
  Codec.u32 w version;
  Codec.int_as_u64 w t.head;
  Lbc_storage.Dev.write_slice t.dev ~off:0 (Codec.slice w)

(* Stream records from [from] to [limit] through bounded [Dev.read]
   windows instead of snapshotting the whole device.  An [End]/[Torn]
   verdict inside a window that stops short of [limit] may be an artifact
   of the window boundary: re-anchor the window at the verdict position,
   doubling it when no progress is possible, until the window reaches
   [limit] and the verdict is final. *)
let scan ?(ctrl = fun _ _ -> ()) dev ~from ~limit f =
  (* A crash can revert the device below the caller's logical tail; only
     what is actually on the device can be read. *)
  let limit = min limit (Lbc_storage.Dev.size dev) in
  let rec go base win count =
    if base >= limit then (base, Clean, count)
    else begin
      let len = min win (limit - base) in
      let image = Slice.of_bytes (Lbc_storage.Dev.read dev ~off:base ~len) in
      let rec step rel count =
        match Record.decode_slice image ~pos:rel with
        | Record.Txn (txn, next) ->
            f (base + rel) txn;
            step next (count + 1)
        | Record.Ctrl (c, next) ->
            ctrl (base + rel) c;
            step next count
        | Record.End ->
            if base + len >= limit then (base + rel, Clean, count)
            else if rel > 0 then go (base + rel) win count
            else go base (2 * win) count
        | Record.Torn why ->
            (* Never crash on a corrupt or unexpected record: a torn
               verdict that survives the window reaching [limit] is final
               and reported with its offset. *)
            if base + len >= limit then
              (base + rel, Torn_at (base + rel, why), count)
            else if rel > 0 then go (base + rel) win count
            else go base (2 * win) count
      in
      step 0 count
    end
  in
  go from scan_window 0

let scan_tail dev ~from =
  (* Walk records until a clean end or torn record; both mark the tail. *)
  let pos, _status, count =
    scan dev ~from ~limit:(Lbc_storage.Dev.size dev) (fun _ _ -> ())
  in
  (pos, count)

let attach dev =
  let size = Lbc_storage.Dev.size dev in
  if size = 0 then begin
    let t =
      { dev; head = header_size; tail = header_size; record_count = 0;
        retention_water = max_int; ckpt_water = max_int;
        enc = Codec.writer ~capacity:1024 ();
        group = None; obs = Obs.disabled; obs_node = 0 }
    in
    write_header t;
    Lbc_storage.Dev.sync dev;
    t
  end
  else if size < header_size then raise (Bad_log "short header")
  else begin
    let hdr = Lbc_storage.Dev.read dev ~off:0 ~len:header_size in
    let r = Codec.reader hdr in
    let m = Codec.get_u32 r in
    if m <> log_magic then raise (Bad_log "bad magic");
    let v = Codec.get_u32 r in
    if v <> version then raise (Bad_log (Printf.sprintf "bad version %d" v));
    let head = Codec.get_int_as_u64 r in
    if head < header_size || head > size then raise (Bad_log "bad head offset");
    let tail, count = scan_tail dev ~from:head in
    { dev; head; tail; record_count = count;
      retention_water = max_int; ckpt_water = max_int;
      enc = Codec.writer ~capacity:1024 (); group = None;
      obs = Obs.disabled; obs_node = 0 }
  end

let set_obs t obs ~node =
  t.obs <- obs;
  t.obs_node <- node

let dev t = t.dev
let head t = t.head
let tail t = t.tail
let live_bytes t = t.tail - t.head
let record_count t = t.record_count
let low_water t = min t.retention_water t.ckpt_water

let clamp_water off = if off >= max_int then max_int else max header_size off
let set_retention_water t off = t.retention_water <- clamp_water off
let set_ckpt_water t off = t.ckpt_water <- clamp_water off

(* ---------------------------------------------------------------- *)
(* Group commit *)

let enable_group_commit ?(max_records = 8) ?(delay = 100.0) t ~engine =
  if max_records < 1 then invalid_arg "Log.enable_group_commit: max_records";
  if t.group <> None then invalid_arg "Log.enable_group_commit: already enabled";
  t.group <-
    Some
      {
        engine;
        max_records;
        delay;
        bw = Codec.writer ~capacity:4096 ();
        cv = Lbc_sim.Condvar.create ();
        next_id = 1;
        open_batch = None;
        flushed_id = 0;
        batches_flushed = 0;
        records_batched = 0;
      }

let group_commit_enabled t = t.group <> None
let batches_flushed t = match t.group with Some g -> g.batches_flushed | None -> 0
let records_batched t = match t.group with Some g -> g.records_batched | None -> 0

let flush_batch_now t g =
  match g.open_batch with
  | None -> ()
  | Some b ->
      g.open_batch <- None;
      let sp =
        if Obs.enabled t.obs then begin
          Obs.observe ~pid:t.obs_node t.obs "gc_batch_records" (Float.of_int b.count);
          Obs.observe ~pid:t.obs_node t.obs "gc_flush_delay_us"
            (Lbc_sim.Engine.now g.engine -. b.opened_at);
          (* Args only feed the opt-in JSON trace; skip the list
             allocation on flight-only runs (same for the instants
             below). *)
          Obs.span_begin t.obs ~name:"log.flush" ~pid:t.obs_node
            ~tid:Obs.lane_wal
            ?args:
              (if Obs.tracing t.obs then
                 Some
                   [ ("records", Obs.I b.count);
                     ("bytes", Obs.I (Codec.length g.bw)) ]
               else None)
            ()
        end
        else Obs.null_span
      in
      (* One gathered write, one sync, for the whole batch. *)
      Lbc_storage.Dev.write_slice t.dev ~off:b.base (Codec.slice g.bw);
      Lbc_storage.Dev.sync t.dev;
      ignore (Obs.span_end t.obs sp : float);
      g.flushed_id <- b.id;
      g.batches_flushed <- g.batches_flushed + 1;
      Lbc_sim.Condvar.broadcast g.cv

let flush_batch t = match t.group with None -> () | Some g -> flush_batch_now t g

let append ?range_header_size t txn =
  (* Device order must equal logical order: an open batch occupies
     [base, tail), so it goes out before a direct append lands. *)
  flush_batch t;
  Codec.clear t.enc;
  Record.encode_into ?range_header_size t.enc txn;
  (* The pre-slice path materialized the encoded record before writing. *)
  Slice.count_saved (Codec.length t.enc);
  let off = t.tail in
  Lbc_storage.Dev.write_slice t.dev ~off (Codec.slice t.enc);
  t.tail <- off + Codec.length t.enc;
  t.record_count <- t.record_count + 1;
  if Obs.enabled t.obs then
    Obs.instant t.obs ~name:"log.append" ~pid:t.obs_node ~tid:Obs.lane_wal
      ?args:
        (if Obs.tracing t.obs then
           Some [ ("bytes", Obs.I (Codec.length t.enc)) ]
         else None)
      ();
  off

let force t =
  match t.group with
  | Some g when g.open_batch <> None -> flush_batch_now t g (* includes the sync *)
  | _ ->
      let sp =
        if Obs.enabled t.obs then
          Obs.span_begin t.obs ~name:"log.force" ~pid:t.obs_node
            ~tid:Obs.lane_wal ()
        else Obs.null_span
      in
      Lbc_storage.Dev.sync t.dev;
      Obs.observe ~pid:t.obs_node t.obs "log_force_us" (Obs.span_end t.obs sp)

let append_durable ?range_header_size t txn =
  match t.group with
  | None ->
      let off = append ?range_header_size t txn in
      force t;
      off
  | Some g ->
      let b =
        match g.open_batch with
        | Some b -> b
        | None ->
            Codec.clear g.bw;
            let b =
              { id = g.next_id; base = t.tail;
                opened_at = Lbc_sim.Engine.now g.engine; count = 0 }
            in
            g.next_id <- g.next_id + 1;
            g.open_batch <- Some b;
            b
      in
      let off = b.base + Codec.length g.bw in
      Record.encode_into ?range_header_size g.bw txn;
      Slice.count_saved (b.base + Codec.length g.bw - off);
      b.count <- b.count + 1;
      g.records_batched <- g.records_batched + 1;
      t.tail <- b.base + Codec.length g.bw;
      t.record_count <- t.record_count + 1;
      let id = b.id in
      if b.count >= g.max_records then flush_batch_now t g
      else begin
        (if b.count = 1 then
           (* First record opens the flush window.  The timer spawns a
              process so the sync cost is charged as virtual time. *)
           Lbc_sim.Engine.schedule g.engine ~delay:g.delay (fun () ->
               match g.open_batch with
               | Some b' when b'.id = id ->
                   Lbc_sim.Proc.spawn g.engine ~name:"log-group-flush"
                     ~daemon:true
                     (fun () ->
                       match g.open_batch with
                       | Some b'' when b''.id = id -> flush_batch_now t g
                       | _ -> ())
               | _ -> ()));
        let in_process =
          match Lbc_sim.Proc.engine () with
          | (_ : Lbc_sim.Engine.t) -> true
          | exception Lbc_sim.Proc.Not_in_process -> false
        in
        if in_process then
          Lbc_sim.Condvar.await
            ~info:(Printf.sprintf "group-commit batch %d" id)
            g.cv
            (fun () -> g.flushed_id >= id)
        else
          (* No process to park: degrade to an immediate flush. *)
          flush_batch_now t g
      end;
      off

let set_head t off =
  flush_batch t;
  if off < header_size || off > t.tail then
    invalid_arg (Printf.sprintf "Log.set_head: offset %d out of [%d,%d]"
                   off header_size t.tail);
  (* Trimming is clamped to the low-water mark (retention / checkpoint
     start) and never moves the head backwards over already-dead space. *)
  let off = max t.head (min off (low_water t)) in
  t.head <- off;
  write_header t;
  Lbc_storage.Dev.sync t.dev;
  let _, count = scan_tail t.dev ~from:t.head in
  t.record_count <- count;
  off

let append_ctrl t c =
  (* Same device-order discipline as a direct append. *)
  flush_batch t;
  Codec.clear t.enc;
  Record.encode_ctrl_into t.enc c;
  let off = t.tail in
  Lbc_storage.Dev.write_slice t.dev ~off (Codec.slice t.enc);
  t.tail <- off + Codec.length t.enc;
  if Obs.enabled t.obs then
    Obs.instant t.obs ~name:"log.ctrl" ~pid:t.obs_node ~tid:Obs.lane_wal
      ?args:
        (if Obs.tracing t.obs then
           Some [ ("bytes", Obs.I (Codec.length t.enc)) ]
         else None)
      ();
  off

let fold_ctrl t ~init f =
  flush_batch t;
  let acc = ref init in
  let _pos, status, _count =
    scan t.dev ~ctrl:(fun pos c -> acc := f !acc pos c) ~from:t.head
      ~limit:t.tail
      (fun _ _ -> ())
  in
  (!acc, status)

let fold t ?from ~init f =
  (* An open batch is part of [head, tail) but not on the device yet. *)
  flush_batch t;
  let from = match from with Some o -> o | None -> t.head in
  let acc = ref init in
  let _pos, status, _count =
    scan t.dev ~from ~limit:t.tail (fun pos txn -> acc := f !acc pos txn)
  in
  (!acc, status)

let read_all t =
  let acc, status = fold t ~init:[] (fun acc _ txn -> txn :: acc) in
  (List.rev acc, status)

(* ---------------------------------------------------------------- *)
(* Point reads: the region-index chains name records by offset, so an
   on-demand replay reads exactly the records of one chain instead of
   scanning the whole tail. *)

let read_at t ~off =
  flush_batch t;
  if off < t.head || off >= t.tail then
    Error
      (Printf.sprintf "offset %d outside live window [%d,%d)" off t.head t.tail)
  else begin
    let hdr_len = min 8 (t.tail - off) in
    if hdr_len < 8 then Error (Printf.sprintf "short record at %d" off)
    else begin
      let r = Codec.reader (Lbc_storage.Dev.read t.dev ~off ~len:hdr_len) in
      let _magic = Codec.get_u32 r in
      let total = Codec.get_u32 r in
      if total < 12 || off + total > t.tail then
        Error (Printf.sprintf "bad record length %d at %d" total off)
      else begin
        let image =
          Slice.of_bytes (Lbc_storage.Dev.read t.dev ~off ~len:total)
        in
        match Record.decode_slice image ~pos:0 with
        | Record.Txn (txn, _) -> Ok txn
        | Record.Ctrl _ -> Error (Printf.sprintf "control record at %d" off)
        | Record.End -> Error (Printf.sprintf "no record at %d" off)
        | Record.Torn why -> Error (Printf.sprintf "%s at %d" why off)
      end
    end
  end

let fold_chain t ~offsets ~init f =
  List.fold_left
    (fun acc off ->
      match acc with
      | Error _ as e -> e
      | Ok acc -> (
          match read_at t ~off with
          | Ok txn -> Ok (f acc off txn)
          | Error why -> Error why))
    (Ok init) offsets
