(** Registry of replayable operations for command-encoded log records.

    A {!Record.cmd} names a deterministic operation by integer id.  The
    id's executable body is registered here once at startup (the OO7
    harness registers its traversals; tests register synthetic ops) and
    every replayer — crash recovery, the coherency receiver, the
    serializability oracle's sequential spec — executes it through the
    same {!mem} interface, so a command replays identically no matter
    which image it lands on.

    Determinism contract: [run mem ~params] must be a pure function of
    [params] and the bytes it reads through [mem] — no clocks, no
    ambient randomness, no iteration over unordered containers.  The
    lock interlock guarantees each replayer presents the writer's
    pre-state, so a deterministic operation reproduces the writer's
    bytes exactly. *)

(** Per-transaction record-encoding policy (the adaptive-logging knob):
    [Value] always logs new-value ranges (the paper's RVM), [Command]
    always logs the declared operation, [Adaptive] picks whichever
    encoding is smaller for each transaction. *)
type log_mode = Value | Command | Adaptive

val log_mode_name : log_mode -> string
val log_mode_of_name : string -> log_mode option

(** Byte access to some region store: cached RVM regions, database
    devices under recovery, or the oracle's in-memory spec images. *)
type mem = {
  read : region:int -> offset:int -> len:int -> Bytes.t;
  write : region:int -> offset:int -> Bytes.t -> unit;
}

exception Unknown_op of int
(** Raised by {!execute}/{!apply} for an unregistered operation id — a
    log written by a binary with commands this one does not know. *)

val register : op:int -> name:string -> (mem -> params:Bytes.t -> unit) -> unit
(** Register (idempotently) the body of operation [op].  Re-registering
    the same [op]/[name] pair replaces the body; claiming an op id owned
    by a different name raises [Invalid_argument]. *)

val registered : int -> bool
val name : int -> string option

val execute : mem -> op:int -> params:Bytes.t -> unit

val apply : mem -> Record.txn -> unit
(** Replay one decoded record against [mem]: blit the ranges of a value
    record, execute the operation of a command record. *)
