(** Redo-log record format (write-ahead logging).

    One record per committed transaction, carrying:

    - {b lock records}: for every lock held by the transaction, its id, the
      sequence number stamped at acquire, and the sequence number of the
      previous {e writing} acquire of that lock.  These drive both the
      coherency receiver's ordering (Section 3.4 of the paper) and the
      offline merge of per-node logs before recovery.
    - {b new-value range records}: the modified byte ranges captured by
      [set_range], with their current (post-transaction) contents;
    - {e or}, instead of ranges, one {b command record}: the id of a
      registered deterministic operation plus its parameter blob and the
      regions it touches.  Replay re-executes the operation against the
      pre-state instead of blitting saved bytes — the adaptive
      value-vs-command choice of "Adaptive Logging for Distributed
      In-memory Databases".  The dependency edges are the same
      [prev_write_seq] chain value records use, so ordering, merge, and
      partitioning are encoding-agnostic.

    On disk each range carries a fixed-size header padded to
    [range_header_size] bytes; CMU RVM's disk header was 104 bytes, which
    is the default and is what makes the paper's compressed 4-24 byte
    {e wire} headers (module [Lbc_core.Wire]) worthwhile.  The whole record
    is covered by a CRC-32 so that torn tails are detected and ignored by
    recovery. *)

type lock_info = {
  lock_id : int;
  seqno : int;  (** sequence number stamped when this txn acquired the lock *)
  prev_write_seq : int;
      (** seqno of the previous committed writing transaction under this
          lock; 0 if none.  Receivers apply this record only once their
          applied seqno equals this value. *)
}

type range = {
  region : int;  (** RVM region identifier *)
  offset : int;  (** byte offset within the region *)
  data : Bytes.t;  (** new value of the range *)
}

type cmd = {
  op : int;  (** registered operation id (see [Lbc_wal.Command]) *)
  params : Bytes.t;  (** opaque parameter blob the operation decodes *)
  cmd_regions : int list;
      (** regions the replayed operation reads or writes — the merge /
          partition / warm-up keys a value record derives from its
          ranges *)
}

type txn = {
  node : int;  (** writing node *)
  tid : int;  (** node-local transaction number, increasing per node *)
  locks : lock_info list;
  ranges : range list;  (** empty when [cmd] is present *)
  cmd : cmd option;
      (** command encoding of the transaction's effect; mutually
          exclusive with [ranges] *)
}

val rvm_disk_header_size : int
(** 104 — the standard RVM range-header size the paper compresses from. *)

val min_header_size : int
(** Smallest legal [range_header_size] (the unpadded fixed fields). *)

val encoded_size : ?range_header_size:int -> txn -> int
(** Exact on-disk size of [encode t]. *)

val encode : ?range_header_size:int -> txn -> Bytes.t
(** Serialize one record.  [range_header_size] defaults to
    {!rvm_disk_header_size}. *)

val encode_into : ?range_header_size:int -> Lbc_util.Codec.writer -> txn -> unit
(** Append the record's encoding to [w] in a single pass — the
    total-length field is patched in place and the CRC is computed over
    the arena directly, so nothing is materialized.  Appending after
    bytes already in the writer is fine (group commit batches records
    this way); the output is byte-identical to {!encode}. *)

(** {1 Control records}

    Marker records sharing the log's framing (own magic, total length,
    CRC) but carrying no transaction, so the transaction encoding —
    pinned by golden vectors — is unchanged.  Scans skip them; the
    offline verifier reads them to detect a head trimmed past an
    incomplete checkpoint.

    [Ckpt_begin]/[Ckpt_end] bracket a fuzzy checkpoint and keep their
    original fixed-size encoding.  [Region_index] is variable-length: it
    persists the replay-partition index over the live log tail (the
    union-find closure of lock∪region keys), one entry per independent
    chain, so a rejoining node can start serving on demand without
    re-partitioning the tail it already checkpointed. *)

type ctrl_kind = Ckpt_begin | Ckpt_end | Region_index

type index_entry = {
  keys : int list;
      (** tagged lock/region ids of the chain (see {!Region_index.tag});
          non-negative, sorted ascending *)
  offsets : int list;
      (** log offsets of the chain's records, ascending (= replay order) *)
}

type ctrl = {
  kind : ctrl_kind;
  node : int;  (** node performing the checkpoint *)
  ckpt_id : int;  (** node-local checkpoint number, pairs begin/end *)
  entries : index_entry list;
      (** [Region_index] payload; must be [[]] for checkpoint markers *)
}

val ctrl_size : int
(** Exact on-disk size of a checkpoint marker, and the minimum size of
    any control record. *)

val encode_ctrl : ctrl -> Bytes.t
val encode_ctrl_into : Lbc_util.Codec.writer -> ctrl -> unit
val equal_index_entry : index_entry -> index_entry -> bool
val equal_ctrl : ctrl -> ctrl -> bool
val pp_ctrl : Format.formatter -> ctrl -> unit

type decode_result =
  | Txn of txn * int  (** decoded record and offset just past it *)
  | Ctrl of ctrl * int  (** control record and offset just past it *)
  | End  (** clean end of log: zero fill or end of data *)
  | Torn of string  (** partial or corrupt record (reason) *)

val decode : Bytes.t -> pos:int -> decode_result
(** Decode the record starting at [pos]. *)

val decode_slice : Lbc_util.Slice.t -> pos:int -> decode_result
(** Like {!decode} but over a window (log scans use bounded device
    views); positions, including the [Txn] continuation offset, are
    relative to the window.  A record running past the window decodes as
    [Torn "truncated record"] — the scanner refills and retries. *)

val ranges_bytes : txn -> int
(** Total payload bytes across the record's ranges (0 for a command
    record — its redo state is the operation, not bytes). *)

val is_write : txn -> bool
(** Whether the record advances its locks' write chains: it carries
    new-value ranges or a command.  Read-only acquires are not writes. *)

val regions : txn -> int list
(** The regions the record touches, deduplicated and sorted: the ranges'
    regions for a value record, [cmd_regions] for a command record.
    These are the keys for merge partitioning, update propagation, and
    on-demand warm-up. *)

val equal_txn : txn -> txn -> bool
val pp_txn : Format.formatter -> txn -> unit
