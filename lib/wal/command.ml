(* Registry of replayable operations for command-encoded log records.

   A command record (Record.cmd) names an operation by integer id; the
   executable body lives here, registered once at startup by whichever
   layer owns the operation (the OO7 harness registers its traversals,
   tests register synthetic ops).  Registration is append-only and
   happens before any domains spawn; lookups afterwards are read-only,
   so the plain Hashtbl needs no locking on the replay paths. *)

type log_mode = Value | Command | Adaptive

let log_mode_name = function
  | Value -> "value"
  | Command -> "command"
  | Adaptive -> "adaptive"

let log_mode_of_name s =
  match String.lowercase_ascii s with
  | "value" -> Some Value
  | "command" | "cmd" -> Some Command
  | "adaptive" -> Some Adaptive
  | _ -> None

type mem = {
  read : region:int -> offset:int -> len:int -> Bytes.t;
  write : region:int -> offset:int -> Bytes.t -> unit;
}

exception Unknown_op of int

type entry = { name : string; run : mem -> params:Bytes.t -> unit }

let table : (int, entry) Hashtbl.t = Hashtbl.create 8

let register ~op ~name run =
  (match Hashtbl.find_opt table op with
  | Some e when e.name <> name ->
      invalid_arg
        (Printf.sprintf "Command.register: op %d is %S, refusing %S" op e.name
           name)
  | _ -> ());
  Hashtbl.replace table op { name; run }

let registered op = Hashtbl.mem table op

let name op =
  match Hashtbl.find_opt table op with
  | Some e -> Some e.name
  | None -> None

let execute m ~op ~params =
  match Hashtbl.find_opt table op with
  | Some e -> e.run m ~params
  | None -> raise (Unknown_op op)

(* Replay a decoded record against [m]: blit the ranges of a value
   record, execute the operation of a command record.  The shared
   fragment every replayer (recovery, coherency receiver, oracle spec)
   would otherwise duplicate. *)
let apply m (t : Record.txn) =
  match t.cmd with
  | Some c -> execute m ~op:c.op ~params:c.params
  | None ->
      List.iter
        (fun (r : Record.range) ->
          m.write ~region:r.region ~offset:r.offset r.data)
        t.ranges
