(** Replay-partition index over one log's live tail.

    The union-find closure of lock∪region conflict keys — the same
    closure [Lbc_core.Merge.partition] computes over a merged record
    stream — with each connected component holding the ascending log
    offsets of its records.  Chains from different components touch
    disjoint regions under disjoint locks and replay independently;
    within a chain, offset order is replay order.

    Persisted as a {!Record.Region_index} control record alongside a
    checkpoint's end marker and extended incrementally at attach time,
    so a rejoining node starts serving on demand without re-partitioning
    the tail it already checkpointed. *)

type key = Lock of int | Region of int

val tag : key -> int
(** Non-negative varint-safe encoding: locks even (the keyless catch-all
    [Lock (-1)] is 0), regions odd. *)

val untag : int -> key
val pp_key : Format.formatter -> key -> unit

type t

val create : unit -> t

val add : t -> off:int -> Record.txn -> unit
(** Feed one committed record at its log offset.  Records must be fed in
    log (offset) order per log; chains merge as shared keys appear. *)

val of_entries : Record.index_entry list -> t
(** Rebuild from a persisted {!Record.Region_index} payload. *)

val of_log : Log.t -> t * Log.scan_status
(** Index [log]'s live tail: seed from the newest persisted
    [Region_index] control record (if any), drop offsets the head has
    passed, and extend with every record appended after it. *)

val drop_below : t -> head:int -> unit
(** Forget offsets below a trimmed head.  Chain structure contributed by
    trimmed records is kept: a coarser partition is conservative. *)

val entries : t -> Record.index_entry list
(** Canonical form: live chains (≥ 1 record) with keys sorted ascending,
    offsets ascending, ordered by first offset. *)

val chains : t -> int list list
(** Just the offset chains of {!entries}. *)

val to_ctrl : t -> node:int -> ckpt_id:int -> Record.ctrl
(** Package as a control record for {!Log.append_ctrl}. *)

val last_offset : t -> int
(** Highest offset ever indexed; [-1] when empty. *)
