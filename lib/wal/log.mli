(** An append-only redo log on a simulated device.

    Layout: a 16-byte header ([magic], [version], [head] offset of the
    first live record) followed by records ({!Record}).  The log is
    write-ahead: {!append} buffers the record on the device and {!force}
    issues the synchronous barrier that makes the commit durable.

    {!attach} scans the device to find the usable tail, stopping at a clean
    end or a torn record — so re-attaching after a crash silently discards
    the unsynced tail, which is exactly RVM's recovery-time behaviour.
    Scans read the device through bounded windows (64 KiB, doubled when a
    record does not fit) rather than snapshotting it whole.

    {b Group commit}: with {!enable_group_commit}, {!append_durable}
    coalesces concurrent commits into batches that ride one device write
    and one sync.  A batch closes when it holds [max_records] records or
    [delay] virtual µs after its first record; each committer parks on the
    batch until it is durable.  Callers outside any simulated process fall
    back to an immediate flush.  Batches keep device order equal to
    logical order: a direct {!append}, {!force}, {!set_head} or {!fold}
    first flushes the open batch.

    Trimming (checkpointing) advances [head]; records before [head] are
    dead and their space is not reused (offline compaction is the job of
    the tools layer, as in RVM). *)

type t

exception Bad_log of string
(** Raised by {!attach} when the device holds something that is not a log. *)

val header_size : int

val attach : Lbc_storage.Dev.t -> t
(** Open the log on [dev], initializing a fresh header if the device is
    empty.  Scans for the tail. *)

val set_obs : t -> Lbc_obs.Obs.t -> node:int -> unit
(** Install a trace/metrics sink (the log itself does not know which
    node owns it, hence [node]): appends become [log.append] instants,
    syncs become [log.force] spans feeding [log_force_us], and batch
    flushes become [log.flush] spans feeding [gc_batch_records] /
    [gc_flush_delay_us].  Defaults to [Obs.disabled]. *)

val dev : t -> Lbc_storage.Dev.t
val head : t -> int
(** Offset of the first live record. *)

val tail : t -> int
(** Offset where the next record will be appended. *)

val live_bytes : t -> int
(** [tail - head]: bytes of live log, the quantity RVM's high-water-mark
    trimming watches. *)

val record_count : t -> int
(** Number of live records appended or scanned since attach. *)

val append : ?range_header_size:int -> t -> Record.txn -> int
(** Append one record (buffered); returns its offset. *)

val force : t -> unit
(** Synchronous barrier: all appended records become durable.  Flushes
    the open group-commit batch, if any. *)

(** {1 Group commit} *)

val enable_group_commit :
  ?max_records:int -> ?delay:float -> t -> engine:Lbc_sim.Engine.t -> unit
(** Turn on commit batching.  [max_records] (default 8) closes a batch by
    size; [delay] (default 100 virtual µs) closes it by time. *)

val group_commit_enabled : t -> bool

val append_durable : ?range_header_size:int -> t -> Record.txn -> int
(** Append one record and return once it is durable; returns its offset.
    With group commit enabled the record joins the open batch and the
    caller parks until the batch syncs; otherwise this is
    {!append} + {!force}. *)

val flush_batch : t -> unit
(** Write and sync the open batch now, waking its committers.  No-op
    when no batch is open. *)

val batches_flushed : t -> int
val records_batched : t -> int
(** Per-log group-commit accounting (0 when disabled). *)

val set_head : t -> int -> int
(** Trim the log head (checkpoint); durable immediately.  The requested
    offset must lie in [[header_size, tail]]; the head actually installed
    is clamped to the {!low_water} mark and never moves backwards, and is
    returned.  With no low-water constraint the result equals the
    request. *)

val low_water : t -> int
(** Current effective trim barrier: the minimum of the retention and
    checkpoint waters; [max_int] when unconstrained. *)

val set_retention_water : t -> int -> unit
(** Install the repair-retention barrier: subsequent {!set_head} calls
    will not advance the head past this offset.  Owners keep it at the
    oldest own record some peer may still need re-sent or fetched; pass
    [max_int] to lift the constraint. *)

val set_ckpt_water : t -> int -> unit
(** Install the fuzzy-checkpoint barrier.  While a checkpoint's region
    flushes are in flight the head must not move at all (a mid-checkpoint
    crash replays from the {e previous} checkpoint), so the checkpointer
    pins this at the current head and lifts it ([max_int]) only once the
    end marker is durable. *)


type scan_status = Clean | Torn_at of int * string

val fold : t -> ?from:int -> init:'a -> ('a -> int -> Record.txn -> 'a) -> 'a * scan_status
(** Fold over live records from [from] (default [head t]); the callback
    receives each record's offset.  Returns the accumulator and whether the
    scan ended cleanly or at a torn record. *)

val read_all : t -> Record.txn list * scan_status

(** {1 Control records} *)

val append_ctrl : t -> Record.ctrl -> int
(** Append one control record (buffered, like {!append}); returns its
    offset.  Control records do not count towards {!record_count} and are
    skipped by {!fold}/{!read_all}. *)

val fold_ctrl :
  t -> init:'a -> ('a -> int -> Record.ctrl -> 'a) -> 'a * scan_status
(** Fold over the live control records only (offset and payload). *)

(** {1 Point reads}

    The {!Region_index} chains name records by log offset; on-demand
    replay reads exactly the records of one chain instead of scanning
    the whole tail. *)

val read_at : t -> off:int -> (Record.txn, string) result
(** Read and decode the single transaction record starting at [off].
    Errors (with the offending offset in the message) instead of raising
    on anything that is not a live, intact transaction record: offsets
    outside [[head, tail)], control records, torn or corrupt bytes. *)

val fold_chain :
  t ->
  offsets:int list ->
  init:'a ->
  ('a -> int -> Record.txn -> 'a) ->
  ('a, string) result
(** Fold {!read_at} over a chain's offsets in the given order, stopping
    at the first unreadable record. *)
