(** Recoverable virtual memory — a work-alike of the RVM package the paper
    extends (Satyanarayanan et al., 1994).

    One [t] per node.  Applications map {!Region}s, run transactions that
    declare modified byte ranges with {!set_range} (paper Table 1), and
    commit; commit builds a new-value redo record, optionally forces it to
    the node's log device, and returns it — the {e committed log tail} that
    the coherency layer broadcasts to peers.

    The interface corresponds to the paper's Table 1:
    - [Trans.Init]    — {!begin_txn} (tid allocation)
    - [Trans.Begin]   — {!begin_txn}
    - [Trans.Commit]  — {!commit}
    - [Trans.Acquire] — {!set_lock} ([rvm_setlockid_transaction])
    - [Trans.SetRange]— {!set_range}

    Cost instrumentation: RVM itself is a pure library; simulated-time
    charging is injected through {!instrumentation} so that benchmarks can
    charge the per-update costs of Figures 5-7 while unit tests run the
    same code with no cost model. *)

type t
type txn

type restore_mode =
  | Restore  (** capture old values at [set_range]; [abort] allowed *)
  | No_restore  (** no undo copies; [abort] is an error *)

type commit_mode =
  | Flush  (** force the log before returning (durable commit) *)
  | No_flush  (** lazy commit: buffered log write only *)

(** Cost class of one [set_range] call, per the paper's Figure 5:
    [Redundant] — exact match with a previously added range;
    [Ordered]   — address-ordered call that skips the tree search;
    [Unordered] — full tree search (insert or merge). *)
type set_range_class = Redundant | Ordered | Unordered

type instrumentation = {
  on_set_range : set_range_class -> len:int -> unit;
  on_commit_collect : ranges:int -> bytes:int -> unit;
      (** gathering new values / building iovecs at commit *)
  on_apply : ranges:int -> bytes:int -> unit;
      (** applying a received or replayed record to a region image *)
}

val no_instrumentation : instrumentation

type options = {
  coalesce : Range_tree.policy;
      (** [Optimized] is the paper's modified RVM; [Standard] reproduces
          stock RVM for the Figure 8 ablation. *)
  disk_logging : bool;
      (** when [false], commit skips the log write entirely (the paper
          disables disk logging to isolate coherency costs). *)
  range_header_size : int;  (** on-disk range header size; RVM used 104. *)
  log_mode : Lbc_wal.Command.log_mode;
      (** per-transaction record encoding: [Value] always logs new-value
          ranges; [Command] logs the declared operation instead;
          [Adaptive] picks whichever encodes smaller.  Transactions that
          never call {!set_command} always log values. *)
  instrumentation : instrumentation;
}

val default_options : options
(** Optimized coalescing, disk logging on, 104-byte headers, value
    logging, no instrumentation. *)

exception Txn_error of string
(** Raised on misuse: operations on a dead transaction, abort of a
    [No_restore] transaction, commit of an aborted transaction, etc. *)

val init : ?options:options -> node:int -> log_dev:Lbc_storage.Dev.t -> unit -> t
val node : t -> int
val log : t -> Lbc_wal.Log.t
val options : t -> options

val map_region : t -> id:int -> db:Lbc_storage.Dev.t -> size:int -> Region.t
(** Map a region; raises [Invalid_argument] if the id is already mapped. *)

val region : t -> int -> Region.t
(** @raise Not_found if the region is not mapped. *)

val regions : t -> Region.t list

(** {1 Transactions} *)

val begin_txn : ?restore:restore_mode -> t -> txn
(** Start a transaction.  [restore] defaults to [No_restore] (RVM's
    cheaper mode, sufficient when the application never aborts). *)

val tid : txn -> int

val set_range : txn -> region:int -> offset:int -> len:int -> unit
(** Declare intent to modify [len] bytes at [offset] — must precede the
    actual store, as in RVM. *)

val write : txn -> region:int -> offset:int -> Bytes.t -> unit
(** [set_range] followed by the store itself. *)

val set_u64 : txn -> region:int -> offset:int -> int64 -> unit
(** Transactionally update an 8-byte field (the OO7 update unit). *)

val set_lock : txn -> lock_id:int -> seqno:int -> prev_write_seq:int -> unit
(** [rvm_setlockid_transaction]: tag the transaction's eventual log record
    with a lock acquire (called by the lock package, not applications). *)

val set_command : txn -> op:int -> params:Bytes.t -> regions:int list -> unit
(** Declare that this transaction's whole effect is one deterministic
    registered operation ([Lbc_wal.Command]), making it eligible for
    command encoding at commit (per [options.log_mode]).  [regions] must
    cover every region the replayed operation reads or writes.  The
    declaration is advisory: under [Value] mode, or when the value
    encoding is smaller under [Adaptive], the commit still logs ranges.
    @raise Txn_error if [op] is not registered. *)

val commit : ?mode:commit_mode -> txn -> Lbc_wal.Record.txn
(** Commit: build the redo record from the modified ranges (reading new
    values from region memory) — or, when a command was declared and
    [options.log_mode] selects it, a command record with the same lock
    records — append it to the log if disk logging is enabled, force the
    log under [Flush] (default), and return the record.  The transaction
    is dead afterwards. *)

type commit_outcome = {
  record : Lbc_wal.Record.txn;  (** what was logged and is broadcast *)
  value : Lbc_wal.Record.txn;
      (** the value-record equivalent (equal to [record] unless a
          command encoding was chosen) — the paper's Table 3 byte/page
          accounting is defined over this, whatever the encoding *)
}

val commit_full : ?mode:commit_mode -> txn -> commit_outcome
(** {!commit}, also returning the value equivalent for profiling. *)

val abort : txn -> unit
(** Undo all modifications using the old-value copies captured by
    [set_range].  Only legal for [Restore] transactions. *)

val is_live : txn -> bool

val live_txns : t -> int
(** Transactions begun but not yet committed/aborted — the quantity a
    fuzzy checkpoint waits on before cutting a slice. *)

val clear_live_txns : t -> unit
(** Reset the live-transaction count to zero.  For crash recovery only:
    a simulated node crash kills processes mid-transaction, and those
    transactions will never commit or abort. *)

(** {1 Applying records} *)

val apply_record : t -> Lbc_wal.Record.txn -> unit
(** Apply a record to the mapped region images — used by the coherency
    receiver for records from peer nodes.  A value record's new-value
    ranges are blitted in; a command record's operation is executed
    against the images through [Lbc_wal.Command.execute] (the interlock
    guarantees the pre-state matches the writer's, so the deterministic
    operation reproduces the writer's bytes).  Ranges addressed to
    unmapped regions are skipped and counted in [stats.unmapped_ranges]
    (a command touching any unmapped region is skipped whole): a nonzero
    count means a peer sent updates this node silently could not apply —
    surfaced by [Report] and flagged by [lbc-check verify].
    @raise Lbc_wal.Command.Unknown_op for a command record whose
    operation this process never registered. *)

(** {1 Checkpointing} *)

val truncate : t -> unit
(** Stop-the-world log truncation: force the log (flushing any open
    group-commit batch — write-ahead order), flush every mapped region
    image to its database device (synchronously), and trim the log.  The
    trim is clamped to the log's low-water mark, so records a peer may
    still re-fetch under repair retention survive.  Correct for a single
    node; in the distributed case logs must be merged first (see
    [Lbc_core.Merge]), which is why the paper's prototype trims offline. *)

val maybe_truncate : t -> high_water:int -> bool
(** Truncate iff the live log exceeds [high_water] bytes; returns whether
    it did.  This is RVM's high-water-mark trigger. *)

type ckpt_outcome = {
  ckpt_id : int;
  trimmed_to : int;  (** head offset after the final (clamped) trim *)
  slices : int;
  bytes_flushed : int;
}

val fuzzy_checkpoint :
  ?slice_bytes:int -> ?yield:(unit -> unit) -> t -> ckpt_outcome
(** Incremental (fuzzy) checkpoint, interleaved with commits:

    + force the log and append a durable [Ckpt_begin] marker at [start];
    + for each dirty region, flush the dirty extent in slices of at most
      [slice_bytes] (default 4096), calling [yield] between slices so
      committing transactions can run; each slice is cut only at a
      transaction-quiescent instant (redo-only logging cannot undo
      uncommitted stores at recovery), and the log is forced before each
      region device sync (write-ahead order);
    + append a durable [Ckpt_end] marker and trim the log to [start],
      clamped to the low-water mark.

    While the flush is in flight the head is pinned: a crash before the
    end marker is durable recovers from the {e previous} checkpoint,
    since the region images are a fuzzy mix of old and new bytes.
    [yield] defaults to a no-op, which is only adequate when no
    transaction is live (e.g. unit tests); simulated nodes pass
    [Proc.sleep]/[Proc.yield]. *)

(** {1 Statistics} *)

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable set_ranges : int;
  mutable redundant_calls : int;
  mutable ordered_calls : int;
  mutable unordered_calls : int;
  mutable ranges_logged : int;
  mutable bytes_logged : int;  (** payload bytes in committed records *)
  mutable log_bytes_written : int;  (** on-disk record bytes incl. headers *)
  mutable records_applied : int;
  mutable bytes_applied : int;
  mutable unmapped_ranges : int;
      (** ranges received for regions this node has not mapped *)
  mutable truncations : int;
  mutable checkpoints : int;  (** completed fuzzy checkpoints *)
  mutable ckpt_slices : int;
  mutable ckpt_bytes_flushed : int;
}

val stats : t -> stats
