type outcome = { records_replayed : int; bytes_replayed : int; torn_tail : bool }

let apply_ranges ~db_for_region ~touched txn (records, bytes) =
  let bytes = ref bytes in
  List.iter
    (fun { Lbc_wal.Record.region; offset; data } ->
      match db_for_region region with
      | Some dev ->
          Lbc_storage.Dev.write dev ~off:offset data ~pos:0
            ~len:(Bytes.length data);
          bytes := !bytes + Bytes.length data;
          if not (List.memq dev !touched) then touched := dev :: !touched
      | None -> ())
    txn.Lbc_wal.Record.ranges;
  (records + 1, !bytes)

let replay_records txns ~db_for_region =
  let touched = ref [] in
  let records, bytes =
    List.fold_left
      (fun acc txn -> apply_ranges ~db_for_region ~touched txn acc)
      (0, 0) txns
  in
  List.iter Lbc_storage.Dev.sync !touched;
  { records_replayed = records; bytes_replayed = bytes; torn_tail = false }

let replay_chain ~log ~offsets ~db_for_region =
  (* On-demand recovery: apply exactly one region-index chain, reading
     its records by offset instead of scanning the whole tail. *)
  let touched = ref [] in
  match
    Lbc_wal.Log.fold_chain log ~offsets ~init:(0, 0) (fun acc _off txn ->
        apply_ranges ~db_for_region ~touched txn acc)
  with
  | Ok (records, bytes) ->
      List.iter Lbc_storage.Dev.sync !touched;
      Ok { records_replayed = records; bytes_replayed = bytes;
           torn_tail = false }
  | Error _ as e -> e

let replay ~log ~db_for_region =
  let touched = ref [] in
  let (records, bytes), status =
    Lbc_wal.Log.fold log ~init:(0, 0) (fun acc _off txn ->
        apply_ranges ~db_for_region ~touched txn acc)
  in
  List.iter Lbc_storage.Dev.sync !touched;
  {
    records_replayed = records;
    bytes_replayed = bytes;
    torn_tail = (match status with Lbc_wal.Log.Clean -> false | Lbc_wal.Log.Torn_at _ -> true);
  }
