type outcome = { records_replayed : int; bytes_replayed : int; torn_tail : bool }

(* Command records re-execute their operation against a per-replay
   in-memory image of each region they touch, not against the device:
   an operation makes many small [mem] accesses (it is a program, not a
   range list), and paying device latency per access would make command
   replay arbitrarily slower than the bulk blit it replaces.  The image
   is snapshotted from the device on first touch — after any value
   ranges already replayed — kept coherent with later value blits, and
   its dirty extent is written back once when the session ends. *)
type cmd_buf = {
  buf_dev : Lbc_storage.Dev.t;
  mutable buf_data : Bytes.t;
  mutable buf_len : int;  (* tracked length, like [Dev.size] *)
  mutable buf_lo : int;
  mutable buf_hi : int;  (* dirty extent; empty when [lo >= hi] *)
}

let buf_for bufs dev =
  match List.find_opt (fun b -> b.buf_dev == dev) !bufs with
  | Some b -> b
  | None ->
      let len = Lbc_storage.Dev.size dev in
      let data =
        if len = 0 then Bytes.create 0 else Lbc_storage.Dev.read dev ~off:0 ~len
      in
      let b =
        { buf_dev = dev; buf_data = data; buf_len = len;
          buf_lo = max_int; buf_hi = 0 }
      in
      bufs := b :: !bufs;
      b

let buf_grow b n =
  if n > Bytes.length b.buf_data then begin
    let cap = max n (2 * Bytes.length b.buf_data) in
    let data = Bytes.make cap '\000' in
    Bytes.blit b.buf_data 0 data 0 b.buf_len;
    b.buf_data <- data
  end;
  if n > b.buf_len then b.buf_len <- n

(* A write by the command itself: lands in the image, extends the dirty
   extent. *)
let buf_write b ~off src =
  let n = Bytes.length src in
  buf_grow b (off + n);
  Bytes.blit src 0 b.buf_data off n;
  b.buf_lo <- min b.buf_lo off;
  b.buf_hi <- max b.buf_hi (off + n)

(* A value blit that already went to the device: mirror it into the
   image so later commands see it, without dirtying the extent. *)
let buf_note b ~off src =
  let n = Bytes.length src in
  buf_grow b (off + n);
  Bytes.blit src 0 b.buf_data off n

let buf_read b ~off ~len =
  if off < 0 || len < 0 || off + len > b.buf_len then
    invalid_arg "Recovery: command read beyond device"
  else Bytes.sub b.buf_data off len

(* Write each dirty image extent back to its device in one bulk write;
   returns the devices written so the caller can sync them. *)
let flush_bufs bufs =
  List.filter_map
    (fun b ->
      if b.buf_hi > b.buf_lo then begin
        Lbc_storage.Dev.write b.buf_dev ~off:b.buf_lo b.buf_data ~pos:b.buf_lo
          ~len:(b.buf_hi - b.buf_lo);
        Some b.buf_dev
      end
      else None)
    !bufs

(* Replay one record into the database devices.  Value records blit
   their saved ranges; command records re-execute the operation, reading
   the pre-state from (and writing the redo state to) the session image
   of the devices — the checkpoint image plus earlier replayed records
   IS the operation's pre-state, because merge order preserves each
   lock's write chain. *)
let apply_ranges ~db_for_region ~touched ~bufs txn (records, bytes) =
  let bytes = ref bytes in
  let touch dev =
    if not (List.memq dev !touched) then touched := dev :: !touched
  in
  (match txn.Lbc_wal.Record.cmd with
  | Some c ->
      let missing =
        List.exists
          (fun r -> db_for_region r = None)
          c.Lbc_wal.Record.cmd_regions
      in
      if not missing then begin
        let dev r =
          match db_for_region r with
          | Some d -> d
          | None -> assert false
        in
        let mem =
          {
            Lbc_wal.Command.read =
              (fun ~region ~offset ~len ->
                buf_read (buf_for bufs (dev region)) ~off:offset ~len);
            write =
              (fun ~region ~offset data ->
                buf_write (buf_for bufs (dev region)) ~off:offset data;
                bytes := !bytes + Bytes.length data);
          }
        in
        Lbc_wal.Command.execute mem ~op:c.Lbc_wal.Record.op
          ~params:c.Lbc_wal.Record.params
      end
  | None ->
      List.iter
        (fun { Lbc_wal.Record.region; offset; data } ->
          match db_for_region region with
          | Some dev ->
              Lbc_storage.Dev.write dev ~off:offset data ~pos:0
                ~len:(Bytes.length data);
              (match List.find_opt (fun b -> b.buf_dev == dev) !bufs with
              | Some b -> buf_note b ~off:offset data
              | None -> ());
              bytes := !bytes + Bytes.length data;
              touch dev
          | None -> ())
        txn.Lbc_wal.Record.ranges);
  (records + 1, !bytes)

let finish ~touched ~bufs =
  List.iter
    (fun dev ->
      if not (List.memq dev !touched) then touched := dev :: !touched)
    (flush_bufs bufs);
  List.iter Lbc_storage.Dev.sync !touched

let replay_records txns ~db_for_region =
  let touched = ref [] and bufs = ref [] in
  let records, bytes =
    List.fold_left
      (fun acc txn -> apply_ranges ~db_for_region ~touched ~bufs txn acc)
      (0, 0) txns
  in
  finish ~touched ~bufs;
  { records_replayed = records; bytes_replayed = bytes; torn_tail = false }

let replay_chain ~log ~offsets ~db_for_region =
  (* On-demand recovery: apply exactly one region-index chain, reading
     its records by offset instead of scanning the whole tail. *)
  let touched = ref [] and bufs = ref [] in
  match
    Lbc_wal.Log.fold_chain log ~offsets ~init:(0, 0) (fun acc _off txn ->
        apply_ranges ~db_for_region ~touched ~bufs txn acc)
  with
  | Ok (records, bytes) ->
      finish ~touched ~bufs;
      Ok { records_replayed = records; bytes_replayed = bytes;
           torn_tail = false }
  | Error _ as e -> e

let replay ~log ~db_for_region =
  let touched = ref [] and bufs = ref [] in
  let (records, bytes), status =
    Lbc_wal.Log.fold log ~init:(0, 0) (fun acc _off txn ->
        apply_ranges ~db_for_region ~touched ~bufs txn acc)
  in
  finish ~touched ~bufs;
  {
    records_replayed = records;
    bytes_replayed = bytes;
    torn_tail = (match status with Lbc_wal.Log.Clean -> false | Lbc_wal.Log.Torn_at _ -> true);
  }
