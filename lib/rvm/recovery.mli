(** Crash recovery: replay a committed redo log into the permanent
    database devices.

    This is the standard single-log RVM recovery procedure.  In the
    distributed configuration each node writes its own log, and those logs
    must first be merged into one (module [Lbc_core.Merge]) before replay
    — exactly the utility the paper adds in Section 3.4. *)

type outcome = {
  records_replayed : int;
  bytes_replayed : int;
  torn_tail : bool;  (** the log ended in a torn record, which was ignored *)
}

val replay : log:Lbc_wal.Log.t -> db_for_region:(int -> Lbc_storage.Dev.t option) -> outcome
(** Apply every committed record, in log order, to the database device
    of its region, then sync the touched devices.  Value records blit
    their saved ranges; command records re-execute the registered
    operation against an in-memory image of the devices, snapshotted on
    first touch and flushed back in one bulk write at the end (the
    checkpoint image plus the records replayed so far is exactly the
    operation's pre-state).  Ranges whose
    region resolves to [None] are skipped, as is a command touching any
    unresolved region.
    @raise Lbc_wal.Command.Unknown_op for a command record whose
    operation this process never registered. *)

val replay_records :
  Lbc_wal.Record.txn list -> db_for_region:(int -> Lbc_storage.Dev.t option) -> outcome
(** Same, from an already-merged record list. *)

val replay_chain :
  log:Lbc_wal.Log.t ->
  offsets:int list ->
  db_for_region:(int -> Lbc_storage.Dev.t option) ->
  (outcome, string) result
(** On-demand recovery: apply exactly one {!Lbc_wal.Region_index} chain,
    reading its records by log offset ({!Lbc_wal.Log.read_at}) instead
    of scanning the whole tail.  Errors (with the offending offset) on
    an unreadable record. *)
