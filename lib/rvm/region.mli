(** A mapped recoverable region.

    Following RVM's model, mapping a region copies the whole backing
    database file into virtual memory ([Bytes] here); the application then
    reads and writes the in-memory image directly, and committed new values
    flow to the log and eventually back to the database file.  The paper
    notes this whole-file copy is what limits RVM to small databases — a
    limitation we inherit deliberately. *)

type t

val map : id:int -> db:Lbc_storage.Dev.t -> size:int -> t
(** Map a region of [size] bytes backed by device [db].  Bytes present in
    the stable device image are loaded; the remainder is zero-filled. *)

val id : t -> int
val size : t -> int
val db : t -> Lbc_storage.Dev.t

val read : t -> offset:int -> len:int -> Bytes.t
(** Copy out of the in-memory image. *)

val write : t -> offset:int -> Bytes.t -> unit
(** Blit into the in-memory image (no logging — callers go through a
    transaction's [set_range]). *)

val get_u64 : t -> offset:int -> int64
val set_u64 : t -> offset:int -> int64 -> unit
(** Convenience accessors for 8-byte fields (the OO7 update unit). *)

val unsafe_mem : t -> Bytes.t
(** The live image itself, for zero-copy scans by trusted callers
    (checkpointing, twin/diff comparison). *)

val flush_to_db : t -> unit
(** Write the full in-memory image to the database device and sync it —
    the checkpoint step of log truncation.  Clears the dirty extent. *)

val reload_from_db : t -> unit
(** Replace the in-memory image with the database device's current
    contents (zero-filling any shortfall) — the resynchronization step
    after a distributed checkpoint.  Clears the dirty extent. *)

(** {1 On-demand recovery state}

    During an on-demand rejoin a region is {e cold} until its replay
    chain has been applied; the node's serving gates block the first
    touch of a cold region on warming it.  Regions are born warm — only
    rejoin marks them cold. *)

val set_cold : t -> unit
val set_warm : t -> unit
val is_warm : t -> bool

(** {1 Dirty tracking}

    Every {!write}/{!set_u64} extends a single dirty extent; a fuzzy
    checkpoint flushes only that extent, in bounded slices, instead of
    stop-the-world writing whole region images. *)

val is_dirty : t -> bool
val dirty_bytes : t -> int
(** Bytes in the dirty extent (0 when clean). *)

val dirty_extent : t -> (int * int) option
(** The extent as [Some (lo, hi)] ([lo] inclusive, [hi] exclusive). *)

val flush_dirty : t -> unit
(** Write only the dirty extent to the database device and sync it; no-op
    when clean.  Clears the extent. *)

val flush_slice : t -> max_bytes:int -> int
(** Incremental flush: write up to [max_bytes] from the low end of the
    dirty extent to the database device ({e without} syncing) and shrink
    the extent.  Returns the bytes written (0 when clean).  The caller
    syncs the device once the extent is drained. *)
