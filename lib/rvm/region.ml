type t = {
  id : int;
  size : int;
  db : Lbc_storage.Dev.t;
  mem : Bytes.t;
  (* Dirty extent [dirty_lo, dirty_hi): bytes of [mem] modified since the
     last flush/reload.  Empty when lo >= hi.  A single extent (not a
     range list) keeps bookkeeping O(1) per store; the cost is flushing
     clean bytes that happen to sit between two dirty ones. *)
  mutable dirty_lo : int;
  mutable dirty_hi : int;
  (* On-demand recovery state: a region mapped during an on-demand rejoin
     is cold until its replay chain has been applied; the node's serving
     gates block first touch on warming it.  Regions are born warm —
     only rejoin marks them cold. *)
  mutable warm : bool;
}

let map ~id ~db ~size =
  if size <= 0 then invalid_arg "Region.map: size must be positive";
  let mem = Bytes.make size '\000' in
  let have = min size (Lbc_storage.Dev.size db) in
  if have > 0 then begin
    let init = Lbc_storage.Dev.read db ~off:0 ~len:have in
    Bytes.blit init 0 mem 0 have
  end;
  { id; size; db; mem; dirty_lo = max_int; dirty_hi = 0; warm = true }

let id t = t.id
let size t = t.size
let db t = t.db

let check t ~offset ~len =
  if offset < 0 || len < 0 || offset + len > t.size then
    invalid_arg
      (Printf.sprintf "Region %d: range [%d,%d) outside size %d" t.id offset
         (offset + len) t.size)

let mark_dirty t ~offset ~len =
  if len > 0 then begin
    if offset < t.dirty_lo then t.dirty_lo <- offset;
    if offset + len > t.dirty_hi then t.dirty_hi <- offset + len
  end

let clear_dirty t =
  t.dirty_lo <- max_int;
  t.dirty_hi <- 0

let set_cold t = t.warm <- false
let set_warm t = t.warm <- true
let is_warm t = t.warm

let is_dirty t = t.dirty_lo < t.dirty_hi
let dirty_bytes t = if is_dirty t then t.dirty_hi - t.dirty_lo else 0
let dirty_extent t = if is_dirty t then Some (t.dirty_lo, t.dirty_hi) else None

let read t ~offset ~len =
  check t ~offset ~len;
  Bytes.sub t.mem offset len

let write t ~offset b =
  check t ~offset ~len:(Bytes.length b);
  Bytes.blit b 0 t.mem offset (Bytes.length b);
  mark_dirty t ~offset ~len:(Bytes.length b)

let get_u64 t ~offset =
  check t ~offset ~len:8;
  Bytes.get_int64_le t.mem offset

let set_u64 t ~offset v =
  check t ~offset ~len:8;
  Bytes.set_int64_le t.mem offset v;
  mark_dirty t ~offset ~len:8

let unsafe_mem t = t.mem

let reload_from_db t =
  Bytes.fill t.mem 0 t.size '\000';
  let have = min t.size (Lbc_storage.Dev.size t.db) in
  if have > 0 then begin
    let image = Lbc_storage.Dev.read t.db ~off:0 ~len:have in
    Bytes.blit image 0 t.mem 0 have
  end;
  clear_dirty t

let flush_to_db t =
  Lbc_storage.Dev.write t.db ~off:0 t.mem ~pos:0 ~len:t.size;
  Lbc_storage.Dev.sync t.db;
  clear_dirty t

let flush_slice t ~max_bytes =
  if max_bytes <= 0 then invalid_arg "Region.flush_slice: max_bytes";
  if not (is_dirty t) then 0
  else begin
    let lo = t.dirty_lo in
    let len = min max_bytes (t.dirty_hi - lo) in
    (* Capture the bytes and shrink the extent before touching the device:
       Dev.write charges virtual time (a scheduling point), and a store
       landing during that sleep must both miss the captured slice and
       re-extend the extent so it gets flushed by a later slice. *)
    let chunk = Bytes.sub t.mem lo len in
    if lo + len >= t.dirty_hi then clear_dirty t else t.dirty_lo <- lo + len;
    Lbc_storage.Dev.write t.db ~off:lo chunk ~pos:0 ~len;
    len
  end

let flush_dirty t =
  if is_dirty t then begin
    let lo = t.dirty_lo and len = t.dirty_hi - t.dirty_lo in
    let chunk = Bytes.sub t.mem lo len in
    clear_dirty t;
    Lbc_storage.Dev.write t.db ~off:lo chunk ~pos:0 ~len;
    Lbc_storage.Dev.sync t.db
  end
