type restore_mode = Restore | No_restore
type commit_mode = Flush | No_flush
type set_range_class = Redundant | Ordered | Unordered

type instrumentation = {
  on_set_range : set_range_class -> len:int -> unit;
  on_commit_collect : ranges:int -> bytes:int -> unit;
  on_apply : ranges:int -> bytes:int -> unit;
}

let no_instrumentation =
  {
    on_set_range = (fun _ ~len:_ -> ());
    on_commit_collect = (fun ~ranges:_ ~bytes:_ -> ());
    on_apply = (fun ~ranges:_ ~bytes:_ -> ());
  }

type options = {
  coalesce : Range_tree.policy;
  disk_logging : bool;
  range_header_size : int;
  log_mode : Lbc_wal.Command.log_mode;
  instrumentation : instrumentation;
}

let default_options =
  {
    coalesce = Range_tree.Optimized;
    disk_logging = true;
    range_header_size = Lbc_wal.Record.rvm_disk_header_size;
    log_mode = Lbc_wal.Command.Value;
    instrumentation = no_instrumentation;
  }

exception Txn_error of string

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable set_ranges : int;
  mutable redundant_calls : int;
  mutable ordered_calls : int;
  mutable unordered_calls : int;
  mutable ranges_logged : int;
  mutable bytes_logged : int;
  mutable log_bytes_written : int;
  mutable records_applied : int;
  mutable bytes_applied : int;
  mutable unmapped_ranges : int;
  mutable truncations : int;
  mutable checkpoints : int;
  mutable ckpt_slices : int;
  mutable ckpt_bytes_flushed : int;
}

let fresh_stats () =
  {
    commits = 0;
    aborts = 0;
    set_ranges = 0;
    redundant_calls = 0;
    ordered_calls = 0;
    unordered_calls = 0;
    ranges_logged = 0;
    bytes_logged = 0;
    log_bytes_written = 0;
    records_applied = 0;
    bytes_applied = 0;
    unmapped_ranges = 0;
    truncations = 0;
    checkpoints = 0;
    ckpt_slices = 0;
    ckpt_bytes_flushed = 0;
  }

type t = {
  node : int;
  log : Lbc_wal.Log.t;
  options : options;
  regions : (int, Region.t) Hashtbl.t;
  mutable next_tid : int;
  mutable next_ckpt_id : int;
  mutable live_txns : int;
  stats : stats;
}

type txn = {
  owner : t;
  tid : int;
  restore : restore_mode;
  trees : (int, Range_tree.t) Hashtbl.t;  (* region id -> modified ranges *)
  mutable undo : (Region.t * int * Bytes.t) list;  (* newest first *)
  mutable locks : Lbc_wal.Record.lock_info list;  (* reverse acquire order *)
  mutable command : Lbc_wal.Record.cmd option;  (* command encoding, if declared *)
  mutable live : bool;
}

let init ?(options = default_options) ~node ~log_dev () =
  {
    node;
    log = Lbc_wal.Log.attach log_dev;
    options;
    regions = Hashtbl.create 4;
    next_tid = 1;
    next_ckpt_id = 1;
    live_txns = 0;
    stats = fresh_stats ();
  }

let node t = t.node
let log t = t.log
let options t = t.options
let stats t = t.stats

let map_region t ~id ~db ~size =
  if Hashtbl.mem t.regions id then
    invalid_arg (Printf.sprintf "Rvm.map_region: region %d already mapped" id);
  let r = Region.map ~id ~db ~size in
  Hashtbl.add t.regions id r;
  r

let region t id =
  match Hashtbl.find_opt t.regions id with
  | Some r -> r
  | None -> raise Not_found

let regions t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.regions []
  |> List.sort (fun a b -> Int.compare (Region.id a) (Region.id b))

let live_txns t = t.live_txns

let clear_live_txns t = t.live_txns <- 0

let begin_txn ?(restore = No_restore) t =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  t.live_txns <- t.live_txns + 1;
  {
    owner = t;
    tid;
    restore;
    trees = Hashtbl.create 2;
    undo = [];
    locks = [];
    command = None;
    live = true;
  }

let tid txn = txn.tid

let check_live txn what =
  if not txn.live then
    raise (Txn_error (Printf.sprintf "%s on finished transaction %d" what txn.tid))

let tree_for txn region_id =
  match Hashtbl.find_opt txn.trees region_id with
  | Some tree -> tree
  | None ->
      let tree = Range_tree.create txn.owner.options.coalesce in
      Hashtbl.add txn.trees region_id tree;
      tree

let classify = function
  | Range_tree.Exact_match -> Redundant
  | Range_tree.Ordered_append -> Ordered
  | Range_tree.Extended | Range_tree.Merged | Range_tree.Inserted -> Unordered

let set_range txn ~region ~offset ~len =
  check_live txn "set_range";
  let reg =
    match Hashtbl.find_opt txn.owner.regions region with
    | Some reg -> reg
    | None -> raise (Txn_error (Printf.sprintf "set_range: region %d not mapped" region))
  in
  if offset < 0 || len <= 0 || offset + len > Region.size reg then
    raise
      (Txn_error
         (Printf.sprintf "set_range: bad range [%d,%d) in region %d" offset
            (offset + len) region));
  let tree = tree_for txn region in
  let case = Range_tree.add tree ~offset ~len in
  let cls = classify case in
  let st = txn.owner.stats in
  st.set_ranges <- st.set_ranges + 1;
  (match cls with
  | Redundant -> st.redundant_calls <- st.redundant_calls + 1
  | Ordered -> st.ordered_calls <- st.ordered_calls + 1
  | Unordered -> st.unordered_calls <- st.unordered_calls + 1);
  txn.owner.options.instrumentation.on_set_range cls ~len;
  (* Capture the old value for abort, unless this range is already
     covered by a previous capture (Redundant case). *)
  (match (txn.restore, cls) with
  | Restore, (Ordered | Unordered) ->
      txn.undo <- (reg, offset, Region.read reg ~offset ~len) :: txn.undo
  | Restore, Redundant | No_restore, _ -> ())

let write txn ~region ~offset b =
  set_range txn ~region ~offset ~len:(Bytes.length b);
  Region.write (Hashtbl.find txn.owner.regions region) ~offset b

let set_u64 txn ~region ~offset v =
  set_range txn ~region ~offset ~len:8;
  Region.set_u64 (Hashtbl.find txn.owner.regions region) ~offset v

let set_lock txn ~lock_id ~seqno ~prev_write_seq =
  check_live txn "set_lock";
  txn.locks <-
    { Lbc_wal.Record.lock_id; seqno; prev_write_seq } :: txn.locks

let set_command txn ~op ~params ~regions =
  check_live txn "set_command";
  if not (Lbc_wal.Command.registered op) then
    raise (Txn_error (Printf.sprintf "set_command: op %d is not registered" op));
  txn.command <-
    Some
      { Lbc_wal.Record.op; params;
        cmd_regions = List.sort_uniq Int.compare regions }

let build_record txn =
  let ranges = ref [] and n = ref 0 and bytes = ref 0 in
  let region_ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) txn.trees []
    |> List.sort Int.compare
  in
  List.iter
    (fun region_id ->
      let reg = Hashtbl.find txn.owner.regions region_id in
      let tree = Hashtbl.find txn.trees region_id in
      Range_tree.fold tree ~init:() ~f:(fun () ~offset ~len ->
          incr n;
          bytes := !bytes + len;
          ranges :=
            { Lbc_wal.Record.region = region_id; offset;
              data = Region.read reg ~offset ~len }
            :: !ranges))
    region_ids;
  ( {
      Lbc_wal.Record.node = txn.owner.node;
      tid = txn.tid;
      locks = List.rev txn.locks;
      ranges = List.rev !ranges;
      cmd = None;
    },
    !n,
    !bytes )

(* The adaptive decision: a transaction that declared a command may log
   (and broadcast) the operation instead of its new-value ranges.
   Read-only transactions keep the cheap empty value record — a command
   record is a write and would advance the lock's write chain.  Both
   candidates carry identical lock records, so merge order, receiver
   interlock, and partitioning are unaffected by the choice. *)
let choose_encoding t (txn : txn) value =
  match (txn.command, t.options.log_mode) with
  | None, _ | _, Lbc_wal.Command.Value -> value
  | Some _, _ when value.Lbc_wal.Record.ranges = [] -> value
  | Some c, Lbc_wal.Command.Command ->
      { value with Lbc_wal.Record.ranges = []; cmd = Some c }
  | Some c, Lbc_wal.Command.Adaptive ->
      let cmd_record =
        { value with Lbc_wal.Record.ranges = []; cmd = Some c }
      in
      let rhs = t.options.range_header_size in
      if
        Lbc_wal.Record.encoded_size ~range_header_size:rhs cmd_record
        < Lbc_wal.Record.encoded_size ~range_header_size:rhs value
      then cmd_record
      else value

type commit_outcome = {
  record : Lbc_wal.Record.txn;
  value : Lbc_wal.Record.txn;
}

let commit_full ?(mode = Flush) txn =
  check_live txn "commit";
  txn.live <- false;
  let value, n_ranges, bytes = build_record txn in
  let t = txn.owner in
  let record = choose_encoding t txn value in
  (* The record is built: region memory no longer holds uncommitted stores
     from this transaction, so a fuzzy checkpoint may cut slices while we
     wait (below) for the log write to become durable. *)
  t.live_txns <- t.live_txns - 1;
  t.options.instrumentation.on_commit_collect ~ranges:n_ranges ~bytes;
  t.stats.commits <- t.stats.commits + 1;
  (* Range/byte stats always count the value equivalents: they measure
     the transaction's effect, not its encoding.  The encoding's win
     shows up in [log_bytes_written] and on the wire. *)
  t.stats.ranges_logged <- t.stats.ranges_logged + n_ranges;
  t.stats.bytes_logged <- t.stats.bytes_logged + bytes;
  if t.options.disk_logging then begin
    let rhs = t.options.range_header_size in
    (match mode with
    | Flush when Lbc_wal.Log.group_commit_enabled t.log ->
        (* Group commit: join a batch and park until it is durable —
           one device write + one sync cover the whole batch. *)
        ignore (Lbc_wal.Log.append_durable ~range_header_size:rhs t.log record)
    | Flush ->
        ignore (Lbc_wal.Log.append ~range_header_size:rhs t.log record);
        Lbc_wal.Log.force t.log
    | No_flush ->
        ignore (Lbc_wal.Log.append ~range_header_size:rhs t.log record));
    t.stats.log_bytes_written <-
      t.stats.log_bytes_written
      + Lbc_wal.Record.encoded_size ~range_header_size:rhs record
  end;
  { record; value }

let commit ?mode txn = (commit_full ?mode txn).record

let abort txn =
  check_live txn "abort";
  (match txn.restore with
  | No_restore -> raise (Txn_error "abort of a No_restore transaction")
  | Restore -> ());
  txn.live <- false;
  (* Undo copies are newest-first; restoring in that order rewinds
     overlapping captures correctly. *)
  List.iter (fun (reg, offset, old) -> Region.write reg ~offset old) txn.undo;
  txn.owner.live_txns <- txn.owner.live_txns - 1;
  txn.owner.stats.aborts <- txn.owner.stats.aborts + 1

let is_live txn = txn.live

let apply_record t record =
  let n = ref 0 and bytes = ref 0 in
  (match record.Lbc_wal.Record.cmd with
  | Some c ->
      (* A command replays all-or-nothing: executing it against a subset
         of its regions would interleave reads of missing state.  If any
         region is unmapped the record is skipped and counted, same as a
         value range for an unmapped region. *)
      let missing =
        List.filter
          (fun r -> not (Hashtbl.mem t.regions r))
          c.Lbc_wal.Record.cmd_regions
      in
      if missing <> [] then
        t.stats.unmapped_ranges <-
          t.stats.unmapped_ranges + List.length missing
      else begin
        let mem =
          {
            Lbc_wal.Command.read =
              (fun ~region ~offset ~len ->
                Region.read (Hashtbl.find t.regions region) ~offset ~len);
            write =
              (fun ~region ~offset data ->
                Region.write (Hashtbl.find t.regions region) ~offset data;
                incr n;
                bytes := !bytes + Bytes.length data);
          }
        in
        Lbc_wal.Command.execute mem ~op:c.Lbc_wal.Record.op
          ~params:c.Lbc_wal.Record.params
      end
  | None ->
      List.iter
        (fun { Lbc_wal.Record.region; offset; data } ->
          match Hashtbl.find_opt t.regions region with
          | Some reg ->
              Region.write reg ~offset data;
              incr n;
              bytes := !bytes + Bytes.length data
          | None -> t.stats.unmapped_ranges <- t.stats.unmapped_ranges + 1)
        record.Lbc_wal.Record.ranges);
  t.stats.records_applied <- t.stats.records_applied + 1;
  t.stats.bytes_applied <- t.stats.bytes_applied + !bytes;
  t.options.instrumentation.on_apply ~ranges:!n ~bytes:!bytes

let truncate t =
  (* WAL first: an open group-commit batch may hold records whose effects
     are already in region memory; flushing the images before those records
     are durable would put unlogged data in the database. *)
  Lbc_wal.Log.force t.log;
  Hashtbl.iter (fun _ reg -> Region.flush_to_db reg) t.regions;
  (* The trim is clamped inside [set_head] to the log's low-water mark, so
     records a peer may still re-fetch (repair retention) survive. *)
  ignore (Lbc_wal.Log.set_head t.log (Lbc_wal.Log.tail t.log) : int);
  t.stats.truncations <- t.stats.truncations + 1

let maybe_truncate t ~high_water =
  if Lbc_wal.Log.live_bytes t.log > high_water then begin
    truncate t;
    true
  end
  else false

type ckpt_outcome = {
  ckpt_id : int;
  trimmed_to : int;
  slices : int;
  bytes_flushed : int;
}

let rec wait_quiescent t ~yield =
  if t.live_txns > 0 then begin
    yield ();
    wait_quiescent t ~yield
  end

let fuzzy_checkpoint ?(slice_bytes = 4096) ?(yield = fun () -> ()) t =
  if slice_bytes <= 0 then
    invalid_arg "Rvm.fuzzy_checkpoint: slice_bytes must be positive";
  let ckpt_id = t.next_ckpt_id in
  t.next_ckpt_id <- ckpt_id + 1;
  (* Everything committed so far — including an open group-commit batch —
     becomes durable before the begin marker. *)
  Lbc_wal.Log.force t.log;
  let start =
    Lbc_wal.Log.append_ctrl t.log
      { Lbc_wal.Record.kind = Lbc_wal.Record.Ckpt_begin; node = t.node;
        ckpt_id; entries = [] }
  in
  Lbc_wal.Log.force t.log;
  (* Pin the head: a crash before the end marker is durable must replay
     from the previous checkpoint, because the region images are about to
     become a mix of old and new bytes. *)
  Lbc_wal.Log.set_ckpt_water t.log (Lbc_wal.Log.head t.log);
  let slices = ref 0 and bytes = ref 0 in
  List.iter
    (fun reg ->
      while Region.is_dirty reg do
        (* Cut slices only at transaction-quiescent instants: region
           memory otherwise holds uncommitted stores, and this is a
           redo-only log (recovery cannot undo them). *)
        wait_quiescent t ~yield;
        let n = Region.flush_slice reg ~max_bytes:slice_bytes in
        incr slices;
        bytes := !bytes + n;
        if Region.is_dirty reg then yield ()
        else begin
          (* WAL first: the records covering the captured bytes must be
             durable before the image bytes are. *)
          Lbc_wal.Log.force t.log;
          Lbc_storage.Dev.sync (Region.db reg)
        end
      done)
    (regions t);
  ignore
    (Lbc_wal.Log.append_ctrl t.log
       { Lbc_wal.Record.kind = Lbc_wal.Record.Ckpt_end; node = t.node;
         ckpt_id; entries = [] }
      : int);
  Lbc_wal.Log.force t.log;
  Lbc_wal.Log.set_ckpt_water t.log max_int;
  let trimmed_to = Lbc_wal.Log.set_head t.log start in
  (* Persist the replay-partition index over the post-trim live tail
     (alongside the end marker) so a rejoining node can serve on demand
     without re-partitioning the tail it already checkpointed. *)
  let idx, _ = Lbc_wal.Region_index.of_log t.log in
  ignore
    (Lbc_wal.Log.append_ctrl t.log
       (Lbc_wal.Region_index.to_ctrl idx ~node:t.node ~ckpt_id)
      : int);
  Lbc_wal.Log.force t.log;
  t.stats.checkpoints <- t.stats.checkpoints + 1;
  t.stats.ckpt_slices <- t.stats.ckpt_slices + !slices;
  t.stats.ckpt_bytes_flushed <- t.stats.ckpt_bytes_flushed + !bytes;
  { ckpt_id; trimmed_to; slices = !slices; bytes_flushed = !bytes }
