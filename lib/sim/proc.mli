(** Cooperative simulated processes, implemented with effect handlers.

    A process is an ordinary OCaml function spawned on an {!Engine.t}.
    Inside a process, {!sleep} advances virtual time and {!suspend} parks
    the process until some other event resumes it.  All higher-level
    synchronization ({!Ivar}, {!Mailbox}, {!Condvar}) is built from
    [suspend].  Processes are single-shot continuations driven entirely by
    the engine, so a whole multi-node system runs deterministically on one
    OS thread. *)

exception Not_in_process
(** Raised when [sleep]/[suspend]/[now] is called outside [spawn]. *)

exception Killed
(** Raised {e inside} a process when it is resumed after its [alive]
    predicate turned false (its node crashed): the process unwinds and
    dies silently instead of continuing with torn state. *)

val spawn :
  Engine.t ->
  ?name:string ->
  ?daemon:bool ->
  ?alive:(unit -> bool) ->
  (unit -> unit) ->
  unit
(** [spawn engine f] schedules process [f] to start at the current virtual
    instant.  An exception escaping [f] is wrapped in [Failure] with the
    process [name] and propagates out of {!Engine.run}.

    [daemon] (default [false]) marks system service processes (message
    dispatchers) that legitimately block forever: they are excluded from
    the engine's stranded-process report.

    [alive] (default always-true) is checked every time the process is
    (re)started or resumed; when it returns [false] the process is killed
    by raising {!Killed} at its suspension point.  This is how a crashed
    node's in-flight transaction is torn down. *)

val sleep : Engine.time -> unit
(** Advance this process's virtual time.  Other events run meanwhile. *)

val yield : unit -> unit
(** Re-enter the event queue at the current instant (runs after events
    already scheduled for this instant). *)

val suspend : ?info:string -> (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the process and calls [register resume]
    immediately; a later call of [resume v] (from any event callback)
    continues the process with [v].  [resume] must be called exactly
    once.  With [?info], the suspension is recorded in the engine's
    blocked-process registry (see {!Engine.blocked}) until resumed. *)

val now : unit -> Engine.time
(** Virtual time, usable only inside a process. *)

val engine : unit -> Engine.t
(** The engine driving the current process. *)
