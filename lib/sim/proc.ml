exception Not_in_process
exception Killed

type meta = { name : string; daemon : bool; alive : unit -> bool }

type _ Effect.t +=
  | Sleep : Engine.time -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Current_engine : Engine.t Effect.t
  | Self_meta : meta Effect.t

let sleep dt =
  try Effect.perform (Sleep dt) with Effect.Unhandled _ -> raise Not_in_process

let engine () =
  try Effect.perform Current_engine
  with Effect.Unhandled _ -> raise Not_in_process

let self_meta () =
  try Effect.perform Self_meta
  with Effect.Unhandled _ -> raise Not_in_process

let suspend ?info register =
  match info with
  | None -> (
      try Effect.perform (Suspend register)
      with Effect.Unhandled _ -> raise Not_in_process)
  | Some info ->
      (* Register in the engine's blocked-process registry for the
         duration of the suspension, so a process that is never resumed
         shows up in the stranded report. *)
      let eng = engine () in
      let m = self_meta () in
      let id =
        Engine.block_begin eng
          ~desc:(m.name ^ ": " ^ info)
          ~daemon:m.daemon ~alive:m.alive
      in
      Effect.perform
        (Suspend
           (fun resume ->
             register (fun v ->
                 Engine.block_end eng id;
                 resume v)))

let now () = Engine.now (engine ())
let yield () = sleep 0.0

let spawn eng ?(name = "proc") ?(daemon = false) ?(alive = fun () -> true) f =
  let open Effect.Deep in
  let meta = { name; daemon; alive } in
  let handler =
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match e with
          | Killed -> ()  (* the process's node crashed; die silently *)
          | Failure _ ->
              let bt = Printexc.get_raw_backtrace () in
              Printexc.raise_with_backtrace e bt
          | _ ->
              let bt = Printexc.get_raw_backtrace () in
              let e' =
                Failure
                  (Printf.sprintf "process %s: %s" name (Printexc.to_string e))
              in
              Printexc.raise_with_backtrace e' bt);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep dt ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Engine.schedule eng ~delay:dt (fun () ->
                      if alive () then continue k ()
                      else discontinue k Killed))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  register (fun v ->
                      if alive () then continue k v
                      else discontinue k Killed))
          | Current_engine ->
              Some (fun (k : (a, unit) continuation) -> continue k eng)
          | Self_meta ->
              Some (fun (k : (a, unit) continuation) -> continue k meta)
          | _ -> None);
    }
  in
  Engine.schedule eng (fun () -> if alive () then match_with f () handler)
