(** Condition variable for simulated processes.

    As with POSIX condition variables, [wait] must be used in a loop that
    re-checks the guarded predicate; {!await} packages that loop. *)

type t

val create : unit -> t

val wait : ?info:string -> t -> unit
(** Suspend until the next {!broadcast} or {!signal}.  [info] (default
    ["condvar.wait"]) describes the wait in the engine's blocked-process
    registry. *)

val signal : t -> unit
(** Wake one waiter (FIFO), if any. *)

val broadcast : t -> unit
(** Wake all current waiters. *)

val await : ?info:string -> t -> (unit -> bool) -> unit
(** [await c pred] returns once [pred ()] is true, waiting on [c] between
    checks. *)
