type time = float

type event = { at : time; seqno : int; prio : int; callback : unit -> unit }

type waiting = { desc : string; daemon : bool; alive : unit -> bool }

type t = {
  mutable clock : time;
  queue : event Lbc_util.Pqueue.t;
  mutable ripe : event list;
      (* events at exactly [clock], in seqno order, not yet run — the
         current step's scheduling candidates *)
  mutable next_seqno : int;
  sched : Schedule.t;
  waiting : (int, waiting) Hashtbl.t;
  mutable next_wait : int;
}

exception Stranded of string list

let () =
  Printexc.register_printer (function
    | Stranded descs ->
        Some
          (Printf.sprintf "Stranded: %d process(es) blocked forever:\n  %s"
             (List.length descs)
             (String.concat "\n  " descs))
    | _ -> None)

(* (at, seqno)-lexicographic: the baseline order is stable by
   construction — same-time events fire in creation order — instead of
   relying on the priority queue's internal tie behaviour. *)
let compare_event a b =
  let c = Float.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seqno b.seqno

let create ?(policy = Schedule.Fifo) () =
  {
    clock = 0.0;
    queue = Lbc_util.Pqueue.create ~compare:compare_event;
    ripe = [];
    next_seqno = 0;
    sched = Schedule.make policy;
    waiting = Hashtbl.create 16;
    next_wait = 0;
  }

let now t = t.clock
let policy t = Schedule.policy t.sched
let decisions t = Schedule.decisions t.sched
let choice_points t = Schedule.choice_points t.sched

let schedule_at t ~at callback =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %g is before now (%g)" at t.clock);
  let seqno = t.next_seqno in
  t.next_seqno <- seqno + 1;
  let prio = Schedule.assign_priority t.sched in
  Lbc_util.Pqueue.push t.queue { at; seqno; prio; callback }

let schedule t ?(delay = 0.0) callback =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock +. delay) callback

let pending t = Lbc_util.Pqueue.length t.queue + List.length t.ripe

(* --------------------------------------------------------------- *)
(* Blocked-process registry.

   Processes that suspend on a synchronization primitive register a
   description of what they are waiting for; the registration is removed
   when they are resumed.  When the event queue drains while non-daemon
   registrations remain, the simulation is stranded: those processes can
   never run again (nothing is left to resume them), which is how a
   dropped message or a lost lock token turns a hung cluster into a
   diagnosable failure instead of a silent pass. *)

let block_begin t ~desc ~daemon ~alive =
  let id = t.next_wait in
  t.next_wait <- id + 1;
  Hashtbl.replace t.waiting id { desc; daemon; alive };
  id

let block_end t id = Hashtbl.remove t.waiting id

let blocked t =
  (* Prune registrations of processes that died (e.g. a crashed node's
     torn transaction): they are parked forever but intentionally so. *)
  let dead =
    Hashtbl.fold
      (fun id w acc -> if w.alive () then acc else id :: acc)
      t.waiting []
  in
  List.iter (Hashtbl.remove t.waiting) dead;
  Hashtbl.fold
    (fun _ w acc -> if w.daemon then acc else w.desc :: acc)
    t.waiting []
  |> List.sort String.compare

let blocked_count t = List.length (blocked t)

(* Earliest instant holding runnable work: the ripe set's (== the
   clock's) if one is open, else the queue head's. *)
let next_time t =
  match t.ripe with
  | _ :: _ -> Some t.clock
  | [] -> (
      match Lbc_util.Pqueue.peek t.queue with
      | Some ev -> Some ev.at
      | None -> None)

let next_at = next_time

(* Move every queued event at exactly [clock] into the ripe set.  The
   heap pops them in seqno order and their seqnos exceed every ripe
   event's (they were created later), so appending keeps the set
   seqno-sorted. *)
let absorb_ties t =
  let rec loop acc =
    match Lbc_util.Pqueue.peek t.queue with
    | Some ev when ev.at = t.clock (* eq-ok: exact tie membership *) ->
        ignore (Lbc_util.Pqueue.pop t.queue : event option);
        loop (ev :: acc)
    | _ -> List.rev acc
  in
  match loop [] with [] -> () | ties -> t.ripe <- t.ripe @ ties

let step t =
  (match t.ripe with
  | _ :: _ ->
      (* A callback of the current instant may have scheduled more
         zero-delay events: they contend with the survivors. *)
      absorb_ties t
  | [] -> (
      match Lbc_util.Pqueue.pop t.queue with
      | None -> ()
      | Some ev ->
          t.clock <- ev.at;
          t.ripe <- [ ev ];
          absorb_ties t));
  match t.ripe with
  | [] -> false
  | ripe ->
      let arr = Array.of_list ripe in
      let k = Array.length arr in
      let idx = Schedule.choose t.sched ~k ~prio:(fun i -> arr.(i).prio) in
      let ev = arr.(idx) in
      t.ripe <- List.filteri (fun i _ -> i <> idx) ripe;
      ev.callback ();
      true

let run ?until t =
  let continue () =
    match (next_time t, until) with
    | None, _ -> false
    | Some at, Some limit when at > limit -> false
    | Some _, _ -> true
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | _ -> ()
