type time = float

type event = { at : time; callback : unit -> unit }

type waiting = { desc : string; daemon : bool; alive : unit -> bool }

type t = {
  mutable clock : time;
  queue : event Lbc_util.Pqueue.t;
  waiting : (int, waiting) Hashtbl.t;
  mutable next_wait : int;
}

exception Stranded of string list

let () =
  Printexc.register_printer (function
    | Stranded descs ->
        Some
          (Printf.sprintf "Stranded: %d process(es) blocked forever:\n  %s"
             (List.length descs)
             (String.concat "\n  " descs))
    | _ -> None)

let compare_event a b = Float.compare a.at b.at

let create () =
  {
    clock = 0.0;
    queue = Lbc_util.Pqueue.create ~compare:compare_event;
    waiting = Hashtbl.create 16;
    next_wait = 0;
  }

let now t = t.clock

let schedule_at t ~at callback =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %g is before now (%g)" at t.clock);
  Lbc_util.Pqueue.push t.queue { at; callback }

let schedule t ?(delay = 0.0) callback =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock +. delay) callback

let pending t = Lbc_util.Pqueue.length t.queue

(* --------------------------------------------------------------- *)
(* Blocked-process registry.

   Processes that suspend on a synchronization primitive register a
   description of what they are waiting for; the registration is removed
   when they are resumed.  When the event queue drains while non-daemon
   registrations remain, the simulation is stranded: those processes can
   never run again (nothing is left to resume them), which is how a
   dropped message or a lost lock token turns a hung cluster into a
   diagnosable failure instead of a silent pass. *)

let block_begin t ~desc ~daemon ~alive =
  let id = t.next_wait in
  t.next_wait <- id + 1;
  Hashtbl.replace t.waiting id { desc; daemon; alive };
  id

let block_end t id = Hashtbl.remove t.waiting id

let blocked t =
  (* Prune registrations of processes that died (e.g. a crashed node's
     torn transaction): they are parked forever but intentionally so. *)
  let dead =
    Hashtbl.fold
      (fun id w acc -> if w.alive () then acc else id :: acc)
      t.waiting []
  in
  List.iter (Hashtbl.remove t.waiting) dead;
  Hashtbl.fold
    (fun _ w acc -> if w.daemon then acc else w.desc :: acc)
    t.waiting []
  |> List.sort String.compare

let blocked_count t = List.length (blocked t)

let step t =
  match Lbc_util.Pqueue.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.at;
      ev.callback ();
      true

let run ?until t =
  let continue () =
    match (Lbc_util.Pqueue.peek t.queue, until) with
    | None, _ -> false
    | Some ev, Some limit when ev.at > limit -> false
    | Some _, _ -> true
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | _ -> ()
