type t = { waiters : (unit -> unit) Queue.t }

let create () = { waiters = Queue.create () }

let wait ?(info = "condvar.wait") t =
  Proc.suspend ~info (fun resume -> Queue.add resume t.waiters)

let signal t =
  match Queue.take_opt t.waiters with Some resume -> resume () | None -> ()

let broadcast t =
  (* Capture the current waiters; processes that re-wait during the wakeups
     belong to the next broadcast. *)
  let current = Queue.create () in
  Queue.transfer t.waiters current;
  Queue.iter (fun resume -> resume ()) current

let rec await ?info t pred =
  if pred () then () else (wait ?info t; await ?info t pred)
