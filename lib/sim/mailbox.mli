(** Unbounded FIFO message queue between simulated processes.

    [send] never blocks; [recv] suspends the calling process while the
    queue is empty.  Multiple receivers are served in arrival order. *)

type 'a t

val create : unit -> 'a t
val send : 'a t -> 'a -> unit
val recv : ?info:string -> 'a t -> 'a
(** [info] (default ["mailbox.recv"]) describes the wait in the engine's
    blocked-process registry. *)

val try_recv : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
