(** Discrete-event simulation engine.

    The engine owns a virtual clock (microseconds, [float]) and an event
    queue ordered by (time, creation sequence number).  Everything in the
    distributed system — node processes, network deliveries, disk
    completions — is an event on one engine.

    Events scheduled for the same instant form a ripe set, resolved by
    the engine's {!Schedule.policy}: the default [Fifo] runs them in
    creation order (deterministic by construction), while the seeded
    policies explore alternative legal interleavings and record every
    choice as a decision trace ({!decisions}) that [Replay] reproduces
    byte-exactly. *)

type t

type time = float
(** Virtual time in microseconds since simulation start. *)

val create : ?policy:Schedule.policy -> unit -> t
(** [policy] defaults to {!Schedule.Fifo}. *)

val policy : t -> Schedule.policy

val decisions : t -> int list
(** The schedule trace so far: one entry per ripe set of two or more
    events, the chosen index in sequence-number order. *)

val choice_points : t -> int
(** Number of ripe sets with a real choice seen so far (the length of
    {!decisions}). *)

val now : t -> time
(** Current virtual time. *)

val schedule : t -> ?delay:time -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay] (default [0.],
    i.e. later in the current instant).  [delay] must be non-negative. *)

val schedule_at : t -> at:time -> (unit -> unit) -> unit
(** Absolute-time variant; [at] must not be in the past. *)

val pending : t -> int
(** Number of queued events. *)

val next_at : t -> time option
(** Earliest instant holding runnable work, or [None] when the queue is
    empty.  The real-time backend uses this to sleep exactly until the
    engine's next timer instead of polling. *)

val run : ?until:time -> t -> unit
(** Drain the event queue in time order, advancing the clock.  With
    [?until], stops (leaving the queue intact) once the next event is
    strictly later than [until] and sets the clock to [until].  Exceptions
    raised by event callbacks propagate to the caller. *)

val step : t -> bool
(** Run a single event.  Returns [false] if the queue was empty. *)

(** {1 Blocked-process registry}

    Synchronization primitives ({!Mailbox}, {!Ivar}, {!Condvar}) register
    every suspended process here with a description of what it waits for.
    When {!run} returns with the queue empty, any remaining non-daemon
    registration is a process stranded forever — nothing is left that
    could resume it.  [Cluster.run] turns that into {!Stranded} so a hung
    cluster fails loudly instead of looking like a passing test. *)

exception Stranded of string list
(** One description per process that can never run again. *)

val block_begin : t -> desc:string -> daemon:bool -> alive:(unit -> bool) -> int
(** Register a suspended process; returns a token for {!block_end}.
    [daemon] processes (e.g. per-channel dispatchers) are excluded from
    {!blocked}; registrations whose [alive] turns false (killed processes
    of a crashed node) are pruned. *)

val block_end : t -> int -> unit

val blocked : t -> string list
(** Descriptions of the live, non-daemon processes currently suspended on
    a synchronization primitive, sorted for determinism. *)

val blocked_count : t -> int
