(* Pluggable same-time scheduling for the discrete-event engine.

   The engine's event queue orders events by (time, sequence number);
   events that share an instant form a "ripe set", and which of them runs
   first is a genuine degree of freedom of the modelled system — message
   deliveries, lock grants and process wakeups that the real world could
   order either way.  A policy picks one ripe event per step; every pick
   made from a ripe set of two or more is a *decision*, recorded as the
   chosen index into the set ordered by sequence number.  The decision
   list is the complete schedule trace: feeding it back through [Replay]
   reproduces the run byte-exactly, and a missing decision (an exhausted
   or truncated trace) falls back to index 0, i.e. stable FIFO — which is
   what makes delta-debugging a failing trace sound. *)

type policy =
  | Fifo  (** lowest sequence number first: stable FIFO, the baseline *)
  | Random_tie of int
      (** seeded uniform choice among the ripe set at every decision *)
  | Pct of int
      (** PCT-style random priorities: every event is assigned a seeded
          random priority at creation; the highest-priority ripe event
          runs first (ties by sequence number) *)
  | Replay of int array
      (** replay a recorded decision trace; out-of-range or exhausted
          entries fall back to FIFO *)

type t = {
  policy : policy;
  rng : Lbc_util.Rng.t option;  (* Random_tie / Pct *)
  mutable replay_pos : int;
  mutable decisions_rev : int list;
  mutable n_decisions : int;
  mutable choice_points : int;
}

let make policy =
  let rng =
    match policy with
    | Random_tie seed | Pct seed -> Some (Lbc_util.Rng.create seed)
    | Fifo | Replay _ -> None
  in
  {
    policy;
    rng;
    replay_pos = 0;
    decisions_rev = [];
    n_decisions = 0;
    choice_points = 0;
  }

let policy t = t.policy

(* Priority for a freshly created event (consulted by the engine at
   push time).  Only Pct cares; everything else is priority-blind. *)
let assign_priority t =
  match t.policy with
  | Pct _ -> (
      match t.rng with
      | Some rng -> Lbc_util.Rng.int rng (1 lsl 30)
      | None -> 0)
  | Fifo | Random_tie _ | Replay _ -> 0

(* Pick the index of the event to run out of [k] ripe events (ordered by
   sequence number); [prio i] is the i-th event's priority.  Records the
   decision whenever there was a real choice. *)
let choose t ~k ~prio =
  if k <= 1 then 0
  else begin
    t.choice_points <- t.choice_points + 1;
    let idx =
      match t.policy with
      | Fifo -> 0
      | Random_tie _ -> (
          match t.rng with Some rng -> Lbc_util.Rng.int rng k | None -> 0)
      | Pct _ ->
          let best = ref 0 in
          for i = 1 to k - 1 do
            if prio i > prio !best then best := i
          done;
          !best
      | Replay trace ->
          let pos = t.replay_pos in
          t.replay_pos <- pos + 1;
          if pos < Array.length trace && trace.(pos) >= 0 && trace.(pos) < k
          then trace.(pos)
          else 0
    in
    t.decisions_rev <- idx :: t.decisions_rev;
    t.n_decisions <- t.n_decisions + 1;
    idx
  end

let decisions t = List.rev t.decisions_rev
let choice_points t = t.choice_points

(* --------------------------------------------------------------- *)
(* Textual policy names, shared by the explorer CLI and trace files. *)

let policy_to_string = function
  | Fifo -> "fifo"
  | Random_tie seed -> Printf.sprintf "random:%d" seed
  | Pct seed -> Printf.sprintf "pct:%d" seed
  | Replay trace -> Printf.sprintf "replay:%d" (Array.length trace)

let policy_of_string s =
  let seeded prefix mk =
    let n = String.length prefix in
    if
      String.length s > n
      && String.sub s 0 n = prefix
      && s.[n] = ':'
    then Option.map mk (int_of_string_opt (String.sub s (n + 1) (String.length s - n - 1)))
    else None
  in
  if s = "fifo" then Some Fifo
  else
    match seeded "random" (fun n -> Random_tie n) with
    | Some p -> Some p
    | None -> seeded "pct" (fun n -> Pct n)
