type 'a state = Empty of ('a -> unit) list | Full of 'a
type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let fill t v =
  match t.state with
  | Full _ -> invalid_arg "Ivar.fill: already filled"
  | Empty waiters ->
      t.state <- Full v;
      (* Wake in FIFO order; waiters were consed on, so reverse. *)
      List.iter (fun resume -> resume v) (List.rev waiters)

let is_filled t = match t.state with Full _ -> true | Empty _ -> false
let peek t = match t.state with Full v -> Some v | Empty _ -> None

let read ?(info = "ivar.read") t =
  match t.state with
  | Full v -> v
  | Empty _ ->
      Proc.suspend ~info (fun resume ->
          match t.state with
          | Full v -> resume v
          | Empty waiters -> t.state <- Empty (resume :: waiters))
