(** Pluggable same-time event ordering for {!Engine}.

    Events scheduled for the same virtual instant form a {e ripe set};
    which of them runs first is a real degree of freedom of the modelled
    distributed system.  A policy resolves each ripe set; every
    resolution of a set with two or more candidates is a {e decision},
    recorded as the chosen index into the set ordered by event sequence
    number.  The decision list is a complete, compact schedule trace:
    replaying it ({!policy} [Replay]) reproduces the run byte-exactly,
    and any missing or out-of-range entry falls back to index 0 (stable
    FIFO), so a trace remains replayable after delta-debugging has
    zeroed or truncated parts of it. *)

type policy =
  | Fifo  (** lowest sequence number first — the deterministic baseline *)
  | Random_tie of int
      (** seeded uniform pick among the ripe set at every decision *)
  | Pct of int
      (** PCT-style scheduling: every event gets a seeded random
          priority at creation and the highest-priority ripe event runs
          first (ties by sequence number) *)
  | Replay of int array
      (** replay a recorded decision trace; exhausted or out-of-range
          entries fall back to FIFO *)

type t
(** Decision state for one engine: the policy, its random stream, and
    the decisions taken so far. *)

val make : policy -> t
val policy : t -> policy

val assign_priority : t -> int
(** Priority for a freshly scheduled event ([Pct] draws from the seeded
    stream; every other policy returns 0).  Called by the engine at
    schedule time, in schedule order, so priorities are deterministic
    for a fixed seed. *)

val choose : t -> k:int -> prio:(int -> int) -> int
(** [choose t ~k ~prio] picks which of [k] ripe events runs next; [prio
    i] is the priority of the i-th event in sequence-number order.
    Records a decision iff [k > 1]. *)

val decisions : t -> int list
(** Decisions recorded so far, in order — the schedule trace. *)

val choice_points : t -> int
(** Number of ripe sets with two or more candidates seen so far. *)

val policy_to_string : policy -> string
(** ["fifo"], ["random:SEED"], ["pct:SEED"], ["replay:N"]. *)

val policy_of_string : string -> policy option
(** Parses ["fifo"], ["random:SEED"] and ["pct:SEED"] (a replay policy
    is built from a trace file, not a name). *)
