type 'a t = { items : 'a Queue.t; waiters : ('a -> unit) Queue.t }

let create () = { items = Queue.create (); waiters = Queue.create () }

let send t v =
  match Queue.take_opt t.waiters with
  | Some resume -> resume v
  | None -> Queue.add v t.items

let try_recv t = Queue.take_opt t.items

let recv ?(info = "mailbox.recv") t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None -> Proc.suspend ~info (fun resume -> Queue.add resume t.waiters)

let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
