(** Write-once synchronization variable for simulated processes. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Set the value and wake all readers (at the current instant).  Raises
    [Invalid_argument] if already filled.  Callable from any event
    callback, not only from inside a process. *)

val is_filled : 'a t -> bool

val peek : 'a t -> 'a option

val read : ?info:string -> 'a t -> 'a
(** Return the value, suspending the calling process until filled.
    [info] (default ["ivar.read"]) describes the wait in the engine's
    blocked-process registry. *)
