(** Tracing + metrics for the coherency pipeline.

    Spans, instants and causal flow arrows are rendered eagerly as
    Chrome trace-event JSON (Perfetto-loadable): one "process" per
    node, one "thread" per pipeline lane.  Counters and log-bucketed
    histograms ride along in a metrics registry.

    Timestamps come from a [now] closure (the sim engine's virtual
    clock, in microseconds; monotonic wall microseconds on the real
    backend).

    The sink has two layers: always-on per-node {!Flight} rings (every
    span end, instant, flow endpoint and pid-tagged counter delta is
    binary-encoded into the executing node's ring, lock-free and
    allocation-free — see {!dump_flight}) and the opt-in JSON trace
    buffer ([json], i.e. [Config.trace]).  The metrics registry is
    live whenever [enabled] — a flight-only sink still accumulates
    histograms.  When the whole sink is disabled, every entry point
    returns after one branch and allocates nothing — pass the shared
    {!disabled} instance. *)

module Histogram : sig
  type t
  (** 64 power-of-two buckets: bucket 0 holds values < 1.0, bucket [i]
      holds [[2^(i-1), 2^i)]. *)

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min_value : t -> float
  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0..100]: cumulative bucket walk with
      linear interpolation inside the winning bucket, clamped to the
      observed min/max.  0 when empty. *)

  val merge : into:t -> t -> unit
  (** Accumulate [src]'s buckets into [into] (for cross-run
      aggregation in the bench harness). *)
end

(** {1 Lanes} — one Perfetto thread id per pipeline stage. *)

val lane_txn : int
val lane_apply : int
val lane_wal : int
val lane_lock : int
val lane_net : int

type arg = I of int | F of float | S of string

type span

val null_span : span
(** The span returned by {!span_begin} when tracing is disabled; safe
    to pass to {!span_end}, which then does nothing. *)

type t

val disabled : t
(** Shared no-op sink: [enabled] is false, every call is one branch. *)

val create :
  ?json:bool ->
  ?ring_bytes:int ->
  ?snapshot_interval_us:float ->
  now:(unit -> float) ->
  nodes:int ->
  unit ->
  t
(** [json] (default true) enables the eager Chrome-trace buffer;
    [ring_bytes] (default 64 KiB) sizes each node's flight ring, 0
    disables the rings; [snapshot_interval_us] > 0 appends a registry
    snapshot JSONL row at most once per interval, piggybacked on event
    recording (no timers, so neither platform is kept from
    quiescing). *)

val enabled : t -> bool
(** Some sink is live (flight rings, JSON trace, or both). *)

val tracing : t -> bool
(** The JSON trace buffer specifically is live. *)

val flight_on : t -> bool
(** The per-node flight rings specifically are live. *)

val now : t -> float

val flow_id : lock:int -> seqno:int -> int
(** Stable flow-arrow id for a committed write, identical on the
    committer and every receiver. *)

(** {1 Spans} *)

val span_begin :
  t -> name:string -> pid:int -> tid:int ->
  ?args:(string * arg) list -> unit -> span

val span_end : ?args:(string * arg) list -> t -> span -> float
(** Emits a complete ("X") event and returns the span's duration in
    microseconds (0.0 when disabled).  [args] are appended to the ones
    given at [span_begin]. *)

val instant :
  t -> name:string -> pid:int -> tid:int ->
  ?args:(string * arg) list -> unit -> unit

(** {1 Flow arrows} *)

val flow_start : t -> id:int -> pid:int -> tid:int -> unit
(** Emit the arrow tail (inside the committer's commit span) and
    record the start timestamp for apply-lag measurement. *)

val flow_end : t -> id:int -> pid:int -> tid:int -> float option
(** Emit the arrow head (call right after the receiver's apply span
    begins, so it binds into that span).  Returns the lag since
    {!flow_start}, or [None] if no matching start was recorded. *)

(** {1 Metrics registry} *)

val count : ?pid:int -> t -> string -> int -> unit
(** [pid] additionally records the delta in that node's flight ring
    and routes the registry update to that node's shard (whose mutex
    no other domain contends); omit it when the count isn't
    attributable to one node's own execution context (rings are
    single-writer). *)

val counter : t -> string -> int
val counters : t -> (string * int) list
(** Readers merge the per-node shards and the global shard. *)

val observe : ?pid:int -> t -> string -> float -> unit
(** Add a sample to the named histogram; pass [pid] on hot paths for
    the same shard routing as {!count}. *)

val hist : t -> string -> Histogram.t option
val hists : t -> (string * Histogram.t) list
(** Merged copies — safe to keep after the sink moves on. *)

val mark : t -> string -> unit
(** Record "now" under a key — cheap cross-callback timing. *)

val take_mark : t -> string -> float option
(** Elapsed time since {!mark} under the same key, consuming the mark. *)

(** {1 Output} *)

val render : t -> string
(** The complete trace document: metadata (process/thread names per
    node and lane) followed by all buffered events. *)

val write : t -> string -> unit

(** {1 Flight recorder} *)

val rings : t -> Flight.t array
(** The per-node rings (empty when the flight recorder is off). *)

val ring_stats : t -> (int * int * int) array
(** Per node: (events recorded, events dropped to wrap, bytes used). *)

val dump_flight : t -> clock:string -> string -> unit
(** Write all rings to an LBCF file (see {!Flight_dump}).  [clock]
    labels the timestamp domain: ["virtual-us"] or ["wall-us"]. *)

(** {1 Metrics snapshots} *)

val snapshot_rows : t -> int
val snapshots : t -> string
(** The accumulated JSONL rows. *)

val write_snapshots : t -> string -> unit
