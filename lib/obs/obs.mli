(** Tracing + metrics for the coherency pipeline.

    Spans, instants and causal flow arrows are rendered eagerly as
    Chrome trace-event JSON (Perfetto-loadable): one "process" per
    node, one "thread" per pipeline lane.  Counters and log-bucketed
    histograms ride along in a metrics registry.

    Timestamps come from a [now] closure (the sim engine's virtual
    clock, in microseconds).  When tracing is disabled, every entry
    point returns after one branch and allocates nothing — pass the
    shared {!disabled} instance. *)

module Histogram : sig
  type t
  (** 64 power-of-two buckets: bucket 0 holds values < 1.0, bucket [i]
      holds [[2^(i-1), 2^i)]. *)

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min_value : t -> float
  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0..100]: cumulative bucket walk with
      linear interpolation inside the winning bucket, clamped to the
      observed min/max.  0 when empty. *)

  val merge : into:t -> t -> unit
  (** Accumulate [src]'s buckets into [into] (for cross-run
      aggregation in the bench harness). *)
end

(** {1 Lanes} — one Perfetto thread id per pipeline stage. *)

val lane_txn : int
val lane_apply : int
val lane_wal : int
val lane_lock : int
val lane_net : int

type arg = I of int | F of float | S of string

type span

val null_span : span
(** The span returned by {!span_begin} when tracing is disabled; safe
    to pass to {!span_end}, which then does nothing. *)

type t

val disabled : t
(** Shared no-op sink: [enabled] is false, every call is one branch. *)

val create : now:(unit -> float) -> nodes:int -> unit -> t

val enabled : t -> bool
val now : t -> float

val flow_id : lock:int -> seqno:int -> int
(** Stable flow-arrow id for a committed write, identical on the
    committer and every receiver. *)

(** {1 Spans} *)

val span_begin :
  t -> name:string -> pid:int -> tid:int ->
  ?args:(string * arg) list -> unit -> span

val span_end : ?args:(string * arg) list -> t -> span -> float
(** Emits a complete ("X") event and returns the span's duration in
    microseconds (0.0 when disabled).  [args] are appended to the ones
    given at [span_begin]. *)

val instant :
  t -> name:string -> pid:int -> tid:int ->
  ?args:(string * arg) list -> unit -> unit

(** {1 Flow arrows} *)

val flow_start : t -> id:int -> pid:int -> tid:int -> unit
(** Emit the arrow tail (inside the committer's commit span) and
    record the start timestamp for apply-lag measurement. *)

val flow_end : t -> id:int -> pid:int -> tid:int -> float option
(** Emit the arrow head (call right after the receiver's apply span
    begins, so it binds into that span).  Returns the lag since
    {!flow_start}, or [None] if no matching start was recorded. *)

(** {1 Metrics registry} *)

val count : t -> string -> int -> unit
val counter : t -> string -> int
val counters : t -> (string * int) list

val observe : t -> string -> float -> unit
val hist : t -> string -> Histogram.t option
val hists : t -> (string * Histogram.t) list

val mark : t -> string -> unit
(** Record "now" under a key — cheap cross-callback timing. *)

val take_mark : t -> string -> float option
(** Elapsed time since {!mark} under the same key, consuming the mark. *)

(** {1 Output} *)

val render : t -> string
(** The complete trace document: metadata (process/thread names per
    node and lane) followed by all buffered events. *)

val write : t -> string -> unit
