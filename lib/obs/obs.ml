(* Tracing + metrics for the coherency pipeline.

   Spans and instants are rendered eagerly as Chrome trace-event JSON
   into a buffer (one "process" per node, one "thread" per pipeline
   lane), so the file is Perfetto-loadable.  Causal flow arrows keyed
   by (lock, seqno) connect a committer's commit span to each
   receiver's apply span.  A metrics registry of counters and
   log-bucketed histograms rides along for the bench/CLI side.

   Timestamps come from a [now : unit -> float] closure (the sim
   engine's virtual clock, already in microseconds — exactly the unit
   the trace format wants; the real backend passes monotonic wall
   microseconds from a shared epoch), which keeps this library at the
   bottom of the dependency graph.

   Since PR 9 the sink has two layers:

   - the always-on per-node {!Flight} rings: every span end, instant,
     flow endpoint and pid-tagged counter delta is binary-encoded into
     the executing node's ring, lock-free (single writer per ring) and
     allocation-free, so the moments before any failure are always
     recoverable via {!dump_flight} even with JSON tracing off;
   - the opt-in JSON trace buffer (the [json] flag, [Config.trace]),
     unchanged from PR 4.

   The metrics registry (counters/histograms/flows/marks) is live for
   any enabled sink — a flight-only sink still accumulates latency
   histograms, which is what lets `bench real` report percentiles
   without paying for a trace.  [enabled] therefore means "some sink
   is live"; the shared [disabled] instance is the only sink where
   every call is one branch and allocates nothing. *)

module Histogram = struct
  (* 64 power-of-two buckets: bucket 0 holds values < 1.0, bucket i
     (i >= 1) holds [2^(i-1), 2^i).  Good enough resolution for
     latency percentiles across nine decades. *)
  let buckets = 64

  type t = {
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
    counts : int array;
  }

  let create () =
    { count = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity;
      counts = Array.make buckets 0 }

  let bucket_of v =
    if v < 1.0 then 0
    else begin
      let i = ref 1 and lim = ref 2.0 in
      while v >= !lim && !i < buckets - 1 do
        incr i;
        lim := !lim *. 2.0
      done;
      !i
    end

  let lo_of i = if i = 0 then 0.0 else Float.of_int (1 lsl (i - 1))
  let hi_of i = Float.of_int (1 lsl i)

  let observe h v =
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v;
    let i = bucket_of v in
    h.counts.(i) <- h.counts.(i) + 1

  let count h = h.count
  let sum h = h.sum
  let mean h = if h.count = 0 then 0.0 else h.sum /. Float.of_int h.count
  let min_value h = if h.count = 0 then 0.0 else h.vmin
  let max_value h = if h.count = 0 then 0.0 else h.vmax

  (* Percentile by cumulative bucket counts with linear interpolation
     inside the winning bucket, clamped to the observed [min, max]. *)
  let percentile h p =
    if h.count = 0 then 0.0
    else begin
      let target = p /. 100.0 *. Float.of_int h.count in
      let target = Float.max target 1.0 in
      let cum = ref 0 and i = ref 0 and res = ref h.vmax in
      (try
         while !i < buckets do
           let c = h.counts.(!i) in
           if Float.of_int (!cum + c) >= target && c > 0 then begin
             let frac = (target -. Float.of_int !cum) /. Float.of_int c in
             let lo = lo_of !i and hi = hi_of !i in
             res := lo +. (frac *. (hi -. lo));
             raise Exit
           end;
           cum := !cum + c;
           incr i
         done
       with Exit -> ());
      Float.min (Float.max !res h.vmin) h.vmax
    end

  let merge ~into src =
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.count > 0 then begin
      if src.vmin < into.vmin then into.vmin <- src.vmin;
      if src.vmax > into.vmax then into.vmax <- src.vmax
    end;
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts
end

(* Pipeline lanes: one Perfetto "thread" per lane so concurrent spans
   on a node don't visually overlap. *)
let lane_txn = 0
let lane_apply = 1
let lane_wal = 2
let lane_lock = 3
let lane_net = 4

let lane_name = Flight.lane_name

type arg = I of int | F of float | S of string

type span = {
  sp_name : string;
  sp_pid : int;
  sp_tid : int;
  sp_ts : float;
  sp_args : (string * arg) list;
}

let null_span = { sp_name = ""; sp_pid = 0; sp_tid = 0; sp_ts = 0.0; sp_args = [] }

(* One registry shard: counters + histograms under their own mutex.
   The sink keeps one shard per node plus a global catch-all, so a
   pid-tagged count/observe from node [i]'s execution context locks
   only shard [i] — on the real backend that mutex is contended by at
   most the owning domain and its socket reader thread, never by the
   other domains.  Funnelling every domain through one lock put the
   always-on sink on the commit critical path (measured ~12% wall on
   the 4-domain macro workload); sharding removes the cross-core
   bouncing while keeping every update locked and lossless. *)
type shard = {
  sh_counters : (string, int ref) Hashtbl.t;
  sh_hists : (string, Histogram.t) Hashtbl.t;
  sh_m : Mutex.t;
}

let shard_create n =
  { sh_counters = Hashtbl.create n; sh_hists = Hashtbl.create n;
    sh_m = Mutex.create () }

type t = {
  enabled : bool;
  json : bool;  (* emit Chrome-trace JSON into [buf]? *)
  now_fn : unit -> float;
  nodes : int;
  buf : Buffer.t;
  mutable first : bool;
  rings : Flight.t array;
      (* One flight ring per node; ring [i] is written only from node
         [i]'s execution context (its domain on the real backend), so
         recording needs no lock.  Empty when the flight recorder is
         configured off. *)
  shards : shard array;  (* one per node; pid-tagged updates land here *)
  global : shard;  (* updates with no pid (cross-node contexts) *)
  (* flow id -> start timestamp, for apply-lag measurement.  Flows are
     cross-domain by nature (start on the committer, end on each
     receiver), so the slots keep their own mutex rather than riding
     the trace-buffer lock.  Direct-mapped by [id land mask] into two
     flat arrays instead of a hashtable: a start never retires (every
     receiver reads it), so a table would grow by one boxed entry per
     committed write for the life of the run; a fixed cache is
     allocation-free and bounded, and a collision merely drops that
     write's lag samples (the id stored with the timestamp keeps a
     stale slot from ever mismeasuring). *)
  flow_ids : int array;  (* -1 = empty *)
  flow_ts : float array;
  flows_m : Mutex.t;
  marks : (string, float) Hashtbl.t;
  snap_interval : float;  (* µs between metric snapshots; 0 = off *)
  snap_buf : Buffer.t;  (* JSONL rows of the registry *)
  mutable snap_last : float;
  mutable snap_rows : int;
  m : Mutex.t;
      (* Serializes the JSON trace buffer, marks and snapshot state.
         On the simulation backend all access is from the single engine
         thread and the lock is never contended; on the real backend it
         keeps JSON events from interleaving.  Lock order: [m] may be
         taken before shard mutexes (snapshot emission); never the
         reverse. *)
}

(* Serialize one registry/buffer operation.  Kept out of the disabled
   fast path: every entry point still returns after a single branch on
   [t.enabled] before reaching for the lock. *)
let[@inline] locked t f =
  Mutex.lock t.m;
  match f () with
  | v ->
      Mutex.unlock t.m;
      v
  | exception e ->
      Mutex.unlock t.m;
      raise e

let disabled =
  { enabled = false; json = false; now_fn = (fun () -> 0.0); nodes = 0;
    buf = Buffer.create 1; first = true; rings = [||];
    shards = [||]; global = shard_create 1;
    flow_ids = [||]; flow_ts = [||]; flows_m = Mutex.create ();
    marks = Hashtbl.create 1;
    snap_interval = 0.0; snap_buf = Buffer.create 1; snap_last = 0.0;
    snap_rows = 0;
    m = Mutex.create () }

(* Power of two; sized to dwarf the number of writes in flight between
   commit and last apply (tens on a busy cluster). *)
let flow_slots = 4096

(* [json] selects the eager Chrome-trace buffer ([Config.trace]);
   [ring_bytes] sizes the per-node flight rings (0 disables them);
   [snapshot_interval_us] > 0 appends a registry snapshot row to a
   JSONL buffer at most once per interval, piggybacked on event
   recording (never a timer — a sleeping daemon would keep both
   platforms from quiescing). *)
let create ?(json = true) ?(ring_bytes = 65536) ?(snapshot_interval_us = 0.0)
    ~now ~nodes () =
  let rings =
    if ring_bytes > 0 then
      Array.init nodes (fun _ -> Flight.create ~cap_bytes:ring_bytes ())
    else [||]
  in
  { enabled = true; json; now_fn = now; nodes;
    buf = Buffer.create 65536; first = true; rings;
    shards = Array.init nodes (fun _ -> shard_create 16);
    global = shard_create 32;
    flow_ids = Array.make flow_slots (-1); flow_ts = Array.make flow_slots 0.0;
    flows_m = Mutex.create ();
    marks = Hashtbl.create 64;
    snap_interval = snapshot_interval_us; snap_buf = Buffer.create 256;
    snap_last = 0.0; snap_rows = 0;
    m = Mutex.create () }

let enabled t = t.enabled
let tracing t = t.json
let flight_on t = Array.length t.rings > 0
let now t = t.now_fn ()

(* Platform clocks hand out float microseconds; the rings store integer
   nanoseconds. *)
let[@inline] ts_ns_of us = int_of_float (us *. 1000.0)

(* Flow arrow ids are derived from (lock, seqno): unique per committed
   write, stable across committer and receivers. *)
let flow_id ~lock ~seqno = (lock * 16_777_216) + seqno

(* ---------------------------------------------------------------- *)
(* Event rendering *)

let event_sep t =
  if t.first then t.first <- false else Buffer.add_string t.buf ",\n"

let add_args buf args =
  match args with
  | [] -> ()
  | args ->
      Buffer.add_string buf {|,"args":{|};
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (Json.escape k);
          Buffer.add_string buf {|":|};
          match v with
          | I n -> Buffer.add_string buf (string_of_int n)
          | F f -> Buffer.add_string buf (Printf.sprintf "%.3f" f)
          | S s ->
              Buffer.add_char buf '"';
              Buffer.add_string buf (Json.escape s);
              Buffer.add_char buf '"')
        args;
      Buffer.add_char buf '}'

let add_header buf ~ph ~name ~cat ~pid ~tid ~ts =
  Buffer.add_string buf (Printf.sprintf
    {|{"ph":"%c","name":"%s","cat":"%s","pid":%d,"tid":%d,"ts":%.3f|}
    ph (Json.escape name) cat pid tid ts)

(* ---------------------------------------------------------------- *)
(* Metrics registry *)

(* [pid] routes the update into that node's flight ring and registry
   shard; omit it for updates not attributable to one node's execution
   context (the rings are single-writer, so a cross-domain ring write
   would race — those land in the uncontended-by-domains global
   shard). *)

let[@inline] shard_for t pid =
  match pid with
  | Some p when p >= 0 && p < Array.length t.shards -> t.shards.(p)
  | _ -> t.global

let[@inline] sh_locked sh f =
  Mutex.lock sh.sh_m;
  match f () with
  | v ->
      Mutex.unlock sh.sh_m;
      v
  | exception e ->
      Mutex.unlock sh.sh_m;
      raise e

let count ?pid t name by =
  if t.enabled then begin
    (match pid with
    | Some p when p >= 0 && p < Array.length t.rings ->
        Flight.record_count t.rings.(p) ~ts_ns:(ts_ns_of (t.now_fn ())) ~name
          ~delta:by
    | _ -> ());
    (* Manually inlined lock and exception-match lookup: a [sh_locked]
       closure and a [find_opt] [Some] are two minor-heap allocations
       per call, and on a small host an extra minor GC is a
       stop-the-world rendezvous across every domain.  Nothing between
       lock and unlock can raise. *)
    let sh = shard_for t pid in
    Mutex.lock sh.sh_m;
    (match Hashtbl.find sh.sh_counters name with
    | r -> r := !r + by
    | exception Not_found -> Hashtbl.replace sh.sh_counters name (ref by));
    Mutex.unlock sh.sh_m
  end

(* The read side folds the global shard and every per-node shard; reads
   are rare (reports, benches, snapshots), so they pay the merge. *)

let all_shards t = Array.to_list t.shards @ [ t.global ]

let counter t name =
  List.fold_left
    (fun acc sh ->
      acc
      + sh_locked sh (fun () ->
            match Hashtbl.find_opt sh.sh_counters name with
            | Some r -> !r
            | None -> 0))
    0 (all_shards t)

let counters t =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun sh ->
      sh_locked sh (fun () ->
          Hashtbl.iter
            (fun k r ->
              match Hashtbl.find_opt merged k with
              | Some acc -> acc := !acc + !r
              | None -> Hashtbl.replace merged k (ref !r))
            sh.sh_counters))
    (all_shards t);
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let observe ?pid t name v =
  if t.enabled then begin
    (* Allocation-free on the steady state, as in [count]: no closure,
       no [find_opt] option, and [Histogram.observe] is bucket
       arithmetic that cannot raise. *)
    let sh = shard_for t pid in
    Mutex.lock sh.sh_m;
    (match Hashtbl.find sh.sh_hists name with
    | h -> Histogram.observe h v
    | exception Not_found ->
        let h = Histogram.create () in
        Hashtbl.replace sh.sh_hists name h;
        Histogram.observe h v);
    Mutex.unlock sh.sh_m
  end

(* Merged-histogram readers: fresh copies, safe to keep after the sink
   moves on. *)

let merged_hists t =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun sh ->
      sh_locked sh (fun () ->
          Hashtbl.iter
            (fun k h ->
              let into =
                match Hashtbl.find_opt merged k with
                | Some x -> x
                | None ->
                    let x = Histogram.create () in
                    Hashtbl.replace merged k x;
                    x
              in
              Histogram.merge ~into h)
            sh.sh_hists))
    (all_shards t);
  merged

let hist t name =
  let merged = merged_hists t in
  Hashtbl.find_opt merged name

let hists t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) (merged_hists t) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------------------------------------------------------------- *)
(* Periodic metrics snapshots.

   Emission piggybacks on event recording: whenever an event arrives
   and at least [snap_interval] µs have passed since the last row, one
   JSONL row of the whole registry is appended.  No timers are
   involved, so the sim engine still drains to empty and the real
   backend still quiesces. *)

let snapshot_cap = 100_000

(* Called with [t.m] held; takes shard locks while merging the
   registry (lock order m -> shard, never the reverse). *)
let emit_snapshot_row t now =
  let b = t.snap_buf in
  Buffer.add_string b (Printf.sprintf {|{"ts_us":%.3f,"counters":{|} now);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf {|"%s":%d|} (Json.escape k) v))
    (counters t);
  Buffer.add_string b {|},"hists":{|};
  List.iteri
    (fun i (k, h) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           {|"%s":{"count":%d,"mean":%.3f,"p50":%.3f,"p95":%.3f,"p99":%.3f}|}
           (Json.escape k) (Histogram.count h) (Histogram.mean h)
           (Histogram.percentile h 50.0) (Histogram.percentile h 95.0)
           (Histogram.percentile h 99.0)))
    (hists t);
  Buffer.add_string b "}}\n";
  t.snap_rows <- t.snap_rows + 1

let[@inline] maybe_snapshot t now_us =
  if t.snap_interval > 0.0 && now_us -. t.snap_last >= t.snap_interval then
    locked t (fun () ->
        (* Re-check under the lock: another domain may have just
           emitted this interval's row. *)
        if
          now_us -. t.snap_last >= t.snap_interval
          && t.snap_rows < snapshot_cap
        then begin
          t.snap_last <- now_us;
          emit_snapshot_row t now_us
        end)

(* ---------------------------------------------------------------- *)
(* Spans *)

let span_begin t ~name ~pid ~tid ?(args = []) () =
  if not t.enabled then null_span
  else { sp_name = name; sp_pid = pid; sp_tid = tid; sp_ts = t.now_fn (); sp_args = args }

(* Ends the span, emits a complete ("X") event, and returns its
   duration in microseconds (0.0 when disabled). *)
let span_end ?(args = []) t sp =
  if not t.enabled then 0.0
  else begin
    let now = t.now_fn () in
    let dur = now -. sp.sp_ts in
    if sp.sp_pid >= 0 && sp.sp_pid < Array.length t.rings then
      Flight.record_span t.rings.(sp.sp_pid) ~ts_ns:(ts_ns_of now)
        ~name:sp.sp_name ~lane:sp.sp_tid ~dur_ns:(ts_ns_of dur);
    if t.json then
      locked t (fun () ->
          event_sep t;
          add_header t.buf ~ph:'X' ~name:sp.sp_name ~cat:"lbc" ~pid:sp.sp_pid
            ~tid:sp.sp_tid ~ts:sp.sp_ts;
          Buffer.add_string t.buf (Printf.sprintf {|,"dur":%.3f|} dur);
          add_args t.buf (sp.sp_args @ args);
          Buffer.add_char t.buf '}');
    maybe_snapshot t now;
    dur
  end

let instant t ~name ~pid ~tid ?(args = []) () =
  if t.enabled then begin
    let ts = t.now_fn () in
    if pid >= 0 && pid < Array.length t.rings then
      Flight.record_instant t.rings.(pid) ~ts_ns:(ts_ns_of ts) ~name ~lane:tid;
    if t.json then
      locked t (fun () ->
          event_sep t;
          add_header t.buf ~ph:'i' ~name ~cat:"lbc" ~pid ~tid ~ts;
          Buffer.add_string t.buf {|,"s":"t"|};
          add_args t.buf args;
          Buffer.add_char t.buf '}');
    maybe_snapshot t ts
  end

(* ---------------------------------------------------------------- *)
(* Flow arrows *)

(* Flow ids pack (lock, seqno) into disjoint bit ranges, so the raw
   low bits collide across locks (every lock's seqno [k] would share a
   slot).  Fibonacci hashing, taking the TOP bits of the product:
   multiplication only carries upward, so low product bits never see
   the lock field. *)
let[@inline] flow_slot t id =
  (id * 0x9E3779B97F4A7C1) lsr 51 land (Array.length t.flow_ids - 1)

let flow_start t ~id ~pid ~tid =
  if t.enabled then begin
    let ts = t.now_fn () in
    if pid >= 0 && pid < Array.length t.rings then
      Flight.record_flow t.rings.(pid) ~ts_ns:(ts_ns_of ts) ~head:false ~id
        ~lane:tid;
    let slot = flow_slot t id in
    Mutex.lock t.flows_m;
    t.flow_ids.(slot) <- id;
    t.flow_ts.(slot) <- ts;
    Mutex.unlock t.flows_m;
    if t.json then
      locked t (fun () ->
          event_sep t;
          add_header t.buf ~ph:'s' ~name:"write" ~cat:"flow" ~pid ~tid ~ts;
          Buffer.add_string t.buf (Printf.sprintf {|,"id":%d}|} id))
  end

(* Binds the arrow into the receiver's apply span (emit right after the
   span begins so the "f" timestamp falls inside it).  Returns the lag
   since [flow_start], or [None] when no start was recorded (e.g. a
   record obtained by fetch rather than broadcast). *)
let flow_end t ~id ~pid ~tid =
  if not t.enabled then None
  else begin
    let ts = t.now_fn () in
    if pid >= 0 && pid < Array.length t.rings then
      Flight.record_flow t.rings.(pid) ~ts_ns:(ts_ns_of ts) ~head:true ~id
        ~lane:tid;
    let slot = flow_slot t id in
    Mutex.lock t.flows_m;
    let start = if t.flow_ids.(slot) = id then t.flow_ts.(slot) else nan in
    Mutex.unlock t.flows_m;
    if Float.is_nan start then None
    else begin
      if t.json then
        locked t (fun () ->
            event_sep t;
            add_header t.buf ~ph:'f' ~name:"write" ~cat:"flow" ~pid ~tid ~ts;
            Buffer.add_string t.buf
              (Printf.sprintf {|,"bp":"e","id":%d}|} id));
      Some (ts -. start)
    end
  end


(* Named marks: cheap cross-callback timing (e.g. repair-fetch RTT,
   keyed by requesting node + lock). *)
let mark t key =
  if t.enabled then
    let ts = t.now_fn () in
    locked t (fun () -> Hashtbl.replace t.marks key ts)

let take_mark t key =
  if not t.enabled then None
  else
    let now = t.now_fn () in
    locked t (fun () ->
        match Hashtbl.find_opt t.marks key with
        | None -> None
        | Some ts ->
            Hashtbl.remove t.marks key;
            Some (now -. ts))

(* ---------------------------------------------------------------- *)
(* Output *)

let lanes = [ lane_txn; lane_apply; lane_wal; lane_lock; lane_net ]

let render t =
  let b = Buffer.create (Buffer.length t.buf + 4096) in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string b ",\n" in
  for node = 0 to t.nodes - 1 do
    sep ();
    Buffer.add_string b (Printf.sprintf
      {|{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"node %d"}}|}
      node node);
    List.iter
      (fun lane ->
        sep ();
        Buffer.add_string b (Printf.sprintf
          {|{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"%s"}}|}
          node lane (lane_name lane));
        sep ();
        Buffer.add_string b (Printf.sprintf
          {|{"ph":"M","name":"thread_sort_index","pid":%d,"tid":%d,"args":{"sort_index":%d}}|}
          node lane lane))
      lanes
  done;
  locked t (fun () ->
      if Buffer.length t.buf > 0 then begin
        sep ();
        Buffer.add_buffer b t.buf
      end);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render t))

(* ---------------------------------------------------------------- *)
(* Flight recorder access *)

let rings t = t.rings

let ring_stats t =
  Array.map
    (fun r -> (Flight.recorded r, Flight.dropped r, Flight.bytes_used r))
    t.rings

let dump_flight t ~clock path =
  Flight_dump.write ~path ~clock ~dumped_at_ns:(ts_ns_of (t.now_fn ()))
    (Array.mapi (fun i r -> (i, r)) t.rings)

let snapshot_rows t = t.snap_rows
let snapshots t = locked t (fun () -> Buffer.contents t.snap_buf)

let write_snapshots t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (snapshots t))
