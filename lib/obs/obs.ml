(* Tracing + metrics for the coherency pipeline.

   Spans and instants are rendered eagerly as Chrome trace-event JSON
   into a buffer (one "process" per node, one "thread" per pipeline
   lane), so the file is Perfetto-loadable.  Causal flow arrows keyed
   by (lock, seqno) connect a committer's commit span to each
   receiver's apply span.  A metrics registry of counters and
   log-bucketed histograms rides along for the bench/CLI side.

   Timestamps come from a [now : unit -> float] closure (the sim
   engine's virtual clock, already in microseconds — exactly the unit
   the trace format wants), which keeps this library at the bottom of
   the dependency graph.

   When tracing is disabled every entry point returns after one
   branch on [t.enabled]; the shared [disabled] instance allocates
   nothing per call. *)

module Histogram = struct
  (* 64 power-of-two buckets: bucket 0 holds values < 1.0, bucket i
     (i >= 1) holds [2^(i-1), 2^i).  Good enough resolution for
     latency percentiles across nine decades. *)
  let buckets = 64

  type t = {
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
    counts : int array;
  }

  let create () =
    { count = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity;
      counts = Array.make buckets 0 }

  let bucket_of v =
    if v < 1.0 then 0
    else begin
      let i = ref 1 and lim = ref 2.0 in
      while v >= !lim && !i < buckets - 1 do
        incr i;
        lim := !lim *. 2.0
      done;
      !i
    end

  let lo_of i = if i = 0 then 0.0 else Float.of_int (1 lsl (i - 1))
  let hi_of i = Float.of_int (1 lsl i)

  let observe h v =
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v;
    let i = bucket_of v in
    h.counts.(i) <- h.counts.(i) + 1

  let count h = h.count
  let sum h = h.sum
  let mean h = if h.count = 0 then 0.0 else h.sum /. Float.of_int h.count
  let min_value h = if h.count = 0 then 0.0 else h.vmin
  let max_value h = if h.count = 0 then 0.0 else h.vmax

  (* Percentile by cumulative bucket counts with linear interpolation
     inside the winning bucket, clamped to the observed [min, max]. *)
  let percentile h p =
    if h.count = 0 then 0.0
    else begin
      let target = p /. 100.0 *. Float.of_int h.count in
      let target = Float.max target 1.0 in
      let cum = ref 0 and i = ref 0 and res = ref h.vmax in
      (try
         while !i < buckets do
           let c = h.counts.(!i) in
           if Float.of_int (!cum + c) >= target && c > 0 then begin
             let frac = (target -. Float.of_int !cum) /. Float.of_int c in
             let lo = lo_of !i and hi = hi_of !i in
             res := lo +. (frac *. (hi -. lo));
             raise Exit
           end;
           cum := !cum + c;
           incr i
         done
       with Exit -> ());
      Float.min (Float.max !res h.vmin) h.vmax
    end

  let merge ~into src =
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.count > 0 then begin
      if src.vmin < into.vmin then into.vmin <- src.vmin;
      if src.vmax > into.vmax then into.vmax <- src.vmax
    end;
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts
end

(* Pipeline lanes: one Perfetto "thread" per lane so concurrent spans
   on a node don't visually overlap. *)
let lane_txn = 0
let lane_apply = 1
let lane_wal = 2
let lane_lock = 3
let lane_net = 4

let lane_name = function
  | 0 -> "txn"
  | 1 -> "apply"
  | 2 -> "wal"
  | 3 -> "lock"
  | 4 -> "net"
  | n -> "lane-" ^ string_of_int n

type arg = I of int | F of float | S of string

type span = {
  sp_name : string;
  sp_pid : int;
  sp_tid : int;
  sp_ts : float;
  sp_args : (string * arg) list;
}

let null_span = { sp_name = ""; sp_pid = 0; sp_tid = 0; sp_ts = 0.0; sp_args = [] }

type t = {
  enabled : bool;
  now_fn : unit -> float;
  nodes : int;
  buf : Buffer.t;
  mutable first : bool;
  hists : (string, Histogram.t) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  (* flow id -> start timestamp, for apply-lag measurement *)
  flows : (int, float) Hashtbl.t;
  marks : (string, float) Hashtbl.t;
  m : Mutex.t;
      (* One sink is shared by every node.  On the simulation backend all
         access is from the single engine thread and the lock is never
         contended; on the real backend each node is a domain, so the
         registry and the trace buffer are updated under this mutex —
         counts can never be lost and JSON events can never interleave. *)
}

(* Serialize one registry/buffer operation.  Kept out of the disabled
   fast path: every entry point still returns after a single branch on
   [t.enabled] before reaching for the lock. *)
let[@inline] locked t f =
  Mutex.lock t.m;
  match f () with
  | v ->
      Mutex.unlock t.m;
      v
  | exception e ->
      Mutex.unlock t.m;
      raise e

let disabled =
  { enabled = false; now_fn = (fun () -> 0.0); nodes = 0;
    buf = Buffer.create 1; first = true;
    hists = Hashtbl.create 1; counters = Hashtbl.create 1;
    flows = Hashtbl.create 1; marks = Hashtbl.create 1;
    m = Mutex.create () }

let create ~now ~nodes () =
  { enabled = true; now_fn = now; nodes;
    buf = Buffer.create 65536; first = true;
    hists = Hashtbl.create 32; counters = Hashtbl.create 32;
    flows = Hashtbl.create 256; marks = Hashtbl.create 64;
    m = Mutex.create () }

let enabled t = t.enabled
let now t = t.now_fn ()

(* Flow arrow ids are derived from (lock, seqno): unique per committed
   write, stable across committer and receivers. *)
let flow_id ~lock ~seqno = (lock * 16_777_216) + seqno

(* ---------------------------------------------------------------- *)
(* Event rendering *)

let event_sep t =
  if t.first then t.first <- false else Buffer.add_string t.buf ",\n"

let add_args buf args =
  match args with
  | [] -> ()
  | args ->
      Buffer.add_string buf {|,"args":{|};
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (Json.escape k);
          Buffer.add_string buf {|":|};
          match v with
          | I n -> Buffer.add_string buf (string_of_int n)
          | F f -> Buffer.add_string buf (Printf.sprintf "%.3f" f)
          | S s ->
              Buffer.add_char buf '"';
              Buffer.add_string buf (Json.escape s);
              Buffer.add_char buf '"')
        args;
      Buffer.add_char buf '}'

let add_header buf ~ph ~name ~cat ~pid ~tid ~ts =
  Buffer.add_string buf (Printf.sprintf
    {|{"ph":"%c","name":"%s","cat":"%s","pid":%d,"tid":%d,"ts":%.3f|}
    ph (Json.escape name) cat pid tid ts)

(* ---------------------------------------------------------------- *)
(* Spans *)

let span_begin t ~name ~pid ~tid ?(args = []) () =
  if not t.enabled then null_span
  else { sp_name = name; sp_pid = pid; sp_tid = tid; sp_ts = t.now_fn (); sp_args = args }

(* Ends the span, emits a complete ("X") event, and returns its
   duration in microseconds (0.0 when disabled). *)
let span_end ?(args = []) t sp =
  if not t.enabled then 0.0
  else begin
    let dur = t.now_fn () -. sp.sp_ts in
    locked t (fun () ->
        event_sep t;
        add_header t.buf ~ph:'X' ~name:sp.sp_name ~cat:"lbc" ~pid:sp.sp_pid
          ~tid:sp.sp_tid ~ts:sp.sp_ts;
        Buffer.add_string t.buf (Printf.sprintf {|,"dur":%.3f|} dur);
        add_args t.buf (sp.sp_args @ args);
        Buffer.add_char t.buf '}');
    dur
  end

let instant t ~name ~pid ~tid ?(args = []) () =
  if t.enabled then begin
    let ts = t.now_fn () in
    locked t (fun () ->
        event_sep t;
        add_header t.buf ~ph:'i' ~name ~cat:"lbc" ~pid ~tid ~ts;
        Buffer.add_string t.buf {|,"s":"t"|};
        add_args t.buf args;
        Buffer.add_char t.buf '}')
  end

(* ---------------------------------------------------------------- *)
(* Flow arrows *)

let flow_start t ~id ~pid ~tid =
  if t.enabled then begin
    let ts = t.now_fn () in
    locked t (fun () ->
        Hashtbl.replace t.flows id ts;
        event_sep t;
        add_header t.buf ~ph:'s' ~name:"write" ~cat:"flow" ~pid ~tid ~ts;
        Buffer.add_string t.buf (Printf.sprintf {|,"id":%d}|} id))
  end

(* Binds the arrow into the receiver's apply span (emit right after the
   span begins so the "f" timestamp falls inside it).  Returns the lag
   since [flow_start], or [None] when no start was recorded (e.g. a
   record obtained by fetch rather than broadcast). *)
let flow_end t ~id ~pid ~tid =
  if not t.enabled then None
  else
    let ts = t.now_fn () in
    locked t (fun () ->
        match Hashtbl.find_opt t.flows id with
        | None -> None
        | Some start ->
            event_sep t;
            add_header t.buf ~ph:'f' ~name:"write" ~cat:"flow" ~pid ~tid ~ts;
            Buffer.add_string t.buf (Printf.sprintf {|,"bp":"e","id":%d}|} id);
            Some (ts -. start))

(* ---------------------------------------------------------------- *)
(* Metrics registry *)

let count t name by =
  if t.enabled then
    locked t (fun () ->
        match Hashtbl.find_opt t.counters name with
        | Some r -> r := !r + by
        | None -> Hashtbl.replace t.counters name (ref by))

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let counters t =
  locked t (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let observe t name v =
  if t.enabled then
    locked t (fun () ->
        let h =
          match Hashtbl.find_opt t.hists name with
          | Some h -> h
          | None ->
              let h = Histogram.create () in
              Hashtbl.replace t.hists name h;
              h
        in
        Histogram.observe h v)

let hist t name = locked t (fun () -> Hashtbl.find_opt t.hists name)

let hists t =
  locked t (fun () -> Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.hists [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Named marks: cheap cross-callback timing (e.g. repair-fetch RTT,
   keyed by requesting node + lock). *)
let mark t key =
  if t.enabled then
    let ts = t.now_fn () in
    locked t (fun () -> Hashtbl.replace t.marks key ts)

let take_mark t key =
  if not t.enabled then None
  else
    let now = t.now_fn () in
    locked t (fun () ->
        match Hashtbl.find_opt t.marks key with
        | None -> None
        | Some ts ->
            Hashtbl.remove t.marks key;
            Some (now -. ts))

(* ---------------------------------------------------------------- *)
(* Output *)

let lanes = [ lane_txn; lane_apply; lane_wal; lane_lock; lane_net ]

let render t =
  let b = Buffer.create (Buffer.length t.buf + 4096) in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string b ",\n" in
  for node = 0 to t.nodes - 1 do
    sep ();
    Buffer.add_string b (Printf.sprintf
      {|{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"node %d"}}|}
      node node);
    List.iter
      (fun lane ->
        sep ();
        Buffer.add_string b (Printf.sprintf
          {|{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"%s"}}|}
          node lane (lane_name lane));
        sep ();
        Buffer.add_string b (Printf.sprintf
          {|{"ph":"M","name":"thread_sort_index","pid":%d,"tid":%d,"args":{"sort_index":%d}}|}
          node lane lane))
      lanes
  done;
  locked t (fun () ->
      if Buffer.length t.buf > 0 then begin
        sep ();
        Buffer.add_buffer b t.buf
      end);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render t))
