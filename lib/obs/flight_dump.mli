(** LBCF — flight recorder dump format: writer, decoder, N-ring
    merge, structural self-check, and a Chrome-trace renderer so a
    binary dump can feed Perfetto / the [lbc-trace] explorer. *)

type kind = Span | Instant | Count | Flow_start | Flow_end

type event = {
  ev_ring : int;
  ev_kind : kind;
  ev_name : string; (* "" for flow endpoints *)
  ev_lane : int;
  ev_ts_ns : int; (* absolute; for spans this is the END time *)
  ev_dur_ns : int; (* spans only, else 0 *)
  ev_arg : int; (* counter delta or flow id, else 0 *)
}

type ring = {
  r_id : int;
  r_recorded : int;
  r_dropped : int;
  r_cap : int;
  r_last_ts_ns : int;
  r_names : string array;
  r_events : event array; (* oldest first, timestamps absolute *)
  r_errors : string list; (* structural problems found while decoding *)
}

type dump = {
  d_version : int;
  d_clock : string; (* "virtual-us" (sim) or "wall-us" (real) *)
  d_dumped_at_ns : int;
  d_rings : ring array;
}

val encode : clock:string -> dumped_at_ns:int -> (int * Flight.t) array -> string
(** Serialize live rings (tagged with their node/ring ids) to LBCF. *)

val write : path:string -> clock:string -> dumped_at_ns:int -> (int * Flight.t) array -> unit

val of_string : string -> (dump, string) result
val read : string -> (dump, string) result

val is_flight_file : string -> bool
(** True iff the file starts with the LBCF magic. *)

val self_check : dump -> string list
(** Empty = clean. Validates per-ring timestamp monotonicity,
    interned-id closure (every referenced id resolves), clean record
    decode, drop accounting ([recorded = dropped + decoded]), and the
    newest-event anchor. *)

val merged : dump -> event array
(** All rings merged into one timestamp-ordered stream (stable: ties
    keep ring order). *)

val render_chrome : dump -> string
(** Chrome trace-event JSON — one process per ring, lanes as threads,
    counter deltas re-accumulated into running totals. *)

val kind_name : kind -> string
val pp_summary : Format.formatter -> dump -> unit
