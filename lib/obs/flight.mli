(** Always-on flight recorder ring.

    A fixed-size byte ring of compactly binary-encoded trace events —
    spans, instants, counter deltas, flow endpoints — with names
    interned in a per-ring string table.  Each ring has exactly one
    writer (its node's execution context; one domain per node on the
    real backend), so recording takes no lock and allocates nothing:
    the newest events always survive, the oldest are overwritten on
    wrap and tallied in {!dropped}.

    Timestamps are integer nanoseconds from the platform clock
    (virtual µs × 1000 on the sim, monotonic wall µs × 1000 on the
    real backend), clamped monotone per ring. *)

type t

val create : ?cap_bytes:int -> unit -> t
(** [create ~cap_bytes ()] makes a ring of at least [cap_bytes]
    (rounded up to a power of two, minimum 256). Default 64 KiB. *)

(** {1 Recording (hot path: lock-free, allocation-free)} *)

val record_span : t -> ts_ns:int -> name:string -> lane:int -> dur_ns:int -> unit
(** Complete span; [ts_ns] is the span's {e end} time. *)

val record_instant : t -> ts_ns:int -> name:string -> lane:int -> unit

val record_count : t -> ts_ns:int -> name:string -> delta:int -> unit
(** Signed counter delta (zigzag-encoded). *)

val record_flow : t -> ts_ns:int -> head:bool -> id:int -> lane:int -> unit
(** Flow endpoint: [head:false] = producer side, [head:true] =
    consumer side. Endpoints with the same [id] pair up at decode. *)

(** {1 Stats} *)

val recorded : t -> int
(** Total events ever recorded (including since-overwritten ones). *)

val dropped : t -> int
(** Events lost to wrap; [recorded = dropped + surviving]. *)

val bytes_used : t -> int
val capacity : t -> int

val last_ts_ns : t -> int
(** Absolute timestamp of the newest record — the decode anchor that
    lets delta-encoded survivors be re-absolutized after wrap. *)

val name_count : t -> int

(** {1 Dump support (cold path)} *)

val names : t -> string array
(** Intern table, index = id.  Lives outside the ring, so wrap never
    orphans an id. *)

val dump_body : t -> string
(** Surviving records, linearized oldest-to-newest. *)

val lane_name : int -> string
(** Human name for a pipeline lane (txn/apply/wal/lock/net). *)
