(* Trace explorer: loads a Chrome trace-event document produced by
   [Obs], validates it, and derives the analyses printed by the
   [lbc_trace] CLI — per-lock contention, per-stage latency breakdown,
   and the critical path of the slowest transaction. *)

type event = {
  ph : char;
  name : string;
  cat : string;
  pid : int;
  tid : int;
  ts : float;
  dur : float;          (* 0 unless ph = 'X' *)
  id : int;             (* -1 unless a flow event *)
  args : (string * Json.t) list;
}

let event_of_json j =
  match Json.str_member "ph" j with
  | None | Some "" -> None
  | Some ph ->
      let num key d = match Json.num_member key j with Some f -> f | None -> d in
      let str key d = match Json.str_member key j with Some s -> s | None -> d in
      let args =
        match Json.member "args" j with Some (Json.Obj l) -> l | _ -> []
      in
      Some
        { ph = ph.[0];
          name = str "name" "";
          cat = str "cat" "";
          pid = int_of_float (num "pid" 0.0);
          tid = int_of_float (num "tid" 0.0);
          ts = num "ts" 0.0;
          dur = num "dur" 0.0;
          id = int_of_float (num "id" (-1.0));
          args }

let events_of_json j =
  match Json.member "traceEvents" j with
  | Some (Json.Arr l) -> Ok (List.filter_map event_of_json l)
  | _ -> Error "no traceEvents array"

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  match Json.parse src with
  | Error why -> Error (Printf.sprintf "invalid JSON: %s" why)
  | Ok j -> events_of_json j

let int_arg key ev =
  match List.assoc_opt key ev.args with
  | Some (Json.Num f) -> Some (int_of_float f)
  | _ -> None

(* ---------------------------------------------------------------- *)
(* Self-check: the structural invariants CI relies on.  Returns a list
   of violation descriptions (empty = clean). *)

let self_check events =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Instants and flow events must appear in non-decreasing timestamp
     order per node (spans are emitted at their *end*, so their file
     order follows span ends, not starts — exempt). *)
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let flow_starts : (int, event) Hashtbl.t = Hashtbl.create 64 in
  let applies : (int, (float * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      if ev.ph = 'X' && ev.name = "apply" then begin
        let l =
          match Hashtbl.find_opt applies ev.pid with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace applies ev.pid l;
              l
        in
        l := (ev.ts, ev.ts +. ev.dur) :: !l
      end)
    events;
  List.iter
    (fun ev ->
      match ev.ph with
      | 'M' -> ()
      | 'X' ->
          if ev.dur < 0.0 then
            err "span %S on node %d has negative duration %.3f" ev.name ev.pid
              ev.dur
      | 's' -> Hashtbl.replace flow_starts ev.id ev
      | 'f' -> (
          (match Hashtbl.find_opt last_ts ev.pid with
          | Some prev when ev.ts < prev ->
              err "node %d: timestamp went backwards (%.3f after %.3f)" ev.pid
                ev.ts prev
          | _ -> ());
          Hashtbl.replace last_ts ev.pid ev.ts;
          match Hashtbl.find_opt flow_starts ev.id with
          | None -> err "flow %d ends on node %d with no start" ev.id ev.pid
          | Some s ->
              if s.ts > ev.ts then
                err "flow %d starts at %.3f after its end at %.3f" ev.id s.ts
                  ev.ts;
              let inside =
                match Hashtbl.find_opt applies ev.pid with
                | None -> false
                | Some spans ->
                    List.exists
                      (fun (lo, hi) -> ev.ts >= lo && ev.ts <= hi)
                      !spans
              in
              if not inside then
                err "flow %d ends on node %d outside any apply span" ev.id
                  ev.pid)
      | 'i' ->
          (match Hashtbl.find_opt last_ts ev.pid with
          | Some prev when ev.ts < prev ->
              err "node %d: timestamp went backwards (%.3f after %.3f)" ev.pid
                ev.ts prev
          | _ -> ());
          Hashtbl.replace last_ts ev.pid ev.ts
      | c -> err "unknown event phase %C" c)
    events;
  List.rev !errors

(* ---------------------------------------------------------------- *)
(* Per-stage latency breakdown from span durations. *)

type stage_stats = {
  st_name : string;
  st_count : int;
  st_total : float;
  st_p50 : float;
  st_p95 : float;
  st_p99 : float;
  st_max : float;
}

let exact_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. Float.of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let stage_breakdown events =
  let by_name : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      if ev.ph = 'X' then begin
        let l =
          match Hashtbl.find_opt by_name ev.name with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace by_name ev.name l;
              l
        in
        l := ev.dur :: !l
      end)
    events;
  Hashtbl.fold
    (fun name durs acc ->
      let a = Array.of_list !durs in
      Array.sort Float.compare a;
      let total = Array.fold_left ( +. ) 0.0 a in
      { st_name = name;
        st_count = Array.length a;
        st_total = total;
        st_p50 = exact_percentile a 50.0;
        st_p95 = exact_percentile a 95.0;
        st_p99 = exact_percentile a 99.0;
        st_max = (if Array.length a = 0 then 0.0 else a.(Array.length a - 1)) }
      :: acc)
    by_name []
  |> List.sort (fun a b -> Float.compare b.st_total a.st_total)

(* ---------------------------------------------------------------- *)
(* Per-lock contention from lock.wait spans. *)

type lock_stats = {
  lk_lock : int;
  lk_waits : int;
  lk_contended : int;      (* waits with nonzero duration *)
  lk_total_wait : float;
  lk_max_wait : float;
}

let lock_contention events =
  let by_lock : (int, lock_stats) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      if ev.ph = 'X' && ev.name = "lock.wait" then
        match int_arg "lock" ev with
        | None -> ()
        | Some lock ->
            let st =
              match Hashtbl.find_opt by_lock lock with
              | Some st -> st
              | None ->
                  { lk_lock = lock; lk_waits = 0; lk_contended = 0;
                    lk_total_wait = 0.0; lk_max_wait = 0.0 }
            in
            Hashtbl.replace by_lock lock
              { st with
                lk_waits = st.lk_waits + 1;
                lk_contended =
                  (st.lk_contended + if ev.dur > 0.0 then 1 else 0);
                lk_total_wait = st.lk_total_wait +. ev.dur;
                lk_max_wait = Float.max st.lk_max_wait ev.dur })
    events;
  Hashtbl.fold (fun _ st acc -> st :: acc) by_lock []
  |> List.sort (fun a b -> Float.compare b.lk_total_wait a.lk_total_wait)

(* ---------------------------------------------------------------- *)
(* Critical path: the slowest txn span, plus every span on the same
   node that overlaps it, in timeline order — the per-stage story of
   where that transaction's time went. *)

let slowest_txn events =
  List.fold_left
    (fun acc ev ->
      if ev.ph = 'X' && ev.name = "txn" then
        match acc with
        | Some best when best.dur >= ev.dur -> acc
        | _ -> Some ev
      else acc)
    None events

let critical_path events =
  match slowest_txn events with
  | None -> None
  | Some txn ->
      let lo = txn.ts and hi = txn.ts +. txn.dur in
      let inside =
        List.filter
          (fun ev ->
            ev.ph = 'X' && ev.pid = txn.pid && ev.ts >= lo
            && ev.ts +. ev.dur <= hi +. 0.001
            && not (ev.ts = txn.ts && ev.name = "txn" && ev.tid = txn.tid))
          events
        |> List.sort (fun a b -> Float.compare a.ts b.ts)
      in
      Some (txn, inside)

(* ---------------------------------------------------------------- *)
(* Flow accounting, for reporting how many committed writes were
   traced end-to-end. *)

type flow_summary = { fl_starts : int; fl_ends : int; fl_unresolved : int }

let flow_summary events =
  let starts = Hashtbl.create 64 in
  let ends = ref 0 and unresolved = ref 0 in
  List.iter
    (fun ev ->
      match ev.ph with
      | 's' -> Hashtbl.replace starts ev.id ()
      | 'f' ->
          incr ends;
          if not (Hashtbl.mem starts ev.id) then incr unresolved
      | _ -> ())
    events;
  { fl_starts = Hashtbl.length starts; fl_ends = !ends;
    fl_unresolved = !unresolved }
