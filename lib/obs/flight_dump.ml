(* LBCF — the on-disk flight recorder dump format, its decoder, the
   N-ring merge, structural self-check, and a Chrome-trace renderer.

   Layout (all integers LEB128 varints unless noted):

     "LBCF"            magic, 4 raw bytes
     version           1 raw byte (currently 1)
     dumped_at_ns      platform clock at dump time
     clock             length-prefixed label ("virtual-us" | "wall-us")
     ring_count
     per ring:
       ring_id recorded dropped cap last_ts_ns
       name_count  (len name)*          -- intern table, index = id
       body_len  body                   -- Flight records, oldest first

   Record timestamps inside a body are deltas; the decoder accumulates
   them from zero and then shifts every event so the newest lands on
   [last_ts_ns] (see flight.ml: eviction can remove the delta chain's
   base, the anchor is kept outside the ring). *)

type kind = Span | Instant | Count | Flow_start | Flow_end

type event = {
  ev_ring : int;
  ev_kind : kind;
  ev_name : string; (* "" for flow endpoints *)
  ev_lane : int;
  ev_ts_ns : int; (* absolute; for spans this is the END time *)
  ev_dur_ns : int; (* spans only, else 0 *)
  ev_arg : int; (* counter delta or flow id, else 0 *)
}

type ring = {
  r_id : int;
  r_recorded : int;
  r_dropped : int;
  r_cap : int;
  r_last_ts_ns : int;
  r_names : string array;
  r_events : event array;
  r_errors : string list; (* decode-time structural problems *)
}

type dump = {
  d_version : int;
  d_clock : string;
  d_dumped_at_ns : int;
  d_rings : ring array;
}

let magic = "LBCF"
let version = 1

(* ---------------------------------------------------------------- *)
(* Writing *)

let add_varint buf v =
  let v = ref v in
  while !v >= 128 do
    Buffer.add_char buf (Char.chr ((!v land 0x7f) lor 0x80));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let add_str buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let encode ~clock ~dumped_at_ns (rings : (int * Flight.t) array) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  add_varint buf dumped_at_ns;
  add_str buf clock;
  add_varint buf (Array.length rings);
  Array.iter
    (fun (id, r) ->
      add_varint buf id;
      add_varint buf (Flight.recorded r);
      add_varint buf (Flight.dropped r);
      add_varint buf (Flight.capacity r);
      add_varint buf (Flight.last_ts_ns r);
      let names = Flight.names r in
      add_varint buf (Array.length names);
      Array.iter (add_str buf) names;
      add_str buf (Flight.dump_body r))
    rings;
  Buffer.contents buf

let write ~path ~clock ~dumped_at_ns rings =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode ~clock ~dumped_at_ns rings))

(* ---------------------------------------------------------------- *)
(* Decoding *)

exception Corrupt of string

type cursor = { s : string; mutable pos : int }

let u8 c =
  if c.pos >= String.length c.s then raise (Corrupt "truncated");
  let b = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  b

let varint c =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let b = u8 c in
    if !shift > 56 then raise (Corrupt "varint too long");
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !v

let str c =
  let n = varint c in
  if c.pos + n > String.length c.s then raise (Corrupt "truncated string");
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let unzigzag v = (v lsr 1) lxor (-(v land 1))

(* Decode one ring body.  Returns events in record order with
   timestamps already re-absolutized against [last_ts_ns]. *)
let decode_body ~ring_id ~names ~last_ts_ns body =
  let c = { s = body; pos = 0 } in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let name_of id =
    if id >= 0 && id < Array.length names then names.(id)
    else (
      err "ring %d: name id %d outside intern table (%d names)" ring_id id
        (Array.length names);
      Printf.sprintf "?%d" id)
  in
  let events = ref [] in
  let ts = ref 0 in
  (try
     while c.pos < String.length c.s do
       let start = c.pos in
       let len = u8 c in
       let payload_end = start + 1 + len in
       if payload_end > String.length c.s then
         raise (Corrupt (Printf.sprintf "record at %d overruns body" start));
       let tag = u8 c in
       let ev =
         match tag with
         | 0 ->
             let lane = varint c in
             let name = name_of (varint c) in
             ts := !ts + varint c;
             let dur = varint c in
             { ev_ring = ring_id; ev_kind = Span; ev_name = name;
               ev_lane = lane; ev_ts_ns = !ts; ev_dur_ns = dur; ev_arg = 0 }
         | 1 ->
             let lane = varint c in
             let name = name_of (varint c) in
             ts := !ts + varint c;
             { ev_ring = ring_id; ev_kind = Instant; ev_name = name;
               ev_lane = lane; ev_ts_ns = !ts; ev_dur_ns = 0; ev_arg = 0 }
         | 2 ->
             let name = name_of (varint c) in
             ts := !ts + varint c;
             let delta = unzigzag (varint c) in
             { ev_ring = ring_id; ev_kind = Count; ev_name = name;
               ev_lane = 0; ev_ts_ns = !ts; ev_dur_ns = 0; ev_arg = delta }
         | 3 | 4 ->
             let lane = varint c in
             ts := !ts + varint c;
             let id = varint c in
             { ev_ring = ring_id;
               ev_kind = (if tag = 3 then Flow_start else Flow_end);
               ev_name = ""; ev_lane = lane; ev_ts_ns = !ts; ev_dur_ns = 0;
               ev_arg = id }
         | t -> raise (Corrupt (Printf.sprintf "unknown tag %d at %d" t start))
       in
       if c.pos <> payload_end then
         raise
           (Corrupt
              (Printf.sprintf "record at %d: decoded %d bytes, length says %d"
                 start (c.pos - start - 1) len));
       events := ev :: !events
     done
   with Corrupt m -> err "ring %d: %s" ring_id m);
  let events = Array.of_list (List.rev !events) in
  let n = Array.length events in
  if n > 0 then begin
    (* Shift relative times so the newest event lands on the anchor. *)
    let offset = last_ts_ns - events.(n - 1).ev_ts_ns in
    Array.iteri
      (fun i ev -> events.(i) <- { ev with ev_ts_ns = ev.ev_ts_ns + offset })
      events
  end;
  (events, List.rev !errors)

let decode_ring ~id ~recorded ~dropped ~cap ~last_ts_ns ~names body =
  let events, errors = decode_body ~ring_id:id ~names ~last_ts_ns body in
  { r_id = id; r_recorded = recorded; r_dropped = dropped; r_cap = cap;
    r_last_ts_ns = last_ts_ns; r_names = names; r_events = events;
    r_errors = errors }

let of_string s =
  let c = { s; pos = 0 } in
  if String.length s < 5 || String.sub s 0 4 <> magic then
    Error "not an LBCF flight dump (bad magic)"
  else begin
    c.pos <- 4;
    match
      let v = u8 c in
      if v <> version then
        raise (Corrupt (Printf.sprintf "unsupported version %d" v));
      let dumped_at_ns = varint c in
      let clock = str c in
      let nrings = varint c in
      if nrings > 1_000_000 then raise (Corrupt "implausible ring count");
      let rings =
        Array.init nrings (fun _ ->
            let id = varint c in
            let recorded = varint c in
            let dropped = varint c in
            let cap = varint c in
            let last_ts_ns = varint c in
            let nnames = varint c in
            if nnames > 10_000_000 then
              raise (Corrupt "implausible name count");
            let names = Array.init nnames (fun _ -> str c) in
            let body = str c in
            decode_ring ~id ~recorded ~dropped ~cap ~last_ts_ns ~names body)
      in
      { d_version = version; d_clock = clock; d_dumped_at_ns = dumped_at_ns;
        d_rings = rings }
    with
    | d -> Ok d
    | exception Corrupt m -> Error m
  end

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error m -> Error m

let is_flight_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        if in_channel_length ic < 4 then "" else really_input_string ic 4)
  with
  | s -> s = magic
  | exception Sys_error _ -> false

(* ---------------------------------------------------------------- *)
(* Self-check: the invariants lbc-trace --self-check validates. *)

let self_check d =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  Array.iter
    (fun r ->
      (* 1. Interned-id closure + clean structural decode. *)
      List.iter (fun e -> add "%s" e) r.r_errors;
      (* 2. Drop accounting: every event ever recorded is either still
         decodable or tallied as dropped. *)
      let survived = Array.length r.r_events in
      if r.r_recorded <> r.r_dropped + survived then
        add "ring %d: drop accounting broken: recorded=%d dropped=%d decoded=%d"
          r.r_id r.r_recorded r.r_dropped survived;
      (* 3. Per-ring timestamp monotonicity (and the anchor pins the
         newest event). *)
      let prev = ref min_int in
      Array.iter
        (fun ev ->
          if ev.ev_ts_ns < !prev then
            add "ring %d: timestamp regression %d -> %d in %S" r.r_id !prev
              ev.ev_ts_ns ev.ev_name;
          prev := ev.ev_ts_ns;
          if ev.ev_dur_ns < 0 then
            add "ring %d: negative duration in %S" r.r_id ev.ev_name)
        r.r_events;
      if survived > 0 && r.r_events.(survived - 1).ev_ts_ns <> r.r_last_ts_ns
      then
        add "ring %d: newest event ts %d does not match anchor %d" r.r_id
          r.r_events.(survived - 1).ev_ts_ns r.r_last_ts_ns)
    d.d_rings;
  List.rev !problems

(* Merge all rings into one event stream ordered by timestamp (stable,
   so same-instant events keep ring order). *)
let merged d =
  let all = Array.concat (Array.to_list (Array.map (fun r -> r.r_events) d.d_rings)) in
  let a = Array.copy all in
  let cmp a b =
    let c = Int.compare a.ev_ts_ns b.ev_ts_ns in
    if c <> 0 then c else Int.compare a.ev_ring b.ev_ring
  in
  Array.stable_sort cmp a;
  a

(* ---------------------------------------------------------------- *)
(* Chrome-trace rendering: one process per ring, lanes as threads —
   the same shape Obs.render emits, so Perfetto and the explorer both
   understand a merged flight dump. *)

let render_chrome d =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n";
        Buffer.add_string buf s)
      fmt
  in
  Array.iter
    (fun r ->
      emit
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"node%d\"}}"
        r.r_id r.r_id;
      for lane = 0 to 4 do
        emit
          "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
          r.r_id lane (Flight.lane_name lane)
      done)
    d.d_rings;
  let counters = Hashtbl.create 16 in
  Array.iter
    (fun ev ->
      let ts_us = float_of_int ev.ev_ts_ns /. 1000.0 in
      match ev.ev_kind with
      | Span ->
          let dur_us = float_of_int ev.ev_dur_ns /. 1000.0 in
          emit
            "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"flight\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
            (Json.escape ev.ev_name) ev.ev_ring ev.ev_lane (ts_us -. dur_us)
            dur_us
      | Instant ->
          emit
            "{\"ph\":\"i\",\"name\":\"%s\",\"cat\":\"flight\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\"}"
            (Json.escape ev.ev_name) ev.ev_ring ev.ev_lane ts_us
      | Count ->
          let key = (ev.ev_ring, ev.ev_name) in
          let total =
            (match Hashtbl.find_opt counters key with Some v -> v | None -> 0)
            + ev.ev_arg
          in
          Hashtbl.replace counters key total;
          emit
            "{\"ph\":\"C\",\"name\":\"%s\",\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"args\":{\"%s\":%d}}"
            (Json.escape ev.ev_name) ev.ev_ring ts_us (Json.escape ev.ev_name)
            total
      | Flow_start ->
          emit
            "{\"ph\":\"s\",\"name\":\"flow\",\"cat\":\"flight\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"id\":%d}"
            ev.ev_ring ev.ev_lane ts_us ev.ev_arg
      | Flow_end ->
          emit
            "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"flow\",\"cat\":\"flight\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"id\":%d}"
            ev.ev_ring ev.ev_lane ts_us ev.ev_arg)
    (merged d);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* ---------------------------------------------------------------- *)
(* Summary used by lbc-trace and tests. *)

let kind_name = function
  | Span -> "span"
  | Instant -> "instant"
  | Count -> "count"
  | Flow_start -> "flow-start"
  | Flow_end -> "flow-end"

let pp_summary ppf d =
  Format.fprintf ppf "flight dump: clock=%s rings=%d dumped_at=%dns@."
    d.d_clock (Array.length d.d_rings) d.d_dumped_at_ns;
  Array.iter
    (fun r ->
      let survived = Array.length r.r_events in
      Format.fprintf ppf
        "  node%d: %d recorded, %d dropped, %d decoded, %d names, cap %dB@."
        r.r_id r.r_recorded r.r_dropped survived (Array.length r.r_names)
        r.r_cap;
      if survived > 0 then
        Format.fprintf ppf "    window: %d..%d ns (%.3f ms)@."
          r.r_events.(0).ev_ts_ns r.r_events.(survived - 1).ev_ts_ns
          (float_of_int
             (r.r_events.(survived - 1).ev_ts_ns - r.r_events.(0).ev_ts_ns)
          /. 1e6))
    d.d_rings
