(* Always-on flight recorder ring.

   One ring per node (per domain on the real backend), written only by
   that node's execution context — single-writer, so the hot path takes
   no lock and performs no per-event heap allocation: events are
   varint-encoded directly into a fixed byte ring with [Bytes.unsafe_set].
   When the ring wraps, whole oldest records are overwritten and counted
   in [dropped]; the survivors are always the newest suffix.

   Record layout (length-prefixed, so the eviction scan never decodes
   payloads):

     +-----+--------------------------------------+
     | len |  tag  field*  (varints)              |
     +-----+--------------------------------------+

     tag 0 span     : lane, name_id, ts_delta, dur_ns
     tag 1 instant  : lane, name_id, ts_delta
     tag 2 count    : name_id, ts_delta, zigzag(delta)
     tag 3 flow tail: lane, ts_delta, flow_id
     tag 4 flow head: lane, ts_delta, flow_id

   Timestamps are integer nanoseconds, clamped monotone per ring and
   stored as deltas from the previous record.  Because eviction can
   remove the base a delta chain started from, absolute times are
   reconstructed at decode time from [last_ts_ns] (the newest record's
   absolute timestamp, kept outside the ring): decode relative, then
   shift so the final event lands on [last_ts_ns].

   The string table is interned outside the ring (names are a small
   static set), so wrap can never orphan an id: every id a surviving
   record references stays resolvable. *)

type t = {
  ring : Bytes.t;
  mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable head : int;  (* monotone byte offset of the next write *)
  mutable oldest : int;  (* monotone byte offset of the oldest record *)
  mutable recorded : int;
  mutable dropped : int;
  mutable last_ts : int;  (* ns, monotone per ring *)
  intern : (string, int) Hashtbl.t;
  mutable names : string list;  (* newest first; reversed at dump *)
  mutable name_count : int;
}

let tag_span = 0
let tag_instant = 1
let tag_count = 2
let tag_flow_start = 3
let tag_flow_end = 4

(* Pipeline lane names, shared with the JSON tracer and the dump
   renderer. *)
let lane_name = function
  | 0 -> "txn"
  | 1 -> "apply"
  | 2 -> "wal"
  | 3 -> "lock"
  | 4 -> "net"
  | n -> "lane-" ^ string_of_int n

let min_capacity = 256

let create ?(cap_bytes = 65536) () =
  let cap = ref min_capacity in
  while !cap < cap_bytes do
    cap := !cap * 2
  done;
  {
    ring = Bytes.create !cap;  (* alloc-ok: one-time ring allocation *)
    mask = !cap - 1;
    head = 0;
    oldest = 0;
    recorded = 0;
    dropped = 0;
    last_ts = 0;
    intern = Hashtbl.create 32;
    names = [];
    name_count = 0;
  }

let recorded t = t.recorded
let dropped t = t.dropped
let bytes_used t = t.head - t.oldest
let capacity t = t.mask + 1
let last_ts_ns t = t.last_ts
let name_count t = t.name_count

(* ---------------------------------------------------------------- *)
(* Hot path *)

(* Exception match rather than [find_opt]: the steady-state hit must
   not allocate an option (this runs once per record). *)
let[@inline] intern t name =
  match Hashtbl.find t.intern name with
  | id -> id
  | exception Not_found ->
      (* First occurrence only: the name set is small and static. *)
      let id = t.name_count in
      Hashtbl.add t.intern name id;
      t.names <- name :: t.names;
      t.name_count <- id + 1;
      id

let[@inline] varint_len v =
  let v = ref v and n = ref 1 in
  while !v >= 128 do
    v := !v lsr 7;
    incr n
  done;
  !n

let[@inline] put8 t pos b =
  Bytes.unsafe_set t.ring (pos land t.mask) (Char.unsafe_chr (b land 0xff))

let[@inline] put_varint t pos v =
  let pos = ref pos and v = ref v in
  while !v >= 128 do
    put8 t !pos ((!v land 0x7f) lor 0x80);
    incr pos;
    v := !v lsr 7
  done;
  put8 t !pos !v;
  !pos + 1

let[@inline] zigzag v = (v lsl 1) lxor (v asr 62)

(* Overwrite-oldest: drop whole records until [total] bytes fit.  The
   length prefix makes this a byte-offset hop, not a decode. *)
let[@inline] evict_for t total =
  let cap = t.mask + 1 in
  while t.head + total - t.oldest > cap do
    let len = Char.code (Bytes.unsafe_get t.ring (t.oldest land t.mask)) in
    t.oldest <- t.oldest + 1 + len;
    t.dropped <- t.dropped + 1
  done

(* Monotone clamp: the ring's timestamps never step backwards, so the
   delta is always non-negative and the self-check invariant holds by
   construction. *)
let[@inline] ts_delta t ts_ns =
  let ts = if ts_ns < t.last_ts then t.last_ts else ts_ns in
  let d = ts - t.last_ts in
  t.last_ts <- ts;
  d

let record_span t ~ts_ns ~name ~lane ~dur_ns =
  let id = intern t name in
  let dur = if dur_ns < 0 then 0 else dur_ns in
  let d = ts_delta t ts_ns in
  let len =
    1 + varint_len lane + varint_len id + varint_len d + varint_len dur
  in
  evict_for t (1 + len);
  put8 t t.head len;
  put8 t (t.head + 1) tag_span;
  let p = put_varint t (t.head + 2) lane in
  let p = put_varint t p id in
  let p = put_varint t p d in
  let p = put_varint t p dur in
  t.head <- p;
  t.recorded <- t.recorded + 1

let record_instant t ~ts_ns ~name ~lane =
  let id = intern t name in
  let d = ts_delta t ts_ns in
  let len = 1 + varint_len lane + varint_len id + varint_len d in
  evict_for t (1 + len);
  put8 t t.head len;
  put8 t (t.head + 1) tag_instant;
  let p = put_varint t (t.head + 2) lane in
  let p = put_varint t p id in
  let p = put_varint t p d in
  t.head <- p;
  t.recorded <- t.recorded + 1

let record_count t ~ts_ns ~name ~delta =
  let id = intern t name in
  let d = ts_delta t ts_ns in
  let z = zigzag delta in
  let len = 1 + varint_len id + varint_len d + varint_len z in
  evict_for t (1 + len);
  put8 t t.head len;
  put8 t (t.head + 1) tag_count;
  let p = put_varint t (t.head + 2) id in
  let p = put_varint t p d in
  let p = put_varint t p z in
  t.head <- p;
  t.recorded <- t.recorded + 1

let record_flow t ~ts_ns ~head ~id:flow ~lane =
  let d = ts_delta t ts_ns in
  let tag = if head then tag_flow_end else tag_flow_start in
  let len = 1 + varint_len lane + varint_len d + varint_len flow in
  evict_for t (1 + len);
  put8 t t.head len;
  put8 t (t.head + 1) tag;
  let p = put_varint t (t.head + 2) lane in
  let p = put_varint t p d in
  let p = put_varint t p flow in
  t.head <- p;
  t.recorded <- t.recorded + 1

(* ---------------------------------------------------------------- *)
(* Dump-side accessors (cold path; allocation is fine here) *)

let names t = Array.of_list (List.rev t.names)

(* The surviving records, linearized oldest-to-newest. *)
let dump_body t =
  let n = t.head - t.oldest in
  let b = Bytes.create n in  (* alloc-ok: dump path, not per-event *)
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Bytes.unsafe_get t.ring ((t.oldest + i) land t.mask))
  done;
  Bytes.unsafe_to_string b
