(* Minimal JSON: just enough to write and read Chrome trace-event files
   without an external dependency.  The writer side lives in Obs (which
   renders straight into a buffer); this module provides string escaping
   for it and a small recursive-descent parser for the trace explorer. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* --------------------------------------------------------------- *)
(* Parser *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "short \\u escape";
                let hex = String.sub st.src st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with Failure _ -> fail st "bad \\u escape"
                in
                (* Traces only carry ASCII; encode the BMP scalar as
                   UTF-8 so round-trips stay lossless anyway. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail st (Printf.sprintf "bad escape \\%C" c));
            go ())
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let n = String.length st.src in
  let numchar c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < n && numchar st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((key, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        Arr (elements [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length src then Error "trailing bytes after value"
      else Ok v
  | exception Parse_error why -> Error why

(* --------------------------------------------------------------- *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr l -> Some l | _ -> None

let num_member key j = Option.bind (member key j) to_num
let str_member key j = Option.bind (member key j) to_str
