module Obs = Lbc_obs.Obs

type grant = { seqno : int; prev_write_seq : int; last_writer : int }

type msg =
  | Request of { epoch : int; lock : int; requester : int }
  | Forward of { epoch : int; lock : int; requester : int }
  | Token of {
      epoch : int;
      lock : int;
      seqno : int;
      last_write_seq : int;
      last_writer : int;
    }

(* Nominal sizes: two small ints for requests, three for a token, plus a
   small header carrying the epoch — comparable to the prototype's control
   messages. *)
let msg_size = function
  | Request _ | Forward _ -> 16
  | Token _ -> 24

let pp_msg ppf = function
  | Request { epoch; lock; requester } ->
      Format.fprintf ppf "Request(l%d<-n%d e%d)" lock requester epoch
  | Forward { epoch; lock; requester } ->
      Format.fprintf ppf "Forward(l%d<-n%d e%d)" lock requester epoch
  | Token { epoch; lock; seqno; last_write_seq; last_writer } ->
      Format.fprintf ppf "Token(l%d seq=%d lws=%d lw=%d e%d)" lock seqno
        last_write_seq last_writer epoch

exception Protocol_error of string

type waiter = { iv : grant option Lbc_sim.Ivar.t; mutable cancelled : bool }

type lstate = {
  id : int;
  mutable have_token : bool;
  mutable busy : bool;
  mutable held_seq : int;  (* seqno of the current local holder *)
  mutable seqno : int;  (* valid while we own the token *)
  mutable last_write_seq : int;  (* valid while we own the token *)
  mutable last_writer : int;  (* node of the last writing acquire; -1 if none *)
  mutable pending_remote : int option;  (* node owed our token *)
  mutable requesting : bool;  (* Request sent, Token not yet received *)
  waiters : waiter Queue.t;
  mutable tail : int;  (* manager-side: current end of the waiter chain *)
}

type stats = {
  mutable local_grants : int;
  mutable remote_grants : int;
  mutable tokens_passed : int;
  mutable requests_sent : int;
  mutable stale_msgs : int;
}

(* Pop waiters until one that has not timed out. *)
let rec next_waiter waiters =
  match Queue.take_opt waiters with
  | Some w when w.cancelled -> next_waiter waiters
  | other -> other

let live_waiters waiters =
  Queue.fold (fun acc w -> if w.cancelled then acc else acc + 1) 0 waiters

type t = {
  node : int;
  nodes : int;
  send : dst:int -> msg -> unit;
  locks : (int, lstate) Hashtbl.t;
  stats : stats;
  mutable epoch : int;  (* lease epoch; messages from older epochs are stale *)
  mutable obs : Obs.t;
  heat_keys : (int, string) Hashtbl.t;
      (* memoized per-lock "lock_acquires:N" counter keys; per-table, so
         only this node's execution context touches it *)
}

let create ~node ~nodes ~send () =
  if nodes <= 0 || node < 0 || node >= nodes then
    invalid_arg "Table.create: bad node/nodes";
  {
    node;
    nodes;
    send;
    locks = Hashtbl.create 16;
    stats =
      {
        local_grants = 0;
        remote_grants = 0;
        tokens_passed = 0;
        requests_sent = 0;
        stale_msgs = 0;
      };
    epoch = 0;
    obs = Obs.disabled;
    heat_keys = Hashtbl.create 16;
  }

let set_obs t obs = t.obs <- obs
let node t = t.node
let manager_of t lock = lock mod t.nodes
let stats t = t.stats
let epoch t = t.epoch

let state t lock =
  if lock < 0 then invalid_arg "Table: negative lock id";
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s
  | None ->
      let is_manager = manager_of t lock = t.node in
      let s =
        {
          id = lock;
          have_token = is_manager;
          busy = false;
          held_seq = 0;
          seqno = 0;
          last_write_seq = 0;
          last_writer = -1;
          pending_remote = None;
          requesting = false;
          waiters = Queue.create ();
          tail = manager_of t lock;
        }
      in
      Hashtbl.add t.locks lock s;
      s

let held t lock = (state t lock).busy
let has_token t lock = (state t lock).have_token

(* Grant the token to one local waiter (or return the grant directly). *)
let grant_locally s =
  s.busy <- true;
  s.seqno <- s.seqno + 1;
  s.held_seq <- s.seqno;
  { seqno = s.seqno; prev_write_seq = s.last_write_seq; last_writer = s.last_writer }

let pass_token t s ~to_ =
  if not s.have_token then raise (Protocol_error "passing a token we lack");
  s.have_token <- false;
  t.stats.tokens_passed <- t.stats.tokens_passed + 1;
  if Obs.enabled t.obs then begin
    Obs.count ~pid:t.node t.obs "token_hops" 1;
    (* Args only feed the opt-in JSON trace; don't allocate the list on
       flight-only runs (same guard on the lock.wait spans below). *)
    Obs.instant t.obs ~name:"token.pass" ~pid:t.node ~tid:Obs.lane_lock
      ?args:
        (if Obs.tracing t.obs then
           Some [ ("lock", Obs.I s.id); ("to", Obs.I to_) ]
         else None)
      ()
  end;
  t.send ~dst:to_
    (Token
       {
         epoch = t.epoch;
         lock = s.id;
         seqno = s.seqno;
         last_write_seq = s.last_write_seq;
         last_writer = s.last_writer;
       })

let rec request_token t s =
  if not s.requesting then begin
    s.requesting <- true;
    t.stats.requests_sent <- t.stats.requests_sent + 1;
    Obs.count ~pid:t.node t.obs "token_requests" 1;
    let mgr = manager_of t s.id in
    if mgr = t.node then
      (* We are the manager: short-circuit the self-send. *)
      handle_request t s.id t.node
    else t.send ~dst:mgr (Request { epoch = t.epoch; lock = s.id; requester = t.node })
  end

and handle_request t lock requester =
  let s = state t lock in
  if manager_of t lock <> t.node then
    raise (Protocol_error "Request received by a non-manager");
  let prev = s.tail in
  s.tail <- requester;
  if prev = requester then
    raise (Protocol_error "requester already at queue tail");
  if prev = t.node then handle_forward t lock requester
  else t.send ~dst:prev (Forward { epoch = t.epoch; lock; requester })

and handle_forward t lock requester =
  let s = state t lock in
  (match s.pending_remote with
  | Some other ->
      raise
        (Protocol_error
           (Printf.sprintf "two pending token requests (%d, %d)" other requester))
  | None -> ());
  if
    s.have_token && (not s.busy)
    && live_waiters s.waiters = 0
    && not s.requesting
  then pass_token t s ~to_:requester
  else s.pending_remote <- Some requester

let handle_token t lock ~seqno ~last_write_seq ~last_writer =
  let s = state t lock in
  if s.have_token then raise (Protocol_error "token received while owning it");
  s.have_token <- true;
  s.requesting <- false;
  s.seqno <- seqno;
  s.last_write_seq <- last_write_seq;
  s.last_writer <- last_writer;
  match next_waiter s.waiters with
  | Some w ->
      let g = grant_locally s in
      t.stats.remote_grants <- t.stats.remote_grants + 1;
      Lbc_sim.Ivar.fill w.iv (Some g)
  | None -> (
      (* Nobody waits any more; honour a pending forward immediately. *)
      match s.pending_remote with
      | Some r ->
          s.pending_remote <- None;
          pass_token t s ~to_:r
      | None -> ())

let handle t ~src:_ msg =
  let msg_epoch =
    match msg with
    | Request { epoch; _ } | Forward { epoch; _ } | Token { epoch; _ } -> epoch
  in
  (* Lease fencing: traffic from before the last reclaim is void. *)
  if msg_epoch <> t.epoch then t.stats.stale_msgs <- t.stats.stale_msgs + 1
  else
    match msg with
    | Request { lock; requester; _ } -> handle_request t lock requester
    | Forward { lock; requester; _ } -> handle_forward t lock requester
    | Token { lock; seqno; last_write_seq; last_writer; _ } ->
        handle_token t lock ~seqno ~last_write_seq ~last_writer

let enqueue_waiter t s =
  let w = { iv = Lbc_sim.Ivar.create (); cancelled = false } in
  Queue.add w s.waiters;
  if not s.have_token then request_token t s;
  w

(* Per-lock acquire counters ("heat"): an on-demand rejoin drains its
   cold replay chains hottest-lock-first, reading these back through the
   shared obs registry. *)
let heat_key lock = Printf.sprintf "lock_acquires:%d" lock

(* Memoized variant for the acquire hot path: the sink is always on
   since the flight recorder, and a sprintf per acquire costs more than
   the counter update itself.  Per-table, so only this node's execution
   context touches the memo. *)
let heat_key_memo t lock =
  match Hashtbl.find_opt t.heat_keys lock with
  | Some k -> k
  | None ->
      let k = heat_key lock in
      Hashtbl.replace t.heat_keys lock k;
      k

let note_heat t lock =
  if Obs.enabled t.obs then
    Obs.count ~pid:t.node t.obs (heat_key_memo t lock) 1

let acquire t lock =
  note_heat t lock;
  let s = state t lock in
  if s.have_token && (not s.busy) && live_waiters s.waiters = 0 then begin
    t.stats.local_grants <- t.stats.local_grants + 1;
    Obs.observe ~pid:t.node t.obs "lock_wait_us" 0.0;
    grant_locally s
  end
  else begin
    let sp =
      if Obs.enabled t.obs then
        Obs.span_begin t.obs ~name:"lock.wait" ~pid:t.node ~tid:Obs.lane_lock
          ?args:
            (if Obs.tracing t.obs then Some [ ("lock", Obs.I lock) ] else None)
          ()
      else Obs.null_span
    in
    let w = enqueue_waiter t s in
    match
      Lbc_sim.Ivar.read ~info:(Printf.sprintf "lock-wait l%d" lock) w.iv
    with
    | Some g ->
        Obs.observe ~pid:t.node t.obs "lock_wait_us" (Obs.span_end t.obs sp);
        g
    | None -> raise (Protocol_error "acquire: waiter cancelled unexpectedly")
  end

let acquire_timeout t lock ~timeout =
  note_heat t lock;
  let s = state t lock in
  if s.have_token && (not s.busy) && live_waiters s.waiters = 0 then begin
    t.stats.local_grants <- t.stats.local_grants + 1;
    Obs.observe ~pid:t.node t.obs "lock_wait_us" 0.0;
    Some (grant_locally s)
  end
  else begin
    let sp =
      if Obs.enabled t.obs then
        Obs.span_begin t.obs ~name:"lock.wait" ~pid:t.node ~tid:Obs.lane_lock
          ?args:
            (if Obs.tracing t.obs then Some [ ("lock", Obs.I lock) ] else None)
          ()
      else Obs.null_span
    in
    let w = enqueue_waiter t s in
    let engine = Lbc_sim.Proc.engine () in
    Lbc_sim.Engine.schedule engine ~delay:timeout (fun () ->
        if not (Lbc_sim.Ivar.is_filled w.iv) then begin
          w.cancelled <- true;
          Lbc_sim.Ivar.fill w.iv None
        end);
    let res =
      Lbc_sim.Ivar.read
        ~info:(Printf.sprintf "lock-wait l%d (timeout %.0f)" lock timeout)
        w.iv
    in
    let wait =
      Obs.span_end t.obs sp
        ?args:
          (if Obs.tracing t.obs then
             Some [ ("granted", Obs.I (if res = None then 0 else 1)) ]
           else None)
    in
    if res <> None then Obs.observe ~pid:t.node t.obs "lock_wait_us" wait;
    res
  end

let release t lock ~wrote =
  let s = state t lock in
  if not s.busy then raise (Protocol_error "release of a lock not held");
  if wrote then begin
    s.last_write_seq <- s.held_seq;
    s.last_writer <- t.node
  end;
  s.busy <- false;
  match s.pending_remote with
  | Some r ->
      s.pending_remote <- None;
      pass_token t s ~to_:r;
      (* Local waiters must now queue through the manager again. *)
      if live_waiters s.waiters > 0 then request_token t s
  | None -> (
      match next_waiter s.waiters with
      | Some w ->
          let g = grant_locally s in
          t.stats.local_grants <- t.stats.local_grants + 1;
          Lbc_sim.Ivar.fill w.iv (Some g)
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Crash recovery: lease-expiry reclaim and rejoin reset.              *)

(* Grant to a local waiter or honour a pending forward, if idle. *)
let dispatch t s =
  if s.have_token && not s.busy then
    match next_waiter s.waiters with
    | Some w ->
        let g = grant_locally s in
        t.stats.local_grants <- t.stats.local_grants + 1;
        Lbc_sim.Ivar.fill w.iv (Some g)
    | None -> (
        match s.pending_remote with
        | Some r ->
            s.pending_remote <- None;
            pass_token t s ~to_:r
        | None -> ())

let lock_ids tables =
  let set = Hashtbl.create 64 in
  Array.iter
    (fun t -> Hashtbl.iter (fun id _ -> Hashtbl.replace set id ()) t.locks)
    tables;
  List.sort Int.compare (Hashtbl.fold (fun id () acc -> id :: acc) set [])

(* Rebuild one lock after [failed]'s lease expired.  Pure state surgery:
   no suspension point, so the caller can fence and repair every lock in
   one atomic step.  Returns the sends to perform afterwards (each may
   suspend the calling process) as thunks that re-check their
   preconditions, since earlier sends may have let the cluster move. *)
let reclaim_lock tables ~failed lock =
  let n = Array.length tables in
  let mgr = lock mod n in
  if mgr <> failed then begin
    let entry i = Hashtbl.find_opt tables.(i).locks lock in
    (* Splice [failed] out of the pending chain: its predecessor now owes
       the token directly to its successor. *)
    let f_next =
      match entry failed with
      | Some fs -> (
          match fs.pending_remote with
          | Some q when q <> failed -> Some q
          | _ -> None)
      | None -> None
    in
    Array.iteri
      (fun i _ ->
        if i <> failed then
          match entry i with
          | Some s when s.pending_remote = Some failed ->
              s.pending_remote <- f_next
          | _ -> ())
      tables;
    (* Find the surviving token owner, if any. *)
    let holder = ref None in
    Array.iteri
      (fun i _ ->
        if i <> failed then
          match entry i with
          | Some s when s.have_token -> holder := Some i
          | _ -> ())
      tables;
    let holder =
      match !holder with
      | Some h -> h
      | None when not (Hashtbl.mem tables.(mgr).locks lock) ->
          (* Token never left the manager. *)
          ignore (state tables.(mgr) lock : lstate);
          mgr
      | None ->
          (* The token went down with [failed] (held there, or in flight
             to or from it).  Rematerialize it at the manager, seeded with
             the highest sequence state any table recorded: the fields are
             monotone and travel with the token, so the maximum over all
             copies is exactly what the lost token carried. *)
          let s_m = state tables.(mgr) lock in
          let best_seq = ref 0 and best_lws = ref 0 and best_lw = ref (-1) in
          Array.iter
            (fun t_i ->
              match Hashtbl.find_opt t_i.locks lock with
              | Some s ->
                  if (s.seqno, s.last_write_seq) > (!best_seq, !best_lws)
                  then begin
                    best_seq := s.seqno;
                    best_lws := s.last_write_seq;
                    best_lw := s.last_writer
                  end
              | None -> ())
            tables;
          s_m.have_token <- true;
          s_m.requesting <- false;
          s_m.seqno <- !best_seq;
          s_m.last_write_seq <- !best_lws;
          s_m.last_writer <- !best_lw;
          mgr
    in
    (* Walk the surviving chain; everything on it keeps its links and is
       served normally. *)
    let reachable = Array.make n false in
    let rec walk i =
      reachable.(i) <- true;
      match (match entry i with Some s -> s.pending_remote | None -> None) with
      | Some j when j <> failed && not reachable.(j) -> walk j
      | _ -> i
    in
    let chain_end = walk holder in
    (state tables.(mgr) lock).tail <- chain_end;
    (* Nodes cut off from the chain (their request or its forward was lost
       with the failure) re-enter the queue from scratch. *)
    let rekicks = ref [] in
    Array.iteri
      (fun i _ ->
        if i <> failed && not reachable.(i) then
          match entry i with
          | Some s ->
              s.pending_remote <- None;
              if s.requesting then begin
                s.requesting <- false;
                if live_waiters s.waiters > 0 then rekicks := i :: !rekicks
              end
          | None -> ())
      tables;
    (fun () -> dispatch tables.(holder) (state tables.(holder) lock))
    :: List.map
         (fun i () ->
           let s = state tables.(i) lock in
           if
             (not s.have_token) && (not s.requesting)
             && live_waiters s.waiters > 0
           then request_token tables.(i) s)
         (List.sort Int.compare !rekicks)
  end
  else []

let reclaim tables ~failed =
  let n = Array.length tables in
  if n = 0 then invalid_arg "Table.reclaim: no tables";
  if failed < 0 || failed >= n then invalid_arg "Table.reclaim: bad failed node";
  (* Epoch fence (lease expiry): bump every table so that messages still
     in flight from the old epoch are discarded on receipt.  The fence and
     the per-lock surgery run in one atomic step (no suspension point), so
     the surgery sees a frozen, consistent snapshot: pre-fence traffic is
     void on arrival and no post-fence traffic exists yet.  Only then do
     the deferred sends run. *)
  let epoch = 1 + Array.fold_left (fun m t_i -> max m t_i.epoch) 0 tables in
  Array.iter (fun t_i -> t_i.epoch <- epoch) tables;
  let sends = List.concat_map (reclaim_lock tables ~failed) (lock_ids tables) in
  List.iter (fun f -> f ()) sends

let rejoin_reset t =
  Hashtbl.iter
    (fun _ s ->
      s.busy <- false;
      s.held_seq <- 0;
      s.pending_remote <- None;
      s.requesting <- false;
      Queue.clear s.waiters;
      (* Tokens this node held were invalidated by the reclaim; locks it
         manages were skipped (manager failure is outside the fault
         model), so their manager-side state stays. *)
      if manager_of t s.id <> t.node then s.have_token <- false)
    t.locks
