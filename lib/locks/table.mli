(** Distributed token-based locks (paper Section 3.3).

    Each lock has a {e manager} node determined from the lock identifier
    ([lock_id mod nodes]) and a token that always has exactly one owner.
    The owner acquires and re-acquires the lock without communication and
    holds the token until asked to pass it on.  Non-owners send a request
    to the manager, which maintains a distributed waiter queue: it appends
    the requester to the queue tail and forwards the request to the
    previous tail, which passes the token when it releases the lock.

    Each lock carries a {e sequence number} incremented on every acquire,
    and a {e last-write sequence number} updated when a writing holder
    releases.  Both travel with the token.  An {!acquire} returns the new
    sequence number and the previous write's sequence number — exactly the
    pair the coherency layer logs in lock records and uses for its apply
    ordering and acquire interlock.

    The table is transport-agnostic: it emits messages through the [send]
    function given at creation and consumes incoming messages via
    {!handle}.  Locks are two-phase in intent: the caller (the coherency
    layer's transaction wrapper) acquires during the transaction and
    releases everything at commit. *)

type grant = {
  seqno : int;  (** sequence number stamped on this acquire (starts at 1) *)
  prev_write_seq : int;
      (** sequence number of the last writing acquire before this one;
          0 if the lock was never write-held *)
  last_writer : int;
      (** node that performed that last writing acquire; -1 if none.
          Lazy propagation fetches pending log records from this node. *)
}

type msg =
  | Request of { epoch : int; lock : int; requester : int }
      (** to the lock's manager *)
  | Forward of { epoch : int; lock : int; requester : int }
      (** manager to queue tail *)
  | Token of {
      epoch : int;
      lock : int;
      seqno : int;
      last_write_seq : int;
      last_writer : int;
    }  (** ownership transfer to a requester *)

val msg_size : msg -> int
(** Nominal wire size in bytes, for traffic accounting. *)

val pp_msg : Format.formatter -> msg -> unit

exception Protocol_error of string

type t

val create : node:int -> nodes:int -> send:(dst:int -> msg -> unit) -> unit -> t
(** One table per node.  [send] must deliver [msg] to the same lock table
    on [dst] (via {!handle}); it may block the calling process. *)

val set_obs : t -> Lbc_obs.Obs.t -> unit
(** Install a trace/metrics sink: queued acquisitions become
    [lock.wait] spans feeding the [lock_wait_us] histogram (fast local
    grants observe 0), token traffic becomes [token.pass] instants and
    [token_hops] / [token_requests] counters.  Defaults to
    [Obs.disabled]. *)

val node : t -> int
val manager_of : t -> int -> int
(** The manager node of a lock id. *)

val handle : t -> src:int -> msg -> unit
(** Feed an incoming lock message (called by the node's dispatcher). *)

val heat_key : int -> string
(** Obs counter key counting this node's acquires of one lock
    ([lock_acquires:<id>], bumped by {!acquire}/{!acquire_timeout} when
    tracing is on).  An on-demand rejoin drains its cold replay chains
    hottest-lock-first by reading these back. *)

val acquire : t -> int -> grant
(** Block until the lock is held by this node.  Re-entrant acquisition by
    a second local process queues FIFO behind the current holder. *)

val acquire_timeout : t -> int -> timeout:float -> grant option
(** Like {!acquire} but gives up after [timeout] µs of virtual time,
    returning [None].  Two-phase locking can deadlock (the paper assumes
    applications avoid it); timeouts let a transaction abort and retry
    instead.  A token that arrives after the timeout is simply cached. *)

val release : t -> int -> wrote:bool -> unit
(** Release the lock; [wrote] records whether the holder's transaction
    modified data under the lock (it advances the last-write sequence
    number that receivers synchronize on). *)

val held : t -> int -> bool
(** Is the lock currently held by a local process? *)

val has_token : t -> int -> bool

val epoch : t -> int
(** Current lease epoch.  Messages stamped with an older epoch are
    discarded by {!handle}; {!reclaim} advances it on every table. *)

(** {1 Crash recovery}

    The lock service tolerates the crash of a node that manages no locks
    involved in the failure: after its lease expires, {!reclaim} rebuilds
    every lock's distributed state without it.  A crash of a lock's
    {e manager} is outside the fault model and leaves that lock broken. *)

val reclaim : t array -> failed:int -> unit
(** Lease-expiry recovery, run by an omniscient recovery agent over the
    tables of {e all} nodes (it stands in for the survivor-side state
    exchange a real lease/epoch protocol would perform).  Must be called
    from a simulated process.

    It (1) bumps the epoch on every table so in-flight lock traffic is
    fenced off (discarded on arrival), then — atomically with the fence,
    so no new traffic can race the surgery — per lock not managed by
    [failed]: splices [failed] out of
    the token-forwarding chain, rematerializes the token at the manager if
    it was lost with the failure (seeded with the highest sequence state
    any surviving table recorded — the fields are monotone, so that is
    what the lost token carried), repairs the manager's queue tail, and
    re-enqueues requesters whose request or forward was lost.  Waiting
    acquires on surviving nodes are served in a possibly different order
    afterwards, but none are lost. *)

val rejoin_reset : t -> unit
(** Reset a crashed node's table before it re-enters the protocol: local
    protocol state is cleared, waiters (owned by killed processes) are
    discarded, and tokens it held are forgotten — the reclaim re-issued
    them.  Manager-side state of locks this node manages is kept. *)

type stats = {
  mutable local_grants : int;  (** acquires satisfied without communication *)
  mutable remote_grants : int;  (** acquires that waited for the token *)
  mutable tokens_passed : int;
  mutable requests_sent : int;
  mutable stale_msgs : int;
      (** messages discarded by the epoch fence after a reclaim *)
}

val stats : t -> stats
