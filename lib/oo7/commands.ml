(* The OO7 traversal as a logged command (adaptive logging).

   A whole update traversal is one deterministic function of the
   database image: the visit order is fixed by the assembly hierarchy
   and the composite directory, T7's descent salt comes from the schema
   seed, and every store depends only on bytes read under the
   transaction's lock.  So instead of logging the traversal's new-value
   ranges (T3-C dirties kilobytes of index pages), a command record
   names this operation and carries the schema configuration plus the
   traversal kind — a few dozen bytes — and replayers re-execute the
   traversal against their own copy of the pre-state. *)

open Lbc_util

let traversal_op = 1

(* Stable tags for the traversal kinds; part of the persistent format. *)
let kind_tags =
  Traversal.
    [
      (T1, 0); (T2 A, 1); (T2 B, 2); (T2 C, 3); (T3 A, 4); (T3 B, 5);
      (T3 C, 6); (T4, 7); (T5, 8); (T6, 9); (T7, 10); (T12 A, 11);
      (T12 C, 12);
    ]

let tag_of_kind k = List.assoc k kind_tags
let kind_of_tag t =
  match List.find_opt (fun (_, t') -> t = t') kind_tags with
  | Some (k, _) -> Some k
  | None -> None

let traversal_params ~(config : Schema.config) ~region kind =
  let w = Codec.writer ~capacity:32 () in
  Codec.varint w config.num_composites;
  Codec.varint w config.atomics_per_composite;
  Codec.varint w config.connections_per_atomic;
  Codec.varint w config.assembly_fanout;
  Codec.varint w config.assembly_levels;
  Codec.varint w config.composites_per_base;
  Codec.varint w config.date_range;
  Codec.varint w config.seed;
  Codec.varint w region;
  Codec.varint w (tag_of_kind kind);
  Codec.contents w

let decode_params params =
  let r = Codec.reader params in
  let num_composites = Codec.get_varint r in
  let atomics_per_composite = Codec.get_varint r in
  let connections_per_atomic = Codec.get_varint r in
  let assembly_fanout = Codec.get_varint r in
  let assembly_levels = Codec.get_varint r in
  let composites_per_base = Codec.get_varint r in
  let date_range = Codec.get_varint r in
  let seed = Codec.get_varint r in
  let region = Codec.get_varint r in
  let tag = Codec.get_varint r in
  let config =
    {
      Schema.num_composites;
      atomics_per_composite;
      connections_per_atomic;
      assembly_fanout;
      assembly_levels;
      composites_per_base;
      date_range;
      seed;
    }
  in
  match kind_of_tag tag with
  | Some kind -> (config, region, kind)
  | None -> raise (Codec.Truncated (Printf.sprintf "oo7 kind tag %d" tag))

let run_traversal (mem : Lbc_wal.Command.mem) ~params =
  let config, region, kind = decode_params params in
  let heap_mem =
    {
      Lbc_pheap.Heap.read = (fun ~offset ~len -> mem.read ~region ~offset ~len);
      write = (fun ~offset b -> mem.write ~region ~offset b);
    }
  in
  let db =
    Database.attach_mem config heap_mem ~size:(Schema.region_size config)
  in
  ignore (Traversal.run db kind : Traversal.result)

(* Registration is explicit: the OCaml linker drops modules nothing
   references, so a bare top-level side effect would silently vanish
   from binaries that replay logs without running traversals.  Called by
   Runner.setup and by the CLIs before any decode/replay. *)
let ensure =
  let registered = ref false in
  fun () ->
    if not !registered then begin
      registered := true;
      Lbc_wal.Command.register ~op:traversal_op ~name:"oo7-traversal"
        (fun mem ~params -> run_traversal mem ~params)
    end
