(** The OO7 traversal as a logged command (adaptive logging).

    An update traversal is a deterministic function of the database
    image, so a command record carrying only the schema configuration,
    the target region and the traversal kind lets replayers re-execute
    it instead of shipping its new-value ranges.  The interlock
    guarantees a replayer's pre-state equals the writer's, so the
    re-execution is byte-identical. *)

val traversal_op : int
(** Operation id registered for OO7 traversals. *)

val traversal_params :
  config:Schema.config -> region:int -> Traversal.kind -> Bytes.t
(** Parameter blob for {!Lbc_rvm.Rvm.set_command}: the schema
    configuration (varints), the region id, and the traversal kind. *)

val decode_params : Bytes.t -> Schema.config * int * Traversal.kind
(** @raise Lbc_util.Codec.Truncated on malformed parameters. *)

val ensure : unit -> unit
(** Register the traversal operation with {!Lbc_wal.Command} (idempotent).
    Must run before any log decode or replay that may meet an OO7 command
    record — called by [Runner.setup]; CLIs call it at startup. *)
