(** Run OO7 traversals on a coherency cluster and collect the paper's
    measurements.

    Each run is the paper's experimental unit: "a single transaction (and
    a single segment lock) in which one node performs the traversal and
    another receives the log tail and installs the updates". *)

type outcome = {
  result : Traversal.result;
  record : Lbc_wal.Record.txn;  (** the committed log tail, as logged *)
  value : Lbc_wal.Record.txn;
      (** its value-record equivalent (equal to [record] unless
          [config.log_mode] chose a command encoding) *)
  profile : Lbc_costmodel.Model.traversal_profile;
      (** Table 3 row: updates, unique bytes, message bytes, pages.
          Byte/page accounting is over the value form; [message_bytes]
          is the wire size of what was actually sent. *)
  elapsed : float;  (** virtual µs from transaction begin to commit *)
}

exception Traversal_incomplete of { traversal : string; schema : string }
(** {!run}'s cluster quiesced without the traversal transaction
    committing (a deadlock or a crashed writer). *)

val setup :
  ?config:Lbc_core.Config.t ->
  ?sched:Lbc_sim.Schedule.policy ->
  ?backend:Lbc_core.Platform.backend ->
  ?nodes:int ->
  Schema.config ->
  Lbc_core.Cluster.t
(** Build a cluster whose region 0 holds a freshly built OO7 database,
    mapped by every node.  Lock 0 is the single segment lock.  [sched]
    selects the engine's same-time schedule policy (for the explorer);
    [backend] (default sim) selects the platform. *)

val region : int
val lock : int

val run :
  cluster:Lbc_core.Cluster.t ->
  writer:int ->
  Schema.config ->
  Traversal.kind ->
  outcome
(** Execute one traversal as a single transaction on [writer], run the
    simulation to quiescence, and return the measurements. *)

val pages_updated : Lbc_wal.Record.txn -> int
(** Distinct 8 KB pages covered by a record's ranges. *)
