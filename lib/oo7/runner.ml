type outcome = {
  result : Traversal.result;
  record : Lbc_wal.Record.txn;
  value : Lbc_wal.Record.txn;
  profile : Lbc_costmodel.Model.traversal_profile;
  elapsed : float;
}

exception Traversal_incomplete of { traversal : string; schema : string }

let () =
  Printexc.register_printer (function
    | Traversal_incomplete { traversal; schema } ->
        Some
          (Printf.sprintf
             "Runner.Traversal_incomplete(%s on %s schema): the simulation \
              quiesced before the traversal transaction committed"
             traversal schema)
    | _ -> None)

let region = 0
let lock = 0
let page_size = Lbc_costmodel.Table2.page_size

let setup ?(config = Lbc_core.Config.default) ?sched ?backend ?(nodes = 2)
    schema =
  Commands.ensure ();
  let cluster = Lbc_core.Cluster.create ~config ?sched ?backend ~nodes () in
  Lbc_core.Cluster.add_region cluster ~id:region
    ~size:(Schema.region_size schema);
  let image = Builder.build schema in
  Lbc_storage.Dev.load (Lbc_core.Cluster.region_dev cluster region) image;
  Lbc_core.Cluster.map_region_all cluster ~region;
  cluster

let pages_updated (record : Lbc_wal.Record.txn) =
  let module Iset = Set.Make (Int) in
  List.fold_left
    (fun acc r ->
      let first = r.Lbc_wal.Record.offset / page_size in
      let last =
        (r.Lbc_wal.Record.offset + Bytes.length r.Lbc_wal.Record.data - 1)
        / page_size
      in
      let rec add acc p = if p > last then acc else add (Iset.add p acc) (p + 1) in
      add acc first)
    Iset.empty record.Lbc_wal.Record.ranges
  |> Iset.cardinal

let run ~cluster ~writer schema kind =
  let outcome = ref None in
  Lbc_core.Cluster.spawn cluster ~node:writer (fun node ->
      let rvm_stats = Lbc_rvm.Rvm.stats (Lbc_core.Node.rvm node) in
      let updates0 = rvm_stats.Lbc_rvm.Rvm.set_ranges in
      let ordered0 = rvm_stats.Lbc_rvm.Rvm.ordered_calls in
      let redundant0 = rvm_stats.Lbc_rvm.Rvm.redundant_calls in
      let t0 = Lbc_sim.Proc.now () in
      let txn = Lbc_core.Node.Txn.begin_ node in
      Lbc_core.Node.Txn.acquire txn lock;
      let db = Database.attach_txn schema txn ~region in
      let result = Traversal.run db kind in
      (* Declare the traversal as a replayable command; whether the
         commit logs it as one is [config.log_mode]'s call. *)
      Lbc_core.Node.Txn.set_command txn ~op:Commands.traversal_op
        ~params:(Commands.traversal_params ~config:schema ~region kind)
        ~regions:[ region ];
      let committed = Lbc_core.Node.Txn.commit_outcome txn in
      let record = committed.Lbc_rvm.Rvm.record in
      let value = committed.Lbc_rvm.Rvm.value in
      let elapsed = Lbc_sim.Proc.now () -. t0 in
      (* Table 3 is defined over the transaction's effect (its value
         form); [message_bytes] is what actually went on the wire, so
         command encodings show up as the wire-byte delta. *)
      let profile =
        {
          Lbc_costmodel.Model.updates =
            rvm_stats.Lbc_rvm.Rvm.set_ranges - updates0;
          unique_bytes = Lbc_wal.Record.ranges_bytes value;
          message_bytes = Lbc_core.Wire.size record;
          pages_updated = pages_updated value;
          ranges = List.length value.Lbc_wal.Record.ranges;
          ordered_updates = rvm_stats.Lbc_rvm.Rvm.ordered_calls - ordered0;
          redundant_updates =
            rvm_stats.Lbc_rvm.Rvm.redundant_calls - redundant0;
        }
      in
      outcome := Some { result; record; value; profile; elapsed });
  Lbc_core.Cluster.run cluster;
  match !outcome with
  | Some o -> o
  | None ->
      raise
        (Traversal_incomplete
           { traversal = Traversal.name kind; schema = Schema.describe schema })
