open Lbc_pheap

(** The OO7 benchmark database schema (Carey, DeWitt & Naughton 1993), as
    used by the paper: a design library of composite parts, each a graph
    of atomic parts, under an assembly hierarchy; plus a part index over
    the atomic parts' build-date field.

    Object sizes follow the paper: composite and atomic part objects are
    "each roughly 200 bytes long" — we pad both to exactly 200 so that the
    atomic parts of one composite cluster on virtual-memory pages the way
    the paper's heap allocation did. *)

type config = {
  num_composites : int;  (** design-library size (paper: 500) *)
  atomics_per_composite : int;  (** graph size (paper: 20) *)
  connections_per_atomic : int;  (** out-degree (paper/OO7 small: 3) *)
  assembly_fanout : int;  (** children per complex assembly (3) *)
  assembly_levels : int;  (** hierarchy depth (7 → 729 base assemblies) *)
  composites_per_base : int;  (** composite parts per base assembly (3) *)
  date_range : int;  (** initial build dates drawn from [0, date_range) *)
  seed : int;
}

val small : config
(** The paper's configuration: 500 composites x 20 atomics, 729 base
    assemblies — 2187 composite-part visits per full traversal. *)

val tiny : config
(** A scaled-down database for unit tests. *)

val describe : config -> string
(** "small", "tiny", or a short summary of a custom configuration — for
    error messages. *)

val base_assemblies : config -> int
(** [fanout^(levels-1)]. *)

val composite_visits : config -> int
(** Composite parts visited by a full traversal:
    [base_assemblies * composites_per_base] (2187 for [small]). *)

val atomic_part : Layout.t
(** id, date, x, y, doc_id, conn_to[i], conn_type[i] — padded to 200. *)

val conn_to : int -> string
(** Field name of the pointer to the i-th outgoing connection object. *)

val max_connections : int

val connection : Layout.t
(** A connection object: from, to, type, length — padded to 64 bytes, as
    in OO7's C++ heap. *)

val doc_size : int
(** Bytes of the per-composite document object (OO7: 2000). *)

val composite_part : config -> Layout.t
(** id, date, root_part, document, parts[atomics_per_composite] — padded
    to 200 when it fits. *)

val cluster_size : config -> int
(** Bytes one composite part occupies together with its atomic parts,
    connection objects and document — > 8 KB in the paper's configuration,
    which is why each composite's updates land on pages of their own. *)

val part_slot : int -> string

val assembly : config -> Layout.t
(** kind (0 complex / 1 base), id, children/components — padded to 64. *)

val child_slot : int -> string

val header : Layout.t
(** Region-resident database header: magic, root assembly, composite
    directory, object counts, index slots. *)

val db_magic : int64

val region_size : config -> int
(** A region size ample for the database plus index churn. *)
