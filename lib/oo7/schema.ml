open Lbc_pheap

type config = {
  num_composites : int;
  atomics_per_composite : int;
  connections_per_atomic : int;
  assembly_fanout : int;
  assembly_levels : int;
  composites_per_base : int;
  date_range : int;
  seed : int;
}

let small =
  {
    num_composites = 500;
    atomics_per_composite = 20;
    connections_per_atomic = 3;
    assembly_fanout = 3;
    assembly_levels = 7;
    composites_per_base = 3;
    date_range = 15_000;
    seed = 1994;
  }

let tiny =
  {
    num_composites = 12;
    atomics_per_composite = 4;
    connections_per_atomic = 3;
    assembly_fanout = 2;
    assembly_levels = 3;
    composites_per_base = 2;
    date_range = 1000;
    seed = 42;
  }

let describe c =
  if c = small then "small"
  else if c = tiny then "tiny"
  else Printf.sprintf "custom(%dx%d)" c.num_composites c.atomics_per_composite

let rec pow b e = if e = 0 then 1 else b * pow b (e - 1)
let base_assemblies c = pow c.assembly_fanout (c.assembly_levels - 1)
let composite_visits c = base_assemblies c * c.composites_per_base

let max_connections = 3
let conn_to i = Printf.sprintf "conn_to%d" i

let atomic_part =
  Layout.make ~pad_to:200
    ([ ("id", 8); ("date", 8); ("x", 8); ("y", 8); ("doc_id", 8) ]
    @ List.init max_connections (fun i -> (conn_to i, 8)))

let connection =
  Layout.make ~pad_to:64 [ ("from", 8); ("to", 8); ("type", 8); ("length", 8) ]

let doc_size = 2000

let part_slot i = Printf.sprintf "part%d" i

let composite_part c =
  let fields =
    [ ("id", 8); ("date", 8); ("root_part", 8); ("document", 8) ]
    @ List.init c.atomics_per_composite (fun i -> (part_slot i, 8))
  in
  let natural = List.fold_left (fun a (_, s) -> a + s) 0 fields in
  if natural <= 200 then Layout.make ~pad_to:200 fields else Layout.make fields

let child_slot i = Printf.sprintf "child%d" i

let assembly c =
  let slots = max c.assembly_fanout c.composites_per_base in
  let fields =
    [ ("kind", 8); ("id", 8) ] @ List.init slots (fun i -> (child_slot i, 8))
  in
  let natural = List.fold_left (fun a (_, s) -> a + s) 0 fields in
  if natural <= 64 then Layout.make ~pad_to:64 fields else Layout.make fields

let header =
  Layout.make
    [
      ("db_magic", 8);
      ("root_assembly", 8);
      ("n_composites", 8);
      ("composite_dir", 8);
      ("dir_capacity", 8);
      ("index_slots", Iavl.slots_size);
    ]

let db_magic = 0x4F4F374442L (* "OO7DB" *)

let total_assemblies c =
  (* complete tree: 1 + f + f^2 + ... + f^(levels-1) *)
  let rec sum l acc p =
    if l = 0 then acc else sum (l - 1) (acc + p) (p * c.assembly_fanout)
  in
  sum c.assembly_levels 0 1

let cluster_size c =
  Layout.size (composite_part c)
  + (c.atomics_per_composite
    * (Layout.size atomic_part
      + (c.connections_per_atomic * Layout.size connection)))
  + doc_size

let region_size c =
  let atoms = c.num_composites * c.atomics_per_composite in
  let objects =
    (c.num_composites * cluster_size c)
    + (total_assemblies c * Layout.size (assembly c))
    + (c.num_composites * 8)
    + (atoms * Iavl.node_size)
  in
  let with_headers =
    Heap.header_size + Layout.size header + objects
  in
  (* Slack for alignment, index churn and structural inserts (the
     directory has 2x capacity and inserted clusters need room). *)
  let padded = with_headers + (with_headers / 4) + (8 * cluster_size c) + 65536 in
  (padded + 65535) / 65536 * 65536
