type 'm t = {
  engine : Lbc_sim.Engine.t;
  nodes : int;
  params : Params.t;
  size : 'm -> int;
  channels : 'm Lbc_sim.Mailbox.t array array;  (* channels.(src).(dst) *)
  drop : bool array array;
  messages_sent : int array;
  bytes_sent : int array;
}

let create ?(params = Params.an1) ~engine ~nodes ~size () =
  if nodes <= 0 then invalid_arg "Fabric.create: nodes must be positive";
  {
    engine;
    nodes;
    params;
    size;
    channels =
      Array.init nodes (fun _ ->
          Array.init nodes (fun _ -> Lbc_sim.Mailbox.create ()));
    drop = Array.make_matrix nodes nodes false;
    messages_sent = Array.make nodes 0;
    bytes_sent = Array.make nodes 0;
  }

let engine t = t.engine
let nodes t = t.nodes
let params t = t.params

let check_node t who n =
  if n < 0 || n >= t.nodes then
    invalid_arg (Printf.sprintf "Fabric: bad %s node %d" who n)

let send t ~src ~dst msg =
  check_node t "src" src;
  check_node t "dst" dst;
  if src = dst then invalid_arg "Fabric.send: src = dst";
  let len = t.size msg in
  t.messages_sent.(src) <- t.messages_sent.(src) + 1;
  t.bytes_sent.(src) <- t.bytes_sent.(src) + len;
  (* Block the sender for the writev cost, then put the message on the wire. *)
  Lbc_sim.Proc.sleep (Params.send_cost t.params len);
  if not t.drop.(src).(dst) then begin
    let mailbox = t.channels.(src).(dst) in
    Lbc_sim.Engine.schedule t.engine ~delay:t.params.Params.propagation
      (fun () -> Lbc_sim.Mailbox.send mailbox msg)
  end

let broadcast t ~src ~dsts msg =
  check_node t "src" src;
  let dsts =
    List.sort_uniq Int.compare (List.filter (fun d -> d <> src) dsts)
  in
  List.iter (fun d -> check_node t "dst" d) dsts;
  let len = t.size msg in
  t.messages_sent.(src) <- t.messages_sent.(src) + 1;
  t.bytes_sent.(src) <- t.bytes_sent.(src) + len;
  Lbc_sim.Proc.sleep (Params.send_cost t.params len);
  List.iter
    (fun dst ->
      if not t.drop.(src).(dst) then begin
        let mailbox = t.channels.(src).(dst) in
        Lbc_sim.Engine.schedule t.engine ~delay:t.params.Params.propagation
          (fun () -> Lbc_sim.Mailbox.send mailbox msg)
      end)
    dsts

let recv t ~dst ~src =
  check_node t "src" src;
  check_node t "dst" dst;
  Lbc_sim.Mailbox.recv t.channels.(src).(dst)

let try_recv t ~dst ~src =
  check_node t "src" src;
  check_node t "dst" dst;
  Lbc_sim.Mailbox.try_recv t.channels.(src).(dst)

let set_drop t ~src ~dst v =
  check_node t "src" src;
  check_node t "dst" dst;
  t.drop.(src).(dst) <- v

let messages_sent t ~src =
  check_node t "src" src;
  t.messages_sent.(src)

let bytes_sent t ~src =
  check_node t "src" src;
  t.bytes_sent.(src)

let total_messages t = Array.fold_left ( + ) 0 t.messages_sent
let total_bytes t = Array.fold_left ( + ) 0 t.bytes_sent
