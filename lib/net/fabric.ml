module Obs = Lbc_obs.Obs

type 'm t = {
  engine : Lbc_sim.Engine.t;
  nodes : int;
  params : Params.t;
  size : 'm -> int;
  channels : 'm Lbc_sim.Mailbox.t array array;  (* channels.(src).(dst) *)
  drop : bool array array;
  drop_filter : ('m -> bool) option array array;
  down : bool array;
  messages_sent : int array;
  bytes_sent : int array;
  dropped : int array array;  (* dropped.(src).(dst) *)
  mutable obs : Obs.t;
}

let create ?(params = Params.an1) ~engine ~nodes ~size () =
  if nodes <= 0 then invalid_arg "Fabric.create: nodes must be positive";
  {
    engine;
    nodes;
    params;
    size;
    channels =
      Array.init nodes (fun _ ->
          Array.init nodes (fun _ -> Lbc_sim.Mailbox.create ()));
    drop = Array.make_matrix nodes nodes false;
    drop_filter = Array.make_matrix nodes nodes None;
    down = Array.make nodes false;
    messages_sent = Array.make nodes 0;
    bytes_sent = Array.make nodes 0;
    dropped = Array.make_matrix nodes nodes 0;
    obs = Obs.disabled;
  }

let set_obs t obs = t.obs <- obs
let engine t = t.engine
let nodes t = t.nodes
let params t = t.params

let check_node t who n =
  if n < 0 || n >= t.nodes then
    invalid_arg (Printf.sprintf "Fabric: bad %s node %d" who n)

let count_drop t ~src ~dst =
  t.dropped.(src).(dst) <- t.dropped.(src).(dst) + 1;
  if Obs.enabled t.obs then begin
    Obs.count ~pid:dst t.obs "net_drops" 1;
    (* Args only feed the opt-in JSON trace — skip building the list
       (tuple+box allocations) when just the flight ring is live.
       Same guard on every hot event below. *)
    Obs.instant t.obs ~name:"net.drop" ~pid:dst ~tid:Obs.lane_net
      ?args:
        (if Obs.tracing t.obs then Some [ ("src", Obs.I src) ] else None)
      ()
  end

let should_drop t ~src ~dst msg =
  t.drop.(src).(dst)
  || (match t.drop_filter.(src).(dst) with Some f -> f msg | None -> false)

(* Put one message on the wire: it is dropped at delivery time if the
   destination is down by then (the crash loses in-flight traffic). *)
let deliver t ~src ~dst ~len msg =
  if should_drop t ~src ~dst msg then count_drop t ~src ~dst
  else
    Lbc_sim.Engine.schedule t.engine ~delay:t.params.Params.propagation
      (fun () ->
        if t.down.(dst) then count_drop t ~src ~dst
        else begin
          if Obs.enabled t.obs then
            Obs.instant t.obs ~name:"net.deliver" ~pid:dst ~tid:Obs.lane_net
              ?args:
                (if Obs.tracing t.obs then
                   Some [ ("src", Obs.I src); ("bytes", Obs.I len) ]
                 else None)
              ();
          Lbc_sim.Mailbox.send t.channels.(src).(dst) msg
        end)

let send_len t ~src ~dst ~len msg =
  check_node t "src" src;
  check_node t "dst" dst;
  if src = dst then invalid_arg "Fabric.send: src = dst";
  if t.down.(src) then count_drop t ~src ~dst
  else begin
    t.messages_sent.(src) <- t.messages_sent.(src) + 1;
    t.bytes_sent.(src) <- t.bytes_sent.(src) + len;
    let sp =
      if Obs.enabled t.obs then begin
        Obs.count ~pid:src t.obs "net_msgs" 1;
        Obs.count ~pid:src t.obs "net_bytes" len;
        Obs.span_begin t.obs ~name:"net.send" ~pid:src ~tid:Obs.lane_net
          ?args:
            (if Obs.tracing t.obs then
               Some [ ("dst", Obs.I dst); ("bytes", Obs.I len) ]
             else None)
          ()
      end
      else Obs.null_span
    in
    (* Block the sender for the writev cost, then put the message on the
       wire. *)
    Lbc_sim.Proc.sleep (Params.send_cost t.params len);
    deliver t ~src ~dst ~len msg;
    ignore (Obs.span_end t.obs sp : float)
  end

let send t ~src ~dst msg = send_len t ~src ~dst ~len:(t.size msg) msg

(* Length-prefix framing for gather lists: a real transport would writev
   [u32 total; slices...] straight from the iovec. *)
let framed_length iov = 4 + Lbc_util.Slice.iov_length iov
let send_v t ~src ~dst ~iov msg = send_len t ~src ~dst ~len:(framed_length iov) msg

let broadcast_len t ~src ~dsts ~len msg =
  check_node t "src" src;
  let dsts =
    List.sort_uniq Int.compare (List.filter (fun d -> d <> src) dsts)
  in
  List.iter (fun d -> check_node t "dst" d) dsts;
  if t.down.(src) then List.iter (fun dst -> count_drop t ~src ~dst) dsts
  else begin
    t.messages_sent.(src) <- t.messages_sent.(src) + 1;
    t.bytes_sent.(src) <- t.bytes_sent.(src) + len;
    let sp =
      if Obs.enabled t.obs then begin
        Obs.count ~pid:src t.obs "net_msgs" 1;
        Obs.count ~pid:src t.obs "net_bytes" len;
        Obs.span_begin t.obs ~name:"net.send" ~pid:src ~tid:Obs.lane_net
          ?args:
            (if Obs.tracing t.obs then
               Some [ ("dsts", Obs.I (List.length dsts)); ("bytes", Obs.I len) ]
             else None)
          ()
      end
      else Obs.null_span
    in
    Lbc_sim.Proc.sleep (Params.send_cost t.params len);
    List.iter (fun dst -> deliver t ~src ~dst ~len msg) dsts;
    ignore (Obs.span_end t.obs sp : float)
  end

let broadcast t ~src ~dsts msg = broadcast_len t ~src ~dsts ~len:(t.size msg) msg

let broadcast_v t ~src ~dsts ~iov msg =
  broadcast_len t ~src ~dsts ~len:(framed_length iov) msg

let recv t ~dst ~src =
  check_node t "src" src;
  check_node t "dst" dst;
  Lbc_sim.Mailbox.recv
    ~info:(Printf.sprintf "net recv %d<-%d" dst src)
    t.channels.(src).(dst)

let try_recv t ~dst ~src =
  check_node t "src" src;
  check_node t "dst" dst;
  Lbc_sim.Mailbox.try_recv t.channels.(src).(dst)

let set_drop t ~src ~dst v =
  check_node t "src" src;
  check_node t "dst" dst;
  t.drop.(src).(dst) <- v

let set_drop_filter t ~src ~dst f =
  check_node t "src" src;
  check_node t "dst" dst;
  t.drop_filter.(src).(dst) <- f

let purge_inbound t node =
  for src = 0 to t.nodes - 1 do
    if src <> node then
      let mailbox = t.channels.(src).(node) in
      let rec drain () =
        match Lbc_sim.Mailbox.try_recv mailbox with
        | None -> ()
        | Some _ ->
            count_drop t ~src ~dst:node;
            drain ()
      in
      drain ()
  done

let set_down t node v =
  check_node t "node" node;
  t.down.(node) <- v;
  (* A crashing node loses the messages its receiver threads had not yet
     consumed; count them as dropped traffic. *)
  if v then purge_inbound t node

let is_down t node =
  check_node t "node" node;
  t.down.(node)

let messages_sent t ~src =
  check_node t "src" src;
  t.messages_sent.(src)

let bytes_sent t ~src =
  check_node t "src" src;
  t.bytes_sent.(src)

let messages_dropped t ~src ~dst =
  check_node t "src" src;
  check_node t "dst" dst;
  t.dropped.(src).(dst)

let total_messages t = Array.fold_left ( + ) 0 t.messages_sent
let total_bytes t = Array.fold_left ( + ) 0 t.bytes_sent

let total_dropped t =
  Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 t.dropped
