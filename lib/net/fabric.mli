(** Simulated network fabric: reliable FIFO point-to-point channels between
    a fixed set of nodes, like the TCP connections of the prototype.

    The fabric is polymorphic in the message type; callers supply a [size]
    function so that costs and traffic statistics reflect the bytes a real
    implementation would move.  Ordering guarantee: messages from one
    sender to one receiver are delivered in send order (TCP); there is no
    ordering across different sender/receiver pairs — exactly the situation
    that forces the paper's sequence-number interlock (Section 3.4).

    Fault injection: individual channels can be made lossy ({!set_drop},
    {!set_drop_filter}) and whole nodes can be taken down ({!set_down}).
    Every message discarded for any reason is counted per (src, dst) pair
    and reported by {!messages_dropped} / {!total_dropped}. *)

type 'm t

val create :
  ?params:Params.t -> engine:Lbc_sim.Engine.t -> nodes:int -> size:('m -> int) -> unit -> 'm t
(** [params] defaults to {!Params.an1}. *)

val set_obs : 'm t -> Lbc_obs.Obs.t -> unit
(** Install a trace/metrics sink: sends become [net.send] spans,
    deliveries and drops become instants, and [net_msgs] / [net_bytes] /
    [net_drops] counters accumulate.  Defaults to [Obs.disabled]. *)

val engine : 'm t -> Lbc_sim.Engine.t
val nodes : 'm t -> int
val params : 'm t -> Params.t

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Transmit one message.  Must be called from a simulated process; blocks
    the caller for the sender-side cost.  Self-sends are rejected. *)

val broadcast : 'm t -> src:int -> dsts:int list -> 'm -> unit
(** Multicast: one wire transmission reaching every destination (the
    hardware the paper's Section 4.3.1 wishes for).  The sender pays the
    cost of a single send; self and duplicate destinations are ignored. *)

val send_v :
  'm t -> src:int -> dst:int -> iov:Lbc_util.Slice.t list -> 'm -> unit
(** Like {!send}, but for a message whose payload is the gather list
    [iov]: the wire length is [4 + Slice.iov_length iov] (u32 length
    prefix + the slices, writev-style), independent of the fabric's
    [size] function.  No byte of [iov] is copied on the send path. *)

val broadcast_v :
  'm t -> src:int -> dsts:int list -> iov:Lbc_util.Slice.t list -> 'm -> unit
(** {!broadcast} with {!send_v}'s gather-list framing. *)

val recv : 'm t -> dst:int -> src:int -> 'm
(** Blocking receive on the channel from [src] to [dst] (one receiver
    thread per peer channel, as in the prototype). *)

val try_recv : 'm t -> dst:int -> src:int -> 'm option

(** {1 Fault injection} *)

val set_drop : 'm t -> src:int -> dst:int -> bool -> unit
(** While set, messages from [src] to [dst] are discarded (and counted). *)

val set_drop_filter : 'm t -> src:int -> dst:int -> ('m -> bool) option -> unit
(** Selective loss: while a filter is installed, messages from [src] to
    [dst] for which it returns [true] are discarded (and counted).
    Composes with {!set_drop} (either one dropping suffices).  Chaos tests
    use this to lose only data-plane traffic while keeping the lock
    control plane reliable. *)

val set_down : 'm t -> int -> bool -> unit
(** [set_down t n true] models a crash of node [n]: messages to or from
    [n] are discarded from now on, and messages already queued in [n]'s
    inbound channels are purged (all counted as drops).  Messages in
    flight on the wire are lost when they arrive.  [set_down t n false]
    restores connectivity (the channels start empty). *)

val is_down : 'm t -> int -> bool

(** {1 Traffic accounting} *)

val messages_sent : 'm t -> src:int -> int
val bytes_sent : 'm t -> src:int -> int
val messages_dropped : 'm t -> src:int -> dst:int -> int
(** Messages from [src] to [dst] discarded by fault injection. *)

val total_messages : 'm t -> int
val total_bytes : 'm t -> int

val total_dropped : 'm t -> int
(** Total messages discarded across all channels. *)
