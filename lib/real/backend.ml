(* The real platform: each node is an OCaml 5 domain running its own
   wall-clock {!Rt}; delivery is a full socketpair mesh with the same
   u32-prefix framing the sim fabric accounts for; devices are real
   files with real [fsync].

   Data path of one [send_v]:

   - the sending node's domain encodes the message header
     ({!Msg_codec.encode}) and gather-writes prefix + header + payload
     slices to the destination's socket ({!Frame.write}) — the record
     bytes go from the log arena to the kernel without concatenation;
   - a reader thread blocked on that socket reassembles the frame
     (tolerating arbitrary short reads), decodes it — payload slices are
     windows into the frame buffer — and {!Rt.inject}s delivery into the
     destination's engine;
   - the injected event performs [Mailbox.send] on the (dst, src)
     channel, and the per-channel dispatcher daemon hands the message to
     [Node.handle], exactly as in the sim.  FIFO per channel is the
     socket's byte order; nothing else is ordered, which is the same
     contract the sim fabric gives.

   Completion ({!run}) is quiescence: every non-daemon task spawned has
   returned, every frame sent has been handled, and every engine is
   idle — sampled stably three times, since a message in flight is
   invisible to any single snapshot. *)

module Msg = Lbc_core.Msg
module Engine = Lbc_sim.Engine
module Proc = Lbc_sim.Proc
module Mailbox = Lbc_sim.Mailbox

let factory ~nodes ~(config : Lbc_core.Config.t) :
    (module Lbc_core.Platform.S) =
  if config.Lbc_core.Config.charge_costs then
    invalid_arg
      "real backend: charge_costs must be false (virtual cost charges \
       would become real sleeps and double-count real latency)";
  let t0 = Unix.gettimeofday () in
  let now_us () = (Unix.gettimeofday () -. t0) *. 1e6 in
  let rts = Array.init nodes (fun id -> Rt.create ~id ~now_us) in
  (* Full mesh of socketpairs: conn.(i).(j) is node i's duplex endpoint
     to node j (writes i→j frames, reads j→i frames). *)
  let conn = Array.make_matrix nodes nodes None in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      conn.(i).(j) <- Some a;
      conn.(j).(i) <- Some b
    done
  done;
  let channels =
    Array.init nodes (fun _ -> Array.init nodes (fun _ -> Mailbox.create ()))
  in
  let sent = Atomic.make 0 in
  let handled = Atomic.make 0 in
  let bytes = Atomic.make 0 in
  let tasks = Atomic.make 0 in
  let dir = Filename.temp_dir "lbc-real" "" in
  let devs : (string, Lbc_storage.Dev.t) Hashtbl.t = Hashtbl.create 8 in
  let devs_m = Mutex.create () in
  let readers = ref [] in
  let started = ref false in
  let reader_loop i j fd () =
    try
      let continue = ref true in
      while !continue do
        match Frame.read fd with
        | None -> continue := false
        | Some body ->
            let m = Msg_codec.decode body in
            Rt.inject rts.(i) (fun () -> Mailbox.send channels.(i).(j) m)
      done
    with
    (* fds shut down under us at teardown; a torn frame there means the
       writer was stopped mid-frame, after quiescence — nothing waits
       for its payload *)
    | Unix.Unix_error _ | Frame.Torn _ ->
        ()
  in
  (module struct
    let name = "real"
    let deterministic = false
    let nodes = nodes
    let now_us = now_us
    let obs = ref Lbc_obs.Obs.disabled
    let set_obs o = obs := o

    let open_dev name =
      Mutex.lock devs_m;
      let dev =
        match Hashtbl.find_opt devs name with
        | Some d -> d
        | None ->
            let d =
              Lbc_storage.Dev.create_file
                ~path:(Filename.concat dir name)
                ~name ()
            in
            Hashtbl.add devs name d;
            d
      in
      Mutex.unlock devs_m;
      dev

    let node_engine i = Rt.engine rts.(i)

    let spawn ~node ~name ~daemon ~alive f =
      if not daemon then Atomic.incr tasks;
      let body () =
        if daemon then f ()
        else
          Fun.protect ~finally:(fun () -> Atomic.decr tasks) f
      in
      Rt.inject rts.(node) (fun () ->
          Proc.spawn (Rt.engine rts.(node)) ~name ~daemon ~alive body)

    (* A send happens inside the source node's engine loop — one thread
       per socket writer, so frames never interleave. *)
    let transmit ~src ~dst m =
      Atomic.incr sent;
      match conn.(src).(dst) with
      | Some fd ->
          let n = Frame.write fd (Msg_codec.encode m) in
          ignore (Atomic.fetch_and_add bytes n : int)
      | None ->
          (* self-send: loop straight back into the own (dst, src=dst)
             channel; its dispatcher delivers like any other *)
          Rt.inject rts.(dst) (fun () -> Mailbox.send channels.(dst).(src) m)

    let send ~src ~dst m = transmit ~src ~dst m
    let broadcast ~src ~dsts m = List.iter (fun dst -> transmit ~src ~dst m) dsts
    let send_v ~src ~dst ~iov:_ m = transmit ~src ~dst m

    let broadcast_v ~src ~dsts ~iov:_ m =
      List.iter (fun dst -> transmit ~src ~dst m) dsts

    let start_receivers ~handler =
      for n = 0 to nodes - 1 do
        for p = 0 to nodes - 1 do
          let eng = Rt.engine rts.(n) in
          Rt.inject rts.(n) (fun () ->
              Proc.spawn eng
                ~name:(Printf.sprintf "dispatch-%d<-%d" n p)
                ~daemon:true
                (fun () ->
                  while true do
                    let m = Mailbox.recv channels.(n).(p) in
                    handler ~dst:n ~src:p m;
                    Atomic.incr handled
                  done))
        done
      done

    let start () =
      if not !started then begin
        started := true;
        Array.iter Rt.start rts;
        for i = 0 to nodes - 1 do
          for j = 0 to nodes - 1 do
            match conn.(i).(j) with
            | Some fd ->
                readers := Thread.create (reader_loop i j fd) () :: !readers
            | None -> ()
          done
        done
      end

    let check_errors () =
      Array.iter
        (fun rt -> match Rt.error rt with Some e -> raise e | None -> ())
        rts

    let quiescent () =
      Atomic.get tasks = 0
      && Atomic.get sent = Atomic.get handled
      && Array.for_all Rt.idle rts

    let run () =
      start ();
      let stable = ref 0 in
      while !stable < 3 do
        check_errors ();
        if quiescent () then incr stable else stable := 0;
        Unix.sleepf 0.002
      done;
      check_errors ()

    let shutdown () =
      (* Unblock every reader (shutdown wakes a blocked read on either
         endpoint), stop the domains, then reap and close. *)
      Array.iter
        (fun row ->
          Array.iter
            (function
              | Some fd -> (
                  try Unix.shutdown fd Unix.SHUTDOWN_ALL
                  with Unix.Unix_error _ -> ())
              | None -> ())
            row)
        conn;
      Array.iter Rt.stop_and_join rts;
      List.iter Thread.join !readers;
      readers := [];
      Array.iter
        (fun row ->
          Array.iter
            (function
              | Some fd -> (
                  try Unix.close fd with Unix.Unix_error _ -> ())
              | None -> ())
            row)
        conn;
      Mutex.lock devs_m;
      Hashtbl.iter (fun _ d -> Lbc_storage.Dev.close d) devs;
      Hashtbl.reset devs;
      Mutex.unlock devs_m;
      (try
         Sys.readdir dir
         |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
         Unix.rmdir dir
       with Sys_error _ | Unix.Unix_error _ -> ())

    let total_messages () = Atomic.get sent
    let total_bytes () = Atomic.get bytes
    let total_dropped () = 0
  end)
