(* One node's runtime on the real backend: a private {!Lbc_sim.Engine}
   whose virtual clock is the wall clock, driven by a dedicated OCaml 5
   domain.

   The discovery that makes the whole backend small: every layer above
   the platform seam (Node, Table, Log, Rvm) reaches the runtime only
   through its stored [Engine.t] handle — so a node runs unchanged on a
   per-node engine whose event loop is paced by real time.  [Proc.sleep]
   becomes a real sleep, group-commit timers fire on the wall clock, and
   effects-based processes cooperate exactly as in the sim, just with
   true parallelism {e between} nodes.

   The engine is not thread-safe, so exactly one thread ever touches it:
   the main thread before {!start} (cluster construction spawns the
   dispatchers and per-node services), the domain after.  Other threads
   (socket readers, the controlling thread) communicate through
   {!inject}: a mutex-protected closure queue the loop drains into
   [Engine.schedule], woken through a self-pipe so an idle node reacts
   to a message arrival immediately instead of at the next poll. *)

type t = {
  id : int;
  engine : Lbc_sim.Engine.t;
  now_us : unit -> float;  (* shared wall clock, µs since backend start *)
  m : Mutex.t;
  inbox : (unit -> unit) Queue.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  idle : bool Atomic.t;
  error : exn option Atomic.t;
  mutable domain : unit Domain.t option;
}

let create ~id ~now_us =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  {
    id;
    engine = Lbc_sim.Engine.create ();
    now_us;
    m = Mutex.create ();
    inbox = Queue.create ();
    wake_r;
    wake_w;
    stop = Atomic.make false;
    idle = Atomic.make true;
    error = Atomic.make None;
    domain = None;
  }

let engine t = t.engine
let idle t = Atomic.get t.idle
let error t = Atomic.get t.error

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1 : int)
  with Unix.Unix_error _ -> ()

let inject t f =
  Mutex.lock t.m;
  Queue.add f t.inbox;
  Mutex.unlock t.m;
  Atomic.set t.idle false;
  wake t

let record_error t e =
  ignore (Atomic.compare_and_set t.error None (Some e) : bool)

(* Drain the cross-thread inbox into the engine (owner thread only). *)
let drain t =
  Mutex.lock t.m;
  let n = Queue.length t.inbox in
  let fs = List.init n (fun _ -> Queue.pop t.inbox) in
  Mutex.unlock t.m;
  List.iter (fun f -> Lbc_sim.Engine.schedule t.engine f) fs

(* Cap on one select: bounds stop-latency and re-checks the wall clock
   under drift. *)
let max_pause_s = 0.05

let loop t =
  let buf = Bytes.create 64 in
  while not (Atomic.get t.stop) do
    drain t;
    let wall = t.now_us () in
    let until = Float.max wall (Lbc_sim.Engine.now t.engine) in
    (try Lbc_sim.Engine.run ~until t.engine with e -> record_error t e);
    Mutex.lock t.m;
    let inbox_empty = Queue.is_empty t.inbox in
    Mutex.unlock t.m;
    Atomic.set t.idle
      (inbox_empty && Lbc_sim.Engine.pending t.engine = 0);
    let timeout =
      if not inbox_empty then 0.0
      else
        match Lbc_sim.Engine.next_at t.engine with
        | Some at ->
            Float.min max_pause_s
              (Float.max 0.0 ((at -. t.now_us ()) /. 1e6))
        | None -> max_pause_s
    in
    (match Unix.select [ t.wake_r ] [] [] timeout with
    | [], _, _ -> ()
    | _ -> (
        try
          while Unix.read t.wake_r buf 0 (Bytes.length buf) > 0 do
            ()
          done
        with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | Unix.Unix_error _ -> ()))
  done

let start t =
  match t.domain with
  | Some _ -> ()
  | None -> t.domain <- Some (Domain.spawn (fun () -> loop t))

let stop_and_join t =
  Atomic.set t.stop true;
  wake t;
  (match t.domain with
  | Some d ->
      Domain.join d;
      t.domain <- None
  | None -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
