(** One node's runtime on the real backend: a private {!Lbc_sim.Engine}
    paced by the wall clock, driven by a dedicated OCaml 5 domain.

    Thread discipline: the engine itself is touched only by the main
    thread before {!start} (cluster construction) and by the domain
    after; every other thread goes through {!inject}. *)

type t

val create : id:int -> now_us:(unit -> float) -> t
(** [now_us] is the backend's shared wall clock (µs since start); the
    engine's virtual clock tracks it. *)

val engine : t -> Lbc_sim.Engine.t

val inject : t -> (unit -> unit) -> unit
(** Thread-safe: queue [f] to run inside the node's engine (as an
    engine event at the current instant) and wake the loop. *)

val idle : t -> bool
(** The loop found nothing runnable and nothing injected at its last
    pass — quiescence input for [Platform.run]. *)

val error : t -> exn option
(** First exception that escaped an engine event, if any. *)

val start : t -> unit
(** Spawn the domain (idempotent). *)

val stop_and_join : t -> unit
(** Ask the loop to exit, join the domain, close the wake pipe. *)
