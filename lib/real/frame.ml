(* Socket framing for the real fabric: every message is one frame —
   a little-endian u32 byte count followed by that many payload bytes.
   This is exactly the frame the sim fabric accounts for
   ([Fabric.framed_length iov = 4 + iov_length iov]); here the prefix
   and payload are actually written.

   [write] is a gather write: the prefix, then each slice of the iovec
   straight from its backing buffer ([Unix.write base pos len]) — the
   payload is never concatenated.  [read] reassembles a frame from a
   stream that may deliver it in arbitrary short reads (TCP and pipes
   both tear frames at any byte boundary). *)

let header_bytes = 4

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let write fd (iov : Lbc_util.Slice.t list) =
  let len = Lbc_util.Slice.iov_length iov in
  let hdr = Bytes.create header_bytes in
  Bytes.set_int32_le hdr 0 (Int32.of_int len);
  write_all fd hdr 0 header_bytes;
  List.iter
    (fun s ->
      write_all fd (Lbc_util.Slice.base s) (Lbc_util.Slice.pos s)
        (Lbc_util.Slice.length s))
    iov;
  header_bytes + len

exception Torn of string

(* [read_exact ~eof_ok] returns [false] on EOF before the first byte;
   EOF mid-value means the peer died inside a frame. *)
let read_exact fd b pos len ~eof_ok =
  let got = ref 0 in
  (try
     while !got < len do
       let n = Unix.read fd b (pos + !got) (len - !got) in
       if n = 0 then
         if !got = 0 && eof_ok then raise Exit
         else
           raise
             (Torn (Printf.sprintf "eof after %d of %d frame bytes" !got len));
       got := !got + n
     done;
     true
   with Exit -> false)

let read fd =
  let hdr = Bytes.create header_bytes in
  if not (read_exact fd hdr 0 header_bytes ~eof_ok:true) then None
  else begin
    let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
    if len < 0 then raise (Torn (Printf.sprintf "negative frame length %d" len));
    let body = Bytes.create len in
    ignore (read_exact fd body 0 len ~eof_ok:false : bool);
    Some body
  end
