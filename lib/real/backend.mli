(** The real platform: OCaml 5 domains + a socketpair mesh + real files.

    Pass to the cluster as
    [Cluster.create ~backend:(Platform.Custom Backend.factory)].
    Requires [config.charge_costs = false] (real operations pay real
    costs; charging the sim cost model on top would double-count).

    Each node is a {!Rt}: a private engine paced by the wall clock,
    driven by its own domain — everything above the platform seam runs
    unchanged, with true parallelism between nodes.  Delivery writes
    u32-prefixed frames ({!Frame}, {!Msg_codec}) over Unix-domain
    socketpairs; devices are files under a fresh temp directory, with
    real [fsync].  [run] waits for quiescence (all tasks returned, all
    frames handled, all engines idle); [shutdown] joins the domains and
    removes the temp files. *)

val factory :
  nodes:int -> config:Lbc_core.Config.t -> (module Lbc_core.Platform.S)
