(** Byte codec for {!Lbc_core.Msg.t} — the frame payload of the socket
    fabric.  [Update]/[Fetched] record payloads are zero-copy on both
    sides: [encode] returns them as trailing slices of the gather list
    and [decode] returns windows into the received frame buffer. *)

val encode : Lbc_core.Msg.t -> Lbc_util.Slice.t list
(** The frame payload as an iovec for {!Frame.write}; the head slice is
    the tag + fixed fields, the tail slices are the message's own record
    payloads, unchanged and uncopied. *)

val decode : Bytes.t -> Lbc_core.Msg.t
(** Inverse, over a whole received frame payload.
    @raise Lbc_util.Codec.Truncated on malformed input. *)
