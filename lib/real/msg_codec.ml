(* Wire codec for {!Lbc_core.Msg.t}, the one message type the fabric
   carries.  The sim fabric hands message values across by reference;
   sockets need real bytes, so this codec defines the frame payload:

   {v tag u8 | fields (Codec varints) | raw payload slices v}

   [Update] and [Fetched] payloads — already-encoded {!Lbc_core.Wire}
   records — are not copied on either side: [encode] returns them as
   trailing slices of the gather list (written straight from the log
   arena), and [decode] returns windows into the received frame
   buffer. *)

module Codec = Lbc_util.Codec
module Slice = Lbc_util.Slice
module Table = Lbc_locks.Table

let tag_request = 0
let tag_forward = 1
let tag_token = 2
let tag_update = 3
let tag_fetch = 4
let tag_fetched = 5
let tag_low_water = 6

let encode (m : Lbc_core.Msg.t) : Slice.t list =
  let w = Codec.writer () in
  match m with
  | Lock (Table.Request { epoch; lock; requester }) ->
      Codec.u8 w tag_request;
      Codec.varint w epoch;
      Codec.varint w lock;
      Codec.varint w requester;
      [ Codec.slice w ]
  | Lock (Table.Forward { epoch; lock; requester }) ->
      Codec.u8 w tag_forward;
      Codec.varint w epoch;
      Codec.varint w lock;
      Codec.varint w requester;
      [ Codec.slice w ]
  | Lock (Table.Token { epoch; lock; seqno; last_write_seq; last_writer }) ->
      Codec.u8 w tag_token;
      Codec.varint w epoch;
      Codec.varint w lock;
      Codec.varint w seqno;
      Codec.varint w last_write_seq;
      (* last_writer is -1 when the lock was never write-held *)
      Codec.u64 w (Int64.of_int last_writer);
      [ Codec.slice w ]
  | Update iov ->
      Codec.u8 w tag_update;
      Codec.slice w :: iov
  | Fetch { lock; have } ->
      Codec.u8 w tag_fetch;
      Codec.varint w lock;
      Codec.varint w have;
      [ Codec.slice w ]
  | Fetched { lock; payloads } ->
      (* Lengths up front, then the payload slices concatenated: the
         header stays one slice and every payload rides zero-copy. *)
      Codec.u8 w tag_fetched;
      Codec.varint w lock;
      Codec.varint w (List.length payloads);
      List.iter (fun iov -> Codec.varint w (Slice.iov_length iov)) payloads;
      Codec.slice w :: List.concat payloads
  | LowWater { applied } ->
      Codec.u8 w tag_low_water;
      Codec.varint w (List.length applied);
      List.iter
        (fun (lock, seq) ->
          Codec.varint w lock;
          Codec.varint w seq)
        applied;
      [ Codec.slice w ]

let decode (body : Bytes.t) : Lbc_core.Msg.t =
  let r = Codec.reader body in
  let tag = Codec.get_u8 r in
  if tag = tag_request || tag = tag_forward then begin
    let epoch = Codec.get_varint r in
    let lock = Codec.get_varint r in
    let requester = Codec.get_varint r in
    let m =
      if tag = tag_request then Table.Request { epoch; lock; requester }
      else Table.Forward { epoch; lock; requester }
    in
    Lbc_core.Msg.Lock m
  end
  else if tag = tag_token then begin
    let epoch = Codec.get_varint r in
    let lock = Codec.get_varint r in
    let seqno = Codec.get_varint r in
    let last_write_seq = Codec.get_varint r in
    let last_writer = Int64.to_int (Codec.get_u64 r) in
    Lbc_core.Msg.Lock
      (Table.Token { epoch; lock; seqno; last_write_seq; last_writer })
  end
  else if tag = tag_update then
    Lbc_core.Msg.Update [ Codec.get_slice r ~len:(Codec.remaining r) ]
  else if tag = tag_fetch then begin
    let lock = Codec.get_varint r in
    let have = Codec.get_varint r in
    Lbc_core.Msg.Fetch { lock; have }
  end
  else if tag = tag_fetched then begin
    let lock = Codec.get_varint r in
    let n = Codec.get_varint r in
    let lens = List.init n (fun _ -> Codec.get_varint r) in
    let payloads = List.map (fun len -> [ Codec.get_slice r ~len ]) lens in
    Lbc_core.Msg.Fetched { lock; payloads }
  end
  else if tag = tag_low_water then begin
    let n = Codec.get_varint r in
    let applied =
      List.init n (fun _ ->
          let lock = Codec.get_varint r in
          let seq = Codec.get_varint r in
          (lock, seq))
    in
    Lbc_core.Msg.LowWater { applied }
  end
  else raise (Codec.Truncated (Printf.sprintf "Msg_codec: unknown tag %d" tag))
