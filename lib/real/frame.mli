(** u32-prefixed message framing over a byte stream.

    Same frame layout the sim fabric accounts for
    ([Lbc_net.Fabric.framed_length]): a little-endian u32 payload length,
    then the payload.  The writer gathers the payload from an iovec
    without concatenating; the reader tolerates arbitrary short reads. *)

val header_bytes : int

val write : Unix.file_descr -> Lbc_util.Slice.t list -> int
(** Write one frame; returns the total bytes on the wire (prefix +
    payload).  Each slice is written from its own backing buffer. *)

exception Torn of string
(** The stream ended mid-frame (peer died between the prefix and the
    last payload byte). *)

val read : Unix.file_descr -> Bytes.t option
(** Read one frame, reassembling across short reads.  [None] on a clean
    EOF at a frame boundary.
    @raise Torn on EOF inside a frame. *)
