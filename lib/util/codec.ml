exception Truncated of string

type writer = Slice.Arena.t

let writer ?(capacity = 256) () = Slice.Arena.create ~capacity ()
let length = Slice.Arena.length
let clear = Slice.Arena.clear

let contents w =
  (* Materializing copy; zero-copy consumers use [slice] instead. *)
  Slice.Arena.to_bytes w

let slice = Slice.Arena.contents
let slice_sub = Slice.Arena.sub
let u8 w v = Slice.Arena.add_char w (Char.chr (v land 0xFF))

let u16 w v =
  u8 w v;
  u8 w (v lsr 8)

let u32 w v =
  u16 w v;
  u16 w (v lsr 16)

let u64 w v =
  for i = 0 to 7 do
    u8 w (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let int_as_u64 w v =
  if v < 0 then invalid_arg "Codec.int_as_u64: negative";
  u64 w (Int64.of_int v)

let rec varint w v =
  if v < 0 then invalid_arg "Codec.varint: negative"
  else if v < 0x80 then u8 w v
  else begin
    u8 w (0x80 lor (v land 0x7F));
    varint w (v lsr 7)
  end

let varint_size v =
  if v < 0 then invalid_arg "Codec.varint_size: negative";
  let rec loop v n = if v < 0x80 then n else loop (v lsr 7) (n + 1) in
  loop v 1

let raw w b ~pos ~len = Slice.Arena.add_bytes w b ~pos ~len
let raw_string = Slice.Arena.add_string
let raw_slice = Slice.Arena.add_slice

let patch_u32 w ~at v =
  if at < 0 || at + 4 > Slice.Arena.length w then invalid_arg "Codec.patch_u32";
  Slice.Arena.set_byte w ~at v;
  Slice.Arena.set_byte w ~at:(at + 1) (v lsr 8);
  Slice.Arena.set_byte w ~at:(at + 2) (v lsr 16);
  Slice.Arena.set_byte w ~at:(at + 3) (v lsr 24)

(* ---------------------------------------------------------------- *)
(* Reading.  A reader walks either one byte range or a gather list of
   slices; multi-byte primitives work across segment boundaries. *)

type reader = {
  mutable buf : Bytes.t;
  mutable pos : int;
  mutable limit : int;
  mutable rest : Slice.t list;  (* segments not yet entered *)
}

let reader ?(pos = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Codec.reader";
  { buf; pos; limit = pos + len; rest = [] }

let reader_of_slice s =
  { buf = Slice.base s; pos = Slice.pos s; limit = Slice.pos s + Slice.length s;
    rest = [] }

let reader_of_slices = function
  | [] -> { buf = Bytes.create 0; pos = 0; limit = 0; rest = [] }
  | s :: rest ->
      let r = reader_of_slice s in
      { r with rest }

let pos r = r.pos
let remaining r = r.limit - r.pos + Slice.iov_length r.rest

(* Enter the next non-empty segment once the current one is exhausted. *)
let rec advance r =
  if r.pos = r.limit then
    match r.rest with
    | [] -> ()
    | s :: tl ->
        r.buf <- Slice.base s;
        r.pos <- Slice.pos s;
        r.limit <- Slice.pos s + Slice.length s;
        r.rest <- tl;
        advance r

let need r n what = if remaining r < n then raise (Truncated what)

let get_u8 r =
  advance r;
  if r.pos >= r.limit then raise (Truncated "u8");
  let v = Char.code (Bytes.unsafe_get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let lo = get_u8 r in
  let hi = get_u8 r in
  lo lor (hi lsl 8)

let get_u32 r =
  let lo = get_u16 r in
  let hi = get_u16 r in
  lo lor (hi lsl 16)

let get_u64 r =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (get_u8 r)) (8 * i))
  done;
  !v

let get_int_as_u64 r =
  let v = get_u64 r in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Truncated "int_as_u64: out of int range");
  Int64.to_int v

let get_varint r =
  let rec loop shift acc =
    if shift > 62 then raise (Truncated "varint: too long");
    let b = get_u8 r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let get_raw r ~len =
  need r len "raw";
  advance r;
  let out = Bytes.create len in
  let filled = ref 0 in
  while !filled < len do
    advance r;
    let n = min (len - !filled) (r.limit - r.pos) in
    Bytes.blit r.buf r.pos out !filled n;
    r.pos <- r.pos + n;
    filled := !filled + n
  done;
  Slice.count_copy len;
  out

let get_slice r ~len =
  need r len "raw";
  advance r;
  if len <= r.limit - r.pos then begin
    (* Whole range lies in the current segment: a window, no copy. *)
    let s = Slice.of_bytes r.buf ~pos:r.pos ~len in
    r.pos <- r.pos + len;
    s
  end
  else Slice.of_bytes (get_raw r ~len)

let skip r n =
  need r n "skip";
  let left = ref n in
  while !left > 0 do
    advance r;
    let k = min !left (r.limit - r.pos) in
    r.pos <- r.pos + k;
    left := !left - k
  done
