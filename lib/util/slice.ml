type t = { b : Bytes.t; off : int; len : int }

(* ---------------------------------------------------------------- *)
(* Copy accounting *)

(* The counters are process-global and shared by every backend: on the
   real backend each node is an OCaml 5 domain, so plain [ref] cells
   would lose increments under concurrent fetch-and-add. *)
let copied = Atomic.make 0
let saved = Atomic.make 0
let allocs = Atomic.make 0
let count_copy n = ignore (Atomic.fetch_and_add copied n : int)
let count_saved n = ignore (Atomic.fetch_and_add saved n : int)
let count_alloc () = Atomic.incr allocs
let bytes_copied () = Atomic.get copied
let bytes_copied_baseline () = Atomic.get copied + Atomic.get saved
let encode_allocs () = Atomic.get allocs

let reset_counters () =
  Atomic.set copied 0;
  Atomic.set saved 0;
  Atomic.set allocs 0

(* ---------------------------------------------------------------- *)

let of_bytes ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Slice.of_bytes";
  { b; off = pos; len }

let of_string s = { b = Bytes.of_string s; off = 0; len = String.length s }
let length s = s.len
let is_empty s = s.len = 0
let base s = s.b
let pos s = s.off

let get s i =
  if i < 0 || i >= s.len then invalid_arg "Slice.get";
  Bytes.get s.b (s.off + i)

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > s.len then invalid_arg "Slice.sub";
  { b = s.b; off = s.off + pos; len }

let iter f s =
  for i = s.off to s.off + s.len - 1 do
    f (Bytes.get s.b i)
  done

let blit_to s dst ~pos =
  Bytes.blit s.b s.off dst pos s.len;
  count_copy s.len

let to_bytes s =
  count_copy s.len;
  Bytes.sub s.b s.off s.len

let to_string s = Bytes.sub_string s.b s.off s.len

let equal a b =
  a.len = b.len
  &&
  let rec loop i =
    i >= a.len || (Bytes.get a.b (a.off + i) = Bytes.get b.b (b.off + i) && loop (i + 1))
  in
  loop 0

let pp ppf s = Format.fprintf ppf "slice(%dB@@%d)" s.len s.off

let iov_length iov = List.fold_left (fun acc s -> acc + s.len) 0 iov

let concat iov =
  let total = iov_length iov in
  let out = Bytes.create total in
  let p = ref 0 in
  List.iter
    (fun s ->
      Bytes.blit s.b s.off out !p s.len;
      p := !p + s.len)
    iov;
  count_copy total;
  out

(* ---------------------------------------------------------------- *)

module Arena = struct
  type slice = t
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(capacity = 256) () =
    count_alloc ();
    { buf = Bytes.create (max capacity 16); len = 0 }

  let length a = a.len
  let clear a = a.len <- 0

  (* Growth reallocation is not charged to the copy counters: [Buffer]
     grows the same way, so it cancels out of the before/after story. *)
  let ensure a n =
    if a.len + n > Bytes.length a.buf then begin
      let cap = max (a.len + n) (2 * Bytes.length a.buf) in
      let nb = Bytes.create cap in
      Bytes.blit a.buf 0 nb 0 a.len;
      a.buf <- nb
    end

  let add_char a c =
    ensure a 1;
    Bytes.unsafe_set a.buf a.len c;
    a.len <- a.len + 1

  let add_bytes a b ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length b then
      invalid_arg "Arena.add_bytes";
    ensure a len;
    Bytes.blit b pos a.buf a.len len;
    a.len <- a.len + len

  let add_string a s =
    let len = String.length s in
    ensure a len;
    Bytes.blit_string s 0 a.buf a.len len;
    a.len <- a.len + len

  let add_slice a s = add_bytes a s.b ~pos:s.off ~len:s.len

  let patch a ~at b =
    let len = Bytes.length b in
    if at < 0 || at + len > a.len then invalid_arg "Arena.patch";
    Bytes.blit b 0 a.buf at len

  let set_byte a ~at v =
    if at < 0 || at >= a.len then invalid_arg "Arena.set_byte";
    Bytes.unsafe_set a.buf at (Char.chr (v land 0xFF))

  let contents a = { b = a.buf; off = 0; len = a.len }

  let sub a ~pos ~len =
    if pos < 0 || len < 0 || pos + len > a.len then invalid_arg "Arena.sub";
    { b = a.buf; off = pos; len }

  let to_bytes a =
    count_copy a.len;
    Bytes.sub a.buf 0 a.len
end
