(** Zero-copy byte windows and the growable arena writer under them.

    A {!t} is an immutable view of a [Bytes.t] — base buffer, start
    offset, length.  Passing slices between layers (codec → log → wire)
    moves no bytes; only {!to_bytes}, {!blit_to} and {!concat} actually
    materialize data, and those are the operations the copy counters
    charge.

    The {!Arena} is the writer side: a growable byte buffer that exposes
    its contents as a slice without copying and supports true in-place
    patching of already-written words (what [Buffer] cannot do).

    {1 Copy accounting}

    The module keeps three global counters so benchmarks can report how
    many bytes the data path materialized:

    - [bytes_copied]: bytes actually copied by the current implementation
      (charged by {!to_bytes}, {!blit_to}, {!concat} and by the device
      and codec layers at their materializing operations).
    - [bytes_copied_baseline]: what the pre-slice data path would have
      copied — every call site that {e used to} copy but no longer does
      charges {!count_saved} with the bytes it would have moved, so
      [baseline = copied + saved].
    - [encode_allocs]: number of writer/arena allocations on encode
      paths.

    The counters are global (not per cluster): reset them around the
    measured section with {!reset_counters}. *)

type t
(** An immutable window onto a byte buffer.  The window never changes,
    but the underlying buffer is shared: a slice of a buffer that is
    later mutated observes the mutation.  Producers hand out slices only
    of buffers they no longer write (e.g. a finished encode). *)

val of_bytes : ?pos:int -> ?len:int -> Bytes.t -> t
(** View of [b.[pos .. pos+len)]; the whole buffer by default.  The
    bytes are {e not} copied. *)

val of_string : string -> t
(** Copies the string once (strings are immutable; the slice needs a
    byte base). *)

val length : t -> int
val is_empty : t -> bool

val get : t -> int -> char
(** [get s i] is byte [i] of the window; bounds-checked. *)

val base : t -> Bytes.t
(** The underlying buffer — with {!pos}, for handing the window to
    primitives that take [(bytes, pos, len)] without copying.  Callers
    must not write through it. *)

val pos : t -> int
(** Start offset of the window within {!base}. *)

val sub : t -> pos:int -> len:int -> t
(** Zero-copy sub-window, relative to the slice. *)

val iter : (char -> unit) -> t -> unit

val blit_to : t -> Bytes.t -> pos:int -> unit
(** Copy the window into [dst] at [pos] (counted). *)

val to_bytes : t -> Bytes.t
(** Materialize the window as fresh bytes (counted). *)

val to_string : t -> string

val equal : t -> t -> bool
(** Content equality. *)

val pp : Format.formatter -> t -> unit

(** {1 Gather lists (iovecs)} *)

val iov_length : t list -> int
(** Total bytes across a gather list. *)

val concat : t list -> Bytes.t
(** Materialize a gather list into one fresh buffer (counted). *)

(** {1 Copy accounting} *)

val count_copy : int -> unit
(** Charge [n] bytes to the real-copy counter.  Called by every layer
    that materializes bytes (device reads/writes, codec [contents] /
    [get_raw], slice [to_bytes]). *)

val count_saved : int -> unit
(** Charge [n] bytes to the baseline-only counter: a copy the
    pre-slice data path performed at this site that the current path
    avoids. *)

val count_alloc : unit -> unit
(** Count one encode-path writer allocation. *)

val bytes_copied : unit -> int
val bytes_copied_baseline : unit -> int
(** [bytes_copied () + saved]: what the old data path would have
    copied. *)

val encode_allocs : unit -> int
val reset_counters : unit -> unit

(** {1 The arena writer} *)

module Arena : sig
  type slice = t

  type t
  (** A growable byte buffer.  Unlike [Buffer], its contents are
      exposed as a slice without copying and fixed-size fields written
      earlier can be patched in place. *)

  val create : ?capacity:int -> unit -> t
  (** Counted as one encode allocation. *)

  val length : t -> int
  val clear : t -> unit
  (** Forget the contents (capacity is kept).  Slices previously taken
      with {!contents} must not be used afterwards. *)

  val add_char : t -> char -> unit
  val add_bytes : t -> Bytes.t -> pos:int -> len:int -> unit
  val add_string : t -> string -> unit
  val add_slice : t -> slice -> unit

  val patch : t -> at:int -> Bytes.t -> unit
  (** Overwrite already-written bytes at offset [at]; in place, O(len). *)

  val set_byte : t -> at:int -> int -> unit
  (** Overwrite one already-written byte; in place, O(1). *)

  val contents : t -> slice
  (** The bytes written so far, as a zero-copy window.  Valid until the
      arena is next written (a growth reallocates the base) or cleared. *)

  val sub : t -> pos:int -> len:int -> slice
  (** Zero-copy window of a range written so far; same validity. *)

  val to_bytes : t -> Bytes.t
  (** Materializing copy (counted). *)
end
