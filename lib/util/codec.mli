(** Little-endian binary encoding and decoding.

    All on-disk and on-wire formats in this repository are built from these
    primitives.  A {!writer} is a growable arena ({!Slice.Arena}) whose
    contents can be taken as a zero-copy {!Slice.t}; a {!reader} walks a
    byte range — or a gather list of slices — with bounds checking and
    reports malformed input with {!exception:Truncated} rather than
    [Invalid_argument], so callers can distinguish "corrupt input" from
    programming errors. *)

exception Truncated of string
(** Raised by readers when the input ends before a complete value. *)

(** {1 Writing} *)

type writer

val writer : ?capacity:int -> unit -> writer
val length : writer -> int

val clear : writer -> unit
(** Reset to empty, keeping capacity (for writer reuse on hot paths).
    Slices previously taken with {!slice} must not be used afterwards. *)

val contents : writer -> Bytes.t
(** Materializing copy of the bytes written so far (counted by the
    {!Slice} copy accounting; prefer {!slice} on hot paths). *)

val slice : writer -> Slice.t
(** The bytes written so far as a zero-copy window; valid until the
    writer is next written or cleared. *)

val slice_sub : writer -> pos:int -> len:int -> Slice.t
(** Zero-copy window of a range written so far; same validity. *)

val u8 : writer -> int -> unit
val u16 : writer -> int -> unit
val u32 : writer -> int -> unit

val u64 : writer -> int64 -> unit
val int_as_u64 : writer -> int -> unit
(** Native non-negative int written as 8 bytes. *)

val varint : writer -> int -> unit
(** LEB128 varint; accepts any non-negative OCaml int. *)

val varint_size : int -> int
(** Encoded size of [varint v], without writing. *)

val raw : writer -> Bytes.t -> pos:int -> len:int -> unit
val raw_string : writer -> string -> unit
val raw_slice : writer -> Slice.t -> unit

val patch_u32 : writer -> at:int -> int -> unit
(** Overwrite 4 bytes previously written at offset [at]; in-place, O(1). *)

(** {1 Reading} *)

type reader

val reader : ?pos:int -> ?len:int -> Bytes.t -> reader

val reader_of_slice : Slice.t -> reader
(** Read the slice's window without copying it. *)

val reader_of_slices : Slice.t list -> reader
(** Read a gather list as one logical byte stream; values may span
    segment boundaries. *)

val pos : reader -> int
(** Absolute position in the current segment's buffer.  Only meaningful
    for single-buffer readers (created with {!reader}). *)

val remaining : reader -> int

val get_u8 : reader -> int
val get_u16 : reader -> int
val get_u32 : reader -> int
val get_u64 : reader -> int64
val get_int_as_u64 : reader -> int
val get_varint : reader -> int

val get_raw : reader -> len:int -> Bytes.t
(** Materializing copy of the next [len] bytes (counted). *)

val get_slice : reader -> len:int -> Slice.t
(** The next [len] bytes; a zero-copy window when they lie within one
    segment, a materializing copy (counted) when they span segments. *)

val skip : reader -> int -> unit
