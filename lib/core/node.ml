exception Coherency_error of string

module Obs = Lbc_obs.Obs

let log_src = Logs.Src.create "lbc.node" ~doc:"log-based coherency node events"

module L = (val Logs.src_log log_src)

type stats = {
  mutable updates_sent : int;
  mutable update_bytes_sent : int;
  mutable records_received : int;
  mutable records_held : int;
  mutable interlock_waits : int;
  mutable fetches_sent : int;
  mutable records_fetched : int;
  mutable repair_fetches : int;
}

(* A sequence-number gap under watch: we wait for [need] on the lock, and
   fetch from a peer if the gap outlives the repair timeout. *)
type repair = {
  mutable need : int;
  mutable retries : int;
  mutable delay : float;
  prefer : int;  (* first fetch target: the last known writer *)
}

(* On-demand rejoin: the surviving log tail, split into independent
   replay chains by the persisted region index.  Each chain (stream) is
   cold until replayed; the first touch of any of its keys — a local
   read/write, a lock acquire, a coherency apply, or a peer fetch —
   replays exactly that chain, while a background drain walks the rest
   hottest-lock-first. *)
type stream_status = Cold | Replaying | Warm

type stream = {
  sid : int;
  offsets : int list;  (* log offsets of the chain's records, log order *)
  skeys : int list;  (* tagged Region_index keys the chain covers *)
  mutable status : stream_status;
}

type recovery = {
  streams : stream array;
  by_key : (int, int) Hashtbl.t;  (* tagged key -> stream index *)
  mutable cold : int;  (* streams not yet warm *)
  warm_cv : Lbc_sim.Condvar.t;  (* waiters for a Replaying stream *)
  started_at : float;
}

type rejoin_mode = Replay_all | On_demand

type t = {
  id : int;
  nodes : int;
  config : Config.t;
  engine : Lbc_sim.Engine.t;
  rvm : Lbc_rvm.Rvm.t;
  locks : Lbc_locks.Table.t;
  send : dst:int -> Msg.t -> unit;
  multicast_send : dsts:int list -> Msg.t -> unit;
  send_update : dst:int -> Lbc_util.Slice.t list -> unit;
  multicast_update : dsts:int list -> Lbc_util.Slice.t list -> unit;
  peers_with_region : int -> int list;
  applied : (int, int) Hashtbl.t;  (* lock id -> applied write seqno *)
  applied_cv : Lbc_sim.Condvar.t;
  mutable pending : Lbc_wal.Record.txn list;  (* arrival order *)
  retained : (int, Lbc_wal.Record.txn list) Hashtbl.t;  (* newest first *)
  peer_applied : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (* peer -> lock -> applied write seqno, from low-water gossip *)
  mutable unacked : (int * int list * (int * int) list) list;
      (* own committed writes not yet known applied by every propagation
         peer: (log offset, peers, (lock, seqno) list), oldest first.
         The head's offset is the log's repair-retention low-water mark. *)
  fetch_marks : (int * int, unit) Hashtbl.t;  (* (lock, have) fetches sent *)
  repairs : (int, repair) Hashtbl.t;  (* lock id -> gap under watch *)
  txn_updates : int ref;  (* set_range calls in the running transaction *)
  mutable pinned : bool;  (* version-pinned reader: buffer, don't apply *)
  mutable recovery : recovery option;  (* live during an on-demand rejoin *)
  mutable ttfc_mark : float option;
      (* rejoin instant, consumed by the first commit after it
         (time_to_first_commit_us) *)
  stats : stats;
  obs : Obs.t;
}

type deps = {
  node_id : int;
  nodes : int;
  config : Config.t;
  engine : Lbc_sim.Engine.t;
  send : dst:int -> Msg.t -> unit;
  multicast_send : dsts:int list -> Msg.t -> unit;
  send_update : dst:int -> Lbc_util.Slice.t list -> unit;
      (** transmit [Msg.Update iov] with gather-list framing — the
          committed log tail travels by reference to the channel *)
  multicast_update : dsts:int list -> Lbc_util.Slice.t list -> unit;
  peers_with_region : int -> int list;
  log_dev : Lbc_storage.Dev.t;
  obs : Obs.t;
      (** trace/metrics sink shared by the cluster; [Obs.disabled] when
          tracing is off *)
}

let model_class = function
  | Lbc_rvm.Rvm.Redundant -> Lbc_costmodel.Model.Redundant
  | Lbc_rvm.Rvm.Ordered -> Lbc_costmodel.Model.Ordered
  | Lbc_rvm.Rvm.Unordered -> Lbc_costmodel.Model.Unordered

let instrumentation config txn_updates =
  if not config.Config.charge_costs then Lbc_rvm.Rvm.no_instrumentation
  else
    {
      Lbc_rvm.Rvm.on_set_range =
        (fun cls ~len:_ ->
          incr txn_updates;
          Lbc_sim.Proc.sleep
            (Lbc_costmodel.Model.per_update_cost (model_class cls)
               ~nth:!txn_updates));
      on_commit_collect =
        (fun ~ranges ~bytes ->
          Lbc_sim.Proc.sleep (Lbc_costmodel.Model.collect_log ~ranges ~bytes));
      on_apply =
        (fun ~ranges ~bytes ->
          Lbc_sim.Proc.sleep (Lbc_costmodel.Model.apply_log ~ranges ~bytes));
    }

let create (deps : deps) =
  let txn_updates = ref 0 in
  let rvm_options =
    {
      Lbc_rvm.Rvm.coalesce = deps.config.Config.coalesce;
      disk_logging = deps.config.Config.disk_logging;
      range_header_size = deps.config.Config.range_header_size;
      log_mode = deps.config.Config.log_mode;
      instrumentation = instrumentation deps.config txn_updates;
    }
  in
  let rvm =
    Lbc_rvm.Rvm.init ~options:rvm_options ~node:deps.node_id
      ~log_dev:deps.log_dev ()
  in
  if
    deps.config.Config.group_commit
    && deps.config.Config.disk_logging
    && deps.config.Config.flush_on_commit
  then
    Lbc_wal.Log.enable_group_commit (Lbc_rvm.Rvm.log rvm) ~engine:deps.engine
      ~max_records:deps.config.Config.group_commit_max
      ~delay:deps.config.Config.group_commit_delay;
  let locks =
    Lbc_locks.Table.create ~node:deps.node_id ~nodes:deps.nodes
      ~send:(fun ~dst m -> deps.send ~dst (Msg.Lock m))
      ()
  in
  Lbc_locks.Table.set_obs locks deps.obs;
  Lbc_wal.Log.set_obs (Lbc_rvm.Rvm.log rvm) deps.obs ~node:deps.node_id;
  {
    id = deps.node_id;
    nodes = deps.nodes;
    config = deps.config;
    engine = deps.engine;
    rvm;
    locks;
    send = deps.send;
    multicast_send = deps.multicast_send;
    send_update = deps.send_update;
    multicast_update = deps.multicast_update;
    peers_with_region = deps.peers_with_region;
    applied = Hashtbl.create 16;
    applied_cv = Lbc_sim.Condvar.create ();
    pending = [];
    retained = Hashtbl.create 16;
    peer_applied = Hashtbl.create 8;
    unacked = [];
    fetch_marks = Hashtbl.create 16;
    repairs = Hashtbl.create 8;
    txn_updates;
    pinned = false;
    recovery = None;
    ttfc_mark = None;
    stats =
      {
        updates_sent = 0;
        update_bytes_sent = 0;
        records_received = 0;
        records_held = 0;
        interlock_waits = 0;
        fetches_sent = 0;
        records_fetched = 0;
        repair_fetches = 0;
      };
    obs = deps.obs;
  }

let id (t : t) = t.id
let rvm (t : t) = t.rvm
let locks (t : t) = t.locks
let config (t : t) = t.config
let stats (t : t) = t.stats

let applied_seq t lock =
  Option.value ~default:0 (Hashtbl.find_opt t.applied lock)

let set_applied t lock seq =
  if seq > applied_seq t lock then Hashtbl.replace t.applied lock seq

let pending_count t = List.length t.pending

let map_region t ~id ~db ~size = Lbc_rvm.Rvm.map_region t.rvm ~id ~db ~size

(* --------------------------------------------------------------- *)
(* Retention (lazy propagation, and repair service) *)

(* Lazy mode retains committed records so readers can fetch them; repair
   mode additionally retains applied records on every node, so a repair
   fetch can be served by any peer that has the data. *)
let retains (t : t) =
  t.config.Config.propagation = Config.Lazy || t.config.Config.repair

let retain (t : t) (record : Lbc_wal.Record.txn) =
  List.iter
    (fun l ->
      let lock = l.Lbc_wal.Record.lock_id in
      let existing = Option.value ~default:[] (Hashtbl.find_opt t.retained lock) in
      Hashtbl.replace t.retained lock (record :: existing))
    record.Lbc_wal.Record.locks

let resync (t : t) ~applied =
  if t.pending <> [] then
    raise (Coherency_error "resync with records still pending");
  List.iter
    (fun region -> Lbc_rvm.Region.reload_from_db region)
    (Lbc_rvm.Rvm.regions t.rvm);
  List.iter (fun (lock, seq) -> set_applied t lock seq) applied;
  Hashtbl.reset t.retained;
  Hashtbl.reset t.fetch_marks;
  Hashtbl.reset t.repairs;
  (* The checkpoint replayed every log into the database and this resync
     brings each node to that state, so nothing committed before it can
     be fetched again: lift the retention mark.  Record the checkpoint
     state as ground truth for every peer's applied table. *)
  t.unacked <- [];
  Lbc_wal.Log.set_retention_water (Lbc_rvm.Rvm.log t.rvm) max_int;
  for peer = 0 to t.nodes - 1 do
    if peer <> t.id then begin
      let tbl =
        match Hashtbl.find_opt t.peer_applied peer with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create 16 in
            Hashtbl.replace t.peer_applied peer tbl;
            tbl
      in
      List.iter
        (fun (lock, seq) ->
          if seq > Option.value ~default:0 (Hashtbl.find_opt tbl lock) then
            Hashtbl.replace tbl lock seq)
        applied
    end
  done;
  Lbc_sim.Condvar.broadcast t.applied_cv

let retained_count t =
  Hashtbl.fold (fun _ rs acc -> acc + List.length rs) t.retained 0

let gc_retained t = Hashtbl.reset t.retained

let retained_after t ~lock ~have =
  let seq_for record =
    match
      List.find_opt
        (fun l -> l.Lbc_wal.Record.lock_id = lock)
        record.Lbc_wal.Record.locks
    with
    | Some l -> l.Lbc_wal.Record.seqno
    | None -> raise (Coherency_error "retained record lacks its lock")
  in
  Option.value ~default:[] (Hashtbl.find_opt t.retained lock)
  |> List.filter (fun r -> seq_for r > have)
  |> List.sort (fun a b -> Int.compare (seq_for a) (seq_for b))

(* --------------------------------------------------------------- *)
(* Low-water gossip: what may the log trim past?

   A node's log must keep every own committed write some peer might still
   need re-sent (repair fetch, or a rejoin rebroadcast after a crash).
   Each write is "unacked" until every propagation peer reports — via
   [Msg.LowWater] gossip of its applied table — an applied sequence
   number at or past the write, for each of its locks.  The offset of the
   oldest unacked write is the log's repair-retention low-water mark;
   with no gossip received nothing is trimmed (conservative default). *)

let peer_acked (t : t) peer ~lock ~seq =
  match Hashtbl.find_opt t.peer_applied peer with
  | None -> false
  | Some tbl -> (
      match Hashtbl.find_opt tbl lock with Some s -> s >= seq | None -> false)

let acked (t : t) (_off, peers, lock_seqs) =
  List.for_all
    (fun peer ->
      List.for_all (fun (lock, seq) -> peer_acked t peer ~lock ~seq) lock_seqs)
    peers

(* Drop retained records every peer has applied: none of them can appear
   in a future fetch (a fetch always asks for records {e newer} than the
   fetcher's applied sequence number). *)
let prune_retained (t : t) =
  if t.nodes > 1 then begin
    let floor lock =
      let rec go peer acc =
        if peer >= t.nodes then acc
        else if peer = t.id then go (peer + 1) acc
        else
          let s =
            match Hashtbl.find_opt t.peer_applied peer with
            | None -> 0
            | Some tbl -> Option.value ~default:0 (Hashtbl.find_opt tbl lock)
          in
          go (peer + 1) (min acc s)
      in
      go 0 max_int
    in
    let seq_for lock (record : Lbc_wal.Record.txn) =
      match
        List.find_opt
          (fun l -> l.Lbc_wal.Record.lock_id = lock)
          record.Lbc_wal.Record.locks
      with
      | Some l -> l.Lbc_wal.Record.seqno
      | None -> max_int
    in
    Hashtbl.filter_map_inplace
      (fun lock records ->
        let f = floor lock in
        match List.filter (fun r -> seq_for lock r > f) records with
        | [] -> None
        | kept -> Some kept)
      t.retained
  end

let update_retention (t : t) =
  t.unacked <- List.filter (fun entry -> not (acked t entry)) t.unacked;
  (* Minimum over the entries, not the list head: an on-demand rejoin
     rebuilds the list stream by stream, out of log order. *)
  let water =
    List.fold_left (fun acc (off, _, _) -> min acc off) max_int t.unacked
  in
  (* While an on-demand rejoin still has cold streams the unacked list is
     incomplete, so retention stays pinned at the log head. *)
  let water =
    match t.recovery with
    | Some r when r.cold > 0 ->
        min water (Lbc_wal.Log.head (Lbc_rvm.Rvm.log t.rvm))
    | _ -> water
  in
  Lbc_wal.Log.set_retention_water (Lbc_rvm.Rvm.log t.rvm) water;
  prune_retained t

let track_unacked (t : t) ~offset (record : Lbc_wal.Record.txn) ~peers =
  if peers <> [] then begin
    let lock_seqs =
      List.map
        (fun l -> (l.Lbc_wal.Record.lock_id, l.Lbc_wal.Record.seqno))
        record.Lbc_wal.Record.locks
    in
    t.unacked <- t.unacked @ [ (offset, peers, lock_seqs) ];
    update_retention t
  end

let unacked_count (t : t) = List.length t.unacked

let clear_retention (t : t) =
  t.unacked <- [];
  Lbc_wal.Log.set_retention_water (Lbc_rvm.Rvm.log t.rvm) max_int

let applied_snapshot (t : t) =
  Hashtbl.fold (fun lock seq acc -> (lock, seq) :: acc) t.applied []

let gossip_low_water (t : t) =
  let applied = applied_snapshot t in
  for peer = 0 to t.nodes - 1 do
    if peer <> t.id then t.send ~dst:peer (Msg.LowWater { applied })
  done

let receive_low_water (t : t) ~src ~applied =
  let tbl =
    match Hashtbl.find_opt t.peer_applied src with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 16 in
        Hashtbl.replace t.peer_applied src tbl;
        tbl
  in
  List.iter
    (fun (lock, seq) ->
      if seq > Option.value ~default:0 (Hashtbl.find_opt tbl lock) then
        Hashtbl.replace tbl lock seq)
    applied;
  update_retention t

(* --------------------------------------------------------------- *)
(* Applying received records in lock-sequence order *)

type readiness = Ready | Hold | Duplicate

let readiness t (record : Lbc_wal.Record.txn) =
  let dup =
    List.exists
      (fun l -> applied_seq t l.Lbc_wal.Record.lock_id >= l.Lbc_wal.Record.seqno)
      record.Lbc_wal.Record.locks
  in
  if dup then Duplicate
  else if
    List.for_all
      (fun l ->
        applied_seq t l.Lbc_wal.Record.lock_id >= l.Lbc_wal.Record.prev_write_seq)
      record.Lbc_wal.Record.locks
  then Ready
  else Hold

let apply_now (t : t) (record : Lbc_wal.Record.txn) =
  let sp =
    if Obs.enabled t.obs then begin
      let sp =
        (* Span args feed only the opt-in JSON trace; building the list
           when just the flight ring is live would put tuple+box
           allocations on every hot-path event (and minor GCs are
           stop-the-world across domains).  Same guard at every hot
           span below. *)
        Obs.span_begin t.obs ~name:"apply" ~pid:t.id ~tid:Obs.lane_apply
          ?args:
            (if Obs.tracing t.obs then
               Some
                 [ ("writer", Obs.I record.Lbc_wal.Record.node);
                   ("tid", Obs.I record.Lbc_wal.Record.tid) ]
             else None)
          ()
      in
      (* Bind the committer's flow arrows into this apply span (the "f"
         events land at the span's start time), and account the lag from
         broadcast to apply. *)
      List.iter
        (fun l ->
          let id =
            Obs.flow_id ~lock:l.Lbc_wal.Record.lock_id
              ~seqno:l.Lbc_wal.Record.seqno
          in
          match Obs.flow_end t.obs ~id ~pid:t.id ~tid:Obs.lane_apply with
          | Some lag -> Obs.observe ~pid:t.id t.obs "apply_lag_us" lag
          | None -> ())
        record.Lbc_wal.Record.locks;
      sp
    end
    else Obs.null_span
  in
  Lbc_rvm.Rvm.apply_record t.rvm record;
  List.iter
    (fun l -> set_applied t l.Lbc_wal.Record.lock_id l.Lbc_wal.Record.seqno)
    record.Lbc_wal.Record.locks;
  if retains t then retain t record;
  ignore (Obs.span_end t.obs sp : float);
  Lbc_sim.Condvar.broadcast t.applied_cv

(* Apply everything applicable, holding the rest; newly applied records can
   unblock held ones, so iterate to a fixpoint. *)
let rec drain_pending t =
  let ready, rest =
    List.partition (fun r -> readiness t r = Ready) t.pending
  in
  let rest = List.filter (fun r -> readiness t r <> Duplicate) rest in
  t.pending <- rest;
  match ready with
  | [] -> ()
  | _ ->
      List.iter (apply_now t) ready;
      drain_pending t

let fetch_mark_key t lock = Printf.sprintf "fetch:%d:%d" t.id lock

let send_fetch (t : t) ~lock ~have ~from =
  if from <> t.id && not (Hashtbl.mem t.fetch_marks (lock, have)) then begin
    Hashtbl.replace t.fetch_marks (lock, have) ();
    t.stats.fetches_sent <- t.stats.fetches_sent + 1;
    if Obs.enabled t.obs then Obs.mark t.obs (fetch_mark_key t lock);
    L.debug (fun m -> m "node %d fetches lock %d > %d from node %d" t.id lock have from);
    t.send ~dst:from (Msg.Fetch { lock; have })
  end

(* --------------------------------------------------------------- *)
(* Loss detection and repair (sequence-number gap watchdog)

   The interlock already tells a receiver that records are missing: a
   sequence-number gap that does not close means the carrying message was
   lost (or its sender crashed).  With [config.repair] set, a watchdog is
   armed whenever a node starts waiting on a gap; if the gap outlives
   [repair_timeout], the node fetches the missing records — first from the
   last known writer, then cycling over the other peers with doubled
   backoff — up to [repair_retries] attempts.  A gap that survives all
   attempts leaves the waiter blocked, which the engine's stranded-process
   report surfaces. *)

let rec repair_check (t : t) lock =
  match Hashtbl.find_opt t.repairs lock with
  | None -> ()
  | Some r ->
      if applied_seq t lock >= r.need then Hashtbl.remove t.repairs lock
      else if r.retries >= t.config.Config.repair_retries then begin
        Hashtbl.remove t.repairs lock;
        L.warn (fun m ->
            m "node %d gives up repairing lock %d (need %d, have %d)" t.id
              lock r.need (applied_seq t lock))
      end
      else begin
        let rec pick k =
          let c = (max r.prefer 0 + k) mod t.nodes in
          if c = t.id then pick (k + 1) else c
        in
        let target = pick r.retries in
        let have = applied_seq t lock in
        r.retries <- r.retries + 1;
        t.stats.repair_fetches <- t.stats.repair_fetches + 1;
        if Obs.enabled t.obs then begin
          Obs.count ~pid:t.id t.obs "repair_fetches" 1;
          Obs.mark t.obs (fetch_mark_key t lock)
        end;
        L.debug (fun m ->
            m "node %d repair-fetches lock %d > %d from node %d (try %d)"
              t.id lock have target r.retries);
        (* Sending costs virtual time, so it needs a process context;
           repair_check itself runs as an engine callback. *)
        Lbc_sim.Proc.spawn t.engine
          ~name:(Printf.sprintf "n%d repair l%d" t.id lock)
          ~daemon:true
          (fun () -> t.send ~dst:target (Msg.Fetch { lock; have }));
        r.delay <- r.delay *. 2.0;
        Lbc_sim.Engine.schedule t.engine ~delay:r.delay (fun () ->
            repair_check t lock)
      end

let arm_repair (t : t) ~lock ~need ~from =
  if t.config.Config.repair && need > applied_seq t lock then
    match Hashtbl.find_opt t.repairs lock with
    | Some r -> if need > r.need then r.need <- need
    | None ->
        let r =
          {
            need;
            retries = 0;
            delay = t.config.Config.repair_timeout;
            prefer = from;
          }
        in
        Hashtbl.replace t.repairs lock r;
        Lbc_sim.Engine.schedule t.engine ~delay:r.delay (fun () ->
            repair_check t lock)

(* Lazy mode: a held record's author must itself have applied everything
   the record depends on, so it can supply the missing chains.  Without
   this cascade a multi-lock record can deadlock an interlocked acquire
   whose per-lock fetch covers only one of the record's locks.  Repair
   mode arms the gap watchdog on the same dependencies. *)
let request_dependencies (t : t) (record : Lbc_wal.Record.txn) =
  List.iter
    (fun l ->
      let lock = l.Lbc_wal.Record.lock_id in
      let have = applied_seq t lock in
      if have < l.Lbc_wal.Record.prev_write_seq then begin
        if t.config.Config.propagation = Config.Lazy then
          send_fetch t ~lock ~have ~from:record.Lbc_wal.Record.node;
        arm_repair t ~lock ~need:l.Lbc_wal.Record.prev_write_seq
          ~from:record.Lbc_wal.Record.node
      end)
    record.Lbc_wal.Record.locks

let receive_record (t : t) record =
  t.stats.records_received <- t.stats.records_received + 1;
  if t.pinned then t.pending <- t.pending @ [ record ]
  else
    match readiness t record with
    | Duplicate -> ()
    | Ready ->
        apply_now t record;
        drain_pending t
    | Hold ->
        t.stats.records_held <- t.stats.records_held + 1;
        if Obs.enabled t.obs then
          Obs.instant t.obs ~name:"hold" ~pid:t.id ~tid:Obs.lane_apply
            ?args:
              (if Obs.tracing t.obs then
                 Some
                   [ ("writer", Obs.I record.Lbc_wal.Record.node);
                     ("tid", Obs.I record.Lbc_wal.Record.tid) ]
               else None)
            ();
        L.debug (fun m ->
            m "node %d holds out-of-order record (node %d tid %d); %d pending"
              t.id record.Lbc_wal.Record.node record.Lbc_wal.Record.tid
              (List.length t.pending + 1));
        t.pending <- t.pending @ [ record ];
        request_dependencies t record

let pin (t : t) = t.pinned <- true
let is_pinned (t : t) = t.pinned

let accept (t : t) =
  if t.pinned then begin
    t.pinned <- false;
    drain_pending t
  end

(* --------------------------------------------------------------- *)
(* Propagation at commit *)

let propagation_peers (t : t) (record : Lbc_wal.Record.txn) =
  let module Iset = Set.Make (Int) in
  List.fold_left
    (fun acc region ->
      List.fold_left
        (fun acc peer -> Iset.add peer acc)
        acc
        (t.peers_with_region region))
    Iset.empty
    (Lbc_wal.Record.regions record)
  |> Iset.elements

let broadcast (t : t) record =
  match propagation_peers t record with
  | [] -> ()
  | peers ->
      let iov = Wire.encode_iov record in
      let len = Lbc_util.Slice.iov_length iov in
      (* the pre-iovec path materialized the message once per broadcast *)
      Lbc_util.Slice.count_saved len;
      (* Arrow tails for each (lock, seqno) this record advances; every
         receiver's apply span binds the matching head. *)
      if Obs.enabled t.obs then
        List.iter
          (fun l ->
            Obs.flow_start t.obs
              ~id:
                (Obs.flow_id ~lock:l.Lbc_wal.Record.lock_id
                   ~seqno:l.Lbc_wal.Record.seqno)
              ~pid:t.id ~tid:Obs.lane_txn)
          record.Lbc_wal.Record.locks;
      L.debug (fun m ->
          m "node %d broadcasts tid %d: %d regions, %d wire bytes" t.id
            record.Lbc_wal.Record.tid
            (List.length (Lbc_wal.Record.regions record))
            len);
      if t.config.Config.multicast then begin
        t.stats.updates_sent <- t.stats.updates_sent + 1;
        t.stats.update_bytes_sent <- t.stats.update_bytes_sent + len;
        t.multicast_update ~dsts:peers iov
      end
      else
        List.iter
          (fun peer ->
            t.stats.updates_sent <- t.stats.updates_sent + 1;
            t.stats.update_bytes_sent <- t.stats.update_bytes_sent + len;
            t.send_update ~dst:peer iov)
          peers

(* --------------------------------------------------------------- *)
(* Crash rejoin *)

(* Bring a crashed node back: every volatile structure is rebuilt from
   what survives a crash — the database image (as of [applied], the last
   checkpoint) and the node's own durable log.  Replaying the log tail
   through [receive_record] re-applies our own commits in order; records
   whose cross-lock dependencies are missing are held and, with repair
   enabled, trigger repair fetches from the peers.  Updates committed
   elsewhere since the checkpoint are recovered on demand: the first
   acquire of each lock interlocks on the token's last-write sequence
   number and repairs the gap.

   The replayed tail is also rebroadcast to the peers.  A crash can land
   between logging a commit and propagating it, leaving the record in
   our durable log only; peers that already applied it discard the
   duplicate, peers that missed it heal.  Without the rebroadcast such a
   record would be invisible to everyone until server-side recovery.

   Two modes: [Replay_all] (the original path) replays the whole tail as
   concurrent partitioned streams before anything else happens on the
   node; [On_demand] indexes the tail (seeded by the checkpoint's
   persisted region-index record) and serves immediately — the first
   touch of a cold chain replays just that chain, a background drain
   walks the rest hottest-lock-first. *)

(* Apply one record of a replay stream and account its retention.  The
   internal replay path must bypass the serving gates (it is what warms
   them), so it calls [receive_record] directly. *)
let replay_one t ~off (record : Lbc_wal.Record.txn) =
  receive_record t record;
  if retains t && Lbc_wal.Record.is_write record then
    track_unacked t ~offset:off record ~peers:(propagation_peers t record)

let rec replay_stream (t : t) (r : recovery) (s : stream) =
  match s.status with
  | Warm -> ()
  | Replaying ->
      (* Someone else is replaying this chain; serving order only needs
         the chain applied, not applied by us. *)
      Lbc_sim.Condvar.await
        ~info:(Printf.sprintf "n%d awaits replay of stream %d" t.id s.sid)
        r.warm_cv
        (fun () -> s.status <> Replaying);
      (* The replayer may have failed and reset the chain to Cold; retry
         in this process so a failure surfaces to every toucher instead
         of hanging the waiters. *)
      if s.status <> Warm then replay_stream t r s
  | Cold ->
      s.status <- Replaying;
      let log = Lbc_rvm.Rvm.log t.rvm in
      let sp =
        if Obs.enabled t.obs then
          Obs.span_begin t.obs ~name:"replay-chain" ~pid:t.id
            ~tid:Obs.lane_apply
            ?args:
              (if Obs.tracing t.obs then
                 Some
                   [ ("stream", Obs.I s.sid);
                     ("records", Obs.I (List.length s.offsets)) ]
               else None)
            ()
        else Obs.null_span
      in
      (try
         List.iter
           (fun off ->
             match Lbc_wal.Log.read_at log ~off with
             | Ok record -> replay_one t ~off record
             | Error why ->
                 raise (Coherency_error ("on-demand replay: " ^ why)))
           s.offsets
       with e ->
         (* Leave the chain retryable and wake the waiters; [r.cold]
            keeps counting it, so retention stays pinned at the head and
            nothing serves its stale regions. *)
         s.status <- Cold;
         ignore (Obs.span_end t.obs sp : float);
         Lbc_sim.Condvar.broadcast r.warm_cv;
         raise e);
      s.status <- Warm;
      List.iter
        (fun k ->
          match Lbc_wal.Region_index.untag k with
          | Lbc_wal.Region_index.Region rid -> (
              match Lbc_rvm.Rvm.region t.rvm rid with
              | reg -> Lbc_rvm.Region.set_warm reg
              | exception Not_found -> ())
          | Lbc_wal.Region_index.Lock _ -> ())
        s.skeys;
      r.cold <- r.cold - 1;
      ignore (Obs.span_end t.obs sp : float);
      Obs.observe t.obs "recovery_us"
        (Lbc_sim.Engine.now t.engine -. r.started_at);
      (* The last stream warming completes the unacked rebuild: release
         the head pin installed at rejoin. *)
      if r.cold = 0 then update_retention t;
      Lbc_sim.Condvar.broadcast r.warm_cv

(* Serving gates: make sure the chain covering [key] has been replayed
   before state it governs is read, written, served to a peer, or used
   in an ordering decision.  No-ops outside an on-demand recovery. *)
let ensure_warm_key (t : t) key =
  match t.recovery with
  | None -> ()
  | Some r when r.cold = 0 -> ()
  | Some r -> (
      match Hashtbl.find_opt r.by_key key with
      | None -> ()
      | Some i -> replay_stream t r r.streams.(i))

let ensure_warm_lock t lock =
  ensure_warm_key t (Lbc_wal.Region_index.tag (Lbc_wal.Region_index.Lock lock))

let ensure_warm_region t region =
  ensure_warm_key t
    (Lbc_wal.Region_index.tag (Lbc_wal.Region_index.Region region))

let ensure_warm_record t (record : Lbc_wal.Record.txn) =
  List.iter
    (fun l -> ensure_warm_lock t l.Lbc_wal.Record.lock_id)
    record.Lbc_wal.Record.locks;
  List.iter
    (fun region -> ensure_warm_region t region)
    (Lbc_wal.Record.regions record)

(* Chain priority for the background drain: total local acquire count of
   the chain's locks (the lock table's heat counters).  With tracing off
   every chain scores 0 and first-appearance (log) order is kept. *)
let stream_heat (t : t) (s : stream) =
  List.fold_left
    (fun acc k ->
      match Lbc_wal.Region_index.untag k with
      | Lbc_wal.Region_index.Lock l when l >= 0 ->
          acc + Obs.counter t.obs (Lbc_locks.Table.heat_key l)
      | _ -> acc)
    0 s.skeys

let rejoin ?(mode = Replay_all) (t : t) ~applied =
  t.pinned <- false;
  t.pending <- [];
  Hashtbl.reset t.retained;
  Hashtbl.reset t.fetch_marks;
  Hashtbl.reset t.repairs;
  Hashtbl.reset t.applied;
  t.recovery <- None;
  t.ttfc_mark <- None;
  (* The crash killed any process that was mid-transaction; those
     transactions will never commit, so they must not keep a later fuzzy
     checkpoint waiting for quiescence. *)
  Lbc_rvm.Rvm.clear_live_txns t.rvm;
  List.iter
    (fun region -> Lbc_rvm.Region.reload_from_db region)
    (Lbc_rvm.Rvm.regions t.rvm);
  List.iter (fun (lock, seq) -> set_applied t lock seq) applied;
  (* Rebuild retention from what survives: until gossip proves otherwise,
     assume every own write still in the log may be needed by a peer (the
     gossip tables died with the crash). *)
  t.unacked <- [];
  Hashtbl.reset t.peer_applied;
  Lbc_wal.Log.set_retention_water (Lbc_rvm.Rvm.log t.rvm) max_int;
  (* A crash mid-fuzzy-checkpoint leaves the ckpt water pinned (the end
     marker never made it); the checkpoint is abandoned, so unpin. *)
  Lbc_wal.Log.set_ckpt_water (Lbc_rvm.Rvm.log t.rvm) max_int;
  match mode with
  | Replay_all ->
      let items, _status =
        Lbc_wal.Log.fold (Lbc_rvm.Rvm.log t.rvm) ~init:[] (fun acc off txn ->
            (off, txn) :: acc)
      in
      let items = List.rev items in
      let records = List.map snd items in
      if retains t then
        List.iter
          (fun (off, (r : Lbc_wal.Record.txn)) ->
            if Lbc_wal.Record.is_write r then
              track_unacked t ~offset:off r ~peers:(propagation_peers t r))
          items;
      (* Partitioned replay: split the surviving tail by lock/region
         closure and replay the independent streams as concurrent
         processes.  Streams share no locks and no regions, so their
         applies commute; within a stream log order is kept, so each
         record's [prev_write_seq] chain is intact. *)
      let streams = Merge.partition records in
      let n_streams = List.length streams in
      let remaining = ref n_streams in
      let done_cv = Lbc_sim.Condvar.create () in
      let t0 = Lbc_sim.Engine.now t.engine in
      List.iteri
        (fun i stream ->
          Lbc_sim.Proc.spawn t.engine
            ~name:(Printf.sprintf "n%d recover-p%d" t.id i)
            (fun () ->
              List.iter (receive_record t) stream;
              Obs.observe t.obs "recovery_us"
                (Lbc_sim.Engine.now t.engine -. t0);
              decr remaining;
              Lbc_sim.Condvar.broadcast done_cv))
        streams;
      if Obs.enabled t.obs && n_streams > 0 then
        Obs.count ~pid:t.id t.obs "recovery_partitions" n_streams;
      Lbc_sim.Condvar.broadcast t.applied_cv;
      let own_writes = List.filter Lbc_wal.Record.is_write records in
      if own_writes <> [] then
        (* Fabric sends charge wire time, so they need process context;
           the rebroadcast also waits for the replay streams to finish so
           peers never see our tail before we have re-applied it
           ourselves. *)
        Lbc_sim.Proc.spawn t.engine
          ~name:(Printf.sprintf "n%d rejoin-sync" t.id)
          (fun () ->
            Lbc_sim.Condvar.await
              ~info:
                (Printf.sprintf "rejoin n%d awaits %d replay streams" t.id
                   n_streams)
              done_cv
              (fun () -> !remaining = 0);
            List.iter (broadcast t) own_writes)
  | On_demand ->
      (* Index the surviving tail — seeded by the checkpoint's persisted
         region-index control record, extended with whatever was
         appended since — and serve immediately.  Nothing is replayed
         here; first touch and the background drain do it.  Only this
         mode feeds [time_to_first_commit_us]: the bench compares
         on-demand rows by it, so Replay_all rejoins must not pollute
         the samples. *)
      t.ttfc_mark <- Some (Lbc_sim.Engine.now t.engine);
      let log = Lbc_rvm.Rvm.log t.rvm in
      let idx, _status = Lbc_wal.Region_index.of_log log in
      let entries = Lbc_wal.Region_index.entries idx in
      let streams =
        Array.of_list
          (List.mapi
             (fun i (e : Lbc_wal.Record.index_entry) ->
               { sid = i; offsets = e.offsets; skeys = e.keys;
                 status = Cold })
             entries)
      in
      let by_key = Hashtbl.create 32 in
      Array.iter
        (fun s -> List.iter (fun k -> Hashtbl.replace by_key k s.sid) s.skeys)
        streams;
      let r =
        { streams; by_key; cold = Array.length streams;
          warm_cv = Lbc_sim.Condvar.create ();
          started_at = Lbc_sim.Engine.now t.engine }
      in
      t.recovery <- Some r;
      (* Every region a cold chain touches serves stale (checkpoint)
         bytes until that chain replays: mark them cold so direct reads
         gate too.  Retention stays pinned at the head until the unacked
         list is rebuilt (streams warm out of log order). *)
      Array.iter
        (fun s ->
          List.iter
            (fun k ->
              match Lbc_wal.Region_index.untag k with
              | Lbc_wal.Region_index.Region rid -> (
                  match Lbc_rvm.Rvm.region t.rvm rid with
                  | reg -> Lbc_rvm.Region.set_cold reg
                  | exception Not_found -> ())
              | Lbc_wal.Region_index.Lock _ -> ())
            s.skeys)
        streams;
      (* Pin unconditionally, not just under [retains t]: even in an
         eager non-repair config the cold chains' records are the only
         copy of their committed updates (the regions were reloaded from
         the checkpoint image, so a fuzzy checkpoint flushes nothing for
         them).  Released by [replay_stream] when the last stream
         warms. *)
      if r.cold > 0 then
        Lbc_wal.Log.set_retention_water log (Lbc_wal.Log.head log);
      if Obs.enabled t.obs && r.cold > 0 then
        Obs.count ~pid:t.id t.obs "recovery_partitions" r.cold;
      Lbc_sim.Condvar.broadcast t.applied_cv;
      if r.cold > 0 then
        (* Background drain, hottest locks first; once every stream is
           warm, rebroadcast the tail's own writes so peers that missed
           a pre-crash propagation heal. *)
        Lbc_sim.Proc.spawn t.engine
          ~name:(Printf.sprintf "n%d recover-drain" t.id)
          (fun () ->
            let order =
              List.stable_sort
                (fun a b -> Int.compare (stream_heat t b) (stream_heat t a))
                (Array.to_list streams)
            in
            List.iter (fun s -> replay_stream t r s) order;
            Array.iter
              (fun s ->
                List.iter
                  (fun off ->
                    match Lbc_wal.Log.read_at log ~off with
                    | Ok rc when Lbc_wal.Record.is_write rc ->
                        broadcast t rc
                    | Ok _ | Error _ -> ())
                  s.offsets)
              streams)

let recovering (t : t) =
  match t.recovery with Some r -> r.cold > 0 | None -> false

(* --------------------------------------------------------------- *)
(* Reads (gated on warmth during an on-demand rejoin) *)

let read t ~region ~offset ~len =
  let reg = Lbc_rvm.Rvm.region t.rvm region in
  if not (Lbc_rvm.Region.is_warm reg) then ensure_warm_region t region;
  Lbc_rvm.Region.read reg ~offset ~len

let get_u64 t ~region ~offset =
  let reg = Lbc_rvm.Rvm.region t.rvm region in
  if not (Lbc_rvm.Region.is_warm reg) then ensure_warm_region t region;
  Lbc_rvm.Region.get_u64 reg ~offset

(* --------------------------------------------------------------- *)
(* Message handling *)

let handle (t : t) ~src msg =
  match msg with
  | Msg.Lock m -> Lbc_locks.Table.handle t.locks ~src m
  | Msg.Update iov ->
      let record = Wire.decode_iov iov in
      (* Coherency apply of a cold chain's lock: replay the chain first
         so the record's readiness is judged against recovered state. *)
      ensure_warm_record t record;
      receive_record t record
  | Msg.Fetch { lock; have } ->
      (* A cold chain may hold newer committed bytes for this lock than
         the checkpoint image; warm it before serving, so a peer's
         repair or lazy fetch never receives stale retained state. *)
      ensure_warm_lock t lock;
      let records = retained_after t ~lock ~have in
      let payloads =
        List.map
          (fun r ->
            let iov = Wire.encode_iov r in
            (* the pre-iovec path materialized each reply here *)
            Lbc_util.Slice.count_saved (Lbc_util.Slice.iov_length iov);
            iov)
          records
      in
      t.send ~dst:src (Msg.Fetched { lock; payloads })
  | Msg.Fetched { lock; payloads } ->
      t.stats.records_fetched <- t.stats.records_fetched + List.length payloads;
      if Obs.enabled t.obs then (
        match Obs.take_mark t.obs (fetch_mark_key t lock) with
        | Some rtt -> Obs.observe ~pid:t.id t.obs "fetch_rtt_us" rtt
        | None -> ());
      List.iter
        (fun iov ->
          let record = Wire.decode_iov iov in
          ensure_warm_record t record;
          receive_record t record)
        payloads
  | Msg.LowWater { applied } -> receive_low_water t ~src ~applied

(* --------------------------------------------------------------- *)
(* Application transactions *)

module Txn = struct
  type node = t

  type t = {
    node : node;
    rvm_txn : Lbc_rvm.Rvm.txn;
    mutable held : int list;  (* acquired lock ids, newest first *)
    sp : Obs.span;  (* the whole-transaction span, ended at commit/abort *)
  }

  let begin_ node =
    node.txn_updates := 0;
    {
      node;
      rvm_txn = Lbc_rvm.Rvm.begin_txn ~restore:Lbc_rvm.Rvm.Restore node.rvm;
      held = [];
      sp =
        (if Obs.enabled node.obs then
           Obs.span_begin node.obs ~name:"txn" ~pid:node.id ~tid:Obs.lane_txn ()
         else Obs.null_span);
    }

  (* The interlock of Section 3.4 plus lock bookkeeping, shared by both
     acquire flavours. *)
  let finish_acquire t lock (g : Lbc_locks.Table.grant) =
    let node = t.node in
    (* During an on-demand rejoin the lock's applied-sequence table may
       lag the durable log; replay the lock's chain before the interlock
       compares against it. *)
    ensure_warm_lock node lock;
    if applied_seq node lock < g.Lbc_locks.Table.prev_write_seq then begin
      node.stats.interlock_waits <- node.stats.interlock_waits + 1;
      let sp =
        if Obs.enabled node.obs then
          Obs.span_begin node.obs ~name:"interlock" ~pid:node.id
            ~tid:Obs.lane_txn
            ?args:
              (if Obs.tracing node.obs then
                 Some
                   [ ("lock", Obs.I lock);
                     ("need", Obs.I g.Lbc_locks.Table.prev_write_seq) ]
               else None)
            ()
        else Obs.null_span
      in
      (if
         node.config.Config.propagation = Config.Lazy
         && g.Lbc_locks.Table.last_writer >= 0
       then
         send_fetch node ~lock ~have:(applied_seq node lock)
           ~from:g.Lbc_locks.Table.last_writer);
      arm_repair node ~lock ~need:g.Lbc_locks.Table.prev_write_seq
        ~from:g.Lbc_locks.Table.last_writer;
      Lbc_sim.Condvar.await
        ~info:
          (Printf.sprintf "interlock l%d need %d have %d" lock
             g.Lbc_locks.Table.prev_write_seq (applied_seq node lock))
        node.applied_cv
        (fun () -> applied_seq node lock >= g.Lbc_locks.Table.prev_write_seq);
      Obs.observe ~pid:node.id node.obs "interlock_us" (Obs.span_end node.obs sp)
    end;
    Lbc_rvm.Rvm.set_lock t.rvm_txn ~lock_id:lock ~seqno:g.Lbc_locks.Table.seqno
      ~prev_write_seq:g.Lbc_locks.Table.prev_write_seq;
    t.held <- lock :: t.held

  let check_acquirable t lock =
    if t.node.pinned then
      raise (Coherency_error "acquire on a version-pinned node");
    if List.mem lock t.held then
      raise (Coherency_error "lock already held by this transaction")

  let acquire t lock =
    check_acquirable t lock;
    let g = Lbc_locks.Table.acquire t.node.locks lock in
    finish_acquire t lock g

  let acquire_timeout t lock ~timeout =
    check_acquirable t lock;
    match Lbc_locks.Table.acquire_timeout t.node.locks lock ~timeout with
    | Some g ->
        finish_acquire t lock g;
        true
    | None -> false

  let set_range t ~region ~offset ~len =
    ensure_warm_region t.node region;
    Lbc_rvm.Rvm.set_range t.rvm_txn ~region ~offset ~len

  let write t ~region ~offset b =
    ensure_warm_region t.node region;
    Lbc_rvm.Rvm.write t.rvm_txn ~region ~offset b

  let set_u64 t ~region ~offset v =
    ensure_warm_region t.node region;
    Lbc_rvm.Rvm.set_u64 t.rvm_txn ~region ~offset v
  let read t ~region ~offset ~len = read t.node ~region ~offset ~len
  let get_u64 t ~region ~offset = get_u64 t.node ~region ~offset

  let set_command t ~op ~params ~regions =
    Lbc_rvm.Rvm.set_command t.rvm_txn ~op ~params ~regions

  let commit_outcome t =
    let node = t.node in
    let csp =
      if Obs.enabled node.obs then
        Obs.span_begin node.obs ~name:"commit" ~pid:node.id ~tid:Obs.lane_txn
          ?args:
            (if Obs.tracing node.obs then
               Some [ ("locks", Obs.I (List.length t.held)) ]
             else None)
          ()
      else Obs.null_span
    in
    let mode =
      if node.config.Config.flush_on_commit then Lbc_rvm.Rvm.Flush
      else Lbc_rvm.Rvm.No_flush
    in
    (* Captured before the append: the record will land at or after this
       offset (concurrent committers may slip in during cost charging),
       so a retention mark here never trims the record itself. *)
    let log_off = Lbc_wal.Log.tail (Lbc_rvm.Rvm.log node.rvm) in
    let outcome = Lbc_rvm.Rvm.commit_full ~mode t.rvm_txn in
    let record = outcome.Lbc_rvm.Rvm.record in
    let wrote = Lbc_wal.Record.is_write record in
    if wrote then begin
      (* Our own updates are by definition applied locally. *)
      List.iter
        (fun l -> set_applied node l.Lbc_wal.Record.lock_id l.Lbc_wal.Record.seqno)
        record.Lbc_wal.Record.locks;
      if retains node then begin
        retain node record;
        if node.config.Config.disk_logging then
          track_unacked node ~offset:log_off record
            ~peers:(propagation_peers node record)
      end
    end;
    (* Two-phase: release everything at commit (paper Section 2.1), then
       propagate; receivers' interlock tolerates a token overtaking its
       updates. *)
    List.iter
      (fun lock -> Lbc_locks.Table.release node.locks lock ~wrote)
      (List.rev t.held);
    t.held <- [];
    (if wrote then
       match node.config.Config.propagation with
       | Config.Eager -> broadcast node record
       | Config.Lazy ->
           (* Multi-lock records cannot be reconstructed from per-lock
              fetches; fall back to eager broadcast for them. *)
           if List.length record.Lbc_wal.Record.locks > 1 then
             broadcast node record);
    if Obs.enabled node.obs then begin
      Obs.observe ~pid:node.id node.obs "commit_us"
        (Obs.span_end node.obs csp
           ?args:
             (if Obs.tracing node.obs then
                Some [ ("wrote", Obs.I (if wrote then 1 else 0)) ]
              else None));
      ignore
        (Obs.span_end node.obs t.sp
           ?args:
             (if Obs.tracing node.obs then
                Some [ ("outcome", Obs.S "commit") ]
              else None)
          : float)
    end;
    (* Recovery headline: virtual time from the start of the last rejoin
       to the first commit the restarted node completes. *)
    (match node.ttfc_mark with
    | Some t0 ->
        node.ttfc_mark <- None;
        Obs.observe ~pid:node.id node.obs "time_to_first_commit_us"
          (Lbc_sim.Engine.now node.engine -. t0)
    | None -> ());
    outcome

  let commit_record t = (commit_outcome t).Lbc_rvm.Rvm.record
  let commit t = ignore (commit_outcome t)

  let abort t =
    let node = t.node in
    Lbc_rvm.Rvm.abort t.rvm_txn;
    List.iter
      (fun lock -> Lbc_locks.Table.release node.locks lock ~wrote:false)
      (List.rev t.held);
    t.held <- [];
    if Obs.enabled node.obs then
      ignore
        (Obs.span_end node.obs t.sp
           ?args:
             (if Obs.tracing node.obs then
                Some [ ("outcome", Obs.S "abort") ]
              else None)
          : float)
end
