exception Coherency_error of string

let log_src = Logs.Src.create "lbc.node" ~doc:"log-based coherency node events"

module L = (val Logs.src_log log_src)

type stats = {
  mutable updates_sent : int;
  mutable update_bytes_sent : int;
  mutable records_received : int;
  mutable records_held : int;
  mutable interlock_waits : int;
  mutable fetches_sent : int;
  mutable records_fetched : int;
}

type t = {
  id : int;
  config : Config.t;
  rvm : Lbc_rvm.Rvm.t;
  locks : Lbc_locks.Table.t;
  send : dst:int -> Msg.t -> unit;
  multicast_send : dsts:int list -> Msg.t -> unit;
  peers_with_region : int -> int list;
  applied : (int, int) Hashtbl.t;  (* lock id -> applied write seqno *)
  applied_cv : Lbc_sim.Condvar.t;
  mutable pending : Lbc_wal.Record.txn list;  (* arrival order *)
  retained : (int, Lbc_wal.Record.txn list) Hashtbl.t;  (* newest first *)
  fetch_marks : (int * int, unit) Hashtbl.t;  (* (lock, have) fetches sent *)
  txn_updates : int ref;  (* set_range calls in the running transaction *)
  mutable pinned : bool;  (* version-pinned reader: buffer, don't apply *)
  stats : stats;
}

type deps = {
  node_id : int;
  nodes : int;
  config : Config.t;
  send : dst:int -> Msg.t -> unit;
  multicast_send : dsts:int list -> Msg.t -> unit;
  peers_with_region : int -> int list;
  log_dev : Lbc_storage.Dev.t;
}

let model_class = function
  | Lbc_rvm.Rvm.Redundant -> Lbc_costmodel.Model.Redundant
  | Lbc_rvm.Rvm.Ordered -> Lbc_costmodel.Model.Ordered
  | Lbc_rvm.Rvm.Unordered -> Lbc_costmodel.Model.Unordered

let instrumentation config txn_updates =
  if not config.Config.charge_costs then Lbc_rvm.Rvm.no_instrumentation
  else
    {
      Lbc_rvm.Rvm.on_set_range =
        (fun cls ~len:_ ->
          incr txn_updates;
          Lbc_sim.Proc.sleep
            (Lbc_costmodel.Model.per_update_cost (model_class cls)
               ~nth:!txn_updates));
      on_commit_collect =
        (fun ~ranges ~bytes ->
          Lbc_sim.Proc.sleep (Lbc_costmodel.Model.collect_log ~ranges ~bytes));
      on_apply =
        (fun ~ranges ~bytes ->
          Lbc_sim.Proc.sleep (Lbc_costmodel.Model.apply_log ~ranges ~bytes));
    }

let create (deps : deps) =
  let txn_updates = ref 0 in
  let rvm_options =
    {
      Lbc_rvm.Rvm.coalesce = deps.config.Config.coalesce;
      disk_logging = deps.config.Config.disk_logging;
      range_header_size = deps.config.Config.range_header_size;
      instrumentation = instrumentation deps.config txn_updates;
    }
  in
  let rvm =
    Lbc_rvm.Rvm.init ~options:rvm_options ~node:deps.node_id
      ~log_dev:deps.log_dev ()
  in
  let locks =
    Lbc_locks.Table.create ~node:deps.node_id ~nodes:deps.nodes
      ~send:(fun ~dst m -> deps.send ~dst (Msg.Lock m))
      ()
  in
  {
    id = deps.node_id;
    config = deps.config;
    rvm;
    locks;
    send = deps.send;
    multicast_send = deps.multicast_send;
    peers_with_region = deps.peers_with_region;
    applied = Hashtbl.create 16;
    applied_cv = Lbc_sim.Condvar.create ();
    pending = [];
    retained = Hashtbl.create 16;
    fetch_marks = Hashtbl.create 16;
    txn_updates;
    pinned = false;
    stats =
      {
        updates_sent = 0;
        update_bytes_sent = 0;
        records_received = 0;
        records_held = 0;
        interlock_waits = 0;
        fetches_sent = 0;
        records_fetched = 0;
      };
  }

let id (t : t) = t.id
let rvm (t : t) = t.rvm
let locks (t : t) = t.locks
let config (t : t) = t.config
let stats (t : t) = t.stats

let applied_seq t lock =
  Option.value ~default:0 (Hashtbl.find_opt t.applied lock)

let set_applied t lock seq =
  if seq > applied_seq t lock then Hashtbl.replace t.applied lock seq

let pending_count t = List.length t.pending

let map_region t ~id ~db ~size = Lbc_rvm.Rvm.map_region t.rvm ~id ~db ~size

let read t ~region ~offset ~len =
  Lbc_rvm.Region.read (Lbc_rvm.Rvm.region t.rvm region) ~offset ~len

let get_u64 t ~region ~offset =
  Lbc_rvm.Region.get_u64 (Lbc_rvm.Rvm.region t.rvm region) ~offset

(* --------------------------------------------------------------- *)
(* Retention (lazy propagation) *)

let retain (t : t) (record : Lbc_wal.Record.txn) =
  List.iter
    (fun l ->
      let lock = l.Lbc_wal.Record.lock_id in
      let existing = Option.value ~default:[] (Hashtbl.find_opt t.retained lock) in
      Hashtbl.replace t.retained lock (record :: existing))
    record.Lbc_wal.Record.locks

let resync (t : t) ~applied =
  if t.pending <> [] then
    raise (Coherency_error "resync with records still pending");
  List.iter
    (fun region -> Lbc_rvm.Region.reload_from_db region)
    (Lbc_rvm.Rvm.regions t.rvm);
  List.iter (fun (lock, seq) -> set_applied t lock seq) applied;
  Hashtbl.reset t.retained;
  Hashtbl.reset t.fetch_marks;
  Lbc_sim.Condvar.broadcast t.applied_cv

let retained_count t =
  Hashtbl.fold (fun _ rs acc -> acc + List.length rs) t.retained 0

let gc_retained t = Hashtbl.reset t.retained

let retained_after t ~lock ~have =
  let seq_for record =
    match
      List.find_opt
        (fun l -> l.Lbc_wal.Record.lock_id = lock)
        record.Lbc_wal.Record.locks
    with
    | Some l -> l.Lbc_wal.Record.seqno
    | None -> raise (Coherency_error "retained record lacks its lock")
  in
  Option.value ~default:[] (Hashtbl.find_opt t.retained lock)
  |> List.filter (fun r -> seq_for r > have)
  |> List.sort (fun a b -> Int.compare (seq_for a) (seq_for b))

(* --------------------------------------------------------------- *)
(* Applying received records in lock-sequence order *)

type readiness = Ready | Hold | Duplicate

let readiness t (record : Lbc_wal.Record.txn) =
  let dup =
    List.exists
      (fun l -> applied_seq t l.Lbc_wal.Record.lock_id >= l.Lbc_wal.Record.seqno)
      record.Lbc_wal.Record.locks
  in
  if dup then Duplicate
  else if
    List.for_all
      (fun l ->
        applied_seq t l.Lbc_wal.Record.lock_id >= l.Lbc_wal.Record.prev_write_seq)
      record.Lbc_wal.Record.locks
  then Ready
  else Hold

let apply_now t record =
  Lbc_rvm.Rvm.apply_record t.rvm record;
  List.iter
    (fun l -> set_applied t l.Lbc_wal.Record.lock_id l.Lbc_wal.Record.seqno)
    record.Lbc_wal.Record.locks;
  if t.config.Config.propagation = Config.Lazy then retain t record;
  Lbc_sim.Condvar.broadcast t.applied_cv

(* Apply everything applicable, holding the rest; newly applied records can
   unblock held ones, so iterate to a fixpoint. *)
let rec drain_pending t =
  let ready, rest =
    List.partition (fun r -> readiness t r = Ready) t.pending
  in
  let rest = List.filter (fun r -> readiness t r <> Duplicate) rest in
  t.pending <- rest;
  match ready with
  | [] -> ()
  | _ ->
      List.iter (apply_now t) ready;
      drain_pending t

let send_fetch (t : t) ~lock ~have ~from =
  if from <> t.id && not (Hashtbl.mem t.fetch_marks (lock, have)) then begin
    Hashtbl.replace t.fetch_marks (lock, have) ();
    t.stats.fetches_sent <- t.stats.fetches_sent + 1;
    L.debug (fun m -> m "node %d fetches lock %d > %d from node %d" t.id lock have from);
    t.send ~dst:from (Msg.Fetch { lock; have })
  end

(* Lazy mode: a held record's author must itself have applied everything
   the record depends on, so it can supply the missing chains.  Without
   this cascade a multi-lock record can deadlock an interlocked acquire
   whose per-lock fetch covers only one of the record's locks. *)
let request_dependencies (t : t) (record : Lbc_wal.Record.txn) =
  if t.config.Config.propagation = Config.Lazy then
    List.iter
      (fun l ->
        let have = applied_seq t l.Lbc_wal.Record.lock_id in
        if have < l.Lbc_wal.Record.prev_write_seq then
          send_fetch t ~lock:l.Lbc_wal.Record.lock_id ~have
            ~from:record.Lbc_wal.Record.node)
      record.Lbc_wal.Record.locks

let receive_record t record =
  t.stats.records_received <- t.stats.records_received + 1;
  if t.pinned then t.pending <- t.pending @ [ record ]
  else
    match readiness t record with
    | Duplicate -> ()
    | Ready ->
        apply_now t record;
        drain_pending t
    | Hold ->
        t.stats.records_held <- t.stats.records_held + 1;
        L.debug (fun m ->
            m "node %d holds out-of-order record (node %d tid %d); %d pending"
              t.id record.Lbc_wal.Record.node record.Lbc_wal.Record.tid
              (List.length t.pending + 1));
        t.pending <- t.pending @ [ record ];
        request_dependencies t record

let pin (t : t) = t.pinned <- true
let is_pinned (t : t) = t.pinned

let accept (t : t) =
  if t.pinned then begin
    t.pinned <- false;
    drain_pending t
  end

(* --------------------------------------------------------------- *)
(* Message handling *)

let handle (t : t) ~src msg =
  match msg with
  | Msg.Lock m -> Lbc_locks.Table.handle t.locks ~src m
  | Msg.Update payload -> receive_record t (Wire.decode payload)
  | Msg.Fetch { lock; have } ->
      let records = retained_after t ~lock ~have in
      let payloads = List.map Wire.encode records in
      t.send ~dst:src (Msg.Fetched { lock; payloads })
  | Msg.Fetched { lock = _; payloads } ->
      t.stats.records_fetched <- t.stats.records_fetched + List.length payloads;
      List.iter (fun p -> receive_record t (Wire.decode p)) payloads

(* --------------------------------------------------------------- *)
(* Propagation at commit *)

let propagation_peers (t : t) (record : Lbc_wal.Record.txn) =
  let module Iset = Set.Make (Int) in
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc peer -> Iset.add peer acc)
        acc
        (t.peers_with_region r.Lbc_wal.Record.region))
    Iset.empty record.Lbc_wal.Record.ranges
  |> Iset.elements

let broadcast (t : t) record =
  let payload = Wire.encode record in
  L.debug (fun m ->
      m "node %d broadcasts tid %d: %d ranges, %d wire bytes" t.id
        record.Lbc_wal.Record.tid
        (List.length record.Lbc_wal.Record.ranges)
        (Bytes.length payload));
  match propagation_peers t record with
  | [] -> ()
  | peers when t.config.Config.multicast ->
      t.stats.updates_sent <- t.stats.updates_sent + 1;
      t.stats.update_bytes_sent <- t.stats.update_bytes_sent + Bytes.length payload;
      t.multicast_send ~dsts:peers (Msg.Update payload)
  | peers ->
      List.iter
        (fun peer ->
          t.stats.updates_sent <- t.stats.updates_sent + 1;
          t.stats.update_bytes_sent <-
            t.stats.update_bytes_sent + Bytes.length payload;
          t.send ~dst:peer (Msg.Update payload))
        peers

(* --------------------------------------------------------------- *)
(* Application transactions *)

module Txn = struct
  type node = t

  type t = {
    node : node;
    rvm_txn : Lbc_rvm.Rvm.txn;
    mutable held : int list;  (* acquired lock ids, newest first *)
  }

  let begin_ node =
    node.txn_updates := 0;
    {
      node;
      rvm_txn = Lbc_rvm.Rvm.begin_txn ~restore:Lbc_rvm.Rvm.Restore node.rvm;
      held = [];
    }

  (* The interlock of Section 3.4 plus lock bookkeeping, shared by both
     acquire flavours. *)
  let finish_acquire t lock (g : Lbc_locks.Table.grant) =
    let node = t.node in
    if applied_seq node lock < g.Lbc_locks.Table.prev_write_seq then begin
      node.stats.interlock_waits <- node.stats.interlock_waits + 1;
      (if
         node.config.Config.propagation = Config.Lazy
         && g.Lbc_locks.Table.last_writer >= 0
       then
         send_fetch node ~lock ~have:(applied_seq node lock)
           ~from:g.Lbc_locks.Table.last_writer);
      Lbc_sim.Condvar.await node.applied_cv (fun () ->
          applied_seq node lock >= g.Lbc_locks.Table.prev_write_seq)
    end;
    Lbc_rvm.Rvm.set_lock t.rvm_txn ~lock_id:lock ~seqno:g.Lbc_locks.Table.seqno
      ~prev_write_seq:g.Lbc_locks.Table.prev_write_seq;
    t.held <- lock :: t.held

  let check_acquirable t lock =
    if t.node.pinned then
      raise (Coherency_error "acquire on a version-pinned node");
    if List.mem lock t.held then
      raise (Coherency_error "lock already held by this transaction")

  let acquire t lock =
    check_acquirable t lock;
    let g = Lbc_locks.Table.acquire t.node.locks lock in
    finish_acquire t lock g

  let acquire_timeout t lock ~timeout =
    check_acquirable t lock;
    match Lbc_locks.Table.acquire_timeout t.node.locks lock ~timeout with
    | Some g ->
        finish_acquire t lock g;
        true
    | None -> false

  let set_range t ~region ~offset ~len =
    Lbc_rvm.Rvm.set_range t.rvm_txn ~region ~offset ~len

  let write t ~region ~offset b = Lbc_rvm.Rvm.write t.rvm_txn ~region ~offset b
  let set_u64 t ~region ~offset v = Lbc_rvm.Rvm.set_u64 t.rvm_txn ~region ~offset v
  let read t ~region ~offset ~len = read t.node ~region ~offset ~len
  let get_u64 t ~region ~offset = get_u64 t.node ~region ~offset

  let commit_record t =
    let node = t.node in
    let mode =
      if node.config.Config.flush_on_commit then Lbc_rvm.Rvm.Flush
      else Lbc_rvm.Rvm.No_flush
    in
    let record = Lbc_rvm.Rvm.commit ~mode t.rvm_txn in
    let wrote = record.Lbc_wal.Record.ranges <> [] in
    if wrote then begin
      (* Our own updates are by definition applied locally. *)
      List.iter
        (fun l -> set_applied node l.Lbc_wal.Record.lock_id l.Lbc_wal.Record.seqno)
        record.Lbc_wal.Record.locks;
      if node.config.Config.propagation = Config.Lazy then retain node record
    end;
    (* Two-phase: release everything at commit (paper Section 2.1), then
       propagate; receivers' interlock tolerates a token overtaking its
       updates. *)
    List.iter
      (fun lock -> Lbc_locks.Table.release node.locks lock ~wrote)
      (List.rev t.held);
    t.held <- [];
    if wrote then begin
      match node.config.Config.propagation with
      | Config.Eager -> broadcast node record
      | Config.Lazy ->
          (* Multi-lock records cannot be reconstructed from per-lock
             fetches; fall back to eager broadcast for them. *)
          if List.length record.Lbc_wal.Record.locks > 1 then
            broadcast node record
    end;
    record

  let commit t = ignore (commit_record t)

  let abort t =
    let node = t.node in
    Lbc_rvm.Rvm.abort t.rvm_txn;
    List.iter
      (fun lock -> Lbc_locks.Table.release node.locks lock ~wrote:false)
      (List.rev t.held);
    t.held <- []
end
