(* The platform seam: every runtime primitive the coherency stack
   consumes — process spawning, the clock, message delivery, durable
   devices — factored into one interface with two implementations.

   The {e sim} platform (default) is the deterministic single-core
   cooperative simulation: one {!Lbc_sim.Engine.t} drives every node,
   delivery goes through the in-memory {!Lbc_net.Fabric} with its fault
   injection and cost model, and devices are simulated images.  Its
   construction and call sequences are byte-identical to the pre-seam
   cluster, so schedule decision traces, golden vectors and
   [Engine.Stranded] reporting are unchanged.

   A {e custom} platform (the [lbc.real] backend) may run each node as
   an OCaml 5 domain with real sockets and real files.  Everything above
   this interface — [Node], [Table], [Log], [Rvm] — is shared: those
   layers only ever touch the runtime through their per-node
   {!Lbc_sim.Engine.t} handle and the send closures wired here, so the
   same code runs on both platforms. *)

exception Unsupported of string
(** Raised by cluster operations that only exist on one platform
    (deterministic scheduling, fault injection and crash/rejoin are
    sim-only; wall-clock timing is real-only). *)

let () =
  Printexc.register_printer (function
    | Unsupported what ->
        Some (Printf.sprintf "Platform.Unsupported: %s" what)
    | _ -> None)

module type S = sig
  val name : string
  (** ["sim"] or ["real"] — reported in benches and CLIs. *)

  val deterministic : bool
  (** Whether two runs with the same inputs produce the same schedule.
      True only for the sim platform. *)

  val nodes : int

  val now_us : unit -> float
  (** Microseconds since platform start: the engine's virtual clock on
      sim, the wall clock on real. *)

  val set_obs : Lbc_obs.Obs.t -> unit
  (** Install the cluster's trace/metrics sink on the transport. *)

  val open_dev : string -> Lbc_storage.Dev.t
  (** The durable device registry: simulated images on sim, real files
      (with real [fsync]) on real.  Called for each node's log device
      and each region's database device. *)

  val node_engine : int -> Lbc_sim.Engine.t
  (** The runtime handle node [i]'s processes run on.  The sim platform
      returns the one shared engine; the real platform returns node
      [i]'s private engine, driven in wall-clock time by its domain. *)

  val spawn :
    node:int ->
    name:string ->
    daemon:bool ->
    alive:(unit -> bool) ->
    (unit -> unit) ->
    unit
  (** Start a process in node [node]'s runtime context. *)

  val send : src:int -> dst:int -> Msg.t -> unit
  val broadcast : src:int -> dsts:int list -> Msg.t -> unit

  val send_v :
    src:int -> dst:int -> iov:Lbc_util.Slice.t list -> Msg.t -> unit
  (** Gather-list send: u32 length prefix + the slices, writev-style.
      The sim fabric hands the message value across by reference and
      charges the framed length; the real fabric writes the prefix and
      each slice to the destination's socket without concatenating. *)

  val broadcast_v :
    src:int -> dsts:int list -> iov:Lbc_util.Slice.t list -> Msg.t -> unit

  val start_receivers : handler:(dst:int -> src:int -> Msg.t -> unit) -> unit
  (** Start the per-channel dispatchers: for every ordered pair [(src,
      dst)], deliver that channel's messages to [handler] in send order
      (TCP FIFO semantics), one dispatcher per channel so a blocked
      handler only stalls its own channel. *)

  val run : unit -> unit
  (** Drive all spawned (non-daemon) work to completion.  Sim: drain the
      event queue.  Real: wait until every spawned task has finished and
      the network is quiescent. *)

  val shutdown : unit -> unit
  (** Tear the platform down (join domains, close sockets and files).
      No-op on sim. *)

  val total_messages : unit -> int
  val total_bytes : unit -> int
  val total_dropped : unit -> int
end

type backend =
  | Sim
  | Custom of (nodes:int -> config:Config.t -> (module S))
      (** A platform factory — [Lbc_real.Backend.factory] builds the
          OCaml 5 domains + socket fabric backend.  Kept as a factory so
          [lbc.core] never depends on the backend library. *)

(* ---------------------------------------------------------------- *)
(* The sim platform: a transparent wrapper over the engine, fabric and
   store the cluster builds.  Every function is exactly the call the
   cluster made before the seam existed. *)

let sim ~engine ~(fabric : Msg.t Lbc_net.Fabric.t)
    ~(store : Lbc_storage.Store.t) : (module S) =
  (module struct
    let name = "sim"
    let deterministic = true
    let nodes = Lbc_net.Fabric.nodes fabric
    let now_us () = Lbc_sim.Engine.now engine
    let set_obs obs = Lbc_net.Fabric.set_obs fabric obs
    let open_dev name = Lbc_storage.Store.open_dev store name
    let node_engine _ = engine

    let spawn ~node:_ ~name ~daemon ~alive f =
      Lbc_sim.Proc.spawn engine ~name ~daemon ~alive f

    let send ~src ~dst m = Lbc_net.Fabric.send fabric ~src ~dst m
    let broadcast ~src ~dsts m = Lbc_net.Fabric.broadcast fabric ~src ~dsts m
    let send_v ~src ~dst ~iov m = Lbc_net.Fabric.send_v fabric ~src ~dst ~iov m

    let broadcast_v ~src ~dsts ~iov m =
      Lbc_net.Fabric.broadcast_v fabric ~src ~dsts ~iov m

    (* One dispatcher per peer channel, like the prototype's
       per-connection receiver threads.  Daemons: being forever blocked
       on an idle channel is their normal state, not a hang worth
       reporting. *)
    let start_receivers ~handler =
      for n = 0 to nodes - 1 do
        for p = 0 to nodes - 1 do
          if p <> n then
            Lbc_sim.Proc.spawn engine
              ~name:(Printf.sprintf "dispatch-%d<-%d" n p)
              ~daemon:true
              (fun () ->
                while true do
                  let m = Lbc_net.Fabric.recv fabric ~dst:n ~src:p in
                  handler ~dst:n ~src:p m
                done)
        done
      done

    let run () = Lbc_sim.Engine.run engine
    let shutdown () = ()
    let total_messages () = Lbc_net.Fabric.total_messages fabric
    let total_bytes () = Lbc_net.Fabric.total_bytes fabric
    let total_dropped () = Lbc_net.Fabric.total_dropped fabric
  end)
