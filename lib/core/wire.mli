(** The compressed coherency wire format (paper Section 3.2).

    The broadcast data differs from the on-disk log in two ways: records
    needed only for recovery and log trimming are omitted (only new-value
    range records and lock records are sent), and each range header is
    compressed from RVM's 104 bytes to 4-24 bytes.  As in the prototype,
    compression comes from small length fields and from replacing a
    range's address with its delta from the preceding range (ranges are
    sorted by address); we realize both with varints.

    Command records (adaptive logging) are a second message kind: the
    lock records are identical, but the payload is the operation id, its
    parameter blob, and the touched-region list instead of ranges —
    receivers re-execute the operation against their cached pages.

    [encode]/[decode] round-trip a {!Lbc_wal.Record.txn} exactly. *)

val encode_iov : Lbc_wal.Record.txn -> Lbc_util.Slice.t list
(** Encode as a gather list: message and range headers live in one fresh
    arena, each range's payload is referenced in place — the committed
    data is not copied.  The concatenation of the slices is byte-identical
    to {!encode}'s output. *)

val encode : Lbc_wal.Record.txn -> Bytes.t
(** [Slice.concat (encode_iov t)] — materializes the message (counted by
    the {!Lbc_util.Slice} copy accounting); the broadcast path sends the
    gather list instead. *)

val decode : Bytes.t -> Lbc_wal.Record.txn
(** @raise Lbc_util.Codec.Truncated on malformed input. *)

val decode_iov : Lbc_util.Slice.t list -> Lbc_wal.Record.txn
(** Decode a gather list without concatenating it first.
    @raise Lbc_util.Codec.Truncated on malformed input. *)

val size : Lbc_wal.Record.txn -> int
(** [Bytes.length (encode t)], without building the message. *)

val size_uncompressed : Lbc_wal.Record.txn -> int
(** Size the same message would have with RVM's full 104-byte range
    headers — the baseline for the header-compression ablation. *)

val header_overhead : Lbc_wal.Record.txn -> int
(** Wire bytes that are not range payload: message and lock records plus
    all range headers.  Table 3's "Message Bytes" minus "Bytes Updated". *)
