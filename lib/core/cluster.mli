(** Assembly of a whole system: a network fabric, a storage service
    holding the database file and one log device per node (the paper's
    central NFS server), and N coherency nodes with their message
    dispatchers — all built on a {!Platform} backend.

    The default backend is the deterministic simulation; pass
    [~backend:(Platform.Custom Lbc_real.Backend.factory)] to run each
    node as an OCaml 5 domain with a socket fabric and real files.

    Usage pattern:
    {[
      let c = Cluster.create ~nodes:2 () in
      Cluster.add_region c ~id:0 ~size:65536;
      Cluster.map_region_all c ~region:0;
      Cluster.spawn c ~node:0 (fun node -> ... transactions ...);
      Cluster.run c
    ]} *)

type t

val create :
  ?config:Config.t ->
  ?sched:Lbc_sim.Schedule.policy ->
  ?net_params:Lbc_net.Params.t ->
  ?disk:Lbc_storage.Latency.t ->
  ?backend:Platform.backend ->
  nodes:int ->
  unit ->
  t
(** Build a cluster.  When [net_params]/[disk] are omitted they follow
    [config.charge_costs]: AN1 network and the OSDI-94 disk profile when
    charging costs, free otherwise.  [sched] selects the engine's
    same-time schedule policy (default stable FIFO); seeded policies
    explore alternative legal interleavings and record a replayable
    decision trace ({!schedule_decisions}).  [backend] (default
    {!Platform.Sim}) selects the platform; [sched]/[net_params]/[disk]
    are sim-only and raise [Invalid_argument] with a custom backend. *)

val backend_name : t -> string
(** ["sim"] or the custom platform's name (e.g. ["real"]). *)

val deterministic : t -> bool

val engine : t -> Lbc_sim.Engine.t
(** Sim-only (raises {!Platform.Unsupported} otherwise), like {!store}
    and {!fabric}: on the real backend each node has a private engine
    and there is no global one. *)

val config : t -> Config.t
val store : t -> Lbc_storage.Store.t
val size : t -> int
(** Number of nodes. *)

val node : t -> int -> Node.t

val add_region : t -> id:int -> size:int -> unit
(** Create the region's database device on the storage service. *)

val region_dev : t -> int -> Lbc_storage.Dev.t
val region_size : t -> int -> int

val map_region : t -> node:int -> region:int -> Lbc_rvm.Region.t
(** Map the region on one node (reads the database image) and register the
    node in the propagation directory. *)

val map_region_all : t -> region:int -> unit

val spawn : t -> node:int -> (Node.t -> unit) -> unit
(** Start an application process on a node.  The process dies with its
    node: if the node crashes, the process is killed at its next
    scheduling point. *)

val run : ?until:Lbc_sim.Engine.time -> ?check_stranded:bool -> t -> unit
(** Drive the cluster until the spawned work completes.  Sim: drain the
    event queue; when it drains completely (no [until] cutoff) while
    some processes are still blocked — say on a receive whose message
    was dropped, or in a lock-wait cycle — the run did not end, it hung;
    raise {!Lbc_sim.Engine.Stranded} with one description per stuck
    process instead of returning as if all work completed.  Pass
    [~check_stranded:false] to opt out (e.g. to inspect the wreckage of
    an expected hang with {!blocked}).  Real: block until every spawned
    task finishes and the socket fabric is quiescent ([?until] raises
    {!Platform.Unsupported} — there is no virtual-time cutoff). *)

val now : t -> Lbc_sim.Engine.time
(** Virtual µs on sim, wall-clock µs since platform start on real. *)

val shutdown : t -> unit
(** Tear the platform down (join domains, close sockets and files on the
    real backend; no-op on sim). *)

val schedule_policy : t -> Lbc_sim.Schedule.policy

val schedule_decisions : t -> int list
(** The engine's recorded schedule trace: one chosen index per ripe set
    with two or more same-time events.  Feed it back through
    [~sched:(Replay ...)] for a byte-exact re-run. *)

val schedule_choice_points : t -> int

val obs : t -> Lbc_obs.Obs.t
(** The cluster's trace/metrics sink, shared by every node, lock
    table, log and the fabric.  With [config.trace] it also buffers
    Chrome-trace JSON; with only [config.flight] (the default) it is a
    flight-only sink: per-node binary rings plus the metrics registry,
    no JSON.  [Obs.disabled] only when both are off. *)

val write_trace : ?path:string -> t -> unit
(** Write the collected trace as Chrome trace-event JSON
    (Perfetto-loadable).  [path] defaults to [config.trace_path];
    raises [Invalid_argument] if neither is set. *)

val dump_flight : ?path:string -> t -> string
(** Write every node's flight ring to an LBCF binary file (decode with
    [lbc-trace]) and return its path.  [path] defaults to
    [flight-<ts>-<seq>.bin] in the working directory.  Raises
    [Invalid_argument] when the flight recorder is off
    ([Config.flight]).  Called automatically — best-effort, never
    masking the original exception — when a run fails:
    {!Lbc_sim.Engine.Stranded}, crash-path assertion failures, or any
    exception escaping {!run}. *)

val last_flight : t -> string option
(** The most recent flight dump this cluster wrote (explicit or
    automatic). *)

val last_flight_dump : unit -> string option
(** Process-wide: the most recent flight dump any cluster wrote.  For
    failure reporters (chaos repro lines, explore counterexamples)
    that catch the exception without a cluster handle in scope. *)

val blocked : t -> string list
(** Descriptions of the application processes currently blocked (waiting
    for a message, an update, or a lock).  Empty for a quiescent,
    completed cluster. *)

(** {1 Faults} *)

val crash : t -> node:int -> unit
(** Take a node down mid-flight: its processes are killed at their next
    scheduling point (tearing any transaction in progress — committed
    work is durable in its log, uncommitted work vanishes), its network
    traffic is cut, and queued inbound messages are lost.  After
    [config.lease_timeout] virtual µs the lock service reclaims the
    tokens the node held ({!Lbc_locks.Table.reclaim}), unblocking
    survivors that were queued behind it. *)

val rejoin : ?mode:Node.rejoin_mode -> t -> node:int -> unit
(** Bring a crashed node back, once its lease has expired (raises
    [Invalid_argument] before that): reconnects it, resets its lock
    table, reloads its regions from the database image and replays its
    own durable log tail.  Updates it missed while down are pulled in on
    demand through the acquire interlock (with [config.repair] for
    gap repair).  New application work needs fresh {!spawn}s.

    [mode] (default {!Node.Replay_all}) selects the replay strategy; see
    {!Node.rejoin}.  With [~mode:Node.On_demand] the node serves
    immediately and replays each indexed chain on first touch, feeding
    the [time_to_first_commit_us] histogram. *)

val is_crashed : t -> int -> bool

val fabric : t -> Msg.t Lbc_net.Fabric.t
(** The underlying fabric, for fault injection in tests
    ({!Lbc_net.Fabric.set_drop}, {!Lbc_net.Fabric.set_drop_filter}). *)

(** {1 Traffic} *)

val total_messages : t -> int
val total_bytes : t -> int

val total_dropped : t -> int
(** Messages lost to fault injection (dropped channels, down nodes). *)

(** {1 Distributed recovery and trimming} *)

val merged_records : t -> (Lbc_wal.Record.txn list, Merge.error) result
(** Merge every node's log in lock-sequence order (the paper's merge
    utility). *)

val recover_database : t -> Lbc_rvm.Recovery.outcome
(** Server-side recovery: merge all logs and replay the committed records
    into the region database devices.
    @raise Node.Coherency_error if the logs cannot be merged. *)

type replay_mode =
  | Serial  (** one replay process applies the whole merged stream *)
  | Partitioned
      (** one replay process per lock/region-disjoint stream
          ({!Merge.partition}); streams run concurrently *)
  | OnDemand
      (** like [Partitioned], but streams start in priority order
          (largest first) and the completion of the first stream feeds
          the [time_to_first_partition_us] histogram — the server-side
          analogue of a serving node's on-demand drain *)

val timed_recovery : t -> mode:replay_mode -> Lbc_rvm.Recovery.outcome * float
(** Like {!recover_database}, but the replay runs in simulated processes
    (driving the engine until done) so device time is charged; returns
    the outcome and the elapsed virtual µs.  The recovered images are
    byte-identical across modes — partitioning only changes wall-clock.
    Each stream feeds the [recovery_us] histogram. *)

val fuzzy_checkpoint : t -> node:int -> unit
(** Start an incremental (fuzzy) checkpoint of node [node]'s log, running
    concurrently with application work: live peers gossip their applied
    tables ([Msg.LowWater]), and after [config.ckpt_gossip_delay] the node
    runs {!Lbc_rvm.Rvm.fuzzy_checkpoint} with [config.ckpt_slice_bytes]
    slices, sleeping [config.ckpt_slice_interval] between slices.  The
    final trim is clamped to the repair-retention mark.  The checkpointer
    dies with the node on a crash (leaving the log untrimmed — recovery
    then replays from the previous checkpoint). *)

val checkpoint : t -> unit
(** Offline distributed log trimming (paper Section 3.5): requires a
    quiescent cluster (no pending records); merges the logs, replays them
    into the database devices, trims every node's log, and releases
    lazily-retained records.
    @raise Node.Coherency_error if some node still has pending records. *)

val online_checkpoint : t -> int
(** Incremental trimming that tolerates a running cluster: merge the
    maximal orderable prefix of all logs, replay it into the database
    devices (synchronously — write-ahead discipline), and advance each
    log's head past its merged records.  Records whose predecessors are
    not yet in any log are left for the next round.  Returns the number
    of records checkpointed.  This realizes the coordinated online
    trimming the paper sketches in Section 3.5. *)
