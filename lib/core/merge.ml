type error = Unorderable of string

module Imap = Map.Make (Int)

let merge_records logs =
  (* Pass 1: for every lock, the ascending list of sequence numbers that
     appear in any log.  Sequence numbers for one lock are globally unique
     (one acquire each), so sorting gives the required total order. *)
  let all_seqs =
    List.fold_left
      (List.fold_left (fun acc (txn : Lbc_wal.Record.txn) ->
           List.fold_left
             (fun acc l ->
               let existing =
                 Option.value ~default:[]
                   (Imap.find_opt l.Lbc_wal.Record.lock_id acc)
               in
               Imap.add l.Lbc_wal.Record.lock_id
                 (l.Lbc_wal.Record.seqno :: existing)
                 acc)
             acc txn.Lbc_wal.Record.locks))
      Imap.empty logs
  in
  let expected =
    Imap.map (fun seqs -> ref (List.sort_uniq Int.compare seqs)) all_seqs
  in
  let next_expected lock_id =
    match Imap.find_opt lock_id expected with
    | Some { contents = s :: _ } -> Some s
    | _ -> None
  in
  let consume lock_id seqno =
    match Imap.find_opt lock_id expected with
    | Some r -> (
        match !r with
        | s :: rest when s = seqno -> r := rest
        | _ -> ())
    | None -> ()
  in
  (* Pass 2: emit any head whose lock records are all next-expected. *)
  let heads = Array.of_list (List.map (fun l -> ref l) logs) in
  let emittable (txn : Lbc_wal.Record.txn) =
    List.for_all
      (fun l ->
        next_expected l.Lbc_wal.Record.lock_id = Some l.Lbc_wal.Record.seqno)
      txn.Lbc_wal.Record.locks
  in
  let out = ref [] in
  let remaining () =
    Array.exists (fun r -> !r <> []) heads
  in
  let rec drain () =
    if not (remaining ()) then Ok (List.rev !out)
    else begin
      let progressed = ref false in
      Array.iter
        (fun headref ->
          (* Emit as long a prefix of this log as is currently safe; this
             keeps the common single-writer case linear. *)
          let rec take () =
            match !headref with
            | txn :: rest when emittable txn ->
                List.iter
                  (fun l ->
                    consume l.Lbc_wal.Record.lock_id l.Lbc_wal.Record.seqno)
                  txn.Lbc_wal.Record.locks;
                out := txn :: !out;
                headref := rest;
                progressed := true;
                take ()
            | _ -> ()
          in
          take ())
        heads;
      if !progressed then drain ()
      else
        Error
          (Unorderable
             (Printf.sprintf
                "no emittable head among %d stuck transactions"
                (Array.fold_left (fun a r -> a + List.length !r) 0 heads)))
    end
  in
  drain ()

let merge_logs logs =
  merge_records
    (List.map
       (fun log ->
         let records, _status = Lbc_wal.Log.read_all log in
         records)
       logs)

(* Partition a merged transaction stream into independent replay streams.
   Two transactions conflict when they share a lock or touch the same
   region; the partition is the transitive closure of that relation
   (union-find over lock and region ids), so streams from different
   partitions touch disjoint regions under disjoint locks and can be
   replayed concurrently.  Within a partition the merged order is kept. *)
let partition records =
  let parent = Hashtbl.create 64 in
  let rec find k =
    match Hashtbl.find_opt parent k with
    | None ->
        Hashtbl.replace parent k k;
        k
    | Some p when p = k -> k
    | Some p ->
        let root = find p in
        Hashtbl.replace parent k root;
        root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let keys (txn : Lbc_wal.Record.txn) =
    List.map (fun l -> `Lock l.Lbc_wal.Record.lock_id) txn.Lbc_wal.Record.locks
    @ List.map (fun r -> `Region r) (Lbc_wal.Record.regions txn)
  in
  List.iter
    (fun txn ->
      match keys txn with
      | [] -> ()
      | k0 :: rest -> List.iter (union k0) rest)
    records;
  let buckets = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun txn ->
      (* lockless, rangeless transactions have no replay effect; group
         them in a catch-all stream rather than inventing one each *)
      let rep = match keys txn with [] -> `Lock (-1) | k :: _ -> find k in
      match Hashtbl.find_opt buckets rep with
      | None ->
          Hashtbl.replace buckets rep [ txn ];
          order := rep :: !order
      | Some txns -> Hashtbl.replace buckets rep (txn :: txns))
    records;
  List.rev_map (fun rep -> List.rev (Hashtbl.find buckets rep)) !order

type prefix = {
  ordered : Lbc_wal.Record.txn list;
  new_heads : int list;
  leftover : int;
}

let merge_logs_prefix ?(checkpointed = fun _ -> 0) logs =
  (* Collect each log's records together with the offset just past each
     record (the trim point if that record ends the merged prefix). *)
  let contents =
    List.map
      (fun log ->
        let items, _ =
          Lbc_wal.Log.fold log ~init:[] (fun acc off txn -> (off, txn) :: acc)
        in
        let items = List.rev items in
        let rec with_ends = function
          | [] -> []
          | [ (_, txn) ] -> [ (Lbc_wal.Log.tail log, txn) ]
          | (_, txn) :: ((off2, _) :: _ as rest) ->
              (off2, txn) :: with_ends rest
        in
        (Lbc_wal.Log.head log, with_ends items))
      logs
  in
  let expected =
    let all =
      List.fold_left
        (fun acc (_, items) ->
          List.fold_left
            (fun acc (_, (txn : Lbc_wal.Record.txn)) ->
              List.fold_left
                (fun acc l ->
                  let existing =
                    Option.value ~default:[]
                      (Imap.find_opt l.Lbc_wal.Record.lock_id acc)
                  in
                  Imap.add l.Lbc_wal.Record.lock_id
                    (l.Lbc_wal.Record.seqno :: existing)
                    acc)
                acc txn.Lbc_wal.Record.locks)
            acc items)
        Imap.empty contents
    in
    Imap.map (fun seqs -> ref (List.sort_uniq Int.compare seqs)) all
  in
  let next_expected lock_id =
    match Imap.find_opt lock_id expected with
    | Some { contents = s :: _ } -> Some s
    | _ -> None
  in
  let consume lock_id seqno =
    match Imap.find_opt lock_id expected with
    | Some r -> (
        match !r with s :: rest when s = seqno -> r := rest | _ -> ())
    | None -> ()
  in
  (* Highest write sequence number emitted so far, per lock. *)
  let emitted_write : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let write_covered lock seq =
    seq = 0
    || Option.value ~default:0 (Hashtbl.find_opt emitted_write lock) >= seq
    || checkpointed lock >= seq
  in
  let emittable (txn : Lbc_wal.Record.txn) =
    List.for_all
      (fun l ->
        next_expected l.Lbc_wal.Record.lock_id = Some l.Lbc_wal.Record.seqno
        && write_covered l.Lbc_wal.Record.lock_id l.Lbc_wal.Record.prev_write_seq)
      txn.Lbc_wal.Record.locks
  in
  let heads = Array.of_list (List.map (fun (head, items) -> (ref head, ref items)) contents) in
  let out = ref [] in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    Array.iter
      (fun (trim, items) ->
        let rec take () =
          match !items with
          | (end_off, txn) :: rest when emittable txn ->
              List.iter
                (fun l ->
                  consume l.Lbc_wal.Record.lock_id l.Lbc_wal.Record.seqno;
                  if Lbc_wal.Record.is_write txn then
                    Hashtbl.replace emitted_write l.Lbc_wal.Record.lock_id
                      l.Lbc_wal.Record.seqno)
                txn.Lbc_wal.Record.locks;
              out := txn :: !out;
              trim := end_off;
              items := rest;
              progressed := true;
              take ()
          | _ -> ()
        in
        take ())
      heads
  done;
  {
    ordered = List.rev !out;
    new_heads = Array.to_list (Array.map (fun (trim, _) -> !trim) heads);
    leftover =
      Array.fold_left (fun acc (_, items) -> acc + List.length !items) 0 heads;
  }
