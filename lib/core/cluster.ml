module Obs = Lbc_obs.Obs

type region_info = {
  size : int;
  dev : Lbc_storage.Dev.t;
  mutable mapped_by : int list;  (* nodes holding a cached copy *)
}

(* Direct handles into the simulation backend, for the operations that
   only make sense there: deterministic scheduling, fault injection,
   crash/rejoin, virtual-time recovery measurement. *)
type sim_handles = {
  engine : Lbc_sim.Engine.t;
  fabric : Msg.t Lbc_net.Fabric.t;
  store : Lbc_storage.Store.t;
}

type t = {
  platform : (module Platform.S);
  sim : sim_handles option;  (* [Some] iff the backend is the sim *)
  config : Config.t;
  nodes : Node.t array;
  regions : (int, region_info) Hashtbl.t;
  checkpointed : (int, int) Hashtbl.t;
      (* per lock: highest write seq already replayed into the database by
         an online checkpoint *)
  crashed : bool array;
  reclaimed : bool array;  (* lease expired, lock tokens reclaimed *)
  epoch : int array;  (* bumped at every crash; stale app processes die *)
  obs : Obs.t;
  mutable last_flight : string option;  (* most recent flight dump path *)
}

let backend_name t =
  let module P = (val t.platform : Platform.S) in
  P.name

let deterministic t =
  let module P = (val t.platform : Platform.S) in
  P.deterministic

let sim_handles t what =
  match t.sim with
  | Some h -> h
  | None ->
      raise
        (Platform.Unsupported
           (Printf.sprintf "%s requires the sim backend (running on %s)" what
              (backend_name t)))

let engine t = (sim_handles t "Cluster.engine").engine
let fabric t = (sim_handles t "Cluster.fabric").fabric
let store t = (sim_handles t "Cluster.store").store
let config t = t.config
let size t = Array.length t.nodes

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Cluster.node: no node %d" i);
  t.nodes.(i)

let create ?(config = Config.default) ?sched ?net_params ?disk
    ?(backend = Platform.Sim) ~nodes () =
  if nodes <= 0 then invalid_arg "Cluster.create: nodes must be positive";
  let platform, sim =
    match backend with
    | Platform.Custom make ->
        if sched <> None then
          invalid_arg
            "Cluster.create: schedule policies are sim-only (deterministic \
             same-time ties do not exist on a preemptive backend)";
        if net_params <> None || disk <> None then
          invalid_arg
            "Cluster.create: net/disk cost models are sim-only (the real \
             backend pays real costs)";
        (make ~nodes ~config, None)
    | Platform.Sim ->
        let net_params =
          match net_params with
          | Some p -> p
          | None ->
              if config.Config.charge_costs then Lbc_net.Params.an1
              else Lbc_net.Params.instant
        in
        let disk =
          match disk with
          | Some d -> d
          | None ->
              if config.Config.charge_costs && config.Config.disk_logging then
                Lbc_storage.Latency.osdi94_disk
              else Lbc_storage.Latency.none
        in
        let engine = Lbc_sim.Engine.create ?policy:sched () in
        let fabric =
          Lbc_net.Fabric.create ~params:net_params ~engine ~nodes
            ~size:Msg.size ()
        in
        let store = Lbc_storage.Store.create ~latency:disk () in
        (Platform.sim ~engine ~fabric ~store, Some { engine; fabric; store })
  in
  let module P = (val platform : Platform.S) in
  (* The flight recorder is always on by default: even with [trace]
     off the sink stays live (rings + metrics registry, no JSON), so
     the moments before a failure are never lost. *)
  let obs =
    let ring_bytes =
      if config.Config.flight then config.Config.flight_ring_bytes else 0
    in
    if config.Config.trace then
      Obs.create ~now:P.now_us ~nodes ~ring_bytes
        ~snapshot_interval_us:config.Config.metrics_interval ()
    else if config.Config.flight || config.Config.metrics_interval > 0.0 then
      Obs.create ~now:P.now_us ~nodes ~json:false ~ring_bytes
        ~snapshot_interval_us:config.Config.metrics_interval ()
    else Obs.disabled
  in
  P.set_obs obs;
  let regions = Hashtbl.create 4 in
  let peers_with_region self region =
    match Hashtbl.find_opt regions region with
    | Some info -> List.filter (fun n -> n <> self) info.mapped_by
    | None -> []
  in
  let cluster_nodes =
    Array.init nodes (fun i ->
        Node.create
          {
            Node.node_id = i;
            nodes;
            config;
            engine = P.node_engine i;
            send = (fun ~dst m -> P.send ~src:i ~dst m);
            multicast_send = (fun ~dsts m -> P.broadcast ~src:i ~dsts m);
            send_update =
              (fun ~dst iov -> P.send_v ~src:i ~dst ~iov (Msg.Update iov));
            multicast_update =
              (fun ~dsts iov ->
                P.broadcast_v ~src:i ~dsts ~iov (Msg.Update iov));
            peers_with_region = peers_with_region i;
            log_dev = P.open_dev (Printf.sprintf "log.%d" i);
            obs;
          })
  in
  P.start_receivers ~handler:(fun ~dst ~src m ->
      Node.handle cluster_nodes.(dst) ~src m);
  {
    platform;
    sim;
    config;
    nodes = cluster_nodes;
    regions;
    checkpointed = Hashtbl.create 16;
    crashed = Array.make nodes false;
    reclaimed = Array.make nodes false;
    epoch = Array.make nodes 0;
    obs;
    last_flight = None;
  }

let obs t = t.obs

(* --------------------------------------------------------------- *)
(* Flight recorder dumps *)

(* Most recent auto-dump across all clusters: failure reporters (e.g.
   the chaos repro printer) have no cluster handle when the exception
   reaches them, so the path is published here as well. *)
let last_flight_dump_ref : string option ref = ref None
let last_flight_dump () = !last_flight_dump_ref
let flight_seq = ref 0

let dump_flight ?path t =
  if not (Obs.flight_on t.obs) then
    invalid_arg "Cluster.dump_flight: flight recorder is off (Config.flight)";
  let module P = (val t.platform : Platform.S) in
  let path =
    match path with
    | Some p -> p
    | None ->
        (* No Unix in this library: a platform timestamp plus a
           process-wide sequence number keeps names unique. *)
        incr flight_seq;
        Printf.sprintf "flight-%.0f-%d.bin" (P.now_us ()) !flight_seq
  in
  let clock = if P.deterministic then "virtual-us" else "wall-us" in
  Obs.dump_flight t.obs ~clock path;
  t.last_flight <- Some path;
  last_flight_dump_ref := Some path;
  path

let last_flight t = t.last_flight

(* Best-effort dump on a failure path: never masks the original
   exception. *)
let auto_dump_flight t =
  if Obs.flight_on t.obs then
    match dump_flight t with
    | (_ : string) -> ()
    | exception _ -> ()

let write_trace ?path t =
  let path =
    match path with
    | Some p -> Some p
    | None -> t.config.Config.trace_path
  in
  match path with
  | None -> invalid_arg "Cluster.write_trace: no path (set Config.trace_path)"
  | Some p -> Obs.write t.obs p

let region_info t id =
  match Hashtbl.find_opt t.regions id with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Cluster: unknown region %d" id)

let add_region t ~id ~size =
  if Hashtbl.mem t.regions id then
    invalid_arg (Printf.sprintf "Cluster.add_region: region %d exists" id);
  let module P = (val t.platform : Platform.S) in
  let dev = P.open_dev (Printf.sprintf "region.%d" id) in
  Hashtbl.add t.regions id { size; dev; mapped_by = [] }

let region_dev t id = (region_info t id).dev
let region_size t id = (region_info t id).size

let map_region t ~node:n ~region =
  let info = region_info t region in
  let r = Node.map_region (node t n) ~id:region ~db:info.dev ~size:info.size in
  if not (List.mem n info.mapped_by) then info.mapped_by <- n :: info.mapped_by;
  r

let map_region_all t ~region =
  for n = 0 to size t - 1 do
    ignore (map_region t ~node:n ~region)
  done

let spawn t ~node:n f =
  let target = node t n in
  let epoch0 = t.epoch.(n) in
  let module P = (val t.platform : Platform.S) in
  (* The process dies with its node: a crash bumps the epoch, and the
     scheduler kills the process at its next resumption. *)
  P.spawn ~node:n
    ~name:(Printf.sprintf "app-%d" n)
    ~daemon:false
    ~alive:(fun () -> (not t.crashed.(n)) && t.epoch.(n) = epoch0)
    (fun () -> f target)

let run ?until ?(check_stranded = true) t =
  match t.sim with
  | Some h ->
      (match Lbc_sim.Engine.run ?until h.engine with
      | () -> ()
      | exception e ->
          (* Crash-path assertion failures and coherency errors escape
             here: preserve the last moments before re-raising. *)
          auto_dump_flight t;
          raise e);
      (* Only a drained queue proves the blocked processes can never
         resume; a [~until] pause is not a verdict. *)
      if until = None && check_stranded then (
        match Lbc_sim.Engine.blocked h.engine with
        | [] -> ()
        | descs ->
            auto_dump_flight t;
            raise (Lbc_sim.Engine.Stranded descs))
  | None ->
      if until <> None then
        raise
          (Platform.Unsupported
             "Cluster.run ~until: virtual-time cutoffs are sim-only");
      let module P = (val t.platform : Platform.S) in
      (match P.run () with
      | () -> ()
      | exception e ->
          auto_dump_flight t;
          raise e)

let now t =
  let module P = (val t.platform : Platform.S) in
  P.now_us ()

let blocked t =
  match t.sim with
  | Some h -> Lbc_sim.Engine.blocked h.engine
  | None -> []

let shutdown t =
  let module P = (val t.platform : Platform.S) in
  P.shutdown ()

let schedule_policy t =
  Lbc_sim.Engine.policy (sim_handles t "Cluster.schedule_policy").engine

let schedule_decisions t =
  Lbc_sim.Engine.decisions (sim_handles t "Cluster.schedule_decisions").engine

let schedule_choice_points t =
  Lbc_sim.Engine.choice_points
    (sim_handles t "Cluster.schedule_choice_points").engine

let total_messages t =
  let module P = (val t.platform : Platform.S) in
  P.total_messages ()

let total_bytes t =
  let module P = (val t.platform : Platform.S) in
  P.total_bytes ()

let total_dropped t =
  let module P = (val t.platform : Platform.S) in
  P.total_dropped ()

(* --------------------------------------------------------------- *)
(* Node crash and rejoin *)

let crash t ~node:n =
  ignore (node t n : Node.t);
  let h = sim_handles t "Cluster.crash" in
  if t.crashed.(n) then invalid_arg "Cluster.crash: node already down";
  t.crashed.(n) <- true;
  t.reclaimed.(n) <- false;
  t.epoch.(n) <- t.epoch.(n) + 1;
  if Obs.enabled t.obs then
    Obs.instant t.obs ~name:"crash" ~pid:n ~tid:Obs.lane_txn
      ~args:[ ("epoch", Obs.I t.epoch.(n)) ] ();
  Lbc_net.Fabric.set_down h.fabric n true;
  (* Lease expiry: once the dead node's lease runs out, a recovery agent
     rebuilds the lock service without it. *)
  Lbc_sim.Engine.schedule h.engine ~delay:t.config.Config.lease_timeout
    (fun () ->
      if t.crashed.(n) then
        Lbc_sim.Proc.spawn h.engine
          ~name:(Printf.sprintf "lease-reclaim-%d" n)
          ~daemon:true
          (fun () ->
            Lbc_locks.Table.reclaim (Array.map Node.locks t.nodes) ~failed:n;
            t.reclaimed.(n) <- true;
            if Obs.enabled t.obs then
              Obs.instant t.obs ~name:"lease.reclaim" ~pid:n ~tid:Obs.lane_lock
                ()))

let rejoin ?(mode = Node.Replay_all) t ~node:n =
  ignore (node t n : Node.t);
  let h = sim_handles t "Cluster.rejoin" in
  if not t.crashed.(n) then invalid_arg "Cluster.rejoin: node is not down";
  if not t.reclaimed.(n) then
    invalid_arg "Cluster.rejoin: node's lease has not expired yet";
  Lbc_net.Fabric.set_down h.fabric n false;
  if Obs.enabled t.obs then
    Obs.instant t.obs ~name:"rejoin" ~pid:n ~tid:Obs.lane_txn
      ~args:[ ("epoch", Obs.I t.epoch.(n)) ] ();
  Lbc_locks.Table.rejoin_reset (Node.locks t.nodes.(n));
  let applied =
    Hashtbl.fold (fun lock seq acc -> (lock, seq) :: acc) t.checkpointed []
  in
  Node.rejoin ~mode t.nodes.(n) ~applied;
  t.crashed.(n) <- false

let is_crashed t n =
  ignore (node t n : Node.t);
  t.crashed.(n)

let merged_records t =
  Merge.merge_logs
    (Array.to_list (Array.map (fun n -> Lbc_rvm.Rvm.log (Node.rvm n)) t.nodes))

let recover_database t =
  match merged_records t with
  | Error (Merge.Unorderable why) ->
      raise (Node.Coherency_error ("log merge failed: " ^ why))
  | Ok records ->
      Lbc_rvm.Recovery.replay_records records ~db_for_region:(fun id ->
          Option.map (fun info -> info.dev) (Hashtbl.find_opt t.regions id))

type replay_mode = Serial | Partitioned | OnDemand

(* Server-side recovery on the simulation clock: replay runs in simulated
   processes so device time is charged, making serial and partitioned
   replay comparable.  Partitioned mode replays each lock/region-disjoint
   stream concurrently; the elapsed virtual time is the slowest stream
   instead of the sum.  OnDemand mode uses the same disjoint streams but
   replays them in priority order (largest first, a stand-in for the
   hottest-first drain a serving node performs) and records when the
   first stream — the first data anyone could be unblocked on — is
   available, as [time_to_first_partition_us]. *)
let timed_recovery t ~mode =
  let h = sim_handles t "Cluster.timed_recovery" in
  let records =
    match merged_records t with
    | Error (Merge.Unorderable why) ->
        raise (Node.Coherency_error ("log merge failed: " ^ why))
    | Ok records -> records
  in
  let streams =
    match mode with
    | Serial -> if records = [] then [] else [ records ]
    | Partitioned -> Merge.partition records
    | OnDemand ->
        List.stable_sort
          (fun a b -> Int.compare (List.length b) (List.length a))
          (Merge.partition records)
  in
  let db_for_region id =
    Option.map (fun info -> info.dev) (Hashtbl.find_opt t.regions id)
  in
  let outcomes = ref [] in
  let first_done = ref false in
  let t0 = Lbc_sim.Engine.now h.engine in
  List.iteri
    (fun i stream ->
      Lbc_sim.Proc.spawn h.engine
        ~name:(Printf.sprintf "recover-p%d" i)
        (fun () ->
          let o = Lbc_rvm.Recovery.replay_records stream ~db_for_region in
          let elapsed = Lbc_sim.Engine.now h.engine -. t0 in
          Obs.observe t.obs "recovery_us" elapsed;
          if mode = OnDemand && not !first_done then begin
            first_done := true;
            Obs.observe t.obs "time_to_first_partition_us" elapsed
          end;
          outcomes := o :: !outcomes))
    streams;
  if Obs.enabled t.obs then
    Obs.count t.obs "recovery_partitions" (List.length streams);
  Lbc_sim.Engine.run h.engine;
  let elapsed = Lbc_sim.Engine.now h.engine -. t0 in
  let outcome =
    List.fold_left
      (fun (acc : Lbc_rvm.Recovery.outcome) (o : Lbc_rvm.Recovery.outcome) ->
        {
          Lbc_rvm.Recovery.records_replayed =
            acc.records_replayed + o.records_replayed;
          bytes_replayed = acc.bytes_replayed + o.bytes_replayed;
          torn_tail = acc.torn_tail || o.torn_tail;
        })
      { Lbc_rvm.Recovery.records_replayed = 0; bytes_replayed = 0;
        torn_tail = false }
      !outcomes
  in
  (outcome, elapsed)

(* Incremental fuzzy checkpoint of one node, on the simulation clock.
   Peers first gossip their applied tables so the node can compute its
   repair-retention mark; then the node flushes its dirty regions in
   bounded slices interleaved with running commits, brackets the flush
   with durable begin/end markers, and trims its log to the checkpoint
   start clamped to the retention mark. *)
let fuzzy_checkpoint t ~node:n =
  let h = sim_handles t "Cluster.fuzzy_checkpoint" in
  let target = node t n in
  let epoch0 = t.epoch.(n) in
  for p = 0 to size t - 1 do
    if p <> n && not t.crashed.(p) then begin
      let peer = t.nodes.(p) in
      Lbc_sim.Proc.spawn h.engine
        ~name:(Printf.sprintf "gossip-%d" p)
        ~daemon:true
        (fun () -> Node.gossip_low_water peer)
    end
  done;
  Lbc_sim.Proc.spawn h.engine
    ~name:(Printf.sprintf "ckpt-%d" n)
    ~alive:(fun () -> (not t.crashed.(n)) && t.epoch.(n) = epoch0)
    (fun () ->
      Lbc_sim.Proc.sleep t.config.Config.ckpt_gossip_delay;
      let t0 = Lbc_sim.Engine.now h.engine in
      let outcome =
        Lbc_rvm.Rvm.fuzzy_checkpoint
          ~slice_bytes:t.config.Config.ckpt_slice_bytes
          ~yield:(fun () ->
            Lbc_sim.Proc.sleep t.config.Config.ckpt_slice_interval)
          (Node.rvm target)
      in
      Obs.observe t.obs "ckpt_us" (Lbc_sim.Engine.now h.engine -. t0);
      if Obs.enabled t.obs then
        Obs.instant t.obs ~name:"ckpt" ~pid:n ~tid:Obs.lane_txn
          ~args:
            [ ("id", Obs.I outcome.Lbc_rvm.Rvm.ckpt_id);
              ("slices", Obs.I outcome.Lbc_rvm.Rvm.slices);
              ("bytes", Obs.I outcome.Lbc_rvm.Rvm.bytes_flushed) ]
          ())

let online_checkpoint t =
  let logs =
    Array.to_list (Array.map (fun n -> Lbc_rvm.Rvm.log (Node.rvm n)) t.nodes)
  in
  let checkpointed lock =
    Option.value ~default:0 (Hashtbl.find_opt t.checkpointed lock)
  in
  let prefix = Merge.merge_logs_prefix ~checkpointed logs in
  (* Database first, then trim: the records must be durable in the
     database before they disappear from the logs. *)
  ignore
    (Lbc_rvm.Recovery.replay_records prefix.Merge.ordered
       ~db_for_region:(fun id ->
         Option.map (fun info -> info.dev) (Hashtbl.find_opt t.regions id)));
  List.iter
    (fun (txn : Lbc_wal.Record.txn) ->
      if Lbc_wal.Record.is_write txn then
        List.iter
          (fun l ->
            if l.Lbc_wal.Record.seqno > checkpointed l.Lbc_wal.Record.lock_id
            then
              Hashtbl.replace t.checkpointed l.Lbc_wal.Record.lock_id
                l.Lbc_wal.Record.seqno)
          txn.Lbc_wal.Record.locks)
    prefix.Merge.ordered;
  (* The trim is clamped per log to its low-water mark: with repair on, a
     merged-and-replayed record may still be needed by a live peer whose
     copy was lost in flight (replaying into the database does not heal a
     running peer's cache — only a fetch or a resync does). *)
  List.iter2
    (fun log head ->
      if head > Lbc_wal.Log.head log then
        ignore (Lbc_wal.Log.set_head log head : int))
    logs prefix.Merge.new_heads;
  List.length prefix.Merge.ordered

let checkpoint t =
  Array.iter
    (fun n ->
      if Node.pending_count n > 0 then
        raise
          (Node.Coherency_error
             (Printf.sprintf "checkpoint: node %d has pending records"
                (Node.id n))))
    t.nodes;
  let records =
    match merged_records t with
    | Error (Merge.Unorderable why) ->
        raise (Node.Coherency_error ("log merge failed: " ^ why))
    | Ok records -> records
  in
  ignore
    (Lbc_rvm.Recovery.replay_records records ~db_for_region:(fun id ->
         Option.map (fun info -> info.dev) (Hashtbl.find_opt t.regions id)));
  (* Advance the per-lock baseline so later incremental merges know these
     writes are already durable in the database. *)
  List.iter
    (fun (txn : Lbc_wal.Record.txn) ->
      if Lbc_wal.Record.is_write txn then
        List.iter
          (fun l ->
            let prev =
              Option.value ~default:0
                (Hashtbl.find_opt t.checkpointed l.Lbc_wal.Record.lock_id)
            in
            if l.Lbc_wal.Record.seqno > prev then
              Hashtbl.replace t.checkpointed l.Lbc_wal.Record.lock_id
                l.Lbc_wal.Record.seqno)
          txn.Lbc_wal.Record.locks)
    records;
  let applied =
    Hashtbl.fold (fun lock seq acc -> (lock, seq) :: acc) t.checkpointed []
  in
  Array.iter
    (fun n ->
      let log = Lbc_rvm.Rvm.log (Node.rvm n) in
      (* Ground truth overrides gossip here: every record is replayed
         into the database and every node is about to resync to it, so
         no peer can need anything re-sent — lift the retention mark
         before trimming. *)
      Node.clear_retention n;
      ignore (Lbc_wal.Log.set_head log (Lbc_wal.Log.tail log) : int);
      Node.gc_retained n;
      (* Bring stragglers (lazy mode) to the checkpointed state: their
         chains are gone from the writers' retention. *)
      Node.resync n ~applied)
    t.nodes
