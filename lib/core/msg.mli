(** Messages exchanged between coherency nodes.

    One simulated TCP channel per node pair carries lock traffic and
    coherency data, like the prototype's per-peer connections.  Data
    payloads are gather lists ({!Lbc_util.Slice.t} iovecs): the committed
    log tail travels by reference from the commit path through the
    channel; sizes model the length-prefix framing a real writev-based
    transport would add. *)

type t =
  | Lock of Lbc_locks.Table.msg
  | Update of Lbc_util.Slice.t list
      (** a {!Wire}-encoded committed log tail, as a gather list (the
          concatenation of the slices is the wire image) *)
  | Fetch of { lock : int; have : int }
      (** lazy propagation: request records under [lock] newer than
          sequence number [have] *)
  | Fetched of { lock : int; payloads : Lbc_util.Slice.t list list }
      (** reply, oldest first; one gather list per record *)
  | LowWater of { applied : (int * int) list }
      (** low-water gossip: the sender's applied write sequence number
          per lock.  Receivers use it to decide which of their own
          committed records every peer has applied — those records can
          fall below the repair-retention mark and be trimmed. *)

val size : t -> int
val pp : Format.formatter -> t -> unit
