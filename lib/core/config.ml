type propagation = Eager | Lazy

type t = {
  coalesce : Lbc_rvm.Range_tree.policy;
  disk_logging : bool;
  flush_on_commit : bool;
  range_header_size : int;
  log_mode : Lbc_wal.Command.log_mode;
  propagation : propagation;
  multicast : bool;
  charge_costs : bool;
  repair : bool;
  repair_timeout : float;
  repair_retries : int;
  lease_timeout : float;
  group_commit : bool;
  group_commit_max : int;
  group_commit_delay : float;
  ckpt_slice_bytes : int;
  ckpt_slice_interval : float;
  ckpt_gossip_delay : float;
  trace : bool;
  trace_path : string option;
  flight : bool;
  flight_ring_bytes : int;
  metrics_interval : float;
}

let default =
  {
    coalesce = Lbc_rvm.Range_tree.Optimized;
    disk_logging = true;
    flush_on_commit = true;
    range_header_size = Lbc_wal.Record.rvm_disk_header_size;
    log_mode = Lbc_wal.Command.Value;
    propagation = Eager;
    multicast = false;
    charge_costs = false;
    repair = false;
    repair_timeout = 2_000.0;
    repair_retries = 8;
    lease_timeout = 10_000.0;
    group_commit = false;
    group_commit_max = 8;
    group_commit_delay = 100.0;
    ckpt_slice_bytes = 4096;
    ckpt_slice_interval = 50.0;
    ckpt_gossip_delay = 500.0;
    trace = false;
    trace_path = None;
    flight = true;
    flight_ring_bytes = 65536;
    metrics_interval = 0.0;
  }

let measured = { default with disk_logging = false; charge_costs = true }
let fault_tolerant = { default with repair = true }
