(** Merging per-node redo logs for recovery (paper Section 3.4).

    Each node produces its own log; when nodes share segments, the logs
    record interleaving updates to the same data, so before standard RVM
    recovery can run they must be merged into a single log.  Because
    transactions are strictly serializable under two-phase locking, it is
    sufficient to order transactions so that if two transactions acquired
    the same lock, the one with the smaller sequence number for that lock
    comes first; transactions from one node additionally stay in their log
    order.

    The algorithm is a two-pass topological merge: pass one indexes, for
    every lock, the sorted sequence numbers present anywhere; pass two
    repeatedly emits a log-head transaction all of whose lock sequence
    numbers are globally next-expected.  Input that cannot be ordered this
    way (which two-phase locking cannot produce) is reported as
    [Unorderable]. *)

type error =
  | Unorderable of string
      (** no head transaction is safe to emit: the logs are not the
          product of serializable execution (or are corrupt) *)

val merge_records :
  Lbc_wal.Record.txn list list ->
  (Lbc_wal.Record.txn list, error) result
(** Merge per-node transaction lists (each in log order). *)

val merge_logs :
  Lbc_wal.Log.t list -> (Lbc_wal.Record.txn list, error) result
(** Read every live record of each log (ignoring torn tails) and merge. *)

val partition : Lbc_wal.Record.txn list -> Lbc_wal.Record.txn list list
(** Split a merged stream into independent replay streams: transactions
    sharing a lock or a region — transitively (union-find over the
    lock/region closure) — land in the same stream, so distinct streams
    touch disjoint regions under disjoint locks and may be replayed
    concurrently.  Within a stream the input order is preserved; streams
    are returned in order of first appearance.  Partitioning the input of
    {!Lbc_rvm.Recovery.replay_records} this way is what makes parallel
    recovery sound. *)

type prefix = {
  ordered : Lbc_wal.Record.txn list;
      (** the maximal mergeable prefix, in replay order *)
  new_heads : int list;
      (** per input log: the offset just past its last merged record —
          the head to trim to once [ordered] is checkpointed *)
  leftover : int;  (** records that could not be ordered yet *)
}

val merge_logs_prefix :
  ?checkpointed:(int -> int) -> Lbc_wal.Log.t list -> prefix
(** Like {!merge_logs} but never fails: a record is emitted only when,
    for each of its locks, the previous write it depends on
    ([prev_write_seq]) has either been emitted in this merge or is
    already covered by an earlier checkpoint ([checkpointed lock],
    default 0).  Records whose predecessors are not yet durable (lazy
    commits still in flight) are left in place for the next round.  This
    is what makes the paper's Section 3.5 online trimming possible: "one
    node would checkpoint at a time, broadcasting to other nodes when
    done to inform them of their new log head". *)
