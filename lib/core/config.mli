(** Configuration of the log-based coherency system.

    The defaults correspond to the paper's prototype: optimized
    [set_range] coalescing, eager propagation at commit, compressed wire
    headers, disk logging on.  The benchmarks flip individual knobs to
    reproduce the ablations (standard RVM coalescing for Figure 8, disk
    logging off to isolate coherency costs, lazy propagation from
    Section 2.2). *)

type propagation =
  | Eager
      (** broadcast the committed log tail to every peer mapping a
          modified region, at commit (the prototype's policy) *)
  | Lazy
      (** retain committed records at the writer; a reader fetches pending
          records from the last writer when it acquires the lock
          (Section 2.2's alternative).  Records of multi-lock transactions
          are still broadcast eagerly, because a per-lock fetch cannot
          carry their cross-segment dependencies. *)

type t = {
  coalesce : Lbc_rvm.Range_tree.policy;
  disk_logging : bool;
  flush_on_commit : bool;
  range_header_size : int;  (** on-disk range header size *)
  log_mode : Lbc_wal.Command.log_mode;
      (** per-transaction record encoding: [Value] logs new-value ranges
          (the paper's RVM, the default), [Command] logs the declared
          operation instead, [Adaptive] picks the smaller encoding per
          commit.  Transactions that declare no command always log
          values. *)
  propagation : propagation;
  multicast : bool;
      (** deliver eager updates with one transmission instead of one
          writev per peer — the multicast hardware of Section 4.3.1 *)
  charge_costs : bool;
      (** charge the paper's measured operation costs (Table 2 /
          Figures 5-6) as virtual time; off for pure functional tests *)
  repair : bool;
      (** detect lost update records via sequence-number gaps and repair
          them by fetching from a peer (re-using the Lazy-mode fetch
          path); also makes every node retain applied records so it can
          serve such fetches.  Off by default: the paper assumes reliable
          transport, and repair retention changes memory behaviour. *)
  repair_timeout : float;
      (** virtual µs a node waits on a sequence-number gap before issuing
          a repair fetch *)
  repair_retries : int;
      (** repair fetch attempts (cycling over peers, with exponential
          backoff) before giving up; a gap that outlives all retries
          leaves the waiter blocked and is reported by the stranded-
          process check *)
  lease_timeout : float;
      (** virtual µs after a node crash before the lock managers reclaim
          the tokens it held (models lease expiry / epoch change) *)
  group_commit : bool;
      (** batch concurrent commits on the same node into one log write +
          one sync (group commit).  Takes effect only with
          [disk_logging] and [flush_on_commit]; committers park until
          their batch is durable. *)
  group_commit_max : int;
      (** records that close a batch by size *)
  group_commit_delay : float;
      (** virtual µs after a batch's first record before it is flushed
          regardless of size *)
  ckpt_slice_bytes : int;
      (** bytes per fuzzy-checkpoint flush slice; between slices the
          checkpointer yields so commits can interleave *)
  ckpt_slice_interval : float;
      (** virtual µs the checkpointer sleeps between flush slices *)
  ckpt_gossip_delay : float;
      (** virtual µs a fuzzy checkpoint waits after broadcasting
          low-water gossip, so peers' applied tables arrive before the
          retention mark is computed *)
  trace : bool;
      (** record spans, flow arrows and latency histograms through
          [Lbc_obs] while the cluster runs.  Off by default: the
          instrumented hot paths then pay a single branch per site and
          allocate nothing. *)
  trace_path : string option;
      (** where [Cluster.write_trace] puts the Chrome trace-event JSON
          when no explicit path is given *)
  flight : bool;
      (** always-on flight recorder: every node keeps a fixed-size
          binary ring of recent spans/instants/counter deltas
          (lock-free, allocation-free, a few ns per event) that is
          auto-dumped to [flight-<ts>.bin] on strand/crash/oracle
          failures and on demand via [Cluster.dump_flight].  On by
          default — it is the only diagnosis available when [trace] is
          off. *)
  flight_ring_bytes : int;
      (** bytes per node's flight ring (rounded up to a power of two,
          minimum 256) *)
  metrics_interval : float;
      (** > 0: append one JSONL snapshot row of the counter/histogram
          registry at most once per this many virtual-or-wall µs,
          piggybacked on event recording; 0 disables snapshots *)
}

val default : t

val measured : t
(** The configuration of the paper's Section 4 measurements: costs
    charged, disk logging {e disabled} ("we disabled RVM disk logging so
    that we could isolate the costs associated with coherency"). *)

val fault_tolerant : t
(** [default] with [repair = true]. *)
