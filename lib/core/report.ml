let pp_node ppf node =
  let rvm = Lbc_rvm.Rvm.stats (Node.rvm node) in
  let st = Node.stats node in
  let locks = Lbc_locks.Table.stats (Node.locks node) in
  let log = Lbc_rvm.Rvm.log (Node.rvm node) in
  Format.fprintf ppf
    "node %d: %d commits (%d aborts), %d set_ranges | sent %d upd/%dB, \
     recv %d (%d held) | locks %d local/%d remote, %d interlock waits | \
     log %dB live%s%s%s%s%s"
    (Node.id node) rvm.Lbc_rvm.Rvm.commits rvm.Lbc_rvm.Rvm.aborts
    rvm.Lbc_rvm.Rvm.set_ranges st.Node.updates_sent st.Node.update_bytes_sent
    st.Node.records_received st.Node.records_held
    locks.Lbc_locks.Table.local_grants locks.Lbc_locks.Table.remote_grants
    st.Node.interlock_waits
    (Lbc_wal.Log.live_bytes log)
    (if st.Node.repair_fetches > 0 || locks.Lbc_locks.Table.stale_msgs > 0
     then
       Printf.sprintf " | %d repair fetches, %d stale lock msgs"
         st.Node.repair_fetches locks.Lbc_locks.Table.stale_msgs
     else "")
    (if Lbc_wal.Log.group_commit_enabled log then
       Printf.sprintf " | group commit: %d records in %d batches"
         (Lbc_wal.Log.records_batched log)
         (Lbc_wal.Log.batches_flushed log)
     else "")
    (if rvm.Lbc_rvm.Rvm.checkpoints > 0 then
       Printf.sprintf " | %d fuzzy ckpts (%d slices, %dB flushed)"
         rvm.Lbc_rvm.Rvm.checkpoints rvm.Lbc_rvm.Rvm.ckpt_slices
         rvm.Lbc_rvm.Rvm.ckpt_bytes_flushed
     else "")
    (if rvm.Lbc_rvm.Rvm.unmapped_ranges > 0 then
       Printf.sprintf " | %d UNMAPPED ranges dropped"
         rvm.Lbc_rvm.Rvm.unmapped_ranges
     else "")
    (if Node.pending_count node > 0 then
       Printf.sprintf " | %d PENDING" (Node.pending_count node)
     else "")

let pp_cluster ppf cluster =
  let dropped = Cluster.total_dropped cluster in
  Format.fprintf ppf
    "@[<v>cluster: %d nodes, %d messages, %d bytes on the wire%s@,\
    \  data path: %dB copied (baseline %dB), %d encode arenas"
    (Cluster.size cluster)
    (Cluster.total_messages cluster)
    (Cluster.total_bytes cluster)
    (if dropped > 0 then Printf.sprintf ", %d dropped" dropped else "")
    (Lbc_util.Slice.bytes_copied ())
    (Lbc_util.Slice.bytes_copied_baseline ())
    (Lbc_util.Slice.encode_allocs ());
  (* Flight-ring health: overflow shows up as a drop count here rather
     than as silently missing events in a dump. *)
  let obs = Cluster.obs cluster in
  if Lbc_obs.Obs.flight_on obs then begin
    Format.fprintf ppf "@,  obs: flight";
    Array.iteri
      (fun i (recorded, dropped, bytes) ->
        Format.fprintf ppf " n%d %d/%d/%dB" i recorded dropped bytes)
      (Lbc_obs.Obs.ring_stats obs);
    Format.fprintf ppf " (rec/drop/bytes)";
    let rows = Lbc_obs.Obs.snapshot_rows obs in
    if rows > 0 then Format.fprintf ppf ", %d snapshot rows" rows
  end;
  for n = 0 to Cluster.size cluster - 1 do
    Format.fprintf ppf "@,  %a%s" pp_node
      (Cluster.node cluster n)
      (if Cluster.is_crashed cluster n then " [DOWN]" else "")
  done;
  match Cluster.blocked cluster with
  | [] -> Format.fprintf ppf "@]"
  | blocked ->
      Format.fprintf ppf "@,  blocked: %s@]" (String.concat "; " blocked)
