open Lbc_util

(* Range header tag bits. *)
let tag_new_region = 0x01 (* explicit region varint follows *)
let tag_abs_addr = 0x02 (* absolute address instead of delta *)

let sort_ranges ranges =
  List.sort
    (fun a b ->
      let c = Int.compare a.Lbc_wal.Record.region b.Lbc_wal.Record.region in
      if c <> 0 then c
      else Int.compare a.Lbc_wal.Record.offset b.Lbc_wal.Record.offset)
    ranges

(* The gather-list encoder is the only encoder: message and range
   headers are written into one arena, while each range's payload is
   referenced in place — the committed data is never copied onto the
   wire.  Header chunks are recorded as (start, len) marks and turned
   into slices only after the last write, because the arena may
   reallocate while growing. *)
let encode_iov (t : Lbc_wal.Record.txn) =
  let w = Codec.writer ~capacity:128 () in
  let marks = ref [] in  (* reversed: `Hdr (start, len) | `Data bytes *)
  let mark_from = ref 0 in
  let cut () =
    let len = Codec.length w - !mark_from in
    if len > 0 then marks := `Hdr (!mark_from, len) :: !marks;
    mark_from := Codec.length w
  in
  (* Message kinds: 1 = value record (range list), 2 = command record. *)
  Codec.u8 w (match t.cmd with None -> 1 | Some _ -> 2);
  Codec.u16 w t.node;
  Codec.varint w t.tid;
  Codec.varint w (List.length t.locks);
  List.iter
    (fun l ->
      Codec.varint w l.Lbc_wal.Record.lock_id;
      Codec.varint w l.Lbc_wal.Record.seqno;
      Codec.varint w l.Lbc_wal.Record.prev_write_seq)
    t.locks;
  match t.cmd with
  | Some c ->
      Codec.varint w c.Lbc_wal.Record.op;
      Codec.varint w (Bytes.length c.Lbc_wal.Record.params);
      Codec.varint w (List.length c.Lbc_wal.Record.cmd_regions);
      List.iter (Codec.varint w) c.Lbc_wal.Record.cmd_regions;
      cut ();
      (* The parameter blob rides as payload, like range data: small, but
         referencing it in place keeps the zero-copy invariant (the lint
         counts every wire-path copy). *)
      marks := `Data c.Lbc_wal.Record.params :: !marks;
      List.rev_map
        (function
          | `Hdr (start, len) -> Codec.slice_sub w ~pos:start ~len
          | `Data b -> Slice.of_bytes b)
        !marks
  | None ->
  let ranges = sort_ranges t.ranges in
  Codec.varint w (List.length ranges);
  let prev_region = ref 0 and prev_offset = ref 0 and first = ref true in
  List.iter
    (fun r ->
      let region = r.Lbc_wal.Record.region and offset = r.Lbc_wal.Record.offset in
      let new_region = region <> !prev_region in
      (* Within a region, sorted order guarantees a non-negative delta;
         the first range of each region is absolute. *)
      let abs = !first || new_region in
      let tag =
        (if new_region then tag_new_region else 0)
        lor if abs then tag_abs_addr else 0
      in
      Codec.u8 w tag;
      if new_region then Codec.varint w region;
      if abs then Codec.varint w offset
      else Codec.varint w (offset - !prev_offset);
      Codec.varint w (Bytes.length r.Lbc_wal.Record.data);
      cut ();
      marks := `Data r.Lbc_wal.Record.data :: !marks;
      prev_region := region;
      prev_offset := offset;
      first := false)
    ranges;
  cut ();
  List.rev_map
    (function
      | `Hdr (start, len) -> Codec.slice_sub w ~pos:start ~len
      | `Data b -> Slice.of_bytes b)
    !marks

let encode t = Slice.concat (encode_iov t)

let decode_reader r =
  let kind = Codec.get_u8 r in
  if kind <> 1 && kind <> 2 then
    raise (Codec.Truncated "Wire: bad message kind");
  let node = Codec.get_u16 r in
  let tid = Codec.get_varint r in
  let n_locks = Codec.get_varint r in
  let locks =
    List.init n_locks (fun _ ->
        let lock_id = Codec.get_varint r in
        let seqno = Codec.get_varint r in
        let prev_write_seq = Codec.get_varint r in
        { Lbc_wal.Record.lock_id; seqno; prev_write_seq })
  in
  if kind = 2 then begin
    let op = Codec.get_varint r in
    let plen = Codec.get_varint r in
    let n_regions = Codec.get_varint r in
    let cmd_regions = List.init n_regions (fun _ -> Codec.get_varint r) in
    let params = Codec.get_raw r ~len:plen in
    { Lbc_wal.Record.node; tid; locks; ranges = [];
      cmd = Some { op; params; cmd_regions } }
  end
  else begin
    let n_ranges = Codec.get_varint r in
    let prev_region = ref 0 and prev_offset = ref 0 in
    let ranges =
      List.init n_ranges (fun _ ->
          let tag = Codec.get_u8 r in
          let region =
            if tag land tag_new_region <> 0 then Codec.get_varint r
            else !prev_region
          in
          let offset =
            if tag land tag_abs_addr <> 0 then Codec.get_varint r
            else !prev_offset + Codec.get_varint r
          in
          let len = Codec.get_varint r in
          let data = Codec.get_raw r ~len in
          prev_region := region;
          prev_offset := offset;
          { Lbc_wal.Record.region; offset; data })
    in
    { Lbc_wal.Record.node; tid; locks; ranges; cmd = None }
  end

let decode b = decode_reader (Codec.reader b)
let decode_iov iov = decode_reader (Codec.reader_of_slices iov)
let size t = Slice.iov_length (encode_iov t)

let size_uncompressed (t : Lbc_wal.Record.txn) =
  if t.cmd <> None then
    (* Command records have no range headers to compress; the ablation
       baseline is the message itself. *)
    size t
  else
  let tail =
    Codec.varint_size t.tid
    + Codec.varint_size (List.length t.locks)
    + Codec.varint_size (List.length t.ranges)
  in
  let locks =
    List.fold_left
      (fun acc l ->
        acc
        + Codec.varint_size l.Lbc_wal.Record.lock_id
        + Codec.varint_size l.Lbc_wal.Record.seqno
        + Codec.varint_size l.Lbc_wal.Record.prev_write_seq)
      0 t.locks
  in
  let fixed = 1 + 2 + tail + locks in
  List.fold_left
    (fun acc r ->
      acc + Lbc_wal.Record.rvm_disk_header_size
      + Bytes.length r.Lbc_wal.Record.data)
    fixed t.ranges

let header_overhead t = size t - Lbc_wal.Record.ranges_bytes t
