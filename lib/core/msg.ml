type t =
  | Lock of Lbc_locks.Table.msg
  | Update of Lbc_util.Slice.t list
  | Fetch of { lock : int; have : int }
  | Fetched of { lock : int; payloads : Lbc_util.Slice.t list list }
  | LowWater of { applied : (int * int) list }

let size = function
  | Lock m -> Lbc_locks.Table.msg_size m
  | Update iov -> 4 + Lbc_util.Slice.iov_length iov
  | Fetch _ -> 16
  | Fetched { payloads; _ } ->
      List.fold_left
        (fun acc iov -> acc + 4 + Lbc_util.Slice.iov_length iov)
        8 payloads
  | LowWater { applied } -> 8 + (16 * List.length applied)

let pp ppf = function
  | Lock m -> Format.fprintf ppf "Lock(%a)" Lbc_locks.Table.pp_msg m
  | Update iov -> Format.fprintf ppf "Update(%dB)" (Lbc_util.Slice.iov_length iov)
  | Fetch { lock; have } -> Format.fprintf ppf "Fetch(l%d>%d)" lock have
  | Fetched { lock; payloads } ->
      Format.fprintf ppf "Fetched(l%d,%d records)" lock (List.length payloads)
  | LowWater { applied } ->
      Format.fprintf ppf "LowWater(%d locks)" (List.length applied)
