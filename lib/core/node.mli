(** One client node of the log-based coherency system.

    A node owns an RVM instance, a distributed lock table, the per-lock
    applied-sequence-number table that orders incoming updates, and the
    buffer of records that arrived before their predecessors (Section 3.4:
    "receiver threads hold log records until the updates for the
    immediately preceding sequence number have been applied").

    Applications use the {!Txn} sub-module, which mirrors the paper's
    Table 1 interface: acquire segment locks inside a transaction, declare
    modified ranges, commit.  Commit writes the redo record (via RVM),
    releases the locks (two-phase), and propagates the committed log tail
    to the peers that share the modified regions.

    Sequence-number protocol (refined from the paper to tolerate read-only
    acquires, see DESIGN.md): every acquire increments the lock's sequence
    number; the token carries the sequence number of the last {e writing}
    acquire, and each record carries, per lock, the previous writing
    acquire's number.  A record is applied once the local applied number
    reaches its [prev_write_seq]; an acquire proceeds once the local
    applied number reaches the token's last-write number. *)

type t

type deps = {
  node_id : int;
  nodes : int;  (** cluster size *)
  config : Config.t;
  engine : Lbc_sim.Engine.t;
      (** used to schedule the loss-repair watchdog *)
  send : dst:int -> Msg.t -> unit;
  multicast_send : dsts:int list -> Msg.t -> unit;
      (** one-transmission delivery to several peers (used when
          [config.multicast] is set) *)
  send_update : dst:int -> Lbc_util.Slice.t list -> unit;
      (** transmit [Msg.Update iov] with the fabric's gather-list
          framing: the committed log tail reaches the channel by
          reference, never concatenated *)
  multicast_update : dsts:int list -> Lbc_util.Slice.t list -> unit;
      (** gather-list counterpart of [multicast_send] *)
  peers_with_region : int -> int list;
      (** nodes (other than this one) currently mapping a region — the
          eager propagation set *)
  log_dev : Lbc_storage.Dev.t;
  obs : Lbc_obs.Obs.t;
      (** trace/metrics sink shared by the cluster ([Obs.disabled] when
          tracing is off).  [create] also installs it into the node's
          lock table and log.  Transactions become [txn] / [commit] /
          [interlock] spans feeding [commit_us] / [interlock_us],
          broadcasts start a flow arrow per [(lock, seqno)], received
          records become [apply] spans (ending those arrows and feeding
          [apply_lag_us]) or [hold] instants, and fetch round trips
          feed [fetch_rtt_us]. *)
}

val create : deps -> t
val id : t -> int
val rvm : t -> Lbc_rvm.Rvm.t
val locks : t -> Lbc_locks.Table.t
val config : t -> Config.t

val handle : t -> src:int -> Msg.t -> unit
(** Feed one incoming message (called by the cluster's dispatchers). *)

val map_region : t -> id:int -> db:Lbc_storage.Dev.t -> size:int -> Lbc_rvm.Region.t

val applied_seq : t -> int -> int
(** Sequence number of the last write applied locally under a lock. *)

val pending_count : t -> int
(** Records held waiting for their predecessors. *)

val read : t -> region:int -> offset:int -> len:int -> Bytes.t
val get_u64 : t -> region:int -> offset:int -> int64
(** Direct reads of the cached image (the caller must hold the relevant
    lock, as the paper requires — this is not enforced, exactly as in the
    prototype). *)

type stats = {
  mutable updates_sent : int;  (** coherency messages broadcast (per peer) *)
  mutable update_bytes_sent : int;
  mutable records_received : int;
  mutable records_held : int;  (** arrived out of order and were buffered *)
  mutable interlock_waits : int;  (** acquires that waited for updates *)
  mutable fetches_sent : int;  (** lazy-mode fetch requests *)
  mutable records_fetched : int;
  mutable repair_fetches : int;
      (** fetches issued by the loss-repair watchdog ([config.repair]) *)
}

val stats : t -> stats

(** {1 Version-pinned readers (paper Section 2.1's [accept] primitive)}

    The paper sketches a relaxed read/write model in which "readers
    operate on a previous consistent version of the data while an update
    is in progress elsewhere; readers use an accept primitive to
    explicitly signal their willingness to move forward to a newer
    consistent version.  In this scheme, pending log records must be
    buffered in the recipient until they can be applied." *)

val pin : t -> unit
(** Freeze this node's cached version: incoming records are buffered
    instead of applied.  Transactions on a pinned node must be read-only
    and must not acquire locks (the interlock would deadlock);
    {!Txn.acquire} raises while pinned. *)

val accept : t -> unit
(** Move forward: apply every buffered record (in order) and resume
    normal eager application. *)

val is_pinned : t -> bool

val retained_count : t -> int
(** Records retained for lazy propagation. *)

val gc_retained : t -> unit
(** Drop all retained records (after a checkpoint has made them
    recoverable from the database image). *)

(** {1 Low-water gossip and repair retention}

    With [config.repair] (or lazy propagation) a node's log must keep
    every own committed write some peer might still need re-sent; the
    offset of the oldest such write is installed as the log's retention
    low-water mark, which {!Lbc_wal.Log.set_head} clamps to.  A write is
    released once every propagation peer has gossiped ([Msg.LowWater])
    an applied sequence number at or past it. *)

val unacked_count : t -> int
(** Own committed writes not yet known applied by every peer. *)

val gossip_low_water : t -> unit
(** Send this node's applied table to every peer (costs wire time — call
    from process context). *)

val update_retention : t -> unit
(** Recompute the retention mark from the gossip received so far and
    prune retained records every peer has applied. *)

val clear_retention : t -> unit
(** Drop all retention state and lift the log's retention mark — only
    sound when ground truth says no peer can fetch again (a distributed
    checkpoint followed by {!resync}). *)

val resync : t -> applied:(int * int) list -> unit
(** Post-checkpoint resynchronization: reload every mapped region from
    its database device, set the per-lock applied sequence numbers to the
    checkpointed values, and drop retained records and held state.  Only
    valid when the node is quiescent (no transaction in progress, nothing
    pending). *)

type rejoin_mode =
  | Replay_all  (** replay the whole surviving tail before serving *)
  | On_demand
      (** index the tail and serve immediately; chains replay on first
          touch, a background drain walks the rest hottest-lock-first *)

val rejoin : ?mode:rejoin_mode -> t -> applied:(int * int) list -> unit
(** Bring a crashed node back into the cluster (called by
    [Cluster.rejoin] after its lock table has been reset).  All volatile
    state is rebuilt from what survives a crash: regions reload from the
    database image, [applied] is the per-lock sequence state of the last
    checkpoint, and the node's own durable log tail is replayed — then
    rebroadcast to the peers, healing commits the crash cut off between
    logging and propagation (receivers discard duplicates).  Updates
    committed elsewhere since the checkpoint are re-fetched on demand via
    the acquire interlock and, with [config.repair], the gap watchdog.

    With [~mode:Replay_all] (the default) the replay is {e partitioned}:
    the surviving tail is split by lock/region closure
    ({!Merge.partition}) and the independent streams run as concurrent
    simulated processes, each feeding the [recovery_us] histogram; the
    rebroadcast waits for all of them.  Retention state is rebuilt
    conservatively: every own write still in the log is treated as
    unacked until fresh gossip arrives.

    With [~mode:On_demand] nothing is replayed up front: the tail is
    indexed by replay chain (seeded by the newest persisted
    {!Lbc_wal.Record.Region_index} control record, extended by scanning
    only the records appended after it) and the node serves immediately.
    The first local access, lock acquire, coherency apply, or peer fetch
    that touches a cold chain replays exactly that chain first; a
    background process drains the remaining chains hottest-lock-first
    (by the lock table's [lock_acquires:<id>] counters) and then
    performs the rebroadcast.  Until every chain is warm, log retention
    is pinned at the head.  The recovered image is byte-identical to a
    serial replay; only the schedule differs. *)

val recovering : t -> bool
(** True while an [On_demand] rejoin still has cold replay chains. *)

exception Coherency_error of string

(** {1 The application interface (paper Table 1)} *)

module Txn : sig
  type node = t
  type t

  val begin_ : node -> t
  (** [Trans.Init] + [Trans.Begin]. *)

  val acquire : t -> int -> unit
  (** [Trans.Acquire]: take the segment lock (two-phase; released at
      commit), wait until every update it covers has been applied locally,
      and tag the transaction's log record with the lock's sequence
      numbers. *)

  val acquire_timeout : t -> int -> timeout:float -> bool
  (** Like {!acquire} but gives up after [timeout] µs of virtual time and
      returns [false]; the caller should then {!abort} and retry —
      two-phase locking's standard deadlock recovery. *)

  val set_range : t -> region:int -> offset:int -> len:int -> unit
  (** [Trans.SetRange]. *)

  val write : t -> region:int -> offset:int -> Bytes.t -> unit
  val set_u64 : t -> region:int -> offset:int -> int64 -> unit

  val read : t -> region:int -> offset:int -> len:int -> Bytes.t
  val get_u64 : t -> region:int -> offset:int -> int64

  val set_command : t -> op:int -> params:Bytes.t -> regions:int list -> unit
  (** Declare the transaction's effect as one registered deterministic
      operation, making it eligible for command encoding at commit when
      [config.log_mode] selects it (see {!Lbc_rvm.Rvm.set_command}). *)

  val commit : t -> unit
  (** [Trans.Commit]: write the redo record, release all locks, propagate
      the committed log tail. *)

  val commit_record : t -> Lbc_wal.Record.txn
  (** Like {!commit}, returning the committed record (for instrumentation
      and benchmarks). *)

  val commit_outcome : t -> Lbc_rvm.Rvm.commit_outcome
  (** Like {!commit_record}, also returning the value-record equivalent
      — the paper's Table 3 byte/page accounting is defined over the
      value form whatever encoding was logged. *)

  val abort : t -> unit
  (** Undo the transaction's stores and release its locks.  The
      transaction must have been started with restore mode (it is). *)
end
