type t = { page_size : int; twins : (int, Bytes.t) Hashtbl.t }

let create ~page_size =
  if page_size <= 0 || page_size mod 8 <> 0 then
    invalid_arg "Twin.create: page_size must be a positive multiple of 8";
  { page_size; twins = Hashtbl.create 64 }

let page_size t = t.page_size

let touch t ~read ~offset ~len =
  if offset < 0 || len <= 0 then invalid_arg "Twin.touch: bad range";
  let first = offset / t.page_size and last = (offset + len - 1) / t.page_size in
  let faults = ref 0 in
  for page = first to last do
    if not (Hashtbl.mem t.twins page) then begin
      incr faults;
      Hashtbl.add t.twins page
        (read ~offset:(page * t.page_size) ~len:t.page_size)
    end
  done;
  !faults

let dirty_pages t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.twins [] |> List.sort Int.compare

let diff t ~read =
  let runs = ref [] in
  (* Per page, scan 8-byte words and emit runs of modified words; adjacent
     runs across a page boundary merge below. *)
  List.iter
    (fun page ->
      let twin = Hashtbl.find t.twins page in
      let current = read ~offset:(page * t.page_size) ~len:t.page_size in
      let words = t.page_size / 8 in
      let run_start = ref (-1) in
      for w = 0 to words do
        let modified =
          w < words
          && not
               (Int64.equal
                  (Bytes.get_int64_le twin (w * 8))
                  (Bytes.get_int64_le current (w * 8)))
        in
        if modified && !run_start < 0 then run_start := w
        else if (not modified) && !run_start >= 0 then begin
          let off = (page * t.page_size) + (!run_start * 8) in
          runs := (off, (w - !run_start) * 8) :: !runs;
          run_start := -1
        end
      done)
    (dirty_pages t);
  (* Ascending, merging runs that abut across page boundaries. *)
  let sorted =
    List.sort
      (fun (o1, l1) (o2, l2) ->
        let c = Int.compare o1 o2 in
        if c <> 0 then c else Int.compare l1 l2)
      (List.rev !runs)
  in
  let rec merge = function
    | (o1, l1) :: (o2, l2) :: rest when o1 + l1 = o2 ->
        merge ((o1, l1 + l2) :: rest)
    | r :: rest -> r :: merge rest
    | [] -> []
  in
  merge sorted
