(* The exploration harness: run many seeded schedules of a scenario,
   stop at the first violation, shrink the failing schedule's decision
   trace by delta debugging, and write a replayable counterexample.

   Everything rests on one property of the decision trace: a missing or
   zeroed entry falls back to stable FIFO, so *any* subset of a recorded
   trace is a valid schedule.  That makes ddmin sound — zeroing decisions
   can only simplify the schedule, never produce an unreplayable one —
   and makes the shrunk trace self-contained: the handful of surviving
   non-zero decisions are exactly the reorderings the bug needs. *)

module S = Lbc_sim.Schedule
module V = Lbc_analysis.Violation

type failure = {
  scenario : string;
  policy : S.policy;  (* the policy that produced the failing run *)
  violations : V.t list;
  decisions : int list;
  choice_points : int;
  schedules_run : int;  (* schedules explored before this one failed *)
}

type outcome = Pass of int  (** schedules explored, all clean *) | Fail of failure

(* Violations compare by stable name set: a shrunk schedule reproduces
   the failure iff the same invariants break, even when details (byte
   offsets, stranded-process lists) shift. *)
let names_of vs = List.sort_uniq String.compare (List.map V.name vs)

let mode_policy mode seed =
  match mode with `Random -> S.Random_tie seed | `Pct -> S.Pct seed

let explore ?(mode = `Random) ?(seed0 = 1) ?on_schedule ~seeds
    (s : Scenario.t) =
  let rec go i =
    if i >= seeds then Pass seeds
    else begin
      (match on_schedule with Some f -> f i | None -> ());
      let policy = mode_policy mode (seed0 + i) in
      let r = s.Scenario.run policy in
      if r.Scenario.violations <> [] then
        Fail
          {
            scenario = s.Scenario.name;
            policy;
            violations = r.Scenario.violations;
            decisions = r.Scenario.decisions;
            choice_points = r.Scenario.choice_points;
            schedules_run = i;
          }
      else go (i + 1)
    end
  in
  go 0

let replay (s : Scenario.t) decisions =
  s.Scenario.run (S.Replay (Array.of_list decisions))

(* ----------------------------------------------------------------- *)
(* Shrinking *)

let nonzero_count decisions =
  List.fold_left (fun n d -> if d <> 0 then n + 1 else n) 0 decisions

(* Split [xs] into [n] contiguous chunks (at most [n]; never empty). *)
let chunks xs n =
  let len = List.length xs in
  let size = max 1 ((len + n - 1) / n) in
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

(* Classic ddmin over the set of non-zero decision positions: a candidate
   keeps only the positions in [kept] (every other decision is zeroed,
   i.e. falls back to FIFO) and must reproduce the same violation-name
   set.  Minimises the number of surviving reorderings. *)
let shrink (s : Scenario.t) (f : failure) =
  let target = names_of f.violations in
  let d = Array.of_list f.decisions in
  let module Iset = Set.Make (Int) in
  let reproduces kept =
    let keep = Iset.of_list kept in
    let d' = Array.mapi (fun i v -> if Iset.mem i keep then v else 0) d in
    let r = replay s (Array.to_list d') in
    names_of r.Scenario.violations = target
  in
  let active = ref [] in
  Array.iteri (fun i v -> if v <> 0 then active := i :: !active) d;
  let active = List.rev !active in
  if active = [] || not (reproduces active) then f
    (* nothing to shrink, or (pathologically) the recorded trace itself
       does not replay to the same names — keep the original evidence *)
  else begin
    let rec ddmin kept n =
      if List.length kept <= 1 then kept
      else
        let cs = chunks kept n in
        match List.find_opt reproduces cs with
        | Some c -> ddmin c 2  (* a single chunk suffices: recurse into it *)
        | None -> (
            let complements =
              List.map
                (fun c -> List.filter (fun x -> not (List.mem x c)) kept)
                cs
            in
            match
              List.find_opt (fun k -> k <> [] && reproduces k) complements
            with
            | Some k -> ddmin k (max (n - 1) 2)
            | None ->
                if n < List.length kept then
                  ddmin kept (min (List.length kept) (2 * n))
                else kept)
    in
    let minimal = ddmin active 2 in
    let keep = Iset.of_list minimal in
    let last = List.fold_left max (-1) minimal in
    let decisions =
      Array.to_list
        (Array.mapi (fun i v -> if Iset.mem i keep then v else 0)
           (Array.sub d 0 (last + 1)))
    in
    let r = replay s decisions in
    (* [policy] keeps the finder's seed for provenance; the shrunk
       [decisions] are the replay key. *)
    {
      f with
      violations = r.Scenario.violations;
      decisions;
      choice_points = r.Scenario.choice_points;
    }
  end

(* ----------------------------------------------------------------- *)
(* Counterexample trace files *)

(* Text format, one header per line, decisions last:

     lbc-explore trace v1
     scenario: drop-heal
     policy: random:17
     violations: serializability
     decisions: 0 1 0 0 2

   The decision list is the replay key; scenario names the workload; the
   rest is provenance for humans. *)

type trace = {
  t_scenario : string;
  t_policy : string;  (* provenance: the policy that found the failure *)
  t_names : string list;  (* violation names the replay must reproduce *)
  t_decisions : int list;
}

let magic = "lbc-explore trace v1"

let trace_of_failure (f : failure) =
  {
    t_scenario = f.scenario;
    t_policy = S.policy_to_string f.policy;
    t_names = names_of f.violations;
    t_decisions = f.decisions;
  }

let write_trace path (f : failure) =
  let t = trace_of_failure f in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s\n" magic;
      Printf.fprintf oc "scenario: %s\n" t.t_scenario;
      Printf.fprintf oc "policy: %s\n" t.t_policy;
      Printf.fprintf oc "violations: %s\n" (String.concat " " t.t_names);
      Printf.fprintf oc "decisions: %s\n"
        (String.concat " " (List.map string_of_int t.t_decisions)))

let read_trace path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | body -> (
      let lines =
        String.split_on_char '\n' body
        |> List.map String.trim
        |> List.filter (fun l -> l <> "")
      in
      match lines with
      | m :: rest when m = magic -> (
          let field key =
            let prefix = key ^ ": " in
            List.find_map
              (fun l ->
                if String.length l >= String.length prefix
                   && String.sub l 0 (String.length prefix) = prefix
                then
                  Some
                    (String.sub l (String.length prefix)
                       (String.length l - String.length prefix))
                else if l = key ^ ":" then Some ""
                else None)
              rest
          in
          let words = function
            | "" -> []
            | s -> String.split_on_char ' ' s |> List.filter (( <> ) "")
          in
          match (field "scenario", field "decisions") with
          | Some sc, Some ds -> (
              match List.map int_of_string (words ds) with
              | t_decisions ->
                  Ok
                    {
                      t_scenario = sc;
                      t_policy =
                        Option.value (field "policy") ~default:"unknown";
                      t_names = words (Option.value (field "violations") ~default:"");
                      t_decisions;
                    }
              | exception Failure _ -> Error "malformed decision list")
          | None, _ -> Error "missing scenario header"
          | _, None -> Error "missing decisions header")
      | _ -> Error (Printf.sprintf "not a %s file" magic))

(* Replay a trace: reproduced iff the violation-name set matches the one
   recorded at write time. *)
let replay_trace (t : trace) =
  match Scenario.find t.t_scenario with
  | None -> Error (Printf.sprintf "unknown scenario %S" t.t_scenario)
  | Some s ->
      let r = replay s t.t_decisions in
      Ok (r, names_of r.Scenario.violations = t.t_names)
