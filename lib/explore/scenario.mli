(** Named, self-checking workloads for the schedule explorer.

    Each scenario runs a fixed, deterministic workload under a
    caller-chosen same-time {!Lbc_sim.Schedule.policy} — the schedule is
    the only degree of freedom — and judges the outcome with the full
    oracle stack: log invariants ({!Lbc_analysis.Invariants.check_logs},
    including the vector-clock race check), the one-copy serializability
    oracle ({!Lbc_analysis.Serialize.check}), and scenario-specific
    invariants.  A run that strands or raises is itself reported as a
    [schedule-oracle] violation.

    The chaos scenarios reuse the chaos tests' workloads and workload
    seeds, so a red chaos test has a scenario twin the explorer can
    shrink and replay. *)

type result = {
  violations : Lbc_analysis.Violation.t list;
  decisions : int list;
      (** the recorded schedule trace — feed through [Replay] to
          reproduce this run byte-exactly *)
  choice_points : int;
  committed : int;  (** merged committed transactions (informational) *)
}

type t = {
  name : string;
  descr : string;
  run : Lbc_sim.Schedule.policy -> result;
}

val planted : t
(** Toy scenario with a deliberately planted ordering bug: correct under
    FIFO tie order, broken by any schedule that flips at least one of
    its eight same-instant event pairs.  The self-test target. *)

val drop_heal : t
val crash_rejoin : t
val checkpoint_under_faults : t

val rejoin_under_load : t
(** Fuzzy checkpoint (persisting a region-index control record), crash,
    then an on-demand rejoin that serves fresh load while chains replay
    on first touch and peers keep committing.  The home-segment workload
    keeps the single-node checkpoint recovery-consistent. *)

val oo7_eager : t
val oo7_multicast : t
val oo7_lazy : t

val all : t list
val find : string -> t option
