(* Named, self-checking workloads for the schedule explorer.

   A scenario is a closed experiment: build a cluster (or a bare engine),
   run a fixed workload under a caller-chosen same-time schedule policy,
   then judge the outcome with every oracle we have — the log invariants
   (seqno chains, merge legality, the vector-clock race check), the
   one-copy serializability oracle (merged stream replayed against a
   sequential spec, compared byte-for-byte with every cache and the
   recovered database), and any scenario-specific invariant.  The
   workload itself is deterministic; the schedule policy is the only
   degree of freedom, so a recorded decision trace pins the whole run.

   The registry mirrors the chaos test suite (same workloads, same
   workload seeds) so a red chaos test has a scenario twin the explorer
   can shrink and replay. *)

module E = Lbc_sim.Engine
module S = Lbc_sim.Schedule
module V = Lbc_analysis.Violation
open Lbc_core

type result = {
  violations : V.t list;
  decisions : int list;  (* the schedule trace of this run *)
  choice_points : int;
  committed : int;  (* merged committed transactions (informational) *)
}

type t = {
  name : string;
  descr : string;
  run : S.policy -> result;
}

(* --------------------------------------------------------------- *)
(* Shared cluster-scenario plumbing (the chaos-test geometry) *)

let regions = 2
let locks_per_region = 2
let region_size = 2048
let all_locks = regions * locks_per_region
let lock_region l = l / locks_per_region

let lock_offset rng l =
  let part = l mod locks_per_region in
  let span = region_size / locks_per_region in
  (part * span) + (8 * Lbc_util.Rng.int rng (span / 8))

let mk_cluster config ~sched nodes =
  let c = Cluster.create ~config ~sched ~nodes () in
  for r = 0 to regions - 1 do
    Cluster.add_region c ~id:r ~size:region_size;
    Cluster.map_region_all c ~region:r
  done;
  c

let worker c rng n iterations =
  let rng = Lbc_util.Rng.split rng in
  Cluster.spawn c ~node:n (fun node ->
      for _ = 1 to iterations do
        let txn = Node.Txn.begin_ node in
        let l1 = Lbc_util.Rng.int rng all_locks in
        let l2 = Lbc_util.Rng.int rng all_locks in
        let ls = List.sort_uniq Int.compare [ l1; l2 ] in
        List.iter (fun l -> Node.Txn.acquire txn l) ls;
        List.iter
          (fun l ->
            if Lbc_util.Rng.int rng 4 > 0 then
              Node.Txn.set_u64 txn ~region:(lock_region l)
                ~offset:(lock_offset rng l)
                (Lbc_util.Rng.int64 rng))
          ls;
        if Lbc_util.Rng.int rng 10 = 0 then Node.Txn.abort txn
        else Node.Txn.commit txn;
        Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 30.0)
      done)

(* Every node acquires every listed lock once, pulling whatever its cache
   still misses (mandatory for lazy propagation, harmless elsewhere). *)
let final_pull c ~nodes ~locks =
  for n = 0 to nodes - 1 do
    Cluster.spawn c ~node:n (fun node ->
        let txn = Node.Txn.begin_ node in
        for l = 0 to locks - 1 do
          Node.Txn.acquire txn l
        done;
        Node.Txn.commit txn)
  done;
  Cluster.run c

let drop_updates c ~src ~dst =
  Lbc_net.Fabric.set_drop_filter (Cluster.fabric c) ~src ~dst
    (Some (function Msg.Update _ -> true | _ -> false))

let crash_then_rejoin_bg c ~node ?mode ?(after = 0.0)
    ?(more_work = fun () -> ()) () =
  Lbc_sim.Proc.spawn (Cluster.engine c) ~name:"explore-controller" (fun () ->
      if after > 0.0 then Lbc_sim.Proc.sleep after;
      Cluster.crash c ~node;
      let rec rejoin_when_lease_expires () =
        match Cluster.rejoin ?mode c ~node with
        | () -> ()
        | exception Invalid_argument _ ->
            Lbc_sim.Proc.sleep 50.0;
            rejoin_when_lease_expires ()
      in
      rejoin_when_lease_expires ();
      more_work ())

(* --------------------------------------------------------------- *)
(* The oracle stack *)

let log_of c n = Lbc_rvm.Rvm.log (Node.rvm (Cluster.node c n))

(* A region's database-device image, zero-padded to the declared size
   (the device may be shorter than the region if the tail was never
   written). *)
let dev_image c r ~size =
  let dev = Cluster.region_dev c r in
  let len = min size (Lbc_storage.Dev.size dev) in
  let b = Bytes.make size '\000' in
  if len > 0 then Bytes.blit (Lbc_storage.Dev.read dev ~off:0 ~len) 0 b 0 len;
  b

(* Judge a quiescent cluster.  The serializability spec starts from the
   database-device images as they stand *before* recovery: for a fresh
   cluster that is all zeroes, for OO7 the built database, and for a
   checkpointed cluster the replayed prefix whose records were already
   trimmed from the logs — in every case exactly the state the remaining
   log records apply on top of. *)
let oracle c ~nodes ~region_ids =
  let logs = List.init nodes (fun n -> log_of c n) in
  let streams = List.map Lbc_analysis.Invariants.stream_of_log logs in
  let inv = Lbc_analysis.Invariants.check_logs ~regions:region_ids logs in
  let sizes = List.map (fun r -> (r, Cluster.region_size c r)) region_ids in
  let initial_images =
    List.map (fun (r, size) -> (r, dev_image c r ~size)) sizes
  in
  let initial r = List.assoc_opt r initial_images in
  let recovered =
    match Cluster.recover_database c with
    | _ -> true
    | exception Node.Coherency_error _ -> false  (* inv reports the merge *)
  in
  let finals =
    List.init nodes (fun n ->
        ( Printf.sprintf "node %d" n,
          fun r ->
            Node.read (Cluster.node c n) ~region:r ~offset:0
              ~len:(List.assoc r sizes) ))
    @
    if recovered then
      [ ("db", fun r -> dev_image c r ~size:(List.assoc r sizes)) ]
    else []
  in
  let ser = Lbc_analysis.Serialize.check ~initial ~regions:sizes ~finals streams in
  (inv @ ser, Lbc_analysis.Serialize.merged_count streams)

(* Run [body], mapping a strand or crash of the simulation itself into a
   schedule-oracle violation: a schedule under which the cluster hangs or
   throws is as much a counterexample as one that corrupts data. *)
let cluster_scenario ~name ~descr build =
  let run policy =
    let c, body = build policy in
    let violations, committed =
      match body () with
      | vc -> vc
      | exception E.Stranded descs ->
          ( [
              V.Schedule_oracle
                {
                  scenario = name;
                  detail = "stranded: " ^ String.concat "; " descs;
                };
            ],
            0 )
      | exception e ->
          (* Deliberately broad: any escape under an explored schedule is
             a finding to shrink, not a crash of the explorer. *)
          ( [
              V.Schedule_oracle
                { scenario = name; detail = "raised " ^ Printexc.to_string e };
            ],
            0 )
    in
    (* Any oracle violation preserves the run's last moments: strand and
       crash paths already auto-dumped inside [Cluster.run]; dump here
       for violations the oracles found on a quiescent cluster.  The
       explorer names the file next to its repro lines
       ([Cluster.last_flight_dump]). *)
    (match (violations, Cluster.last_flight c) with
    | _ :: _, None -> (
        match Cluster.dump_flight c with
        | (_ : string) -> ()
        | exception _ -> ())
    | _ -> ());
    {
      violations;
      decisions = Cluster.schedule_decisions c;
      choice_points = Cluster.schedule_choice_points c;
      committed;
    }
  in
  { name; descr; run }

(* --------------------------------------------------------------- *)
(* Planted bug: the self-test target *)

(* At each of eight distinct instants two same-time events race on a
   counter: an increment scheduled first, a doubling scheduled second.
   FIFO order yields (0 + 1) * 2 = 2; the swapped order yields
   0 * 2 + 1 = 1.  Any schedule that flips at least one pair violates the
   invariant, and flipping exactly one pair is the minimal
   counterexample the shrinker must find. *)
let planted =
  let name = "planted" in
  let pairs = 8 in
  {
    name;
    descr = "toy ordering bug that only non-FIFO tie orders expose";
    run =
      (fun policy ->
        let e = E.create ~policy () in
        let cells = Array.make pairs 0 in
        for i = 0 to pairs - 1 do
          let at = 10.0 *. float_of_int (i + 1) in
          E.schedule_at e ~at (fun () -> cells.(i) <- cells.(i) + 1);
          E.schedule_at e ~at (fun () -> cells.(i) <- cells.(i) * 2)
        done;
        E.run e;
        let violations = ref [] in
        for i = pairs - 1 downto 0 do
          if cells.(i) <> 2 then
            violations :=
              V.Schedule_oracle
                {
                  scenario = name;
                  detail =
                    Printf.sprintf
                      "cell %d finished at %d, expected 2 (increment must \
                       precede doubling)"
                      i cells.(i);
                }
              :: !violations
        done;
        {
          violations = !violations;
          decisions = E.decisions e;
          choice_points = E.choice_points e;
          committed = 0;
        });
  }

(* --------------------------------------------------------------- *)
(* Chaos scenarios (twins of the chaos fault tests) *)

let drop_heal =
  cluster_scenario ~name:"drop-heal"
    ~descr:"lossy update channel healed by the repair watchdog (3 nodes)"
    (fun sched ->
      let config =
        {
          Config.default with
          Config.repair = true;
          Config.repair_timeout = 100.0;
        }
      in
      let nodes = 3 in
      let c = mk_cluster config ~sched nodes in
      ( c,
        fun () ->
          drop_updates c ~src:0 ~dst:1;
          let rng = Lbc_util.Rng.create 808 in
          for n = 0 to nodes - 1 do
            worker c rng n 20
          done;
          Cluster.run c;
          final_pull c ~nodes ~locks:all_locks;
          oracle c ~nodes ~region_ids:[ 0; 1 ] ))

let crash_rejoin =
  cluster_scenario ~name:"crash-rejoin"
    ~descr:
      "node crash, lease reclaim and rejoin over two lossy channels (5 nodes)"
    (fun sched ->
      let config =
        {
          Config.default with
          Config.repair = true;
          Config.repair_timeout = 100.0;
          Config.lease_timeout = 500.0;
        }
      in
      let nodes = 5 in
      let c = mk_cluster config ~sched nodes in
      ( c,
        fun () ->
          drop_updates c ~src:0 ~dst:1;
          drop_updates c ~src:2 ~dst:3;
          let rng = Lbc_util.Rng.create 909 in
          for n = 0 to nodes - 1 do
            worker c rng n 20
          done;
          crash_then_rejoin_bg c ~node:4 ~after:150.0
            ~more_work:(fun () -> worker c rng 4 5)
            ();
          Cluster.run c;
          final_pull c ~nodes ~locks:all_locks;
          oracle c ~nodes ~region_ids:[ 0; 1 ] ))

let checkpoint_under_faults =
  cluster_scenario ~name:"checkpoint-under-faults"
    ~descr:
      "online checkpoints while a channel drops updates and a node is down"
    (fun sched ->
      let config =
        {
          Config.default with
          Config.repair = true;
          Config.repair_timeout = 100.0;
          Config.lease_timeout = 400.0;
        }
      in
      let nodes = 5 in
      let c = mk_cluster config ~sched nodes in
      ( c,
        fun () ->
          drop_updates c ~src:0 ~dst:1;
          let rng = Lbc_util.Rng.create 1010 in
          for n = 0 to nodes - 1 do
            worker c rng n 15
          done;
          Cluster.run ~until:100.0 c;
          Cluster.crash c ~node:4;
          ignore (Cluster.online_checkpoint c);
          Cluster.run ~until:900.0 c;
          ignore (Cluster.online_checkpoint c);
          Cluster.rejoin c ~node:4;
          Cluster.run c;
          final_pull c ~nodes ~locks:all_locks;
          oracle c ~nodes ~region_ids:[ 0; 1 ] ))

(* Home-segment worker: each node writes only its own lock's slots, so
   every slot has a single writer.  That makes a *single-node* fuzzy
   checkpoint recovery-consistent: nothing a peer logged can land under
   a record the checkpoint trimmed.  (The distributed online_checkpoint
   gives the same guarantee for arbitrary workloads by trimming every
   log at one consistent cut.) *)
let worker_home c rng n iterations =
  let rng = Lbc_util.Rng.split rng in
  Cluster.spawn c ~node:n (fun node ->
      for _ = 1 to iterations do
        let txn = Node.Txn.begin_ node in
        Node.Txn.acquire txn n;
        Node.Txn.set_u64 txn ~region:(lock_region n)
          ~offset:(lock_offset rng n) (Lbc_util.Rng.int64 rng);
        Node.Txn.commit txn;
        Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 20.0)
      done)

(* Twin of the chaos rejoin-under-load test: fuzzy checkpoint persists a
   region-index control record, the node crashes, rejoins in on-demand
   mode and serves fresh load while chains replay on first touch and the
   background drain walks the rest — all interleaved with live peer
   traffic under the explored schedule. *)
let rejoin_under_load =
  cluster_scenario ~name:"rejoin-under-load"
    ~descr:
      "fuzzy checkpoint, crash, then on-demand rejoin serving fresh load \
       while peers keep writing (3 nodes)"
    (fun sched ->
      let config =
        {
          Config.fault_tolerant with
          Config.repair_timeout = 100.0;
          Config.lease_timeout = 400.0;
          Config.ckpt_slice_bytes = 128;
          Config.ckpt_slice_interval = 20.0;
          Config.ckpt_gossip_delay = 50.0;
        }
      in
      let nodes = 3 in
      let c = mk_cluster config ~sched nodes in
      ( c,
        fun () ->
          let rng = Lbc_util.Rng.create 1515 in
          for n = 0 to nodes - 1 do
            worker_home c rng n 10
          done;
          Cluster.run c;
          Cluster.fuzzy_checkpoint c ~node:0;
          Cluster.run c;
          (* A post-checkpoint tail for the persisted index to extend. *)
          for n = 0 to nodes - 1 do
            worker_home c rng n 10
          done;
          Cluster.run c;
          (* Crash/rejoin on demand while the peers keep committing. *)
          crash_then_rejoin_bg c ~node:0 ~mode:Node.On_demand
            ~more_work:(fun () -> worker_home c rng 0 5)
            ();
          for n = 1 to nodes - 1 do
            worker_home c rng n 5
          done;
          Cluster.run c;
          final_pull c ~nodes ~locks:all_locks;
          oracle c ~nodes ~region_ids:[ 0; 1 ] ))

(* --------------------------------------------------------------- *)
(* OO7: the bench configurations as explorable scenarios *)

let oo7_scenario ~name ~descr config =
  cluster_scenario ~name ~descr (fun sched ->
      let schema = Lbc_oo7.Schema.tiny in
      let nodes = 3 in
      let c = Lbc_oo7.Runner.setup ~config ~sched ~nodes schema in
      let traverse n kind delay =
        Cluster.spawn c ~node:n (fun node ->
            if delay > 0.0 then Lbc_sim.Proc.sleep delay;
            let txn = Node.Txn.begin_ node in
            Node.Txn.acquire txn Lbc_oo7.Runner.lock;
            let db =
              Lbc_oo7.Database.attach_txn schema txn
                ~region:Lbc_oo7.Runner.region
            in
            ignore (Lbc_oo7.Traversal.run db kind);
            Node.Txn.commit txn)
      in
      ( c,
        fun () ->
          (* Two writers contend for the single segment lock; a third
             node only receives updates. *)
          traverse 0 (Lbc_oo7.Traversal.T2 Lbc_oo7.Traversal.A) 0.0;
          traverse 1 (Lbc_oo7.Traversal.T12 Lbc_oo7.Traversal.B) 5.0;
          Cluster.run c;
          final_pull c ~nodes ~locks:1;
          oracle c ~nodes ~region_ids:[ Lbc_oo7.Runner.region ] ))

let oo7_eager =
  oo7_scenario ~name:"oo7-eager"
    ~descr:"OO7 traversals, eager propagation (bench default)" Config.default

let oo7_multicast =
  oo7_scenario ~name:"oo7-multicast"
    ~descr:"OO7 traversals with multicast propagation"
    { Config.default with Config.multicast = true }

let oo7_lazy =
  oo7_scenario ~name:"oo7-lazy"
    ~descr:"OO7 traversals, lazy propagation with final pulls"
    { Config.default with Config.propagation = Config.Lazy }

(* --------------------------------------------------------------- *)

let all =
  [
    planted;
    drop_heal;
    crash_rejoin;
    checkpoint_under_faults;
    rejoin_under_load;
    oo7_eager;
    oo7_multicast;
    oo7_lazy;
  ]

let find name = List.find_opt (fun s -> s.name = name) all
