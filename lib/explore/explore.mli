(** Schedule exploration: run many seeded schedules of a scenario, stop
    at the first oracle violation, shrink the failing decision trace by
    delta debugging, and write a replayable counterexample file.

    Shrinking is sound because the trace format degrades gracefully: a
    zeroed or truncated decision falls back to stable FIFO, so every
    subset of a recorded trace is a valid, replayable schedule.  The
    shrunk trace's surviving non-zero decisions are exactly the
    reorderings the failure needs. *)

type failure = {
  scenario : string;
  policy : Lbc_sim.Schedule.policy;
      (** the policy that found the failure (kept across shrinking, for
          provenance; [decisions] is the replay key) *)
  violations : Lbc_analysis.Violation.t list;
  decisions : int list;
  choice_points : int;
  schedules_run : int;  (** clean schedules explored before this one *)
}

type outcome = Pass of int  (** schedules explored, all clean *) | Fail of failure

val names_of : Lbc_analysis.Violation.t list -> string list
(** Sorted, deduplicated stable violation names — the equality key for
    "same failure". *)

val explore :
  ?mode:[ `Random | `Pct ] ->
  ?seed0:int ->
  ?on_schedule:(int -> unit) ->
  seeds:int ->
  Scenario.t ->
  outcome
(** Run [seeds] schedules with seeds [seed0], [seed0+1], … (default
    [seed0 = 1]), stopping at the first violating one.  [mode] picks the
    policy family (default [`Random], i.e. seeded tie permutation;
    [`Pct] is random-priority).  [on_schedule i] is called before
    schedule [i] (progress reporting). *)

val replay : Scenario.t -> int list -> Scenario.result
(** Run the scenario under [Replay] of the given decision trace. *)

val shrink : Scenario.t -> failure -> failure
(** Delta-debug the failure's decision trace to a minimal set of
    non-zero decisions that still reproduces the same violation-name
    set.  Returns the original failure unchanged if it does not replay
    (which would indicate scenario nondeterminism). *)

val nonzero_count : int list -> int
(** Decisions that deviate from FIFO — the shrink metric. *)

(** {1 Counterexample trace files} *)

type trace = {
  t_scenario : string;
  t_policy : string;  (** provenance: policy string of the failing run *)
  t_names : string list;  (** violation names the replay must reproduce *)
  t_decisions : int list;
}

val trace_of_failure : failure -> trace
val write_trace : string -> failure -> unit

val read_trace : string -> (trace, string) result

val replay_trace : trace -> (Scenario.result * bool, string) result
(** Replay a trace file's schedule; the boolean is true iff the replay
    reproduced the recorded violation-name set. *)
