bin/oo7_run.mli:
