bin/lbc_logdump.mli:
