bin/oo7_run.ml: Arg Cmd Cmdliner Database Filename Format Int64 Lbc_core Lbc_costmodel Lbc_dsm Lbc_oo7 Lbc_pheap Lbc_storage Lbc_wal List Logs Option Runner Schema String Sys Term Traversal Unix
