bin/lbc_recover.mli:
