bin/lbc_recover.ml: Arg Bytes Cmd Cmdliner Format Lbc_core Lbc_rvm Lbc_storage Lbc_wal List Term
