bin/lbc_logdump.ml: Arg Bytes Cmd Cmdliner Format Lbc_core Lbc_storage Lbc_wal List Term
