lib/sim/condvar.ml: Proc Queue
