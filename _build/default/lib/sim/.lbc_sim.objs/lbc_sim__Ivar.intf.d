lib/sim/ivar.mli:
