lib/sim/condvar.mli:
