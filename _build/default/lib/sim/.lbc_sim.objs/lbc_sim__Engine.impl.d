lib/sim/engine.ml: Float Lbc_util Printf
