lib/sim/mailbox.ml: Proc Queue
