lib/sim/engine.mli:
