lib/sim/mailbox.mli:
