(** Cooperative simulated processes, implemented with effect handlers.

    A process is an ordinary OCaml function spawned on an {!Engine.t}.
    Inside a process, {!sleep} advances virtual time and {!suspend} parks
    the process until some other event resumes it.  All higher-level
    synchronization ({!Ivar}, {!Mailbox}, {!Condvar}) is built from
    [suspend].  Processes are single-shot continuations driven entirely by
    the engine, so a whole multi-node system runs deterministically on one
    OS thread. *)

exception Not_in_process
(** Raised when [sleep]/[suspend]/[now] is called outside [spawn]. *)

val spawn : Engine.t -> ?name:string -> (unit -> unit) -> unit
(** [spawn engine f] schedules process [f] to start at the current virtual
    instant.  An exception escaping [f] is wrapped in [Failure] with the
    process [name] and propagates out of {!Engine.run}. *)

val sleep : Engine.time -> unit
(** Advance this process's virtual time.  Other events run meanwhile. *)

val yield : unit -> unit
(** Re-enter the event queue at the current instant (runs after events
    already scheduled for this instant). *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the process and calls [register resume]
    immediately; a later call of [resume v] (from any event callback)
    continues the process with [v].  [resume] must be called exactly
    once. *)

val now : unit -> Engine.time
(** Virtual time, usable only inside a process. *)

val engine : unit -> Engine.t
(** The engine driving the current process. *)
