type time = float

type event = { at : time; callback : unit -> unit }

type t = { mutable clock : time; queue : event Lbc_util.Pqueue.t }

let compare_event a b = Float.compare a.at b.at

let create () =
  { clock = 0.0; queue = Lbc_util.Pqueue.create ~compare:compare_event }

let now t = t.clock

let schedule_at t ~at callback =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %g is before now (%g)" at t.clock);
  Lbc_util.Pqueue.push t.queue { at; callback }

let schedule t ?(delay = 0.0) callback =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock +. delay) callback

let pending t = Lbc_util.Pqueue.length t.queue

let step t =
  match Lbc_util.Pqueue.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.at;
      ev.callback ();
      true

let run ?until t =
  let continue () =
    match (Lbc_util.Pqueue.peek t.queue, until) with
    | None, _ -> false
    | Some ev, Some limit when ev.at > limit -> false
    | Some _, _ -> true
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | _ -> ()
