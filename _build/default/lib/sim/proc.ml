exception Not_in_process

type _ Effect.t +=
  | Sleep : Engine.time -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Current_engine : Engine.t Effect.t

let sleep dt =
  try Effect.perform (Sleep dt) with Effect.Unhandled _ -> raise Not_in_process

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ -> raise Not_in_process

let engine () =
  try Effect.perform Current_engine
  with Effect.Unhandled _ -> raise Not_in_process

let now () = Engine.now (engine ())
let yield () = sleep 0.0

let spawn eng ?(name = "proc") f =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          let bt = Printexc.get_raw_backtrace () in
          let e' =
            match e with
            | Failure _ -> e
            | _ -> Failure (Printf.sprintf "process %s: %s" name (Printexc.to_string e))
          in
          Printexc.raise_with_backtrace e' bt);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep dt ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Engine.schedule eng ~delay:dt (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  register (fun v -> continue k v))
          | Current_engine ->
              Some (fun (k : (a, unit) continuation) -> continue k eng)
          | _ -> None);
    }
  in
  Engine.schedule eng (fun () -> match_with f () handler)
