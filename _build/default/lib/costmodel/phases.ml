type t = {
  detect : float;
  collect : float;
  network : float;
  apply : float;
  disk : float;
}

let zero = { detect = 0.0; collect = 0.0; network = 0.0; apply = 0.0; disk = 0.0 }

let add a b =
  {
    detect = a.detect +. b.detect;
    collect = a.collect +. b.collect;
    network = a.network +. b.network;
    apply = a.apply +. b.apply;
    disk = a.disk +. b.disk;
  }

let total t = t.detect +. t.collect +. t.network +. t.apply +. t.disk

let detect v = { zero with detect = v }
let collect v = { zero with collect = v }
let network v = { zero with network = v }
let apply v = { zero with apply = v }
let disk v = { zero with disk = v }

let scale k t =
  {
    detect = k *. t.detect;
    collect = k *. t.collect;
    network = k *. t.network;
    apply = k *. t.apply;
    disk = k *. t.disk;
  }

let pp ppf t =
  Format.fprintf ppf
    "detect=%.1f collect=%.1f network=%.1f apply=%.1f disk=%.1f total=%.1f µs"
    t.detect t.collect t.network t.apply t.disk (total t)

let pp_ms ppf t =
  let ms v = v /. 1000.0 in
  Format.fprintf ppf
    "%8.2f ms  (detect %7.2f | collect %7.2f | net %7.2f | apply %7.2f | disk %7.2f)"
    (ms (total t)) (ms t.detect) (ms t.collect) (ms t.network) (ms t.apply)
    (ms t.disk)
