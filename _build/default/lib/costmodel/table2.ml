let page_size = 8192
let page_copy_cold = 171.9
let page_copy_warm = 57.8
let page_compare_cold = 281.0
let page_compare_warm = 147.3
let page_send_tcp = 677.0
let trap_and_protect = 360.1
let fast_trap = 10.0
let tcp_per_byte = page_send_tcp /. float_of_int page_size

(* (677 - 171.9 - 281.0) / 1037 — see the interface comment. *)
let calibrated_per_byte =
  (page_send_tcp -. page_copy_cold -. page_compare_cold) /. 1037.0

let copy_per_byte_warm = page_copy_warm /. float_of_int page_size
