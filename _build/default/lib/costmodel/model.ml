type update_class = Redundant | Ordered | Unordered

(* Calibration (Section 4.3): the paper states that at 1000 updates per
   transaction, log-based coherency beats Cpy/Cmp below 45 updates/page
   (55 if ordered), i.e. an unordered update costs 813/45 = 18.1 µs and an
   ordered one 813/55 = 14.8 µs, where 813 µs = trap + copy + compare.
   The unordered cost is dominated by the range-tree search, so it grows
   with the logarithm of the tree size (Figures 5-6). *)
let unordered_base = 6.11
let unordered_log_coeff = 1.2
let ordered_cost = 813.0 /. 55.0
let redundant_cost = 4.5

let log2 x = log x /. log 2.0

let per_update_cost cls ~nth =
  if nth < 1 then invalid_arg "Model.per_update_cost: nth < 1";
  match cls with
  | Redundant -> redundant_cost
  | Ordered -> ordered_cost
  | Unordered ->
      unordered_base +. (unordered_log_coeff *. log2 (float_of_int (max 2 nth)))

let detect_log ~update_classes =
  List.fold_left
    (fun acc (cls, count) ->
      match cls with
      | Redundant -> acc +. (redundant_cost *. float_of_int count)
      | Ordered -> acc +. (ordered_cost *. float_of_int count)
      | Unordered ->
          let sum = ref 0.0 in
          for i = 1 to count do
            sum := !sum +. per_update_cost Unordered ~nth:i
          done;
          acc +. !sum)
    0.0 update_classes

(* Commit-time gather: ~1 µs of iovec bookkeeping per range plus a
   warm-cache copy of the modified bytes into the system buffer. *)
let collect_log ~ranges ~bytes =
  float_of_int ranges +. (Table2.copy_per_byte_warm *. float_of_int bytes)

(* One writev per peer; same fixed/percentage split as the AN1 network
   parameters (677 µs for a full 8 KB page). *)
let writev_base = 100.0
let writev_per_byte = (Table2.page_send_tcp -. writev_base) /. float_of_int Table2.page_size

let network_log ~message_bytes ~peers =
  float_of_int peers
  *. (writev_base +. (writev_per_byte *. float_of_int message_bytes))

let apply_log ~ranges ~bytes =
  (0.5 *. float_of_int ranges)
  +. (Table2.copy_per_byte_warm *. float_of_int bytes)

(* Figure 8's disk bar: a synchronous force of the log tail.  Matches the
   osdi94_disk storage profile (45 ms seek/rotation + 0.8 µs/B). *)
let disk_force ~bytes = 45_000.0 +. (0.8 *. float_of_int bytes)

type traversal_profile = {
  updates : int;
  unique_bytes : int;
  message_bytes : int;
  pages_updated : int;
  ranges : int;
  ordered_updates : int;
  redundant_updates : int;
}

let log_phases ?(peers = 1) p =
  let unordered = p.updates - p.ordered_updates - p.redundant_updates in
  let detect =
    detect_log
      ~update_classes:
        [
          (Unordered, max 0 unordered);
          (Ordered, p.ordered_updates);
          (Redundant, p.redundant_updates);
        ]
  in
  Phases.add (Phases.detect detect)
    (Phases.add
       (Phases.collect (collect_log ~ranges:p.ranges ~bytes:p.unique_bytes))
       (Phases.add
          (Phases.network (network_log ~message_bytes:p.message_bytes ~peers))
          (Phases.apply (apply_log ~ranges:p.ranges ~bytes:p.unique_bytes))))

let page_phases ?(peers = 1) p =
  let pages = float_of_int p.pages_updated in
  Phases.add
    (Phases.detect (pages *. Table2.trap_and_protect))
    (Phases.add
       (Phases.network (float_of_int peers *. pages *. Table2.page_send_tcp))
       (Phases.apply (pages *. Table2.page_copy_cold)))

let cpycmp_phases ?(peers = 1) p =
  let pages = float_of_int p.pages_updated in
  Phases.add
    (Phases.detect (pages *. (Table2.trap_and_protect +. Table2.page_copy_cold)))
    (Phases.add
       (Phases.collect (pages *. Table2.page_compare_cold))
       (Phases.add
          (Phases.network (network_log ~message_bytes:p.message_bytes ~peers))
          (Phases.apply (apply_log ~ranges:p.ranges ~bytes:p.unique_bytes))))
