(** Per-protocol cost functions built on the Table 2 measurements.

    These charge the same quantities the paper's evaluation accounts:

    - {b Log} (log-based coherency): software write detection — each
      [set_range] call costs a few µs depending on which path it takes
      (Figure 5's unordered / ordered / redundant curves); collecting
      updates at commit costs per range and per byte ([writev] gather);
      network I/O is one writev per peer of the modified bytes plus
      compressed headers; apply copies the bytes at the receiver.
    - {b Page} (page-locking DSM lower bound): one write-protection trap
      per modified page, whole pages on the wire.
    - {b Cpy/Cmp} (multiple-writer twin/diff lower bound): a trap plus a
      page copy on the first write to each page, a page comparison at
      commit, and the same network traffic as Log.

    The per-update curves are calibrated to the paper's Figures 5-6: at
    1000 updates/transaction an unordered update costs ≈18.1 µs and an
    ordered one ≈14.8 µs, reproducing the "45 (55 if ordered) updates per
    page" breakeven quoted in Section 4.3. *)

type update_class = Redundant | Ordered | Unordered

val per_update_cost : update_class -> nth:int -> float
(** Cost in µs of the [nth] (1-based) [set_range] call of a transaction.
    Unordered calls grow logarithmically with the range-tree size;
    ordered and redundant calls are flat. *)

val detect_log : update_classes:(update_class * int) list -> float
(** Total detect cost of a transaction given how many calls of each class
    it made (order-insensitive approximation using the running count). *)

val collect_log : ranges:int -> bytes:int -> float
(** Commit-time gather: building iovecs and copying modified bytes to the
    system buffer. *)

val network_log : message_bytes:int -> peers:int -> float
(** One writev per peer carrying the coherency message. *)

val apply_log : ranges:int -> bytes:int -> float
(** Receiver-side application of range records into the cached image. *)

val disk_force : bytes:int -> float
(** Synchronous log force of [bytes] of log tail (Figure 8's disk bar). *)

(** {1 Whole-traversal phase breakdowns} *)

type traversal_profile = {
  updates : int;  (** individual update operations (Table 3 "Updates") *)
  unique_bytes : int;  (** distinct bytes modified ("Bytes Updated") *)
  message_bytes : int;  (** bytes on the wire incl. headers ("Message Bytes") *)
  pages_updated : int;  (** distinct pages written ("Pages Updated") *)
  ranges : int;  (** range records in the log *)
  ordered_updates : int;  (** updates taking the ordered fast path *)
  redundant_updates : int;  (** updates coalescing with a previous range *)
}

val log_phases : ?peers:int -> traversal_profile -> Phases.t
val page_phases : ?peers:int -> traversal_profile -> Phases.t
val cpycmp_phases : ?peers:int -> traversal_profile -> Phases.t
(** [peers] defaults to 1 (the paper's two-node runs: one writer, one
    receiver). *)
