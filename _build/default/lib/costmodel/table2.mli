(** Operation costs measured by the paper on a DEC Alpha 3000-400 (133 MHz)
    running OSF/1 over the 100 Mbit/s AN1 network — the paper's Table 2.
    All costs in microseconds; throughput-style costs are per 8 KB page. *)

val page_size : int
(** 8192 bytes (Alpha page). *)

val page_copy_cold : float
(** 171.9 µs/page (43 MB/s). *)

val page_copy_warm : float
(** 57.8 µs/page (135 MB/s). *)

val page_compare_cold : float
(** 281.0 µs/page (28 MB/s). *)

val page_compare_warm : float
(** 147.3 µs/page (53 MB/s). *)

val page_send_tcp : float
(** 677.0 µs/page (96.8 Mbit/s). *)

val trap_and_protect : float
(** 360.1 µs: deliver a write-protection signal to user level and change
    the page protection with [mprotect]. *)

val fast_trap : float
(** 10 µs: the hypothetical fast exception path of Thekkath & Levy (1994),
    used by Figure 7's second curve. *)

val tcp_per_byte : float
(** Raw per-byte cost at the page-send rate: [page_send_tcp / page_size]
    ≈ 0.0826 µs/B (12 MB/s). *)

val calibrated_per_byte : float
(** 0.216 µs/B — the effective per-byte network cost implied by the
    paper's stated 1037-byte Page-vs-Cpy/Cmp breakeven in Figure 4
    (solve [copy + compare + b*r = page_send] for [b = 1037]).  Small
    transfers do not reach peak TCP throughput, so this is the honest
    rate for fine-grained coherency messages. *)

val copy_per_byte_warm : float
(** Per-byte cost of a warm-cache memory copy. *)
