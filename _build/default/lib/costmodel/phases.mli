(** Coherency-overhead phase breakdown, matching the stacked bars of the
    paper's Figures 1-3 and 8: detect updates, collect updates, network
    I/O, apply updates (plus disk I/O for Figure 8).  Times in µs. *)

type t = {
  detect : float;
  collect : float;
  network : float;
  apply : float;
  disk : float;
}

val zero : t
val add : t -> t -> t
val total : t -> float

val detect : float -> t
val collect : float -> t
val network : float -> t
val apply : float -> t
val disk : float -> t
(** Single-phase constructors, to be combined with {!add}. *)

val scale : float -> t -> t
val pp : Format.formatter -> t -> unit
val pp_ms : Format.formatter -> t -> unit
(** Render in milliseconds with the phase breakdown. *)
