type rate = Raw | Calibrated

let per_byte = function
  | Raw -> Table2.tcp_per_byte
  | Calibrated -> Table2.calibrated_per_byte

let fig4_log rate ~bytes = per_byte rate *. float_of_int bytes

let fig4_cpycmp rate ~bytes =
  Table2.trap_and_protect +. Table2.page_copy_cold +. Table2.page_compare_cold
  +. (per_byte rate *. float_of_int bytes)

let fig4_page = Table2.trap_and_protect +. Table2.page_send_tcp

let page_vs_cpycmp_breakeven rate =
  (Table2.page_send_tcp -. Table2.page_copy_cold -. Table2.page_compare_cold)
  /. per_byte rate

let fig7_breakeven ~trap ~per_update_cost =
  if per_update_cost <= 0.0 then invalid_arg "Curves.fig7_breakeven";
  (trap +. Table2.page_copy_cold +. Table2.page_compare_cold) /. per_update_cost

let fig7_standard ~per_update_cost =
  fig7_breakeven ~trap:Table2.trap_and_protect ~per_update_cost

let fig7_fast_trap ~per_update_cost =
  fig7_breakeven ~trap:Table2.fast_trap ~per_update_cost
