(** Analytic curves for the paper's Figures 4 and 7. *)

type rate = Raw | Calibrated
(** Which per-byte network rate to use: [Raw] is Table 2's peak TCP rate
    (12 MB/s); [Calibrated] is the effective small-transfer rate implied
    by the paper's 1037-byte breakeven (see {!Table2.calibrated_per_byte}). *)

val per_byte : rate -> float

(** {1 Figure 4 — overhead as modified bytes per page grow} *)

val fig4_log : rate -> bytes:int -> float
(** Per-page overhead of log-based coherency, excluding per-update costs
    (as the figure's caption specifies): just the modified bytes on the
    wire. *)

val fig4_cpycmp : rate -> bytes:int -> float
(** Trap + page copy + page compare + modified bytes on the wire. *)

val fig4_page : float
(** Constant: trap + whole-page send. *)

val page_vs_cpycmp_breakeven : rate -> float
(** Modified bytes per page above which Page beats Cpy/Cmp (the paper
    quotes 1037 bytes; [Calibrated] reproduces that). *)

(** {1 Figure 7 — breakeven updates per page} *)

val fig7_breakeven : trap:float -> per_update_cost:float -> float
(** Maximum updates per page for which log-based coherency beats Cpy/Cmp,
    given a trap cost and an average per-update cost: [(trap + copy +
    compare) / per_update_cost].  With the OSF/1 trap and the 18.1 µs
    unordered update cost of a 1000-update transaction this is 45 (55 with
    the 14.8 µs ordered cost), as quoted in Section 4.3. *)

val fig7_standard : per_update_cost:float -> float
(** [fig7_breakeven] with the measured OSF/1 trap (360.1 µs). *)

val fig7_fast_trap : per_update_cost:float -> float
(** [fig7_breakeven] with the hypothetical 10 µs trap. *)
