lib/costmodel/curves.ml: Table2
