lib/costmodel/model.mli: Phases
