lib/costmodel/table2.ml:
