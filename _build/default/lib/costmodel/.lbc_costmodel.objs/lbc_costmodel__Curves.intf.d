lib/costmodel/curves.mli:
