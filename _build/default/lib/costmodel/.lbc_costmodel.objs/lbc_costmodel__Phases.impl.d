lib/costmodel/phases.ml: Format
