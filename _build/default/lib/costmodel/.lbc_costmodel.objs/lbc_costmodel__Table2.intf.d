lib/costmodel/table2.mli:
