lib/costmodel/phases.mli: Format
