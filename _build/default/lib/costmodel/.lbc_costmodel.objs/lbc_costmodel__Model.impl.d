lib/costmodel/model.ml: List Phases Table2
