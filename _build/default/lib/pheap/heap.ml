exception Heap_error of string

type mem = {
  read : offset:int -> len:int -> Bytes.t;
  write : offset:int -> Bytes.t -> unit;
}

type t = { mem : mem; size : int }

let magic = 0x50484541 (* "PHEA" *)
let header_size = 16
let data_start = header_size

let u64_of_bytes b = Bytes.get_int64_le b 0

let bytes_of_u64 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let format image =
  if Bytes.length image < header_size then raise (Heap_error "image too small");
  Bytes.set_int64_le image 0 (Int64.of_int magic);
  Bytes.set_int64_le image 8 (Int64.of_int data_start)

let mem_of_bytes image =
  {
    read =
      (fun ~offset ~len ->
        if offset < 0 || offset + len > Bytes.length image then
          raise (Heap_error "read out of bounds");
        Bytes.sub image offset len);
    write =
      (fun ~offset b ->
        if offset < 0 || offset + Bytes.length b > Bytes.length image then
          raise (Heap_error "write out of bounds");
        Bytes.blit b 0 image offset (Bytes.length b));
  }

let check_header t =
  let m = u64_of_bytes (t.mem.read ~offset:0 ~len:8) in
  if Int64.to_int m <> magic then raise (Heap_error "bad heap magic")

let attach mem ~size =
  let t = { mem; size } in
  check_header t;
  t

let of_bytes image =
  let m = Bytes.get_int64_le image 0 in
  if Int64.to_int m <> magic then
    if Int64.equal m 0L then format image
    else raise (Heap_error "image is not a heap");
  { mem = mem_of_bytes image; size = Bytes.length image }

let mem t = t.mem
let size t = t.size

let get_u64 t addr = u64_of_bytes (t.mem.read ~offset:addr ~len:8)
let set_u64 t addr v = t.mem.write ~offset:addr (bytes_of_u64 v)

let get_int t addr =
  let v = get_u64 t addr in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Heap_error "get_int: value out of int range");
  Int64.to_int v

let set_int t addr v =
  if v < 0 then raise (Heap_error "set_int: negative");
  set_u64 t addr (Int64.of_int v)

let get_bytes t addr ~len = t.mem.read ~offset:addr ~len
let set_bytes t addr b = t.mem.write ~offset:addr b

let allocated t = get_int t 8

let alloc t n =
  if n <= 0 then raise (Heap_error "alloc: size must be positive");
  let ptr = allocated t in
  if ptr + n > t.size then
    raise
      (Heap_error
         (Printf.sprintf "alloc: out of space (%d + %d > %d)" ptr n t.size));
  set_int t 8 (ptr + n);
  ptr

let get_field t layout ~addr name = get_int t (addr + Layout.offset layout name)

let set_field t layout ~addr name v =
  set_int t (addr + Layout.offset layout name) v
