type key = int64 * int64

(* Node layout: key_hi, key_lo, left, right, height — all u64. *)
let node_size = 40
let f_key_hi = 0
let f_key_lo = 8
let f_left = 16
let f_right = 24
let f_height = 32

(* Slot area: root pointer, free-list head. *)
let slots_size = 16

type t = { heap : Heap.t; slots : int; m : Avl_mech.t }

let attach heap ~slots =
  { heap; slots; m = { Avl_mech.heap; f_left; f_right; f_height } }

let root t = Heap.get_int t.heap t.slots
let set_root t v = Heap.set_int t.heap t.slots v
let free_slot t = t.slots + 8

let key_of t n =
  (Heap.get_u64 t.heap (n + f_key_hi), Heap.get_u64 t.heap (n + f_key_lo))

let left t n = Avl_mech.left t.m n
let right t n = Avl_mech.right t.m n
let set_left t n v = Avl_mech.set_left t.m n v
let set_right t n v = Avl_mech.set_right t.m n v
let rebalance t n = Avl_mech.rebalance t.m n

let compare_key (a1, a2) (b1, b2) =
  let c = Int64.unsigned_compare a1 b1 in
  if c <> 0 then c else Int64.unsigned_compare a2 b2

let alloc_node t (k1, k2) =
  let n =
    match Avl_mech.free_pop t.m ~head_slot:(free_slot t) with
    | Some n -> n
    | None -> Heap.alloc t.heap node_size
  in
  (* Initialize the whole node with one store so a fresh leaf costs one
     range record, not five. *)
  let image = Bytes.make node_size '\000' in
  Bytes.set_int64_le image f_key_hi k1;
  Bytes.set_int64_le image f_key_lo k2;
  Bytes.set_int64_le image f_height 1L;
  Heap.set_bytes t.heap n image;
  n

let free_node t n = Avl_mech.free_push t.m ~head_slot:(free_slot t) n

let insert t key =
  let inserted = ref false in
  let rec go n =
    if n = 0 then begin
      inserted := true;
      alloc_node t key
    end
    else begin
      let c = compare_key key (key_of t n) in
      if c = 0 then n
      else begin
        if c < 0 then begin
          let l' = go (left t n) in
          if l' <> left t n then set_left t n l'
        end
        else begin
          let r' = go (right t n) in
          if r' <> right t n then set_right t n r'
        end;
        if !inserted then rebalance t n else n
      end
    end
  in
  let r = go (root t) in
  if r <> root t then set_root t r;
  !inserted

let delete t key =
  let deleted = ref false in
  let rec go n =
    if n = 0 then 0
    else begin
      let c = compare_key key (key_of t n) in
      if c < 0 then begin
        let l' = go (left t n) in
        if l' <> left t n then set_left t n l';
        if !deleted then rebalance t n else n
      end
      else if c > 0 then begin
        let r' = go (right t n) in
        if r' <> right t n then set_right t n r';
        if !deleted then rebalance t n else n
      end
      else begin
        deleted := true;
        if left t n = 0 then begin
          let r = right t n in
          free_node t n;
          r
        end
        else if right t n = 0 then begin
          let l = left t n in
          free_node t n;
          l
        end
        else begin
          (* Two children: replace with the in-order successor's key, then
             delete the successor from the right subtree. *)
          let succ = Avl_mech.min_node t.m (right t n) in
          let k1, k2 = key_of t succ in
          Heap.set_u64 t.heap (n + f_key_hi) k1;
          Heap.set_u64 t.heap (n + f_key_lo) k2;
          let rec remove_min m =
            if left t m = 0 then right t m
            else begin
              let l' = remove_min (left t m) in
              if l' <> left t m then set_left t m l';
              rebalance t m
            end
          in
          let r' = remove_min (right t n) in
          free_node t succ;
          if r' <> right t n then set_right t n r';
          rebalance t n
        end
      end
    end
  in
  let r = go (root t) in
  if r <> root t then set_root t r;
  !deleted

let contains t key =
  let rec go n =
    if n = 0 then false
    else
      let c = compare_key key (key_of t n) in
      if c = 0 then true else if c < 0 then go (left t n) else go (right t n)
  in
  go (root t)

type replace_outcome = In_place | Reinserted | Not_found

(* Find [old_key]'s node while tracking the tightest ancestor bounds; the
   in-place rewrite is legal iff the new key still falls strictly between
   the node's predecessor and successor. *)
let replace_key t ~old_key ~new_key =
  if compare_key old_key new_key = 0 then In_place
  else begin
    let rec find n lo hi =
      if n = 0 then None
      else
        let k = key_of t n in
        let c = compare_key old_key k in
        if c = 0 then Some (n, lo, hi)
        else if c < 0 then find (left t n) lo (Some k)
        else find (right t n) (Some k) hi
    in
    match find (root t) None None with
    | None -> Not_found
    | Some (n, lo, hi) ->
        let pred =
          if left t n <> 0 then Some (key_of t (Avl_mech.max_node t.m (left t n)))
          else lo
        in
        let succ =
          if right t n <> 0 then
            Some (key_of t (Avl_mech.min_node t.m (right t n)))
          else hi
        in
        let above_pred =
          match pred with None -> true | Some p -> compare_key new_key p > 0
        in
        let below_succ =
          match succ with None -> true | Some s -> compare_key new_key s < 0
        in
        if above_pred && below_succ then begin
          let oh1, ol2 = key_of t n and nh1, nh2 = new_key in
          if not (Int64.equal oh1 nh1) then
            Heap.set_u64 t.heap (n + f_key_hi) nh1;
          if not (Int64.equal ol2 nh2) then
            Heap.set_u64 t.heap (n + f_key_lo) nh2;
          In_place
        end
        else if contains t new_key then Not_found
        else begin
          ignore (delete t old_key);
          ignore (insert t new_key);
          Reinserted
        end
  end

let min_key t =
  match root t with
  | 0 -> None
  | r -> Some (key_of t (Avl_mech.min_node t.m r))

let fold t ~init ~f =
  let rec go n acc =
    if n = 0 then acc
    else
      let acc = go (left t n) acc in
      let acc = f acc (key_of t n) in
      go (right t n) acc
  in
  go (root t) init

let height t = Avl_mech.height_of t.m (root t)

let cardinal t =
  let rec count n = if n = 0 then 0 else 1 + count (left t n) + count (right t n) in
  count (root t)

let check_invariants t =
  Avl_mech.check_structure t.m ~root:(root t) ~key_le:(fun a b ->
      compare_key (key_of t a) (key_of t b) < 0);
  let counted = fold t ~init:0 ~f:(fun a _ -> a + 1) in
  if counted <> cardinal t then
    raise (Heap.Heap_error "Avl.check_invariants: cardinality mismatch")
