(** A persistent heap inside a byte-addressed region.

    The heap is a bump allocator whose allocation pointer is itself stored
    in the region (offset 8), so the heap structure survives recovery and
    is shared by every node mapping the region.  Address 0 is the null
    pointer; the first allocatable byte is {!data_start}.

    The heap is access-agnostic: it reads and writes through the closures
    supplied at {!attach}, so the same code runs over a raw [Bytes.t]
    image during database construction ({!of_bytes}) and over a
    transactional memory (RVM [set_range] + store) during execution. *)

type t

type mem = {
  read : offset:int -> len:int -> Bytes.t;
  write : offset:int -> Bytes.t -> unit;
}

exception Heap_error of string

val header_size : int
val data_start : int

val format : Bytes.t -> unit
(** Initialize a fresh heap header in a raw image. *)

val of_bytes : Bytes.t -> t
(** Attach directly to a raw image (builder mode).  The image must have
    been {!format}ted (or be about to be: [of_bytes] formats an all-zero
    image). *)

val attach : mem -> size:int -> t
(** Attach through an access interface; the header must be valid. *)

val mem : t -> mem
val size : t -> int

val alloc : t -> int -> int
(** Allocate [n] bytes, returning their address.
    @raise Heap_error when the region is exhausted. *)

val allocated : t -> int
(** Current allocation frontier. *)

(** {1 Typed accessors} *)

val get_u64 : t -> int -> int64
val set_u64 : t -> int -> int64 -> unit
val get_int : t -> int -> int
(** [get_u64] narrowed to a non-negative OCaml int (pointers, counters). *)

val set_int : t -> int -> int -> unit
val get_bytes : t -> int -> len:int -> Bytes.t
val set_bytes : t -> int -> Bytes.t -> unit

(** {1 Field access through layouts} *)

val get_field : t -> Layout.t -> addr:int -> string -> int
val set_field : t -> Layout.t -> addr:int -> string -> int -> unit
(** 8-byte integer fields addressed by layout field name. *)
