type t = { size : int; table : (string * (int * int)) list (* name -> offset, size *) }

let make ?pad_to fields =
  let _, table =
    List.fold_left
      (fun (off, acc) (name, fsize) ->
        if fsize <= 0 then invalid_arg "Layout.make: field size must be positive";
        if List.mem_assoc name acc then
          invalid_arg (Printf.sprintf "Layout.make: duplicate field %s" name);
        (off + fsize, (name, (off, fsize)) :: acc))
      (0, []) fields
  in
  let used = List.fold_left (fun a (_, s) -> a + s) 0 fields in
  let size =
    match pad_to with
    | None -> used
    | Some p ->
        if p < used then
          invalid_arg
            (Printf.sprintf "Layout.make: pad_to %d < fields total %d" p used);
        p
  in
  { size; table = List.rev table }

let size t = t.size

let offset t name =
  match List.assoc_opt name t.table with
  | Some (off, _) -> off
  | None -> raise Not_found

let field_size t name =
  match List.assoc_opt name t.table with
  | Some (_, s) -> s
  | None -> raise Not_found

let fields t = List.map fst t.table
