(** Fixed record layouts for objects stored in a persistent heap.

    A layout names the fields of a record and assigns them consecutive
    offsets; [size] can be padded up (OO7 objects are "roughly 200 bytes"
    and we pad to exactly that so clustering matches the paper). *)

type t

val make : ?pad_to:int -> (string * int) list -> t
(** [make fields] lays the [(name, byte-size)] fields out consecutively.
    [pad_to] rounds the total size up.  Raises [Invalid_argument] on
    duplicate names or if [pad_to] is smaller than the fields. *)

val size : t -> int

val offset : t -> string -> int
(** Byte offset of a field.  @raise Not_found for unknown fields. *)

val field_size : t -> string -> int
val fields : t -> string list
