type t = { heap : Heap.t; f_left : int; f_right : int; f_height : int }

let left t n = Heap.get_int t.heap (n + t.f_left)
let right t n = Heap.get_int t.heap (n + t.f_right)
let height_of t n = if n = 0 then 0 else Heap.get_int t.heap (n + t.f_height)
let set_left t n v = Heap.set_int t.heap (n + t.f_left) v
let set_right t n v = Heap.set_int t.heap (n + t.f_right) v

let update_height t n =
  let h = 1 + max (height_of t (left t n)) (height_of t (right t n)) in
  if height_of t n <> h then Heap.set_int t.heap (n + t.f_height) h

let balance_factor t n = height_of t (left t n) - height_of t (right t n)

let rotate_right t n =
  let l = left t n in
  set_left t n (right t l);
  set_right t l n;
  update_height t n;
  update_height t l;
  l

let rotate_left t n =
  let r = right t n in
  set_right t n (left t r);
  set_left t r n;
  update_height t n;
  update_height t r;
  r

let rebalance t n =
  update_height t n;
  let bf = balance_factor t n in
  if bf > 1 then begin
    if balance_factor t (left t n) < 0 then set_left t n (rotate_left t (left t n));
    rotate_right t n
  end
  else if bf < -1 then begin
    if balance_factor t (right t n) > 0 then
      set_right t n (rotate_right t (right t n));
    rotate_left t n
  end
  else n

let rec min_node t n = if left t n = 0 then n else min_node t (left t n)
let rec max_node t n = if right t n = 0 then n else max_node t (right t n)

let free_push t ~head_slot n =
  set_left t n (Heap.get_int t.heap head_slot);
  Heap.set_int t.heap head_slot n

let free_pop t ~head_slot =
  match Heap.get_int t.heap head_slot with
  | 0 -> None
  | n ->
      Heap.set_int t.heap head_slot (left t n);
      Some n

let check_structure t ~root ~key_le =
  let fail msg = raise (Heap.Heap_error ("Avl_mech.check_structure: " ^ msg)) in
  let rec go n =
    if n = 0 then 0
    else begin
      let hl = go (left t n) and hr = go (right t n) in
      if abs (hl - hr) > 1 then fail "unbalanced node";
      if 1 + max hl hr <> height_of t n then fail "stale height";
      if left t n <> 0 && not (key_le (left t n) n) then
        fail "left key out of order";
      if right t n <> 0 && not (key_le n (right t n)) then
        fail "right key out of order";
      1 + max hl hr
    end
  in
  ignore (go root)
