(** Shared AVL mechanics for trees whose nodes live in a persistent heap.

    Both index flavours ({!Avl} with inline keys, {!Iavl} with indirect
    keys) store left/right/height as 8-byte fields at fixed offsets inside
    their nodes; everything purely structural — rotations, rebalancing,
    height maintenance, extremum walks, the intrusive free list — is
    identical and lives here.  Key comparison and payload handling stay in
    the wrapping modules. *)

type t = {
  heap : Heap.t;
  f_left : int;  (** byte offset of the left-child field *)
  f_right : int;
  f_height : int;
}

val left : t -> int -> int
val right : t -> int -> int
val height_of : t -> int -> int
(** 0 for the null node. *)

val set_left : t -> int -> int -> unit
val set_right : t -> int -> int -> unit

val update_height : t -> int -> unit
(** Recompute from children; writes only when the value changes. *)

val rebalance : t -> int -> int
(** Restore the AVL invariant at a node whose subtrees are already
    balanced; returns the (possibly new) subtree root. *)

val min_node : t -> int -> int
val max_node : t -> int -> int
(** Extremum of a non-empty subtree. *)

(** {1 Intrusive free list}

    Freed nodes are chained through their left-child field; the list head
    lives at a caller-supplied heap address. *)

val free_push : t -> head_slot:int -> int -> unit
val free_pop : t -> head_slot:int -> int option

val check_structure :
  t -> root:int -> key_le:(int -> int -> bool) -> unit
(** Verify balance, height and ordering ([key_le parent child] per side);
    raises [Heap.Heap_error] on violation.  Test helper. *)
