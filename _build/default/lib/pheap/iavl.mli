(** An AVL tree over persistent objects with {e indirect} keys.

    Unlike {!Avl}, nodes store only the address of an entry; the ordering
    key is read {e through} that address by the [key_of] function given at
    attach (OO7: the atomic part's build-date field, tie-broken by the
    part's address).  Because the key is not copied into the tree, a key
    change that does not alter the entry's ordering position costs {b no
    index writes at all} — and a change that does alter it costs only
    pointer and height writes.  This is what keeps the paper's T3
    traversal at a handful of index updates per atomic-part update.

    The caller must keep keys consistent with the tree: use {!update} to
    change an entry's key. *)

type t

type key = int64 * int64

val node_size : int
val slots_size : int

val attach : Heap.t -> slots:int -> key_of:(int -> key) -> t
(** [key_of addr] must read the entry's current key from the heap. *)

val insert : t -> int -> bool
(** Insert the entry at [addr]; [false] if already present. *)

val delete : t -> int -> bool

val contains : t -> int -> bool

type update_outcome = In_place | Relocated

val update : t -> int -> new_key:key -> set:(unit -> unit) -> update_outcome
(** Change the key of the entry at [addr]: locate it (by its current
    key), and if [new_key] still falls strictly between the entry's
    neighbours, just run [set] — the tree is untouched.  Otherwise the
    entry is unlinked, [set] runs, and it is re-inserted.  [set] must make
    [key_of addr] return [new_key].
    @raise Heap.Heap_error if the entry is not in the tree. *)

val cardinal : t -> int
(** O(n). *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Entries in ascending key order. *)

val fold_range : t -> lo:key -> hi:key -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Entries with [lo <= key <= hi], ascending; visits only the O(log n +
    matches) relevant subtrees (OO7's range queries Q2/Q3 run on this). *)

val height : t -> int
val check_invariants : t -> unit
