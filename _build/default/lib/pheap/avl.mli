(** A persistent AVL tree stored in a {!Heap} — OO7's part index.

    Keys are composite [(primary, secondary)] 64-bit pairs; OO7 indexes
    atomic parts by their (mutable) build-date field with the part address
    as tie-breaker.  All node reads and writes go through the heap's
    access interface, so when the heap is attached to a transactional
    memory every rotation and pointer update is captured by [set_range] —
    this is what makes the paper's T3 traversal perform "an average of
    seven index updates for each atomic-part update".

    Deleted nodes are kept on an intrusive free list (head stored in the
    region) and reused by inserts, so delete/insert cycles do not grow the
    heap. *)

type t

type key = int64 * int64

val node_size : int

val slots_size : int
(** Bytes of region state the index needs (root pointer and free-list
    head); the caller reserves them, typically in its own header. *)

val attach : Heap.t -> slots:int -> t
(** [attach heap ~slots] binds the index whose state lives at address
    [slots].  A zeroed slot area is a valid empty index. *)

val insert : t -> key -> bool
(** Insert; [false] if the key was already present. *)

val delete : t -> key -> bool
(** Remove; [false] if the key was absent. *)

type replace_outcome = In_place | Reinserted | Not_found

val replace_key : t -> old_key:key -> new_key:key -> replace_outcome
(** Change a key.  If the new key sorts into the same tree position (its
    node's predecessor and successor still bracket it) only the key field
    is overwritten — a single 8-16 byte update, the common case for OO7's
    T3 where a build date moves by one.  Otherwise the entry is deleted
    and re-inserted.  [Not_found] if [old_key] is absent (or [new_key]
    already present). *)

val contains : t -> key -> bool

val cardinal : t -> int
(** Number of entries; O(n) — the index stores no counter so that
    updates touch the minimum number of bytes. *)

val min_key : t -> key option
val fold : t -> init:'a -> f:('a -> key -> 'a) -> 'a
(** In-order (ascending) traversal. *)

val height : t -> int

val check_invariants : t -> unit
(** Verify AVL balance and key ordering; raises [Heap.Heap_error] on
    violation (tests only — walks the whole tree). *)
