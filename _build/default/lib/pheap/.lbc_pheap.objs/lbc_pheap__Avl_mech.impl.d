lib/pheap/avl_mech.ml: Heap
