lib/pheap/heap.ml: Bytes Int64 Layout Printf
