lib/pheap/iavl.ml: Avl_mech Bytes Heap Int64
