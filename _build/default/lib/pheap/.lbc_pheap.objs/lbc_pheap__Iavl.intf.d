lib/pheap/iavl.mli: Heap
