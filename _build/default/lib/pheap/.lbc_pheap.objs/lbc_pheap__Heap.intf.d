lib/pheap/heap.mli: Bytes Layout
