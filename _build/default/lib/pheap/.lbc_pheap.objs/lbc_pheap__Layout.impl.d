lib/pheap/layout.ml: List Printf
