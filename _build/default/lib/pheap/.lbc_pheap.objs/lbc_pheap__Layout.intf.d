lib/pheap/layout.mli:
