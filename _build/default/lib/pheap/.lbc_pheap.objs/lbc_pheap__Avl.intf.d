lib/pheap/avl.mli: Heap
