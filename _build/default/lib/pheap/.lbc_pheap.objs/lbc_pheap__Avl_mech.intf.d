lib/pheap/avl_mech.mli: Heap
