lib/pheap/avl.ml: Avl_mech Bytes Heap Int64
