type key = int64 * int64

(* Node layout: value (entry address), left, right, height. *)
let node_size = 32
let f_value = 0
let f_left = 8
let f_right = 16
let f_height = 24

let slots_size = 16 (* root, free-list head *)

type t = { heap : Heap.t; slots : int; key_of : int -> key; m : Avl_mech.t }

let attach heap ~slots ~key_of =
  { heap; slots; key_of; m = { Avl_mech.heap; f_left; f_right; f_height } }

let root t = Heap.get_int t.heap t.slots
let set_root t v = Heap.set_int t.heap t.slots v
let free_slot t = t.slots + 8

let value t n = Heap.get_int t.heap (n + f_value)
let left t n = Avl_mech.left t.m n
let right t n = Avl_mech.right t.m n
let set_left t n v = Avl_mech.set_left t.m n v
let set_right t n v = Avl_mech.set_right t.m n v
let rebalance t n = Avl_mech.rebalance t.m n
let key_at t n = t.key_of (value t n)

let compare_key (a1, a2) (b1, b2) =
  let c = Int64.unsigned_compare a1 b1 in
  if c <> 0 then c else Int64.unsigned_compare a2 b2

let alloc_node t entry =
  let n =
    match Avl_mech.free_pop t.m ~head_slot:(free_slot t) with
    | Some n -> n
    | None -> Heap.alloc t.heap node_size
  in
  (* One store initializes the whole node. *)
  let image = Bytes.make node_size '\000' in
  Bytes.set_int64_le image f_value (Int64.of_int entry);
  Bytes.set_int64_le image f_height 1L;
  Heap.set_bytes t.heap n image;
  n

let free_node t n = Avl_mech.free_push t.m ~head_slot:(free_slot t) n

let insert t entry =
  let key = t.key_of entry in
  let inserted = ref false in
  let rec go n =
    if n = 0 then begin
      inserted := true;
      alloc_node t entry
    end
    else begin
      let c = compare_key key (key_at t n) in
      if c = 0 then n
      else begin
        if c < 0 then begin
          let l' = go (left t n) in
          if l' <> left t n then set_left t n l'
        end
        else begin
          let r' = go (right t n) in
          if r' <> right t n then set_right t n r'
        end;
        if !inserted then rebalance t n else n
      end
    end
  in
  let r = go (root t) in
  if r <> root t then set_root t r;
  !inserted

let delete t entry =
  let key = t.key_of entry in
  let deleted = ref false in
  let rec go n =
    if n = 0 then 0
    else begin
      let c = compare_key key (key_at t n) in
      if c < 0 then begin
        let l' = go (left t n) in
        if l' <> left t n then set_left t n l';
        if !deleted then rebalance t n else n
      end
      else if c > 0 then begin
        let r' = go (right t n) in
        if r' <> right t n then set_right t n r';
        if !deleted then rebalance t n else n
      end
      else begin
        (* Keys are unique (the entry address is the tie-breaker). *)
        deleted := true;
        if left t n = 0 then begin
          let r = right t n in
          free_node t n;
          r
        end
        else if right t n = 0 then begin
          let l = left t n in
          free_node t n;
          l
        end
        else begin
          (* Two children: move the in-order successor's value up, then
             remove the successor node. *)
          let succ = Avl_mech.min_node t.m (right t n) in
          Heap.set_int t.heap (n + f_value) (value t succ);
          let rec remove_min m =
            if left t m = 0 then right t m
            else begin
              let l' = remove_min (left t m) in
              if l' <> left t m then set_left t m l';
              rebalance t m
            end
          in
          let r' = remove_min (right t n) in
          free_node t succ;
          if r' <> right t n then set_right t n r';
          rebalance t n
        end
      end
    end
  in
  let r = go (root t) in
  if r <> root t then set_root t r;
  !deleted

let contains t entry =
  let key = t.key_of entry in
  let rec go n =
    if n = 0 then false
    else
      let c = compare_key key (key_at t n) in
      if c = 0 then value t n = entry
      else if c < 0 then go (left t n)
      else go (right t n)
  in
  go (root t)

type update_outcome = In_place | Relocated

let update t entry ~new_key ~set =
  let key = t.key_of entry in
  let rec find n lo hi =
    if n = 0 then None
    else
      let k = key_at t n in
      let c = compare_key key k in
      if c = 0 then Some (n, lo, hi)
      else if c < 0 then find (left t n) lo (Some k)
      else find (right t n) (Some k) hi
  in
  match find (root t) None None with
  | None -> raise (Heap.Heap_error "Iavl.update: entry not in tree")
  | Some (n, lo, hi) ->
      let pred =
        if left t n <> 0 then Some (key_at t (Avl_mech.max_node t.m (left t n)))
        else lo
      in
      let succ =
        if right t n <> 0 then
          Some (key_at t (Avl_mech.min_node t.m (right t n)))
        else hi
      in
      let fits =
        (match pred with None -> true | Some p -> compare_key new_key p > 0)
        && match succ with None -> true | Some s -> compare_key new_key s < 0
      in
      if fits then begin
        (* The node's position is still correct: the key change is free. *)
        set ();
        In_place
      end
      else begin
        ignore (delete t entry);
        set ();
        ignore (insert t entry);
        Relocated
      end

let fold t ~init ~f =
  let rec go n acc =
    if n = 0 then acc
    else
      let acc = go (left t n) acc in
      let acc = f acc (value t n) in
      go (right t n) acc
  in
  go (root t) init

let fold_range t ~lo ~hi ~init ~f =
  let rec go n acc =
    if n = 0 then acc
    else begin
      let k = key_at t n in
      let acc = if compare_key k lo > 0 then go (left t n) acc else acc in
      let acc =
        if compare_key k lo >= 0 && compare_key k hi <= 0 then f acc (value t n)
        else acc
      in
      if compare_key k hi < 0 then go (right t n) acc else acc
    end
  in
  go (root t) init

let cardinal t = fold t ~init:0 ~f:(fun a _ -> a + 1)
let height t = Avl_mech.height_of t.m (root t)

let check_invariants t =
  Avl_mech.check_structure t.m ~root:(root t) ~key_le:(fun a b ->
      compare_key (key_at t a) (key_at t b) < 0)
