lib/core/merge.ml: Array Hashtbl Int Lbc_wal List Map Option Printf
