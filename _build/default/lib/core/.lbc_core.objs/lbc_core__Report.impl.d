lib/core/report.ml: Cluster Format Lbc_locks Lbc_rvm Lbc_wal Node Printf
