lib/core/node.ml: Bytes Config Hashtbl Int Lbc_costmodel Lbc_locks Lbc_rvm Lbc_sim Lbc_storage Lbc_wal List Logs Msg Option Set Wire
