lib/core/wire.mli: Bytes Lbc_wal
