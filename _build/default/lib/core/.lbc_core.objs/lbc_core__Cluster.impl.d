lib/core/cluster.ml: Array Config Hashtbl Lbc_net Lbc_rvm Lbc_sim Lbc_storage Lbc_wal List Merge Msg Node Option Printf
