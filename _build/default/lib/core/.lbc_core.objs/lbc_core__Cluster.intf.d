lib/core/cluster.mli: Config Lbc_net Lbc_rvm Lbc_sim Lbc_storage Lbc_wal Merge Node
