lib/core/msg.mli: Bytes Format Lbc_locks
