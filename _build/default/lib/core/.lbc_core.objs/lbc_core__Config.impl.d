lib/core/config.ml: Lbc_rvm Lbc_wal
