lib/core/node.mli: Bytes Config Lbc_locks Lbc_rvm Lbc_storage Lbc_wal Msg
