lib/core/config.mli: Lbc_rvm
