lib/core/msg.ml: Bytes Format Lbc_locks List
