lib/core/merge.mli: Lbc_wal
