lib/core/wire.ml: Bytes Codec Lbc_util Lbc_wal List
