lib/core/report.mli: Cluster Format Node
