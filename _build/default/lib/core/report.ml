let pp_node ppf node =
  let rvm = Lbc_rvm.Rvm.stats (Node.rvm node) in
  let st = Node.stats node in
  let locks = Lbc_locks.Table.stats (Node.locks node) in
  let log = Lbc_rvm.Rvm.log (Node.rvm node) in
  Format.fprintf ppf
    "node %d: %d commits (%d aborts), %d set_ranges | sent %d upd/%dB, \
     recv %d (%d held) | locks %d local/%d remote, %d interlock waits | \
     log %dB live%s"
    (Node.id node) rvm.Lbc_rvm.Rvm.commits rvm.Lbc_rvm.Rvm.aborts
    rvm.Lbc_rvm.Rvm.set_ranges st.Node.updates_sent st.Node.update_bytes_sent
    st.Node.records_received st.Node.records_held
    locks.Lbc_locks.Table.local_grants locks.Lbc_locks.Table.remote_grants
    st.Node.interlock_waits
    (Lbc_wal.Log.live_bytes log)
    (if Node.pending_count node > 0 then
       Printf.sprintf " | %d PENDING" (Node.pending_count node)
     else "")

let pp_cluster ppf cluster =
  Format.fprintf ppf "@[<v>cluster: %d nodes, %d messages, %d bytes on the wire"
    (Cluster.size cluster)
    (Cluster.total_messages cluster)
    (Cluster.total_bytes cluster);
  for n = 0 to Cluster.size cluster - 1 do
    Format.fprintf ppf "@,  %a" pp_node (Cluster.node cluster n)
  done;
  Format.fprintf ppf "@]"
