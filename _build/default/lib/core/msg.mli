(** Messages exchanged between coherency nodes.

    One simulated TCP channel per node pair carries lock traffic and
    coherency data, like the prototype's per-peer connections. *)

type t =
  | Lock of Lbc_locks.Table.msg
  | Update of Bytes.t  (** a {!Wire}-encoded committed log tail *)
  | Fetch of { lock : int; have : int }
      (** lazy propagation: request records under [lock] newer than
          sequence number [have] *)
  | Fetched of { lock : int; payloads : Bytes.t list }
      (** reply, oldest first *)

val size : t -> int
val pp : Format.formatter -> t -> unit
