type t =
  | Lock of Lbc_locks.Table.msg
  | Update of Bytes.t
  | Fetch of { lock : int; have : int }
  | Fetched of { lock : int; payloads : Bytes.t list }

let size = function
  | Lock m -> Lbc_locks.Table.msg_size m
  | Update b -> 4 + Bytes.length b
  | Fetch _ -> 16
  | Fetched { payloads; _ } ->
      List.fold_left (fun acc b -> acc + 4 + Bytes.length b) 8 payloads

let pp ppf = function
  | Lock m -> Format.fprintf ppf "Lock(%a)" Lbc_locks.Table.pp_msg m
  | Update b -> Format.fprintf ppf "Update(%dB)" (Bytes.length b)
  | Fetch { lock; have } -> Format.fprintf ppf "Fetch(l%d>%d)" lock have
  | Fetched { lock; payloads } ->
      Format.fprintf ppf "Fetched(l%d,%d records)" lock (List.length payloads)
