(** Human-readable status reports for a running cluster — the operational
    introspection a deployed system needs (per-node transaction, traffic
    and log statistics). *)

val pp_node : Format.formatter -> Node.t -> unit
(** One line of per-node statistics. *)

val pp_cluster : Format.formatter -> Cluster.t -> unit
(** Full table: every node plus cluster-wide traffic. *)
