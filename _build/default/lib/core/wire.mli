(** The compressed coherency wire format (paper Section 3.2).

    The broadcast data differs from the on-disk log in two ways: records
    needed only for recovery and log trimming are omitted (only new-value
    range records and lock records are sent), and each range header is
    compressed from RVM's 104 bytes to 4-24 bytes.  As in the prototype,
    compression comes from small length fields and from replacing a
    range's address with its delta from the preceding range (ranges are
    sorted by address); we realize both with varints.

    [encode]/[decode] round-trip a {!Lbc_wal.Record.txn} exactly. *)

val encode : Lbc_wal.Record.txn -> Bytes.t

val decode : Bytes.t -> Lbc_wal.Record.txn
(** @raise Lbc_util.Codec.Truncated on malformed input. *)

val size : Lbc_wal.Record.txn -> int
(** [Bytes.length (encode t)], without building the message. *)

val size_uncompressed : Lbc_wal.Record.txn -> int
(** Size the same message would have with RVM's full 104-byte range
    headers — the baseline for the header-compression ablation. *)

val header_overhead : Lbc_wal.Record.txn -> int
(** Wire bytes that are not range payload: message and lock records plus
    all range headers.  Table 3's "Message Bytes" minus "Bytes Updated". *)
