(** The OO7 traversals used in the paper's evaluation.

    All traversals walk the assembly hierarchy depth-first and visit the
    composite parts referenced by each base assembly (2187 visits in the
    standard configuration; composites are chosen with replacement, so a
    composite may be visited several times).

    - {b T1}: full read-only traversal — each composite visit DFS-walks
      the whole atomic-part graph.
    - {b T2} (update): like T1, but updates atomic parts by overwriting an
      8-byte field ([x]): variant [A] updates only the root atomic part of
      each visited composite, [B] every atomic part, [C] every atomic part
      four times.
    - {b T3} (index update): like T2, but the updated field is the indexed
      build date, so each update also deletes and re-inserts the part's
      entry in the part index.
    - {b T4}: document search — each composite visit scans the
      composite's document for a character (read-only; from the full OO7
      suite, beyond the paper's selection).
    - {b T5}: document update — each composite visit overwrites the start
      of the composite's document.
    - {b T6}: sparse read-only traversal — only the root atomic part of
      each composite is visited.
    - {b T7}: pick one pseudo-random base assembly and process its
      composites (from the full OO7 suite).
    - {b T12}: the paper's addition — sparse like T6, but updating the
      root atomic part once ([A]) or four times ([C]).  A high fraction of
      its running time is coherency-related. *)

type variant = A | B | C

type kind =
  | T1
  | T2 of variant
  | T3 of variant
  | T4
  | T5
  | T6
  | T7
  | T12 of variant

val name : kind -> string
(** "T2-B" etc. *)

val of_name : string -> kind option

val table3_kinds : kind list
(** The eight update traversals of Table 3, in its row order: T12-A,
    T12-C, T2-A/B/C, T3-A/B/C. *)

type result = {
  composite_visits : int;
  atomic_visits : int;  (** atomic parts visited (with repetition) *)
  field_updates : int;  (** explicit 8-byte field overwrites *)
  index_ops : int;  (** index delete+insert pairs (T3 only) *)
  read_sum : int64;  (** checksum of fields read (ignored by updates) *)
}

val run : Database.t -> kind -> result
(** Execute the traversal against the attached database.  When the
    database is attached through a transaction, all updates are captured
    for logging and coherency. *)
