lib/oo7/traversal.ml: Bytes Database Hashtbl Heap Iavl Int64 Lbc_pheap Schema String
