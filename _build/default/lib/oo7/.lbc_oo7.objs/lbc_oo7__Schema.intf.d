lib/oo7/schema.mli: Layout Lbc_pheap
