lib/oo7/clusters.ml: Array Bytes Char Database Heap Iavl Layout Lbc_pheap Lbc_util Rng Schema
