lib/oo7/operations.ml: Clusters Database List
