lib/oo7/queries.mli: Database
