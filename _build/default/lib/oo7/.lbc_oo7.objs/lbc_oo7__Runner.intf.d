lib/oo7/runner.mli: Lbc_core Lbc_costmodel Lbc_wal Schema Traversal
