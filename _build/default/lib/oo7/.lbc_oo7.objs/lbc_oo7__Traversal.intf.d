lib/oo7/traversal.mli: Database
