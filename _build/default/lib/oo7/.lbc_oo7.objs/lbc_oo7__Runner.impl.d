lib/oo7/runner.ml: Builder Bytes Database Int Lbc_core Lbc_costmodel Lbc_rvm Lbc_sim Lbc_storage Lbc_wal List Schema Set Traversal
