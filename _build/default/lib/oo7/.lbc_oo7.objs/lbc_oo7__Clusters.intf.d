lib/oo7/clusters.mli: Database Heap Lbc_pheap Lbc_util Schema
