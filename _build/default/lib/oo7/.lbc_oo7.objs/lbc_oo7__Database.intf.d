lib/oo7/database.mli: Bytes Heap Iavl Lbc_core Lbc_pheap Schema
