lib/oo7/builder.ml: Array Bytes Clusters Database Heap Layout Lbc_pheap Lbc_util Rng Schema
