lib/oo7/schema.ml: Heap Iavl Layout Lbc_pheap List Printf
