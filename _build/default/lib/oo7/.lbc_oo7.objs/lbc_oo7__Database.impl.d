lib/oo7/database.ml: Heap Iavl Int64 Layout Lbc_core Lbc_pheap Printf Schema
