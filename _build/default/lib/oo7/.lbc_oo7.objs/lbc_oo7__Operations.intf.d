lib/oo7/operations.mli: Database Lbc_util
