lib/oo7/builder.mli: Bytes Schema
