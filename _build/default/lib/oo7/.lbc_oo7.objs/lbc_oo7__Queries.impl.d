lib/oo7/queries.ml: Bytes Database Heap Iavl Int64 Lbc_pheap Schema
